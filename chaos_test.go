// Chaos harness (`make chaos`): drives a real widget workload through a
// matrix of seeded fault scenarios injected under the wire by
// internal/fault, and asserts graceful degradation end to end — zero
// hangs (a watchdog bounds every scenario), zero panics (the run is
// race-gated), every injected fault either recovered from or surfaced
// as a clean Go error / tkerror report, and the fault.* counters
// accounting for 100% of the injected faults. docs/fault-injection.md
// describes the scenarios and how to add more.
package repro_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/tk"
	"repro/internal/widget"
	"repro/internal/xclient"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

// chaosScenarios is the bounded seed set the harness (and `make chaos`)
// runs. Each entry exercises one fault kind in isolation plus a combo;
// the baseline proves the workload itself is clean.
var chaosScenarios = []fault.Scenario{
	{Name: "baseline", Seed: 1},
	{Name: "jitter", Seed: 2, Jitter: 500 * time.Microsecond, JitterProb: 0.5},
	{Name: "short-writes", Seed: 3, ShortWriteProb: 0.7},
	{Name: "short-reads", Seed: 4, ShortReadProb: 0.7},
	{Name: "corrupt-write", Seed: 5, CorruptWriteProb: 0.05},
	{Name: "corrupt-read", Seed: 6, CorruptReadProb: 0.05},
	{Name: "kill-after-requests", Seed: 7, KillAfterRequests: 60},
	{Name: "kill-after-bytes", Seed: 8, KillAfterBytes: 2048},
	{Name: "stall", Seed: 9, StallEvery: 5, StallDur: 20 * time.Millisecond},
	{Name: "combo", Seed: 10, Jitter: 200 * time.Microsecond, JitterProb: 0.3,
		ShortWriteProb: 0.3, ShortReadProb: 0.3, CorruptReadProb: 0.01,
		StallEvery: 20, StallDur: 5 * time.Millisecond},
}

// chaosOutcome is what one scenario run reports back to the assertions.
type chaosOutcome struct {
	surfaced  []string // clean Go errors collected along the way
	tkerrors  int      // errors routed through the tkerror convention
	recovered bool     // the final round trip on the faulty conn succeeded
}

// TestChaos runs the widget workload under every scenario. Requires
// -race (the Makefile target supplies it) for the no-panics/no-races
// guarantee to mean something.
func TestChaos(t *testing.T) {
	for _, sc := range chaosScenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			runChaosScenario(t, sc)
		})
	}
}

func runChaosScenario(t *testing.T, sc fault.Scenario) {
	srv := xserver.New(800, 600)
	defer srv.Close()
	srv.SetLatency(100 * time.Microsecond)
	srv.SetLatencyModel(xserver.LatencyPerSegment)
	srv.SetWriteTimeout(time.Second)

	// The faulty connection: the chaos layer sits under xclient exactly
	// where the xtrace tap would.
	fc := fault.Wrap(srv.ConnectPipe(), sc, nil)

	outc := make(chan chaosOutcome, 1)
	go func() {
		outc <- chaosWorkload(t, srv, fc, sc)
	}()

	// Watchdog: no scenario may hang. The workload is seconds of work;
	// 60s means something above the fault layer lost its deadline.
	var out chaosOutcome
	select {
	case out = <-outc:
	case <-time.After(60 * time.Second):
		srv.Close()
		t.Fatalf("scenario %q hung: workload did not finish within 60s", sc.Name)
	}

	// Accounting: the per-kind counters explain 100% of the injections.
	var sum uint64
	for _, name := range fault.CounterNames {
		sum += fc.Metrics().Counter(name).Value()
	}
	if sum != fc.Total() {
		t.Fatalf("fault counters sum to %d but Total() = %d", sum, fc.Total())
	}

	injected := fc.Total()
	surfaced := len(out.surfaced) + out.tkerrors
	t.Logf("scenario %-20s injected=%-4d surfaced=%-3d recovered=%v",
		sc.Name, injected, surfaced, out.recovered)

	if sc.Name == "baseline" {
		if injected != 0 {
			t.Fatalf("baseline injected %d faults", injected)
		}
		if surfaced != 0 {
			t.Fatalf("baseline produced errors: %v (tkerrors=%d)", out.surfaced, out.tkerrors)
		}
		if !out.recovered {
			t.Fatal("baseline should finish with a clean round trip")
		}
		return
	}
	// Graceful degradation: every injected fault was either absorbed
	// (the connection still answers a round trip) or surfaced as a
	// clean error. Silence plus a dead connection means something
	// swallowed a failure.
	if injected > 0 && !out.recovered && surfaced == 0 {
		t.Fatalf("scenario %q injected %d faults, connection is dead, and nothing surfaced",
			sc.Name, injected)
	}
}

// chaosWorkload runs the real workload on the faulty connection:
// app setup, button create/configure/destroy cycles, pipelined round
// trips, and a send to a healthy peer app on the same display. Every
// failure is collected, never fatal — the scenario assertions decide
// what failure pattern is acceptable.
func chaosWorkload(t *testing.T, srv *xserver.Server, fc *fault.Conn, sc fault.Scenario) chaosOutcome {
	var out chaosOutcome
	collect := func(stage string, err error) {
		if err != nil {
			out.surfaced = append(out.surfaced, fmt.Sprintf("%s: %v", stage, err))
		}
	}

	d, err := xclient.Open(fc)
	if err != nil {
		collect("open", err)
		return out
	}
	defer d.Close()
	d.SetRoundTripTimeout(2 * time.Second)

	app, err := tk.NewApp(d, tk.Config{Name: "chaos"})
	if err != nil {
		collect("newapp", err)
		return out
	}
	widget.Register(app)
	defer app.Destroy()
	app.SendTimeout = 2 * time.Second
	// Surfacing path for async display errors: the tkerror convention.
	if _, err := app.Eval(`set ::chaoserrs 0; proc tkerror {msg} {incr ::chaoserrs}`); err != nil {
		collect("tkerror-setup", err)
	}

	// A healthy peer on its own clean connection: the send target, and
	// the proof that one client's chaos stays its own.
	peerD, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		collect("peer-open", err)
		return out
	}
	defer peerD.Close()
	peer, err := tk.NewApp(peerD, tk.Config{Name: "peer"})
	if err != nil {
		collect("peer-newapp", err)
		return out
	}
	widget.Register(peer)
	defer peer.Destroy()
	if _, err := peer.Eval(`proc answer {} {return pong}`); err != nil {
		collect("peer-proc", err)
	}
	stop := peer.StartServing()
	defer stop()

	// The widget workload: create, lay out, configure, redisplay,
	// destroy — the paper's Table II shape, under fire.
	for i := 0; i < 6; i++ {
		_, err := app.Eval(fmt.Sprintf(`button .b%d -text "Button %d"`, i, i))
		collect("create", err)
		_, err = app.Eval(fmt.Sprintf(`pack append . .b%d {top}`, i))
		collect("pack", err)
		_, err = app.Eval(fmt.Sprintf(`.b%d configure -text "Pressed %d"`, i, i))
		collect("configure", err)
		app.Update()
		_, err = app.Eval(fmt.Sprintf(`destroy .b%d`, i))
		collect("destroy", err)
	}

	// Pipelined round trips: 8 cookies in flight, then wait for all.
	cookies := make([]*xclient.Cookie, 8)
	for i := range cookies {
		cookies[i] = d.SendWithReply(&xproto.PingReq{})
	}
	collect("flush", d.Flush())
	for _, ck := range cookies {
		collect("cookie", ck.Wait(nil))
	}

	// Send: a cross-application RPC to the healthy peer.
	if res, err := app.Send("peer", "answer"); err != nil {
		collect("send", err)
	} else if res != "pong" {
		collect("send", fmt.Errorf("send result %q, want pong", res))
	}

	// Drain any tkerror-routed async errors, then take the verdict
	// round trip: can this connection still answer?
	app.Update()
	if res, err := app.Eval(`set ::chaoserrs`); err == nil {
		fmt.Sscanf(res, "%d", &out.tkerrors)
	}
	out.recovered = d.Sync() == nil
	return out
}

// ---------------------------------------------------------------------
// Wire protocol v2 under fire (docs/pipelining.md, "Wire protocol v2").
//
// The v2 codec ships compressed, delta-encoded segments, so a single
// flipped bit no longer damages one request — it damages a whole
// coalesced run, and a desynced delta cache would silently reconstruct
// *plausible but wrong* frames forever after. These scenarios hold the
// failure-mode line: corruption inside a compressed segment and a kill
// mid-delta-stream must degrade to a clean connection loss (every
// cookie fails promptly with the root cause) — never to a garbage
// frame reaching a handler, which the deterministic-pixel check below
// would catch as silent canvas corruption.

// chaosWireScenarios: bit flips on each direction's compressed
// segments, and a mid-stream kill between delta frames. The corruption
// probabilities are much higher than the v1 matrix's because they are
// charged per Write/Read call and the whole point of v2 is that a
// storm collapses into a handful of large writes — at v1's 0.05 the
// seeded runs inject nothing at all (the runner asserts they do).
var chaosWireScenarios = []fault.Scenario{
	{Name: "v2-bitflip-compressed-write", Seed: 21, CorruptWriteProb: 0.5},
	{Name: "v2-bitflip-compressed-read", Seed: 24, CorruptReadProb: 0.5},
	{Name: "v2-kill-mid-delta", Seed: 23, KillAfterBytes: 1024},
}

// wireChaosOutcome extends the plain outcome with the silent-corruption
// verdict: garbage is true when a fully "recovered" zero-error run
// produced pixels differing from the clean reference — meaning a
// corrupt frame was decoded and dispatched instead of rejected.
type wireChaosOutcome struct {
	surfaced  []string
	recovered bool
	upgraded  bool // the v2 negotiation completed before any fault hit
	garbage   bool
}

// TestChaosWireV2 runs the deterministic fill storm over a negotiated
// v2 connection under each scenario. Run by `make chaos` (the -run
// TestChaos prefix matches).
func TestChaosWireV2(t *testing.T) {
	for _, sc := range chaosWireScenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			runWireChaosScenario(t, sc)
		})
	}
}

func runWireChaosScenario(t *testing.T, sc fault.Scenario) {
	srv := xserver.New(320, 240)
	defer srv.Close()
	srv.SetWriteTimeout(time.Second)

	// Clean reference: the same deterministic storm on an unfaulted v2
	// connection, screenshotted. Any faulted run that claims full
	// recovery with zero errors must reproduce these bytes exactly.
	ref := func() []byte {
		d, err := xclient.OpenWith(srv.ConnectPipe(), xclient.Config{Wire: xclient.WireV2})
		if err != nil {
			t.Fatalf("clean reference open: %v", err)
		}
		defer d.Close()
		w := wireChaosStorm(d)
		if err := d.Sync(); err != nil {
			t.Fatalf("clean reference sync: %v", err)
		}
		shot, err := d.Screenshot(w)
		if err != nil {
			t.Fatalf("clean reference screenshot: %v", err)
		}
		return append([]byte(nil), shot.Pixels...)
	}()

	fc := fault.Wrap(srv.ConnectPipe(), sc, nil)
	outc := make(chan wireChaosOutcome, 1)
	go func() {
		outc <- wireChaosWorkload(fc, ref)
	}()

	var out wireChaosOutcome
	select {
	case out = <-outc:
	case <-time.After(60 * time.Second):
		srv.Close()
		t.Fatalf("scenario %q hung: v2 workload did not finish within 60s", sc.Name)
	}

	// Accounting: the per-kind counters explain 100% of the injections.
	var sum uint64
	for _, name := range fault.CounterNames {
		sum += fc.Metrics().Counter(name).Value()
	}
	if sum != fc.Total() {
		t.Fatalf("fault counters sum to %d but Total() = %d", sum, fc.Total())
	}
	injected := fc.Total()
	t.Logf("scenario %-28s injected=%-4d surfaced=%-3d recovered=%v upgraded=%v",
		sc.Name, injected, len(out.surfaced), out.recovered, out.upgraded)

	// The seeded runs are deterministic: each scenario must actually
	// fire, or it is testing nothing (a corruption probability tuned
	// for v1's chatty write pattern can silently undershoot v2's few
	// large writes).
	if injected == 0 {
		t.Fatalf("scenario %q injected no faults — tune the scenario for the v2 write pattern", sc.Name)
	}

	// The no-silent-corruption line: a corrupted segment must never
	// decode into a frame a handler acts on. If it had, the zero-error
	// "recovered" canvas would differ from the clean reference.
	if out.garbage {
		t.Fatalf("scenario %q: connection recovered with zero errors but the canvas "+
			"differs from the clean run — a corrupt frame reached a handler", sc.Name)
	}
	// Graceful degradation, as in the v1 matrix: injected faults are
	// either absorbed (the connection still answers) or surface as
	// clean errors. A dead connection with nothing surfaced means a
	// failure was swallowed.
	if injected > 0 && !out.recovered && len(out.surfaced) == 0 {
		t.Fatalf("scenario %q injected %d faults, connection is dead, and nothing surfaced",
			sc.Name, injected)
	}
	// The kill fires deterministically inside the delta stream (the
	// storm alone crosses KillAfterBytes): the connection must die and
	// every outstanding cookie must have failed with the root cause
	// rather than hanging (the watchdog above is the hang detector).
	if sc.KillAfterBytes > 0 {
		if out.recovered {
			t.Fatalf("scenario %q: connection survived a mid-stream kill", sc.Name)
		}
		if len(out.surfaced) == 0 {
			t.Fatalf("scenario %q: mid-stream kill surfaced no errors", sc.Name)
		}
	}
}

// wireChaosStorm paints the deterministic pattern the pixel check keys
// on: a window, one GC, and 400 delta-friendly fills (same opcode,
// varying geometry — exactly the traffic the v2 cache collapses).
func wireChaosStorm(d *xclient.Display) xproto.ID {
	w := d.CreateWindow(d.Root, 0, 0, 320, 240, 0, xclient.WindowAttributes{Background: 0x202020})
	d.MapWindow(w)
	gc := d.CreateGC(xclient.GCValues{Foreground: 0x40C080})
	for i := 0; i < 400; i++ {
		d.FillRectangle(w, gc, (i*7)%300, (i*13)%220, 12, 9)
	}
	return w
}

// wireChaosWorkload drives the storm plus pipelined pings over the
// faulted connection, then renders the verdict: recovered? and if
// fully clean, do the pixels match the reference?
func wireChaosWorkload(fc *fault.Conn, ref []byte) wireChaosOutcome {
	var out wireChaosOutcome
	collect := func(stage string, err error) {
		if err != nil {
			out.surfaced = append(out.surfaced, fmt.Sprintf("%s: %v", stage, err))
		}
	}

	d, err := xclient.OpenWith(fc, xclient.Config{Wire: xclient.WireV2})
	if err != nil {
		collect("open", err)
		return out
	}
	defer d.Close()
	d.SetRoundTripTimeout(2 * time.Second)
	out.upgraded = d.WireVersion() == 2

	w := wireChaosStorm(d)

	// Pipelined cookies across the faulty link: all must resolve —
	// with a reply or a clean error — never hang.
	cookies := make([]*xclient.Cookie, 8)
	for i := range cookies {
		cookies[i] = d.SendWithReply(&xproto.PingReq{})
	}
	collect("flush", d.Flush())
	for _, ck := range cookies {
		collect("cookie", ck.Wait(nil))
	}

	out.recovered = d.Sync() == nil
	if out.recovered && len(out.surfaced) == 0 {
		shot, err := d.Screenshot(w)
		switch {
		case err != nil:
			// The screenshot itself died on a late fault: a clean
			// surfaced error, not silent corruption.
			collect("screenshot", err)
			out.recovered = false
		case !bytes.Equal(shot.Pixels, ref):
			out.garbage = true
		}
	}
	return out
}
