// SLO rollup emitter: runs a mixed workload with request-span tracing
// enabled, folds the client and server registries plus the sampled
// spans into the machine-readable report (internal/obs/slo), measures
// the throughput cost of 1-in-64 span sampling, and writes
// BENCH_slo.json — the artifact the standing regression harness
// (ROADMAP item 5) diffs between runs.
package repro_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs/slo"
	"repro/internal/obs/trace"
	"repro/internal/xclient"
	"repro/internal/xproto"
)

// pingRounds drives iters batches of flight pipelined pings.
func pingRounds(t *testing.T, d *xclient.Display, flight, iters int) {
	t.Helper()
	cookies := make([]*xclient.Cookie, flight)
	for i := 0; i < iters; i++ {
		for j := range cookies {
			cookies[j] = d.SendWithReply(&xproto.PingReq{})
		}
		for _, ck := range cookies {
			if err := ck.Wait(nil); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestEmitSLOBench is the SLO emitter and the tracing-overhead
// acceptance check (make check runs it with OBS_BENCH=1): the report
// must carry dispatch and round-trip quantiles, per-subsystem lock
// waits, span-derived wire time and a clean error budget, and the
// pipelined ping throughput with 1-in-64 sampling must stay within 10%
// of the untraced run.
func TestEmitSLOBench(t *testing.T) {
	requireObsBench(t, "BENCH_slo.json")

	// --- Workload under tracing: widgets plus pipelined pings. -------
	// A dense sampling interval (1 in 8) gives the rollup plenty of
	// span pairs without needing a huge request count.
	app, err := core.NewApp(core.Options{Name: "slobench", SpanInterval: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	app.MustEval(`frame .f`)
	app.MustEval(`pack append . .f {top}`)
	for _, s := range []string{"a", "b", "c"} {
		app.MustEval(`button .f.` + s + ` -text ` + s + ` -foreground red`)
		app.MustEval(`pack append .f .f.` + s + ` {top}`)
	}
	app.Update()
	pingRounds(t, app.Disp, 8, 100)

	report := slo.Build(slo.Sources{
		Server: app.Server.Metrics(),
		Client: app.Metrics(),
		Spans:  app.Spans.Spans(),
	})

	if report.Dispatch == nil || report.Dispatch.Count == 0 {
		t.Fatal("report has no dispatch quantiles")
	}
	if report.RoundTrip == nil || report.RoundTrip.Count == 0 {
		t.Fatal("report has no round-trip quantiles")
	}
	if len(report.Lockwait) == 0 {
		t.Fatal("report has no per-subsystem lockwait quantiles")
	}
	if report.ErrorBudget.Requests == 0 {
		t.Fatal("error budget saw no requests")
	}
	if report.ErrorBudget.Errors != 0 || report.ErrorBudget.RemainingFraction != 1 {
		t.Fatalf("clean run spent error budget: %+v", report.ErrorBudget)
	}
	if report.Spans == nil || report.Spans.SampledRoundTrips == 0 {
		t.Fatal("no client.rtt/server.dispatch span pairs in the rollup")
	}
	if report.RoundTrip.P99Ns < report.RoundTrip.P50Ns {
		t.Fatalf("quantiles out of order: p50=%d p99=%d", report.RoundTrip.P50Ns, report.RoundTrip.P99Ns)
	}

	// --- Tracing overhead: pipelined pings, spans off vs 1-in-64. ----
	// The two configurations are timed in interleaved best-of-reps
	// pairs, not back to back: a noise burst (GC from an earlier
	// emitter in this binary, a scheduler stall) then lands on both
	// sides instead of inflating whichever happened to run under it.
	// 16 reps spread the pairs over a long enough window that best-of
	// finds a clean measurement for each side even when the machine
	// carries sustained background load for part of the run.
	const flight, iters, reps = 64, 60, 16
	newApp := func(traced bool) *core.App {
		app, err := core.NewApp(core.Options{Name: "slobench"})
		if err != nil {
			t.Fatal(err)
		}
		if traced {
			tr := trace.New(8192, trace.DefaultInterval)
			app.Server.SetTracer(tr)
			app.Disp.SetTracer(tr)
		}
		pingRounds(t, app.Disp, flight, 2) // warm pools and buffers
		return app
	}
	offApp := newApp(false)
	defer offApp.Close()
	onApp := newApp(true)
	defer onApp.Close()
	timeOnce := func(a *core.App) time.Duration {
		start := time.Now()
		pingRounds(t, a.Disp, flight, iters)
		return time.Since(start)
	}
	off, on := time.Duration(1<<62), time.Duration(1<<62)
	for r := 0; r < reps; r++ {
		if d := timeOnce(offApp); d < off {
			off = d
		}
		if d := timeOnce(onApp); d < on {
			on = d
		}
	}
	ratio := float64(on) / float64(off)
	// The bound leaves headroom for scheduler noise on shared machines
	// (interleaved best-of pairs measure a few-percent spread even on a
	// no-op diff); a real sampling regression — per-request work leaking
	// outside the 1-in-64 gate — costs tens of percent and still trips.
	if ratio > 1.10 {
		t.Fatalf("1-in-64 span sampling costs %.1f%% throughput (off %v, on %v): want < 10%%",
			(ratio-1)*100, off, on)
	}

	out := struct {
		Report          slo.Report `json:"slo_report"`
		SpanInterval    int        `json:"workload_span_interval"`
		OverheadFlight  int        `json:"overhead_round_trips_in_flight"`
		OverheadOffNs   int64      `json:"overhead_untraced_ns"`
		OverheadOnNs    int64      `json:"overhead_traced_1in64_ns"`
		OverheadRatio   float64    `json:"overhead_ratio"`
		RetainedSpans   int        `json:"retained_spans"`
		SampledRequests uint64     `json:"sampled_requests"`
	}{
		Report:          report,
		SpanInterval:    8,
		OverheadFlight:  flight,
		OverheadOffNs:   off.Nanoseconds(),
		OverheadOnNs:    on.Nanoseconds(),
		OverheadRatio:   ratio,
		RetainedSpans:   app.Spans.Len(),
		SampledRequests: app.Metrics().Counters()["trace.sampled"],
	}
	writeBenchJSON(t, "BENCH_slo.json", out)
	t.Logf("wrote BENCH_slo.json: dispatch p99 %dns, rtt p99 %dns, %d span pairs, overhead %.2f%%",
		report.Dispatch.P99Ns, report.RoundTrip.P99Ns, report.Spans.SampledRoundTrips, (ratio-1)*100)
}
