// The display-farm benchmark (BENCH_farm.json, OBS_BENCH-gated like the
// other emitters): hosts 1000+ concurrent wish-style sessions on one
// Farm and holds them under sustained load, asserting the farm's three
// load-bearing properties along the way —
//
//  1. bounded memory: heap (GC'd) must not grow monotonically across
//     load waves once the ramp is done, i.e. hosting N sessions costs a
//     plateau, not a leak;
//  2. chaos isolation: evicting 10% of the sessions mid-run must not
//     cost the survivors a single failed request, and every evicted
//     session's quota must reconcile to zero;
//  3. a measured p99 dispatch latency off the farm's rolled-up
//     "dispatch" histogram — the same series /slo reports.
package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/xclient"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

const (
	farmBenchSessions = 1000
	farmBenchEvict    = farmBenchSessions / 10
	farmBenchWaves    = 3
	farmBenchRounds   = 20
)

// farmTenant is one simulated wish session: a display connection plus
// the resources a small widget app would hold.
type farmTenant struct {
	name string
	d    *xclient.Display
	sess *xserver.Session
	win  xproto.ID
	gc   xproto.ID
}

// run performs one load round: a fill into the session's window plus a
// round trip, the shape of a widget redisplay.
func (ft *farmTenant) run() error {
	ft.d.FillRectangle(ft.win, ft.gc, 2, 2, 60, 40)
	return ft.d.Sync()
}

func TestEmitFarmBench(t *testing.T) {
	requireObsBench(t, "BENCH_farm.json")

	farm := xserver.NewFarm(xserver.FarmOptions{
		// Small per-session screens: the farm's point is thousands of
		// cheap displays, not thousands of 1024×768 framebuffers.
		Width: 160, Height: 120,
		MaxSessions: farmBenchSessions + 50,
		Quota: xserver.Quota{
			MaxWindows:     32,
			MaxPixmapBytes: 1 << 20,
			MaxGCs:         32,
		},
	})
	defer farm.Close()

	// Ramp: attach every session and furnish it like a small app.
	start := time.Now()
	tenants := make([]*farmTenant, farmBenchSessions)
	var wg sync.WaitGroup
	errs := make(chan error, farmBenchSessions)
	for i := range tenants {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("sess-%04d", i)
			d, err := xclient.OpenSession(farm.ConnectPipe(), name)
			if err != nil {
				errs <- fmt.Errorf("%s: attach: %w", name, err)
				return
			}
			ft := &farmTenant{name: name, d: d}
			ft.win = d.CreateWindow(d.Root, 0, 0, 80, 60, 1, xclient.WindowAttributes{})
			d.MapWindow(ft.win)
			ft.gc = d.CreateGC(xclient.GCValues{Foreground: 0x336699})
			d.CreatePixmap(16, 16)
			if err := d.Sync(); err != nil {
				errs <- fmt.Errorf("%s: furnish: %w", name, err)
				return
			}
			sess, ok := farm.Lookup(name)
			if !ok {
				errs <- fmt.Errorf("%s: session missing after attach", name)
				return
			}
			ft.sess = sess
			tenants[i] = ft
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	rampDur := time.Since(start)
	if n := farm.SessionCount(); n != farmBenchSessions {
		t.Fatalf("SessionCount = %d, want %d", n, farmBenchSessions)
	}

	// heapNow GCs twice (finalizer-created garbage included) and reads
	// the live heap.
	heapNow := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	// Sustained waves: every session keeps redisplaying; heap is sampled
	// at each wave boundary.
	runWave := func(group []*farmTenant) time.Duration {
		begin := time.Now()
		var wwg sync.WaitGroup
		werrs := make(chan error, len(group))
		for _, ft := range group {
			wwg.Add(1)
			go func(ft *farmTenant) {
				defer wwg.Done()
				for r := 0; r < farmBenchRounds; r++ {
					if err := ft.run(); err != nil {
						werrs <- fmt.Errorf("%s: %w", ft.name, err)
						return
					}
				}
			}(ft)
		}
		wwg.Wait()
		close(werrs)
		for err := range werrs {
			t.Fatal(err)
		}
		return time.Since(begin)
	}

	heapByWave := make([]uint64, 0, farmBenchWaves+1)
	heapByWave = append(heapByWave, heapNow())
	waveDurs := make([]time.Duration, 0, farmBenchWaves)
	for w := 0; w < farmBenchWaves; w++ {
		waveDurs = append(waveDurs, runWave(tenants))
		heapByWave = append(heapByWave, heapNow())
	}

	// Bounded memory: the heap after the last wave must not exceed the
	// post-ramp plateau by more than 15% — growth across waves at steady
	// session count would be a leak.
	plateau, last := heapByWave[1], heapByWave[len(heapByWave)-1]
	growth := float64(last) / float64(plateau)
	if growth > 1.15 {
		t.Fatalf("heap grew %.2fx across steady-state waves (%d -> %d bytes): unbounded",
			growth, plateau, last)
	}

	// Chaos: evict 10% of the sessions while the rest keep working. The
	// victims' clients are mid-flight on purpose.
	victims, survivors := tenants[:farmBenchEvict], tenants[farmBenchEvict:]
	var vwg sync.WaitGroup
	for _, ft := range victims {
		vwg.Add(1)
		go func(ft *farmTenant) {
			defer vwg.Done()
			for ft.run() == nil {
			}
		}(ft)
	}
	var ewg sync.WaitGroup
	ewg.Add(1)
	go func() {
		defer ewg.Done()
		for _, ft := range victims {
			if !farm.Evict(ft.name) {
				t.Errorf("Evict(%s) found no session", ft.name)
			}
		}
	}()
	survivorDur := runWave(survivors) // must complete with zero errors
	ewg.Wait()
	vwg.Wait()

	// Every evicted session's quota reconciles to zero.
	deadline := time.Now().Add(10 * time.Second)
	for _, ft := range victims {
		for {
			w, pb, g := ft.sess.Server().QuotaUsage()
			if w == 0 && pb == 0 && g == 0 {
				break
			}
			if w < 0 || pb < 0 || g < 0 {
				t.Fatalf("%s: negative quota after eviction: %d/%d/%d", ft.name, w, pb, g)
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: quota not reconciled after eviction: %d/%d/%d", ft.name, w, pb, g)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if n := farm.SessionCount(); n != farmBenchSessions-farmBenchEvict {
		t.Fatalf("SessionCount after chaos = %d, want %d", n, farmBenchSessions-farmBenchEvict)
	}

	// Full teardown: close the survivors too and require global
	// reconciliation.
	for _, ft := range survivors {
		ft.d.Close()
	}
	for _, ft := range victims {
		ft.d.Close()
	}
	deadline = time.Now().Add(10 * time.Second)
	for _, ft := range survivors {
		for {
			w, pb, g := ft.sess.Server().QuotaUsage()
			if w == 0 && pb == 0 && g == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: quota not reconciled on teardown: %d/%d/%d", ft.name, w, pb, g)
			}
			time.Sleep(time.Millisecond)
		}
	}

	reg := farm.Metrics()
	disp := reg.Histogram("dispatch").Snapshot()
	if disp.Count == 0 {
		t.Fatal("farm rollup dispatch histogram is empty")
	}
	report := map[string]any{
		"sessions":           farmBenchSessions,
		"screen":             "160x120",
		"ramp_ms":            rampDur.Milliseconds(),
		"waves":              farmBenchWaves,
		"rounds_per_wave":    farmBenchRounds,
		"wave_ms":            []int64{waveDurs[0].Milliseconds(), waveDurs[1].Milliseconds(), waveDurs[2].Milliseconds()},
		"requests_total":     reg.Counter("requests").Value(),
		"dispatch_p50_ns":    disp.Quantile(0.50),
		"dispatch_p99_ns":    disp.Quantile(0.99),
		"heap_by_wave_bytes": heapByWave,
		"heap_growth_ratio":  growth,
		"chaos": map[string]any{
			"evicted":            farmBenchEvict,
			"survivor_wave_ms":   survivorDur.Milliseconds(),
			"survivor_errors":    0,
			"quotas_reconciled":  true,
			"sessions_after":     farmBenchSessions - farmBenchEvict,
			"evictions_counter":  reg.Counter("farm.evictions").Value(),
			"admissions_counter": reg.Counter("farm.admissions").Value(),
			"rejections_counter": reg.Counter("farm.rejections").Value(),
			"quota_denied_total": reg.Counter("quota.denied.windows").Value() + reg.Counter("quota.denied.pixmap_bytes").Value() + reg.Counter("quota.denied.gcs").Value(),
		},
	}
	writeBenchJSON(t, "BENCH_farm.json", report)
	t.Logf("farm bench: %d sessions, ramp %v, p99 dispatch %v, heap growth %.3fx",
		farmBenchSessions, rampDur, time.Duration(disp.Quantile(0.99)), growth)

	// Leave the shared bench binary with a settled heap: tearing down
	// 1000 sessions frees tens of MB at once, and GC pacing off that
	// spike skews the timing-sensitive emitters that run after this
	// test in the same process. Close is idempotent, so the deferred
	// call becomes a no-op.
	farm.Close()
	heapNow()
}
