// Wire protocol v2 benchmarks (docs/pipelining.md, "Wire protocol
// v2"): bytes on the wire and end-to-end latency for a
// PolyFillRectangle-heavy workload, v1 framing against the negotiated
// v2 codec, at simulated WAN round-trip times. The gated emitter writes
// BENCH_wire.json and doubles as the acceptance check for the codec's
// two headline numbers: ≥ 5× fewer bytes on the wire, and ≥ 2× faster
// per-request completion at 10 ms RTT.
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/xclient"
	"repro/internal/xserver"
)

// TestEmitWireBench measures the v1-vs-v2 wire footprint and round-trip
// completion time at 0/1/10 ms simulated RTT and writes BENCH_wire.json.
// make check runs it (OBS_BENCH=1) as the acceptance gate.
func TestEmitWireBench(t *testing.T) {
	requireObsBench(t, "BENCH_wire.json")

	const fills = 3000

	// open builds a fresh server+display pair speaking the given wire
	// mode, with the per-segment latency model charging rtt per wire
	// read — the simulated network round trip.
	open := func(mode xclient.WireMode, rtt time.Duration) (*xserver.Server, *xclient.Display) {
		srv := xserver.New(640, 480)
		srv.SetLatencyModel(xserver.LatencyPerSegment)
		srv.SetLatency(rtt)
		d, err := xclient.OpenWith(srv.ConnectPipe(), xclient.Config{Wire: mode})
		if err != nil {
			srv.Close()
			t.Fatal(err)
		}
		return srv, d
	}

	// runStorm drives the rectangle storm: fills cycling through varying
	// geometries (the repeated-request shape the delta codec targets),
	// closed by one Sync so every byte has crossed the wire on return.
	runStorm := func(t *testing.T, d *xclient.Display) {
		t.Helper()
		w := d.CreateWindow(d.Root, 0, 0, 640, 480, 0, xclient.WindowAttributes{Background: 0x101010})
		d.MapWindow(w)
		gc := d.CreateGC(xclient.GCValues{Foreground: 0x40C080})
		for i := 0; i < fills; i++ {
			d.FillRectangle(w, gc, i%600, (i*13)%440, 16, 12)
		}
		if err := d.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	// --- Bytes on the wire: identical storm, v1 vs v2. ----------------
	wireBytes := func(mode xclient.WireMode) (raw, wire uint64) {
		srv, d := open(mode, 0)
		defer srv.Close()
		defer d.Close()
		runStorm(t, d)
		m := d.Metrics()
		return m.Counter("wire.bytes.raw").Value(), m.Counter("wire.bytes.wire").Value()
	}
	v1Raw, v1Wire := wireBytes(xclient.WireV1)
	v2Raw, v2Wire := wireBytes(xclient.WireV2)
	if v1Raw != v1Wire {
		t.Fatalf("v1 raw (%d) != v1 wire (%d): v1 must be a passthrough", v1Raw, v1Wire)
	}
	bytesRatio := float64(v1Wire) / float64(v2Wire)
	if bytesRatio < 5 {
		t.Fatalf("v2 wire bytes %d vs v1 %d: %.1fx reduction, want ≥ 5x", v2Wire, v1Wire, bytesRatio)
	}

	// --- Completion time at 0/1/10 ms simulated RTT. ------------------
	// One warmed connection per (mode, rtt): the v2 flush controller
	// needs round-trip samples before its threshold adapts, so both
	// modes get the same ping warmup, then the fastest of reps storms
	// is recorded.
	const reps = 3
	measure := func(mode xclient.WireMode, rtt time.Duration) time.Duration {
		srv, d := open(mode, rtt)
		defer srv.Close()
		defer d.Close()
		for i := 0; i < 16; i++ {
			if err := d.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		return minDuration(reps, func() time.Duration {
			start := time.Now()
			runStorm(t, d)
			return time.Since(start)
		})
	}
	rtts := []time.Duration{0, time.Millisecond, 10 * time.Millisecond}
	times := make(map[string]int64)
	var v1at10, v2at10 time.Duration
	for _, rtt := range rtts {
		v1t := measure(xclient.WireV1, rtt)
		v2t := measure(xclient.WireV2, rtt)
		times[fmt.Sprintf("v1_rtt%s", rtt)] = v1t.Nanoseconds()
		times[fmt.Sprintf("v2_rtt%s", rtt)] = v2t.Nanoseconds()
		if rtt == 10*time.Millisecond {
			v1at10, v2at10 = v1t, v2t
		}
	}

	// Acceptance: at 10 ms RTT the adaptive batcher + codec must finish
	// the same storm at least 2× faster than fixed-threshold v1.
	if v2at10*2 > v1at10 {
		t.Fatalf("storm at 10ms RTT: v2 %v vs v1 %v, want ≥ 2x win", v2at10, v1at10)
	}

	out := struct {
		Fills      int              `json:"fills_per_storm"`
		V1RawBytes uint64           `json:"v1_bytes_raw"`
		V1Wire     uint64           `json:"v1_bytes_wire"`
		V2RawBytes uint64           `json:"v2_bytes_raw"`
		V2Wire     uint64           `json:"v2_bytes_wire"`
		BytesRatio float64          `json:"bytes_reduction_x"`
		StormNs    map[string]int64 `json:"storm_completion_ns"`
	}{
		Fills:      fills,
		V1RawBytes: v1Raw,
		V1Wire:     v1Wire,
		V2RawBytes: v2Raw,
		V2Wire:     v2Wire,
		BytesRatio: bytesRatio,
		StormNs:    times,
	}
	writeBenchJSON(t, "BENCH_wire.json", out)
	t.Logf("wrote BENCH_wire.json: %.1fx fewer bytes (%d -> %d), 10ms storm %v -> %v (%.1fx)",
		bytesRatio, v1Wire, v2Wire, v1at10, v2at10, float64(v1at10)/float64(v2at10))
}
