// End-to-end request-span tests: with sampling at 1-in-1, every
// reply-bearing request must produce a client.rtt span and a matching
// server.dispatch span under the same sequence number, the server span
// must nest inside the client round trip, and the merged ring must
// export as loadable Chrome trace-event JSON.
package repro_test

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/obs/trace"
)

func TestSpansEndToEnd(t *testing.T) {
	app, err := core.NewApp(core.Options{Name: "spantest", SpanInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	const syncs = 10
	for i := 0; i < syncs; i++ {
		if err := app.Disp.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	spans := app.Spans.Spans()
	rtt := make(map[uint64]trace.Span)
	disp := make(map[uint64]trace.Span)
	for _, s := range spans {
		switch s.Name {
		case "client.rtt":
			rtt[s.Seq] = s
		case "server.dispatch":
			disp[s.Seq] = s
		}
	}
	if len(rtt) < syncs {
		t.Fatalf("got %d client.rtt spans, want ≥ %d", len(rtt), syncs)
	}
	paired := 0
	for seq, r := range rtt {
		d, ok := disp[seq]
		if !ok {
			continue
		}
		paired++
		if d.Dur > r.Dur {
			t.Errorf("seq %d: server dispatch (%dns) longer than client round trip (%dns)", seq, d.Dur, r.Dur)
		}
		if d.Start < r.Start || d.End() > r.End()+int64(1e6) {
			// Same process, same clock: the dispatch must start after the
			// request was issued. The tail allowance covers the reply
			// being timed on the client before the server span is closed.
			t.Errorf("seq %d: server span [%d,%d] outside client span [%d,%d]",
				seq, d.Start, d.End(), r.Start, r.End())
		}
		if r.Op != d.Op {
			t.Errorf("seq %d: opcode mismatch client %q vs server %q", seq, r.Op, d.Op)
		}
	}
	if paired < syncs {
		t.Fatalf("only %d of %d sampled round trips have both halves", paired, syncs)
	}

	// The NewApp handshake issues reply-bearing requests too; every
	// sampled request must have been flushed inside a timed client.flush.
	hasFlush := false
	for _, s := range spans {
		if s.Name == "client.flush" {
			hasFlush = true
			if s.Arg("frames") <= 0 || s.Arg("bytes") <= 0 {
				t.Errorf("client.flush span missing frames/bytes args: %+v", s)
			}
		}
	}
	if !hasFlush {
		t.Fatal("no client.flush spans recorded")
	}

	// The export parses and carries one X event per span plus the
	// process-name metadata rows.
	data, err := app.Spans.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("ChromeJSON output does not parse: %v", err)
	}
	var xEvents, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			xEvents++
		case "M":
			meta++
		}
	}
	if xEvents != len(spans) {
		t.Fatalf("export has %d X events for %d spans", xEvents, len(spans))
	}
	if meta == 0 {
		t.Fatal("export has no process_name metadata")
	}

	// Counters agree with the rings: both sides sampled every request.
	if got := app.Metrics().Counters()["trace.sampled"]; got == 0 {
		t.Fatal("client trace.sampled counter is zero")
	}
	if got := app.Server.Metrics().Counters()["trace.sampled"]; got == 0 {
		t.Fatal("server trace.sampled counter is zero")
	}
}

// TestSpansDisabledByDefault pins the zero-cost default: no tracer, no
// spans, no trace counters.
func TestSpansDisabledByDefault(t *testing.T) {
	app, err := core.NewApp(core.Options{Name: "spantest"})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := app.Disp.Sync(); err != nil {
		t.Fatal(err)
	}
	if app.Spans != nil {
		t.Fatal("App.Spans set without SpanInterval")
	}
	if got := app.Metrics().Counters()["trace.sampled"]; got != 0 {
		t.Fatalf("trace.sampled = %d without a tracer", got)
	}
}
