# Pre-PR gate: build, vet, race-gated tests, tkcheck over every Tcl
# script in the tree (docs/static-analysis.md), the frame-decoder fuzz
# smoke, the observability smoke (docs/observability.md), and the
# chaos harness (docs/fault-injection.md). All legs must pass before a
# change ships.

GO ?= go

.PHONY: check build vet test tkcheck fuzz-smoke bench bench-smoke bench-farm bench-wire chaos

check: build vet test tkcheck fuzz-smoke bench-smoke chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

tkcheck:
	$(GO) run ./cmd/tkcheck ./examples/... ./cmd/... ./internal/... ./docs
	$(GO) run ./cmd/tkcheck -tests ./cmd/wish

# fuzz-smoke gives the wire-frame decoders (v1 outer framing plus the
# v2 segment/delta codec) a bounded fuzzing pass on every check run;
# longer campaigns just raise -fuzztime. Corpus seeds cover v1 and v2
# frames in both directions (internal/xproto/fuzz_test.go).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadRequestFrame$$' -fuzztime 5s ./internal/xproto
	$(GO) test -run '^$$' -fuzz '^FuzzReadServerFrame$$' -fuzztime 5s ./internal/xproto

bench: bench-farm
	$(GO) test -bench=. -benchmem
	OBS_BENCH=1 $(GO) test -run 'TestEmitObsBench|TestEmitPipelineBench|TestEmitMTServerBench|TestEmitSLOBench|TestEmitRenderBench|TestEmitWireBench' -count=1 .

# bench-smoke runs the metrics-path, pipelining, multi-client, SLO,
# render, farm and wire-codec end-to-end checks (emitting
# BENCH_obs.json, BENCH_pipeline.json, BENCH_mtserver.json,
# BENCH_slo.json, BENCH_render.json, BENCH_farm.json and
# BENCH_wire.json as side effects): roundtrip p50 must track the
# simulated IPC latency, 8 pipelined round trips must beat 8 serial
# ones ≥ 4× under the per-segment model (and per-request times must
# stay framing-independent), aggregate throughput at 8 concurrent
# clients must be ≥ 3× the single-client baseline, span sampling at
# the default 1-in-64 interval must cost < 5% of pipelined round-trip
# throughput, the tiled renderer must beat the seed flat renderer ≥ 3×
# on the fill/scroll/text storm, painters must keep ≥ half their
# throughput under concurrent screenshot export, the session farm must
# hold 1000 concurrent sessions with bounded memory and survive a 10%
# mid-run eviction with zero cross-tenant damage (docs/farm.md), and
# wire protocol v2 must cut bytes-on-wire ≥ 5× and finish the 10 ms-RTT
# storm ≥ 2× faster than v1 (docs/pipelining.md, "Wire protocol v2").
bench-smoke:
	OBS_BENCH=1 $(GO) test -run 'TestEmitObsBench|TestEmitPipelineBench|TestEmitMTServerBench|TestEmitSLOBench|TestEmitRenderBench|TestEmitFarmBench|TestEmitWireBench' -count=1 .

# bench-farm runs just the display-farm benchmark (BENCH_farm.json):
# 1000+ concurrent wish-style sessions, bounded-memory assertion, p99
# dispatch latency, and the 10%-eviction chaos scenario. See
# docs/farm.md.
bench-farm:
	OBS_BENCH=1 $(GO) test -run TestEmitFarmBench -count=1 -timeout 600s .

# bench-wire runs just the wire-protocol-v2 benchmark (BENCH_wire.json):
# v1-vs-v2 bytes on the wire and storm completion time at 0/1/10 ms
# simulated RTT. See docs/pipelining.md, "Wire protocol v2".
bench-wire:
	OBS_BENCH=1 $(GO) test -run TestEmitWireBench -count=1 -timeout 600s .

# chaos runs the fault-injection harness (chaos_test.go): a real widget
# workload under a bounded seeded scenario matrix — including corrupted
# and mid-stream-killed wire-protocol-v2 connections — race-gated,
# asserting zero hangs, zero panics, and every injected fault recovered
# from or surfaced as a clean error. See docs/fault-injection.md.
chaos:
	$(GO) test -race -run TestChaos -count=1 -timeout 300s -v .
