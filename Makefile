# Pre-PR gate: build, vet, race-gated tests, then tkcheck over every
# Tcl script in the tree (docs/static-analysis.md). All four legs must
# pass before a change ships.

GO ?= go

.PHONY: check build vet test tkcheck bench

check: build vet test tkcheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

tkcheck:
	$(GO) run ./cmd/tkcheck ./examples/... ./cmd/... ./internal/...
	$(GO) run ./cmd/tkcheck -tests ./cmd/wish

bench:
	$(GO) test -bench=. -benchmem
