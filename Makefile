# Pre-PR gate: build, vet, race-gated tests, tkcheck over every Tcl
# script in the tree (docs/static-analysis.md), the observability
# smoke (docs/observability.md), and the chaos harness
# (docs/fault-injection.md). All six legs must pass before a change
# ships.

GO ?= go

.PHONY: check build vet test tkcheck bench bench-smoke bench-farm chaos

check: build vet test tkcheck bench-smoke chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

tkcheck:
	$(GO) run ./cmd/tkcheck ./examples/... ./cmd/... ./internal/... ./docs
	$(GO) run ./cmd/tkcheck -tests ./cmd/wish

bench: bench-farm
	$(GO) test -bench=. -benchmem
	OBS_BENCH=1 $(GO) test -run 'TestEmitObsBench|TestEmitPipelineBench|TestEmitMTServerBench|TestEmitSLOBench|TestEmitRenderBench' -count=1 .

# bench-smoke runs the metrics-path, pipelining, multi-client, SLO,
# render and farm end-to-end checks (emitting BENCH_obs.json,
# BENCH_pipeline.json, BENCH_mtserver.json, BENCH_slo.json,
# BENCH_render.json and BENCH_farm.json as side effects): roundtrip p50
# must track the simulated IPC latency, 8 pipelined round trips must
# beat 8 serial ones ≥ 4× under the per-segment model, aggregate
# throughput at 8 concurrent clients must be ≥ 3× the single-client
# baseline, span sampling at the default 1-in-64 interval must cost
# < 5% of pipelined round-trip throughput, the tiled renderer must beat
# the seed flat renderer ≥ 3× on the fill/scroll/text storm, painters
# must keep ≥ half their throughput under concurrent screenshot export,
# and the session farm must hold 1000 concurrent sessions with bounded
# memory and survive a 10% mid-run eviction with zero cross-tenant
# damage (docs/farm.md).
bench-smoke:
	OBS_BENCH=1 $(GO) test -run 'TestEmitObsBench|TestEmitPipelineBench|TestEmitMTServerBench|TestEmitSLOBench|TestEmitRenderBench|TestEmitFarmBench' -count=1 .

# bench-farm runs just the display-farm benchmark (BENCH_farm.json):
# 1000+ concurrent wish-style sessions, bounded-memory assertion, p99
# dispatch latency, and the 10%-eviction chaos scenario. See
# docs/farm.md.
bench-farm:
	OBS_BENCH=1 $(GO) test -run TestEmitFarmBench -count=1 -timeout 600s .

# chaos runs the fault-injection harness (chaos_test.go): a real widget
# workload under a bounded seeded scenario matrix, race-gated, asserting
# zero hangs, zero panics, and every injected fault recovered from or
# surfaced as a clean error. See docs/fault-injection.md.
chaos:
	$(GO) test -race -run TestChaos -count=1 -timeout 300s -v .
