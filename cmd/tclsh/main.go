// Command tclsh is a plain Tcl shell: the Tcl distribution without Tk,
// as it shipped from 1989 (§7 of the paper). It evaluates a script file
// or reads commands interactively from standard input.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"repro/internal/tcl"
)

func main() {
	in := tcl.New()
	if len(os.Args) > 1 {
		var rest []string
		if len(os.Args) > 2 {
			rest = os.Args[2:]
		}
		in.SetGlobal("argv0", os.Args[1])
		in.SetGlobal("argv", tcl.FormatList(rest))
		in.SetGlobal("argc", fmt.Sprint(len(rest)))
		data, err := os.ReadFile(os.Args[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "tclsh: %v\n", err)
			os.Exit(1)
		}
		if _, err := in.Eval(string(data)); err != nil {
			fmt.Fprintf(os.Stderr, "tclsh: %v\n", err)
			os.Exit(1)
		}
		return
	}

	scanner := bufio.NewScanner(os.Stdin)
	var pending strings.Builder
	prompt := "% "
	fmt.Print(prompt)
	for scanner.Scan() {
		pending.WriteString(scanner.Text())
		pending.WriteByte('\n')
		cmd := pending.String()
		if !balanced(cmd) {
			fmt.Print("> ")
			continue
		}
		pending.Reset()
		res, err := in.Eval(cmd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else if res != "" {
			fmt.Println(res)
		}
		fmt.Print(prompt)
	}
}

func balanced(s string) bool {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '{', '[':
			depth++
		case '}', ']':
			depth--
		}
	}
	return depth <= 0
}
