// Command tclsh is a plain Tcl shell: the Tcl distribution without Tk,
// as it shipped from 1989 (§7 of the paper). It evaluates a script file
// or reads commands interactively from standard input.
//
// With -trace, every command invocation (fully substituted) is logged
// to a bounded ring and dumped to standard error at exit — the Tcl-level
// counterpart of wish's protocol trace.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/tcl"
)

func main() {
	os.Exit(run())
}

// run is main's body with a normal return path, so the -trace dump
// (deferred) also happens when a script fails.
func run() int {
	in := tcl.New()
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "-trace" {
		ring := obs.NewRing(4096)
		in.Trace = func(words []string) { ring.Append(strings.Join(words, " ")) }
		defer func() {
			for _, e := range ring.Last(0) {
				fmt.Fprintf(os.Stderr, "%04d %s\n", e.Seq, e.Text)
			}
		}()
		args = args[1:]
	}
	if len(args) > 0 {
		rest := args[1:]
		in.SetGlobal("argv0", args[0])
		in.SetGlobal("argv", tcl.FormatList(rest))
		in.SetGlobal("argc", fmt.Sprint(len(rest)))
		data, err := os.ReadFile(args[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "tclsh: %v\n", err)
			return 1
		}
		if _, err := in.Eval(string(data)); err != nil {
			fmt.Fprintf(os.Stderr, "tclsh: %v\n", err)
			return 1
		}
		return 0
	}

	scanner := bufio.NewScanner(os.Stdin)
	var pending strings.Builder
	prompt := "% "
	fmt.Print(prompt)
	for scanner.Scan() {
		pending.WriteString(scanner.Text())
		pending.WriteByte('\n')
		cmd := pending.String()
		if !balanced(cmd) {
			fmt.Print("> ")
			continue
		}
		pending.Reset()
		res, err := in.Eval(cmd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else if res != "" {
			fmt.Println(res)
		}
		fmt.Print(prompt)
	}
	return 0
}

func balanced(s string) bool {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '{', '[':
			depth++
		case '}', ']':
			depth--
		}
	}
	return depth <= 0
}
