// Command xsimd runs a standalone simulated X display server on a TCP
// address. Separate operating-system processes (wish scripts, the
// examples) connect to it with -display/WISH_DISPLAY, share the screen,
// and can communicate through Tk's send — the multi-process setting of
// the paper's §6.
//
// Usage:
//
//	xsimd [-addr 127.0.0.1:6001] [-width 1024] [-height 768] [-latency-us N] [-latency-model request|segment] [-fault spec] [-stats-addr addr] [-span-interval N]
//
// -fault wraps every accepted connection in the internal/fault chaos
// layer, injecting the faults the comma-separated key=value spec
// describes (see docs/fault-injection.md), e.g.
//
//	xsimd -fault seed=42,jitter=2ms,shortwrite=0.3
//
// -stats-addr serves the live introspection endpoints (/metrics, /spans,
// /slo, /debug/pprof/ — see docs/observability.md) on a second TCP
// address while the server runs. -span-interval samples one request in
// N per connection into the span tracer those endpoints export; clients
// started with the same interval (wish -spans) record the matching
// client-side spans.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"time"

	"repro/internal/fault"
	"repro/internal/obs/statshttp"
	"repro/internal/obs/trace"
	"repro/internal/xserver"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6001", "TCP address to listen on")
	width := flag.Int("width", 1024, "screen width in pixels")
	height := flag.Int("height", 768, "screen height in pixels")
	latency := flag.Int("latency-us", 0, "simulated per-request IPC latency in microseconds")
	latModel := flag.String("latency-model", "request",
		`how simulated latency is charged: "request" (per request) or "segment" (per wire read, rewarding pipelined clients)`)
	faultSpec := flag.String("fault", "",
		`fault-injection scenario applied to every connection, e.g. "seed=42,jitter=2ms,shortwrite=0.3" (docs/fault-injection.md)`)
	statsAddr := flag.String("stats-addr", "",
		"TCP address for the live introspection endpoints (/metrics, /spans, /slo, /debug/pprof/); empty disables")
	spanInterval := flag.Int("span-interval", trace.DefaultInterval,
		"sample 1 request in N into the span tracer served at -stats-addr (0 disables sampling)")
	flag.Parse()

	var scenario fault.Scenario
	if *faultSpec != "" {
		var err error
		scenario, err = fault.ParseScenario(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xsimd: %v\n", err)
			os.Exit(2)
		}
		// The wrapper sits on the server side of each connection: its
		// write direction carries server→client frames.
		scenario.ServerSide = true
	}

	srv := xserver.New(*width, *height)
	if *latency > 0 {
		srv.SetLatency(time.Duration(*latency) * time.Microsecond)
	}
	switch *latModel {
	case "request":
		srv.SetLatencyModel(xserver.LatencyPerRequest)
	case "segment":
		srv.SetLatencyModel(xserver.LatencyPerSegment)
	default:
		fmt.Fprintf(os.Stderr, "xsimd: unknown -latency-model %q (want request or segment)\n", *latModel)
		os.Exit(2)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xsimd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("xsimd: simulated display server on %s (%dx%d)\n", l.Addr(), *width, *height)
	if scenario.Active() {
		fmt.Printf("xsimd: injecting faults on every connection: %s\n", *faultSpec)
	}

	if *statsAddr != "" {
		// The span tracer records the server half of sampled requests;
		// the /spans and /slo endpoints export it alongside the metrics.
		spans := trace.New(8192, *spanInterval)
		srv.SetTracer(spans)
		_, bound, err := statshttp.Serve(*statsAddr, statshttp.Options{
			Registry: srv.Metrics(),
			Tracer:   spans,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "xsimd: stats endpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("xsimd: introspection endpoints on http://%s/ (metrics, spans, slo, debug/pprof)\n", bound)
	}

	// Accept loop: each connection is served directly, or through the
	// fault layer when -fault is given.
	go func() {
		for {
			nc, err := l.Accept()
			if err != nil {
				return
			}
			if scenario.Active() {
				nc = fault.Wrap(nc, scenario, nil)
			}
			go srv.ServeConn(nc)
		}
	}()

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	l.Close()
	srv.Close()
}
