// Command xsimd runs a standalone simulated X display server on a TCP
// address. Separate operating-system processes (wish scripts, the
// examples) connect to it with -display/WISH_DISPLAY, share the screen,
// and can communicate through Tk's send — the multi-process setting of
// the paper's §6.
//
// Usage:
//
//	xsimd [-addr 127.0.0.1:6001] [-width 1024] [-height 768] [-latency-us N] [-latency-model request|segment] [-wire v1|v2] [-fault spec] [-stats-addr addr] [-span-interval N] [-sessions N] [-quota spec] [-idle-evict dur]
//
// -wire controls whether the server accepts wire-protocol-v2 upgrades
// (docs/pipelining.md): compressed, delta-encoded request segments
// negotiated per connection. The default v2 accepts upgrades from
// clients that ask for them (wish -wire v2) and is invisible to v1
// clients; -wire v1 declines every upgrade, forcing all traffic into
// plain v1 framing.
//
// -fault wraps every accepted connection in the internal/fault chaos
// layer, injecting the faults the comma-separated key=value spec
// describes (see docs/fault-injection.md), e.g.
//
//	xsimd -fault seed=42,jitter=2ms,shortwrite=0.3
//
// -stats-addr serves the live introspection endpoints (/metrics, /spans,
// /slo, /debug/pprof/ — see docs/observability.md) on a second TCP
// address while the server runs. -span-interval samples one request in
// N per connection into the span tracer those endpoints export; clients
// started with the same interval (wish -spans) record the matching
// client-side spans.
//
// -sessions N turns the single shared display into a multi-tenant
// session farm (docs/farm.md): each client's AttachSession handshake
// (wish -session) selects an isolated virtual display, admission is
// capped at N sessions, -quota bounds what each session may allocate
// (e.g. "windows=256,pixmap-bytes=16m,gcs=128"), and -idle-evict
// retires sessions idle longer than the given duration. In farm mode
// -stats-addr serves the farm's aggregate registry: farm.* lifecycle
// metrics plus every session's traffic rolled up.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"time"

	"repro/internal/fault"
	"repro/internal/obs/statshttp"
	"repro/internal/obs/trace"
	"repro/internal/xserver"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6001", "TCP address to listen on")
	width := flag.Int("width", 1024, "screen width in pixels")
	height := flag.Int("height", 768, "screen height in pixels")
	latency := flag.Int("latency-us", 0, "simulated per-request IPC latency in microseconds")
	latModel := flag.String("latency-model", "request",
		`how simulated latency is charged: "request" (per request) or "segment" (per wire read, rewarding pipelined clients)`)
	wireVer := flag.String("wire", "v2",
		`highest wire protocol to negotiate: "v2" accepts client upgrade requests, "v1" declines them (docs/pipelining.md)`)
	faultSpec := flag.String("fault", "",
		`fault-injection scenario applied to every connection, e.g. "seed=42,jitter=2ms,shortwrite=0.3" (docs/fault-injection.md)`)
	statsAddr := flag.String("stats-addr", "",
		"TCP address for the live introspection endpoints (/metrics, /spans, /slo, /debug/pprof/); empty disables")
	spanInterval := flag.Int("span-interval", trace.DefaultInterval,
		"sample 1 request in N into the span tracer served at -stats-addr (0 disables sampling)")
	sessions := flag.Int("sessions", 0,
		"host a multi-tenant session farm capped at N sessions (0 = one shared display; docs/farm.md)")
	quotaSpec := flag.String("quota", "",
		`per-session resource quota, e.g. "windows=256,pixmap-bytes=16m,gcs=128" (empty = unlimited; docs/farm.md)`)
	idleEvict := flag.Duration("idle-evict", 0,
		"evict farm sessions idle longer than this duration (0 disables; requires -sessions)")
	flag.Parse()

	var scenario fault.Scenario
	if *faultSpec != "" {
		var err error
		scenario, err = fault.ParseScenario(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xsimd: %v\n", err)
			os.Exit(2)
		}
		// The wrapper sits on the server side of each connection: its
		// write direction carries server→client frames.
		scenario.ServerSide = true
	}
	quota, err := xserver.ParseQuota(*quotaSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xsimd: %v\n", err)
		os.Exit(2)
	}
	var model xserver.LatencyModel
	switch *latModel {
	case "request":
		model = xserver.LatencyPerRequest
	case "segment":
		model = xserver.LatencyPerSegment
	default:
		fmt.Fprintf(os.Stderr, "xsimd: unknown -latency-model %q (want request or segment)\n", *latModel)
		os.Exit(2)
	}
	var wireV2 bool
	switch *wireVer {
	case "v2", "2":
		wireV2 = true
	case "v1", "1":
		wireV2 = false
	default:
		fmt.Fprintf(os.Stderr, "xsimd: unknown -wire %q (want v1 or v2)\n", *wireVer)
		os.Exit(2)
	}
	if *idleEvict != 0 && *sessions <= 0 {
		fmt.Fprintf(os.Stderr, "xsimd: -idle-evict requires -sessions\n")
		os.Exit(2)
	}

	// A span tracer records the server half of sampled requests; the
	// /spans and /slo endpoints export it alongside the metrics.
	var spans *trace.Tracer
	if *statsAddr != "" {
		spans = trace.New(8192, *spanInterval)
	}

	// configure applies the per-server knobs: directly in single-display
	// mode, or to each new session's server in farm mode.
	configure := func(srv *xserver.Server) {
		if *latency > 0 {
			srv.SetLatency(time.Duration(*latency) * time.Microsecond)
		}
		srv.SetLatencyModel(model)
		srv.SetWireV2(wireV2)
		if spans != nil {
			srv.SetTracer(spans)
		}
	}

	var (
		serveConn func(net.Conn)
		stats     statshttp.Options
		shutdown  func()
	)
	if *sessions > 0 {
		farm := xserver.NewFarm(xserver.FarmOptions{
			Width: *width, Height: *height,
			MaxSessions: *sessions,
			Quota:       quota,
			IdleEvict:   *idleEvict,
			Configure:   configure,
		})
		serveConn = farm.ServeConn
		stats = statshttp.Options{Registry: farm.Metrics(), Tracer: spans}
		shutdown = farm.Close
	} else {
		srv := xserver.New(*width, *height)
		srv.SetQuota(quota)
		configure(srv)
		serveConn = srv.ServeConn
		stats = statshttp.Options{Registry: srv.Metrics(), Tracer: spans}
		shutdown = srv.Close
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xsimd: %v\n", err)
		os.Exit(1)
	}
	if *sessions > 0 {
		fmt.Printf("xsimd: session farm on %s (%dx%d per session, cap %d)\n", l.Addr(), *width, *height, *sessions)
	} else {
		fmt.Printf("xsimd: simulated display server on %s (%dx%d)\n", l.Addr(), *width, *height)
	}
	if scenario.Active() {
		fmt.Printf("xsimd: injecting faults on every connection: %s\n", *faultSpec)
	}

	if *statsAddr != "" {
		_, bound, err := statshttp.Serve(*statsAddr, stats)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xsimd: stats endpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("xsimd: introspection endpoints on http://%s/ (metrics, spans, slo, debug/pprof)\n", bound)
	}

	// Accept loop: each connection is served directly, or through the
	// fault layer when -fault is given.
	go func() {
		for {
			nc, err := l.Accept()
			if err != nil {
				return
			}
			if scenario.Active() {
				nc = fault.Wrap(nc, scenario, nil)
			}
			go serveConn(nc)
		}
	}()

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	l.Close()
	shutdown()
}
