// Command xsimd runs a standalone simulated X display server on a TCP
// address. Separate operating-system processes (wish scripts, the
// examples) connect to it with -display/WISH_DISPLAY, share the screen,
// and can communicate through Tk's send — the multi-process setting of
// the paper's §6.
//
// Usage:
//
//	xsimd [-addr 127.0.0.1:6001] [-width 1024] [-height 768] [-latency-us N] [-latency-model request|segment]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/xserver"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6001", "TCP address to listen on")
	width := flag.Int("width", 1024, "screen width in pixels")
	height := flag.Int("height", 768, "screen height in pixels")
	latency := flag.Int("latency-us", 0, "simulated per-request IPC latency in microseconds")
	latModel := flag.String("latency-model", "request",
		`how simulated latency is charged: "request" (per request) or "segment" (per wire read, rewarding pipelined clients)`)
	flag.Parse()

	srv := xserver.New(*width, *height)
	if *latency > 0 {
		srv.SetLatency(time.Duration(*latency) * time.Microsecond)
	}
	switch *latModel {
	case "request":
		srv.SetLatencyModel(xserver.LatencyPerRequest)
	case "segment":
		srv.SetLatencyModel(xserver.LatencyPerSegment)
	default:
		fmt.Fprintf(os.Stderr, "xsimd: unknown -latency-model %q (want request or segment)\n", *latModel)
		os.Exit(2)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xsimd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("xsimd: simulated display server on %s (%dx%d)\n", bound, *width, *height)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	srv.Close()
}
