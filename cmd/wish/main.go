// Command wish is the windowing shell of §5: Tcl + Tk + a main program
// that reads Tcl commands from standard input or from a file. Entire
// windowing applications are written as wish scripts, like the Figure 9
// directory browser.
//
// Usage:
//
//	wish ?-f script? ?-name appName? ?-display addr? ?-session name? ?-wire v1|v2? ?-trace? ?-spans file? ?arg ...?
//
// With -display (or the WISH_DISPLAY environment variable) wish connects
// to a shared simulated display server started with xsimd, so several
// wish applications can see each other and communicate with send. Without
// it, a private in-process display server is created. When the display
// is a session farm (xsimd -sessions), -session (or WISH_SESSION) names
// the virtual display to attach — wish processes naming the same
// session share a screen; different names are fully isolated
// (docs/farm.md).
//
// With -wire v2, the connection negotiates the v2 wire protocol
// (docs/pipelining.md): flate-compressed request segments, delta
// encoding of repeated requests, and latency-adaptive flush batching.
// Servers that do not speak v2 transparently fall back to v1. The
// default is v1; -trace forces v1 (the wire tracer decodes raw v1
// framing only).
//
// With -trace, every protocol request, reply, error and event crossing
// the display connection is decoded (xscope-style); the accumulated
// trace is printed to standard error at exit and is available to
// scripts while running via "tkstats trace".
//
// With -spans, one request in 64 is followed end to end by the span
// layer (internal/obs/trace) and the retained spans are written to the
// named file as Chrome trace-event JSON at exit — load it in
// chrome://tracing or Perfetto. Scripts can export mid-run with
// "tkstats spans ?file?".
//
// The special command "screenshot file.ppm ?window?" is added so headless
// runs can capture what would be on screen.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/tcl"
)

func main() {
	var (
		script   string
		appName  = "wish"
		display  = os.Getenv("WISH_DISPLAY")
		session  = os.Getenv("WISH_SESSION")
		trace    bool
		spanFile string
		wireV2   = os.Getenv("WISH_WIRE") == "v2"
	)
	args := os.Args[1:]
	var scriptArgs []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-f", "-file":
			if i+1 >= len(args) {
				fatal("missing file name after -f")
			}
			i++
			script = args[i]
			// Everything after the script name belongs to the script.
			scriptArgs = args[i+1:]
			i = len(args)
		case "-name":
			if i+1 >= len(args) {
				fatal("missing name after -name")
			}
			i++
			appName = args[i]
		case "-display":
			if i+1 >= len(args) {
				fatal("missing address after -display")
			}
			i++
			display = args[i]
		case "-session":
			if i+1 >= len(args) {
				fatal("missing session name after -session")
			}
			i++
			session = args[i]
		case "-wire":
			if i+1 >= len(args) {
				fatal("missing version after -wire")
			}
			i++
			switch args[i] {
			case "v1", "1":
				wireV2 = false
			case "v2", "2":
				wireV2 = true
			default:
				fatal("unknown wire version %q (want v1 or v2)", args[i])
			}
		case "-trace":
			trace = true
		case "-spans":
			if i+1 >= len(args) {
				fatal("missing file name after -spans")
			}
			i++
			spanFile = args[i]
		default:
			if script == "" && !strings.HasPrefix(args[i], "-") {
				// "wish script args..." shorthand.
				script = args[i]
				scriptArgs = args[i+1:]
				i = len(args)
			} else {
				fatal("unknown option %q", args[i])
			}
		}
	}
	if script != "" && appName == "wish" {
		appName = script
		if i := strings.LastIndexByte(appName, '/'); i >= 0 {
			appName = appName[i+1:]
		}
	}

	spanInterval := 0
	if spanFile != "" {
		spanInterval = 64
	}
	if wireV2 && trace {
		fmt.Fprintln(os.Stderr, "wish: -trace decodes v1 framing only; ignoring -wire v2")
	}
	app, err := core.NewApp(core.Options{Name: appName, Display: display, Session: session, Trace: trace, SpanInterval: spanInterval, WireV2: wireV2})
	if err != nil {
		fatal("%v", err)
	}
	defer app.Close()
	if spanFile != "" {
		// Runs before the deferred Close (LIFO): dump the retained spans
		// while the tracer is still being fed only by this process.
		defer func() {
			data, err := app.Spans.ChromeJSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "wish: span export: %v\n", err)
				return
			}
			if err := os.WriteFile(spanFile, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "wish: span export: %v\n", err)
			}
		}()
	}
	if trace {
		// Runs before the deferred Close above (LIFO), so the
		// connection is still coherent while dumping.
		defer func() {
			for _, line := range app.Tracer.Dump(0) {
				fmt.Fprintln(os.Stderr, line)
			}
		}()
	}

	// Script-visible argument variables, as in wish.
	app.Interp.SetGlobal("argv0", appName)
	app.Interp.SetGlobal("argv", tcl.FormatList(scriptArgs))
	app.Interp.SetGlobal("argc", fmt.Sprint(len(scriptArgs)))

	app.Interp.Register("screenshot", func(in *tcl.Interp, argv []string) (string, error) {
		if len(argv) < 2 || len(argv) > 3 {
			return "", fmt.Errorf(`wrong # args: should be "screenshot file ?window?"`)
		}
		win := ""
		if len(argv) == 3 {
			win = argv[2]
		}
		return "", app.ScreenshotPPM(win, argv[1])
	})

	// §5: commands "placed in a startup file to be read automatically
	// whenever the application is executed". WISHRC overrides ~/.wishrc.
	rc := os.Getenv("WISHRC")
	if rc == "" {
		if home := os.Getenv("HOME"); home != "" {
			rc = home + "/.wishrc"
		}
	}
	if rc != "" {
		if data, err := os.ReadFile(rc); err == nil {
			if _, err := app.Eval(string(data)); err != nil {
				fmt.Fprintf(os.Stderr, "wish: error in %s: %v\n", rc, err)
			}
		}
	}

	if script != "" {
		data, err := os.ReadFile(script)
		if err != nil {
			fatal("couldn't read %s: %v", script, err)
		}
		if _, err := app.Eval(string(data)); err != nil {
			fatal("%s: %v", script, err)
		}
		app.MainLoop()
		return
	}

	// Interactive: read commands from stdin through the toolkit's
	// file-event mechanism (§3.2); each complete command evaluates in the
	// event loop.
	fmt.Println("wish: Tk windowing shell (simulated display); type Tcl commands.")
	var pending strings.Builder
	app.CreateFileHandler(os.Stdin, func(line string) {
		pending.WriteString(line)
		pending.WriteByte('\n')
		cmd := pending.String()
		if !complete(cmd) {
			return
		}
		pending.Reset()
		res, err := app.Eval(cmd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		} else if res != "" {
			fmt.Println(res)
		}
	}, app.Quit)
	app.MainLoop()
}

// complete reports whether a command string has balanced braces and
// brackets, so multi-line commands can be typed interactively.
func complete(s string) bool {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '{', '[':
			depth++
		case '}', ']':
			depth--
		}
	}
	return depth <= 0
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wish: "+format+"\n", args...)
	os.Exit(1)
}
