package main_test

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildOnce compiles wish and xsimd into a shared temp dir.
var (
	buildMu  sync.Mutex
	binDir   string
	buildErr error
)

func binaries(t *testing.T) (wish, xsimd string) {
	t.Helper()
	buildMu.Lock()
	defer buildMu.Unlock()
	if binDir == "" && buildErr == nil {
		dir, err := os.MkdirTemp("", "tkbin")
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
			"repro/cmd/wish", "repro/cmd/xsimd", "repro/cmd/tclsh")
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("build: %v\n%s", err, out)
		} else {
			binDir = dir
		}
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(binDir, "wish"), filepath.Join(binDir, "xsimd")
}

// TestWishRunsScriptFile is the §5 usage: a windowing application written
// entirely as a wish script.
func TestWishRunsScriptFile(t *testing.T) {
	wish, _ := binaries(t)
	dir := t.TempDir()
	script := filepath.Join(dir, "app.tcl")
	if err := os.WriteFile(script, []byte(`
		button .b -text [index $argv 0]
		pack append . .b {top}
		update
		print "text is [lindex [.b configure -text] 4]\n"
		print "argc is $argc\n"
		destroy .
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(wish, "-f", script, "CustomLabel", "extra").CombinedOutput()
	if err != nil {
		t.Fatalf("wish failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "text is CustomLabel") {
		t.Fatalf("output = %q", out)
	}
	if !strings.Contains(string(out), "argc is 2") {
		t.Fatalf("argc: output = %q", out)
	}
}

func TestWishScreenshotCommand(t *testing.T) {
	wish, _ := binaries(t)
	dir := t.TempDir()
	ppm := filepath.Join(dir, "shot.ppm")
	script := filepath.Join(dir, "app.tcl")
	if err := os.WriteFile(script, []byte(fmt.Sprintf(`
		label .l -text "pixels"
		pack append . .l {top}
		update
		screenshot %s .
		destroy .
	`, ppm)), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(wish, "-f", script).CombinedOutput(); err != nil {
		t.Fatalf("wish failed: %v\n%s", err, out)
	}
	data, err := os.ReadFile(ppm)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "P6\n") {
		t.Fatal("screenshot is not a PPM")
	}
}

// TestSendBetweenOSProcesses is the paper's §6 in full: two wish
// processes on one display server (a third process), sending Tcl commands
// to each other over the wire.
func TestSendBetweenOSProcesses(t *testing.T) {
	wish, xsimd := binaries(t)
	dir := t.TempDir()

	// Pick a free port for the display server.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	srv := exec.Command(xsimd, "-addr", addr)
	srvOut, _ := srv.StdoutPipe()
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	// Wait until the server announces itself.
	sc := bufio.NewScanner(srvOut)
	if !sc.Scan() {
		t.Fatal("xsimd produced no output")
	}

	// Application A: registers a primitive and serves until told to die.
	scriptA := filepath.Join(dir, "a.tcl")
	if err := os.WriteFile(scriptA, []byte(`
		proc capital {} {return "Sacramento"}
		print "A ready\n"
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	procA := exec.Command(wish, "-name", "appA", "-display", addr, "-f", scriptA)
	aOut, _ := procA.StdoutPipe()
	if err := procA.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		procA.Process.Kill()
		procA.Wait()
	}()
	scA := bufio.NewScanner(aOut)
	deadlineScan(t, scA, "A ready")

	// Application B: sends to A, prints the answer, asks A to exit, then
	// exits itself.
	scriptB := filepath.Join(dir, "b.tcl")
	if err := os.WriteFile(scriptB, []byte(`
		print "interps: [lsort [winfo interps]]\n"
		print "answer: [send appA capital]\n"
		send appA {after 50 {destroy .}}
		destroy .
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	outB, err := exec.Command(wish, "-name", "appB", "-display", addr, "-f", scriptB).CombinedOutput()
	if err != nil {
		t.Fatalf("wish B failed: %v\n%s", err, outB)
	}
	if !strings.Contains(string(outB), "answer: Sacramento") {
		t.Fatalf("B output = %q", outB)
	}
	if !strings.Contains(string(outB), "interps: appA appB") {
		t.Fatalf("registry listing = %q", outB)
	}

	// A exits on its own because of the command B sent it.
	doneA := make(chan error, 1)
	go func() { doneA <- procA.Wait() }()
	select {
	case <-doneA:
	case <-time.After(5 * time.Second):
		t.Fatal("application A did not exit after remote destroy")
	}
}

func deadlineScan(t *testing.T, sc *bufio.Scanner, want string) {
	t.Helper()
	done := make(chan bool, 1)
	go func() {
		for sc.Scan() {
			if strings.Contains(sc.Text(), want) {
				done <- true
				return
			}
		}
		done <- false
	}()
	select {
	case ok := <-done:
		if !ok {
			t.Fatalf("never saw %q", want)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for %q", want)
	}
}

// TestWishInteractive drives wish through its stdin command loop,
// including a multi-line command.
func TestWishInteractive(t *testing.T) {
	wish, _ := binaries(t)
	cmd := exec.Command(wish, "-name", "interactive")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(stdin, `button .b -text typed`)
	fmt.Fprintln(stdin, `pack append . .b {top}`)
	fmt.Fprintln(stdin, `proc double {x} {`)
	fmt.Fprintln(stdin, `  expr $x * 2`)
	fmt.Fprintln(stdin, `}`)
	fmt.Fprintln(stdin, `print "double: [double 21]\n"`)
	fmt.Fprintln(stdin, `destroy .`)
	stdin.Close()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatal("interactive wish did not exit")
	}
	if !strings.Contains(out.String(), "double: 42") {
		t.Fatalf("interactive output = %q", out.String())
	}
}

// TestXsimdLatencyFlag: the standalone server's -latency-us flag slows
// every request, visible from a connected wish.
func TestXsimdLatencyFlag(t *testing.T) {
	wish, xsimd := binaries(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	srv := exec.Command(xsimd, "-addr", addr, "-latency-us", "2000")
	srvOut, _ := srv.StdoutPipe()
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	sc := bufio.NewScanner(srvOut)
	if !sc.Scan() {
		t.Fatal("xsimd silent")
	}

	dir := t.TempDir()
	script := filepath.Join(dir, "t.tcl")
	// 20 color round trips at >=2ms each: the reported time must exceed
	// 40000 microseconds, proving the latency knob is live.
	if err := os.WriteFile(script, []byte(`
		set us [time {winfo interps} 20]
		print "$us\n"
		destroy .
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(wish, "-display", addr, "-f", script).CombinedOutput()
	if err != nil {
		t.Fatalf("wish: %v\n%s", err, out)
	}
	var us int
	if _, err := fmt.Sscanf(string(out), "%d microseconds", &us); err != nil {
		t.Fatalf("parse %q: %v", out, err)
	}
	if us < 2000 {
		t.Fatalf("per-iteration time %d µs: latency flag had no effect", us)
	}
}

// TestWishStartupFile: §5's startup file, read automatically before the
// script.
func TestWishStartupFile(t *testing.T) {
	wish, _ := binaries(t)
	dir := t.TempDir()
	rc := filepath.Join(dir, "wishrc")
	if err := os.WriteFile(rc, []byte(`proc fromrc {} {return "rc ran"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	script := filepath.Join(dir, "app.tcl")
	if err := os.WriteFile(script, []byte(`print "[fromrc]\n"; destroy .`), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(wish, "-f", script)
	cmd.Env = append(os.Environ(), "WISHRC="+rc)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("wish: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "rc ran") {
		t.Fatalf("startup file not sourced: %q", out)
	}
}

// TestSizesTool runs the Table I generator.
func TestSizesTool(t *testing.T) {
	cmd := exec.Command("go", "run", "./cmd/sizes")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("sizes: %v\n%s", err, out)
	}
	for _, want := range []string{"Intrinsics", "Geometry Manager", "Scrollbar", "Total", "15100"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("sizes output missing %q:\n%s", want, out)
		}
	}
}

// TestWishTraceFlag: wish -trace decodes the protocol stream. The
// script reads its own trace with "tkstats trace" while running, and
// the full accumulated trace is dumped to stderr at exit.
func TestWishTraceFlag(t *testing.T) {
	wish, _ := binaries(t)
	dir := t.TempDir()
	script := filepath.Join(dir, "app.tcl")
	if err := os.WriteFile(script, []byte(`
		button .b -text traced
		pack append . .b {top}
		update
		print "lines: [llength [split [tkstats trace] \n]]\n"
		print "roundtrip: [lindex [tkstats histogram roundtrip] 1]\n"
		destroy .
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(wish, "-trace", "-f", script)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("wish -trace failed: %v\n%s%s", err, stdout.String(), stderr.String())
	}
	// The script saw a non-trivial trace from inside.
	var lines int
	if _, err := fmt.Sscanf(stdout.String(), "lines: %d", &lines); err != nil || lines < 10 {
		t.Fatalf("in-script trace had %d lines (err %v): %q", lines, err, stdout.String())
	}
	// The roundtrip histogram recorded at least one round trip.
	var rtts int
	for _, l := range strings.Split(stdout.String(), "\n") {
		fmt.Sscanf(l, "roundtrip: %d", &rtts)
	}
	if rtts == 0 {
		t.Fatalf("roundtrip histogram empty: %q", stdout.String())
	}
	// The exit dump decodes requests, replies and events with sequence
	// numbers and opcode names.
	dump := stderr.String()
	for _, want := range []string{"-> req ", "<- rep ", "<- evt ", "<- setup ", "CreateWindow", "MapWindow"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("exit trace missing %q:\n%s", want, dump)
		}
	}
	// Every line is sequence-numbered.
	for _, line := range strings.Split(strings.TrimSpace(dump), "\n") {
		var seq int
		if _, err := fmt.Sscanf(line, "%d ", &seq); err != nil || seq == 0 {
			t.Fatalf("unnumbered trace line %q", line)
		}
	}
}

// TestTclshTraceFlag: the Tcl-level counterpart — every command
// invocation is logged and dumped at exit.
func TestTclshTraceFlag(t *testing.T) {
	_, xsimd := binaries(t)
	tclsh := filepath.Join(filepath.Dir(xsimd), "tclsh")
	dir := t.TempDir()
	script := filepath.Join(dir, "s.tcl")
	if err := os.WriteFile(script, []byte(`
		set x 21
		puts "got [expr $x * 2]"
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(tclsh, "-trace", script)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("tclsh -trace: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "got 42") {
		t.Fatalf("script output = %q", stdout.String())
	}
	for _, want := range []string{"set x 21", "puts got 42"} {
		if !strings.Contains(stderr.String(), want) {
			t.Fatalf("command trace missing %q:\n%s", want, stderr.String())
		}
	}
}

// TestTclshScript exercises the plain Tcl shell.
func TestTclshScript(t *testing.T) {
	_, xsimd := binaries(t)
	tclsh := filepath.Join(filepath.Dir(xsimd), "tclsh")
	dir := t.TempDir()
	script := filepath.Join(dir, "s.tcl")
	if err := os.WriteFile(script, []byte(`
		proc fib {n} {
			if {$n < 2} {return $n}
			expr [fib [expr $n-1]] + [fib [expr $n-2]]
		}
		puts "fib(15)=[fib 15]"
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(tclsh, script).CombinedOutput()
	if err != nil {
		t.Fatalf("tclsh: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "fib(15)=610") {
		t.Fatalf("output = %q", out)
	}
}
