// Command tkcheck is the project's static-analysis tool (see
// docs/static-analysis.md). It lints Tcl scripts — .tcl files and the
// script literals Go sources pass to Eval/MustEval — against the live
// command registry without evaluating them, recursing into deferred
// scripts (bind bodies, -command options, after and send arguments),
// and runs two Go analyzers: lock discipline for "guarded by mu"
// fields, and xproto opcode completeness.
//
// Usage:
//
//	tkcheck [-tests] [-known name,...] target ...
//
// Targets are .tcl files, .go files, directories, or dir/... patterns.
// Exits 1 when any diagnostic is reported.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("tkcheck", flag.ContinueOnError)
	fs.SetOutput(errOut)
	tests := fs.Bool("tests", false, "also lint script literals in _test.go files")
	known := fs.String("known", "", "comma-separated extra command names to treat as known")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(errOut, "usage: tkcheck [-tests] [-known name,...] target ...")
		return 2
	}
	r := lint.NewRunner()
	r.IncludeTests = *tests
	for _, name := range strings.Split(*known, ",") {
		if name = strings.TrimSpace(name); name != "" {
			r.Reg.AddKnown(name)
		}
	}
	for _, target := range fs.Args() {
		if err := r.Check(target); err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
	}
	diags := r.Finish()
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(out, "tkcheck: %d problem(s)\n", len(diags))
		return 1
	}
	return 0
}
