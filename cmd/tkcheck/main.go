// Command tkcheck is the project's static-analysis tool (see
// docs/static-analysis.md). It lints Tcl scripts — .tcl files and the
// script literals Go sources pass to Eval/MustEval — against the live
// command registry without evaluating them, recursing into deferred
// scripts (bind bodies, -command options, after and send arguments),
// and runs five Go analyzers: lock discipline for "guarded by mu"
// fields, the whole-program lock-order graph, pooled-value lifetime,
// the metrics-name registry (Go names vs the docs/observability.md
// registry block), and xproto opcode completeness.
//
// Usage:
//
//	tkcheck [-tests] [-known name,...] [-json] [-time] [-j N] target ...
//
// Targets are .tcl, .go, or .md files, directories, or dir/...
// patterns. Analysis fans out across CPUs (cap it with -j); output
// order is deterministic regardless. -json emits one machine-readable
// report on stdout instead of the human lines; -time prints
// per-analyzer wall time to stderr. Exits 1 when any diagnostic is
// reported, 2 on usage or read/parse errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("tkcheck", flag.ContinueOnError)
	fs.SetOutput(errOut)
	tests := fs.Bool("tests", false, "also lint script literals in _test.go files")
	known := fs.String("known", "", "comma-separated extra command names to treat as known")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON report on stdout")
	timings := fs.Bool("time", false, "print per-analyzer timing to stderr")
	jobs := fs.Int("j", 0, "max parallel analysis workers (0 = one per CPU)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(errOut, "usage: tkcheck [-tests] [-known name,...] [-json] [-time] [-j N] target ...")
		return 2
	}
	r := lint.NewRunner()
	r.IncludeTests = *tests
	r.Jobs = *jobs
	for _, name := range strings.Split(*known, ",") {
		if name = strings.TrimSpace(name); name != "" {
			r.Reg.AddKnown(name)
		}
	}
	for _, target := range fs.Args() {
		if err := r.Check(target); err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
	}
	diags := r.Finish()
	if *timings {
		for _, t := range r.Timings() {
			fmt.Fprintf(errOut, "tkcheck: %-10s %s\n", t.Name, t.Duration.Round(time.Microsecond))
		}
	}
	if errs := r.Errs(); len(errs) > 0 {
		for _, err := range errs {
			fmt.Fprintln(errOut, err)
		}
		return 2
	}
	if *jsonOut {
		if err := lint.WriteJSON(out, diags); err != nil {
			fmt.Fprintln(errOut, err)
			return 2
		}
		if len(diags) > 0 {
			return 1
		}
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(out, "tkcheck: %d problem(s)\n", len(diags))
		return 1
	}
	return 0
}
