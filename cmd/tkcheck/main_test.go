package main

import (
	"bytes"
	"strings"
	"testing"
)

// fixture paths are relative to this package directory.
const fixtures = "../../internal/lint/testdata"

func runCheck(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestExitNonZeroOnBadFixtures(t *testing.T) {
	cases := []struct {
		target string
		want   string // a substring of the expected diagnostic
	}{
		{fixtures + "/unknown.tcl", `unknown.tcl:3:1: unknown command "frobnicate"`},
		{fixtures + "/arity.tcl", `arity.tcl:2:1: wrong # args for "set"`},
		{fixtures + "/brace.tcl", `brace.tcl:2:19: missing close-brace`},
		{fixtures + "/deferred.tcl", `deferred.tcl:4:18: unknown command "hilight"`},
		{fixtures + "/expr.tcl", `expr.tcl:3:10: expression syntax error`},
		{fixtures + "/path.tcl", `path.tcl:2:8: bad window path name ".a..b"`},
		{fixtures + "/locks", `locks.go:23:11: counter.count (guarded by mu) accessed without holding mu`},
		{fixtures + "/opcodes", `opcodes.go:9:2: opcode OpOrphan has no case in the NewRequest factory`},
	}
	for _, tc := range cases {
		t.Run(tc.target, func(t *testing.T) {
			code, out, _ := runCheck(t, tc.target)
			if code != 1 {
				t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
			}
			if !strings.Contains(out, tc.want) {
				t.Errorf("output missing %q:\n%s", tc.want, out)
			}
		})
	}
}

func TestExitZeroOnRepoScripts(t *testing.T) {
	code, out, errOut := runCheck(t, "../../examples/...")
	if code != 0 {
		t.Fatalf("examples: exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	code, out, errOut = runCheck(t, "-tests", "../../cmd/wish")
	if code != 0 {
		t.Fatalf("cmd/wish -tests: exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
}

// TestGoldenHumanOutput pins the full human-mode stdout for a fixture
// with diagnostics from both sides of the metrics registry: exact
// lines, exact order, and the trailing problem count.
func TestGoldenHumanOutput(t *testing.T) {
	code, out, errOut := runCheck(t, "-time", fixtures+"/metricsreg")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s", code, out)
	}
	want := fixtures + `/metricsreg/metrics.go:32:12: metric "undocumented.count" is not documented in the metrics registry (add it to the metrics-registry block in docs/observability.md) [metrics]
` + fixtures + `/metricsreg/metrics.go:36:12: metric name is dynamic (not a string literal, package const, wrapper parameter, or "prefix."+expr) and cannot be checked against the registry [metrics]
` + fixtures + `/metricsreg/registry.md:12:1: documented metric "ghost.metric" is not constructed anywhere in the scanned Go code (stale registry entry?) [metrics]
tkcheck: 3 problem(s)
`
	if out != want {
		t.Errorf("stdout mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
	// -time reports to stderr only, so golden stdout stays stable; the
	// analyzers that ran over this fixture must each show up.
	for _, name := range []string{"parse", "metrics", "lockorder", "pool"} {
		if !strings.Contains(errOut, "tkcheck: "+name) {
			t.Errorf("stderr timing output missing %q:\n%s", name, errOut)
		}
	}
}

// TestGoldenJSONOutput pins the -json report byte for byte, for the
// same fixture and for a clean run (empty diagnostics array, not
// null).
func TestGoldenJSONOutput(t *testing.T) {
	code, out, _ := runCheck(t, "-json", fixtures+"/metricsreg")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s", code, out)
	}
	want := `{
  "problems": 3,
  "diagnostics": [
    {
      "file": "` + fixtures + `/metricsreg/metrics.go",
      "line": 32,
      "col": 12,
      "analyzer": "metrics",
      "severity": "error",
      "message": "metric \"undocumented.count\" is not documented in the metrics registry (add it to the metrics-registry block in docs/observability.md)"
    },
    {
      "file": "` + fixtures + `/metricsreg/metrics.go",
      "line": 36,
      "col": 12,
      "analyzer": "metrics",
      "severity": "error",
      "message": "metric name is dynamic (not a string literal, package const, wrapper parameter, or \"prefix.\"+expr) and cannot be checked against the registry"
    },
    {
      "file": "` + fixtures + `/metricsreg/registry.md",
      "line": 12,
      "col": 1,
      "analyzer": "metrics",
      "severity": "error",
      "message": "documented metric \"ghost.metric\" is not constructed anywhere in the scanned Go code (stale registry entry?)"
    }
  ]
}
`
	if out != want {
		t.Errorf("json mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}

	code, out, _ = runCheck(t, "-json", fixtures+"/good.tcl")
	if code != 0 {
		t.Fatalf("clean run: exit = %d, want 0\nstdout:\n%s", code, out)
	}
	want = "{\n  \"problems\": 0,\n  \"diagnostics\": []\n}\n"
	if out != want {
		t.Errorf("clean json mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

// TestJobsFlagDeterministic runs the same mixed target set with -j 1
// and -j 8: stdout must be identical.
func TestJobsFlagDeterministic(t *testing.T) {
	targets := []string{fixtures + "/lockorder", fixtures + "/pool", fixtures + "/locks", fixtures + "/arity.tcl"}
	_, serial, _ := runCheck(t, append([]string{"-j", "1"}, targets...)...)
	if !strings.Contains(serial, "problem(s)") {
		t.Fatalf("expected diagnostics, got:\n%s", serial)
	}
	for i := 0; i < 5; i++ {
		_, parallel, _ := runCheck(t, append([]string{"-j", "8"}, targets...)...)
		if parallel != serial {
			t.Fatalf("parallel output differs from serial:\n--- j1\n%s\n--- j8\n%s", serial, parallel)
		}
	}
}

func TestKnownFlag(t *testing.T) {
	code, _, _ := runCheck(t, fixtures+"/unknown.tcl")
	if code != 1 {
		t.Fatalf("without -known: exit = %d, want 1", code)
	}
	code, out, _ := runCheck(t, "-known", "frobnicate", fixtures+"/unknown.tcl")
	if code != 0 {
		t.Fatalf("with -known: exit = %d, want 0; output:\n%s", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCheck(t); code != 2 {
		t.Error("no targets should exit 2")
	}
	if code, _, _ := runCheck(t, "no/such/file.tcl"); code != 2 {
		t.Error("missing target should exit 2")
	}
	if code, _, _ := runCheck(t, "-bogusflag"); code != 2 {
		t.Error("bad flag should exit 2")
	}
}
