package main

import (
	"bytes"
	"strings"
	"testing"
)

// fixture paths are relative to this package directory.
const fixtures = "../../internal/lint/testdata"

func runCheck(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestExitNonZeroOnBadFixtures(t *testing.T) {
	cases := []struct {
		target string
		want   string // a substring of the expected diagnostic
	}{
		{fixtures + "/unknown.tcl", `unknown.tcl:3:1: unknown command "frobnicate"`},
		{fixtures + "/arity.tcl", `arity.tcl:2:1: wrong # args for "set"`},
		{fixtures + "/brace.tcl", `brace.tcl:2:19: missing close-brace`},
		{fixtures + "/deferred.tcl", `deferred.tcl:4:18: unknown command "hilight"`},
		{fixtures + "/expr.tcl", `expr.tcl:3:10: expression syntax error`},
		{fixtures + "/path.tcl", `path.tcl:2:8: bad window path name ".a..b"`},
		{fixtures + "/locks", `locks.go:23:11: counter.count (guarded by mu) accessed without holding mu`},
		{fixtures + "/opcodes", `opcodes.go:9:2: opcode OpOrphan has no case in the NewRequest factory`},
	}
	for _, tc := range cases {
		t.Run(tc.target, func(t *testing.T) {
			code, out, _ := runCheck(t, tc.target)
			if code != 1 {
				t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
			}
			if !strings.Contains(out, tc.want) {
				t.Errorf("output missing %q:\n%s", tc.want, out)
			}
		})
	}
}

func TestExitZeroOnRepoScripts(t *testing.T) {
	code, out, errOut := runCheck(t, "../../examples/...")
	if code != 0 {
		t.Fatalf("examples: exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	code, out, errOut = runCheck(t, "-tests", "../../cmd/wish")
	if code != 0 {
		t.Fatalf("cmd/wish -tests: exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
}

func TestKnownFlag(t *testing.T) {
	code, _, _ := runCheck(t, fixtures+"/unknown.tcl")
	if code != 1 {
		t.Fatalf("without -known: exit = %d, want 1", code)
	}
	code, out, _ := runCheck(t, "-known", "frobnicate", fixtures+"/unknown.tcl")
	if code != 0 {
		t.Fatalf("with -known: exit = %d, want 0; output:\n%s", code, out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCheck(t); code != 2 {
		t.Error("no targets should exit 2")
	}
	if code, _, _ := runCheck(t, "no/such/file.tcl"); code != 2 {
		t.Error("missing target should exit 2")
	}
	if code, _, _ := runCheck(t, "-bogusflag"); code != 2 {
		t.Error("bad flag should exit 2")
	}
}
