// Command sizes regenerates Table I of the paper for THIS implementation:
// lines of source code per module, next to the paper's own counts for
// Xt/Motif and for the original C Tk. Xt/Motif itself is proprietary-era
// code we cannot rebuild, so its column reproduces the paper's published
// numbers; the interesting comparison — which modules a Tcl-based toolkit
// needs and how the widget code stays small because behaviour is composed
// through Tcl — is visible in the live column.
//
// Run from the repository root: go run ./cmd/sizes
package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// module maps a Table I row to the files that implement it here.
type module struct {
	name     string
	xtMotif  int // paper's Xt/Motif source lines (Table I)
	paperTk  int // paper's Tk source lines (Table I)
	patterns []string
}

var modules = []module{
	{"Intrinsics", 24900, 15100, []string{
		"internal/tk/*.go", "!internal/tk/pack.go", "!internal/tk/*_test.go",
	}},
	{"Tcl", 0, 9300, []string{"internal/tcl/*.go", "!internal/tcl/*_test.go"}},
	{"Geometry Manager", 2100, 1000, []string{"internal/tk/pack.go"}},
	{"Buttons", 6300, 1000, []string{"internal/widget/button.go"}},
	{"Scrollbar", 3000, 1200, []string{"internal/widget/scrollbar.go"}},
	{"Listbox", 6400, 1600, []string{"internal/widget/listbox.go"}},
}

// substrate rows are systems the paper's machines provided (the X server
// and Xlib) that this reproduction had to build; reported for
// transparency, outside the Table I totals.
var substrate = []module{
	{"X server simulator", 0, 0, []string{"internal/xserver/*.go", "!internal/xserver/*_test.go"}},
	{"Xlib equivalent", 0, 0, []string{"internal/xclient/*.go", "!internal/xclient/*_test.go"}},
	{"Wire protocol", 0, 0, []string{"internal/xproto/*.go", "!internal/xproto/*_test.go"}},
	{"Other widgets", 0, 0, []string{
		"internal/widget/*.go", "!internal/widget/button.go",
		"!internal/widget/scrollbar.go", "!internal/widget/listbox.go",
		"!internal/widget/*_test.go",
	}},
}

// countLines counts non-blank lines across the files selected by the
// patterns ("!" patterns exclude).
func countLines(root string, patterns []string) (int, error) {
	include := map[string]bool{}
	for _, p := range patterns {
		neg := strings.HasPrefix(p, "!")
		pat := strings.TrimPrefix(p, "!")
		matches, err := filepath.Glob(filepath.Join(root, pat))
		if err != nil {
			return 0, err
		}
		for _, m := range matches {
			if neg {
				delete(include, m)
			} else {
				include[m] = true
			}
		}
	}
	total := 0
	for f := range include {
		n, err := fileLines(f)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

func fileLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			n++
		}
	}
	return n, sc.Err()
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	fmt.Println("Table I — source lines per module")
	fmt.Println("(Xt/Motif and Tk-1991 columns are the paper's published counts;")
	fmt.Println(" Tk-Go is this repository, measured now)")
	fmt.Println()
	fmt.Printf("%-18s %10s %10s %10s\n", "", "Xt/Motif", "Tk (1991)", "Tk-Go")
	totalXt, totalTk, totalGo := 0, 0, 0
	for _, m := range modules {
		n, err := countLines(root, m.patterns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sizes: %v\n", err)
			os.Exit(1)
		}
		xt := "-"
		if m.xtMotif > 0 {
			xt = fmt.Sprint(m.xtMotif)
		}
		fmt.Printf("%-18s %10s %10d %10d\n", m.name, xt, m.paperTk, n)
		totalXt += m.xtMotif
		totalTk += m.paperTk
		totalGo += n
	}
	fmt.Printf("%-18s %10d %10d %10d\n", "Total", totalXt, totalTk, totalGo)
	fmt.Println()
	fmt.Println("Substrates built for this reproduction (the paper's testbed")
	fmt.Println("provided these as the X11R4 server and Xlib):")
	for _, m := range substrate {
		n, err := countLines(root, m.patterns)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sizes: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  %-22s %8d\n", m.name, n)
	}
}
