// Observability benchmarks: the round-trip latency distribution the
// roundtrip histogram records, and a machine-readable dump
// (BENCH_obs.json) of per-opcode traffic plus quantiles at two
// simulated IPC latency settings. The JSON is the artifact EXPERIMENTS.md
// points at when reproducing the §3.3 traffic-reduction claims.
package repro_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// BenchmarkRoundTripLatency measures one protocol round trip (Sync) at
// two simulated IPC latencies, reporting the histogram's own quantile
// estimates alongside the wall-clock numbers so the two can be compared.
func BenchmarkRoundTripLatency(b *testing.B) {
	for _, bc := range []struct {
		name string
		lat  time.Duration
	}{
		{"latency=0", 0},
		{"latency=1ms", time.Millisecond},
	} {
		b.Run(bc.name, func(b *testing.B) {
			app, err := core.NewApp(core.Options{Name: "bench"})
			if err != nil {
				b.Fatal(err)
			}
			defer app.Close()
			app.Server.SetLatency(bc.lat)
			defer app.Server.SetLatency(0)
			app.Metrics().Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := app.Disp.Sync(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if h, ok := app.Metrics().FindHistogram("roundtrip"); ok {
				s := h.Snapshot()
				b.ReportMetric(float64(s.Quantile(0.5)), "p50-ns")
				b.ReportMetric(float64(s.Quantile(0.99)), "p99-ns")
			}
		})
	}
}

// obsQuantiles is one latency setting's roundtrip distribution in
// BENCH_obs.json.
type obsQuantiles struct {
	Count uint64 `json:"count"`
	P50Ns int64  `json:"p50_ns"`
	P99Ns int64  `json:"p99_ns"`
	MinNs int64  `json:"min_ns"`
	MaxNs int64  `json:"max_ns"`
}

// TestEmitObsBench runs a fixed widget workload, dumps the server's
// per-opcode request counts, then measures the client roundtrip
// histogram at 0 and 1 ms of simulated IPC latency and writes the lot
// to BENCH_obs.json. It doubles as the smoke check for the whole
// metrics path (make check runs it with OBS_BENCH=1): the p50 with 1 ms
// latency must be at least 1 ms, and must exceed the p50 without.
func TestEmitObsBench(t *testing.T) {
	requireObsBench(t, "BENCH_obs.json")
	app, err := core.NewApp(core.Options{Name: "obsbench"})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	// Fixed workload: a small UI with cached resources exercised twice,
	// so the opcode counts show the §3.3 effect (one AllocNamedColor /
	// OpenFont per distinct resource, not per use).
	app.MustEval(`frame .f`)
	app.MustEval(`pack append . .f {top}`)
	for _, s := range []string{"a", "b", "c", "d", "e"} {
		app.MustEval(`button .f.` + s + ` -text ` + s + ` -foreground red`)
		app.MustEval(`pack append .f .f.` + s + ` {top}`)
	}
	app.Update()

	opcodes := make(map[string]uint64)
	for name, v := range app.Server.Metrics().Counters() {
		if rest, ok := strings.CutPrefix(name, "requests."); ok {
			opcodes[rest] = v
		}
	}
	if opcodes["AllocNamedColor"] == 0 || opcodes["CreateWindow"] == 0 {
		t.Fatalf("workload left no opcode trail: %v", opcodes)
	}

	measure := func(lat time.Duration) obsQuantiles {
		app.Server.SetLatency(lat)
		defer app.Server.SetLatency(0)
		app.Metrics().Reset()
		for i := 0; i < 50; i++ {
			if err := app.Disp.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		h, ok := app.Metrics().FindHistogram("roundtrip")
		if !ok {
			t.Fatal("no roundtrip histogram")
		}
		s := h.Snapshot()
		return obsQuantiles{
			Count: s.Count,
			P50Ns: s.Quantile(0.5),
			P99Ns: s.Quantile(0.99),
			MinNs: s.Min,
			MaxNs: s.Max,
		}
	}
	fast := measure(0)
	slow := measure(time.Millisecond)

	// Smoke: the histogram tracks the injected latency.
	if slow.P50Ns < int64(time.Millisecond) {
		t.Fatalf("p50 with 1ms simulated latency = %dns, want ≥ 1ms", slow.P50Ns)
	}
	if slow.P50Ns <= fast.P50Ns {
		t.Fatalf("p50 did not track latency: fast=%dns slow=%dns", fast.P50Ns, slow.P50Ns)
	}

	out := struct {
		Workload     string                  `json:"workload"`
		HistBuckets  int                     `json:"histogram_buckets"`
		OpcodeCounts map[string]uint64       `json:"opcode_counts"`
		Roundtrip    map[string]obsQuantiles `json:"roundtrip"`
	}{
		Workload:     "frame + 5 buttons (shared color/font), update, 50 syncs per latency setting",
		HistBuckets:  obs.NumBuckets,
		OpcodeCounts: opcodes,
		Roundtrip: map[string]obsQuantiles{
			"latency_0":   fast,
			"latency_1ms": slow,
		},
	}
	writeBenchJSON(t, "BENCH_obs.json", out)
	t.Logf("wrote BENCH_obs.json: %d opcodes, p50 %dns -> %dns", len(opcodes), fast.P50Ns, slow.P50Ns)
}
