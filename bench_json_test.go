// Shared plumbing for the OBS_BENCH-gated benchmark emitters. Each
// emitter is a test that runs a fixed workload and writes a
// BENCH_<name>.json artifact; all of them gate on the same environment
// variable and emit through the same marshal-and-write path, so those
// live here once.
package repro_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// requireObsBench skips the test unless the OBS_BENCH gate is set;
// artifact names the file the test would have written.
func requireObsBench(t *testing.T, artifact string) {
	t.Helper()
	if os.Getenv("OBS_BENCH") == "" {
		t.Skipf("set OBS_BENCH=1 to run the workload and emit %s", artifact)
	}
}

// writeBenchJSON writes v, indented with a trailing newline, to the
// named artifact file.
func writeBenchJSON(t *testing.T, artifact string, v any) {
	t.Helper()
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(artifact, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// minDuration runs f reps times and returns the fastest run, shielding
// the emitted numbers from scheduler noise.
func minDuration(reps int, f func() time.Duration) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		if d := f(); d < best {
			best = d
		}
	}
	return best
}
