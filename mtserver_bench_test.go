// Multi-client dispatch benchmarks: N concurrent clients driving a
// pipelined mixed-subsystem request stream against one server. Under
// the giant lock this throughput was flat in N; with per-subsystem
// locking the clients' simulated wire latencies (and their dispatch
// work) overlap, so aggregate throughput scales. The gated emitter
// writes BENCH_mtserver.json, the artifact the EXPERIMENTS.md
// concurrency table points at.
package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/xclient"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

// stressAtoms is the overlapping atom set every benchmark client
// interns from — after the first pass it is all read-lock hits.
var stressAtoms = []string{
	"WM_NAME", "BENCH_A", "BENCH_B", "BENCH_C", "BENCH_D", "BENCH_E", "BENCH_F", "BENCH_G",
}

var benchPalette = []string{"red", "mediumseagreen", "bisque", "steelblue"}

// mixedRound issues one pipelined round of requests spanning the atom,
// color, GC, pixmap and dispatch-only subsystems — 4 reply-bearing and
// 6 one-way requests flushed as a single wire segment — and waits for
// the replies. Returns the number of requests issued.
func mixedRound(d *xclient.Display, i, r int) (int, error) {
	a1 := d.InternAtomAsync(stressAtoms[(i+r)%len(stressAtoms)])
	a2 := d.InternAtomAsync(stressAtoms[(i+r+3)%len(stressAtoms)])
	cc := d.AllocNamedColorAsync(benchPalette[(i+r)%len(benchPalette)])
	gc := d.CreateGC(xclient.GCValues{Mask: xproto.GCForeground, Foreground: uint32(i)})
	d.ChangeGC(gc, xclient.GCValues{Mask: xproto.GCLineWidth, LineWidth: 2})
	pix := d.CreatePixmap(16, 16)
	d.FillRectangle(pix, gc, 0, 0, 16, 16)
	d.FreePixmap(pix)
	d.FreeGC(gc)
	ping := d.SendWithReply(&xproto.PingReq{})
	if _, err := a1.Wait(); err != nil {
		return 0, err
	}
	if _, err := a2.Wait(); err != nil {
		return 0, err
	}
	if _, _, err := cc.Wait(); err != nil {
		return 0, err
	}
	if err := ping.Wait(nil); err != nil {
		return 0, err
	}
	return 10, nil
}

// runClients drives each display through rounds mixed rounds
// concurrently and returns total requests issued and the wall time.
func runClients(displays []*xclient.Display, rounds int) (int, time.Duration, error) {
	var wg sync.WaitGroup
	errs := make([]error, len(displays))
	reqs := make([]int, len(displays))
	start := time.Now()
	for i, d := range displays {
		wg.Add(1)
		go func(i int, d *xclient.Display) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n, err := mixedRound(d, i, r)
				if err != nil {
					errs[i] = err
					return
				}
				reqs[i] += n
			}
		}(i, d)
	}
	wg.Wait()
	wall := time.Since(start)
	total := 0
	for i := range displays {
		if errs[i] != nil {
			return 0, 0, errs[i]
		}
		total += reqs[i]
	}
	return total, wall, nil
}

// openClients dials n in-process clients against s.
func openClients(tb testing.TB, s *xserver.Server, n int) []*xclient.Display {
	displays := make([]*xclient.Display, n)
	for i := range displays {
		d, err := xclient.Open(s.ConnectPipe())
		if err != nil {
			tb.Fatal(err)
		}
		displays[i] = d
	}
	return displays
}

// BenchmarkMultiClientDispatch measures aggregate multi-client request
// throughput at 1 ms of simulated latency per wire segment. The
// interesting number is how little ns/req grows from clients=1 to
// clients=8: with subsystem locking the per-segment sleeps overlap.
func BenchmarkMultiClientDispatch(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", n), func(b *testing.B) {
			s := xserver.New(800, 600)
			defer s.Close()
			s.SetLatency(time.Millisecond)
			s.SetLatencyModel(xserver.LatencyPerSegment)
			displays := openClients(b, s, n)
			defer func() {
				for _, d := range displays {
					d.Close()
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			totalReqs := 0
			for i := 0; i < b.N; i++ {
				reqs, _, err := runClients(displays, 1)
				if err != nil {
					b.Fatal(err)
				}
				totalReqs += reqs
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalReqs), "ns/req")
		})
	}
}

// TestEmitMTServerBench measures aggregate throughput at 1/2/4/8
// concurrent clients, snapshots the per-subsystem lock-wait histograms,
// measures the allocation cost of the hot reply path, and writes
// BENCH_mtserver.json. It doubles as the acceptance check (make check
// runs it with OBS_BENCH=1): aggregate throughput at 8 clients must be
// ≥ 3× the single-client baseline — impossible under a giant lock that
// serializes the per-segment latency, which is exactly what the old
// server did.
func TestEmitMTServerBench(t *testing.T) {
	requireObsBench(t, "BENCH_mtserver.json")

	const rounds = 40
	const reps = 3

	s := xserver.New(800, 600)
	defer s.Close()
	s.SetLatency(time.Millisecond)
	s.SetLatencyModel(xserver.LatencyPerSegment)

	throughput := make(map[int]float64) // clients -> aggregate requests/sec
	for _, n := range []int{1, 2, 4, 8} {
		displays := openClients(t, s, n)
		// Warm the atom/color caches so every measured pass exercises the
		// read-lock fast paths, not first-touch interning.
		if _, _, err := runClients(displays, 2); err != nil {
			t.Fatal(err)
		}
		best := 0.0
		for rep := 0; rep < reps; rep++ {
			total, wall, err := runClients(displays, rounds)
			if err != nil {
				t.Fatal(err)
			}
			if rps := float64(total) / wall.Seconds(); rps > best {
				best = rps
			}
		}
		throughput[n] = best
		for _, d := range displays {
			d.Close()
		}
	}

	speedup := throughput[8] / throughput[1]
	if speedup < 3 {
		t.Fatalf("aggregate throughput at 8 clients = %.0f req/s vs %.0f at 1 (%.2fx): want ≥ 3x — dispatch is serializing",
			throughput[8], throughput[1], speedup)
	}

	// Per-subsystem lock-wait histograms, accumulated over the whole run.
	type lockwait struct {
		Count uint64 `json:"acquisitions"`
		P50Ns int64  `json:"p50_wait_ns"`
		P99Ns int64  `json:"p99_wait_ns"`
		MaxNs int64  `json:"max_wait_ns"`
	}
	waits := make(map[string]lockwait)
	for _, name := range s.Metrics().HistogramNames() {
		if len(name) < 9 || name[:9] != "lockwait." {
			continue
		}
		snap := s.Metrics().Histogram(name).Snapshot()
		waits[name[9:]] = lockwait{
			Count: snap.Count,
			P50Ns: snap.Quantile(0.5),
			P99Ns: snap.Quantile(0.99),
			MaxNs: snap.Max,
		}
	}

	// Allocation cost of the hot reply path: pipelined ping round trips
	// at zero latency, no round-trip timer (it would allocate), counted
	// with ReadMemStats on the client side. The server side is observed
	// indirectly: before the pooled Writer/frame/read paths this number
	// included a make per frame on both ends.
	allocsPerRTT := func() float64 {
		as := xserver.New(200, 200)
		defer as.Close()
		d, err := xclient.Open(as.ConnectPipe())
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		d.SetRoundTripTimeout(0)
		const flight, iters = 8, 200
		cookies := make([]*xclient.Cookie, flight)
		run := func() {
			for j := range cookies {
				cookies[j] = d.SendWithReply(&xproto.PingReq{})
			}
			for _, ck := range cookies {
				if err := ck.Wait(nil); err != nil {
					t.Fatal(err)
				}
			}
		}
		run() // warm pools and scratch buffers
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < iters; i++ {
			run()
		}
		runtime.ReadMemStats(&after)
		return float64(after.Mallocs-before.Mallocs) / float64(flight*iters)
	}()

	out := struct {
		LatencyNs    int64               `json:"segment_latency_ns"`
		Rounds       int                 `json:"rounds_per_client"`
		ReqPerSec    map[string]float64  `json:"aggregate_req_per_sec"`
		Speedup8v1   float64             `json:"speedup_8_clients_vs_1"`
		Lockwait     map[string]lockwait `json:"lockwait"`
		AllocsPerRTT float64             `json:"allocs_per_pipelined_roundtrip"`
	}{
		LatencyNs:    int64(time.Millisecond),
		Rounds:       rounds,
		ReqPerSec:    map[string]float64{},
		Speedup8v1:   speedup,
		Lockwait:     waits,
		AllocsPerRTT: allocsPerRTT,
	}
	for n, v := range throughput {
		out.ReqPerSec[fmt.Sprintf("clients_%d", n)] = v
	}
	writeBenchJSON(t, "BENCH_mtserver.json", out)
	t.Logf("wrote BENCH_mtserver.json: %.0f req/s at 1 client, %.0f at 8 (%.2fx), %.1f allocs/pipelined rtt",
		throughput[1], throughput[8], speedup, allocsPerRTT)
}
