// Paint: the paper's §7 performance scenario, working end to end — "it
// is possible to paint with the mouse in one application, have all the
// mouse motion events bound into Tcl commands, which in turn use send to
// forward commands to another application in a different process, which
// finally draws the painted object in its own window".
//
// Here the "pad" application binds <B1-Motion> on its canvas to a Tcl
// command that both draws locally and forwards the stroke with send to
// the "mirror" application, which draws it in its own canvas. The mouse
// is driven synthetically; both screens end up with the same stroke, and
// the round-trip rate is reported.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/xserver"
)

func main() {
	srv := xserver.New(1024, 768)
	defer srv.Close()

	pad, err := core.NewAppOnServer(srv, "pad", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer pad.Close()
	mirror, err := core.NewAppOnServer(srv, "mirror", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer mirror.Close()

	mirror.MustEval(`
		wm title . mirror
		wm geometry . +500+50
		canvas .c -width 300 -height 200
		pack append . .c {top}
		set strokes 0
		proc stroke {x0 y0 x1 y1} {
			global strokes
			.c create line $x0 $y0 $x1 $y1 -width 2 -fill navy
			incr strokes
		}
	`)
	mirror.Update()

	pad.MustEval(`
		wm title . pad
		wm geometry . +50+50
		canvas .c -width 300 -height 200
		pack append . .c {top}
		set lastX -1
		bind .c <Button-1> {set lastX %x; set lastY %y}
		bind .c <B1-Motion> {
			.c create line $lastX $lastY %x %y -width 2 -fill navy
			send mirror [list stroke $lastX $lastY %x %y]
			set lastX %x; set lastY %y
		}
	`)
	pad.Update()

	// Drive the mouse through a zig-zag stroke while the mirror serves.
	stop := mirror.StartServing()
	w, _ := pad.NameToWindow(".c")
	rx, ry := w.RootCoords()
	start := time.Now()
	pad.Disp.WarpPointer(rx+20, ry+20)
	pad.Disp.FakeButton(1, true)
	pad.Update()
	points := 0
	for i := 1; i <= 40; i++ {
		x := 20 + i*6
		y := 20 + (i%2)*80 + i*2
		pad.Disp.WarpPointer(rx+x, ry+y)
		pad.Update() // binding fires: local draw + send to mirror
		points++
	}
	pad.Disp.FakeButton(1, false)
	pad.Update()
	stop()
	elapsed := time.Since(start)

	strokes := mirror.MustEval(`set strokes`)
	fmt.Printf("forwarded %s strokes in %v (%.0f strokes/sec)\n",
		strokes, elapsed.Round(time.Millisecond),
		float64(points)/elapsed.Seconds())
	fmt.Println("pad items:   ", pad.MustEval(`.c find withtag all`))
	fmt.Println("mirror items:", mirror.MustEval(`.c find withtag all`))

	if err := pad.ScreenshotPPM("", "paint.ppm"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote paint.ppm (both canvases, same stroke)")
}
