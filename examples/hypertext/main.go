// Hypertext: the paper's §6 sketch of active objects — "a hypertext
// system can be implemented by associating Tcl commands with pieces of
// text or graphics in an editor; when a mouse button is clicked over an
// item then the associated commands are executed."
//
// The document below is a column of label widgets; "links" are labels
// whose associated Tcl command was bound to Button-1. One link opens a
// new view (a toplevel window); another "plays" media by sending a
// command to a separate jukebox application on the same display — the
// paper's hypermedia link.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/xserver"
)

func main() {
	srv := xserver.New(1024, 768)
	defer srv.Close()

	doc, err := core.NewAppOnServer(srv, "document", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer doc.Close()
	jukebox, err := core.NewAppOnServer(srv, "jukebox", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer jukebox.Close()

	// The jukebox application: one primitive, "play". Its window is
	// placed away from the document so the two don't overlap on the
	// shared screen.
	jukebox.MustEval(`
		wm title . jukebox
		wm geometry . +500+50
		set nowPlaying ""
		proc play {what} {
			global nowPlaying
			set nowPlaying $what
			return "playing $what"
		}
	`)
	jukebox.Update()

	// The document: plain text plus two active items.
	doc.MustEval(`
		wm title . hypertext
		wm geometry . +20+50
		label .t1 -text "Tk lets applications embed"
		label .link1 -text {[open a new view]} -fg blue
		label .t2 -text "commands in text, and even"
		label .link2 -text {[play the demo recording]} -fg blue
		pack append . .t1 {top frame w} .link1 {top frame w} .t2 {top frame w} .link2 {top frame w}

		# A hypertext link: a Tcl command that opens a new view.
		bind .link1 <Button-1> {
			toplevel .view -width 10 -height 10
			wm geometry .view +250+250
			label .view.body -text "This is the linked view."
			pack append .view .view.body {top}
			set opened 1
		}
		# A hypermedia link: send a play command to the audio application.
		bind .link2 <Button-1> {
			set playResult [send jukebox {play "demo recording"}]
		}
	`)
	doc.Update()

	clickOn := func(path string) {
		w, err := doc.NameToWindow(path)
		if err != nil {
			log.Fatal(err)
		}
		rx, ry := w.RootCoords()
		doc.Disp.WarpPointer(rx+5, ry+5)
		doc.Disp.FakeButton(1, true)
		doc.Disp.FakeButton(1, false)
		doc.Update()
	}

	// Follow the hypertext link.
	clickOn(".link1")
	fmt.Println("clicked link 1; new view exists:", doc.MustEval(`winfo exists .view`))

	// Follow the hypermedia link; the jukebox must be pumping its loop.
	stop := jukebox.StartServing()
	clickOn(".link2")
	stop()
	fmt.Println("clicked link 2; document saw:", doc.MustEval(`set playResult`))
	fmt.Println("jukebox state:", jukebox.MustEval(`set nowPlaying`))

	if err := doc.ScreenshotPPM("", "hypertext.ppm"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote hypertext.ppm")
}
