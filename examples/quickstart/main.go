// Quickstart: the paper's §4 example, end to end. It creates the
// "Hello, world" button with a Tcl command, packs it, clicks it with
// synthetic input, reconfigures it with the widget command, and writes a
// screenshot so you can see the result without a physical display.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	app, err := core.NewApp(core.Options{Name: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	// The exact creation command from §4 of the paper.
	app.MustEval(`button .hello -bg Red -text "Hello, world" -command {print "Hello!\n"}`)
	app.MustEval(`pack append . .hello {top expand}`)
	app.MustEval(`wm title . "Quickstart"`)
	app.Update()

	// Click the button with synthetic input; its Tcl command prints.
	w, _ := app.NameToWindow(".hello")
	rx, ry := w.RootCoords()
	app.Disp.WarpPointer(rx+w.Width/2, ry+w.Height/2)
	app.Disp.FakeButton(1, true)
	app.Disp.FakeButton(1, false)
	app.Update()

	// The paper's follow-up widget commands.
	app.MustEval(`.hello flash`)
	app.MustEval(`.hello configure -bg PalePink1 -relief sunken`)
	app.Update()
	fmt.Printf("button background is now %s\n",
		app.MustEval(`lindex [.hello configure -background] 4`))

	if err := app.ScreenshotPPM(".", "quickstart.ppm"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.ppm")
}
