// Ifedit: the paper's §6 interface-editor scenario — "with Tk and send it
// becomes possible for an interface editor to work on live applications,
// using send to query and modify the application's interface ... When a
// satisfactory interface has been created, the interface editor can
// produce a Tcl command file for the application to read at startup time
// to configure its interface in the future."
//
// A target application runs a small form; the "editor" (a second
// application with no prior knowledge of the target) discovers the
// widget tree with send, edits a label and the layout live, then emits
// interface.tcl — a script that recreates the edited interface.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/tcl"
	"repro/internal/xserver"
)

func main() {
	srv := xserver.New(1024, 768)
	defer srv.Close()

	target, err := core.NewAppOnServer(srv, "app", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer target.Close()
	editor, err := core.NewAppOnServer(srv, "editor", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer editor.Close()

	// The application being edited.
	target.MustEval(`
		wm title . "Sign-up"
		label .title -text "Sign up"
		entry .name -width 20
		button .ok -text Submit -command {print submitted\n}
		button .cancel -text Cancel -command {destroy .}
		pack append . .title {top fillx} .name {top} .ok {left expand} .cancel {right expand}
	`)
	target.Update()

	stop := target.StartServing()
	defer stop()

	send := func(cmd string) string {
		res, err := editor.Send("app", cmd)
		if err != nil {
			log.Fatalf("send %q: %v", cmd, err)
		}
		return res
	}

	// 1. Discover the live interface.
	children, _ := tcl.ParseList(send(`winfo children .`))
	fmt.Println("live widget tree:")
	for _, c := range children {
		fmt.Printf("  %-9s %s\n", c, send(`winfo class `+c))
	}

	// 2. Edit it live: relabel the button, restyle the title, rearrange.
	send(`.ok configure -text "Create account"`)
	send(`.title configure -relief ridge -borderwidth 3`)
	send(`pack unpack .cancel`)
	send(`pack append . .cancel {bottom fillx}`)
	fmt.Println("\nedited live: button text =", send(`lindex [.ok configure -text] 4`))

	// 3. Emit a startup script reproducing the edited interface.
	var script strings.Builder
	script.WriteString("# interface configuration produced by ifedit\n")
	for _, c := range children {
		class := send(`winfo class ` + c)
		script.WriteString(strings.ToLower(class) + " " + c)
		// Record every option whose current value differs from its
		// default (the configure introspection gives both).
		optTuples, _ := tcl.ParseList(send(c + ` configure`))
		for _, tup := range optTuples {
			fields, _ := tcl.ParseList(tup)
			if len(fields) != 5 {
				continue // synonym entries
			}
			name, def, cur := fields[0], fields[3], fields[4]
			if cur != def {
				script.WriteString(" " + name + " " + tcl.QuoteElement(cur))
			}
		}
		script.WriteString("\n")
	}
	// Layout, from pack info.
	packPairs, _ := tcl.ParseList(send(`pack info .`))
	script.WriteString("pack append .")
	for i := 0; i+1 < len(packPairs); i += 2 {
		script.WriteString(" " + packPairs[i] + " " + tcl.QuoteElement(packPairs[i+1]))
	}
	script.WriteString("\n")

	if err := os.WriteFile("interface.tcl", []byte(script.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote interface.tcl:")
	fmt.Println(script.String())

	// 4. Prove the script works: build a fresh application from it.
	fresh, err := core.NewAppOnServer(srv, "fresh", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer fresh.Close()
	fresh.MustEval(`wm geometry . +400+50`)
	fresh.MustEval(script.String())
	fresh.Update()
	fmt.Println("fresh app children:", fresh.MustEval(`winfo children .`))
	fmt.Println("fresh app button: ", fresh.MustEval(`lindex [.ok configure -text] 4`))

	if err := fresh.ScreenshotPPM("", "ifedit.ppm"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote ifedit.ppm")
}
