// Duo: the paper's §6 debugger/editor scenario. Two separate Tk
// applications — an "editor" showing source lines and a "debugger" with a
// breakpoint table — share one display and cooperate purely through the
// send command: the debugger sends commands to the editor to highlight
// the current line of execution, and the editor sends commands to the
// debugger to set a breakpoint at a selected line. Neither application
// was written to know about the other's internals; send gives access to
// everything their Tcl interfaces expose.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/xserver"
)

func main() {
	// One shared display server; two independent applications on it.
	srv := xserver.New(1024, 768)
	defer srv.Close()

	editor, err := core.NewAppOnServer(srv, "editor", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer editor.Close()
	debugger, err := core.NewAppOnServer(srv, "debugger", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer debugger.Close()

	// --- The editor: a text widget showing source plus a "highlight"
	// primitive exposed as an ordinary Tcl procedure (the current line of
	// execution is marked with a tag, as §6 describes).
	editor.MustEval(`
		wm title . editor
		wm geometry . +20+40
		text .text -width 32 -height 8
		pack append . .text {top expand fill}
		.text insert end "int main(void) \{\n    int x = compute();\n    print_result(x);\n    return 0;\n\}"
		proc highlight {line} {
			.text tag remove pc
			.text tag add pc $line.0 $line.end
			.text tag configure pc -background LightSteelBlue
			return "highlighted line $line"
		}
	`)

	// --- The debugger: breakpoint state plus primitives.
	debugger.MustEval(`
		wm title . debugger
		wm geometry . +20+300
		label .status -text "debugger: stopped"
		pack append . .status {top fillx}
		set breakpoints {}
		proc break_at {line} {
			global breakpoints
			lappend breakpoints $line
			return "breakpoint set at line $line"
		}
		proc stopped_at {line} {
			.status configure -text "debugger: stopped at line $line"
			send editor [list highlight $line]
		}
	`)

	// In real life each application runs MainLoop in its own process.
	// Here, while one application performs a send, the other's event
	// loop is pumped in the background so it can answer.
	withPump := func(pumped *core.App, fn func()) {
		stop := pumped.StartServing()
		fn()
		stop()
	}

	// 1. The debugger hits a breakpoint and highlights the line in the
	//    editor — one send, nested inside a Tcl procedure.
	withPump(editor, func() {
		debugger.MustEval(`stopped_at 2`)
	})
	fmt.Println("debugger:", debugger.MustEval(`lindex [.status configure -text] 4`))

	// 2. The editor (say, a key binding on a selected line) sets a
	//    breakpoint in the debugger.
	withPump(debugger, func() {
		editor.MustEval(`set reply [send debugger {break_at 3}]`)
	})
	fmt.Println("editor got:", editor.MustEval(`set reply`))

	fmt.Println("debugger breakpoints:", debugger.MustEval(`set breakpoints`))
	fmt.Println("editor highlighted:  ", editor.MustEval(`.text tag names`))

	// 3. winfo interps shows both applications on the display (§6's
	//    registry).
	fmt.Println("registered interpreters:", debugger.MustEval(`winfo interps`))

	if err := debugger.ScreenshotPPM("", "duo.ppm"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote duo.ppm (both applications on the shared screen)")
}
