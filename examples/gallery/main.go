// Gallery: every widget class in the set (§7 lists them: panes/frames,
// labels, buttons, check buttons, radio buttons, messages, listboxes,
// scrollbars, scales — plus the entries and menus the paper was still
// writing, and the canvas it planned). Built entirely from Tcl, driven
// with synthetic input, and captured to gallery.ppm.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	app, err := core.NewApp(core.Options{Name: "gallery"})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	app.MustEval(`
		wm title . "Widget Gallery"

		frame .left -borderwidth 2 -relief ridge
		frame .right -borderwidth 2 -relief ridge
		pack append . .left {left fill} .right {right expand fill}

		label .left.title -text "Controls"
		button .left.go -text "Go" -command {set status pressed}
		checkbutton .left.verbose -text "Verbose" -variable verbose
		radiobutton .left.fast -text "Fast" -variable speed -value fast
		radiobutton .left.slow -text "Slow" -variable speed -value slow
		scale .left.volume -from 0 -to 10 -length 90 -label Volume
		entry .left.name -width 14
		menubutton .left.file -text "File" -menu .left.file.m
		menu .left.file.m
		.left.file.m add command -label "Open" -command {set status open}
		.left.file.m add separator
		.left.file.m add command -label "Quit" -command {destroy .}
		pack append .left \
			.left.title {top fillx} \
			.left.file {top fillx} \
			.left.go {top fillx pady 2} \
			.left.verbose {top frame w} \
			.left.fast {top frame w} \
			.left.slow {top frame w} \
			.left.volume {top pady 4} \
			.left.name {top pady 2}

		message .right.blurb -width 190 -text "Tk widgets are created and\
 manipulated with Tcl commands; this whole window is one script."
		scrollbar .right.sb -command ".right.list view"
		listbox .right.list -scroll ".right.sb set" -geometry 18x6
		text .right.note -width 25 -height 2
		canvas .right.art -width 150 -height 70 -background white
		pack append .right \
			.right.blurb {top fillx} \
			.right.sb {right filly} \
			.right.art {bottom} \
			.right.note {bottom fillx} \
			.right.list {top expand fill}

		.right.note insert end "text widget with a tag"
		.right.note tag add hl 1.17 1.20
		.right.note tag configure hl -background Gold

		foreach w {frame label button checkbutton radiobutton message
		           listbox scrollbar scale entry menu menubutton canvas text} {
			.right.list insert end $w
		}
		.right.art create rectangle 10 10 60 60 -fill SteelBlue
		.right.art create oval 55 15 140 60 -fill Gold
		.right.art create text 35 30 -text "canvas" -fill white
	`)
	app.Update()

	// Exercise a few widgets from Tcl.
	app.MustEval(`.left.go invoke`)
	app.MustEval(`.left.verbose invoke`)
	app.MustEval(`.left.fast invoke`)
	app.MustEval(`.left.volume set 7`)
	app.MustEval(`.left.name insert 0 "wish"`)
	app.MustEval(`.right.list select from 2`)
	app.MustEval(`.right.list select to 4`)
	app.Update()

	fmt.Println("status: ", app.MustEval(`set status`))
	fmt.Println("speed:  ", app.MustEval(`set speed`))
	fmt.Println("volume: ", app.MustEval(`.left.volume get`))
	fmt.Println("name:   ", app.MustEval(`.left.name get`))
	fmt.Println("picked: ", app.MustEval(`selection get`))

	if err := app.ScreenshotPPM(".", "gallery.ppm"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote gallery.ppm")
}
