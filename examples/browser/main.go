// Browser: the paper's Figure 9 — a directory browser written as a
// 21-line wish script — run end to end, producing the Figure 10 screen
// dump as browser.ppm.
//
// The script below is the paper's, with its two shell-outs adapted for a
// self-contained run: opening a subdirectory or file prints what the
// original would have spawned ("browse $file &" in a new process, or the
// mx editor) instead of requiring those programs to exist. The widget
// structure, packing command, selection use and bindings are verbatim.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/tcl"
	"repro/internal/xproto"
)

// figure9 is the browse script (Figure 9, lines 2-21).
const figure9 = `
scrollbar .scroll -command ".list view"
listbox .list -scroll ".scroll set" -relief raised -geometry 20x20
pack append . .scroll {right filly} .list {left expand fill}
proc browse {dir file} {
    if {[string compare $dir "."] != 0} {set file $dir/$file}
    if [file $file isdirectory] {
        print "browse $file &  (a second browser would start here)\n"
    } else {
        if [file $file isfile] {
            print "exec mx $file  (the mx editor would open here)\n"
        } else {
            print "$file isn't a directory or regular file\n"
        }
    }
}
if $argc>0 {set dir [index $argv 0]} else {set dir "."}
foreach i [exec ls -a $dir] {
    .list insert end $i
}
bind .list <space> {foreach i [selection get] {browse $dir $i}}
bind .list <Control-q> {destroy .}
`

func main() {
	dir := "."
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	app, err := core.NewApp(core.Options{Name: "browse"})
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	app.Interp.SetGlobal("argv", tcl.FormatList([]string{dir}))
	app.Interp.SetGlobal("argc", "1")
	app.MustEval(`wm title . browse`)
	app.MustEval(figure9)
	app.Update()
	fmt.Printf("browsing %s: %s entries\n", dir, app.MustEval(`.list size`))

	// Select a few entries with the mouse (Figure 10 shows three
	// darkened items) and press space to browse them.
	lb, _ := app.NameToWindow(".list")
	rx, ry := lb.RootCoords()
	app.Disp.WarpPointer(rx+30, ry+24) // second row
	app.Disp.FakeButton(1, true)
	app.Disp.WarpPointer(rx+30, ry+54) // drag to fourth row
	app.Disp.FakeButton(1, false)
	app.Update()
	fmt.Printf("selected: %q\n", app.MustEval(`selection get`))

	app.Disp.FakeKey(xproto.KsSpace, true)
	app.Disp.FakeKey(xproto.KsSpace, false)
	app.Update()

	if err := app.ScreenshotPPM(".", "browser.ppm"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote browser.ppm (the Figure 10 screen dump)")

	// Control-q exits via the script's own binding.
	app.Disp.FakeKey(xproto.KsControlL, true)
	app.Disp.FakeKey('q', true)
	app.Disp.FakeKey('q', false)
	app.Update()
	if app.Quitting() {
		fmt.Println("Control-q destroyed the application, as bound")
	}
}
