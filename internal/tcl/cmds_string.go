package tcl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// registerString installs string, format and scan.
func registerString(in *Interp) {
	in.Register("string", cmdString)
	in.Register("format", cmdFormat)
	in.Register("scan", cmdScan)
}

// GlobMatch reports whether s matches the glob pattern pat using Tcl's
// "string match" rules: * matches any sequence, ? any single character,
// [chars] a set or range, and backslash escapes the next character.
func GlobMatch(pat, s string) bool {
	p, n := 0, 0
	for p < len(pat) {
		switch pat[p] {
		case '*':
			// Collapse consecutive stars.
			for p < len(pat) && pat[p] == '*' {
				p++
			}
			if p == len(pat) {
				return true
			}
			for i := n; i <= len(s); i++ {
				if GlobMatch(pat[p:], s[i:]) {
					return true
				}
			}
			return false
		case '?':
			if n >= len(s) {
				return false
			}
			p++
			n++
		case '[':
			if n >= len(s) {
				return false
			}
			p++
			matched := false
			c := s[n]
			for p < len(pat) && pat[p] != ']' {
				lo := pat[p]
				if lo == '\\' && p+1 < len(pat) {
					p++
					lo = pat[p]
				}
				hi := lo
				if p+2 < len(pat) && pat[p+1] == '-' && pat[p+2] != ']' {
					hi = pat[p+2]
					p += 2
				}
				if c >= lo && c <= hi {
					matched = true
				}
				p++
			}
			if p < len(pat) {
				p++ // consume ']'
			}
			if !matched {
				return false
			}
			n++
		case '\\':
			p++
			if p >= len(pat) {
				return n < len(s) && s[n] == '\\'
			}
			fallthrough
		default:
			if n >= len(s) || s[n] != pat[p] {
				return false
			}
			p++
			n++
		}
	}
	return n == len(s)
}

func cmdString(in *Interp, args []string) (string, error) {
	if len(args) < 3 {
		return "", errf(`wrong # args: should be "string option arg ?arg ...?"`)
	}
	op := args[1]
	switch op {
	case "compare":
		if len(args) != 4 {
			return "", errf(`wrong # args: should be "string compare string1 string2"`)
		}
		return strconv.Itoa(strings.Compare(args[2], args[3])), nil
	case "equal":
		if len(args) != 4 {
			return "", errf(`wrong # args: should be "string equal string1 string2"`)
		}
		if args[2] == args[3] {
			return "1", nil
		}
		return "0", nil
	case "first":
		if len(args) != 4 {
			return "", errf(`wrong # args: should be "string first string1 string2"`)
		}
		return strconv.Itoa(strings.Index(args[3], args[2])), nil
	case "last":
		if len(args) != 4 {
			return "", errf(`wrong # args: should be "string last string1 string2"`)
		}
		return strconv.Itoa(strings.LastIndex(args[3], args[2])), nil
	case "index":
		if len(args) != 4 {
			return "", errf(`wrong # args: should be "string index string charIndex"`)
		}
		i, err := listIndex(args[3], len(args[2]))
		if err != nil {
			return "", err
		}
		if i < 0 || i >= len(args[2]) {
			return "", nil
		}
		return string(args[2][i]), nil
	case "length":
		if len(args) != 3 {
			return "", errf(`wrong # args: should be "string length string"`)
		}
		return strconv.Itoa(len(args[2])), nil
	case "match":
		if len(args) != 4 {
			return "", errf(`wrong # args: should be "string match pattern string"`)
		}
		if GlobMatch(args[2], args[3]) {
			return "1", nil
		}
		return "0", nil
	case "range":
		if len(args) != 5 {
			return "", errf(`wrong # args: should be "string range string first last"`)
		}
		s := args[2]
		first, err := listIndex(args[3], len(s))
		if err != nil {
			return "", err
		}
		last, err := listIndex(args[4], len(s))
		if err != nil {
			return "", err
		}
		if first < 0 {
			first = 0
		}
		if last >= len(s) {
			last = len(s) - 1
		}
		if first > last {
			return "", nil
		}
		return s[first : last+1], nil
	case "repeat":
		if len(args) != 4 {
			return "", errf(`wrong # args: should be "string repeat string count"`)
		}
		n, err := strconv.Atoi(args[3])
		if err != nil || n < 0 {
			return "", errf("bad count %q", args[3])
		}
		return strings.Repeat(args[2], n), nil
	case "tolower":
		return strings.ToLower(args[2]), nil
	case "toupper":
		return strings.ToUpper(args[2]), nil
	case "trim":
		return trimCmd(args, strings.Trim)
	case "trimleft":
		return trimCmd(args, strings.TrimLeft)
	case "trimright":
		return trimCmd(args, strings.TrimRight)
	case "reverse":
		r := []rune(args[2])
		for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
			r[i], r[j] = r[j], r[i]
		}
		return string(r), nil
	case "wordend":
		if len(args) != 4 {
			return "", errf(`wrong # args: should be "string wordend string index"`)
		}
		s := args[2]
		i, err := strconv.Atoi(args[3])
		if err != nil {
			return "", errf("bad index %q", args[3])
		}
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			return strconv.Itoa(len(s)), nil
		}
		if isWordChar(s[i]) {
			for i < len(s) && isWordChar(s[i]) {
				i++
			}
		} else {
			i++
		}
		return strconv.Itoa(i), nil
	case "wordstart":
		if len(args) != 4 {
			return "", errf(`wrong # args: should be "string wordstart string index"`)
		}
		s := args[2]
		i, err := strconv.Atoi(args[3])
		if err != nil {
			return "", errf("bad index %q", args[3])
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		if i < 0 {
			return "0", nil
		}
		if isWordChar(s[i]) {
			for i > 0 && isWordChar(s[i-1]) {
				i--
			}
		}
		return strconv.Itoa(i), nil
	}
	return "", errf("bad option %q: should be compare, equal, first, index, last, length, match, range, repeat, reverse, tolower, toupper, trim, trimleft, trimright, wordend, or wordstart", op)
}

func isWordChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func trimCmd(args []string, fn func(string, string) string) (string, error) {
	chars := " \t\n\r\v\f"
	if len(args) > 4 {
		return "", errf(`wrong # args: should be "string %s string ?chars?"`, args[1])
	}
	if len(args) == 4 {
		chars = args[3]
	}
	return fn(args[2], chars), nil
}

// cmdFormat implements the C-printf-like format command by translating
// each directive to the corresponding Go verb with a correctly typed
// argument.
func cmdFormat(in *Interp, args []string) (string, error) {
	if len(args) < 2 {
		return "", errf(`wrong # args: should be "format formatString ?arg ...?"`)
	}
	spec := args[1]
	rest := args[2:]
	var b strings.Builder
	ai := 0
	nextArg := func() (string, error) {
		if ai >= len(rest) {
			return "", errf("not enough arguments for all format specifiers")
		}
		a := rest[ai]
		ai++
		return a, nil
	}
	i := 0
	for i < len(spec) {
		c := spec[i]
		if c != '%' {
			b.WriteByte(c)
			i++
			continue
		}
		i++
		if i >= len(spec) {
			return "", errf(`format string ended in middle of field specifier`)
		}
		if spec[i] == '%' {
			b.WriteByte('%')
			i++
			continue
		}
		start := i
		// Flags.
		for i < len(spec) && strings.IndexByte("-+ 0#", spec[i]) >= 0 {
			i++
		}
		// Width (possibly '*').
		width := ""
		if i < len(spec) && spec[i] == '*' {
			a, err := nextArg()
			if err != nil {
				return "", err
			}
			w, err2 := strconv.Atoi(strings.TrimSpace(a))
			if err2 != nil {
				return "", errf("expected integer but got %q", a)
			}
			width = strconv.Itoa(w)
			i++
		} else {
			for i < len(spec) && isDigit(spec[i]) {
				i++
			}
		}
		// Precision.
		prec := ""
		if i < len(spec) && spec[i] == '.' {
			i++
			if i < len(spec) && spec[i] == '*' {
				a, err := nextArg()
				if err != nil {
					return "", err
				}
				p, err2 := strconv.Atoi(strings.TrimSpace(a))
				if err2 != nil {
					return "", errf("expected integer but got %q", a)
				}
				prec = "." + strconv.Itoa(p)
				i++
			} else {
				ps := i
				for i < len(spec) && isDigit(spec[i]) {
					i++
				}
				prec = "." + spec[ps:i]
			}
		}
		// Length modifiers are accepted and ignored (h, l).
		for i < len(spec) && (spec[i] == 'h' || spec[i] == 'l') {
			i++
		}
		if i >= len(spec) {
			return "", errf("format string ended in middle of field specifier")
		}
		verb := spec[i]
		i++
		flagsAndWidth := spec[start:]
		// Rebuild the Go directive from the pieces we parsed.
		flags := ""
		for _, fc := range flagsAndWidth {
			if strings.ContainsRune("-+ 0#", fc) {
				flags += string(fc)
			} else {
				break
			}
		}
		if width == "" {
			ws := start + len(flags)
			we := ws
			for we < len(spec) && isDigit(spec[we]) {
				we++
			}
			width = spec[ws:we]
		}
		goDirective := "%" + flags + width + prec
		a, err := nextArg()
		if err != nil {
			return "", err
		}
		switch verb {
		case 'd', 'i', 'o', 'x', 'X', 'u':
			n, err := strconv.ParseInt(strings.TrimSpace(a), 0, 64)
			if err != nil {
				if f, ferr := strconv.ParseFloat(strings.TrimSpace(a), 64); ferr == nil {
					n = int64(f)
				} else {
					return "", errf("expected integer but got %q", a)
				}
			}
			v := verb
			if v == 'i' || v == 'u' {
				v = 'd'
			}
			fmt.Fprintf(&b, goDirective+string(v), n)
		case 'c':
			n, err := strconv.ParseInt(strings.TrimSpace(a), 0, 64)
			if err != nil {
				return "", errf("expected integer but got %q", a)
			}
			fmt.Fprintf(&b, goDirective+"c", rune(n))
		case 'f', 'e', 'E', 'g', 'G':
			f, err := strconv.ParseFloat(strings.TrimSpace(a), 64)
			if err != nil {
				return "", errf("expected floating-point number but got %q", a)
			}
			fmt.Fprintf(&b, goDirective+string(verb), f)
		case 's':
			fmt.Fprintf(&b, goDirective+"s", a)
		default:
			return "", errf("bad field specifier %q", string(verb))
		}
	}
	return b.String(), nil
}

// cmdScan implements a subset of sscanf: %d, %o, %x, %f/%e/%g, %s, %c and
// literal matching. It returns the number of conversions performed.
func cmdScan(in *Interp, args []string) (string, error) {
	if len(args) < 3 {
		return "", errf(`wrong # args: should be "scan string formatString varName ?varName ...?"`)
	}
	input, spec := args[1], args[2]
	vars := args[3:]
	vi := 0
	si := 0
	conversions := 0
	skipSpace := func() {
		for si < len(input) && (input[si] == ' ' || input[si] == '\t' || input[si] == '\n') {
			si++
		}
	}
	store := func(val string) error {
		if vi >= len(vars) {
			return errf("not enough variables for all conversions")
		}
		_, err := in.SetVar(vars[vi], val)
		vi++
		return err
	}
	i := 0
	for i < len(spec) {
		c := spec[i]
		if c == ' ' || c == '\t' || c == '\n' {
			skipSpace()
			i++
			continue
		}
		if c != '%' {
			if si < len(input) && input[si] == c {
				si++
				i++
				continue
			}
			break
		}
		i++
		if i >= len(spec) {
			break
		}
		// Optional maximum field width.
		maxW := -1
		ws := i
		for i < len(spec) && isDigit(spec[i]) {
			i++
		}
		if i > ws {
			maxW, _ = strconv.Atoi(spec[ws:i])
		}
		if i >= len(spec) {
			break
		}
		verb := spec[i]
		i++
		switch verb {
		case 'd', 'o', 'x':
			skipSpace()
			start := si
			if si < len(input) && (input[si] == '-' || input[si] == '+') {
				si++
			}
			valid := func(b byte) bool {
				switch verb {
				case 'o':
					return b >= '0' && b <= '7'
				case 'x':
					return isHex(b)
				default:
					return isDigit(b)
				}
			}
			for si < len(input) && valid(input[si]) && (maxW < 0 || si-start < maxW) {
				si++
			}
			if si == start {
				return strconv.Itoa(conversions), nil
			}
			base := 10
			if verb == 'o' {
				base = 8
			} else if verb == 'x' {
				base = 16
			}
			n, err := strconv.ParseInt(input[start:si], base, 64)
			if err != nil {
				return strconv.Itoa(conversions), nil
			}
			if err := store(strconv.FormatInt(n, 10)); err != nil {
				return "", err
			}
			conversions++
		case 'f', 'e', 'g':
			skipSpace()
			start := si
			for si < len(input) && strings.IndexByte("+-0123456789.eE", input[si]) >= 0 && (maxW < 0 || si-start < maxW) {
				si++
			}
			f, err := strconv.ParseFloat(input[start:si], 64)
			if err != nil {
				return strconv.Itoa(conversions), nil
			}
			if err := store(formatFloat(f)); err != nil {
				return "", err
			}
			conversions++
		case 's':
			skipSpace()
			start := si
			for si < len(input) && input[si] != ' ' && input[si] != '\t' && input[si] != '\n' && (maxW < 0 || si-start < maxW) {
				si++
			}
			if si == start {
				return strconv.Itoa(conversions), nil
			}
			if err := store(input[start:si]); err != nil {
				return "", err
			}
			conversions++
		case 'c':
			if si >= len(input) {
				return strconv.Itoa(conversions), nil
			}
			if err := store(strconv.Itoa(int(input[si]))); err != nil {
				return "", err
			}
			si++
			conversions++
		case '%':
			if si < len(input) && input[si] == '%' {
				si++
			}
		default:
			return "", errf("bad scan conversion character %q", string(verb))
		}
	}
	return strconv.Itoa(conversions), nil
}
