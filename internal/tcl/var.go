package tcl

import (
	"sort"
	"strings"
)

// splitVarName splits "a(b)" into name "a" and index "b"; a plain name
// returns index "" and isArr false.
func splitVarName(full string) (name, index string, isArr bool) {
	if i := strings.IndexByte(full, '('); i >= 0 && strings.HasSuffix(full, ")") {
		return full[:i], full[i+1 : len(full)-1], true
	}
	return full, "", false
}

// resolve follows upvar links to the real variable.
func (v *Var) resolve() *Var {
	for v.link != nil {
		v = v.link
	}
	return v
}

// lookupVar finds the variable slot for name in frame f, optionally
// creating it.
func (in *Interp) lookupVar(f *frame, name string, create bool) *Var {
	if v, ok := f.vars[name]; ok {
		return v.resolve()
	}
	if !create {
		return nil
	}
	v := &Var{}
	f.vars[name] = v
	return v
}

// varRead returns the value of a variable in the current frame. The full
// name may include an array index as name(index); callers that have
// already split the name pass index separately with a plain name.
func (in *Interp) varRead(full, index string) (string, error) {
	name := full
	if index == "" {
		var isArr bool
		name, index, isArr = splitVarName(full)
		if !isArr {
			index = ""
		}
	}
	v := in.lookupVar(in.current(), name, false)
	if v == nil {
		return "", errf(`can't read "%s": no such variable`, full)
	}
	in.fireTraces(v, name, index, "r")
	if index != "" {
		if !v.isArr {
			return "", errf(`can't read "%s(%s)": variable isn't array`, name, index)
		}
		val, ok := v.array[index]
		if !ok {
			return "", errf(`can't read "%s(%s)": no such element in array`, name, index)
		}
		return val, nil
	}
	if v.isArr {
		return "", errf(`can't read "%s": variable is array`, name)
	}
	return v.value, nil
}

// GetVar returns the value of variable name (which may be of the form
// name(index)) in the current frame.
func (in *Interp) GetVar(name string) (string, error) {
	return in.varRead(name, "")
}

// GetGlobal returns the value of a global variable regardless of the
// current frame.
func (in *Interp) GetGlobal(name string) (string, error) {
	saved := in.frames
	// The capped slice forces any append (a proc called from a variable
	// trace) to reallocate rather than overwrite saved frames.
	in.frames = saved[:1:1]
	defer func() { in.frames = saved }()
	return in.varRead(name, "")
}

// SetVar assigns value to variable full (possibly name(index)) in the
// current frame, creating it if needed. It returns the value assigned.
func (in *Interp) SetVar(full, value string) (string, error) {
	name, index, isArr := splitVarName(full)
	v := in.lookupVar(in.current(), name, true)
	if isArr {
		if !v.isArr {
			if v.value != "" {
				return "", errf(`can't set "%s(%s)": variable isn't array`, name, index)
			}
			v.isArr = true
			v.array = make(map[string]string)
		}
		v.array[index] = value
	} else {
		if v.isArr {
			return "", errf(`can't set "%s": variable is array`, name)
		}
		v.value = value
	}
	in.fireTraces(v, name, index, "w")
	return value, nil
}

// SetGlobal assigns a global variable regardless of the current frame.
func (in *Interp) SetGlobal(full, value string) (string, error) {
	saved := in.frames
	in.frames = saved[:1:1] // capped: see GetGlobal
	defer func() { in.frames = saved }()
	return in.SetVar(full, value)
}

// UnsetVar removes a variable or array element from the current frame.
func (in *Interp) UnsetVar(full string) error {
	name, index, isArr := splitVarName(full)
	f := in.current()
	slot, ok := f.vars[name]
	if !ok {
		return errf(`can't unset "%s": no such variable`, full)
	}
	v := slot.resolve()
	in.fireTraces(v, name, index, "u")
	if isArr {
		if !v.isArr {
			return errf(`can't unset "%s(%s)": variable isn't array`, name, index)
		}
		if _, ok := v.array[index]; !ok {
			return errf(`can't unset "%s(%s)": no such element in array`, name, index)
		}
		delete(v.array, index)
		return nil
	}
	delete(f.vars, name)
	return nil
}

// VarExists reports whether full (possibly name(index)) is readable in
// the current frame.
func (in *Interp) VarExists(full string) bool {
	name, index, isArr := splitVarName(full)
	v := in.lookupVar(in.current(), name, false)
	if v == nil {
		return false
	}
	if isArr {
		if !v.isArr {
			return false
		}
		_, ok := v.array[index]
		return ok
	}
	return !v.isArr
}

// LinkVar makes local name in the current frame an alias for variable
// other in frame at the given absolute level (0 = global). This is the
// engine behind upvar and global.
func (in *Interp) LinkVar(level int, other, local string) error {
	if level < 0 || level >= len(in.frames) {
		return errf("bad level %d", level)
	}
	target := in.lookupVar(in.frames[level], other, true)
	cur := in.current()
	if existing, ok := cur.vars[local]; ok && existing.resolve() == target {
		return nil
	}
	cur.vars[local] = &Var{link: target}
	return nil
}

// TraceVar registers a trace on variable name in the current frame,
// creating the variable slot if needed. ops is a subset of "rwu".
func (in *Interp) TraceVar(name string, ops string, fn func(in *Interp, name, index, op string)) {
	base, _, _ := splitVarName(name)
	v := in.lookupVar(in.current(), base, true)
	v.traces = append(v.traces, VarTrace{Ops: ops, Fn: fn})
}

func (in *Interp) fireTraces(v *Var, name, index, op string) {
	if len(v.traces) == 0 {
		return
	}
	// Copy: a trace may add or remove traces.
	traces := append([]VarTrace(nil), v.traces...)
	for _, t := range traces {
		if strings.Contains(t.Ops, op) {
			t.Fn(in, name, index, op)
		}
	}
}

// arrayNames returns the sorted element names of array variable name in
// the current frame, or nil if it is not an array.
func (in *Interp) arrayNames(name string) []string {
	v := in.lookupVar(in.current(), name, false)
	if v == nil || !v.isArr {
		return nil
	}
	names := make([]string, 0, len(v.array))
	for k := range v.array {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// localVarNames returns the sorted variable names visible in frame f.
func localVarNames(f *frame) []string {
	names := make([]string, 0, len(f.vars))
	for k := range f.vars {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
