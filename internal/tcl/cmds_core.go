package tcl

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// registerCore installs variable, control-flow and procedure commands.
func registerCore(in *Interp) {
	in.Register("set", cmdSet)
	in.Register("unset", cmdUnset)
	in.Register("incr", cmdIncr)
	in.Register("append", cmdAppend)
	in.Register("proc", cmdProc)
	in.Register("return", cmdReturn)
	in.Register("break", func(*Interp, []string) (string, error) { return "", errBreak })
	in.Register("continue", func(*Interp, []string) (string, error) { return "", errContinue })
	in.Register("if", cmdIf)
	in.Register("while", cmdWhile)
	in.Register("for", cmdFor)
	in.Register("foreach", cmdForeach)
	in.Register("switch", cmdSwitch)
	in.Register("case", cmdCase)
	in.Register("catch", cmdCatch)
	in.Register("error", cmdError)
	in.Register("eval", cmdEval)
	in.Register("subst", cmdSubst)
	in.Register("global", cmdGlobal)
	in.Register("upvar", cmdUpvar)
	in.Register("uplevel", cmdUplevel)
	in.Register("rename", cmdRename)
	in.Register("time", cmdTime)
	in.Register("trace", cmdTrace)
}

func arity(args []string, min, max int, usage string) error {
	n := len(args) - 1
	if n < min || (max >= 0 && n > max) {
		return errf("wrong # args: should be %q", args[0]+" "+usage)
	}
	return nil
}

func cmdSet(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 2, "varName ?newValue?"); err != nil {
		return "", err
	}
	if len(args) == 2 {
		return in.GetVar(args[1])
	}
	return in.SetVar(args[1], args[2])
}

func cmdUnset(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, -1, "varName ?varName ...?"); err != nil {
		return "", err
	}
	for _, name := range args[1:] {
		if err := in.UnsetVar(name); err != nil {
			return "", err
		}
	}
	return "", nil
}

func cmdIncr(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 2, "varName ?increment?"); err != nil {
		return "", err
	}
	cur, err := in.GetVar(args[1])
	if err != nil {
		return "", err
	}
	ival, err := strconv.ParseInt(strings.TrimSpace(cur), 0, 64)
	if err != nil {
		return "", errf("expected integer but got %q", cur)
	}
	delta := int64(1)
	if len(args) == 3 {
		delta, err = strconv.ParseInt(strings.TrimSpace(args[2]), 0, 64)
		if err != nil {
			return "", errf("expected integer but got %q", args[2])
		}
	}
	return in.SetVar(args[1], strconv.FormatInt(ival+delta, 10))
}

func cmdAppend(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, -1, "varName ?value value ...?"); err != nil {
		return "", err
	}
	cur := ""
	if in.VarExists(args[1]) {
		var err error
		cur, err = in.GetVar(args[1])
		if err != nil {
			return "", err
		}
	}
	var b strings.Builder
	b.WriteString(cur)
	for _, v := range args[2:] {
		b.WriteString(v)
	}
	return in.SetVar(args[1], b.String())
}

func cmdProc(in *Interp, args []string) (string, error) {
	if err := arity(args, 3, 3, "name args body"); err != nil {
		return "", err
	}
	name, argList, body := args[1], args[2], args[3]
	formalSpecs, err := ParseList(argList)
	if err != nil {
		return "", err
	}
	def := &procDef{name: name, body: body}
	for i, spec := range formalSpecs {
		parts, err := ParseList(spec)
		if err != nil || len(parts) == 0 || len(parts) > 2 {
			return "", errf("procedure %q has argument with bad format %q", name, spec)
		}
		arg := procArg{name: parts[0]}
		if len(parts) == 2 {
			arg.def = parts[1]
			arg.hasDef = true
		}
		if parts[0] == "args" && i == len(formalSpecs)-1 {
			arg.isVarArg = true
		}
		def.formals = append(def.formals, arg)
	}
	in.cmds[name] = &command{proc: def, fn: func(in *Interp, args []string) (string, error) {
		return in.callProc(def, args)
	}}
	return "", nil
}

// callProc pushes a frame, binds formals, and evaluates a procedure body.
func (in *Interp) callProc(def *procDef, args []string) (string, error) {
	f := &frame{vars: make(map[string]*Var, len(def.formals)+4), level: len(in.frames)}
	actuals := args[1:]
	ai := 0
	for fi, formal := range def.formals {
		if formal.isVarArg {
			rest := make([]string, 0, len(actuals)-ai)
			rest = append(rest, actuals[ai:]...)
			f.vars["args"] = &Var{value: FormatList(rest)}
			ai = len(actuals)
			break
		}
		switch {
		case ai < len(actuals):
			f.vars[formal.name] = &Var{value: actuals[ai]}
			ai++
		case formal.hasDef:
			f.vars[formal.name] = &Var{value: formal.def}
		default:
			_ = fi
			return "", errf(`no value given for parameter "%s" to "%s"`, formal.name, def.name)
		}
	}
	if ai < len(actuals) {
		return "", errf(`called "%s" with too many arguments`, def.name)
	}

	in.frames = append(in.frames, f)
	defer func() { in.frames = in.frames[:len(in.frames)-1] }()

	res, err := in.Eval(def.body)
	if err != nil {
		if re, ok := err.(*returnError); ok {
			if re.code == OK {
				return re.value, nil
			}
			return "", &Error{Code: re.code, Msg: re.value}
		}
		if te, ok := err.(*Error); ok {
			switch te.Code {
			case BreakStatus, ContinueStatus:
				return "", errf(`invoked "%s" outside of a loop`, te.Code)
			case ErrorStatus:
				te.Info += fmt.Sprintf("\n    (procedure %q line ?)", def.name)
			}
		}
		return "", err
	}
	return res, nil
}

func cmdReturn(in *Interp, args []string) (string, error) {
	code := OK
	rest := args[1:]
	for len(rest) >= 2 && strings.HasPrefix(rest[0], "-") {
		switch rest[0] {
		case "-code":
			switch rest[1] {
			case "ok", "0":
				code = OK
			case "error", "1":
				code = ErrorStatus
			case "return", "2":
				code = ReturnStatus
			case "break", "3":
				code = BreakStatus
			case "continue", "4":
				code = ContinueStatus
			default:
				return "", errf("bad completion code %q", rest[1])
			}
			rest = rest[2:]
		default:
			return "", errf("bad option %q to return", rest[0])
		}
	}
	val := ""
	if len(rest) > 0 {
		val = rest[0]
	}
	if len(rest) > 1 {
		return "", errf(`wrong # args: should be "return ?-code code? ?value?"`)
	}
	return "", &returnError{value: val, code: code}
}

func cmdIf(in *Interp, args []string) (string, error) {
	// if expr ?then? body ?elseif expr ?then? body?... ?else? ?body?
	i := 1
	for {
		if i >= len(args) {
			return "", errf(`wrong # args: no expression after "%s" argument`, args[0])
		}
		cond, err := in.EvalBool(args[i])
		if err != nil {
			return "", err
		}
		i++
		if i < len(args) && args[i] == "then" {
			i++
		}
		if i >= len(args) {
			return "", errf(`wrong # args: no script following "%s" argument`, args[i-1])
		}
		if cond {
			return in.Eval(args[i])
		}
		i++
		if i >= len(args) {
			return "", nil
		}
		switch args[i] {
		case "elseif":
			i++
			continue
		case "else":
			i++
			if i >= len(args) {
				return "", errf(`wrong # args: no script following "else" argument`)
			}
			return in.Eval(args[i])
		default:
			// Implicit else body (old Tcl allowed it).
			return in.Eval(args[i])
		}
	}
}

func cmdWhile(in *Interp, args []string) (string, error) {
	if err := arity(args, 2, 2, "test command"); err != nil {
		return "", err
	}
	for {
		cond, err := in.EvalBool(args[1])
		if err != nil {
			return "", err
		}
		if !cond {
			return "", nil
		}
		_, err = in.Eval(args[2])
		if err != nil {
			if te, ok := err.(*Error); ok {
				if te.Code == BreakStatus {
					return "", nil
				}
				if te.Code == ContinueStatus {
					continue
				}
			}
			return "", err
		}
	}
}

func cmdFor(in *Interp, args []string) (string, error) {
	if err := arity(args, 4, 4, "start test next command"); err != nil {
		return "", err
	}
	if _, err := in.Eval(args[1]); err != nil {
		return "", err
	}
	for {
		cond, err := in.EvalBool(args[2])
		if err != nil {
			return "", err
		}
		if !cond {
			return "", nil
		}
		_, err = in.Eval(args[4])
		if err != nil {
			if te, ok := err.(*Error); ok {
				if te.Code == BreakStatus {
					return "", nil
				}
				if te.Code == ContinueStatus {
					goto next
				}
			}
			return "", err
		}
	next:
		if _, err := in.Eval(args[3]); err != nil {
			return "", err
		}
	}
}

func cmdForeach(in *Interp, args []string) (string, error) {
	if err := arity(args, 3, 3, "varList list command"); err != nil {
		return "", err
	}
	varNames, err := ParseList(args[1])
	if err != nil {
		return "", err
	}
	if len(varNames) == 0 {
		return "", errf("foreach varlist is empty")
	}
	items, err := ParseList(args[2])
	if err != nil {
		return "", err
	}
	for i := 0; i < len(items); i += len(varNames) {
		for vi, vn := range varNames {
			val := ""
			if i+vi < len(items) {
				val = items[i+vi]
			}
			if _, err := in.SetVar(vn, val); err != nil {
				return "", err
			}
		}
		_, err := in.Eval(args[3])
		if err != nil {
			if te, ok := err.(*Error); ok {
				if te.Code == BreakStatus {
					return "", nil
				}
				if te.Code == ContinueStatus {
					continue
				}
			}
			return "", err
		}
	}
	return "", nil
}

func cmdSwitch(in *Interp, args []string) (string, error) {
	mode := "-glob"
	i := 1
	for i < len(args) && strings.HasPrefix(args[i], "-") {
		switch args[i] {
		case "-exact", "-glob":
			mode = args[i]
			i++
		case "--":
			i++
			goto body
		default:
			return "", errf("bad option %q: should be -exact, -glob or --", args[i])
		}
	}
body:
	if i >= len(args) {
		return "", errf(`wrong # args: should be "switch ?options? string pattern body ... ?default body?"`)
	}
	str := args[i]
	i++
	var pairs []string
	if len(args)-i == 1 {
		var err error
		pairs, err = ParseList(args[i])
		if err != nil {
			return "", err
		}
	} else {
		pairs = args[i:]
	}
	if len(pairs) == 0 || len(pairs)%2 != 0 {
		return "", errf("extra switch pattern with no body")
	}
	for j := 0; j < len(pairs); j += 2 {
		pat, bodyStr := pairs[j], pairs[j+1]
		match := false
		if pat == "default" && j == len(pairs)-2 {
			match = true
		} else if mode == "-exact" {
			match = pat == str
		} else {
			match = GlobMatch(pat, str)
		}
		if !match {
			continue
		}
		// "-" bodies fall through to the next body.
		for bodyStr == "-" {
			j += 2
			if j >= len(pairs) {
				return "", errf(`no body specified for pattern "%s"`, pat)
			}
			bodyStr = pairs[j+1]
		}
		return in.Eval(bodyStr)
	}
	return "", nil
}

// cmdCase implements the historical "case" command used in Tcl 6.x
// scripts: case string ?in? {pat body pat body ...} or inline pairs.
func cmdCase(in *Interp, args []string) (string, error) {
	if len(args) < 3 {
		return "", errf(`wrong # args: should be "case string ?in? patList body ..."`)
	}
	str := args[1]
	rest := args[2:]
	if rest[0] == "in" {
		rest = rest[1:]
	}
	var pairs []string
	if len(rest) == 1 {
		var err error
		pairs, err = ParseList(rest[0])
		if err != nil {
			return "", err
		}
	} else {
		pairs = rest
	}
	if len(pairs)%2 != 0 {
		return "", errf("extra case pattern with no body")
	}
	var defaultBody string
	for j := 0; j < len(pairs); j += 2 {
		patList, body := pairs[j], pairs[j+1]
		if patList == "default" {
			defaultBody = body
			continue
		}
		pats, err := ParseList(patList)
		if err != nil {
			return "", err
		}
		for _, pat := range pats {
			if GlobMatch(pat, str) {
				return in.Eval(body)
			}
		}
	}
	if defaultBody != "" {
		return in.Eval(defaultBody)
	}
	return "", nil
}

func cmdCatch(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 2, "command ?varName?"); err != nil {
		return "", err
	}
	res, err := in.Eval(args[1])
	code := OK
	if err != nil {
		switch e := err.(type) {
		case *returnError:
			code = ReturnStatus
			res = e.value
		case *Error:
			code = e.Code
			res = e.Msg
		default:
			code = ErrorStatus
			res = err.Error()
		}
	}
	if len(args) == 3 {
		if _, serr := in.SetVar(args[2], res); serr != nil {
			return "", serr
		}
	}
	return strconv.Itoa(int(code)), nil
}

func cmdError(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 3, "message ?errorInfo? ?errorCode?"); err != nil {
		return "", err
	}
	e := errf("%s", args[1])
	if len(args) >= 3 && args[2] != "" {
		e.Info = args[2]
	}
	if len(args) >= 4 {
		_, _ = in.SetGlobal("errorCode", args[3])
	}
	return "", e
}

func cmdEval(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, -1, "arg ?arg ...?"); err != nil {
		return "", err
	}
	var script string
	if len(args) == 2 {
		script = args[1]
	} else {
		script = strings.Join(args[1:], " ")
	}
	return in.Eval(script)
}

func cmdSubst(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 1, "string"); err != nil {
		return "", err
	}
	return in.SubstituteAll(args[1])
}

func cmdGlobal(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, -1, "varName ?varName ...?"); err != nil {
		return "", err
	}
	if len(in.frames) == 1 {
		return "", nil // already global scope: no-op
	}
	for _, name := range args[1:] {
		if err := in.LinkVar(0, name, name); err != nil {
			return "", err
		}
	}
	return "", nil
}

// parseLevel interprets an upvar/uplevel level spec relative to the
// current frame. Returns the absolute frame index.
func (in *Interp) parseLevel(spec string) (int, bool) {
	cur := len(in.frames) - 1
	if strings.HasPrefix(spec, "#") {
		n, err := strconv.Atoi(spec[1:])
		if err != nil || n < 0 || n > cur {
			return 0, false
		}
		return n, true
	}
	n, err := strconv.Atoi(spec)
	if err != nil || n < 0 || n > cur {
		return 0, false
	}
	return cur - n, true
}

func looksLikeLevel(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '#' {
		return true
	}
	return s[0] >= '0' && s[0] <= '9'
}

func cmdUpvar(in *Interp, args []string) (string, error) {
	if len(args) < 3 {
		return "", errf(`wrong # args: should be "upvar ?level? otherVar localVar ?otherVar localVar ...?"`)
	}
	rest := args[1:]
	level := len(in.frames) - 2 // default: one level up
	if level < 0 {
		level = 0
	}
	if looksLikeLevel(rest[0]) && len(rest)%2 == 1 {
		var ok bool
		level, ok = in.parseLevel(rest[0])
		if !ok {
			return "", errf("bad level %q", rest[0])
		}
		rest = rest[1:]
	}
	if len(rest)%2 != 0 || len(rest) == 0 {
		return "", errf(`wrong # args: should be "upvar ?level? otherVar localVar ?otherVar localVar ...?"`)
	}
	for i := 0; i < len(rest); i += 2 {
		if err := in.LinkVar(level, rest[i], rest[i+1]); err != nil {
			return "", err
		}
	}
	return "", nil
}

func cmdUplevel(in *Interp, args []string) (string, error) {
	if len(args) < 2 {
		return "", errf(`wrong # args: should be "uplevel ?level? command ?arg ...?"`)
	}
	rest := args[1:]
	level := len(in.frames) - 2
	if level < 0 {
		level = 0
	}
	if len(rest) > 1 && looksLikeLevel(rest[0]) {
		var ok bool
		level, ok = in.parseLevel(rest[0])
		if !ok {
			return "", errf("bad level %q", rest[0])
		}
		rest = rest[1:]
	}
	script := rest[0]
	if len(rest) > 1 {
		script = strings.Join(rest, " ")
	}
	saved := in.frames
	// Capped slice: procedure calls inside the uplevel script must not
	// overwrite the caller frames we put aside.
	in.frames = saved[: level+1 : level+1]
	defer func() { in.frames = saved }()
	return in.Eval(script)
}

func cmdRename(in *Interp, args []string) (string, error) {
	if err := arity(args, 2, 2, "oldName newName"); err != nil {
		return "", err
	}
	old, new := args[1], args[2]
	cmd, ok := in.cmds[old]
	if !ok {
		return "", errf(`can't rename %q: command doesn't exist`, old)
	}
	if new == "" {
		delete(in.cmds, old)
		return "", nil
	}
	if _, exists := in.cmds[new]; exists {
		return "", errf(`can't rename to %q: command already exists`, new)
	}
	delete(in.cmds, old)
	in.cmds[new] = cmd
	return "", nil
}

func cmdTime(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 2, "command ?count?"); err != nil {
		return "", err
	}
	count := 1
	if len(args) == 3 {
		n, err := strconv.Atoi(args[2])
		if err != nil || n <= 0 {
			return "", errf("expected positive integer but got %q", args[2])
		}
		count = n
	}
	start := time.Now()
	for i := 0; i < count; i++ {
		if _, err := in.Eval(args[1]); err != nil {
			return "", err
		}
	}
	per := time.Since(start).Microseconds() / int64(count)
	return fmt.Sprintf("%d microseconds per iteration", per), nil
}

// cmdTrace implements variable traces:
//
//	trace variable name ops command
//	trace vdelete name ops command
//	trace vinfo name
func cmdTrace(in *Interp, args []string) (string, error) {
	if len(args) < 3 {
		return "", errf(`wrong # args: should be "trace variable|vdelete|vinfo name ?ops command?"`)
	}
	switch args[1] {
	case "variable", "add":
		if len(args) != 5 {
			return "", errf(`wrong # args: should be "trace variable name ops command"`)
		}
		name, ops, script := args[2], args[3], args[4]
		for _, c := range ops {
			if c != 'r' && c != 'w' && c != 'u' {
				return "", errf("bad operations %q: should be one or more of rwu", ops)
			}
		}
		in.TraceVar(name, ops, func(in *Interp, nm, idx, op string) {
			cmd := script + " " + QuoteElement(nm) + " " + QuoteElement(idx) + " " + op
			_, _ = in.Eval(cmd)
		})
		return "", nil
	case "vdelete":
		// Traces are removed wholesale from the variable.
		base, _, _ := splitVarName(args[2])
		if v := in.lookupVar(in.current(), base, false); v != nil {
			v.traces = nil
		}
		return "", nil
	case "vinfo":
		base, _, _ := splitVarName(args[2])
		v := in.lookupVar(in.current(), base, false)
		if v == nil {
			return "", nil
		}
		return strconv.Itoa(len(v.traces)), nil
	}
	return "", errf("bad option %q: should be variable, vdelete or vinfo", args[1])
}
