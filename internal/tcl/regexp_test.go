package tcl

import "testing"

func TestRegexpCommand(t *testing.T) {
	in := New()
	expect(t, in, `regexp {b+} "abbbc"`, "1")
	expect(t, in, `regexp {z+} "abbbc"`, "0")
	// Match variables.
	expect(t, in, `regexp {(b+)(c)} "abbbcd" whole part1 part2`, "1")
	expect(t, in, `set whole`, "bbbc")
	expect(t, in, `set part1`, "bbb")
	expect(t, in, `set part2`, "c")
	// Missing submatch leaves the variable empty.
	expect(t, in, `regexp {(x)?y} "y" m sub; set sub`, "")
	// Case-insensitive matching.
	expect(t, in, `regexp -nocase {HELLO} "say hello"`, "1")
	expect(t, in, `regexp {HELLO} "say hello"`, "0")
	// -- terminates switches so a pattern may begin with '-'.
	expect(t, in, `regexp -- {-x} "a-xb"`, "1")
	// Anchors.
	expect(t, in, `regexp {^abc$} "abc"`, "1")
	expect(t, in, `regexp {^abc$} "xabc"`, "0")
	evalErr(t, in, `regexp {[unclosed} x`, "couldn't compile")
	evalErr(t, in, `regexp -bogus x y`, "bad switch")
	evalErr(t, in, `regexp onlypattern`, "wrong # args")
}

func TestRegsubCommand(t *testing.T) {
	in := New()
	expect(t, in, `regsub {b+} "abbbc" "X" out`, "1")
	expect(t, in, `set out`, "aXc")
	// & refers to the whole match.
	expect(t, in, `regsub {b+} "abbbc" "<&>" out; set out`, "a<bbb>c")
	// \1 refers to a submatch.
	expect(t, in, `regsub {a(b+)c} "xabbcy" {\1} out; set out`, "xbby")
	// -all replaces every occurrence.
	expect(t, in, `regsub -all {o} "foo boo" "0" out; set out`, "f00 b00")
	// Without -all, only the first occurrence.
	expect(t, in, `regsub {o} "foo boo" "0" out; set out`, "f0o boo")
	// No match: returns 0 and stores the input unchanged.
	expect(t, in, `regsub {z} "abc" "X" out`, "0")
	expect(t, in, `set out`, "abc")
	// -nocase.
	expect(t, in, `regsub -nocase {HELLO} "say hello" "goodbye" out; set out`, "say goodbye")
	// Escaped backslash in subSpec.
	expect(t, in, `regsub {b} "abc" {\\} out; set out`, "a\\c")
	evalErr(t, in, `regsub {x} y`, "wrong # args")
}

func TestTkErrorStyleUsage(t *testing.T) {
	// The classic idiom: extract fields from structured text.
	in := New()
	evalOK(t, in, `set line "width=640 height=480"`)
	expect(t, in, `regexp {width=([0-9]+) height=([0-9]+)} $line all w h`, "1")
	expect(t, in, `expr $w * $h`, "307200")
}
