package tcl

import (
	"regexp"
	"strings"
	"sync"
)

// registerRegexp installs regexp and regsub, present in the Tcl of the
// paper's era. Patterns use Go's RE2 syntax, a close superset of the
// original egrep-style patterns for everything scripts of the period
// wrote.
func registerRegexp(in *Interp) {
	in.Register("regexp", cmdRegexp)
	in.Register("regsub", cmdRegsub)
}

// patternCache caches compiled patterns. Each interpreter is
// single-threaded, but separate interpreters (separate applications in
// one test process) may run on different goroutines, so the shared cache
// is guarded.
var (
	patternMu    sync.Mutex
	patternCache = map[string]*regexp.Regexp{}
)

func compilePattern(pat string, nocase bool) (*regexp.Regexp, error) {
	key := pat
	if nocase {
		key = "(?i)" + pat
	}
	patternMu.Lock()
	re, ok := patternCache[key]
	patternMu.Unlock()
	if ok {
		return re, nil
	}
	re, err := regexp.Compile(key)
	if err != nil {
		return nil, errf("couldn't compile regular expression pattern: %s", err)
	}
	patternMu.Lock()
	if len(patternCache) < 1024 {
		patternCache[key] = re
	}
	patternMu.Unlock()
	return re, nil
}

// cmdRegexp implements:
//
//	regexp ?-nocase? exp string ?matchVar? ?subMatchVar ...?
func cmdRegexp(in *Interp, args []string) (string, error) {
	rest := args[1:]
	nocase := false
	for len(rest) > 0 && strings.HasPrefix(rest[0], "-") {
		switch rest[0] {
		case "-nocase":
			nocase = true
		case "--":
			rest = rest[1:]
			goto doneOpts
		default:
			return "", errf("bad switch %q: must be -nocase or --", rest[0])
		}
		rest = rest[1:]
	}
doneOpts:
	if len(rest) < 2 {
		return "", errf(`wrong # args: should be "regexp ?switches? exp string ?matchVar? ?subMatchVar ...?"`)
	}
	re, err := compilePattern(rest[0], nocase)
	if err != nil {
		return "", err
	}
	m := re.FindStringSubmatch(rest[1])
	if m == nil {
		return "0", nil
	}
	for i, varName := range rest[2:] {
		val := ""
		if i < len(m) {
			val = m[i]
		}
		if _, err := in.SetVar(varName, val); err != nil {
			return "", err
		}
	}
	return "1", nil
}

// cmdRegsub implements:
//
//	regsub ?-nocase? ?-all? exp string subSpec varName
//
// It returns 1 if a substitution occurred, 0 otherwise, storing the
// resulting string in varName. & and \0..\9 in subSpec refer to the match
// and submatches, as in Tcl.
func cmdRegsub(in *Interp, args []string) (string, error) {
	rest := args[1:]
	nocase, all := false, false
	for len(rest) > 0 && strings.HasPrefix(rest[0], "-") {
		switch rest[0] {
		case "-nocase":
			nocase = true
		case "-all":
			all = true
		case "--":
			rest = rest[1:]
			goto doneOpts
		default:
			return "", errf("bad switch %q: must be -all, -nocase or --", rest[0])
		}
		rest = rest[1:]
	}
doneOpts:
	if len(rest) != 4 {
		return "", errf(`wrong # args: should be "regsub ?switches? exp string subSpec varName"`)
	}
	re, err := compilePattern(rest[0], nocase)
	if err != nil {
		return "", err
	}
	input, subSpec, varName := rest[1], rest[2], rest[3]

	matched := false
	expand := func(m []string) string {
		var b strings.Builder
		for i := 0; i < len(subSpec); i++ {
			c := subSpec[i]
			switch {
			case c == '&':
				b.WriteString(m[0])
			case c == '\\' && i+1 < len(subSpec):
				n := subSpec[i+1]
				if n >= '0' && n <= '9' {
					idx := int(n - '0')
					if idx < len(m) {
						b.WriteString(m[idx])
					}
					i++
				} else {
					b.WriteByte(n)
					i++
				}
			default:
				b.WriteByte(c)
			}
		}
		return b.String()
	}

	var out string
	if all {
		out = re.ReplaceAllStringFunc(input, func(s string) string {
			matched = true
			m := re.FindStringSubmatch(s)
			return expand(m)
		})
	} else {
		loc := re.FindStringSubmatchIndex(input)
		if loc == nil {
			out = input
		} else {
			matched = true
			m := re.FindStringSubmatch(input[loc[0]:loc[1]])
			// Note: submatches computed against the matched slice keeps
			// the expansion simple and correct for non-anchored patterns.
			full := re.FindStringSubmatch(input)
			if full != nil {
				m = full
			}
			out = input[:loc[0]] + expand(m) + input[loc[1]:]
		}
	}
	if _, err := in.SetVar(varName, out); err != nil {
		return "", err
	}
	if matched {
		return "1", nil
	}
	return "0", nil
}
