package tcl

import (
	"sort"
	"strconv"
)

// registerInfo installs info and array.
func registerInfo(in *Interp) {
	in.Register("info", cmdInfo)
}

func registerArray(in *Interp) {
	in.Register("array", cmdArray)
}

// cmdInfo provides the introspection the paper highlights: "Tcl is a
// complete programming language that even provides access to its own
// internals (e.g. it is possible to retrieve the body of a Tcl procedure
// or a list of all defined variable names)."
func cmdInfo(in *Interp, args []string) (string, error) {
	if len(args) < 2 {
		return "", errf(`wrong # args: should be "info option ?arg ...?"`)
	}
	filter := func(names []string, patIdx int) string {
		pat := "*"
		if len(args) > patIdx {
			pat = args[patIdx]
		}
		var out []string
		for _, n := range names {
			if GlobMatch(pat, n) {
				out = append(out, n)
			}
		}
		sort.Strings(out)
		return FormatList(out)
	}
	switch args[1] {
	case "args":
		if len(args) != 3 {
			return "", errf(`wrong # args: should be "info args procName"`)
		}
		cmd, ok := in.cmds[args[2]]
		if !ok || cmd.proc == nil {
			return "", errf("%q isn't a procedure", args[2])
		}
		names := make([]string, len(cmd.proc.formals))
		for i, f := range cmd.proc.formals {
			names[i] = f.name
		}
		return FormatList(names), nil
	case "body":
		if len(args) != 3 {
			return "", errf(`wrong # args: should be "info body procName"`)
		}
		cmd, ok := in.cmds[args[2]]
		if !ok || cmd.proc == nil {
			return "", errf("%q isn't a procedure", args[2])
		}
		return cmd.proc.body, nil
	case "default":
		if len(args) != 5 {
			return "", errf(`wrong # args: should be "info default procName arg varName"`)
		}
		cmd, ok := in.cmds[args[2]]
		if !ok || cmd.proc == nil {
			return "", errf("%q isn't a procedure", args[2])
		}
		for _, f := range cmd.proc.formals {
			if f.name == args[3] {
				if f.hasDef {
					if _, err := in.SetVar(args[4], f.def); err != nil {
						return "", err
					}
					return "1", nil
				}
				return "0", nil
			}
		}
		return "", errf("procedure %q doesn't have an argument %q", args[2], args[3])
	case "commands":
		return filter(in.CommandNames(), 2), nil
	case "procs":
		var names []string
		for n, c := range in.cmds {
			if c.proc != nil {
				names = append(names, n)
			}
		}
		return filter(names, 2), nil
	case "exists":
		if len(args) != 3 {
			return "", errf(`wrong # args: should be "info exists varName"`)
		}
		if in.VarExists(args[2]) {
			return "1", nil
		}
		// An array variable "exists" even without an element reference.
		name, _, isArr := splitVarName(args[2])
		if !isArr {
			if v := in.lookupVar(in.current(), name, false); v != nil && v.isArr {
				return "1", nil
			}
		}
		return "0", nil
	case "globals":
		return filter(localVarNames(in.global()), 2), nil
	case "locals":
		if len(in.frames) == 1 {
			return "", nil
		}
		return filter(localVarNames(in.current()), 2), nil
	case "vars":
		return filter(localVarNames(in.current()), 2), nil
	case "level":
		if len(args) == 2 {
			return strconv.Itoa(len(in.frames) - 1), nil
		}
		return "", errf(`"info level n" is not supported`)
	case "tclversion":
		return "6.5", nil // the era of the paper
	case "library":
		return "", nil
	case "cmdcount":
		return "0", nil
	}
	return "", errf("bad option %q: should be args, body, commands, default, exists, globals, level, locals, procs, tclversion, or vars", args[1])
}

func cmdArray(in *Interp, args []string) (string, error) {
	if len(args) < 3 {
		return "", errf(`wrong # args: should be "array option arrayName ?arg ...?"`)
	}
	name := args[2]
	v := in.lookupVar(in.current(), name, false)
	isArray := v != nil && v.isArr
	switch args[1] {
	case "exists":
		if isArray {
			return "1", nil
		}
		return "0", nil
	case "size":
		if !isArray {
			return "0", nil
		}
		return strconv.Itoa(len(v.array)), nil
	case "names":
		if !isArray {
			return "", nil
		}
		names := in.arrayNames(name)
		if len(args) > 3 {
			var out []string
			for _, n := range names {
				if GlobMatch(args[3], n) {
					out = append(out, n)
				}
			}
			names = out
		}
		return FormatList(names), nil
	case "get":
		if !isArray {
			return "", nil
		}
		var out []string
		for _, k := range in.arrayNames(name) {
			out = append(out, k, v.array[k])
		}
		return FormatList(out), nil
	case "set":
		if len(args) != 4 {
			return "", errf(`wrong # args: should be "array set arrayName list"`)
		}
		pairs, err := ParseList(args[3])
		if err != nil {
			return "", err
		}
		if len(pairs)%2 != 0 {
			return "", errf("list must have an even number of elements")
		}
		for i := 0; i < len(pairs); i += 2 {
			if _, err := in.SetVar(name+"("+pairs[i]+")", pairs[i+1]); err != nil {
				return "", err
			}
		}
		return "", nil
	case "unset":
		if !isArray {
			return "", nil
		}
		pat := "*"
		if len(args) > 3 {
			pat = args[3]
		}
		for _, k := range in.arrayNames(name) {
			if GlobMatch(pat, k) {
				delete(v.array, k)
			}
		}
		return "", nil
	}
	return "", errf("bad option %q: should be exists, get, names, set, size, or unset", args[1])
}
