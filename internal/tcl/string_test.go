package tcl

import (
	"testing"
	"testing/quick"
)

func TestStringSubcommands(t *testing.T) {
	in := New()
	expect(t, in, "string length hello", "5")
	expect(t, in, "string length {}", "0")
	expect(t, in, "string index hello 1", "e")
	expect(t, in, "string index hello end", "o")
	expect(t, in, "string index hello 99", "")
	expect(t, in, "string range hello 1 3", "ell")
	expect(t, in, "string range hello 0 end", "hello")
	expect(t, in, "string compare abc abd", "-1")
	expect(t, in, "string compare abc abc", "0")
	expect(t, in, "string compare abd abc", "1")
	expect(t, in, "string equal a a", "1")
	expect(t, in, "string equal a b", "0")
	expect(t, in, "string first ll hello", "2")
	expect(t, in, "string first zz hello", "-1")
	expect(t, in, "string last l hello", "3")
	expect(t, in, "string tolower HeLLo", "hello")
	expect(t, in, "string toupper HeLLo", "HELLO")
	expect(t, in, "string trim {  spaced  }", "spaced")
	expect(t, in, "string trimleft xxabcxx x", "abcxx")
	expect(t, in, "string trimright xxabcxx x", "xxabc")
	expect(t, in, "string repeat ab 3", "ababab")
	expect(t, in, "string reverse abc", "cba")
	expect(t, in, "string wordend {hello world} 0", "5")
	expect(t, in, "string wordstart {hello world} 8", "6")
	evalErr(t, in, "string nosuch x", "bad option")
}

func TestStringMatch(t *testing.T) {
	in := New()
	cases := []struct {
		pat, s string
		want   string
	}{
		{"*", "anything", "1"},
		{"*", "", "1"},
		{"a*c", "abc", "1"},
		{"a*c", "ac", "1"},
		{"a*c", "abd", "0"},
		{"?", "x", "1"},
		{"?", "", "0"},
		{"a?c", "abc", "1"},
		{"[a-c]x", "bx", "1"},
		{"[a-c]x", "dx", "0"},
		{"[abc]", "b", "1"},
		{"\\*", "*", "1"},
		{"\\*", "x", "0"},
		{"a**b", "ab", "1"},
		{"*.tcl", "main.tcl", "1"},
		{"*.tcl", "main.go", "0"},
	}
	for _, c := range cases {
		got := evalOK(t, in, "string match {"+c.pat+"} {"+c.s+"}")
		if got != c.want {
			t.Errorf("string match %q %q = %s, want %s", c.pat, c.s, got, c.want)
		}
	}
}

// Property: a string always matches itself when it has no pattern
// metacharacters, and "*" matches everything.
func TestGlobMatchProperties(t *testing.T) {
	literal := func(s string) bool {
		for _, c := range s {
			switch c {
			case '*', '?', '[', ']', '\\':
				return true // skip strings with metacharacters
			}
		}
		return GlobMatch(s, s) && GlobMatch("*", s)
	}
	if err := quick.Check(literal, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatCommand(t *testing.T) {
	in := New()
	expect(t, in, `format "x is %s" 42`, "x is 42")
	expect(t, in, `format %d 42`, "42")
	expect(t, in, `format %5d 42`, "   42")
	expect(t, in, `format %-5d| 42`, "42   |")
	expect(t, in, `format %05d 42`, "00042")
	expect(t, in, `format %x 255`, "ff")
	expect(t, in, `format %X 255`, "FF")
	expect(t, in, `format %o 8`, "10")
	expect(t, in, `format %c 65`, "A")
	expect(t, in, `format %.2f 3.14159`, "3.14")
	expect(t, in, `format %e 12345.678 `, "1.234568e+04")
	expect(t, in, `format %g 0.0001`, "0.0001")
	expect(t, in, `format "100%%"`, "100%")
	expect(t, in, `format "%s and %s" a b`, "a and b")
	expect(t, in, `format %*d 6 42`, "    42")
	expect(t, in, `format %.*f 1 3.999`, "4.0")
	evalErr(t, in, `format %d notanumber`, "expected integer")
	evalErr(t, in, `format "%s %s" onlyone`, "not enough arguments")
	evalErr(t, in, `format %q x`, "bad field specifier")
}

func TestScanCommand(t *testing.T) {
	in := New()
	expect(t, in, `scan "42 hello" "%d %s" a b`, "2")
	expect(t, in, "set a", "42")
	expect(t, in, "set b", "hello")
	expect(t, in, `scan "3.5" %f f`, "1")
	expect(t, in, "set f", "3.5")
	expect(t, in, `scan "ff" %x h`, "1")
	expect(t, in, "set h", "255")
	expect(t, in, `scan "17" %o o`, "1")
	expect(t, in, "set o", "15")
	expect(t, in, `scan "A" %c c`, "1")
	expect(t, in, "set c", "65")
	expect(t, in, `scan "xyz" %d nope`, "0")
	// Width-limited conversion.
	expect(t, in, `scan "12345" %2d two`, "1")
	expect(t, in, "set two", "12")
}
