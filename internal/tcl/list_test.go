package tcl

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseListBasics(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a b c", []string{"a", "b", "c"}},
		{"  a   b  ", []string{"a", "b"}},
		{"{a b} c", []string{"a b", "c"}},
		{"a {b {c d}} e", []string{"a", "b {c d}", "e"}},
		{`"a b" c`, []string{"a b", "c"}},
		{`a\ b c`, []string{"a b", "c"}},
		{"{}", []string{""}},
		{"a\tb\nc", []string{"a", "b", "c"}},
	}
	for _, c := range cases {
		got, err := ParseList(c.in)
		if err != nil {
			t.Fatalf("ParseList(%q) error: %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseList(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestParseListErrors(t *testing.T) {
	for _, bad := range []string{"{a", `"unclosed`, "{a}b"} {
		if _, err := ParseList(bad); err == nil {
			t.Errorf("ParseList(%q): expected error", bad)
		}
	}
}

func TestQuoteElement(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"", "{}"},
		{"two words", "{two words}"},
		{"semi;colon", "{semi;colon}"},
		{"$dollar", "{$dollar}"},
		{"bra[cket", "{bra[cket}"},
	}
	for _, c := range cases {
		if got := QuoteElement(c.in); got != c.want {
			t.Errorf("QuoteElement(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestListRoundTrip property: FormatList then ParseList returns the
// original elements for arbitrary strings.
func TestListRoundTrip(t *testing.T) {
	f := func(elems []string) bool {
		s := FormatList(elems)
		got, err := ParseList(s)
		if err != nil {
			return false
		}
		if len(elems) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, elems)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestListRoundTripHardCases(t *testing.T) {
	hard := [][]string{
		{"a b", "{", "}", "\\", "$x", "[cmd]", "\"q\"", ""},
		{"{unbalanced", "also}bad"},
		{"\n", "\t", " "},
		{"end with backslash\\"},
	}
	for _, elems := range hard {
		s := FormatList(elems)
		got, err := ParseList(s)
		if err != nil {
			t.Fatalf("round trip of %#v: ParseList(%q) error %v", elems, s, err)
		}
		if !reflect.DeepEqual(got, elems) {
			t.Fatalf("round trip of %#v via %q = %#v", elems, s, got)
		}
	}
}

func TestListCommands(t *testing.T) {
	in := New()
	expect(t, in, "list a b c", "a b c")
	expect(t, in, "list {a b} c", "{a b} c")
	expect(t, in, "list", "")
	expect(t, in, "lindex {a b c} 1", "b")
	expect(t, in, "lindex {a b c} end", "c")
	expect(t, in, "lindex {a b c} end-1", "b")
	expect(t, in, "lindex {a b c} 10", "")
	expect(t, in, "index {a b c} 0", "a") // historic alias
	expect(t, in, "llength {a b {c d}}", "3")
	expect(t, in, "llength {}", "0")
	expect(t, in, "lrange {a b c d e} 1 3", "b c d")
	expect(t, in, "lrange {a b c} 0 end", "a b c")
	expect(t, in, "range {a b c} 1 end", "b c") // historic alias
	expect(t, in, "linsert {a c} 1 b", "a b c")
	expect(t, in, "linsert {a b} end c", "a b c")
	expect(t, in, "lreplace {a b c d} 1 2 x y z", "a x y z d")
	expect(t, in, "lreplace {a b c} 0 0", "b c")
	expect(t, in, "lsearch {a b c} b", "1")
	expect(t, in, "lsearch {a b c} z", "-1")
	expect(t, in, "lsearch -glob {apple banana} b*", "1")
	expect(t, in, "lsearch -exact {a* b} a*", "0")
	expect(t, in, "concat {a b} {c d}", "a b c d")
	expect(t, in, "concat a {} b", "a b")
	expect(t, in, "join {a b c} -", "a-b-c")
	expect(t, in, "join {a b c}", "a b c")
	expect(t, in, "split a-b-c -", "a b c")
	expect(t, in, "split a:b,c :,", "a b c")
	expect(t, in, "split abc {}", "a b c")
	expect(t, in, "lsort {pear apple orange}", "apple orange pear")
	expect(t, in, "lsort -integer {10 9 100}", "9 10 100")
	expect(t, in, "lsort -decreasing {a c b}", "c b a")
	expect(t, in, "lsort -real {2.5 1.5 10.1}", "1.5 2.5 10.1")
	evalErr(t, in, "lsort -integer {a b}", "expected integer")
	expect(t, in, "lappend lv a", "a")
	expect(t, in, "lappend lv {b c}", "a {b c}")
	expect(t, in, "llength $lv", "2")
}

func TestListNestedStructures(t *testing.T) {
	in := New()
	// The paper's Lisp comparison: programs have the same form as data.
	evalOK(t, in, "set prog [list set deep 99]")
	expect(t, in, "eval $prog", "99")
	expect(t, in, "set deep", "99")
	// Deep nesting survives round trips.
	evalOK(t, in, "set n {a {b {c {d e}}}}")
	expect(t, in, "lindex [lindex [lindex [lindex $n 1] 1] 1] 1", "e")
}
