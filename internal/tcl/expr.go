package tcl

import (
	"math"
	"strconv"
	"strings"
)

// The expression evaluator implements Tcl's expr sub-language: C-like
// operators and precedence over integers, floating-point numbers and
// strings, with $variable and [command] substitution performed on
// operands (so that "if {$i < 2} ..." works on the unsubstituted braced
// argument, as in real Tcl).

type valKind int

const (
	intVal valKind = iota
	floatVal
	strVal
)

type exprVal struct {
	kind valKind
	i    int64
	f    float64
	s    string
}

func intValue(i int64) exprVal     { return exprVal{kind: intVal, i: i} }
func floatValue(f float64) exprVal { return exprVal{kind: floatVal, f: f} }
func strValue(s string) exprVal    { return exprVal{kind: strVal, s: s} }

func (v exprVal) String() string {
	switch v.kind {
	case intVal:
		return strconv.FormatInt(v.i, 10)
	case floatVal:
		return formatFloat(v.f)
	default:
		return v.s
	}
}

// formatFloat renders a float the way Tcl's default precision does.
func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "Inf"
	}
	if math.IsInf(f, -1) {
		return "-Inf"
	}
	s := strconv.FormatFloat(f, 'g', 12, 64)
	// Guarantee the result re-parses as a float, not an integer.
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func (v exprVal) isNumeric() bool { return v.kind == intVal || v.kind == floatVal }

func (v exprVal) asFloat() float64 {
	if v.kind == intVal {
		return float64(v.i)
	}
	return v.f
}

// truth interprets a value as a boolean condition.
func (v exprVal) truth() (bool, error) {
	switch v.kind {
	case intVal:
		return v.i != 0, nil
	case floatVal:
		return v.f != 0, nil
	default:
		switch strings.ToLower(v.s) {
		case "true", "yes", "on", "1":
			return true, nil
		case "false", "no", "off", "0":
			return false, nil
		}
		if n, ok := parseNumber(v.s); ok {
			return n.truth()
		}
		return false, errf("expected boolean value but got %q", v.s)
	}
}

// parseNumber attempts to read s as a Tcl integer (decimal, 0x hex, 0
// octal) or float. Whitespace is trimmed first.
func parseNumber(s string) (exprVal, bool) {
	t := strings.TrimSpace(s)
	if t == "" {
		return exprVal{}, false
	}
	if i, err := strconv.ParseInt(t, 0, 64); err == nil {
		return intValue(i), true
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return floatValue(f), true
	}
	return exprVal{}, false
}

// EvalExpr evaluates a Tcl expression and returns its string value.
func (in *Interp) EvalExpr(expr string) (string, error) {
	v, err := in.exprValue(expr)
	if err != nil {
		return "", err
	}
	return v.String(), nil
}

// EvalBool evaluates a Tcl expression as a condition.
func (in *Interp) EvalBool(expr string) (bool, error) {
	v, err := in.exprValue(expr)
	if err != nil {
		return false, err
	}
	return v.truth()
}

func (in *Interp) exprValue(expr string) (exprVal, error) {
	ep := &exprParser{in: in, src: expr}
	v, err := ep.parseTernary()
	if err != nil {
		return exprVal{}, err
	}
	ep.skipSpace()
	if !ep.eof() {
		return exprVal{}, errf("syntax error in expression %q", expr)
	}
	return v, nil
}

type exprParser struct {
	in  *Interp
	src string
	pos int
	// skip > 0 while parsing a branch whose value is not needed (the
	// untaken arm of ?: or the short-circuited side of &&/||): operands
	// are scanned but not evaluated, so side effects do not occur — the
	// lazy-evaluation semantics of Tcl's expr.
	skip int
}

// scanVarRef advances past a $variable reference without evaluating it.
func (e *exprParser) scanVarRef() error {
	e.pos++ // '$'
	if e.pos >= len(e.src) {
		return nil
	}
	if e.src[e.pos] == '{' {
		end := strings.IndexByte(e.src[e.pos:], '}')
		if end < 0 {
			return errf("missing close-brace for variable name")
		}
		e.pos += end + 1
		return nil
	}
	for e.pos < len(e.src) && isVarNameChar(e.src[e.pos]) {
		e.pos++
	}
	if e.pos < len(e.src) && e.src[e.pos] == '(' {
		depth := 0
		for e.pos < len(e.src) {
			switch e.src[e.pos] {
			case '\\':
				e.pos++
			case '(':
				depth++
			case ')':
				depth--
				if depth == 0 {
					e.pos++
					return nil
				}
			case '[':
				if err := e.scanBracket(); err != nil {
					return err
				}
				continue
			}
			e.pos++
		}
		return errf("missing )")
	}
	return nil
}

// scanBracket advances past a [command] without evaluating it.
func (e *exprParser) scanBracket() error {
	depth := 0
	for e.pos < len(e.src) {
		switch e.src[e.pos] {
		case '\\':
			e.pos++
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				e.pos++
				return nil
			}
		case '{':
			j, err := skipBraces(e.src, e.pos)
			if err != nil {
				return err
			}
			e.pos = j
			continue
		}
		e.pos++
	}
	return errf("missing close-bracket")
}

func (e *exprParser) eof() bool { return e.pos >= len(e.src) }

func (e *exprParser) skipSpace() {
	for !e.eof() {
		c := e.src[e.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			e.pos++
			continue
		}
		break
	}
}

func (e *exprParser) peekOp() string {
	e.skipSpace()
	if e.eof() {
		return ""
	}
	rest := e.src[e.pos:]
	for _, op := range [...]string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"} {
		if strings.HasPrefix(rest, op) {
			return op
		}
	}
	c := rest[0]
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '&', '|', '^', '?', ':', '!', '~':
		return string(c)
	}
	return ""
}

func (e *exprParser) takeOp(op string) { e.pos += len(op) }

// parseTernary handles cond ? a : b (lowest precedence).
func (e *exprParser) parseTernary() (exprVal, error) {
	cond, err := e.parseBinary(0)
	if err != nil {
		return exprVal{}, err
	}
	if e.peekOp() != "?" {
		return cond, nil
	}
	e.takeOp("?")
	b := false
	if e.skip == 0 {
		var err error
		if b, err = cond.truth(); err != nil {
			return exprVal{}, err
		}
	}
	// Both branches are parsed, but only the selected one is evaluated;
	// the other is scanned in skip mode so its side effects never occur.
	if !b {
		e.skip++
	}
	left, err := e.parseTernary()
	if !b {
		e.skip--
	}
	if err != nil {
		return exprVal{}, err
	}
	e.skipSpace()
	if e.peekOp() != ":" {
		return exprVal{}, errf("missing ':' in ternary expression")
	}
	e.takeOp(":")
	if b {
		e.skip++
	}
	right, err := e.parseTernary()
	if b {
		e.skip--
	}
	if err != nil {
		return exprVal{}, err
	}
	if b {
		return left, nil
	}
	return right, nil
}

// binOp describes a binary operator's precedence level.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (e *exprParser) parseBinary(level int) (exprVal, error) {
	if level >= len(binLevels) {
		return e.parseUnary()
	}
	left, err := e.parseBinary(level + 1)
	if err != nil {
		return exprVal{}, err
	}
	for {
		op := e.peekOp()
		found := false
		for _, cand := range binLevels[level] {
			if op == cand {
				found = true
				break
			}
		}
		if !found {
			return left, nil
		}
		e.takeOp(op)

		// Lazy evaluation for && and ||: when the left operand decides
		// the result, the right side is scanned without evaluation.
		if op == "&&" || op == "||" {
			if e.skip > 0 {
				if _, err := e.parseBinary(level + 1); err != nil {
					return exprVal{}, err
				}
				continue
			}
			lb, err := left.truth()
			if err != nil {
				return exprVal{}, err
			}
			decided := (op == "&&" && !lb) || (op == "||" && lb)
			if decided {
				e.skip++
			}
			right, err := e.parseBinary(level + 1)
			if decided {
				e.skip--
			}
			if err != nil {
				return exprVal{}, err
			}
			if decided {
				left = boolValue(lb)
				continue
			}
			rb, err := right.truth()
			if err != nil {
				return exprVal{}, err
			}
			left = boolValue(rb)
			continue
		}

		right, err := e.parseBinary(level + 1)
		if err != nil {
			return exprVal{}, err
		}
		if e.skip > 0 {
			left = intValue(0)
			continue
		}
		left, err = applyBinary(op, left, right)
		if err != nil {
			return exprVal{}, err
		}
	}
}

func boolValue(b bool) exprVal {
	if b {
		return intValue(1)
	}
	return intValue(0)
}

func applyBinary(op string, l, r exprVal) (exprVal, error) {
	switch op {
	case "==", "!=", "<", ">", "<=", ">=":
		return compareVals(op, l, r)
	}
	// The remaining operators are numeric.
	ln, lok := coerceNumber(l)
	rn, rok := coerceNumber(r)
	if !lok || !rok {
		bad := l
		if lok {
			bad = r
		}
		return exprVal{}, errf("can't use non-numeric string %q as operand of %q", bad.String(), op)
	}
	bothInt := ln.kind == intVal && rn.kind == intVal
	switch op {
	case "+":
		if bothInt {
			return intValue(ln.i + rn.i), nil
		}
		return floatValue(ln.asFloat() + rn.asFloat()), nil
	case "-":
		if bothInt {
			return intValue(ln.i - rn.i), nil
		}
		return floatValue(ln.asFloat() - rn.asFloat()), nil
	case "*":
		if bothInt {
			return intValue(ln.i * rn.i), nil
		}
		return floatValue(ln.asFloat() * rn.asFloat()), nil
	case "/":
		if bothInt {
			if rn.i == 0 {
				return exprVal{}, errf("divide by zero")
			}
			return intValue(ln.i / rn.i), nil
		}
		if rn.asFloat() == 0 {
			return exprVal{}, errf("divide by zero")
		}
		return floatValue(ln.asFloat() / rn.asFloat()), nil
	case "%":
		if !bothInt {
			return exprVal{}, errf("can't use floating-point value as operand of %q", "%")
		}
		if rn.i == 0 {
			return exprVal{}, errf("divide by zero")
		}
		return intValue(ln.i % rn.i), nil
	case "<<", ">>", "&", "|", "^":
		if !bothInt {
			return exprVal{}, errf("can't use floating-point value as operand of %q", op)
		}
		switch op {
		case "<<":
			return intValue(ln.i << uint(rn.i&63)), nil
		case ">>":
			return intValue(ln.i >> uint(rn.i&63)), nil
		case "&":
			return intValue(ln.i & rn.i), nil
		case "|":
			return intValue(ln.i | rn.i), nil
		default:
			return intValue(ln.i ^ rn.i), nil
		}
	}
	return exprVal{}, errf("unknown operator %q", op)
}

// coerceNumber converts a string value to numeric when possible.
func coerceNumber(v exprVal) (exprVal, bool) {
	if v.isNumeric() {
		return v, true
	}
	return parseNumber(v.s)
}

// compareVals compares numerically when both operands are numeric,
// otherwise as strings (Tcl semantics).
func compareVals(op string, l, r exprVal) (exprVal, error) {
	ln, lok := coerceNumber(l)
	rn, rok := coerceNumber(r)
	var c int
	if lok && rok {
		lf, rf := ln.asFloat(), rn.asFloat()
		switch {
		case lf < rf:
			c = -1
		case lf > rf:
			c = 1
		}
	} else {
		c = strings.Compare(l.String(), r.String())
	}
	switch op {
	case "==":
		return boolValue(c == 0), nil
	case "!=":
		return boolValue(c != 0), nil
	case "<":
		return boolValue(c < 0), nil
	case ">":
		return boolValue(c > 0), nil
	case "<=":
		return boolValue(c <= 0), nil
	default:
		return boolValue(c >= 0), nil
	}
}

func (e *exprParser) parseUnary() (exprVal, error) {
	e.skipSpace()
	if e.eof() {
		return exprVal{}, errf("premature end of expression")
	}
	switch c := e.src[e.pos]; c {
	case '-':
		e.pos++
		v, err := e.parseUnary()
		if err != nil {
			return exprVal{}, err
		}
		if e.skip > 0 {
			return intValue(0), nil
		}
		n, ok := coerceNumber(v)
		if !ok {
			return exprVal{}, errf("can't use non-numeric string %q as operand of %q", v.String(), "-")
		}
		if n.kind == intVal {
			return intValue(-n.i), nil
		}
		return floatValue(-n.f), nil
	case '+':
		e.pos++
		v, err := e.parseUnary()
		if err != nil {
			return exprVal{}, err
		}
		if e.skip > 0 {
			return intValue(0), nil
		}
		n, ok := coerceNumber(v)
		if !ok {
			return exprVal{}, errf("can't use non-numeric string %q as operand of %q", v.String(), "+")
		}
		return n, nil
	case '!':
		e.pos++
		v, err := e.parseUnary()
		if err != nil {
			return exprVal{}, err
		}
		if e.skip > 0 {
			return intValue(0), nil
		}
		b, err := v.truth()
		if err != nil {
			return exprVal{}, err
		}
		return boolValue(!b), nil
	case '~':
		e.pos++
		v, err := e.parseUnary()
		if err != nil {
			return exprVal{}, err
		}
		if e.skip > 0 {
			return intValue(0), nil
		}
		n, ok := coerceNumber(v)
		if !ok || n.kind != intVal {
			return exprVal{}, errf("can't use non-integer value as operand of %q", "~")
		}
		return intValue(^n.i), nil
	}
	return e.parsePrimary()
}

func (e *exprParser) parsePrimary() (exprVal, error) {
	e.skipSpace()
	if e.eof() {
		return exprVal{}, errf("premature end of expression")
	}
	c := e.src[e.pos]
	switch {
	case c == '(':
		e.pos++
		v, err := e.parseTernary()
		if err != nil {
			return exprVal{}, err
		}
		e.skipSpace()
		if e.eof() || e.src[e.pos] != ')' {
			return exprVal{}, errf("looking for close parenthesis")
		}
		e.pos++
		return v, nil
	case c == '$':
		if e.skip > 0 {
			if err := e.scanVarRef(); err != nil {
				return exprVal{}, err
			}
			return intValue(0), nil
		}
		p := &parser{src: e.src, pos: e.pos}
		s, err := p.parseVarSubst(e.in)
		if err != nil {
			return exprVal{}, err
		}
		e.pos = p.pos
		if n, ok := parseNumber(s); ok {
			return n, nil
		}
		return strValue(s), nil
	case c == '[':
		if e.skip > 0 {
			if err := e.scanBracket(); err != nil {
				return exprVal{}, err
			}
			return intValue(0), nil
		}
		p := &parser{src: e.src, pos: e.pos}
		s, err := p.parseCommandSubst(e.in)
		if err != nil {
			return exprVal{}, err
		}
		e.pos = p.pos
		if n, ok := parseNumber(s); ok {
			return n, nil
		}
		return strValue(s), nil
	case c == '"':
		if e.skip > 0 {
			if err := e.scanQuoted(); err != nil {
				return exprVal{}, err
			}
			return intValue(0), nil
		}
		p := &parser{src: e.src, pos: e.pos}
		s, err := p.parseQuotedString(e.in)
		if err != nil {
			return exprVal{}, err
		}
		e.pos = p.pos
		return strValue(s), nil
	case c == '{':
		p := &parser{src: e.src, pos: e.pos}
		s, err := p.parseBraced()
		if err != nil {
			return exprVal{}, err
		}
		e.pos = p.pos
		return strValue(s), nil
	case c >= '0' && c <= '9' || c == '.':
		return e.parseNumberToken()
	case isAlpha(c):
		return e.parseFuncCall()
	}
	return exprVal{}, errf("syntax error in expression at %q", e.src[e.pos:])
}

// parseQuotedString is parseQuoted without the trailing-separator check,
// for use inside expressions where an operator may follow the quote.
func (p *parser) parseQuotedString(in *Interp) (string, error) {
	p.pos++ // consume '"'
	var b strings.Builder
	for !p.eof() {
		c := p.peek()
		switch c {
		case '"':
			p.pos++
			return b.String(), nil
		case '$':
			s, err := p.parseVarSubst(in)
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		case '[':
			s, err := p.parseCommandSubst(in)
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		case '\\':
			s, err := p.parseBackslash()
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return "", errf("missing \"")
}

func isAlpha(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func (e *exprParser) parseNumberToken() (exprVal, error) {
	start := e.pos
	isFloat := false
	// Hex.
	if e.src[e.pos] == '0' && e.pos+1 < len(e.src) && (e.src[e.pos+1] == 'x' || e.src[e.pos+1] == 'X') {
		e.pos += 2
		for !e.eof() && isHex(e.src[e.pos]) {
			e.pos++
		}
		i, err := strconv.ParseInt(e.src[start:e.pos], 0, 64)
		if err != nil {
			return exprVal{}, errf("malformed number %q", e.src[start:e.pos])
		}
		return intValue(i), nil
	}
	for !e.eof() {
		c := e.src[e.pos]
		if c >= '0' && c <= '9' {
			e.pos++
			continue
		}
		if c == '.' {
			isFloat = true
			e.pos++
			continue
		}
		if c == 'e' || c == 'E' {
			// Exponent, possibly signed.
			if e.pos+1 < len(e.src) && (isDigit(e.src[e.pos+1]) ||
				(e.src[e.pos+1] == '+' || e.src[e.pos+1] == '-') && e.pos+2 < len(e.src) && isDigit(e.src[e.pos+2])) {
				isFloat = true
				e.pos++
				if e.src[e.pos] == '+' || e.src[e.pos] == '-' {
					e.pos++
				}
				continue
			}
		}
		break
	}
	tok := e.src[start:e.pos]
	if isFloat {
		f, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return exprVal{}, errf("malformed number %q", tok)
		}
		return floatValue(f), nil
	}
	i, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		// Out-of-range integers fall back to float.
		if f, ferr := strconv.ParseFloat(tok, 64); ferr == nil {
			return floatValue(f), nil
		}
		return exprVal{}, errf("malformed number %q", tok)
	}
	return intValue(i), nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// parseFuncCall handles math functions like sin(x) and atan2(y, x).
func (e *exprParser) parseFuncCall() (exprVal, error) {
	start := e.pos
	for !e.eof() && (isAlpha(e.src[e.pos]) || isDigit(e.src[e.pos])) {
		e.pos++
	}
	name := e.src[start:e.pos]
	e.skipSpace()
	if e.eof() || e.src[e.pos] != '(' {
		return exprVal{}, errf("syntax error in expression: unknown token %q", name)
	}
	e.pos++
	var args []exprVal
	e.skipSpace()
	if !e.eof() && e.src[e.pos] == ')' {
		e.pos++
	} else {
		for {
			v, err := e.parseTernary()
			if err != nil {
				return exprVal{}, err
			}
			args = append(args, v)
			e.skipSpace()
			if e.eof() {
				return exprVal{}, errf("missing close parenthesis in function call")
			}
			if e.src[e.pos] == ',' {
				e.pos++
				continue
			}
			if e.src[e.pos] == ')' {
				e.pos++
				break
			}
			return exprVal{}, errf("syntax error in function arguments")
		}
	}
	if e.skip > 0 {
		// In a skipped branch only the function's existence is checked.
		if !knownMathFunc(name) {
			return exprVal{}, errf("unknown math function %q", name)
		}
		return intValue(0), nil
	}
	return applyMathFunc(name, args)
}

// knownMathFunc reports whether name is a recognized math function.
func knownMathFunc(name string) bool {
	switch name {
	case "abs", "acos", "asin", "atan", "atan2", "ceil", "cos", "cosh",
		"double", "exp", "floor", "fmod", "hypot", "int", "log", "log10",
		"pow", "round", "sin", "sinh", "sqrt", "tan", "tanh":
		return true
	}
	return false
}

// scanQuoted advances past a "..." operand without evaluating the
// substitutions inside it.
func (e *exprParser) scanQuoted() error {
	e.pos++ // '"'
	for e.pos < len(e.src) {
		switch e.src[e.pos] {
		case '\\':
			e.pos += 2
			continue
		case '"':
			e.pos++
			return nil
		case '[':
			if err := e.scanBracket(); err != nil {
				return err
			}
			continue
		}
		e.pos++
	}
	return errf("missing \"")
}

func applyMathFunc(name string, args []exprVal) (exprVal, error) {
	numArgs := func(n int) ([]float64, error) {
		if len(args) != n {
			return nil, errf("math function %q needs %d argument(s), got %d", name, n, len(args))
		}
		out := make([]float64, n)
		for i, a := range args {
			v, ok := coerceNumber(a)
			if !ok {
				return nil, errf("argument to math function %q isn't numeric", name)
			}
			out[i] = v.asFloat()
		}
		return out, nil
	}
	one := func(fn func(float64) float64) (exprVal, error) {
		a, err := numArgs(1)
		if err != nil {
			return exprVal{}, err
		}
		r := fn(a[0])
		if math.IsNaN(r) {
			return exprVal{}, errf("domain error: argument not in valid range")
		}
		return floatValue(r), nil
	}
	switch name {
	case "abs":
		a, err := numArgs(1)
		if err != nil {
			return exprVal{}, err
		}
		v, _ := coerceNumber(args[0])
		if v.kind == intVal {
			if v.i < 0 {
				return intValue(-v.i), nil
			}
			return v, nil
		}
		return floatValue(math.Abs(a[0])), nil
	case "acos":
		return one(math.Acos)
	case "asin":
		return one(math.Asin)
	case "atan":
		return one(math.Atan)
	case "atan2":
		a, err := numArgs(2)
		if err != nil {
			return exprVal{}, err
		}
		return floatValue(math.Atan2(a[0], a[1])), nil
	case "ceil":
		return one(math.Ceil)
	case "cos":
		return one(math.Cos)
	case "cosh":
		return one(math.Cosh)
	case "double":
		a, err := numArgs(1)
		if err != nil {
			return exprVal{}, err
		}
		return floatValue(a[0]), nil
	case "exp":
		return one(math.Exp)
	case "floor":
		return one(math.Floor)
	case "fmod":
		a, err := numArgs(2)
		if err != nil {
			return exprVal{}, err
		}
		if a[1] == 0 {
			return exprVal{}, errf("divide by zero in fmod")
		}
		return floatValue(math.Mod(a[0], a[1])), nil
	case "hypot":
		a, err := numArgs(2)
		if err != nil {
			return exprVal{}, err
		}
		return floatValue(math.Hypot(a[0], a[1])), nil
	case "int":
		a, err := numArgs(1)
		if err != nil {
			return exprVal{}, err
		}
		return intValue(int64(a[0])), nil
	case "log":
		return one(math.Log)
	case "log10":
		return one(math.Log10)
	case "pow":
		a, err := numArgs(2)
		if err != nil {
			return exprVal{}, err
		}
		return floatValue(math.Pow(a[0], a[1])), nil
	case "round":
		a, err := numArgs(1)
		if err != nil {
			return exprVal{}, err
		}
		return intValue(int64(math.Round(a[0]))), nil
	case "sin":
		return one(math.Sin)
	case "sinh":
		return one(math.Sinh)
	case "sqrt":
		return one(math.Sqrt)
	case "tan":
		return one(math.Tan)
	case "tanh":
		return one(math.Tanh)
	}
	return exprVal{}, errf("unknown math function %q", name)
}

// registerExprCmd installs the expr command.
func registerExprCmd(in *Interp) {
	in.Register("expr", func(in *Interp, args []string) (string, error) {
		if len(args) < 2 {
			return "", errf(`wrong # args: should be "expr arg ?arg ...?"`)
		}
		// Multiple arguments are concatenated with spaces, as in Tcl.
		return in.EvalExpr(strings.Join(args[1:], " "))
	})
}
