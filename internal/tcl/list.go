package tcl

import (
	"strings"
)

// ParseList splits a Tcl list into its elements. Elements are separated
// by white space; braces and double quotes group elements; backslash
// sequences inside bare or quoted elements are substituted.
func ParseList(s string) ([]string, error) {
	var elems []string
	i := 0
	n := len(s)
	for {
		for i < n && isListSpace(s[i]) {
			i++
		}
		if i >= n {
			return elems, nil
		}
		switch s[i] {
		case '{':
			depth := 1
			j := i + 1
			var b strings.Builder
			for j < n {
				c := s[j]
				if c == '\\' && j+1 < n {
					b.WriteByte(c)
					b.WriteByte(s[j+1])
					j += 2
					continue
				}
				if c == '{' {
					depth++
				} else if c == '}' {
					depth--
					if depth == 0 {
						break
					}
				}
				b.WriteByte(c)
				j++
			}
			if depth != 0 {
				return nil, errf("unmatched open brace in list")
			}
			j++ // past '}'
			if j < n && !isListSpace(s[j]) {
				return nil, errf("list element in braces followed by %q instead of space", s[j:])
			}
			elems = append(elems, b.String())
			i = j
		case '"':
			j := i + 1
			var b strings.Builder
			closed := false
			for j < n {
				c := s[j]
				if c == '\\' && j+1 < n {
					b.WriteString(backslashSubstOne(s[j+1:], &j))
					continue
				}
				if c == '"' {
					closed = true
					j++
					break
				}
				b.WriteByte(c)
				j++
			}
			if !closed {
				return nil, errf("unmatched open quote in list")
			}
			if j < n && !isListSpace(s[j]) {
				return nil, errf("list element in quotes followed by %q instead of space", s[j:])
			}
			elems = append(elems, b.String())
			i = j
		default:
			j := i
			var b strings.Builder
			for j < n && !isListSpace(s[j]) {
				c := s[j]
				if c == '\\' && j+1 < n {
					b.WriteString(backslashSubstOne(s[j+1:], &j))
					continue
				}
				b.WriteByte(c)
				j++
			}
			elems = append(elems, b.String())
			i = j
		}
	}
}

// backslashSubstOne substitutes the backslash sequence whose first byte
// after the backslash is rest[0]. j points at the backslash in the outer
// string and is advanced past the whole sequence.
func backslashSubstOne(rest string, j *int) string {
	p := &parser{src: "\\" + rest}
	out, _ := p.parseBackslash()
	*j += p.pos
	return out
}

func isListSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

// QuoteElement converts a string into a form suitable for inclusion as a
// single element of a Tcl list (adding braces or backslashes as needed).
func QuoteElement(s string) string {
	if s == "" {
		return "{}"
	}
	needQuote := false
	braceOK := true
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r', '\v', '\f', ';', '$', '[', ']', '"':
			needQuote = true
		case '\\':
			needQuote = true
			braceOK = false
		case '{':
			needQuote = true
			depth++
		case '}':
			needQuote = true
			depth--
			if depth < 0 {
				braceOK = false
			}
		}
	}
	if depth != 0 {
		braceOK = false
	}
	if s[0] == '{' || s[0] == '"' {
		needQuote = true
	}
	if !needQuote {
		return s
	}
	if braceOK {
		return "{" + s + "}"
	}
	// Backslash-quote every special character.
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case ' ', '\t', ';', '$', '[', ']', '"', '\\', '{', '}':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString("\\n")
		case '\r':
			b.WriteString("\\r")
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// FormatList joins elements into a well-formed Tcl list string.
func FormatList(elems []string) string {
	var b strings.Builder
	for i, e := range elems {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(QuoteElement(e))
	}
	return b.String()
}
