package tcl

import (
	"strings"
)

// parser walks a script, producing one fully substituted command at a
// time. Substitution happens during parsing, as in the original
// string-based Tcl: there is no intermediate representation.
type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte { return p.src[p.pos] }

// nextCommand returns the next command's words after substitution. ok is
// false at end of script.
func (p *parser) nextCommand(in *Interp) (words []string, ok bool, err error) {
	// Skip command separators and blank space before the command.
	for !p.eof() {
		c := p.peek()
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';' {
			p.pos++
			continue
		}
		if c == '\\' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n' {
			p.pos += 2
			continue
		}
		break
	}
	if p.eof() {
		return nil, false, nil
	}
	// A '#' at command start introduces a comment to end of line.
	if p.peek() == '#' {
		for !p.eof() {
			c := p.peek()
			if c == '\\' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n' {
				p.pos += 2
				continue
			}
			p.pos++
			if c == '\n' {
				break
			}
		}
		return p.nextCommand(in)
	}

	for {
		// Skip blanks between words (backslash-newline is a blank).
		for !p.eof() {
			c := p.peek()
			if c == ' ' || c == '\t' || c == '\r' {
				p.pos++
				continue
			}
			if c == '\\' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n' {
				p.pos += 2
				continue
			}
			break
		}
		if p.eof() {
			break
		}
		c := p.peek()
		if c == '\n' || c == ';' {
			p.pos++
			break
		}
		var w string
		var werr error
		switch c {
		case '{':
			w, werr = p.parseBraced()
		case '"':
			w, werr = p.parseQuoted(in)
		default:
			w, werr = p.parseBare(in)
		}
		if werr != nil {
			return nil, false, werr
		}
		words = append(words, w)
	}
	return words, true, nil
}

// parseBraced consumes a {...} word. Contents are passed through
// verbatim, except that backslash-newline (plus following blanks) becomes
// a single space, matching Tcl semantics.
func (p *parser) parseBraced() (string, error) {
	p.pos++ // consume '{'
	depth := 1
	var b strings.Builder
	for !p.eof() {
		c := p.peek()
		switch c {
		case '\\':
			if p.pos+1 < len(p.src) {
				if p.src[p.pos+1] == '\n' {
					// Backslash-newline: substitute a space even inside
					// braces (the one substitution braces don't suppress).
					b.WriteByte(' ')
					p.pos += 2
					for !p.eof() && (p.peek() == ' ' || p.peek() == '\t') {
						p.pos++
					}
					continue
				}
				b.WriteByte(c)
				b.WriteByte(p.src[p.pos+1])
				p.pos += 2
				continue
			}
			b.WriteByte(c)
			p.pos++
		case '{':
			depth++
			b.WriteByte(c)
			p.pos++
		case '}':
			depth--
			p.pos++
			if depth == 0 {
				if !p.eof() {
					n := p.peek()
					if n != ' ' && n != '\t' && n != '\n' && n != '\r' && n != ';' && n != ']' {
						return "", errf("extra characters after close-brace")
					}
				}
				return b.String(), nil
			}
			b.WriteByte('}')
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return "", errf("missing close-brace")
}

// parseQuoted consumes a "..." word, performing $, [] and backslash
// substitution on the contents.
func (p *parser) parseQuoted(in *Interp) (string, error) {
	p.pos++ // consume '"'
	var b strings.Builder
	for !p.eof() {
		c := p.peek()
		switch c {
		case '"':
			p.pos++
			if !p.eof() {
				n := p.peek()
				if n != ' ' && n != '\t' && n != '\n' && n != '\r' && n != ';' && n != ']' {
					return "", errf("extra characters after close-quote")
				}
			}
			return b.String(), nil
		case '$':
			s, err := p.parseVarSubst(in)
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		case '[':
			s, err := p.parseCommandSubst(in)
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		case '\\':
			s, err := p.parseBackslash()
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return "", errf("missing \"")
}

// parseBare consumes an unquoted word, performing substitutions.
func (p *parser) parseBare(in *Interp) (string, error) {
	var b strings.Builder
	for !p.eof() {
		c := p.peek()
		switch c {
		case ' ', '\t', '\n', '\r', ';':
			return b.String(), nil
		case '$':
			s, err := p.parseVarSubst(in)
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		case '[':
			s, err := p.parseCommandSubst(in)
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		case '\\':
			if p.pos+1 < len(p.src) && p.src[p.pos+1] == '\n' {
				return b.String(), nil
			}
			s, err := p.parseBackslash()
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		case ']':
			// ']' terminates a word only inside command substitution;
			// the command-substitution scanner never hands us one, so a
			// bare ']' here is ordinary text.
			b.WriteByte(c)
			p.pos++
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return b.String(), nil
}

// parseVarSubst handles $name, ${name} and $name(index) starting at '$'.
// A lone '$' not followed by a variable name is literal.
func (p *parser) parseVarSubst(in *Interp) (string, error) {
	start := p.pos
	p.pos++ // consume '$'
	if p.eof() {
		return "$", nil
	}
	if p.peek() == '{' {
		p.pos++
		end := strings.IndexByte(p.src[p.pos:], '}')
		if end < 0 {
			return "", errf("missing close-brace for variable name")
		}
		name := p.src[p.pos : p.pos+end]
		p.pos += end + 1
		return in.varRead(name, "")
	}
	nameStart := p.pos
	for !p.eof() && isVarNameChar(p.peek()) {
		p.pos++
	}
	name := p.src[nameStart:p.pos]
	if name == "" {
		p.pos = start + 1
		return "$", nil
	}
	if !p.eof() && p.peek() == '(' {
		// Array reference: the index itself undergoes substitution.
		p.pos++
		var idx strings.Builder
		depth := 1
		for {
			if p.eof() {
				return "", errf("missing )")
			}
			c := p.peek()
			switch c {
			case ')':
				depth--
				p.pos++
				if depth == 0 {
					return in.varRead(name, idx.String())
				}
				idx.WriteByte(')')
			case '(':
				depth++
				idx.WriteByte('(')
				p.pos++
			case '$':
				s, err := p.parseVarSubst(in)
				if err != nil {
					return "", err
				}
				idx.WriteString(s)
			case '[':
				s, err := p.parseCommandSubst(in)
				if err != nil {
					return "", err
				}
				idx.WriteString(s)
			case '\\':
				s, err := p.parseBackslash()
				if err != nil {
					return "", err
				}
				idx.WriteString(s)
			default:
				idx.WriteByte(c)
				p.pos++
			}
		}
	}
	return in.varRead(name, "")
}

func isVarNameChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// parseCommandSubst handles [script] starting at '['. The bracketed text
// is located by bracket matching (skipping braces, quotes and
// backslashes) and evaluated recursively.
func (p *parser) parseCommandSubst(in *Interp) (string, error) {
	open := p.pos
	p.pos++ // consume '['
	depth := 1
	i := p.pos
	for i < len(p.src) {
		switch p.src[i] {
		case '\\':
			i += 2
			continue
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				script := p.src[p.pos:i]
				p.pos = i + 1
				return in.Eval(script)
			}
		case '{':
			j, err := skipBraces(p.src, i)
			if err != nil {
				return "", err
			}
			i = j
			continue
		}
		i++
	}
	p.pos = open
	return "", errf("missing close-bracket")
}

// skipBraces returns the index just past the brace group opening at
// src[i] == '{'.
func skipBraces(src string, i int) (int, error) {
	depth := 0
	for i < len(src) {
		switch src[i] {
		case '\\':
			i += 2
			continue
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return i + 1, nil
			}
		}
		i++
	}
	return 0, errf("missing close-brace")
}

// parseBackslash consumes one backslash sequence and returns its
// replacement text (Figure 5 of the paper plus the standard table).
func (p *parser) parseBackslash() (string, error) {
	p.pos++ // consume '\'
	if p.eof() {
		return "\\", nil
	}
	c := p.peek()
	p.pos++
	switch c {
	case 'a':
		return "\a", nil
	case 'b':
		return "\b", nil
	case 'f':
		return "\f", nil
	case 'n':
		return "\n", nil
	case 'r':
		return "\r", nil
	case 't':
		return "\t", nil
	case 'v':
		return "\v", nil
	case '\n':
		// Backslash-newline plus following blanks collapses to a space.
		for !p.eof() && (p.peek() == ' ' || p.peek() == '\t') {
			p.pos++
		}
		return " ", nil
	case 'x':
		// \xHH hexadecimal.
		val := 0
		n := 0
		for !p.eof() && n < 2 && isHex(p.peek()) {
			val = val*16 + hexVal(p.peek())
			p.pos++
			n++
		}
		if n == 0 {
			return "x", nil
		}
		return string(rune(val)), nil
	case '0', '1', '2', '3', '4', '5', '6', '7':
		val := int(c - '0')
		n := 1
		for !p.eof() && n < 3 && p.peek() >= '0' && p.peek() <= '7' {
			val = val*8 + int(p.peek()-'0')
			p.pos++
			n++
		}
		return string(rune(val)), nil
	default:
		return string(c), nil
	}
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

// SubstituteAll performs $, [] and backslash substitution on s without
// splitting it into words, like Tcl_ExprString's argument handling. Tk's
// bind machinery uses it for %-substituted commands that arrive as whole
// scripts.
func (in *Interp) SubstituteAll(s string) (string, error) {
	p := &parser{src: s}
	var b strings.Builder
	for !p.eof() {
		c := p.peek()
		switch c {
		case '$':
			r, err := p.parseVarSubst(in)
			if err != nil {
				return "", err
			}
			b.WriteString(r)
		case '[':
			r, err := p.parseCommandSubst(in)
			if err != nil {
				return "", err
			}
			b.WriteString(r)
		case '\\':
			r, err := p.parseBackslash()
			if err != nil {
				return "", err
			}
			b.WriteString(r)
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return b.String(), nil
}
