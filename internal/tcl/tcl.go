// Package tcl implements an interpreter for the Tcl command language as
// described in Ousterhout's "Tcl: An Embeddable Command Language" (USENIX
// Winter 1990) and used as the substrate of the Tk toolkit paper (USENIX
// Winter 1991).
//
// The interpreter follows the string-only data model of the original
// system: every value — command arguments, results, variables — is a Go
// string. Scripts are parsed at evaluation time (there is no byte-code
// compiler), matching the era's implementation and the paper's Table II
// measurement of a simple command.
//
// The package is self-contained: it has no knowledge of windows or X.
// Applications embed it exactly as Figure 6 of the Tk paper shows: create
// an Interp, register application-specific commands with Register, and
// pass command strings to Eval.
package tcl

import (
	"fmt"
	"strings"
)

// Status is the completion code of a script or command evaluation,
// mirroring the classic TCL_OK/TCL_ERROR/TCL_RETURN/TCL_BREAK/TCL_CONTINUE
// codes.
type Status int

// Completion codes.
const (
	OK Status = iota
	ErrorStatus
	ReturnStatus
	BreakStatus
	ContinueStatus
)

func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case ErrorStatus:
		return "error"
	case ReturnStatus:
		return "return"
	case BreakStatus:
		return "break"
	case ContinueStatus:
		return "continue"
	}
	return fmt.Sprintf("status-%d", int(s))
}

// Error is the error type produced by the interpreter. Code distinguishes
// genuine errors from the control-flow signals (break, continue, return)
// that propagate through Eval as errors until a looping command or
// procedure invocation consumes them.
type Error struct {
	Code Status // ErrorStatus, ReturnStatus, BreakStatus or ContinueStatus
	Msg  string // the interpreter result associated with the error
	Info string // accumulated stack trace (errorInfo)
}

func (e *Error) Error() string { return e.Msg }

// errf builds an ErrorStatus *Error.
func errf(format string, args ...any) *Error {
	return &Error{Code: ErrorStatus, Msg: fmt.Sprintf(format, args...)}
}

// Control-flow sentinels. They carry no message; loops intercept them.
var (
	errBreak    = &Error{Code: BreakStatus, Msg: `invoked "break" outside of a loop`}
	errContinue = &Error{Code: ContinueStatus, Msg: `invoked "continue" outside of a loop`}
)

// returnError signals "return" from within a procedure body.
type returnError struct {
	value string
	code  Status // code requested via "return -code"; usually OK
}

func (r *returnError) Error() string { return r.value }

// CmdFunc is the signature of a command procedure (Figure 6 of the Tk
// paper). args[0] is the command name as invoked. The returned string is
// the command result; a non-nil error aborts the script unless it is a
// control-flow signal.
type CmdFunc func(in *Interp, args []string) (string, error)

// command holds a registered command: either a Go procedure or a Tcl proc.
type command struct {
	fn   CmdFunc
	proc *procDef // non-nil when the command is a Tcl procedure
}

// procDef is a Tcl procedure created with "proc".
type procDef struct {
	name    string
	formals []procArg
	body    string
}

type procArg struct {
	name     string
	def      string
	hasDef   bool
	isVarArg bool // the final "args" formal
}

// Var is a Tcl variable: a scalar, an array, or an upvar link.
type Var struct {
	value  string
	array  map[string]string
	isArr  bool
	link   *Var // non-nil when this frame slot is an upvar alias
	traces []VarTrace
}

// VarTrace is a variable trace callback, invoked after writes and before
// reads or unsets depending on the ops it was registered for.
type VarTrace struct {
	Ops string // subset of "rwu"
	Fn  func(in *Interp, name, index, op string)
}

// frame is one procedure call frame (level 0 is global).
type frame struct {
	vars  map[string]*Var
	level int
}

// Interp is a Tcl interpreter: a command table plus a stack of variable
// frames. It is not safe for concurrent use by multiple goroutines; Tk
// serializes all access through its event loop, as the original did.
type Interp struct {
	cmds   map[string]*command
	frames []*frame // frames[0] is the global frame

	// Out receives output from puts/print. Defaults to os.Stdout via the
	// io commands; tests redirect it.
	Out interface{ Write(p []byte) (int, error) }

	// ExitHandler, when set, intercepts the exit command (Tk sets it so
	// that exit tears down windows first). When nil, exit calls os.Exit.
	ExitHandler func(code int)

	// Trace, when set, observes every command invocation with its fully
	// substituted words, before execution (tclsh -trace uses it to log
	// command history).
	Trace func(words []string)

	// maxNesting bounds recursive evaluation depth.
	maxNesting int
	nesting    int

	// deleted is set by Delete; evaluation fails afterwards.
	deleted bool
}

// New creates an interpreter with all built-in commands registered.
func New() *Interp {
	in := &Interp{
		cmds:       make(map[string]*command, 96),
		maxNesting: 1000,
	}
	in.frames = []*frame{{vars: make(map[string]*Var), level: 0}}
	registerCore(in)
	registerList(in)
	registerString(in)
	registerExprCmd(in)
	registerInfo(in)
	registerIO(in)
	registerArray(in)
	registerRegexp(in)
	in.initEnv()
	return in
}

// Delete marks the interpreter dead; subsequent Eval calls fail. It exists
// so applications embedding the interpreter can tear it down while Tcl
// commands may still hold references (as Tk does when a main window is
// destroyed).
func (in *Interp) Delete() { in.deleted = true }

// Deleted reports whether Delete has been called.
func (in *Interp) Deleted() bool { return in.deleted }

// Register installs an application-specific command, replacing any
// existing command with the same name. Per the paper, application commands
// are indistinguishable from built-ins once registered.
func (in *Interp) Register(name string, fn CmdFunc) {
	in.cmds[name] = &command{fn: fn}
}

// Unregister removes a command. It reports whether the command existed.
func (in *Interp) Unregister(name string) bool {
	if _, ok := in.cmds[name]; !ok {
		return false
	}
	delete(in.cmds, name)
	return true
}

// HasCommand reports whether name is currently a registered command.
func (in *Interp) HasCommand(name string) bool {
	_, ok := in.cmds[name]
	return ok
}

// CommandNames returns the names of all registered commands, unordered.
func (in *Interp) CommandNames() []string {
	names := make([]string, 0, len(in.cmds))
	for n := range in.cmds {
		names = append(names, n)
	}
	return names
}

// current returns the active variable frame.
func (in *Interp) current() *frame { return in.frames[len(in.frames)-1] }

// global returns the global frame.
func (in *Interp) global() *frame { return in.frames[0] }

// Eval parses and executes script, returning the result of the last
// command executed. Control-flow signals (break/continue/return at top
// level) surface as *Error values with the corresponding Code.
func (in *Interp) Eval(script string) (string, error) {
	if in.deleted {
		return "", errf("attempt to use deleted interpreter")
	}
	in.nesting++
	defer func() { in.nesting-- }()
	if in.nesting > in.maxNesting {
		return "", errf("too many nested calls to Tcl interpreter (infinite loop?)")
	}

	p := &parser{src: script}
	result := ""
	for {
		words, ok, err := p.nextCommand(in)
		if err != nil {
			return "", err
		}
		if !ok {
			break
		}
		if len(words) == 0 {
			continue
		}
		result, err = in.invoke(words)
		if err != nil {
			return "", err
		}
	}
	return result, nil
}

// EvalWords invokes a command from pre-parsed words, bypassing the parser.
// Tk uses it to splice event fields into bound commands efficiently.
func (in *Interp) EvalWords(words []string) (string, error) {
	if len(words) == 0 {
		return "", nil
	}
	if in.deleted {
		return "", errf("attempt to use deleted interpreter")
	}
	in.nesting++
	defer func() { in.nesting-- }()
	if in.nesting > in.maxNesting {
		return "", errf("too many nested calls to Tcl interpreter (infinite loop?)")
	}
	return in.invoke(words)
}

// invoke dispatches one fully substituted command.
func (in *Interp) invoke(words []string) (string, error) {
	if in.Trace != nil {
		in.Trace(words)
	}
	cmd, ok := in.cmds[words[0]]
	if !ok {
		return "", errf("invalid command name %q", words[0])
	}
	res, err := cmd.fn(in, words)
	if err != nil {
		if te, ok := err.(*Error); ok && te.Code == ErrorStatus && te.Info == "" {
			te.Info = fmt.Sprintf("%s\n    while executing\n%q", te.Msg, strings.Join(words, " "))
		}
		return "", err
	}
	return res, nil
}

// Call invokes command name with the given arguments (not re-parsed).
func (in *Interp) Call(name string, args ...string) (string, error) {
	words := append([]string{name}, args...)
	return in.EvalWords(words)
}
