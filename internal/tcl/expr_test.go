package tcl

import (
	"fmt"
	"strconv"
	"testing"
	"testing/quick"
)

func exprOK(t *testing.T, in *Interp, expr, want string) {
	t.Helper()
	got, err := in.EvalExpr(expr)
	if err != nil {
		t.Fatalf("EvalExpr(%q) error: %v", expr, err)
	}
	if got != want {
		t.Fatalf("EvalExpr(%q) = %q, want %q", expr, got, want)
	}
}

func exprErr(t *testing.T, in *Interp, expr string) {
	t.Helper()
	if got, err := in.EvalExpr(expr); err == nil {
		t.Fatalf("EvalExpr(%q) = %q, expected error", expr, got)
	}
}

func TestExprArithmetic(t *testing.T) {
	in := New()
	exprOK(t, in, "1+2", "3")
	exprOK(t, in, "10-4", "6")
	exprOK(t, in, "6*7", "42")
	exprOK(t, in, "7/2", "3")
	exprOK(t, in, "7%3", "1")
	exprOK(t, in, "-5", "-5")
	exprOK(t, in, "- -5", "5")
	exprOK(t, in, "2+3*4", "14")
	exprOK(t, in, "(2+3)*4", "20")
	exprOK(t, in, "7.0/2", "3.5")
	exprOK(t, in, "1e2", "100.0")
	exprOK(t, in, "0x10", "16")
	exprErr(t, in, "1/0")
	exprErr(t, in, "5%0")
}

func TestExprComparisonsAndLogic(t *testing.T) {
	in := New()
	exprOK(t, in, "1 < 2", "1")
	exprOK(t, in, "2 <= 2", "1")
	exprOK(t, in, "3 > 4", "0")
	exprOK(t, in, "3 >= 3", "1")
	exprOK(t, in, "1 == 1.0", "1")
	exprOK(t, in, "1 != 2", "1")
	exprOK(t, in, "1 && 1", "1")
	exprOK(t, in, "1 && 0", "0")
	exprOK(t, in, "0 || 1", "1")
	exprOK(t, in, "!1", "0")
	exprOK(t, in, "!0", "1")
	// String comparison when either operand is non-numeric.
	exprOK(t, in, `"abc" < "abd"`, "1")
	exprOK(t, in, `"abc" == "abc"`, "1")
	exprOK(t, in, `"10" == "10.0"`, "1") // both numeric: numeric compare
}

func TestExprBitwise(t *testing.T) {
	in := New()
	exprOK(t, in, "1 << 4", "16")
	exprOK(t, in, "16 >> 2", "4")
	exprOK(t, in, "6 & 3", "2")
	exprOK(t, in, "6 | 3", "7")
	exprOK(t, in, "6 ^ 3", "5")
	exprOK(t, in, "~0", "-1")
	exprErr(t, in, "1.5 & 2")
}

func TestExprTernary(t *testing.T) {
	in := New()
	exprOK(t, in, "1 ? 10 : 20", "10")
	exprOK(t, in, "0 ? 10 : 20", "20")
	exprOK(t, in, "2 > 1 ? 5+5 : 0", "10")
	exprOK(t, in, "0 ? 1 : 0 ? 2 : 3", "3") // right associative
}

func TestExprVariablesAndCommands(t *testing.T) {
	in := New()
	evalOK(t, in, "set i 1")
	// The exact expression from the paper's discussion of if.
	got, err := in.EvalBool("$i<2")
	if err != nil || !got {
		t.Fatalf("$i<2 = %v, %v", got, err)
	}
	evalOK(t, in, "set x 10")
	exprOK(t, in, "$x * 2", "20")
	exprOK(t, in, "[llength {a b c}] + 1", "4")
	evalOK(t, in, `set s "hello"`)
	exprOK(t, in, `$s == "hello"`, "1")
}

func TestExprMathFunctions(t *testing.T) {
	in := New()
	exprOK(t, in, "sqrt(16)", "4.0")
	exprOK(t, in, "abs(-3)", "3")
	exprOK(t, in, "abs(-3.5)", "3.5")
	exprOK(t, in, "int(3.9)", "3")
	exprOK(t, in, "round(3.5)", "4")
	exprOK(t, in, "floor(3.9)", "3.0")
	exprOK(t, in, "ceil(3.1)", "4.0")
	exprOK(t, in, "pow(2, 10)", "1024.0")
	exprOK(t, in, "hypot(3, 4)", "5.0")
	exprOK(t, in, "double(2)", "2.0")
	exprOK(t, in, "fmod(7, 3)", "1.0")
}

func TestExprMathFuncErrors(t *testing.T) {
	in := New()
	exprErr(t, in, "nosuchfunc(1)")
	exprErr(t, in, "sqrt(-1)")
	exprErr(t, in, "sqrt()")
	exprErr(t, in, "sqrt(1, 2)")
	exprErr(t, in, "fmod(1, 0)")
}

func TestExprSyntaxErrors(t *testing.T) {
	in := New()
	exprErr(t, in, "")
	exprErr(t, in, "1 +")
	exprErr(t, in, "(1")
	exprErr(t, in, "1 ? 2")
	exprErr(t, in, "abc + 1")
}

func TestExprBooleanStrings(t *testing.T) {
	in := New()
	for _, s := range []string{"true", "yes", "on"} {
		got, err := in.EvalBool(fmt.Sprintf("%q", s))
		if err != nil || !got {
			t.Fatalf("EvalBool(%q) = %v, %v", s, got, err)
		}
	}
	for _, s := range []string{"false", "no", "off"} {
		got, err := in.EvalBool(fmt.Sprintf("%q", s))
		if err != nil || got {
			t.Fatalf("EvalBool(%q) = %v, %v", s, got, err)
		}
	}
}

// TestExprIntRoundTrip property: evaluating the decimal representation of
// any int64 pair under + yields the Go sum (when no overflow).
func TestExprIntRoundTrip(t *testing.T) {
	in := New()
	f := func(a, b int32) bool {
		want := int64(a) + int64(b)
		got, err := in.EvalExpr(fmt.Sprintf("%d + %d", a, b))
		return err == nil && got == strconv.FormatInt(want, 10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestExprComparisonTotalOrder property: for any pair of int32, exactly
// one of <, ==, > holds.
func TestExprComparisonTotalOrder(t *testing.T) {
	in := New()
	f := func(a, b int32) bool {
		lt, err1 := in.EvalExpr(fmt.Sprintf("%d < %d", a, b))
		eq, err2 := in.EvalExpr(fmt.Sprintf("%d == %d", a, b))
		gt, err3 := in.EvalExpr(fmt.Sprintf("%d > %d", a, b))
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		ones := 0
		for _, v := range []string{lt, eq, gt} {
			if v == "1" {
				ones++
			}
		}
		return ones == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestExprLazyEvaluation: the untaken ternary branch and the
// short-circuited side of &&/|| must not execute their side effects.
func TestExprLazyEvaluation(t *testing.T) {
	in := New()
	in.SetVar("a", "0")
	in.SetVar("b", "0")
	exprOK(t, in, `1 ? [incr a] : [incr b]`, "1")
	if v, _ := in.GetVar("a"); v != "1" {
		t.Fatalf("taken branch: a = %q", v)
	}
	if v, _ := in.GetVar("b"); v != "0" {
		t.Fatalf("untaken branch ran: b = %q", v)
	}
	exprOK(t, in, `0 ? [incr a] : [incr b]`, "1")
	if v, _ := in.GetVar("a"); v != "1" {
		t.Fatalf("untaken branch ran: a = %q", v)
	}
	if v, _ := in.GetVar("b"); v != "1" {
		t.Fatalf("taken branch: b = %q", v)
	}
	// Short-circuit &&.
	in.SetVar("c", "0")
	exprOK(t, in, `0 && [incr c]`, "0")
	if v, _ := in.GetVar("c"); v != "0" {
		t.Fatalf("&& rhs ran: c = %q", v)
	}
	exprOK(t, in, `1 || [incr c]`, "1")
	if v, _ := in.GetVar("c"); v != "0" {
		t.Fatalf("|| rhs ran: c = %q", v)
	}
	exprOK(t, in, `1 && [incr c]`, "1")
	if v, _ := in.GetVar("c"); v != "1" {
		t.Fatalf("needed && rhs did not run: c = %q", v)
	}
	// The untaken branch may reference undefined variables and divide by
	// zero without erroring, but its syntax is still checked.
	exprOK(t, in, `1 ? 5 : $nosuchvar`, "5")
	exprOK(t, in, `1 ? 5 : 1/0`, "5")
	exprOK(t, in, `1 ? 5 : sqrt(-1)`, "5")
	exprErr(t, in, `1 ? 5 : nosuchfunc(1)`)
	exprErr(t, in, `1 ? 5 : (`)
	// Nested ternaries with skipping.
	exprOK(t, in, `0 ? (1 ? 10 : 20) : (0 ? 30 : 40)`, "40")
	// Quoted operand in a skipped branch.
	exprOK(t, in, `1 ? 7 : "no [nosuchcmd] here"`, "7")
}
