package tcl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSourceCommand(t *testing.T) {
	in := New()
	dir := t.TempDir()
	file := filepath.Join(dir, "lib.tcl")
	if err := os.WriteFile(file, []byte("proc fromfile {} {return sourced}\nset loaded 1"), 0o644); err != nil {
		t.Fatal(err)
	}
	// source returns the script's last result.
	expect(t, in, "source "+file, "1")
	expect(t, in, "fromfile", "sourced")
	evalErr(t, in, "source /nonexistent/file.tcl", "couldn't read")
}

func TestFileCommand(t *testing.T) {
	in := New()
	dir := t.TempDir()
	file := filepath.Join(dir, "data.txt")
	if err := os.WriteFile(file, []byte("12345"), 0o644); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "file exists "+file, "1")
	expect(t, in, "file exists "+file+".nope", "0")
	expect(t, in, "file isfile "+file, "1")
	expect(t, in, "file isdirectory "+file, "0")
	expect(t, in, "file isdirectory "+dir, "1")
	expect(t, in, "file size "+file, "5")
	expect(t, in, "file tail "+file, "data.txt")
	expect(t, in, "file dirname "+file, dir)
	expect(t, in, "file extension "+file, ".txt")
	expect(t, in, "file rootname data.txt", "data")
	expect(t, in, "file type "+file, "file")
	expect(t, in, "file type "+dir, "directory")
	// The paper's Figure 9 argument order: file $name option.
	expect(t, in, "file "+file+" isfile", "1")
	expect(t, in, "file "+dir+" isdirectory", "1")
	// file mkdir / delete.
	sub := filepath.Join(dir, "a", "b")
	evalOK(t, in, "file mkdir "+sub)
	expect(t, in, "file isdirectory "+sub, "1")
	evalOK(t, in, "file delete "+sub)
	expect(t, in, "file exists "+sub, "0")
	// file join / split.
	expect(t, in, "file join a b c", "a/b/c")
	expect(t, in, "file split /x/y", "/ x y")
}

func TestGlobCommand(t *testing.T) {
	in := New()
	dir := t.TempDir()
	for _, f := range []string{"a.tcl", "b.tcl", "c.txt"} {
		if err := os.WriteFile(filepath.Join(dir, f), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got := evalOK(t, in, "glob "+dir+"/*.tcl")
	if !strings.Contains(got, "a.tcl") || !strings.Contains(got, "b.tcl") || strings.Contains(got, "c.txt") {
		t.Fatalf("glob = %q", got)
	}
	evalErr(t, in, "glob "+dir+"/*.nope", "no files matched")
	expect(t, in, "glob -nocomplain "+dir+"/*.nope", "")
}

func TestExecCommand(t *testing.T) {
	in := New()
	expect(t, in, "exec echo hello world", "hello world")
	// Output trimming of trailing newline only.
	expect(t, in, `exec printf a\nb\n`, "a\nb")
	// Command failure propagates stderr/exit.
	evalErr(t, in, "exec false", "")
	evalErr(t, in, "exec /no/such/binary", "couldn't execute")
	// Background execution returns a pid.
	got := evalOK(t, in, "exec sleep 0.01 &")
	if got == "" {
		t.Fatal("background exec returned no pid")
	}
	// Figure 9's usage: exec ls -a produces . and ..
	dir := t.TempDir()
	got = evalOK(t, in, "exec ls -a "+dir)
	if !strings.Contains(got, ".") {
		t.Fatalf("ls -a output %q", got)
	}
}

func TestPwdCdPid(t *testing.T) {
	in := New()
	orig, _ := os.Getwd()
	defer os.Chdir(orig)
	dir := t.TempDir()
	evalOK(t, in, "cd "+dir)
	got := evalOK(t, in, "pwd")
	// TempDir may be a symlink (macOS); compare resolved paths.
	want, _ := filepath.EvalSymlinks(dir)
	gotR, _ := filepath.EvalSymlinks(got)
	if gotR != want {
		t.Fatalf("pwd = %q, want %q", gotR, want)
	}
	if pid := evalOK(t, in, "pid"); pid != evalOK(t, in, "pid") {
		t.Fatal("pid should be stable")
	}
	evalErr(t, in, "cd /no/such/dir", "couldn't change")
}

func TestExitHandler(t *testing.T) {
	in := New()
	code := -1
	in.ExitHandler = func(c int) { code = c }
	evalOK(t, in, "exit 3")
	if code != 3 {
		t.Fatalf("exit handler got %d", code)
	}
	evalOK(t, in, "exit")
	if code != 0 {
		t.Fatalf("default exit code = %d", code)
	}
	evalErr(t, in, "exit notanumber", "expected integer")
}

func TestPutsVariants(t *testing.T) {
	in := New()
	var out strings.Builder
	in.Out = &out
	evalOK(t, in, `puts hello`)
	evalOK(t, in, `puts -nonewline world`)
	evalOK(t, in, `puts stdout channeled`)
	if out.String() != "hello\nworldchanneled\n" {
		t.Fatalf("puts output = %q", out.String())
	}
}

func TestExecPipelinesAndRedirection(t *testing.T) {
	in := New()
	dir := t.TempDir()
	// Pipeline.
	expect(t, in, `exec printf "b\na\nc\n" | sort`, "a\nb\nc")
	// Three stages.
	expect(t, in, `exec printf "x\ny\nx\n" | sort | uniq`, "x\ny")
	// Output redirection.
	out := dir + "/out.txt"
	evalOK(t, in, "exec echo written > "+out)
	expect(t, in, "exec cat "+out, "written")
	// Append redirection.
	evalOK(t, in, "exec echo more >> "+out)
	expect(t, in, "exec cat "+out, "written\nmore")
	// Input redirection.
	expect(t, in, "exec cat < "+out, "written\nmore")
	// Input redirection into a pipeline (single quotes are not special
	// in Tcl, so trim the wc padding with string trim instead).
	expect(t, in, "string trim [exec cat < "+out+" | wc -l]", "2")
	// Errors.
	evalErr(t, in, "exec cat < /no/such/input", "couldn't read")
	evalErr(t, in, "exec |", "illegal use")
	evalErr(t, in, "exec echo x >", "last word")
}
