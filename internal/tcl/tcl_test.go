package tcl

import (
	"bytes"
	"strings"
	"testing"
)

// evalOK evaluates script and fails the test on error.
func evalOK(t *testing.T, in *Interp, script string) string {
	t.Helper()
	res, err := in.Eval(script)
	if err != nil {
		t.Fatalf("Eval(%q) error: %v", script, err)
	}
	return res
}

// evalErr evaluates script and requires an error containing substr.
func evalErr(t *testing.T, in *Interp, script, substr string) {
	t.Helper()
	_, err := in.Eval(script)
	if err == nil {
		t.Fatalf("Eval(%q): expected error containing %q, got success", script, substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("Eval(%q): error %q does not contain %q", script, err, substr)
	}
}

func expect(t *testing.T, in *Interp, script, want string) {
	t.Helper()
	if got := evalOK(t, in, script); got != want {
		t.Fatalf("Eval(%q) = %q, want %q", script, got, want)
	}
}

// TestFigure1 reproduces Figure 1 of the paper: simple commands with
// fields separated by white space; commands separated by semicolons or
// newlines.
func TestFigure1(t *testing.T) {
	in := New()
	var out bytes.Buffer
	in.Out = &out
	expect(t, in, "set a 1000", "1000")
	evalOK(t, in, "print foo; print bar")
	if out.String() != "foobar" {
		t.Fatalf("print output = %q, want %q", out.String(), "foobar")
	}
	expect(t, in, "set a", "1000")
}

// TestFigure2 reproduces Figure 2: quotes and braces delimit complex
// arguments; braces suppress substitution.
func TestFigure2(t *testing.T) {
	in := New()
	expect(t, in, `set msg "Hello, world"`, "Hello, world")
	expect(t, in, `set x {a b {x1 x2}}`, "a b {x1 x2}")
	// Braces pass contents through without interpretation.
	expect(t, in, `set y {$undefined [nosuchcmd]}`, "$undefined [nosuchcmd]")
	// Semicolons inside braces are not command separators.
	expect(t, in, "set z {a;b\nc}", "a;b\nc")
}

// TestFigure3 reproduces Figure 3: dollar-sign variable substitution.
func TestFigure3(t *testing.T) {
	in := New()
	var out bytes.Buffer
	in.Out = &out
	evalOK(t, in, `set msg "Hello, world"`)
	evalOK(t, in, `print $msg`)
	if out.String() != "Hello, world" {
		t.Fatalf("print $msg wrote %q", out.String())
	}
	evalOK(t, in, "set i 1")
	evalOK(t, in, "if $i<2 {set j 43}")
	expect(t, in, "set j", "43")
}

// TestFigure4 reproduces Figure 4: bracketed command substitution.
func TestFigure4(t *testing.T) {
	in := New()
	evalOK(t, in, `set x {a b {x1 x2}}`)
	expect(t, in, `list q r $x`, "q r {a b {x1 x2}}")
	expect(t, in, `set msg [format "x is %s" $x]`, "x is a b {x1 x2}")
}

// TestFigure5 reproduces Figure 5: backslash quoting of special
// characters and control characters.
func TestFigure5(t *testing.T) {
	in := New()
	var out bytes.Buffer
	in.Out = &out
	expect(t, in, `set msg "\{ and \[ are special"`, "{ and [ are special")
	evalOK(t, in, `print Hello!\n`)
	if out.String() != "Hello!\n" {
		t.Fatalf("print wrote %q, want %q", out.String(), "Hello!\n")
	}
}

// TestFigure6Embedding reproduces Figure 6: an application registers its
// own command procedures; they are indistinguishable from built-ins and
// can be created and deleted at any time.
func TestFigure6Embedding(t *testing.T) {
	in := New()
	calls := 0
	in.Register("myapp", func(in *Interp, args []string) (string, error) {
		calls++
		return FormatList(args[1:]), nil
	})
	expect(t, in, "myapp alpha beta", "alpha beta")
	if calls != 1 {
		t.Fatalf("command procedure called %d times, want 1", calls)
	}
	// Application commands compose with built-ins.
	expect(t, in, "set v [myapp x]", "x")
	// Commands may be deleted at any time while the application runs.
	if !in.Unregister("myapp") {
		t.Fatal("Unregister failed")
	}
	evalErr(t, in, "myapp again", "invalid command name")
}

func TestSetAndVariables(t *testing.T) {
	in := New()
	expect(t, in, "set a 5", "5")
	expect(t, in, "set a", "5")
	expect(t, in, "set b $a$a", "55")
	expect(t, in, "set name a; set $name 9; set a", "9")
	evalErr(t, in, "set nosuch", "no such variable")
	evalOK(t, in, "unset a")
	evalErr(t, in, "set a", "no such variable")
	evalErr(t, in, "unset a", "no such variable")
}

func TestBracedVariableName(t *testing.T) {
	in := New()
	evalOK(t, in, "set foo bar")
	expect(t, in, `set x ${foo}baz`, "barbaz")
}

func TestArrayVariables(t *testing.T) {
	in := New()
	expect(t, in, "set a(one) 1", "1")
	expect(t, in, "set a(two) 2", "2")
	expect(t, in, "set a(one)", "1")
	expect(t, in, "set i one; set a($i)", "1")
	expect(t, in, "array size a", "2")
	expect(t, in, "array names a", "one two")
	expect(t, in, "array exists a", "1")
	expect(t, in, "array exists nope", "0")
	expect(t, in, "array get a", "one 1 two 2")
	evalOK(t, in, "array set b {x 10 y 20}")
	expect(t, in, "set b(y)", "20")
	evalErr(t, in, "set a", "variable is array")
	evalErr(t, in, "set a(three)", "no such element in array")
	evalOK(t, in, "unset a(one)")
	expect(t, in, "array size a", "1")
}

func TestIncrAppend(t *testing.T) {
	in := New()
	evalOK(t, in, "set i 10")
	expect(t, in, "incr i", "11")
	expect(t, in, "incr i 5", "16")
	expect(t, in, "incr i -20", "-4")
	evalErr(t, in, "incr nosuch", "no such variable")
	evalOK(t, in, "set s abc")
	expect(t, in, "append s def ghi", "abcdefghi")
	expect(t, in, "append fresh xyz", "xyz")
}

func TestIfCommand(t *testing.T) {
	in := New()
	expect(t, in, "if 1 {set x yes} else {set x no}", "yes")
	expect(t, in, "if 0 {set x yes} else {set x no}", "no")
	expect(t, in, "if 0 {set x a} elseif 1 {set x b} else {set x c}", "b")
	expect(t, in, "if {2 > 1} then {set x then}", "then")
	expect(t, in, "if 0 {set x a}", "")
	// Old-style implicit else.
	expect(t, in, "if 0 {set x a} {set x implicit}", "implicit")
}

func TestWhileForLoops(t *testing.T) {
	in := New()
	expect(t, in, `
		set total 0
		set i 0
		while {$i < 10} {incr total $i; incr i}
		set total
	`, "45")
	expect(t, in, `
		set total 0
		for {set i 0} {$i < 5} {incr i} {incr total $i}
		set total
	`, "10")
	// break and continue.
	expect(t, in, `
		set n 0
		for {set i 0} {$i < 100} {incr i} {
			if {$i == 5} break
			incr n
		}
		set n
	`, "5")
	expect(t, in, `
		set n 0
		for {set i 0} {$i < 10} {incr i} {
			if {$i % 2} continue
			incr n
		}
		set n
	`, "5")
}

func TestForeach(t *testing.T) {
	in := New()
	expect(t, in, `
		set out {}
		foreach x {a b c} {lappend out <$x>}
		set out
	`, "<a> <b> <c>")
	// Multiple loop variables.
	expect(t, in, `
		set out {}
		foreach {k v} {a 1 b 2} {lappend out $k=$v}
		set out
	`, "a=1 b=2")
	// break inside foreach.
	expect(t, in, `
		set out {}
		foreach x {1 2 3 4} {
			if {$x == 3} break
			lappend out $x
		}
		set out
	`, "1 2")
}

func TestSwitchAndCase(t *testing.T) {
	in := New()
	expect(t, in, `switch abc {a {set r one} abc {set r two} default {set r three}}`, "two")
	expect(t, in, `switch -glob ab* {a* {set r glob} default {set r no}}`, "glob")
	expect(t, in, `switch -exact xyz {x* {set r glob} default {set r dflt}}`, "dflt")
	expect(t, in, `switch zzz {a {set r 1} default {set r fallback}}`, "fallback")
	// Fall-through bodies.
	expect(t, in, `switch b {a - b {set r shared} default {set r no}}`, "shared")
	// Historic case command.
	expect(t, in, `case green in {red {set r stop} {green blue} {set r go} default {set r unknown}}`, "go")
}

func TestProcBasics(t *testing.T) {
	in := New()
	evalOK(t, in, "proc add {a b} {expr $a + $b}")
	expect(t, in, "add 2 3", "5")
	evalOK(t, in, "proc greet {name {greeting Hello}} {return \"$greeting, $name\"}")
	expect(t, in, "greet World", "Hello, World")
	expect(t, in, "greet World Howdy", "Howdy, World")
	evalErr(t, in, "greet", "no value given for parameter")
	evalErr(t, in, "add 1 2 3", "too many arguments")
	// args varargs.
	evalOK(t, in, "proc count {first args} {llength $args}")
	expect(t, in, "count a b c d", "3")
	expect(t, in, "count a", "0")
}

func TestProcScoping(t *testing.T) {
	in := New()
	evalOK(t, in, "set g 100")
	// Locals don't leak; globals need the global command.
	evalOK(t, in, "proc f {} {set g 1; return $g}")
	expect(t, in, "f", "1")
	expect(t, in, "set g", "100")
	evalOK(t, in, "proc h {} {global g; incr g}")
	expect(t, in, "h", "101")
	expect(t, in, "set g", "101")
}

func TestUpvarUplevel(t *testing.T) {
	in := New()
	evalOK(t, in, `proc incrvar {name} {upvar $name v; incr v}`)
	evalOK(t, in, "set counter 7")
	expect(t, in, "incrvar counter", "8")
	expect(t, in, "set counter", "8")
	// uplevel evaluates in the caller's frame.
	evalOK(t, in, `proc setcaller {} {uplevel {set fromUplevel 42}}`)
	evalOK(t, in, `proc outer {} {setcaller; return $fromUplevel}`)
	expect(t, in, "outer", "42")
	// uplevel #0 reaches the global frame.
	evalOK(t, in, `proc setg {} {uplevel #0 {set gv 5}}`)
	evalOK(t, in, "setg")
	expect(t, in, "set gv", "5")
}

func TestReturnCodes(t *testing.T) {
	in := New()
	evalOK(t, in, "proc early {} {return hi; set never reached}")
	expect(t, in, "early", "hi")
	// return -code error.
	evalOK(t, in, "proc boom {} {return -code error kapow}")
	evalErr(t, in, "boom", "kapow")
	// break at top level is an error.
	_, err := in.Eval("break")
	te, ok := err.(*Error)
	if !ok || te.Code != BreakStatus {
		t.Fatalf("break at top level: got %v", err)
	}
}

func TestCatch(t *testing.T) {
	in := New()
	expect(t, in, "catch {set x 1}", "0")
	expect(t, in, "catch {nosuchcommand} msg", "1")
	expect(t, in, "set msg", `invalid command name "nosuchcommand"`)
	expect(t, in, "catch {error custom} m; set m", "custom")
	// catch captures break/continue codes too.
	expect(t, in, "catch {break}", "3")
	expect(t, in, "catch {continue}", "4")
	evalOK(t, in, "proc r {} {catch {return val} out; set out}")
	expect(t, in, "r", "val")
}

func TestErrorCommand(t *testing.T) {
	in := New()
	_, err := in.Eval("error {something failed}")
	if err == nil || err.Error() != "something failed" {
		t.Fatalf("error command: %v", err)
	}
}

func TestEvalCommand(t *testing.T) {
	in := New()
	expect(t, in, "eval set x 5", "5")
	expect(t, in, "eval {set y 6}", "6")
	evalOK(t, in, "set cmd {set z 7}")
	expect(t, in, "eval $cmd", "7")
	// The paper: "new Tcl programs may be synthesized and executed
	// on-the-fly".
	expect(t, in, `eval [list set w 8]`, "8")
}

func TestNestedSubstitution(t *testing.T) {
	in := New()
	evalOK(t, in, "set a 1")
	evalOK(t, in, "set b 2")
	expect(t, in, `set c [expr [set a]+[set b]]`, "3")
	expect(t, in, `set d "x[set a]y[set b]z"`, "x1y2z")
}

func TestComments(t *testing.T) {
	in := New()
	expect(t, in, "# a comment\nset x 1", "1")
	expect(t, in, "set y 2 ;# trailing words are args, not comments\nset y", "2")
	expect(t, in, "# comment with continuation \\\nset ignored 1\nset z 3", "3")
}

func TestLineContinuation(t *testing.T) {
	in := New()
	expect(t, in, "set x \\\n  5", "5")
	expect(t, in, "set msg {a \\\n   b}", "a  b")
}

func TestStringResultOfEverything(t *testing.T) {
	// "There is only one official data type in Tcl: strings."
	in := New()
	expect(t, in, "expr 2+2", "4")
	expect(t, in, `string length [expr 10*10]`, "3")
	expect(t, in, "llength [list 1 2 3]", "3")
}

func TestRename(t *testing.T) {
	in := New()
	evalOK(t, in, "proc orig {} {return from-orig}")
	evalOK(t, in, "rename orig renamed")
	expect(t, in, "renamed", "from-orig")
	evalErr(t, in, "orig", "invalid command name")
	// rename to "" deletes.
	evalOK(t, in, `rename renamed ""`)
	evalErr(t, in, "renamed", "invalid command name")
	evalErr(t, in, "rename nosuch other", "doesn't exist")
}

func TestInfoIntrospection(t *testing.T) {
	in := New()
	evalOK(t, in, "proc myproc {a {b 5} args} {return $a$b$args}")
	expect(t, in, "info args myproc", "a b args")
	expect(t, in, "info body myproc", "return $a$b$args")
	expect(t, in, "info default myproc b dv; set dv", "5")
	expect(t, in, "info exists nosuch", "0")
	evalOK(t, in, "set present 1")
	expect(t, in, "info exists present", "1")
	if got := evalOK(t, in, "info procs my*"); got != "myproc" {
		t.Fatalf("info procs = %q", got)
	}
	if got := evalOK(t, in, "info commands set"); got != "set" {
		t.Fatalf("info commands set = %q", got)
	}
	expect(t, in, "info level", "0")
	evalOK(t, in, "proc lvl {} {info level}")
	expect(t, in, "lvl", "1")
}

func TestVariableTraces(t *testing.T) {
	in := New()
	var log []string
	in.TraceVar("watched", "rw", func(in *Interp, name, index, op string) {
		log = append(log, op+":"+name)
	})
	evalOK(t, in, "set watched 1")
	evalOK(t, in, "set watched 2")
	evalOK(t, in, "set x $watched")
	want := []string{"w:watched", "w:watched", "r:watched"}
	if strings.Join(log, ",") != strings.Join(want, ",") {
		t.Fatalf("trace log = %v, want %v", log, want)
	}
}

func TestTclLevelTraces(t *testing.T) {
	in := New()
	evalOK(t, in, "set fired {}")
	evalOK(t, in, `trace variable tv w {lappend fired}`)
	evalOK(t, in, "set tv 1")
	got := evalOK(t, in, "set fired")
	if !strings.Contains(got, "tv") || !strings.Contains(got, "w") {
		t.Fatalf("Tcl trace fired = %q", got)
	}
}

func TestDeletedInterp(t *testing.T) {
	in := New()
	in.Delete()
	if _, err := in.Eval("set a 1"); err == nil {
		t.Fatal("Eval on deleted interp should fail")
	}
	if !in.Deleted() {
		t.Fatal("Deleted() should be true")
	}
}

func TestRecursionLimit(t *testing.T) {
	in := New()
	evalOK(t, in, "proc inf {} {inf}")
	evalErr(t, in, "inf", "too many nested calls")
}

func TestSubstCommand(t *testing.T) {
	in := New()
	evalOK(t, in, "set v 42")
	expect(t, in, `subst {v is $v and sum is [expr 1+2]}`, "v is 42 and sum is 3")
}

func TestTimeCommand(t *testing.T) {
	in := New()
	got := evalOK(t, in, "time {set x 1} 10")
	if !strings.HasSuffix(got, "microseconds per iteration") {
		t.Fatalf("time result = %q", got)
	}
}

func TestCallAndEvalWords(t *testing.T) {
	in := New()
	res, err := in.Call("set", "q", "multi word value")
	if err != nil || res != "multi word value" {
		t.Fatalf("Call: %q, %v", res, err)
	}
	// Arguments passed via Call are not re-parsed.
	expect(t, in, "set q", "multi word value")
}

func TestErrorInfoPropagation(t *testing.T) {
	in := New()
	_, err := in.Eval("set")
	te, ok := err.(*Error)
	if !ok {
		t.Fatalf("expected *Error, got %T", err)
	}
	if te.Code != ErrorStatus {
		t.Fatalf("code = %v", te.Code)
	}
	if !strings.Contains(te.Msg, "wrong # args") {
		t.Fatalf("msg = %q", te.Msg)
	}
}

func TestSemicolonsAndNewlines(t *testing.T) {
	in := New()
	expect(t, in, "set a 1; set b 2; expr $a+$b", "3")
	expect(t, in, "set a 4\nset b 5\nexpr $a+$b", "9")
}

func TestDollarEdgeCases(t *testing.T) {
	in := New()
	// A '$' not followed by a variable name is literal.
	expect(t, in, `set x a$`, "a$")
	evalErr(t, in, `set y $nosuchvar`, "no such variable")
}

func TestWrongArgsMessages(t *testing.T) {
	in := New()
	evalErr(t, in, "incr", "wrong # args")
	evalErr(t, in, "proc x", "wrong # args")
	evalErr(t, in, "while 1", "wrong # args")
	evalErr(t, in, "foreach a", "wrong # args")
}

// TestUplevelProcCallDoesNotClobberFrames: calling procedures from inside
// an uplevel script (or a trace fired by SetGlobal) must not corrupt the
// frames set aside during the scope switch.
func TestUplevelProcCallDoesNotClobberFrames(t *testing.T) {
	in := New()
	evalOK(t, in, `proc helper {} {set local inHelper; return done}`)
	evalOK(t, in, `proc middle {} {
		set mine before
		uplevel #0 {helper; helper}
		set mine
	}`)
	evalOK(t, in, `proc outer {} {
		set ours outerValue
		set got [middle]
		if {$got != "before"} {error "middle lost its frame: $got"}
		set ours
	}`)
	expect(t, in, "outer", "outerValue")
}

// TestTraceCallingProcDuringSetGlobal exercises the same hazard through
// variable traces.
func TestTraceCallingProcDuringSetGlobal(t *testing.T) {
	in := New()
	evalOK(t, in, `proc noisy {} {set x local; return ok}`)
	fired := 0
	in.TraceVar("watched", "w", func(in *Interp, _, _, _ string) {
		fired++
		if _, err := in.Eval("noisy"); err != nil {
			t.Errorf("trace proc call: %v", err)
		}
	})
	evalOK(t, in, `proc writer {} {
		set frameLocal precious
		upvar #0 watched w
		set w 1
		set frameLocal
	}`)
	expect(t, in, "writer", "precious")
	if fired == 0 {
		t.Fatal("trace never fired")
	}
}
