package tcl

import (
	"os"
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics property: arbitrary byte strings either evaluate
// or return an error — the parser must not crash or hang.
func TestParserNeverPanics(t *testing.T) {
	in := New()
	// Remove commands with side effects before fuzzing.
	for _, dangerous := range []string{"exec", "exit", "cd", "source", "file", "glob", "time"} {
		in.Unregister(dangerous)
	}
	f := func(script string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %q: %v", script, r)
			}
		}()
		_, _ = in.Eval(script)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestExprNeverPanics property: the expression evaluator rejects garbage
// without crashing.
func TestExprNeverPanics(t *testing.T) {
	in := New()
	f := func(expr string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on expr %q: %v", expr, r)
			}
		}()
		_, _ = in.EvalExpr(expr)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestUnterminatedConstructs all produce errors, not hangs.
func TestUnterminatedConstructs(t *testing.T) {
	in := New()
	for _, bad := range []string{
		"set a {unterminated",
		`set a "unterminated`,
		"set a [unterminated",
		"set a ${unterminated",
		"set a {nested {deeper",
		`puts "a[set b"`,
	} {
		if _, err := in.Eval(bad); err == nil {
			t.Errorf("Eval(%q) should fail", bad)
		}
	}
}

func TestDeepNestingBounded(t *testing.T) {
	in := New()
	// Deeply nested command substitution hits the recursion limit
	// gracefully.
	script := strings.Repeat("[set x ", 2000) + "1" + strings.Repeat("]", 2000)
	if _, err := in.Eval("set y " + script); err == nil {
		t.Fatal("expected nesting error")
	}
}

func TestEnvArray(t *testing.T) {
	os.Setenv("TCL_TEST_ENV_VAR", "from-environment")
	in := New()
	got, err := in.Eval(`set env(TCL_TEST_ENV_VAR)`)
	if err != nil || got != "from-environment" {
		t.Fatalf("env array: %q %v", got, err)
	}
	if _, err := in.Eval(`set env(PATH)`); err != nil {
		t.Fatalf("PATH missing from env: %v", err)
	}
}

// TestBracketInBareWord: a lone close-bracket outside command
// substitution is ordinary text.
func TestBracketInBareWord(t *testing.T) {
	in := New()
	got, err := in.Eval("set x a]b")
	if err != nil || got != "a]b" {
		t.Fatalf("bare ]: %q %v", got, err)
	}
}

// TestSubstituteAll covers the whole-string substitution entry point used
// by Tk.
func TestSubstituteAll(t *testing.T) {
	in := New()
	in.SetVar("n", "7")
	got, err := in.SubstituteAll(`n is $n, sum [expr 1+1], tab\t.`)
	if err != nil || got != "n is 7, sum 2, tab\t." {
		t.Fatalf("SubstituteAll: %q %v", got, err)
	}
}

// TestEvalResultIsLastCommand per the evaluation model.
func TestEvalResultIsLastCommand(t *testing.T) {
	in := New()
	got, err := in.Eval("set a 1\nset b 2\nset c 3")
	if err != nil || got != "3" {
		t.Fatalf("result = %q %v", got, err)
	}
	// Empty scripts and comment-only scripts give empty results.
	if got, err := in.Eval(""); err != nil || got != "" {
		t.Fatalf("empty script: %q %v", got, err)
	}
	if got, err := in.Eval("# just a comment"); err != nil || got != "" {
		t.Fatalf("comment script: %q %v", got, err)
	}
}

// TestBackslashSequences covers the full Figure 5 table.
func TestBackslashSequences(t *testing.T) {
	in := New()
	cases := []struct{ script, want string }{
		{`set x a\nb`, "a\nb"},
		{`set x a\tb`, "a\tb"},
		{`set x a\rb`, "a\rb"},
		{`set x a\\b`, `a\b`},
		{`set x a\$b`, "a$b"},
		{`set x a\[b\]`, "a[b]"},
		{`set x a\{b\}`, "a{b}"},
		{`set x a\;b`, "a;b"},
		{`set x a\ b`, "a b"},
		{`set x \x41`, "A"},
		{`set x \101`, "A"},
		{`set x \7`, "\x07"},
	}
	for _, c := range cases {
		got, err := in.Eval(c.script)
		if err != nil || got != c.want {
			t.Errorf("Eval(%q) = %q %v, want %q", c.script, got, err, c.want)
		}
	}
}
