package tcl

import (
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// registerIO installs output, file-system and process commands.
func registerIO(in *Interp) {
	in.Register("puts", cmdPuts)
	in.Register("print", cmdPrint)
	in.Register("source", cmdSource)
	in.Register("exec", cmdExec)
	in.Register("file", cmdFile)
	in.Register("glob", cmdGlob)
	in.Register("pwd", cmdPwd)
	in.Register("cd", cmdCd)
	in.Register("pid", cmdPid)
	in.Register("exit", cmdExit)
}

// initEnv populates the global env array from the process environment,
// as Tcl does ($env(HOME) and friends).
func (in *Interp) initEnv() {
	for _, kv := range os.Environ() {
		if i := strings.IndexByte(kv, '='); i > 0 {
			_, _ = in.SetGlobal("env("+kv[:i]+")", kv[i+1:])
		}
	}
}

func (in *Interp) out() interface{ Write([]byte) (int, error) } {
	if in.Out != nil {
		return in.Out
	}
	return os.Stdout
}

func cmdPuts(in *Interp, args []string) (string, error) {
	newline := true
	rest := args[1:]
	if len(rest) > 0 && rest[0] == "-nonewline" {
		newline = false
		rest = rest[1:]
	}
	// Accept and ignore a leading "stdout"/"stderr" channel argument.
	if len(rest) == 2 && (rest[0] == "stdout" || rest[0] == "stderr") {
		rest = rest[1:]
	}
	if len(rest) != 1 {
		return "", errf(`wrong # args: should be "puts ?-nonewline? ?channel? string"`)
	}
	s := rest[0]
	if newline {
		s += "\n"
	}
	_, err := in.out().Write([]byte(s))
	return "", err
}

// cmdPrint implements the Tcl 6.x "print" command used throughout the
// paper's figures: it writes its arguments verbatim (no added newline —
// the figures pass "\n" explicitly).
func cmdPrint(in *Interp, args []string) (string, error) {
	s := strings.Join(args[1:], " ")
	_, err := in.out().Write([]byte(s))
	return "", err
}

func cmdSource(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 1, "fileName"); err != nil {
		return "", err
	}
	data, err := os.ReadFile(args[1])
	if err != nil {
		return "", errf("couldn't read file %q: %s", args[1], err)
	}
	return in.Eval(string(data))
}

// cmdExec runs an external command pipeline, capturing standard output.
// Supported, as in Tcl's exec: "|" between commands builds a pipeline;
// "< file" redirects the first command's input; "> file" and ">> file"
// redirect the last command's output; a final "&" runs the pipeline in
// the background and returns the pids. Trailing newlines are stripped
// from captured output.
func cmdExec(in *Interp, args []string) (string, error) {
	if len(args) < 2 {
		return "", errf(`wrong # args: should be "exec arg ?arg ...?"`)
	}
	rest := args[1:]
	background := false
	if rest[len(rest)-1] == "&" {
		background = true
		rest = rest[:len(rest)-1]
	}

	// Parse redirections and split on pipes.
	var stdinFile, stdoutFile string
	appendOut := false
	var stages [][]string
	cur := []string{}
	i := 0
	for i < len(rest) {
		tok := rest[i]
		switch {
		case tok == "|":
			if len(cur) == 0 {
				return "", errf("illegal use of | in exec command")
			}
			stages = append(stages, cur)
			cur = nil
		case tok == "<" || strings.HasPrefix(tok, "<") && len(tok) > 1 && tok != "<<":
			name := strings.TrimPrefix(tok, "<")
			if name == "" {
				i++
				if i >= len(rest) {
					return "", errf("can't specify \"<\" as last word in command")
				}
				name = rest[i]
			}
			stdinFile = name
		case tok == ">>" || strings.HasPrefix(tok, ">>"):
			name := strings.TrimPrefix(tok, ">>")
			if name == "" {
				i++
				if i >= len(rest) {
					return "", errf("can't specify \">>\" as last word in command")
				}
				name = rest[i]
			}
			stdoutFile, appendOut = name, true
		case tok == ">" || strings.HasPrefix(tok, ">") && len(tok) > 1:
			name := strings.TrimPrefix(tok, ">")
			if name == "" {
				i++
				if i >= len(rest) {
					return "", errf("can't specify \">\" as last word in command")
				}
				name = rest[i]
			}
			stdoutFile = name
		default:
			cur = append(cur, tok)
		}
		i++
	}
	if len(cur) > 0 {
		stages = append(stages, cur)
	}
	if len(stages) == 0 {
		return "", errf("exec: no command given")
	}

	cmds := make([]*exec.Cmd, len(stages))
	for si, stage := range stages {
		cmds[si] = exec.Command(stage[0], stage[1:]...)
	}
	// Wire the pipeline.
	for si := 1; si < len(cmds); si++ {
		pipe, err := cmds[si-1].StdoutPipe()
		if err != nil {
			return "", errf("exec pipe: %s", err)
		}
		cmds[si].Stdin = pipe
	}
	if stdinFile != "" {
		f, err := os.Open(stdinFile)
		if err != nil {
			return "", errf("couldn't read file %q: %s", stdinFile, err)
		}
		defer f.Close()
		cmds[0].Stdin = f
	}
	last := cmds[len(cmds)-1]
	var outBuf, errBuf strings.Builder
	if stdoutFile != "" {
		flags := os.O_WRONLY | os.O_CREATE
		if appendOut {
			flags |= os.O_APPEND
		} else {
			flags |= os.O_TRUNC
		}
		f, err := os.OpenFile(stdoutFile, flags, 0o644)
		if err != nil {
			return "", errf("couldn't write file %q: %s", stdoutFile, err)
		}
		defer f.Close()
		last.Stdout = f
	} else if !background {
		last.Stdout = &outBuf
	}
	if !background {
		last.Stderr = &errBuf
	}

	// Start every stage.
	for si, c := range cmds {
		if err := c.Start(); err != nil {
			return "", errf("couldn't execute %q: %s", stages[si][0], err)
		}
	}
	if background {
		var pids []string
		for _, c := range cmds {
			pids = append(pids, strconv.Itoa(c.Process.Pid))
			go func(c *exec.Cmd) { _ = c.Wait() }(c)
		}
		return strings.Join(pids, " "), nil
	}
	// Wait in order; the last stage's status decides success.
	var waitErr error
	for _, c := range cmds {
		if err := c.Wait(); err != nil {
			waitErr = err
		}
	}
	result := strings.TrimRight(outBuf.String(), "\n")
	if waitErr != nil {
		msg := strings.TrimRight(errBuf.String(), "\n")
		if msg == "" {
			msg = result
		}
		if msg == "" {
			msg = waitErr.Error()
		}
		return "", errf("%s", msg)
	}
	return result, nil
}

// fileOptions are the option names recognized by the file command; used
// to support both argument orders ("file option name" and the paper's
// Figure 9 order "file name option").
var fileOptions = map[string]bool{
	"atime": true, "dirname": true, "executable": true, "exists": true,
	"extension": true, "isdirectory": true, "isfile": true, "mtime": true,
	"owned": true, "readable": true, "rootname": true, "size": true,
	"tail": true, "writable": true, "delete": true, "mkdir": true,
	"join": true, "split": true, "type": true,
}

func cmdFile(in *Interp, args []string) (string, error) {
	if len(args) < 3 {
		return "", errf(`wrong # args: should be "file option name ?arg ...?"`)
	}
	op, name := args[1], args[2]
	if !fileOptions[op] && fileOptions[name] {
		// Figure 9 order: file $file isdirectory.
		op, name = name, op
	}
	boolRes := func(b bool) (string, error) {
		if b {
			return "1", nil
		}
		return "0", nil
	}
	switch op {
	case "exists":
		_, err := os.Stat(name)
		return boolRes(err == nil)
	case "isdirectory":
		fi, err := os.Stat(name)
		return boolRes(err == nil && fi.IsDir())
	case "isfile":
		fi, err := os.Stat(name)
		return boolRes(err == nil && fi.Mode().IsRegular())
	case "readable":
		f, err := os.Open(name)
		if err == nil {
			f.Close()
		}
		return boolRes(err == nil)
	case "writable":
		fi, err := os.Stat(name)
		return boolRes(err == nil && fi.Mode().Perm()&0200 != 0)
	case "executable":
		fi, err := os.Stat(name)
		return boolRes(err == nil && fi.Mode().Perm()&0100 != 0)
	case "owned":
		_, err := os.Stat(name)
		return boolRes(err == nil)
	case "size":
		fi, err := os.Stat(name)
		if err != nil {
			return "", errf("couldn't stat %q: %s", name, err)
		}
		return strconv.FormatInt(fi.Size(), 10), nil
	case "mtime":
		fi, err := os.Stat(name)
		if err != nil {
			return "", errf("couldn't stat %q: %s", name, err)
		}
		return strconv.FormatInt(fi.ModTime().Unix(), 10), nil
	case "atime":
		fi, err := os.Stat(name)
		if err != nil {
			return "", errf("couldn't stat %q: %s", name, err)
		}
		return strconv.FormatInt(fi.ModTime().Unix(), 10), nil
	case "dirname":
		d := filepath.Dir(name)
		return d, nil
	case "tail":
		return filepath.Base(name), nil
	case "rootname":
		ext := filepath.Ext(name)
		return strings.TrimSuffix(name, ext), nil
	case "extension":
		return filepath.Ext(name), nil
	case "type":
		fi, err := os.Lstat(name)
		if err != nil {
			return "", errf("couldn't stat %q: %s", name, err)
		}
		switch {
		case fi.Mode().IsRegular():
			return "file", nil
		case fi.IsDir():
			return "directory", nil
		case fi.Mode()&os.ModeSymlink != 0:
			return "link", nil
		default:
			return "other", nil
		}
	case "delete":
		for _, n := range args[2:] {
			_ = os.RemoveAll(n)
		}
		return "", nil
	case "mkdir":
		for _, n := range args[2:] {
			if err := os.MkdirAll(n, 0o755); err != nil {
				return "", errf("couldn't create directory %q: %s", n, err)
			}
		}
		return "", nil
	case "join":
		return filepath.Join(args[2:]...), nil
	case "split":
		parts := strings.Split(filepath.Clean(name), string(filepath.Separator))
		if strings.HasPrefix(name, "/") {
			parts[0] = "/"
		}
		return FormatList(parts), nil
	}
	return "", errf("bad option %q for file command", op)
}

func cmdGlob(in *Interp, args []string) (string, error) {
	if len(args) < 2 {
		return "", errf(`wrong # args: should be "glob ?-nocomplain? pattern ?pattern ...?"`)
	}
	rest := args[1:]
	nocomplain := false
	if rest[0] == "-nocomplain" {
		nocomplain = true
		rest = rest[1:]
	}
	var out []string
	for _, pat := range rest {
		matches, err := filepath.Glob(pat)
		if err != nil {
			return "", errf("bad pattern %q: %s", pat, err)
		}
		out = append(out, matches...)
	}
	if len(out) == 0 && !nocomplain {
		return "", errf("no files matched glob pattern(s)")
	}
	sort.Strings(out)
	return FormatList(out), nil
}

func cmdPwd(in *Interp, args []string) (string, error) {
	d, err := os.Getwd()
	if err != nil {
		return "", errf("pwd: %s", err)
	}
	return d, nil
}

func cmdCd(in *Interp, args []string) (string, error) {
	if err := arity(args, 0, 1, "?dirName?"); err != nil {
		return "", err
	}
	dir := os.Getenv("HOME")
	if len(args) == 2 {
		dir = args[1]
	}
	if err := os.Chdir(dir); err != nil {
		return "", errf("couldn't change working directory to %q: %s", dir, err)
	}
	return "", nil
}

func cmdPid(in *Interp, args []string) (string, error) {
	return strconv.Itoa(os.Getpid()), nil
}

func cmdExit(in *Interp, args []string) (string, error) {
	code := 0
	if len(args) > 1 {
		n, err := strconv.Atoi(args[1])
		if err != nil {
			return "", errf("expected integer but got %q", args[1])
		}
		code = n
	}
	if in.ExitHandler != nil {
		in.ExitHandler(code)
		return "", nil
	}
	os.Exit(code)
	return "", nil
}
