package tcl

import (
	"sort"
	"strconv"
	"strings"
)

// registerList installs the list commands, including the Tcl 6.x-era
// short names (index, range) that scripts in the paper use.
func registerList(in *Interp) {
	in.Register("list", cmdList)
	in.Register("lindex", cmdLindex)
	in.Register("index", cmdLindex) // historical alias used in Figure 9
	in.Register("llength", cmdLlength)
	in.Register("lappend", cmdLappend)
	in.Register("lrange", cmdLrange)
	in.Register("range", cmdLrange) // historical alias
	in.Register("linsert", cmdLinsert)
	in.Register("lreplace", cmdLreplace)
	in.Register("lsort", cmdLsort)
	in.Register("lsearch", cmdLsearch)
	in.Register("concat", cmdConcat)
	in.Register("join", cmdJoin)
	in.Register("split", cmdSplit)
}

func cmdList(in *Interp, args []string) (string, error) {
	return FormatList(args[1:]), nil
}

// listIndex parses a list index, supporting "end" and "end-N".
func listIndex(spec string, length int) (int, error) {
	if spec == "end" {
		return length - 1, nil
	}
	if strings.HasPrefix(spec, "end-") {
		n, err := strconv.Atoi(spec[4:])
		if err != nil {
			return 0, errf("bad index %q: must be integer or end?-integer?", spec)
		}
		return length - 1 - n, nil
	}
	n, err := strconv.Atoi(spec)
	if err != nil {
		return 0, errf("bad index %q: must be integer or end?-integer?", spec)
	}
	return n, nil
}

func cmdLindex(in *Interp, args []string) (string, error) {
	if err := arity(args, 2, 2, "list index"); err != nil {
		return "", err
	}
	elems, err := ParseList(args[1])
	if err != nil {
		return "", err
	}
	i, err := listIndex(args[2], len(elems))
	if err != nil {
		return "", err
	}
	if i < 0 || i >= len(elems) {
		return "", nil
	}
	return elems[i], nil
}

func cmdLlength(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 1, "list"); err != nil {
		return "", err
	}
	elems, err := ParseList(args[1])
	if err != nil {
		return "", err
	}
	return strconv.Itoa(len(elems)), nil
}

func cmdLappend(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, -1, "varName ?value value ...?"); err != nil {
		return "", err
	}
	cur := ""
	if in.VarExists(args[1]) {
		var err error
		cur, err = in.GetVar(args[1])
		if err != nil {
			return "", err
		}
	}
	var b strings.Builder
	b.WriteString(cur)
	for _, v := range args[2:] {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(QuoteElement(v))
	}
	return in.SetVar(args[1], b.String())
}

func cmdLrange(in *Interp, args []string) (string, error) {
	if err := arity(args, 3, 3, "list first last"); err != nil {
		return "", err
	}
	elems, err := ParseList(args[1])
	if err != nil {
		return "", err
	}
	first, err := listIndex(args[2], len(elems))
	if err != nil {
		return "", err
	}
	last, err := listIndex(args[3], len(elems))
	if err != nil {
		return "", err
	}
	if first < 0 {
		first = 0
	}
	if last >= len(elems) {
		last = len(elems) - 1
	}
	if first > last {
		return "", nil
	}
	return FormatList(elems[first : last+1]), nil
}

func cmdLinsert(in *Interp, args []string) (string, error) {
	if err := arity(args, 3, -1, "list index element ?element ...?"); err != nil {
		return "", err
	}
	elems, err := ParseList(args[1])
	if err != nil {
		return "", err
	}
	i, err := listIndex(args[2], len(elems))
	if err != nil {
		if args[2] == "end" {
			i = len(elems)
		} else {
			return "", err
		}
	}
	if args[2] == "end" {
		i = len(elems)
	}
	if i < 0 {
		i = 0
	}
	if i > len(elems) {
		i = len(elems)
	}
	out := make([]string, 0, len(elems)+len(args)-3)
	out = append(out, elems[:i]...)
	out = append(out, args[3:]...)
	out = append(out, elems[i:]...)
	return FormatList(out), nil
}

func cmdLreplace(in *Interp, args []string) (string, error) {
	if err := arity(args, 3, -1, "list first last ?element element ...?"); err != nil {
		return "", err
	}
	elems, err := ParseList(args[1])
	if err != nil {
		return "", err
	}
	first, err := listIndex(args[2], len(elems))
	if err != nil {
		return "", err
	}
	last, err := listIndex(args[3], len(elems))
	if err != nil {
		return "", err
	}
	if first < 0 {
		first = 0
	}
	if last >= len(elems) {
		last = len(elems) - 1
	}
	out := make([]string, 0, len(elems))
	if first <= len(elems) {
		out = append(out, elems[:min(first, len(elems))]...)
	}
	out = append(out, args[4:]...)
	if last+1 < len(elems) && last >= first-1 {
		out = append(out, elems[last+1:]...)
	} else if last < first-1 && first < len(elems) {
		out = append(out, elems[first:]...)
	}
	return FormatList(out), nil
}

func cmdLsort(in *Interp, args []string) (string, error) {
	if len(args) < 2 {
		return "", errf(`wrong # args: should be "lsort ?options? list"`)
	}
	mode := "ascii"
	decreasing := false
	for _, opt := range args[1 : len(args)-1] {
		switch opt {
		case "-ascii":
			mode = "ascii"
		case "-integer":
			mode = "integer"
		case "-real":
			mode = "real"
		case "-increasing":
			decreasing = false
		case "-decreasing":
			decreasing = true
		default:
			return "", errf("bad option %q: must be -ascii, -integer, -real, -increasing or -decreasing", opt)
		}
	}
	elems, err := ParseList(args[len(args)-1])
	if err != nil {
		return "", err
	}
	var sortErr error
	less := func(a, b string) bool {
		switch mode {
		case "integer":
			ai, e1 := strconv.ParseInt(strings.TrimSpace(a), 0, 64)
			bi, e2 := strconv.ParseInt(strings.TrimSpace(b), 0, 64)
			if e1 != nil || e2 != nil {
				if sortErr == nil {
					sortErr = errf("expected integer but got %q", a)
				}
				return a < b
			}
			return ai < bi
		case "real":
			af, e1 := strconv.ParseFloat(strings.TrimSpace(a), 64)
			bf, e2 := strconv.ParseFloat(strings.TrimSpace(b), 64)
			if e1 != nil || e2 != nil {
				if sortErr == nil {
					sortErr = errf("expected floating-point number but got %q", a)
				}
				return a < b
			}
			return af < bf
		default:
			return a < b
		}
	}
	sort.SliceStable(elems, func(i, j int) bool {
		if decreasing {
			return less(elems[j], elems[i])
		}
		return less(elems[i], elems[j])
	})
	if sortErr != nil {
		return "", sortErr
	}
	return FormatList(elems), nil
}

func cmdLsearch(in *Interp, args []string) (string, error) {
	mode := "-glob"
	rest := args[1:]
	if len(rest) == 3 {
		switch rest[0] {
		case "-exact", "-glob":
			mode = rest[0]
			rest = rest[1:]
		default:
			return "", errf("bad option %q: must be -exact or -glob", rest[0])
		}
	}
	if len(rest) != 2 {
		return "", errf(`wrong # args: should be "lsearch ?mode? list pattern"`)
	}
	elems, err := ParseList(rest[0])
	if err != nil {
		return "", err
	}
	for i, e := range elems {
		var found bool
		if mode == "-exact" {
			found = e == rest[1]
		} else {
			found = GlobMatch(rest[1], e)
		}
		if found {
			return strconv.Itoa(i), nil
		}
	}
	return "-1", nil
}

func cmdConcat(in *Interp, args []string) (string, error) {
	parts := make([]string, 0, len(args)-1)
	for _, a := range args[1:] {
		t := strings.TrimSpace(a)
		if t != "" {
			parts = append(parts, t)
		}
	}
	return strings.Join(parts, " "), nil
}

func cmdJoin(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 2, "list ?joinString?"); err != nil {
		return "", err
	}
	sep := " "
	if len(args) == 3 {
		sep = args[2]
	}
	elems, err := ParseList(args[1])
	if err != nil {
		return "", err
	}
	return strings.Join(elems, sep), nil
}

func cmdSplit(in *Interp, args []string) (string, error) {
	if err := arity(args, 1, 2, "string ?splitChars?"); err != nil {
		return "", err
	}
	s := args[1]
	chars := " \t\n\r"
	if len(args) == 3 {
		chars = args[2]
	}
	if chars == "" {
		out := make([]string, 0, len(s))
		for _, r := range s {
			out = append(out, string(r))
		}
		return FormatList(out), nil
	}
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if strings.IndexByte(chars, s[i]) >= 0 {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return FormatList(out), nil
}
