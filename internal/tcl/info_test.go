package tcl

import (
	"strings"
	"testing"
)

func TestInfoGlobalsAndLocals(t *testing.T) {
	in := New()
	evalOK(t, in, "set gv 1")
	globals := evalOK(t, in, "info globals")
	if !strings.Contains(globals, "gv") || !strings.Contains(globals, "env") {
		t.Fatalf("info globals = %q", globals)
	}
	// Pattern filtering.
	if got := evalOK(t, in, "info globals gv"); got != "gv" {
		t.Fatalf("filtered globals = %q", got)
	}
	// Locals inside a procedure.
	evalOK(t, in, `proc p {a b} {set c 3; return [info locals]}`)
	locals := evalOK(t, in, "p 1 2")
	for _, want := range []string{"a", "b", "c"} {
		if !strings.Contains(locals, want) {
			t.Fatalf("info locals = %q, missing %q", locals, want)
		}
	}
	// At global level, locals is empty.
	if got := evalOK(t, in, "info locals"); got != "" {
		t.Fatalf("global-level locals = %q", got)
	}
	// info vars at global scope sees globals.
	if !strings.Contains(evalOK(t, in, "info vars"), "gv") {
		t.Fatal("info vars")
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		OK: "ok", ErrorStatus: "error", ReturnStatus: "return",
		BreakStatus: "break", ContinueStatus: "continue", Status(99): "status-99",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestErrorType(t *testing.T) {
	in := New()
	_, err := in.Eval(`error "boom"`)
	te, ok := err.(*Error)
	if !ok || te.Error() != "boom" || te.Code != ErrorStatus {
		t.Fatalf("error = %#v", err)
	}
	// error with explicit errorInfo.
	_, err = in.Eval(`error msg {custom info}`)
	te = err.(*Error)
	if te.Info != "custom info" {
		t.Fatalf("errorInfo = %q", te.Info)
	}
}

func TestCommandNames(t *testing.T) {
	in := New()
	names := in.CommandNames()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"set", "proc", "expr", "regexp", "string", "foreach"} {
		if !found[want] {
			t.Errorf("CommandNames missing %q", want)
		}
	}
	if found["pack"] {
		t.Error("CommandNames includes Tk's pack command in a bare interpreter")
	}

	// The table tracks Register/Unregister.
	in.Register("frobnicate", func(in *Interp, args []string) (string, error) { return "", nil })
	if !in.HasCommand("frobnicate") {
		t.Fatal("HasCommand false after Register")
	}
	after := in.CommandNames()
	if len(after) != len(names)+1 {
		t.Errorf("CommandNames len = %d after Register, want %d", len(after), len(names)+1)
	}
	if !in.Unregister("frobnicate") {
		t.Error("Unregister returned false for a registered command")
	}
	if in.Unregister("frobnicate") {
		t.Error("Unregister returned true for a missing command")
	}

	// The returned slice is a copy: mutating it must not corrupt the
	// interpreter's table.
	snapshot := in.CommandNames()
	for i := range snapshot {
		snapshot[i] = "clobbered"
	}
	if !in.HasCommand("set") {
		t.Error("mutating the CommandNames result affected the registry")
	}
	if got := len(in.CommandNames()); got != len(names) {
		t.Errorf("CommandNames len = %d after mutation, want %d", got, len(names))
	}
}

func TestUnsetArrayWhole(t *testing.T) {
	in := New()
	evalOK(t, in, "set a(x) 1; set a(y) 2")
	evalOK(t, in, "unset a")
	expect(t, in, "array exists a", "0")
	expect(t, in, "info exists a", "0")
}

func TestInfoExistsArrayForms(t *testing.T) {
	in := New()
	evalOK(t, in, "set arr(k) v")
	expect(t, in, "info exists arr", "1")
	expect(t, in, "info exists arr(k)", "1")
	expect(t, in, "info exists arr(nope)", "0")
}
