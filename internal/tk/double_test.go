package tk

import (
	"testing"

	"repro/internal/xproto"
)

// TestDoubleClickCounts verifies a <Double-Button-1> binding fires
// exactly once for a double click and not for single clicks.
func TestDoubleClickCounts(t *testing.T) {
	app, _ := newTestApp(t)
	mkWindow(t, app, ".x", 100, 100)
	app.MustEval(`pack append . .x {top}`)
	app.MustEval(`set doubles 0`)
	app.MustEval(`set singles 0`)
	app.MustEval(`bind .x <Double-Button-1> {incr doubles}`)
	app.Update()
	w, _ := app.NameToWindow(".x")
	rx, ry := w.RootCoords()
	app.Disp.WarpPointer(rx+10, ry+10)

	// One single click: no double.
	app.Disp.FakeButton(1, true)
	app.Disp.FakeButton(1, false)
	app.Update()
	if got := app.MustEval(`set doubles`); got != "0" {
		t.Fatalf("single click produced %s doubles", got)
	}
	// Second click completes the double.
	app.Disp.FakeButton(1, true)
	app.Disp.FakeButton(1, false)
	app.Update()
	if got := app.MustEval(`set doubles`); got != "1" {
		t.Fatalf("double click produced %s doubles, want 1", got)
	}
}

// TestDoubleClickWithReleasesSelected: when releases are also delivered
// (as widget behaviour code selects them), the Double sequence must
// still match across the interleaved release.
func TestDoubleClickWithReleasesSelected(t *testing.T) {
	app, _ := newTestApp(t)
	w := mkWindow(t, app, ".x", 100, 100)
	app.MustEval(`pack append . .x {top}`)
	// A widget-like Go handler selecting releases on the same window.
	w.AddEventHandler(xproto.ButtonReleaseMask, func(*xproto.Event) {})
	app.MustEval(`set doubles 0`)
	app.MustEval(`bind .x <Double-Button-1> {incr doubles}`)
	app.Update()
	rx, ry := w.RootCoords()
	app.Disp.WarpPointer(rx+10, ry+10)
	app.Disp.FakeButton(1, true)
	app.Disp.FakeButton(1, false)
	app.Disp.FakeButton(1, true)
	app.Disp.FakeButton(1, false)
	app.Update()
	if got := app.MustEval(`set doubles`); got != "1" {
		t.Fatalf("doubles = %s, want 1 (release events interleaved)", got)
	}
}

// TestEscapeQWithInterveningKey: a different key between the sequence
// members breaks it.
func TestSequenceBrokenByOtherKey(t *testing.T) {
	app, out := newTestApp(t)
	w := mkWindow(t, app, ".x", 100, 100)
	app.MustEval(`pack append . .x {top}`)
	app.MustEval(`bind .x <Escape>q {print seq}`)
	app.Update()
	rx, ry := w.RootCoords()
	app.Disp.WarpPointer(rx+10, ry+10)
	app.Disp.FakeKey(xproto.KsEscape, true)
	app.Disp.FakeKey(xproto.KsEscape, false)
	app.Disp.FakeKey('z', true) // intervening key press breaks the sequence
	app.Disp.FakeKey('z', false)
	app.Disp.FakeKey('q', true)
	app.Disp.FakeKey('q', false)
	app.Update()
	if out.String() != "" {
		t.Fatalf("broken sequence still fired: %q", out.String())
	}
}
