package tk

import (
	"fmt"
	"strings"

	"repro/internal/xclient"
	"repro/internal/xproto"
)

// Resource caches (§3.3): allocating X resources requires inter-process
// communication with the server, so Tk caches them, indexed by textual
// descriptions. The first request for "MediumSeaGreen" costs a round
// trip; every later request is served from the cache. Given a resource
// value, Tk can also return its textual name (NameOfColor), which widgets
// use to report their configuration in human-readable form.

// Color resolves a textual color name to a pixel, caching the result.
func (app *App) Color(name string) (uint32, error) {
	key := strings.ToLower(name)
	if px, ok := app.colorCache[key]; ok {
		app.Metrics().Counter("tk.cache.color.hits").Inc()
		return px, nil
	}
	app.Metrics().Counter("tk.cache.color.misses").Inc()
	px, found, err := app.Disp.AllocNamedColor(name)
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("unknown color name %q", name)
	}
	app.storeColor(key, px)
	return px, nil
}

// storeColor records an allocated pixel under its canonical (lowercase)
// name in both directions. The reverse map uses the same canonical key
// as colorCache, so NameOfColor always agrees with the cache — callers
// may ask with any casing.
func (app *App) storeColor(key string, px uint32) {
	app.colorCache[key] = px
	if _, ok := app.colorNames[px]; !ok {
		app.colorNames[px] = key
	}
}

// NameOfColor returns the canonical textual name under which a pixel
// was allocated (falling back to #RRGGBB).
func (app *App) NameOfColor(pixel uint32) string {
	if name, ok := app.colorNames[pixel]; ok {
		return name
	}
	return fmt.Sprintf("#%06x", pixel)
}

// FontByName opens a font by name, caching the handle and its metrics so
// later uses (and all text measurement) cost no server traffic.
func (app *App) FontByName(name string) (*xclient.Font, error) {
	if f, ok := app.fontCache[name]; ok {
		app.Metrics().Counter("tk.cache.font.hits").Inc()
		return f, nil
	}
	app.Metrics().Counter("tk.cache.font.misses").Inc()
	f, err := app.Disp.OpenFont(name)
	if err != nil {
		return nil, fmt.Errorf("unknown font name %q: %v", name, err)
	}
	app.fontCache[name] = f
	return f, nil
}

// Cursor resolves a textual cursor name (e.g. "coffee_mug") to a cursor
// resource, caching it.
func (app *App) Cursor(name string) (xproto.ID, error) {
	if c, ok := app.cursorCache[name]; ok {
		app.Metrics().Counter("tk.cache.cursor.hits").Inc()
		return c, nil
	}
	app.Metrics().Counter("tk.cache.cursor.misses").Inc()
	c := app.Disp.CreateCursor(name)
	app.cursorCache[name] = c
	return c, nil
}

// Bitmap is a cached monochrome pattern, indexed by a textual name
// ("gray50", or "@file" for a bitmap stored in a file, per §3.3).
type Bitmap struct {
	Name   string
	Width  int
	Height int
	// Rows holds one bool per pixel, row-major.
	Rows []bool
}

// builtinBitmaps defines the stock patterns.
var builtinBitmaps = map[string]func() *Bitmap{
	"gray50": func() *Bitmap {
		b := &Bitmap{Name: "gray50", Width: 8, Height: 8, Rows: make([]bool, 64)}
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				b.Rows[y*8+x] = (x+y)%2 == 0
			}
		}
		return b
	},
	"gray25": func() *Bitmap {
		b := &Bitmap{Name: "gray25", Width: 8, Height: 8, Rows: make([]bool, 64)}
		for y := 0; y < 8; y++ {
			for x := 0; x < 8; x++ {
				b.Rows[y*8+x] = x%2 == 0 && y%2 == 0
			}
		}
		return b
	},
	"star": func() *Bitmap {
		rows := []string{
			"...X...",
			"...X...",
			".XXXXX.",
			"..XXX..",
			".X.X.X.",
			"X..X..X",
			"...X...",
		}
		return bitmapFromRows("star", rows)
	},
}

func bitmapFromRows(name string, rows []string) *Bitmap {
	h := len(rows)
	w := len(rows[0])
	b := &Bitmap{Name: name, Width: w, Height: h, Rows: make([]bool, w*h)}
	for y, r := range rows {
		for x := 0; x < len(r) && x < w; x++ {
			b.Rows[y*w+x] = r[x] == 'X'
		}
	}
	return b
}

// BitmapByName resolves a textual bitmap description, caching it.
func (app *App) BitmapByName(name string) (*Bitmap, error) {
	if b, ok := app.bitmapCache[name]; ok {
		app.Metrics().Counter("tk.cache.bitmap.hits").Inc()
		return b, nil
	}
	app.Metrics().Counter("tk.cache.bitmap.misses").Inc()
	if mk, ok := builtinBitmaps[name]; ok {
		b := mk()
		app.bitmapCache[name] = b
		return b, nil
	}
	return nil, fmt.Errorf("bitmap %q not defined", name)
}

// GC returns a shared graphics context for the given attributes, creating
// it on first use. GCs with identical contents are shared between
// widgets, as §3.3 prescribes.
func (app *App) GC(fg, bg uint32, lineWidth int, font xproto.ID) xproto.ID {
	key := gcKey{fg: fg, bg: bg, lineWidth: lineWidth, font: font}
	if gc, ok := app.gcCache[key]; ok {
		app.Metrics().Counter("tk.cache.gc.hits").Inc()
		return gc
	}
	app.Metrics().Counter("tk.cache.gc.misses").Inc()
	gc := app.Disp.CreateGC(xclient.GCValues{
		Mask: xproto.GCForeground | xproto.GCBackground |
			xproto.GCLineWidth | xproto.GCFont,
		Foreground: fg, Background: bg,
		LineWidth: lineWidth, Font: font,
	})
	app.gcCache[key] = gc
	return gc
}

// CacheStats reports cache occupancy, for the §3.3 experiments.
func (app *App) CacheStats() (colors, fonts, gcs, cursors int) {
	return len(app.colorCache), len(app.fontCache), len(app.gcCache), len(app.cursorCache)
}

// PrefetchResources issues every cache-missing allocation among the
// given color, font and cursor names as one pipelined batch and waits
// for all replies in a single flight. It is the §3.3 resource caches
// meeting the XCB cookie model: a widget whose configuration needs two
// new colors and a new font pays one round trip, not three. Names
// already cached cost nothing; allocation failures are left for the
// per-name accessors (Color, FontByName) to surface.
func (app *App) PrefetchResources(colors, fonts, cursors []string) {
	type colorFetch struct {
		key string
		ck  xclient.NamedColorCookie
	}
	type fontFetch struct {
		name string
		ck   xclient.FontCookie
	}
	var colorFetches []colorFetch
	var fontFetches []fontFetch
	for _, name := range colors {
		if name == "" {
			continue
		}
		key := strings.ToLower(name)
		if _, ok := app.colorCache[key]; ok {
			continue
		}
		dup := false
		for _, f := range colorFetches {
			if f.key == key {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		app.Metrics().Counter("tk.cache.color.misses").Inc()
		colorFetches = append(colorFetches, colorFetch{key: key, ck: app.Disp.AllocNamedColorAsync(name)})
	}
	for _, name := range fonts {
		if name == "" {
			continue
		}
		if _, ok := app.fontCache[name]; ok {
			continue
		}
		dup := false
		for _, f := range fontFetches {
			if f.name == name {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		app.Metrics().Counter("tk.cache.font.misses").Inc()
		fontFetches = append(fontFetches, fontFetch{name: name, ck: app.Disp.OpenFontAsync(name)})
	}
	// Cursor creation is one-way (no reply), so it rides in the same
	// segment for free.
	for _, name := range cursors {
		if name == "" {
			continue
		}
		if _, ok := app.cursorCache[name]; ok {
			continue
		}
		app.Metrics().Counter("tk.cache.cursor.misses").Inc()
		app.cursorCache[name] = app.Disp.CreateCursor(name)
	}
	// One flush covers the whole batch; the waits then drain replies in
	// order.
	for _, f := range colorFetches {
		if px, found, err := f.ck.Wait(); err == nil && found {
			app.storeColor(f.key, px)
		}
	}
	for _, f := range fontFetches {
		if font, err := f.ck.Wait(); err == nil {
			app.fontCache[f.name] = font
		}
	}
}
