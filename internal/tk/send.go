package tk

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/tcl"
	"repro/internal/xproto"
)

// The send command (§6): a remote-procedure-call facility between Tk
// applications on the same display. Each application registers its name
// and communication window in a property on the root window; send locates
// the target through the registry, forwards the command via a property on
// the target's communication window, and the answer comes back the same
// way. Everything rides on ordinary X requests, so it works between
// separate operating-system processes sharing one (simulated) display.

// DefaultSendTimeout bounds how long a sender waits for the target to
// answer; App.SendTimeout overrides it per application.
const DefaultSendTimeout = 5 * time.Second

// registryEntries parses the root-window registry property: one Tcl list
// {xid name} per line.
func (app *App) registryEntries() ([][2]string, error) {
	rep, err := app.Disp.GetProperty(app.Disp.Root, app.atomRegistry, false)
	if err != nil {
		return nil, err
	}
	var entries [][2]string
	for _, line := range strings.Split(string(rep.Data), "\n") {
		if line == "" {
			continue
		}
		parts, err := tcl.ParseList(line)
		if err != nil || len(parts) != 2 {
			continue
		}
		entries = append(entries, [2]string{parts[0], parts[1]})
	}
	return entries, nil
}

// writeRegistry replaces the registry property.
func (app *App) writeRegistry(entries [][2]string) {
	var b strings.Builder
	for _, e := range entries {
		b.WriteString(tcl.FormatList([]string{e[0], e[1]}))
		b.WriteByte('\n')
	}
	app.Disp.ChangeProperty(app.Disp.Root, app.atomRegistry, xproto.AtomString, []byte(b.String()))
}

// registerName adds this application to the registry, uniquifying its
// name ("browse", "browse #2", ...) as Tk does.
func (app *App) registerName(want string) error {
	entries, err := app.registryEntries()
	if err != nil {
		return err
	}
	taken := make(map[string]bool, len(entries))
	for _, e := range entries {
		taken[e[1]] = true
	}
	name := want
	for n := 2; taken[name]; n++ {
		name = fmt.Sprintf("%s #%d", want, n)
	}
	app.Name = name
	entries = append(entries, [2]string{strconv.FormatUint(uint64(app.commWin), 10), name})
	app.writeRegistry(entries)
	app.registered = true
	// Sync so the registry write is applied at the server before this
	// application claims to exist; otherwise another client could look
	// us up in a stale registry.
	return app.Disp.Sync()
}

// unregisterName removes this application from the registry.
func (app *App) unregisterName() {
	if !app.registered || app.Disp.Closed() {
		return
	}
	app.registered = false
	app.pruneRegistryName(app.Name)
}

// pruneRegistryName removes one named entry from the send registry —
// our own on shutdown, or a vanished peer's when a send discovers its
// communication window is gone.
func (app *App) pruneRegistryName(name string) {
	entries, err := app.registryEntries()
	if err != nil {
		return
	}
	out := entries[:0]
	for _, e := range entries {
		if e[1] != name {
			out = append(out, e)
		}
	}
	app.writeRegistry(out)
	app.Disp.Flush()
}

// Interps lists the registered application names (winfo interps).
func (app *App) Interps() []string {
	entries, err := app.registryEntries()
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e[1])
	}
	return names
}

// lookupApp resolves an application name to its communication window.
func (app *App) lookupApp(name string) (xproto.ID, error) {
	entries, err := app.registryEntries()
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		if e[1] == name {
			xid, err := strconv.ParseUint(e[0], 10, 32)
			if err != nil {
				continue
			}
			return xproto.ID(xid), nil
		}
	}
	return 0, fmt.Errorf("no registered interpreter named %q", name)
}

// Send invokes a Tcl command in the named application and returns its
// result — the paper's remote procedure call. Sending to ourselves simply
// evaluates locally (as Tk does).
func (app *App) Send(target, script string) (string, error) {
	if target == app.Name {
		return app.Interp.Eval(script)
	}
	commXID, err := app.lookupApp(target)
	if err != nil {
		return "", err
	}
	app.sendSerial++
	serial := app.sendSerial
	payload := tcl.FormatList([]string{
		strconv.Itoa(serial),
		strconv.FormatUint(uint64(app.commWin), 10),
		script,
	}) + "\n"
	app.Disp.AppendProperty(commXID, app.atomSendCmd, xproto.AtomString, []byte(payload))
	if err := app.Disp.Flush(); err != nil {
		return "", err
	}
	// Pump events until the result arrives: the target may send us
	// commands of its own in the meantime (reentrancy), and we must keep
	// servicing them to avoid deadlock.
	timeout := app.SendTimeout
	if timeout <= 0 {
		timeout = DefaultSendTimeout
	}
	begin := time.Now()
	deadline := begin.Add(timeout)
	for {
		if res, ok := app.sendResults[serial]; ok {
			delete(app.sendResults, serial)
			// The histogram records only completed RPCs (success or
			// remote error), not timeouts.
			app.Metrics().Histogram("tk.send").Observe(time.Since(begin))
			if res.code != 0 {
				return "", &tcl.Error{Code: tcl.ErrorStatus, Msg: res.result}
			}
			return res.result, nil
		}
		if time.Now().After(deadline) {
			app.Metrics().Counter("tk.send.timeout").Inc()
			// Probe the target's communication window: a peer that
			// crashed or closed its display no longer has one (the server
			// destroys a departed client's windows), so distinguish "dead
			// and gone" from "alive but unresponsive" — and prune dead
			// peers from the registry so `winfo interps` stops listing
			// them and later sends fail fast.
			if _, gerr := app.Disp.GetGeometry(commXID); gerr != nil && !app.Disp.Closed() {
				app.pruneRegistryName(target)
				return "", fmt.Errorf("target application %q has exited (its communication window is gone); removed it from the registry", target)
			}
			return "", fmt.Errorf("target application %q did not respond within %v", target, timeout)
		}
		if app.Quitting() {
			return "", fmt.Errorf("application destroyed while waiting for send result")
		}
		app.pumpOnce()
	}
}

// handleCommEvent services PropertyNotify events on the communication
// window: incoming commands to execute, and results for our own sends.
func (app *App) handleCommEvent(ev *xproto.Event) {
	if ev.Type != xproto.PropertyNotify || ev.PropState != xproto.PropertyNewValue {
		return
	}
	switch ev.Atom {
	case app.atomSendCmd:
		rep, err := app.Disp.GetProperty(app.commWin, app.atomSendCmd, true)
		if err != nil || !rep.Found {
			return
		}
		for _, line := range strings.Split(string(rep.Data), "\n") {
			if line == "" {
				continue
			}
			parts, err := tcl.ParseList(line)
			if err != nil || len(parts) != 3 {
				continue
			}
			serial := parts[0]
			responder, err := strconv.ParseUint(parts[1], 10, 32)
			if err != nil {
				continue
			}
			result, evalErr := app.Interp.Eval(parts[2])
			code := "0"
			if evalErr != nil {
				code = "1"
				result = evalErr.Error()
			}
			resp := tcl.FormatList([]string{serial, code, result}) + "\n"
			app.Disp.AppendProperty(xproto.ID(responder), app.atomSendRes, xproto.AtomString, []byte(resp))
			app.Disp.Flush()
		}
	case app.atomSendRes:
		rep, err := app.Disp.GetProperty(app.commWin, app.atomSendRes, true)
		if err != nil || !rep.Found {
			return
		}
		for _, line := range strings.Split(string(rep.Data), "\n") {
			if line == "" {
				continue
			}
			parts, err := tcl.ParseList(line)
			if err != nil || len(parts) != 3 {
				continue
			}
			serial, err := strconv.Atoi(parts[0])
			if err != nil {
				continue
			}
			code, _ := strconv.Atoi(parts[1])
			app.sendResults[serial] = sendResult{code: code, result: parts[2]}
		}
	}
}
