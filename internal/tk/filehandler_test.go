package tk

import (
	"io"
	"testing"
	"time"
)

// TestFileHandler: lines from a pipe arrive as events in the loop (§3.2
// file events).
func TestFileHandler(t *testing.T) {
	app, _ := newTestApp(t)
	pr, pw := io.Pipe()
	var lines []string
	eof := false
	app.CreateFileHandler(pr, func(line string) {
		lines = append(lines, line)
	}, func() { eof = true })

	go func() {
		pw.Write([]byte("first\nsecond\n"))
		pw.Close()
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !eof && time.Now().Before(deadline) {
		app.DoOneEvent(true)
	}
	if len(lines) != 2 || lines[0] != "first" || lines[1] != "second" {
		t.Fatalf("lines = %v", lines)
	}
	if !eof {
		t.Fatal("EOF handler never ran")
	}
}

// TestStressManyWidgetsNoLeak: create and destroy a large interface
// repeatedly; the window table and binding table return to baseline.
func TestStressManyWidgetsNoLeak(t *testing.T) {
	app, _ := newTestApp(t)
	baselineWindows := len(app.windows)
	for round := 0; round < 5; round++ {
		mkWindow(t, app, ".holder", 10, 10)
		for i := 0; i < 40; i++ {
			path := ".holder.w" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			w := mkWindow(t, app, path, 20, 10)
			app.MustEval(`pack append .holder ` + path + ` {top}`)
			app.MustEval(`bind ` + path + ` <Enter> {set x 1}`)
			_ = w
		}
		app.MustEval(`pack append . .holder {top}`)
		app.Update()
		app.MustEval(`destroy .holder`)
		app.Update()
		if len(app.windows) != baselineWindows {
			t.Fatalf("round %d: window table has %d entries, want %d",
				round, len(app.windows), baselineWindows)
		}
		if len(app.bindings.byWindow) != 0 {
			t.Fatalf("round %d: %d binding tables leaked", round, len(app.bindings.byWindow))
		}
	}
	// The server agrees: only the main window and comm window remain.
	tree, err := app.Disp.QueryTree(app.Disp.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Children) != 2 {
		t.Fatalf("server has %d top-level windows, want 2", len(tree.Children))
	}
}

// TestManyTimersStress: a burst of timers all fire, in order, without
// leaking queue entries.
func TestManyTimersStress(t *testing.T) {
	app, _ := newTestApp(t)
	fired := 0
	for i := 0; i < 500; i++ {
		app.CreateTimerHandler(time.Duration(i%7)*time.Millisecond, func() { fired++ })
	}
	deadline := time.Now().Add(5 * time.Second)
	for fired < 500 && time.Now().Before(deadline) {
		app.DoOneEvent(true)
	}
	if fired != 500 {
		t.Fatalf("fired %d/500 timers", fired)
	}
	if app.timers.Len() != 0 {
		t.Fatalf("%d timers left in queue", app.timers.Len())
	}
}
