package tk

import (
	"fmt"
	"strings"
)

// The option database (§3.5) is Tk's version of the Xt resource manager:
// users put patterns like "*Button.background: red" in a .Xdefaults file
// (or add them with the option command), and widgets query the database
// when they configure themselves. Patterns name a path of window names or
// classes with tight (".") or loose ("*") bindings; more specific
// patterns and higher priorities win.

// Priority levels, as in Tk.
const (
	PrioWidgetDefault = 20
	PrioStartupFile   = 40
	PrioUserDefault   = 60
	PrioInteractive   = 80
)

type optComponent struct {
	loose bool // preceded by '*' rather than '.'
	name  string
}

type optEntry struct {
	pattern  string
	comps    []optComponent
	value    string
	priority int
	serial   int
}

type optionDB struct {
	entries []*optEntry
	serial  int
}

func newOptionDB() *optionDB { return &optionDB{} }

// parsePattern splits "*Button.background" into components.
func parsePattern(pattern string) ([]optComponent, error) {
	var comps []optComponent
	i := 0
	loose := false
	if i < len(pattern) && (pattern[i] == '*' || pattern[i] == '.') {
		loose = pattern[i] == '*'
		i++
	}
	start := i
	for i <= len(pattern) {
		if i == len(pattern) || pattern[i] == '.' || pattern[i] == '*' {
			name := pattern[start:i]
			if name == "" {
				return nil, fmt.Errorf("bad option pattern %q", pattern)
			}
			comps = append(comps, optComponent{loose: loose, name: name})
			if i == len(pattern) {
				break
			}
			loose = pattern[i] == '*'
			i++
			start = i
			continue
		}
		i++
	}
	if len(comps) == 0 {
		return nil, fmt.Errorf("bad option pattern %q", pattern)
	}
	return comps, nil
}

// Add inserts a pattern/value with a priority.
func (db *optionDB) Add(pattern, value string, priority int) error {
	comps, err := parsePattern(pattern)
	if err != nil {
		return err
	}
	db.serial++
	db.entries = append(db.entries, &optEntry{
		pattern: pattern, comps: comps, value: value,
		priority: priority, serial: db.serial,
	})
	return nil
}

// Clear removes all entries.
func (db *optionDB) Clear() { db.entries = nil; db.serial = 0 }

// ReadString loads .Xdefaults-format text: "pattern: value" lines, "!"
// comments.
func (db *optionDB) ReadString(text string, priority int) error {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "#") {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return fmt.Errorf("missing colon in options line %q", line)
		}
		pattern := strings.TrimSpace(line[:colon])
		value := strings.TrimSpace(line[colon+1:])
		if err := db.Add(pattern, value, priority); err != nil {
			return err
		}
	}
	return nil
}

// matchLevel describes what a pattern component matched at one key level,
// for specificity comparison (name beats class beats skipped).
const (
	matchSkip  = 0
	matchClass = 2
	matchName  = 3
)

// matchEntry tries to match an entry against key names/classes; on
// success it fills spec with the per-level match quality.
func matchEntry(comps []optComponent, names, classes []string, li int, spec []int) bool {
	if len(comps) == 0 {
		return li == len(names)
	}
	if li >= len(names) {
		return false
	}
	c := comps[0]
	tryAt := func(at int) bool {
		var quality int
		switch {
		case c.name == names[at]:
			quality = matchName
		case c.name == classes[at]:
			quality = matchClass
		case c.name == "?":
			quality = matchClass - 1
		default:
			return false
		}
		savedVals := make([]int, len(spec))
		copy(savedVals, spec)
		for i := li; i < at; i++ {
			spec[i] = matchSkip
		}
		spec[at] = quality
		if matchEntry(comps[1:], names, classes, at+1, spec) {
			return true
		}
		copy(spec, savedVals)
		return false
	}
	if !c.loose {
		return tryAt(li)
	}
	for at := li; at < len(names); at++ {
		if tryAt(at) {
			return true
		}
	}
	return false
}

// Get looks up the option (name, class) for a window. It builds the key
// path from the application name/class and the window path (§3.5) and
// returns the winning value ("" if no entry matches).
func (app *App) GetOption(w *Window, optName, optClass string) string {
	names := []string{app.Name}
	classes := []string{app.Main.Class}
	if w.Path != "." {
		parts := strings.Split(w.Path[1:], ".")
		cur := app.Main
		for _, p := range parts {
			var child *Window
			for _, ch := range cur.Children {
				if ch.Name == p {
					child = ch
					break
				}
			}
			names = append(names, p)
			if child != nil {
				classes = append(classes, child.Class)
				cur = child
			} else {
				classes = append(classes, "")
			}
		}
	}
	names = append(names, optName)
	classes = append(classes, optClass)

	var best *optEntry
	var bestSpec []int
	for _, e := range app.options.entries {
		spec := make([]int, len(names))
		if !matchEntry(e.comps, names, classes, 0, spec) {
			continue
		}
		if best == nil || betterEntry(e, spec, best, bestSpec) {
			best, bestSpec = e, spec
		}
	}
	if best == nil {
		return ""
	}
	return best.value
}

// betterEntry decides whether (e, spec) beats the current best: priority
// first, then per-level specificity left-to-right, then insertion order.
func betterEntry(e *optEntry, spec []int, best *optEntry, bestSpec []int) bool {
	if e.priority != best.priority {
		return e.priority > best.priority
	}
	for i := range spec {
		if spec[i] != bestSpec[i] {
			return spec[i] > bestSpec[i]
		}
	}
	return e.serial > best.serial
}

// AddOption adds an entry to the application's option database.
func (app *App) AddOption(pattern, value string, priority int) error {
	return app.options.Add(pattern, value, priority)
}
