package tk

import (
	"fmt"
	"strconv"

	"repro/internal/tcl"
)

// The configuration framework backs §4's widget option handling: each
// widget class declares a table of option specs (-background/-bg with
// database name "background", class "Background", and a default), and the
// intrinsics implement the creation-time parsing, option-database
// fallback, the "configure" introspection common to all widget commands,
// and typed accessors.

// OptionSpec declares one widget configuration option.
type OptionSpec struct {
	Name    string // command-line switch, e.g. "-background"
	DBName  string // option database name, e.g. "background"
	DBClass string // option database class, e.g. "Background"
	Default string // fallback when neither args nor database supply it
	Synonym string // when set, this spec is an alias for another switch
}

// ConfigValues holds a widget's current option settings, as strings (the
// Tcl value model).
type ConfigValues struct {
	specs  []OptionSpec
	values map[string]string
}

// NewConfigValues initializes storage for a spec table.
func NewConfigValues(specs []OptionSpec) *ConfigValues {
	return &ConfigValues{specs: specs, values: make(map[string]string, len(specs))}
}

// findSpec resolves a (possibly abbreviated or synonym) switch name.
func (cv *ConfigValues) findSpec(name string) (*OptionSpec, error) {
	var match *OptionSpec
	for i := range cv.specs {
		s := &cv.specs[i]
		if s.Name == name {
			match = s
			break
		}
	}
	if match == nil {
		// Unique-prefix abbreviation, as Tk allows.
		for i := range cv.specs {
			s := &cv.specs[i]
			if len(name) > 1 && len(name) < len(s.Name) && s.Name[:len(name)] == name {
				if match != nil {
					return nil, fmt.Errorf("ambiguous option %q", name)
				}
				match = s
			}
		}
	}
	if match == nil {
		return nil, fmt.Errorf("unknown option %q", name)
	}
	if match.Synonym != "" {
		return cv.findSpec(match.Synonym)
	}
	return match, nil
}

// ApplyDefaults fills every option from, in order of preference: the
// option database, then the spec default. Used at widget creation (§4:
// "For unspecified options, the widget checks in the option database for
// a value; if none is found then it uses a default").
func (cv *ConfigValues) ApplyDefaults(app *App, w *Window) {
	for i := range cv.specs {
		s := &cv.specs[i]
		if s.Synonym != "" {
			continue
		}
		if v := app.GetOption(w, s.DBName, s.DBClass); v != "" {
			cv.values[s.Name] = v
		} else {
			cv.values[s.Name] = s.Default
		}
	}
}

// ResourceNames scans the current values by option-database class and
// returns the textual color, font and cursor resources the widget will
// resolve — the input App.PrefetchResources pipelines into one flight
// before the widget's recompute path looks each one up in the caches.
func (cv *ConfigValues) ResourceNames() (colors, fonts, cursors []string) {
	for i := range cv.specs {
		s := &cv.specs[i]
		if s.Synonym != "" {
			continue
		}
		v := cv.values[s.Name]
		if v == "" {
			continue
		}
		switch s.DBClass {
		case "Background", "Foreground":
			colors = append(colors, v)
		case "Font":
			fonts = append(fonts, v)
		case "Cursor":
			cursors = append(cursors, v)
		}
	}
	return colors, fonts, cursors
}

// Set assigns one option by (possibly abbreviated) switch name.
func (cv *ConfigValues) Set(name, value string) error {
	s, err := cv.findSpec(name)
	if err != nil {
		return err
	}
	cv.values[s.Name] = value
	return nil
}

// ApplyArgs parses "-option value" pairs.
func (cv *ConfigValues) ApplyArgs(args []string) error {
	if len(args)%2 != 0 {
		return fmt.Errorf("value for %q missing", args[len(args)-1])
	}
	for i := 0; i < len(args); i += 2 {
		if err := cv.Set(args[i], args[i+1]); err != nil {
			return err
		}
	}
	return nil
}

// Get returns an option's current value.
func (cv *ConfigValues) Get(name string) string {
	s, err := cv.findSpec(name)
	if err != nil {
		return ""
	}
	return cv.values[s.Name]
}

// GetInt parses an option as an integer (with a fallback).
func (cv *ConfigValues) GetInt(name string, fallback int) int {
	v := cv.Get(name)
	if n, err := strconv.Atoi(v); err == nil {
		return n
	}
	return fallback
}

// GetBool parses an option as a boolean.
func (cv *ConfigValues) GetBool(name string) bool {
	switch cv.Get(name) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

// Describe returns the "configure" introspection for one option:
// {switch dbName dbClass default current} (or {switch synonym} for
// synonyms), exactly the tuple Tk reports.
func (cv *ConfigValues) Describe(name string) (string, error) {
	var raw *OptionSpec
	for i := range cv.specs {
		if cv.specs[i].Name == name {
			raw = &cv.specs[i]
			break
		}
	}
	if raw == nil {
		s, err := cv.findSpec(name)
		if err != nil {
			return "", err
		}
		raw = s
	}
	if raw.Synonym != "" {
		return tcl.FormatList([]string{raw.Name, raw.Synonym}), nil
	}
	return tcl.FormatList([]string{raw.Name, raw.DBName, raw.DBClass, raw.Default, cv.values[raw.Name]}), nil
}

// DescribeAll returns the full configure listing.
func (cv *ConfigValues) DescribeAll() string {
	var out []string
	for i := range cv.specs {
		d, err := cv.Describe(cv.specs[i].Name)
		if err == nil {
			out = append(out, d)
		}
	}
	return tcl.FormatList(out)
}

// HandleConfigure implements the shared "<widget> configure ..." protocol
// for widget commands: no extra args lists everything, one arg describes
// an option, pairs assign. changed is called after assignments so the
// widget can recompute and redraw.
func HandleConfigure(cv *ConfigValues, args []string, changed func() error) (string, error) {
	switch {
	case len(args) == 0:
		return cv.DescribeAll(), nil
	case len(args) == 1:
		return cv.Describe(args[0])
	default:
		if err := cv.ApplyArgs(args); err != nil {
			return "", err
		}
		if changed != nil {
			if err := changed(); err != nil {
				return "", err
			}
		}
		return "", nil
	}
}
