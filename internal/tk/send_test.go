package tk

import (
	"strings"
	"testing"

	"repro/internal/xclient"
	"repro/internal/xserver"
)

// mkPair builds two apps on one shared server.
func mkPair(t *testing.T, name1, name2 string) (*App, *App) {
	t.Helper()
	srv := xserver.New(800, 600)
	t.Cleanup(srv.Close)
	mk := func(name string) *App {
		d, err := xclient.Open(srv.ConnectPipe())
		if err != nil {
			t.Fatal(err)
		}
		app, err := NewApp(d, Config{Name: name})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(app.Destroy)
		return app
	}
	return mk(name1), mk(name2)
}

// TestReentrantSend has A send to B a command that itself sends back to
// A: the pump loop in Send must keep servicing incoming commands while
// waiting for its own result, or this deadlocks.
func TestReentrantSend(t *testing.T) {
	a, b := mkPair(t, "a", "b")
	a.MustEval(`proc fromB {} {return "A answered"}`)
	b.MustEval(`proc relay {} {
		set inner [send a fromB]
		return "B got: $inner"
	}`)
	stop := b.StartServing()
	defer stop()
	got, err := a.Send("b", "relay")
	if err != nil {
		t.Fatalf("reentrant send: %v", err)
	}
	if got != "B got: A answered" {
		t.Fatalf("reentrant send result = %q", got)
	}
}

// TestSendResultTypes checks multi-word and special-character results
// survive the property encoding.
func TestSendResultTypes(t *testing.T) {
	a, b := mkPair(t, "a", "b")
	b.MustEval(`proc weird {} {return "braces {inside} and \[brackets\] and \$dollar"}`)
	stop := b.StartServing()
	defer stop()
	got, err := a.Send("b", "weird")
	if err != nil {
		t.Fatal(err)
	}
	if got != `braces {inside} and [brackets] and $dollar` {
		t.Fatalf("result = %q", got)
	}
}

// TestSendToDeadApp: after an application is destroyed, sends to it fail
// with an unknown-interpreter error (the registry is cleaned up).
func TestSendToDeadApp(t *testing.T) {
	a, b := mkPair(t, "a", "b")
	b.Destroy()
	a.Update()
	if _, err := a.Send("b", "set x"); err == nil ||
		!strings.Contains(err.Error(), "no registered interpreter") {
		t.Fatalf("send to dead app: %v", err)
	}
}

// TestSendErrorCarriesMessage: a Tcl error in the target comes back as
// the sender's error with the target's message.
func TestSendErrorCarriesMessage(t *testing.T) {
	a, b := mkPair(t, "a", "b")
	b.MustEval(`proc boom {} {error "exploded in target"}`)
	stop := b.StartServing()
	defer stop()
	_, err := a.Send("b", "boom")
	if err == nil || err.Error() != "exploded in target" {
		t.Fatalf("error = %v", err)
	}
}

// TestConcurrentSendsInterleaved: several sends in sequence from both
// directions, with each side serving between calls.
func TestSendBothDirections(t *testing.T) {
	a, b := mkPair(t, "a", "b")
	a.MustEval(`set who A`)
	b.MustEval(`set who B`)

	stopB := b.StartServing()
	got1, err1 := a.Send("b", "set who")
	stopB()
	stopA := a.StartServing()
	got2, err2 := b.Send("a", "set who")
	stopA()
	if err1 != nil || got1 != "B" {
		t.Fatalf("a→b: %q %v", got1, err1)
	}
	if err2 != nil || got2 != "A" {
		t.Fatalf("b→a: %q %v", got2, err2)
	}
}

// TestServerDisconnectCleansRegistry: when a client's connection drops
// without a clean Destroy (a crash), the server destroys its windows; the
// registry entry goes stale but a later send fails rather than hanging
// forever (timeout or missing comm window).
func TestCrashLeavesOthersWorking(t *testing.T) {
	srv := xserver.New(800, 600)
	defer srv.Close()
	d1, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	app1, err := NewApp(d1, Config{Name: "stable"})
	if err != nil {
		t.Fatal(err)
	}
	defer app1.Destroy()

	d2, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	app2, err := NewApp(d2, Config{Name: "crasher"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app2.CreateWindow(".w", "Frame"); err != nil {
		t.Fatal(err)
	}
	app2.Update()

	// Simulate a crash: close the socket without unregistering.
	d2.Close()

	// The survivor keeps working.
	if _, err := app1.CreateWindow(".b", "Frame"); err != nil {
		t.Fatal(err)
	}
	app1.Update()
	if !app1.WindowExists(".b") {
		t.Fatal("survivor lost its windows")
	}
	if _, err := app1.Interp.Eval(`winfo interps`); err != nil {
		t.Fatalf("winfo interps after crash: %v", err)
	}
}
