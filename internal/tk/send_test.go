package tk

import (
	"strings"
	"testing"
	"time"

	"repro/internal/xclient"
	"repro/internal/xserver"
)

// mkPair builds two apps on one shared server.
func mkPair(t *testing.T, name1, name2 string) (*App, *App) {
	t.Helper()
	srv := xserver.New(800, 600)
	t.Cleanup(srv.Close)
	mk := func(name string) *App {
		d, err := xclient.Open(srv.ConnectPipe())
		if err != nil {
			t.Fatal(err)
		}
		app, err := NewApp(d, Config{Name: name})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(app.Destroy)
		return app
	}
	return mk(name1), mk(name2)
}

// TestReentrantSend has A send to B a command that itself sends back to
// A: the pump loop in Send must keep servicing incoming commands while
// waiting for its own result, or this deadlocks.
func TestReentrantSend(t *testing.T) {
	a, b := mkPair(t, "a", "b")
	a.MustEval(`proc fromB {} {return "A answered"}`)
	b.MustEval(`proc relay {} {
		set inner [send a fromB]
		return "B got: $inner"
	}`)
	stop := b.StartServing()
	defer stop()
	got, err := a.Send("b", "relay")
	if err != nil {
		t.Fatalf("reentrant send: %v", err)
	}
	if got != "B got: A answered" {
		t.Fatalf("reentrant send result = %q", got)
	}
}

// TestSendResultTypes checks multi-word and special-character results
// survive the property encoding.
func TestSendResultTypes(t *testing.T) {
	a, b := mkPair(t, "a", "b")
	b.MustEval(`proc weird {} {return "braces {inside} and \[brackets\] and \$dollar"}`)
	stop := b.StartServing()
	defer stop()
	got, err := a.Send("b", "weird")
	if err != nil {
		t.Fatal(err)
	}
	if got != `braces {inside} and [brackets] and $dollar` {
		t.Fatalf("result = %q", got)
	}
}

// TestSendToDeadApp: after an application is destroyed, sends to it fail
// with an unknown-interpreter error (the registry is cleaned up).
func TestSendToDeadApp(t *testing.T) {
	a, b := mkPair(t, "a", "b")
	b.Destroy()
	a.Update()
	if _, err := a.Send("b", "set x"); err == nil ||
		!strings.Contains(err.Error(), "no registered interpreter") {
		t.Fatalf("send to dead app: %v", err)
	}
}

// TestSendErrorCarriesMessage: a Tcl error in the target comes back as
// the sender's error with the target's message.
func TestSendErrorCarriesMessage(t *testing.T) {
	a, b := mkPair(t, "a", "b")
	b.MustEval(`proc boom {} {error "exploded in target"}`)
	stop := b.StartServing()
	defer stop()
	_, err := a.Send("b", "boom")
	if err == nil || err.Error() != "exploded in target" {
		t.Fatalf("error = %v", err)
	}
}

// TestConcurrentSendsInterleaved: several sends in sequence from both
// directions, with each side serving between calls.
func TestSendBothDirections(t *testing.T) {
	a, b := mkPair(t, "a", "b")
	a.MustEval(`set who A`)
	b.MustEval(`set who B`)

	stopB := b.StartServing()
	got1, err1 := a.Send("b", "set who")
	stopB()
	stopA := a.StartServing()
	got2, err2 := b.Send("a", "set who")
	stopA()
	if err1 != nil || got1 != "B" {
		t.Fatalf("a→b: %q %v", got1, err1)
	}
	if err2 != nil || got2 != "A" {
		t.Fatalf("b→a: %q %v", got2, err2)
	}
}

// TestServerDisconnectCleansRegistry: when a client's connection drops
// without a clean Destroy (a crash), the server destroys its windows; the
// registry entry goes stale but a later send fails rather than hanging
// forever (timeout or missing comm window).
func TestCrashLeavesOthersWorking(t *testing.T) {
	srv := xserver.New(800, 600)
	defer srv.Close()
	d1, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	app1, err := NewApp(d1, Config{Name: "stable"})
	if err != nil {
		t.Fatal(err)
	}
	defer app1.Destroy()

	d2, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	app2, err := NewApp(d2, Config{Name: "crasher"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app2.CreateWindow(".w", "Frame"); err != nil {
		t.Fatal(err)
	}
	app2.Update()

	// Simulate a crash: close the socket without unregistering.
	d2.Close()

	// The survivor keeps working.
	if _, err := app1.CreateWindow(".b", "Frame"); err != nil {
		t.Fatal(err)
	}
	app1.Update()
	if !app1.WindowExists(".b") {
		t.Fatal("survivor lost its windows")
	}
	if _, err := app1.Interp.Eval(`winfo interps`); err != nil {
		t.Fatalf("winfo interps after crash: %v", err)
	}
}

// TestSendToVanishedPeerPrunesRegistry: a peer that crashed (connection
// dropped, no clean unregister) leaves a stale registry entry. A send to
// it must come back within the deadline with a clear error, and the
// stale entry must be pruned so winfo interps stops listing it.
func TestSendToVanishedPeerPrunesRegistry(t *testing.T) {
	srv := xserver.New(800, 600)
	defer srv.Close()
	mk := func(name string) *App {
		d, err := xclient.Open(srv.ConnectPipe())
		if err != nil {
			t.Fatal(err)
		}
		app, err := NewApp(d, Config{Name: name})
		if err != nil {
			t.Fatal(err)
		}
		return app
	}
	a := mk("alpha")
	defer a.Destroy()
	ghost := mk("ghost")

	// Crash the peer: the server destroys its windows (including the
	// communication window) but the registry entry survives.
	ghost.Disp.Close()

	a.SendTimeout = 300 * time.Millisecond
	begin := time.Now()
	_, err := a.Send("ghost", "set x 1")
	elapsed := time.Since(begin)
	if err == nil {
		t.Fatal("send to vanished peer should fail")
	}
	if !strings.Contains(err.Error(), "has exited") {
		t.Fatalf("want a gone-peer error, got: %v", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("send took %v; deadline was 300ms", elapsed)
	}
	// The stale entry is pruned: winfo interps no longer lists it, and
	// the next send fails fast with unknown-interpreter.
	for _, name := range a.Interps() {
		if name == "ghost" {
			t.Fatal("vanished peer still in registry after pruning")
		}
	}
	if _, err := a.Send("ghost", "set x"); err == nil ||
		!strings.Contains(err.Error(), "no registered interpreter") {
		t.Fatalf("second send: %v", err)
	}
}

// TestSendToUnresponsivePeerTimesOut: a peer that is alive (connection
// up, comm window present) but never serving its event loop produces a
// plain timeout error and is NOT pruned — it may just be busy.
func TestSendToUnresponsivePeerTimesOut(t *testing.T) {
	a, b := mkPair(t, "alpha", "beta")
	_ = b // registered but never StartServing: alive yet unresponsive.

	a.SendTimeout = 300 * time.Millisecond
	begin := time.Now()
	_, err := a.Send("beta", "set x 1")
	if err == nil || !strings.Contains(err.Error(), "did not respond within") {
		t.Fatalf("want timeout error, got: %v", err)
	}
	if elapsed := time.Since(begin); elapsed > 3*time.Second {
		t.Fatalf("send took %v; deadline was 300ms", elapsed)
	}
	found := false
	for _, name := range a.Interps() {
		if name == "beta" {
			found = true
		}
	}
	if !found {
		t.Fatal("alive-but-busy peer must stay registered")
	}
}
