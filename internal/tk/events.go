package tk

import (
	"bufio"
	"container/heap"
	"io"
	"time"

	"repro/internal/obs/trace"
	"repro/internal/xproto"
)

// The Tk dispatcher supports X events, file events, timer events, and
// when-idle events (§3.2). Timers are a heap; idle handlers a FIFO; file
// events arrive via Post (any goroutine may post work into the loop).

type timerEntry struct {
	when time.Time
	fn   func()
	id   int
	seq  int
}

type timerQueue struct {
	entries []*timerEntry
	nextID  int
	nextSeq int
	byID    map[int]*timerEntry
}

func newTimerQueue() *timerQueue {
	return &timerQueue{byID: make(map[int]*timerEntry)}
}

func (q *timerQueue) Len() int { return len(q.entries) }
func (q *timerQueue) Less(i, j int) bool {
	if q.entries[i].when.Equal(q.entries[j].when) {
		return q.entries[i].seq < q.entries[j].seq
	}
	return q.entries[i].when.Before(q.entries[j].when)
}
func (q *timerQueue) Swap(i, j int) { q.entries[i], q.entries[j] = q.entries[j], q.entries[i] }
func (q *timerQueue) Push(x any)    { q.entries = append(q.entries, x.(*timerEntry)) }
func (q *timerQueue) Pop() any {
	old := q.entries
	n := len(old)
	e := old[n-1]
	q.entries = old[:n-1]
	return e
}

// CreateTimerHandler schedules fn to run once after d, returning a handle
// usable with DeleteTimerHandler.
func (app *App) CreateTimerHandler(d time.Duration, fn func()) int {
	q := app.timers
	q.nextID++
	q.nextSeq++
	e := &timerEntry{when: time.Now().Add(d), fn: fn, id: q.nextID, seq: q.nextSeq}
	q.byID[e.id] = e
	heap.Push(q, e)
	app.Metrics().Gauge("tk.timers.depth").Set(int64(len(q.byID)))
	return e.id
}

// DeleteTimerHandler cancels a pending timer.
func (app *App) DeleteTimerHandler(id int) {
	if e, ok := app.timers.byID[id]; ok {
		e.fn = nil // cancelled; skipped when popped
		delete(app.timers.byID, id)
		app.Metrics().Gauge("tk.timers.depth").Set(int64(len(app.timers.byID)))
	}
}

// DoWhenIdle queues fn to run when no other events are pending (§3.2's
// when-idle handlers).
func (app *App) DoWhenIdle(fn func()) {
	app.idle = append(app.idle, fn)
	app.Metrics().Gauge("tk.idle.depth").Set(int64(len(app.idle)))
}

// Post delivers fn into the event loop from any goroutine: the toolkit's
// file-event mechanism (wish posts lines read from stdin this way).
func (app *App) Post(fn func()) {
	app.posted <- fn
}

// CreateFileHandler is §3.2's file-event mechanism: fn runs inside the
// event loop with each line read from r; atEOF (optional) runs when the
// source is exhausted. A goroutine owns the blocking reads; the handler
// itself always executes in the event loop, so it may touch windows and
// the interpreter freely. wish uses this for its stdin command loop.
func (app *App) CreateFileHandler(r io.Reader, fn func(line string), atEOF func()) {
	go func() {
		scanner := bufio.NewScanner(r)
		scanner.Buffer(make([]byte, 1<<20), 1<<20)
		for scanner.Scan() {
			line := scanner.Text()
			app.Post(func() { fn(line) })
		}
		if atEOF != nil {
			app.Post(atEOF)
		}
	}()
}

// runDueTimers fires all expired timers; it reports whether any ran.
func (app *App) runDueTimers() bool {
	ran := false
	now := time.Now()
	q := app.timers
	for q.Len() > 0 && !q.entries[0].when.After(now) {
		e := heap.Pop(q).(*timerEntry)
		delete(q.byID, e.id)
		if e.fn != nil {
			e.fn()
			ran = true
		}
	}
	if ran {
		app.Metrics().Gauge("tk.timers.depth").Set(int64(len(q.byID)))
	}
	return ran
}

// runIdle runs the currently queued idle handlers (but not ones they
// enqueue); it reports whether any ran.
func (app *App) runIdle() bool {
	if len(app.idle) == 0 {
		return false
	}
	batch := app.idle
	app.idle = nil
	app.Metrics().Gauge("tk.idle.depth").Set(0)
	for _, fn := range batch {
		fn() // may call DoWhenIdle, which updates the gauge again
	}
	return true
}

// DoOneEvent processes one round of events. With wait=false it returns
// immediately when nothing is pending. It reports whether any work was
// done.
func (app *App) DoOneEvent(wait bool) bool {
	app.Disp.Flush()

	// 1. Already-queued X events and posted work.
	select {
	case ev, ok := <-app.Disp.Events():
		if !ok {
			app.quitFlag.Store(true)
			return false
		}
		app.evReceived++
		app.DispatchEvent(&ev)
		return true
	case fn := <-app.posted:
		fn()
		return true
	default:
	}
	// An event the read loop has queued but the feeder goroutine has not
	// yet parked on the channel is still pending work: the non-blocking
	// poll above races the feeder and can miss it, which would break
	// Update's "Sync ⇒ events dispatched" contract. The counter
	// comparison is race-free (see Display.EventsSeen), so when it shows
	// an event in flight this blocking receive returns promptly — the
	// feeder delivers it, or closes the channel on disconnect.
	if app.evReceived < app.Disp.EventsSeen() {
		ev, ok := <-app.Disp.Events()
		if !ok {
			app.quitFlag.Store(true)
			return false
		}
		app.evReceived++
		app.DispatchEvent(&ev)
		return true
	}
	// 2. Expired timers.
	if app.runDueTimers() {
		return true
	}
	// 3. Idle handlers.
	if app.runIdle() {
		return true
	}
	if !wait {
		return false
	}
	// 4. Block for the next source.
	var timerCh <-chan time.Time
	if app.timers.Len() > 0 {
		d := time.Until(app.timers.entries[0].when)
		if d < 0 {
			d = 0
		}
		t := time.NewTimer(d)
		defer t.Stop()
		timerCh = t.C
	}
	select {
	case ev, ok := <-app.Disp.Events():
		if !ok {
			app.quitFlag.Store(true)
			return false
		}
		app.evReceived++
		app.DispatchEvent(&ev)
		return true
	case fn := <-app.posted:
		fn()
		return true
	case <-timerCh:
		return app.runDueTimers()
	}
}

// MainLoop runs the dispatcher until Quit or destruction of the main
// window.
func (app *App) MainLoop() {
	for !app.Quitting() {
		app.DoOneEvent(true)
	}
	app.Disp.Flush()
}

// StartServing pumps the application's event loop in a background
// goroutine, blocking (not spinning) between events. It exists for tests,
// benchmarks and examples that run several applications in one process —
// each real application would run MainLoop in its own process. The
// returned function stops the pump and waits for it to finish; the
// application remains usable afterwards.
func (app *App) StartServing() (stop func()) {
	ch := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ch:
				return
			default:
			}
			if app.Quitting() {
				return
			}
			app.DoOneEvent(true)
		}
	}()
	return func() {
		close(ch)
		app.Post(func() {}) // wake the blocked DoOneEvent
		<-done
	}
}

// Update processes all pending events, timers and idle handlers without
// waiting: the "update" Tcl command. Each round begins with a server sync
// so that every event caused by our own earlier requests (including those
// issued from idle handlers in the previous round) has arrived before we
// decide we are done.
func (app *App) Update() {
	for {
		if err := app.Disp.Sync(); err != nil {
			return
		}
		if !app.DoOneEvent(false) {
			return
		}
		for app.DoOneEvent(false) {
			if app.Quitting() {
				return
			}
		}
	}
}

// UpdateIdleTasks runs only the idle queue (update idletasks): display
// refresh without processing input.
func (app *App) UpdateIdleTasks() {
	for app.runIdle() {
	}
	app.Disp.Flush()
}

// DispatchEvent routes one X event: structure bookkeeping, C-level
// handlers, then Tcl bindings.
func (app *App) DispatchEvent(ev *xproto.Event) {
	m := app.Metrics()
	m.Counter("tk.events").Inc()
	begin := time.Now()
	defer func() { m.Histogram("tk.dispatch").Observe(time.Since(begin)) }()
	if tr := app.Spans; tr != nil {
		// Events have no protocol sequence number on this side, so the
		// toolkit samples on its own dispatch counter; the span's start
		// time places it on the shared timeline next to whatever requests
		// the handlers issue.
		app.evSpanSeq++
		if tr.Sampled(app.evSpanSeq) {
			seq := app.evSpanSeq
			op := xproto.EventTypeName(int(ev.Type))
			defer func() {
				tr.Record(trace.Span{
					Seq: seq, Name: "tk.event", Side: "tk", Op: op,
					Start: begin.UnixNano(), Dur: int64(time.Since(begin)),
				})
				m.Counter("trace.spans").Inc()
			}()
		}
	}
	w, ok := app.xidMap[ev.Window]
	if !ok {
		// Events for the comm window drive the send protocol.
		if ev.Window == app.commWin {
			app.handleCommEvent(ev)
		}
		return
	}
	// Selection protocol events are handled by the intrinsics (§3.6).
	switch ev.Type {
	case xproto.SelectionRequest:
		app.handleSelectionRequest(ev)
		return
	case xproto.SelectionClear:
		app.handleSelectionClear(ev)
		return
	case xproto.SelectionNotify:
		app.sel().notify = ev
		return
	}

	// Keep the structure cache current (§3.3).
	switch ev.Type {
	case xproto.ConfigureNotify:
		sizeChanged := int(ev.Width) != w.Width || int(ev.Height) != w.Height
		w.X, w.Y = int(ev.X), int(ev.Y)
		w.Width, w.Height = int(ev.Width), int(ev.Height)
		// The server's notify can carry a size that differs from the
		// optimistic cache (it reports configures in request order, so a
		// notify for an older configure may land after a newer local
		// resize). Any slaves laid out against the overwritten size are
		// now stale: re-arrange, exactly as Tk's packer does on its
		// master's ConfigureNotify. The repack is idempotent, so the
		// layout converges once the final notify arrives.
		if sizeChanged {
			if packer := app.packerFor(w); packer != nil {
				packer.scheduleRepack(w)
			}
		}
	case xproto.MapNotify:
		w.Mapped = true
	case xproto.UnmapNotify:
		w.Mapped = false
	case xproto.DestroyNotify:
		// Server-initiated destruction (e.g. another client); tear down
		// our bookkeeping if we did not initiate it.
		if !w.Destroyed {
			app.DestroyWindow(w)
			return
		}
	}

	// C-level handlers.
	mask := xproto.EventMaskFor(int(ev.Type))
	if ev.Type == xproto.MotionNotify && ev.State&(xproto.Button1Mask|
		xproto.Button2Mask|xproto.Button3Mask|xproto.Button4Mask|xproto.Button5Mask) != 0 {
		mask |= xproto.ButtonMotionMask
	}
	for _, h := range w.handlers {
		if h.mask&mask != 0 || mask == 0 {
			h.fn(ev)
			if w.Destroyed {
				return
			}
		}
	}

	// Tcl bindings.
	app.bindings.trigger(app, w, ev)
}
