package tk

import "testing"

// Satellite regression: Color() used to store the reverse mapping under
// the caller's original casing while the forward cache was keyed
// lowercase, so NameOfColor could disagree with the cache key. Both maps
// now share the canonical lowercase key.
func TestColorCanonicalization(t *testing.T) {
	app, _ := newTestApp(t)
	misses := app.Metrics().Counter("tk.cache.color.misses")
	before := misses.Value()

	px, err := app.Color("MediumSeaGreen")
	if err != nil {
		t.Fatal(err)
	}
	if got := app.NameOfColor(px); got != "mediumseagreen" {
		t.Fatalf("NameOfColor = %q, want canonical %q", got, "mediumseagreen")
	}
	if _, ok := app.colorCache["mediumseagreen"]; !ok {
		t.Fatal("colorCache missing canonical key")
	}
	// Any casing of the same name is a cache hit, not a new allocation.
	for _, name := range []string{"MEDIUMSEAGREEN", "mediumseagreen", "MediumSeaGreen"} {
		px2, err := app.Color(name)
		if err != nil {
			t.Fatal(err)
		}
		if px2 != px {
			t.Fatalf("Color(%q) = %#x, want %#x", name, px2, px)
		}
	}
	if got := misses.Value() - before; got != 1 {
		t.Fatalf("color cache misses = %d, want 1", got)
	}
}

// PrefetchResources must fill the same caches, under the same canonical
// keys, as the per-name accessors — and make the follow-up lookups hits.
func TestPrefetchResources(t *testing.T) {
	app, _ := newTestApp(t)
	colorMisses := app.Metrics().Counter("tk.cache.color.misses")
	fontMisses := app.Metrics().Counter("tk.cache.font.misses")
	cursorMisses := app.Metrics().Counter("tk.cache.cursor.misses")
	cm, fm, um := colorMisses.Value(), fontMisses.Value(), cursorMisses.Value()

	// Duplicate names (differing only in case, for colors) collapse to
	// one fetch each.
	app.PrefetchResources(
		[]string{"SteelBlue", "steelblue", "Bisque1", ""},
		[]string{"fixed", "fixed"},
		[]string{"arrow", "arrow", ""},
	)

	if got := colorMisses.Value() - cm; got != 2 {
		t.Fatalf("prefetch color misses = %d, want 2", got)
	}
	if got := fontMisses.Value() - fm; got != 1 {
		t.Fatalf("prefetch font misses = %d, want 1", got)
	}
	if got := cursorMisses.Value() - um; got != 1 {
		t.Fatalf("prefetch cursor misses = %d, want 1", got)
	}

	// Everything the prefetch fetched is now a hit via the accessors.
	px, err := app.Color("STEELBLUE")
	if err != nil {
		t.Fatal(err)
	}
	if got := app.NameOfColor(px); got != "steelblue" {
		t.Fatalf("NameOfColor = %q, want %q", got, "steelblue")
	}
	if _, err := app.FontByName("fixed"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Cursor("arrow"); err != nil {
		t.Fatal(err)
	}
	if got := colorMisses.Value() - cm; got != 2 {
		t.Fatalf("post-prefetch color misses = %d, want 2 (lookups should hit)", got)
	}
	if got := fontMisses.Value() - fm; got != 1 {
		t.Fatalf("post-prefetch font misses = %d, want 1 (lookup should hit)", got)
	}
	if got := cursorMisses.Value() - um; got != 1 {
		t.Fatalf("post-prefetch cursor misses = %d, want 1 (lookup should hit)", got)
	}

	// A second prefetch of the same names is a no-op.
	app.PrefetchResources([]string{"SteelBlue"}, []string{"fixed"}, []string{"arrow"})
	if got := colorMisses.Value() - cm; got != 2 {
		t.Fatalf("re-prefetch color misses = %d, want 2", got)
	}
}
