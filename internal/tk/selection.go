package tk

import (
	"fmt"
	"time"

	"repro/internal/xproto"
)

// Selection support (§3.6): Tk implements the ICCCM selection protocols
// and hides their details. A widget that supports the selection registers
// a selection handler; claiming the selection notifies the previous owner
// (possibly in another application) via the server; retrieving it either
// short-circuits within the application or performs the full ICCCM
// ConvertSelection / SelectionNotify / property dance.

// selHandlers is stored on App lazily.
type selState struct {
	handlers map[*Window]func() string
	notify   *xproto.Event // most recent SelectionNotify, consumed by Get
}

func (app *App) sel() *selState {
	if app.selStatePtr == nil {
		app.selStatePtr = &selState{handlers: make(map[*Window]func() string)}
	}
	return app.selStatePtr
}

// SetSelectionHandler registers the procedure Tk calls to retrieve the
// selection when win owns it (§3.6's "selection handler").
func (app *App) SetSelectionHandler(win *Window, fn func() string) {
	app.sel().handlers[win] = fn
}

// OwnSelection claims the PRIMARY selection for win. lost is invoked if
// some other widget (possibly in another application) later claims it.
// When another window of this same application held the selection, its
// lost callback runs immediately (as in Tk_OwnSelection): the server's
// SelectionClear would arrive after the local owner has already changed.
func (app *App) OwnSelection(win *Window, lost func(win *Window)) {
	if old := app.selOwner; old != nil && old != win && app.selLost != nil {
		app.selLost(old)
	}
	app.selOwner = win
	app.selLost = lost
	app.Disp.SetSelectionOwner(xproto.AtomPrimary, win.XID, 0)
}

// ClearSelection gives up the selection if win owns it.
func (app *App) ClearSelection(win *Window) {
	if app.selOwner == win {
		app.selOwner = nil
		app.Disp.SetSelectionOwner(xproto.AtomPrimary, xproto.None, 0)
	}
}

// SelectionOwnerWindow returns the window in this application that owns
// the selection, or nil.
func (app *App) SelectionOwnerWindow() *Window { return app.selOwner }

// handleSelectionRequest services an ICCCM SelectionRequest event: call
// the owner's selection handler and hand the result to the requestor.
func (app *App) handleSelectionRequest(ev *xproto.Event) {
	w := app.xidMap[ev.Window]
	refuse := func() {
		app.Disp.SendEvent(ev.Requestor, 0, &xproto.Event{
			Type:      xproto.SelectionNotify,
			Requestor: ev.Requestor,
			Selection: ev.Selection,
			Target:    ev.Target,
			Property:  xproto.AtomNone,
			Time:      ev.Time,
		})
		app.Disp.Flush()
	}
	if w == nil {
		refuse()
		return
	}
	handler := app.sel().handlers[w]
	if handler == nil {
		refuse()
		return
	}
	value := handler()
	app.Disp.ChangeProperty(ev.Requestor, ev.Property, xproto.AtomString, []byte(value))
	app.Disp.SendEvent(ev.Requestor, 0, &xproto.Event{
		Type:      xproto.SelectionNotify,
		Requestor: ev.Requestor,
		Selection: ev.Selection,
		Target:    ev.Target,
		Property:  ev.Property,
		Time:      ev.Time,
	})
	app.Disp.Flush()
}

// handleSelectionClear processes loss of ownership.
func (app *App) handleSelectionClear(ev *xproto.Event) {
	w := app.xidMap[ev.Window]
	if w != nil && app.selOwner == w {
		app.selOwner = nil
		if app.selLost != nil {
			app.selLost(w)
		}
	}
}

// GetSelection retrieves the current PRIMARY selection as a string. When
// the owner lives in this application the handler is called directly;
// otherwise the ICCCM protocol runs against the current owner, pumping
// the event loop until the answer arrives.
func (app *App) GetSelection() (string, error) {
	if app.selOwner != nil {
		if h := app.sel().handlers[app.selOwner]; h != nil {
			return h(), nil
		}
	}
	// Ask the server who owns it; none means no selection.
	owner, err := app.Disp.GetSelectionOwner(xproto.AtomPrimary)
	if err != nil {
		return "", err
	}
	if owner == xproto.None {
		return "", fmt.Errorf("PRIMARY selection doesn't exist or form \"STRING\" not defined")
	}
	app.sel().notify = nil
	app.Disp.ConvertSelection(xproto.AtomPrimary, xproto.AtomString,
		app.atomSelProp, app.Main.XID, 0)
	app.Disp.Flush()
	deadline := time.Now().Add(2 * time.Second)
	for app.sel().notify == nil {
		if time.Now().After(deadline) {
			return "", fmt.Errorf("selection owner didn't respond")
		}
		app.pumpOnce()
	}
	ev := app.sel().notify
	app.sel().notify = nil
	if ev.Property == xproto.AtomNone {
		return "", fmt.Errorf("PRIMARY selection doesn't exist or form \"STRING\" not defined")
	}
	rep, err := app.Disp.GetProperty(app.Main.XID, ev.Property, true)
	if err != nil {
		return "", err
	}
	if !rep.Found {
		return "", fmt.Errorf("selection property was empty")
	}
	return string(rep.Data), nil
}

// pumpOnce runs one bounded event-loop step while waiting for a protocol
// answer (selection or send), keeping the application responsive to
// reentrant requests.
func (app *App) pumpOnce() {
	app.Disp.Flush()
	select {
	case ev, ok := <-app.Disp.Events():
		if !ok {
			app.quitFlag.Store(true)
			return
		}
		app.evReceived++
		app.DispatchEvent(&ev)
	case fn := <-app.posted:
		fn()
	case <-time.After(10 * time.Millisecond):
		app.runDueTimers()
	}
}
