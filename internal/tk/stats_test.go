package tk

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/trace"
	"repro/internal/obs/xtrace"
	"repro/internal/xclient"
	"repro/internal/xserver"
)

// statsApp builds an app returning the private server too (so tests can
// set its simulated latency) and optionally a wire tracer.
func statsApp(t *testing.T, trace bool) (*App, *xserver.Server, *xtrace.Tracer) {
	t.Helper()
	srv := xserver.New(640, 480)
	t.Cleanup(srv.Close)
	conn := srv.ConnectPipe()
	var tr *xtrace.Tracer
	if trace {
		tr = xtrace.New(256)
		conn = tr.Tap(conn)
	}
	d, err := xclient.Open(conn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	app, err := NewApp(d, Config{Name: "stats", Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Destroy)
	return app, srv, tr
}

// counterFromTkstats extracts one counter's value from "tkstats
// counters" output ("name value" lines).
func counterFromTkstats(t *testing.T, app *App, name string) uint64 {
	t.Helper()
	out := app.MustEval("tkstats counters " + name)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("bad counter line %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// histFromTkstats parses "tkstats histogram" output (a flat key/value
// list) into a map.
func histFromTkstats(t *testing.T, app *App, name string) map[string]int64 {
	t.Helper()
	fields := strings.Fields(app.MustEval("tkstats histogram " + name))
	if len(fields)%2 != 0 {
		t.Fatalf("odd histogram output: %q", fields)
	}
	m := make(map[string]int64, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i+1], 10, 64)
		if err != nil {
			t.Fatalf("bad histogram value %q: %v", fields[i+1], err)
		}
		m[fields[i]] = v
	}
	return m
}

// TestTkstatsCachesReduceOpcodeTraffic reproduces the §3.3 claim from
// inside Tcl: the first use of a color and font costs AllocNamedColor /
// OpenFont requests, later uses of the same resources cost none — and
// the per-opcode counters make that directly visible.
func TestTkstatsCachesReduceOpcodeTraffic(t *testing.T) {
	app, _, _ := statsApp(t, false)
	if _, err := app.Color("MediumSeaGreen"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.FontByName("fixed"); err != nil {
		t.Fatal(err)
	}
	allocs := counterFromTkstats(t, app, "requests.AllocNamedColor")
	fonts := counterFromTkstats(t, app, "requests.OpenFont")
	if allocs == 0 || fonts == 0 {
		t.Fatalf("first lookups not counted: allocs=%d fonts=%d", allocs, fonts)
	}
	for i := 0; i < 25; i++ {
		if _, err := app.Color("MediumSeaGreen"); err != nil {
			t.Fatal(err)
		}
		if _, err := app.FontByName("fixed"); err != nil {
			t.Fatal(err)
		}
	}
	if got := counterFromTkstats(t, app, "requests.AllocNamedColor"); got != allocs {
		t.Fatalf("cached color lookups sent %d more AllocNamedColor requests", got-allocs)
	}
	if got := counterFromTkstats(t, app, "requests.OpenFont"); got != fonts {
		t.Fatalf("cached font lookups sent %d more OpenFont requests", got-fonts)
	}
	if hits := counterFromTkstats(t, app, "tk.cache.color.hits"); hits < 25 {
		t.Fatalf("color cache hits = %d, want ≥ 25", hits)
	}
	// Glob filtering: the pattern restricts the listing.
	out := app.MustEval("tkstats counters tk.cache.*")
	for _, line := range strings.Split(out, "\n") {
		if line != "" && !strings.HasPrefix(line, "tk.cache.") {
			t.Fatalf("pattern leaked line %q", line)
		}
	}
}

// TestTkstatsHistogramTracksLatency: the roundtrip histogram's p50
// follows the server's simulated IPC latency — near-zero without it,
// and at least the configured latency with it.
func TestTkstatsHistogramTracksLatency(t *testing.T) {
	app, srv, _ := statsApp(t, false)
	const rounds = 20

	srv.SetLatency(0)
	app.MustEval("tkstats reset")
	for i := 0; i < rounds; i++ {
		if err := app.Disp.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	fast := histFromTkstats(t, app, "roundtrip")
	if fast["count"] < rounds {
		t.Fatalf("fast count = %d, want ≥ %d", fast["count"], rounds)
	}

	srv.SetLatency(time.Millisecond)
	app.MustEval("tkstats reset")
	for i := 0; i < rounds; i++ {
		if err := app.Disp.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	slow := histFromTkstats(t, app, "roundtrip")
	if slow["count"] < rounds {
		t.Fatalf("slow count = %d, want ≥ %d", slow["count"], rounds)
	}

	// With 1ms injected latency every round trip takes ≥ 1e6 ns; the
	// p50 estimate never understates the true quantile.
	if slow["p50"] < int64(time.Millisecond) {
		t.Fatalf("p50 with 1ms latency = %dns, want ≥ 1ms", slow["p50"])
	}
	if slow["p50"] <= fast["p50"] {
		t.Fatalf("p50 did not track latency: fast=%dns slow=%dns", fast["p50"], slow["p50"])
	}
	if slow["min"] < int64(time.Millisecond) {
		t.Fatalf("min with 1ms latency = %dns", slow["min"])
	}
}

// TestTkstatsTrace: with a tracer attached, tkstats trace returns the
// decoded protocol lines; without one it reports a usable error; reset
// clears both metrics and trace.
func TestTkstatsTrace(t *testing.T) {
	app, _, tr := statsApp(t, true)
	if err := app.Disp.Sync(); err != nil {
		t.Fatal(err)
	}
	out := app.MustEval("tkstats trace")
	if !strings.Contains(out, "-> req ") || !strings.Contains(out, "Ping") {
		t.Fatalf("trace output missing requests:\n%s", out)
	}
	// Bounded dump: at most 2 lines.
	if n := len(strings.Split(app.MustEval("tkstats trace 2"), "\n")); n > 2 {
		t.Fatalf("tkstats trace 2 returned %d lines", n)
	}
	app.MustEval("tkstats reset")
	if tr.Total() != 0 {
		t.Fatal("reset did not clear the trace ring")
	}
	if got := counterFromTkstats(t, app, "roundtrips"); got > 1 {
		t.Fatalf("reset did not clear counters: roundtrips=%d", got)
	}

	// No tracer → error mentioning how to get one.
	plain, _, _ := statsApp(t, false)
	if _, err := plain.Eval("tkstats trace"); err == nil || !strings.Contains(err.Error(), "-trace") {
		t.Fatalf("expected no-tracer error, got %v", err)
	}
}

// TestTkstatsGauges: the gauges subcommand lists gauges alone (counters
// keeps folding them in, for script compatibility) with the same glob
// filtering.
func TestTkstatsGauges(t *testing.T) {
	app, _, _ := statsApp(t, false)
	if err := app.Disp.Sync(); err != nil {
		t.Fatal(err)
	}
	out := app.MustEval("tkstats gauges")
	if !strings.Contains(out, "inflight ") {
		t.Fatalf("gauges output missing inflight:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "requests") {
			t.Fatalf("counter leaked into gauges output: %q", line)
		}
	}
	// Glob filtering, and an empty match is an empty result, not an error.
	if out := app.MustEval("tkstats gauges inflight"); !strings.HasPrefix(out, "inflight ") {
		t.Fatalf("filtered gauges = %q", out)
	}
	if out := app.MustEval("tkstats gauges no.such.*"); out != "" {
		t.Fatalf("non-matching pattern returned %q", out)
	}
	// The gauge still appears in counters output (compatibility).
	if out := app.MustEval("tkstats counters inflight"); !strings.HasPrefix(out, "inflight ") {
		t.Fatalf("counters no longer folds gauges in: %q", out)
	}
}

// spansApp is statsApp plus a request-span tracer on both sides,
// sampling every request.
func spansApp(t *testing.T) (*App, *trace.Tracer) {
	t.Helper()
	srv := xserver.New(640, 480)
	t.Cleanup(srv.Close)
	tr := trace.New(1024, 1)
	srv.SetTracer(tr)
	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	d.SetTracer(tr)
	app, err := NewApp(d, Config{Name: "spans", Spans: tr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Destroy)
	return app, tr
}

// TestTkstatsSpans: the spans subcommand exports the ring as Chrome
// trace-event JSON, inline or to a file; reset clears the ring; without
// a tracer the error says how to get one.
func TestTkstatsSpans(t *testing.T) {
	app, tr := spansApp(t)
	if err := app.Disp.Sync(); err != nil {
		t.Fatal(err)
	}
	out := app.MustEval("tkstats spans")
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("tkstats spans output does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("tkstats spans exported no events")
	}

	file := filepath.Join(t.TempDir(), "spans.json")
	app.MustEval("tkstats spans " + file)
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("file export does not parse: %v", err)
	}

	app.MustEval("tkstats reset")
	if tr.Len() != 0 {
		t.Fatal("reset did not clear the span ring")
	}

	plain, _, _ := statsApp(t, false)
	if _, err := plain.Eval("tkstats spans"); err == nil || !strings.Contains(err.Error(), "-spans") {
		t.Fatalf("expected no-span-tracer error, got %v", err)
	}
}
