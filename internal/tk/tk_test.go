package tk

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/xclient"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

// newTestApp builds a server + display + app for intrinsics tests.
func newTestApp(t *testing.T) (*App, *bytes.Buffer) {
	t.Helper()
	srv := xserver.New(1024, 768)
	t.Cleanup(srv.Close)
	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	app, err := NewApp(d, Config{Name: "test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Destroy)
	var out bytes.Buffer
	app.Interp.Out = &out
	return app, &out
}

// mkWindow creates a plain window with a requested size.
func mkWindow(t *testing.T, app *App, path string, reqW, reqH int) *Window {
	t.Helper()
	w, err := app.CreateWindow(path, "Frame")
	if err != nil {
		t.Fatal(err)
	}
	w.GeometryRequest(reqW, reqH)
	return w
}

func TestWindowNames(t *testing.T) {
	app, _ := newTestApp(t)
	a, err := app.CreateWindow(".a", "Frame")
	if err != nil {
		t.Fatal(err)
	}
	b, err := app.CreateWindow(".a.b", "Button")
	if err != nil {
		t.Fatal(err)
	}
	c, err := app.CreateWindow(".a.b.c", "Label")
	if err != nil {
		t.Fatal(err)
	}
	// §3.1: ".a.b.c" denotes a window c inside b inside a inside the
	// main window.
	if c.Parent != b || b.Parent != a || a.Parent != app.Main {
		t.Fatal("window hierarchy mismatch")
	}
	if w, err := app.NameToWindow(".a.b.c"); err != nil || w != c {
		t.Fatalf("NameToWindow: %v %v", w, err)
	}
	if _, err := app.NameToWindow(".a.nope"); err == nil {
		t.Fatal("lookup of bogus path should fail")
	}
	// Duplicate names are rejected.
	if _, err := app.CreateWindow(".a", "Frame"); err == nil {
		t.Fatal("duplicate window name should fail")
	}
	// Bad paths.
	for _, bad := range []string{"noDot", ".a..b", ".a.", ""} {
		if _, err := app.CreateWindow(bad, "X"); err == nil {
			t.Fatalf("CreateWindow(%q) should fail", bad)
		}
	}
}

func TestDestroySubtree(t *testing.T) {
	app, _ := newTestApp(t)
	mkWindow(t, app, ".f", 10, 10)
	mkWindow(t, app, ".f.x", 10, 10)
	mkWindow(t, app, ".f.x.y", 10, 10)
	w, _ := app.NameToWindow(".f")
	app.DestroyWindow(w)
	for _, p := range []string{".f", ".f.x", ".f.x.y"} {
		if app.WindowExists(p) {
			t.Fatalf("window %s should be destroyed", p)
		}
	}
	if !app.WindowExists(".") {
		t.Fatal("main window should survive")
	}
}

// TestFigure7Bindings reproduces the paper's Figure 7: four bind commands
// covering Enter, a plain key, a two-key sequence and a double click with
// %-substitution.
func TestFigure7Bindings(t *testing.T) {
	app, out := newTestApp(t)
	mkWindow(t, app, ".x", 100, 100)
	app.MustEval(`pack append . .x {top}`)
	app.Update()

	app.MustEval(`bind .x <Enter> {print "hi\n"}`)
	app.MustEval(`bind .x a {print "you typed 'a'\n"}`)
	app.MustEval(`bind .x <Escape>q {print "you typed escape-q\n"}`)
	app.MustEval(`bind .x <Double-Button-1> {print "mouse at %x %y\n"}`)

	w, _ := app.NameToWindow(".x")
	rx, ry := w.RootCoords()

	// Mouse enters .x.
	app.Disp.WarpPointer(rx+10, ry+10)
	app.Update()
	if !strings.Contains(out.String(), "hi\n") {
		t.Fatalf("<Enter> binding did not fire; output %q", out.String())
	}
	out.Reset()

	// Letter a typed in .x.
	app.Disp.FakeKey('a', true)
	app.Disp.FakeKey('a', false)
	app.Update()
	if !strings.Contains(out.String(), "you typed 'a'") {
		t.Fatalf("key binding did not fire; output %q", out.String())
	}
	out.Reset()

	// Escape then q.
	app.Disp.FakeKey(xproto.KsEscape, true)
	app.Disp.FakeKey(xproto.KsEscape, false)
	app.Disp.FakeKey('q', true)
	app.Disp.FakeKey('q', false)
	app.Update()
	if !strings.Contains(out.String(), "you typed escape-q") {
		t.Fatalf("sequence binding did not fire; output %q", out.String())
	}
	out.Reset()

	// Double click: %x %y replaced with event coordinates.
	app.Disp.WarpPointer(rx+42, ry+17)
	app.Disp.FakeButton(1, true)
	app.Disp.FakeButton(1, false)
	app.Disp.FakeButton(1, true)
	app.Disp.FakeButton(1, false)
	app.Update()
	if !strings.Contains(out.String(), "mouse at 42 17") {
		t.Fatalf("double-click binding / %%-substitution failed; output %q", out.String())
	}
}

func TestBindQueryAndDelete(t *testing.T) {
	app, _ := newTestApp(t)
	mkWindow(t, app, ".x", 10, 10)
	app.MustEval(`bind .x <Enter> {print enter}`)
	app.MustEval(`bind .x a {print a}`)
	got := app.MustEval(`bind .x`)
	if !strings.Contains(got, "<Enter>") || !strings.Contains(got, "a") {
		t.Fatalf("bind list = %q", got)
	}
	if app.MustEval(`bind .x <Enter>`) != "print enter" {
		t.Fatal("bind query failed")
	}
	// Append with +.
	app.MustEval(`bind .x <Enter> {+print more}`)
	if !strings.Contains(app.MustEval(`bind .x <Enter>`), "print more") {
		t.Fatal("+append failed")
	}
	// Delete by binding empty.
	app.MustEval(`bind .x <Enter> {}`)
	if app.MustEval(`bind .x <Enter>`) != "" {
		t.Fatal("binding not deleted")
	}
}

func TestBindSpecificityAndModifiers(t *testing.T) {
	app, out := newTestApp(t)
	w := mkWindow(t, app, ".x", 100, 100)
	app.MustEval(`pack append . .x {top}`)
	app.Update()
	app.MustEval(`bind .x q {print plain}`)
	app.MustEval(`bind .x <Control-q> {print control}`)
	rx, ry := w.RootCoords()
	app.Disp.WarpPointer(rx+5, ry+5)

	app.Disp.FakeKey(xproto.KsControlL, true)
	app.Disp.FakeKey('q', true)
	app.Disp.FakeKey('q', false)
	app.Disp.FakeKey(xproto.KsControlL, false)
	app.Update()
	if got := out.String(); got != "control" {
		t.Fatalf("Control-q fired %q, want %q", got, "control")
	}
	out.Reset()
	app.Disp.FakeKey('q', true)
	app.Disp.FakeKey('q', false)
	app.Update()
	if got := out.String(); got != "plain" {
		t.Fatalf("plain q fired %q, want %q", got, "plain")
	}
}

func TestBadBindPatterns(t *testing.T) {
	app, _ := newTestApp(t)
	mkWindow(t, app, ".x", 10, 10)
	for _, bad := range []string{"<NoSuchEvent>", "<Button-9>", "<Enter", "<Key-NotAKey>"} {
		if _, err := app.Eval(`bind .x ` + bad + ` {print x}`); err == nil {
			t.Errorf("bind %q should fail", bad)
		}
	}
}

// TestFigure8Packer reproduces Figure 8: four windows with requested
// sizes arranged all-in-a-column in a parent that is too small, so later
// windows are truncated.
func TestFigure8Packer(t *testing.T) {
	app, _ := newTestApp(t)
	// Parent fixed at 120x190 (the figure's (b): smaller than the sum of
	// requests).
	parent, _ := app.NameToWindow(".")
	a := mkWindow(t, app, ".a", 80, 50)
	b := mkWindow(t, app, ".b", 60, 40)
	c := mkWindow(t, app, ".c", 140, 50) // wider than the parent
	d := mkWindow(t, app, ".d", 100, 90) // extends past the bottom
	app.MustEval(`pack propagate . 0`)
	app.resizeWindow(parent, 0, 0, 120, 190, false)
	app.MustEval(`pack append . .a {top} .b {top} .c {top} .d {top}`)
	app.Update()

	if a.Width != 80 || a.Height != 50 {
		t.Fatalf("A = %dx%d, want 80x50 (fits)", a.Width, a.Height)
	}
	if b.Height != 40 {
		t.Fatalf("B height = %d, want 40", b.Height)
	}
	// C ends up with less width than requested: clamped to the parent.
	if c.Width != 120 {
		t.Fatalf("C width = %d, want truncated to 120", c.Width)
	}
	// D receives less height than requested: only 50 remain.
	if d.Height != 50 {
		t.Fatalf("D height = %d, want 50 (truncated)", d.Height)
	}
	// Stacked top-down.
	if a.Y >= b.Y || b.Y >= c.Y || c.Y >= d.Y {
		t.Fatalf("not stacked top-down: y = %d %d %d %d", a.Y, b.Y, c.Y, d.Y)
	}
}

func TestPackerSidesAndFill(t *testing.T) {
	app, _ := newTestApp(t)
	parent, _ := app.NameToWindow(".")
	scroll := mkWindow(t, app, ".scroll", 20, 100)
	list := mkWindow(t, app, ".list", 100, 100)
	app.MustEval(`pack propagate . 0`)
	app.resizeWindow(parent, 0, 0, 200, 150, false)
	// The exact command from Figure 9, line 4.
	app.MustEval(`pack append . .scroll {right filly} .list {left expand fill}`)
	app.Update()

	if scroll.X != 180 || scroll.Width != 20 {
		t.Fatalf("scrollbar at x=%d w=%d, want x=180 w=20", scroll.X, scroll.Width)
	}
	if scroll.Height != 150 {
		t.Fatalf("scrollbar filly height = %d, want 150", scroll.Height)
	}
	// The listbox expands and fills the remaining 180x150.
	if list.X != 0 || list.Width != 180 || list.Height != 150 {
		t.Fatalf("list = %d,%d %dx%d, want 0,y 180x150", list.X, list.Y, list.Width, list.Height)
	}
}

func TestPackerGeometryPropagation(t *testing.T) {
	app, _ := newTestApp(t)
	mkWindow(t, app, ".a", 70, 30)
	mkWindow(t, app, ".b", 50, 40)
	app.MustEval(`pack append . .a {top} .b {top}`)
	app.Update()
	main := app.Main
	// The main window grows to fit the slaves: width max(70,50),
	// height 30+40.
	if main.Width != 70 || main.Height != 70 {
		t.Fatalf("main = %dx%d, want 70x70", main.Width, main.Height)
	}
	// A slave's new request propagates.
	a, _ := app.NameToWindow(".a")
	a.GeometryRequest(100, 60)
	app.Update()
	if main.Width != 100 || main.Height != 100 {
		t.Fatalf("after request, main = %dx%d, want 100x100", main.Width, main.Height)
	}
}

func TestPackForgetAndInfo(t *testing.T) {
	app, _ := newTestApp(t)
	a := mkWindow(t, app, ".a", 30, 30)
	mkWindow(t, app, ".b", 30, 30)
	app.MustEval(`pack append . .a {top padx 5} .b {left expand fillx}`)
	app.Update()
	info := app.MustEval(`pack info .`)
	if !strings.Contains(info, ".a") || !strings.Contains(info, "padx 5") ||
		!strings.Contains(info, "expand fillx") {
		t.Fatalf("pack info = %q", info)
	}
	if app.MustEval(`pack slaves .`) != ".a .b" {
		t.Fatalf("pack slaves = %q", app.MustEval(`pack slaves .`))
	}
	app.MustEval(`pack unpack .a`)
	app.Update()
	if app.MustEval(`pack slaves .`) != ".b" {
		t.Fatal("unpack failed")
	}
	if a.Manager != nil {
		t.Fatal("slave should have no manager after unpack")
	}
}

func TestOptionDatabase(t *testing.T) {
	app, _ := newTestApp(t)
	mkWindow(t, app, ".b", 10, 10)
	b, _ := app.NameToWindow(".b")
	b.Class = "Button"
	// §3.5's example: "*Button.background: red".
	app.MustEval(`option add *Button.background red`)
	if got := app.GetOption(b, "background", "Background"); got != "red" {
		t.Fatalf("option lookup = %q, want red", got)
	}
	// A more specific pattern (by name) wins.
	app.MustEval(`option add *b.background blue`)
	if got := app.GetOption(b, "background", "Background"); got != "blue" {
		t.Fatalf("specific option = %q, want blue", got)
	}
	// Priorities dominate specificity.
	app.MustEval(`option add *background green widgetDefault`)
	if got := app.GetOption(b, "background", "Background"); got != "blue" {
		t.Fatalf("low-priority option overrode: %q", got)
	}
	// option get command.
	if got := app.MustEval(`option get .b background Background`); got != "blue" {
		t.Fatalf("option get = %q", got)
	}
	// No match.
	if got := app.GetOption(b, "foreground", "Foreground"); got != "" {
		t.Fatalf("unmatched option = %q, want empty", got)
	}
}

func TestOptionReadString(t *testing.T) {
	app, _ := newTestApp(t)
	mkWindow(t, app, ".l", 10, 10)
	l, _ := app.NameToWindow(".l")
	l.Class = "Label"
	app.MustEval(`option readstring {
! comment line
*Label.foreground: navy
*font: 6x13
}`)
	if got := app.GetOption(l, "foreground", "Foreground"); got != "navy" {
		t.Fatalf("readstring option = %q", got)
	}
	if got := app.GetOption(l, "font", "Font"); got != "6x13" {
		t.Fatalf("loose wildcard option = %q", got)
	}
}

func TestResourceCacheReducesTraffic(t *testing.T) {
	app, _ := newTestApp(t)
	// The client-side registry reads cost no server traffic, unlike the
	// old Counters() round trip, so the measurement no longer perturbs
	// what it measures.
	m := app.Metrics()
	alloc := m.Counter("requests.AllocNamedColor")
	rtts := m.Counter("roundtrips")
	before, beforeRtts := alloc.Value(), rtts.Value()
	// First lookup costs one AllocNamedColor round trip.
	if _, err := app.Color("MediumSeaGreen"); err != nil {
		t.Fatal(err)
	}
	if got := alloc.Value() - before; got != 1 {
		t.Fatalf("first lookup sent %d AllocNamedColor requests, want 1", got)
	}
	if got := rtts.Value() - beforeRtts; got != 1 {
		t.Fatalf("first lookup cost %d round trips, want 1", got)
	}
	// 100 more lookups cost nothing (§3.3).
	for i := 0; i < 100; i++ {
		if _, err := app.Color("MediumSeaGreen"); err != nil {
			t.Fatal(err)
		}
	}
	if got := alloc.Value() - before; got != 1 {
		t.Fatalf("cached lookups sent %d AllocNamedColor requests, want 1 total", got)
	}
	if hits := m.Counter("tk.cache.color.hits").Value(); hits < 100 {
		t.Fatalf("color cache hits = %d, want ≥ 100", hits)
	}
	// The wire-level Counters() shim still works and agrees on the
	// round-trip count (+1 for its own query).
	rep, err := app.Disp.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RoundTrips != rtts.Value()-1 {
		t.Fatalf("server sees %d round trips, client registry %d (want server = client-1)",
			rep.RoundTrips, rtts.Value())
	}
	// Reverse mapping: given the pixel, Tk returns the canonical
	// (lowercase) textual name, whatever casing the caller used.
	px, _ := app.Color("MediumSeaGreen")
	if app.NameOfColor(px) != "mediumseagreen" {
		t.Fatalf("NameOfColor = %q", app.NameOfColor(px))
	}
}

func TestGCSharing(t *testing.T) {
	app, _ := newTestApp(t)
	f, _ := app.FontByName("fixed")
	gc1 := app.GC(0x000000, 0xffffff, 1, f.ID)
	gc2 := app.GC(0x000000, 0xffffff, 1, f.ID)
	if gc1 != gc2 {
		t.Fatal("identical GCs not shared")
	}
	gc3 := app.GC(0xff0000, 0xffffff, 1, f.ID)
	if gc3 == gc1 {
		t.Fatal("different GCs wrongly shared")
	}
	_, _, gcs, _ := app.CacheStats()
	if gcs != 2 {
		t.Fatalf("gc cache size = %d, want 2", gcs)
	}
}

func TestTimersAndIdle(t *testing.T) {
	app, _ := newTestApp(t)
	var order []string
	app.CreateTimerHandler(0, func() { order = append(order, "timer") })
	app.DoWhenIdle(func() { order = append(order, "idle") })
	// Idle handlers run only when no timers are due.
	for len(order) < 2 {
		app.DoOneEvent(true)
	}
	if order[0] != "timer" || order[1] != "idle" {
		t.Fatalf("order = %v", order)
	}
	// Cancellation.
	fired := false
	id := app.CreateTimerHandler(0, func() { fired = true })
	app.DeleteTimerHandler(id)
	app.Update()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestAfterCommand(t *testing.T) {
	app, _ := newTestApp(t)
	app.MustEval(`after 1 {set fired 1}`)
	deadline := 0
	for !app.Interp.VarExists("fired") && deadline < 1000 {
		app.DoOneEvent(true)
		deadline++
	}
	if v, _ := app.Interp.GetVar("fired"); v != "1" {
		t.Fatal("after script did not run")
	}
	// after idle.
	app.MustEval(`after idle {set idled 1}`)
	app.Update()
	if v, _ := app.Interp.GetVar("idled"); v != "1" {
		t.Fatal("after idle did not run")
	}
	// after cancel.
	id := app.MustEval(`after 50 {set never 1}`)
	app.MustEval(`after cancel ` + id)
	app.MustEval(`after 60`) // waits 60ms processing events
	if app.Interp.VarExists("never") {
		t.Fatal("cancelled after fired")
	}
}

func TestFocusCommand(t *testing.T) {
	app, _ := newTestApp(t)
	mkWindow(t, app, ".e", 50, 20)
	app.MustEval(`pack append . .e {top}`)
	app.Update()
	app.MustEval(`focus .e`)
	app.Update()
	if got := app.MustEval(`focus`); got != ".e" {
		t.Fatalf("focus = %q, want .e", got)
	}
	// §3.7: keystrokes go to the focus window even with the pointer
	// elsewhere.
	var out bytes.Buffer
	app.Interp.Out = &out
	app.MustEval(`bind .e x {print focused}`)
	app.Disp.WarpPointer(900, 700) // far away
	app.Disp.FakeKey('x', true)
	app.Disp.FakeKey('x', false)
	app.Update()
	if out.String() != "focused" {
		t.Fatalf("focused key output %q", out.String())
	}
	app.MustEval(`focus none`)
	app.Update()
	if got := app.MustEval(`focus`); got != "none" {
		t.Fatalf("focus after none = %q", got)
	}
}

func TestWinfo(t *testing.T) {
	app, _ := newTestApp(t)
	mkWindow(t, app, ".f", 44, 33)
	f, _ := app.NameToWindow(".f")
	f.Class = "Frame"
	mkWindow(t, app, ".f.k", 10, 10)
	app.MustEval(`pack append . .f {top}`)
	app.Update()
	if app.MustEval(`winfo exists .f`) != "1" || app.MustEval(`winfo exists .zz`) != "0" {
		t.Fatal("winfo exists")
	}
	if app.MustEval(`winfo class .f`) != "Frame" {
		t.Fatal("winfo class")
	}
	if app.MustEval(`winfo children .f`) != ".f.k" {
		t.Fatal("winfo children")
	}
	if app.MustEval(`winfo parent .f.k`) != ".f" {
		t.Fatal("winfo parent")
	}
	if app.MustEval(`winfo reqwidth .f`) != "44" {
		t.Fatal("winfo reqwidth")
	}
	if app.MustEval(`winfo width .f`) != "44" {
		t.Fatalf("winfo width = %s", app.MustEval(`winfo width .f`))
	}
	if app.MustEval(`winfo toplevel .f.k`) != "." {
		t.Fatal("winfo toplevel")
	}
	if app.MustEval(`winfo name .`) != "test" {
		t.Fatal("winfo name of .")
	}
	if !strings.Contains(app.MustEval(`winfo interps`), "test") {
		t.Fatal("winfo interps")
	}
}

func TestWmTitle(t *testing.T) {
	app, _ := newTestApp(t)
	app.MustEval(`wm title . "My Application"`)
	if got := app.MustEval(`wm title .`); got != "My Application" {
		t.Fatalf("wm title = %q", got)
	}
	app.MustEval(`wm geometry . 300x150`)
	app.Update()
	if app.Main.Width != 300 || app.Main.Height != 150 {
		t.Fatalf("wm geometry: %dx%d", app.Main.Width, app.Main.Height)
	}
}

func TestDestroyCommandAndBinding(t *testing.T) {
	app, out := newTestApp(t)
	mkWindow(t, app, ".x", 10, 10)
	app.MustEval(`bind .x <Destroy> {print destroyed}`)
	app.MustEval(`destroy .x`)
	if !strings.Contains(out.String(), "destroyed") {
		t.Fatal("<Destroy> binding did not fire")
	}
	if app.WindowExists(".x") {
		t.Fatal("window still exists")
	}
	// destroy . tears down the app.
	app.MustEval(`destroy .`)
	if !app.Quitting() {
		t.Fatal("destroying . should quit the app")
	}
}

func TestSelectionWithinApp(t *testing.T) {
	app, _ := newTestApp(t)
	w := mkWindow(t, app, ".l", 10, 10)
	app.SetSelectionHandler(w, func() string { return "selected text" })
	app.OwnSelection(w, nil)
	got, err := app.GetSelection()
	if err != nil || got != "selected text" {
		t.Fatalf("GetSelection: %q %v", got, err)
	}
	// Tcl interface.
	if app.MustEval(`selection get`) != "selected text" {
		t.Fatal("selection get via Tcl")
	}
	if app.MustEval(`selection own`) != ".l" {
		t.Fatal("selection own query")
	}
}

func TestSelectionAcrossApps(t *testing.T) {
	srv := xserver.New(800, 600)
	defer srv.Close()
	mkApp := func(name string) *App {
		d, err := xclient.Open(srv.ConnectPipe())
		if err != nil {
			t.Fatal(err)
		}
		app, err := NewApp(d, Config{Name: name})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(app.Destroy)
		return app
	}
	a1 := mkApp("one")
	a2 := mkApp("two")
	w1, _ := a1.CreateWindow(".l", "Listbox")
	a1.SetSelectionHandler(w1, func() string { return "from app one" })
	a1.OwnSelection(w1, nil)
	a1.Update()

	// App 2 retrieves across applications: the ICCCM dance runs while
	// app 1 is serviced by a background pump.
	stop := a1.StartServing()
	got, err := a2.GetSelection()
	stop()
	if err != nil || got != "from app one" {
		t.Fatalf("cross-app selection: %q %v", got, err)
	}

	// App 2 claims the selection; app 1's lost callback runs.
	lost := false
	a1.OwnSelection(w1, func(*Window) { lost = true })
	a1.Update()
	w2, _ := a2.CreateWindow(".x", "Entry")
	a2.SetSelectionHandler(w2, func() string { return "now two" })
	a2.OwnSelection(w2, nil)
	a2.Update()
	a1.Update()
	if !lost {
		t.Fatal("selection-lost callback did not fire")
	}
}

func TestSendBetweenApps(t *testing.T) {
	srv := xserver.New(800, 600)
	defer srv.Close()
	mkApp := func(name string) *App {
		d, err := xclient.Open(srv.ConnectPipe())
		if err != nil {
			t.Fatal(err)
		}
		app, err := NewApp(d, Config{Name: name})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(app.Destroy)
		return app
	}
	sender := mkApp("sender")
	target := mkApp("target")
	target.MustEval(`set greeting "hello from target"`)

	// The target must be pumping its loop (it is a live application).
	defer target.StartServing()()

	// §6: send invokes a Tcl command in another application and returns
	// the result.
	got, err := sender.Send("target", "set greeting")
	if err != nil || got != "hello from target" {
		t.Fatalf("send: %q %v", got, err)
	}

	// Errors propagate back.
	if _, err := sender.Send("target", "nosuchcommand"); err == nil ||
		!strings.Contains(err.Error(), "invalid command name") {
		t.Fatalf("send error = %v", err)
	}

	// Via Tcl.
	if got := sender.MustEval(`send target {expr 6*7}`); got != "42" {
		t.Fatalf("Tcl send = %q", got)
	}

	// Unknown target.
	if _, err := sender.Send("nobody", "set x"); err == nil {
		t.Fatal("send to unknown app should fail")
	}

	// Send to self evaluates locally.
	sender.MustEval(`set local 7`)
	if got, _ := sender.Send("sender", "set local"); got != "7" {
		t.Fatal("send to self")
	}
}

func TestSendNameUniquified(t *testing.T) {
	srv := xserver.New(800, 600)
	defer srv.Close()
	var apps []*App
	for i := 0; i < 3; i++ {
		d, err := xclient.Open(srv.ConnectPipe())
		if err != nil {
			t.Fatal(err)
		}
		app, err := NewApp(d, Config{Name: "browse"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(app.Destroy)
		apps = append(apps, app)
	}
	if apps[0].Name != "browse" || apps[1].Name != "browse #2" || apps[2].Name != "browse #3" {
		t.Fatalf("names = %q %q %q", apps[0].Name, apps[1].Name, apps[2].Name)
	}
	// All registered.
	interps := apps[2].Interps()
	if len(interps) != 3 {
		t.Fatalf("interps = %v", interps)
	}
	// Unregistration on destroy.
	apps[1].Destroy()
	if n := len(apps[0].Interps()); n != 2 {
		t.Fatalf("after destroy, %d interps", n)
	}
}

func TestTkwaitVariable(t *testing.T) {
	app, _ := newTestApp(t)
	app.MustEval(`after 1 {set waited done}`)
	app.MustEval(`tkwait variable waited`)
	if v, _ := app.Interp.GetVar("waited"); v != "done" {
		t.Fatal("tkwait variable")
	}
}

func TestConfigFramework(t *testing.T) {
	app, _ := newTestApp(t)
	mkWindow(t, app, ".b", 10, 10)
	w, _ := app.NameToWindow(".b")
	w.Class = "Button"
	specs := []OptionSpec{
		{Name: "-background", DBName: "background", DBClass: "Background", Default: "Bisque1"},
		{Name: "-bg", Synonym: "-background"},
		{Name: "-text", DBName: "text", DBClass: "Text", Default: ""},
		{Name: "-borderwidth", DBName: "borderWidth", DBClass: "BorderWidth", Default: "2"},
	}
	cv := NewConfigValues(specs)
	app.MustEval(`option add *Button.text "from db"`)
	cv.ApplyDefaults(app, w)
	if cv.Get("-background") != "Bisque1" {
		t.Fatalf("default = %q", cv.Get("-background"))
	}
	if cv.Get("-text") != "from db" {
		t.Fatalf("db value = %q", cv.Get("-text"))
	}
	// Synonyms and abbreviations.
	if err := cv.Set("-bg", "red"); err != nil {
		t.Fatal(err)
	}
	if cv.Get("-background") != "red" {
		t.Fatal("synonym set failed")
	}
	if err := cv.Set("-bor", "5"); err != nil {
		t.Fatal(err)
	}
	if cv.GetInt("-borderwidth", 0) != 5 {
		t.Fatal("abbreviation set failed")
	}
	if err := cv.Set("-b", "x"); err == nil {
		t.Fatal("ambiguous abbreviation should fail")
	}
	// Describe output matches Tk's configure tuples.
	desc, err := cv.Describe("-background")
	if err != nil || !strings.Contains(desc, "background Background Bisque1 red") {
		t.Fatalf("describe = %q %v", desc, err)
	}
	desc, _ = cv.Describe("-bg")
	if desc != "-bg -background" {
		t.Fatalf("synonym describe = %q", desc)
	}
}

func TestUpdateIdletasksOnlyRunsIdle(t *testing.T) {
	app, _ := newTestApp(t)
	idleRan := false
	app.DoWhenIdle(func() { idleRan = true })
	timerRan := false
	app.CreateTimerHandler(0, func() { timerRan = true })
	app.UpdateIdleTasks()
	if !idleRan {
		t.Fatal("idle did not run")
	}
	if timerRan {
		t.Fatal("timer should not run in update idletasks")
	}
}
