package tk

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestPackerSlavesStayInsideMaster property: however slaves are packed
// (random sides, sizes, expand/fill flags), every slave's final geometry
// lies within the master's bounds.
func TestPackerSlavesStayInsideMaster(t *testing.T) {
	type slaveSpec struct {
		Side   uint8
		W, H   uint8
		Expand bool
		FillX  bool
		FillY  bool
	}
	sides := []string{"top", "bottom", "left", "right"}
	f := func(specs []slaveSpec) bool {
		if len(specs) == 0 {
			return true
		}
		if len(specs) > 8 {
			specs = specs[:8]
		}
		app, _ := newTestApp(t)
		defer app.Destroy()
		master := app.Main
		app.MustEval(`pack propagate . 0`)
		app.resizeWindow(master, 0, 0, 150, 150, false)
		for i, s := range specs {
			path := fmt.Sprintf(".s%d", i)
			w := mkWindow(t, app, path, int(s.W%100)+1, int(s.H%100)+1)
			opts := sides[s.Side%4]
			if s.Expand {
				opts += " expand"
			}
			if s.FillX {
				opts += " fillx"
			}
			if s.FillY {
				opts += " filly"
			}
			if err := app.packer.Pack(master, w, opts); err != nil {
				return false
			}
		}
		app.Update()
		for i := range specs {
			w, err := app.NameToWindow(fmt.Sprintf(".s%d", i))
			if err != nil {
				return false
			}
			if !w.Mapped {
				continue // no space left: the packer unmapped it
			}
			if w.X < 0 || w.Y < 0 ||
				w.X+w.Width > master.Width || w.Y+w.Height > master.Height {
				t.Logf("slave %d at %d,%d %dx%d escapes master %dx%d",
					i, w.X, w.Y, w.Width, w.Height, master.Width, master.Height)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPackerColumnNoOverlap property: same-side top packing produces
// non-overlapping, ordered frames.
func TestPackerColumnNoOverlap(t *testing.T) {
	f := func(heights []uint8) bool {
		if len(heights) == 0 {
			return true
		}
		if len(heights) > 6 {
			heights = heights[:6]
		}
		app, _ := newTestApp(t)
		defer app.Destroy()
		for i, h := range heights {
			mkWindow(t, app, fmt.Sprintf(".w%d", i), 50, int(h%40)+5)
			app.MustEval(fmt.Sprintf(`pack append . .w%d {top}`, i))
		}
		app.Update()
		lastBottom := -1
		for i := range heights {
			w, _ := app.NameToWindow(fmt.Sprintf(".w%d", i))
			if w.Y < lastBottom {
				return false
			}
			lastBottom = w.Y + w.Height
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPackerExpandDistributes: expanding slaves absorb leftover space.
func TestPackerExpandDistributes(t *testing.T) {
	app, _ := newTestApp(t)
	master := app.Main
	app.MustEval(`pack propagate . 0`)
	app.resizeWindow(master, 0, 0, 100, 300, false)
	a := mkWindow(t, app, ".a", 50, 50)
	b := mkWindow(t, app, ".b", 50, 50)
	app.MustEval(`pack append . .a {top expand filly} .b {top expand filly}`)
	app.Update()
	// 300 split between two expanders: ~150 each.
	if a.Height < 140 || b.Height < 140 {
		t.Fatalf("expansion: a=%d b=%d", a.Height, b.Height)
	}
	if a.Y+a.Height > b.Y+1 && b.Y > a.Y {
		t.Fatalf("overlap: a=[%d,%d] b=[%d,%d]", a.Y, a.Y+a.Height, b.Y, b.Y+b.Height)
	}
}

// TestPackerPadding: padx/pady insets the slave within its frame.
func TestPackerPadding(t *testing.T) {
	app, _ := newTestApp(t)
	a := mkWindow(t, app, ".a", 40, 20)
	app.MustEval(`pack append . .a {top padx 10 pady 7}`)
	app.Update()
	// Master propagates to 40+20 x 20+14.
	if app.Main.Width != 60 || app.Main.Height != 34 {
		t.Fatalf("master = %dx%d, want 60x34", app.Main.Width, app.Main.Height)
	}
	if a.X != 10 || a.Y != 7 {
		t.Fatalf("slave at %d,%d, want 10,7", a.X, a.Y)
	}
}

// TestPackerAnchors: the frame option positions a smaller slave.
func TestPackerAnchors(t *testing.T) {
	app, _ := newTestApp(t)
	master := app.Main
	app.MustEval(`pack propagate . 0`)
	app.resizeWindow(master, 0, 0, 200, 100, false)
	a := mkWindow(t, app, ".a", 40, 90)
	app.MustEval(`pack append . .a {top frame w}`)
	app.Update()
	if a.X != 0 {
		t.Fatalf("anchor w: x=%d", a.X)
	}
	app.MustEval(`pack unpack .a`)
	app.MustEval(`pack append . .a {top frame e}`)
	app.Update()
	if a.X != 160 {
		t.Fatalf("anchor e: x=%d", a.X)
	}
}

// TestPackerBadInput covers option errors.
func TestPackerBadInput(t *testing.T) {
	app, _ := newTestApp(t)
	mkWindow(t, app, ".a", 10, 10)
	mkWindow(t, app, ".a.k", 5, 5)
	for _, bad := range []string{
		`pack append . .a {diagonal}`,
		`pack append . .a {padx}`,
		`pack append . .a {padx notanumber}`,
		`pack append . .nosuch {top}`,
		`pack append .a .a {top}`,  // window can't be its own slave
		`pack append . .a.k {top}`, // not a child of the master
		`pack append . .a`,         // missing option list
		`pack bogus .a`,            // unknown subcommand
	} {
		if _, err := app.Eval(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

// TestPackerSlaveDestroyedMidLayout: destroying a packed slave removes it
// from the master's layout without disturbing the others.
func TestPackerSlaveDestroyed(t *testing.T) {
	app, _ := newTestApp(t)
	mkWindow(t, app, ".a", 30, 30)
	mkWindow(t, app, ".b", 30, 30)
	mkWindow(t, app, ".c", 30, 30)
	app.MustEval(`pack append . .a {top} .b {top} .c {top}`)
	app.Update()
	app.MustEval(`destroy .b`)
	app.Update()
	if got := app.MustEval(`pack slaves .`); got != ".a .c" {
		t.Fatalf("slaves after destroy = %q", got)
	}
	// The master shrank to fit the remaining two.
	if app.Main.Height != 60 {
		t.Fatalf("master height = %d, want 60", app.Main.Height)
	}
}

// TestPackBeforeAfter: the old-style ordering subcommands.
func TestPackBeforeAfter(t *testing.T) {
	app, _ := newTestApp(t)
	mkWindow(t, app, ".a", 20, 20)
	mkWindow(t, app, ".b", 20, 20)
	mkWindow(t, app, ".c", 20, 20)
	app.MustEval(`pack append . .a {top} .c {top}`)
	app.MustEval(`pack before .c .b {top}`)
	if got := app.MustEval(`pack slaves .`); got != ".a .b .c" {
		t.Fatalf("after pack before: %q", got)
	}
	mkWindow(t, app, ".d", 20, 20)
	app.MustEval(`pack after .a .d {top}`)
	if got := app.MustEval(`pack slaves .`); got != ".a .d .b .c" {
		t.Fatalf("after pack after: %q", got)
	}
	// Repacking an existing slave moves it.
	app.MustEval(`pack after .c .d {top}`)
	if got := app.MustEval(`pack slaves .`); got != ".a .b .c .d" {
		t.Fatalf("after move: %q", got)
	}
	// Errors.
	if _, err := app.Eval(`pack before .nosuch .a {top}`); err == nil {
		t.Fatal("unknown sibling should fail")
	}
	mkWindow(t, app, ".unpacked", 5, 5)
	if _, err := app.Eval(`pack before .unpacked .a {top}`); err == nil {
		t.Fatal("unpacked sibling should fail")
	}
}

// TestWinfoContaining resolves windows by root coordinates.
func TestWinfoContaining(t *testing.T) {
	app, _ := newTestApp(t)
	mkWindow(t, app, ".f", 80, 40)
	mkWindow(t, app, ".f.inner", 30, 20)
	app.MustEval(`pack append . .f {top}`)
	app.MustEval(`pack append .f .f.inner {top}`)
	app.Update()
	inner, _ := app.NameToWindow(".f.inner")
	rx, ry := inner.RootCoords()
	got := app.MustEval(`winfo containing ` + itoa(rx+2) + ` ` + itoa(ry+2))
	if got != ".f.inner" {
		t.Fatalf("containing = %q", got)
	}
	if got := app.MustEval(`winfo containing 9000 9000`); got != "" {
		t.Fatalf("containing far point = %q", got)
	}
}

func itoa(n int) string { return fmt.Sprint(n) }
