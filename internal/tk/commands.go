package tk

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/tcl"
	"repro/internal/xproto"
)

// commandTable maps each intrinsics command name to its implementation.
// It is the single source of truth for the Tk command set: both
// registration and the static-analysis introspection in CommandNames
// derive from it.
func (app *App) commandTable() map[string]tcl.CmdFunc {
	return map[string]tcl.CmdFunc{
		"bind":      app.cmdBind,
		"destroy":   app.cmdDestroy,
		"update":    app.cmdUpdate,
		"after":     app.cmdAfter,
		"focus":     app.cmdFocus,
		"option":    app.cmdOption,
		"selection": app.cmdSelection,
		"send":      app.cmdSend,
		"winfo":     app.cmdWinfo,
		"wm":        app.cmdWm,
		"raise":     app.cmdRaise,
		"lower":     app.cmdLower,
		"bell": func(*tcl.Interp, []string) (string, error) {
			app.Disp.Bell()
			return "", nil
		},
		"tkwait":  app.cmdTkwait,
		"tkstats": app.cmdTkstats,
	}
}

// registerCommands installs the intrinsics' Tcl commands: bind, destroy,
// update, after, focus, option, selection, send, winfo and wm. Together
// with the widget-creation commands these make "virtually all of the
// intrinsics accessible from Tcl" (§3).
func registerCommands(app *App) {
	for name, fn := range app.commandTable() {
		app.Interp.Register(name, fn)
	}
}

// CommandNames returns, sorted, the Tcl command names the Tk intrinsics
// register in every application's interpreter (including "pack", which
// the geometry manager registers separately). It needs no display
// connection and exists so tools such as cmd/tkcheck can introspect the
// command set statically.
func CommandNames() []string {
	var app App
	table := app.commandTable()
	names := make([]string, 0, len(table)+1)
	for name := range table {
		names = append(names, name)
	}
	names = append(names, "pack")
	sort.Strings(names)
	return names
}

func (app *App) cmdBind(in *tcl.Interp, args []string) (string, error) {
	if len(args) < 2 || len(args) > 4 {
		return "", fmt.Errorf(`wrong # args: should be "bind window ?pattern? ?command?"`)
	}
	w, err := app.NameToWindow(args[1])
	if err != nil {
		return "", err
	}
	switch len(args) {
	case 2:
		return tcl.FormatList(app.BoundSequences(w)), nil
	case 3:
		return app.BoundScript(w, args[2]), nil
	default:
		return "", app.Bind(w, args[2], args[3])
	}
}

func (app *App) cmdDestroy(in *tcl.Interp, args []string) (string, error) {
	for _, path := range args[1:] {
		w, err := app.NameToWindow(path)
		if err != nil {
			continue // destroying a dead window is a no-op, as in Tk
		}
		app.DestroyWindow(w)
	}
	return "", nil
}

func (app *App) cmdUpdate(in *tcl.Interp, args []string) (string, error) {
	if len(args) == 2 && args[1] == "idletasks" {
		app.UpdateIdleTasks()
		return "", nil
	}
	app.Update()
	return "", nil
}

// cmdAfter implements: after ms ?command ...?; after cancel id;
// after idle command.
func (app *App) cmdAfter(in *tcl.Interp, args []string) (string, error) {
	if len(args) < 2 {
		return "", fmt.Errorf(`wrong # args: should be "after ms|cancel|idle ?arg ...?"`)
	}
	switch args[1] {
	case "cancel":
		if len(args) != 3 {
			return "", fmt.Errorf(`wrong # args: should be "after cancel id"`)
		}
		id, err := strconv.Atoi(strings.TrimPrefix(args[2], "after#"))
		if err != nil {
			return "", fmt.Errorf("bad after id %q", args[2])
		}
		app.DeleteTimerHandler(id)
		return "", nil
	case "idle":
		script := strings.Join(args[2:], " ")
		app.DoWhenIdle(func() {
			if _, err := in.Eval(script); err != nil {
				app.BackgroundError("after idle script", err)
			}
		})
		return "", nil
	}
	ms, err := strconv.Atoi(args[1])
	if err != nil || ms < 0 {
		return "", fmt.Errorf("bad milliseconds value %q", args[1])
	}
	if len(args) == 2 {
		// Synchronous sleep that keeps processing events, as Tk does.
		deadline := time.Now().Add(time.Duration(ms) * time.Millisecond)
		for time.Now().Before(deadline) && !app.Quitting() {
			app.pumpOnce()
		}
		return "", nil
	}
	script := strings.Join(args[2:], " ")
	id := app.CreateTimerHandler(time.Duration(ms)*time.Millisecond, func() {
		if _, err := in.Eval(script); err != nil {
			app.BackgroundError("after script", err)
		}
	})
	return fmt.Sprintf("after#%d", id), nil
}

// cmdFocus implements the focus command (§3.7): query or assign the
// keyboard focus within the application.
func (app *App) cmdFocus(in *tcl.Interp, args []string) (string, error) {
	if len(args) == 1 {
		f, err := app.Disp.GetInputFocus()
		if err != nil {
			return "", err
		}
		if w, ok := app.xidMap[f]; ok {
			return w.Path, nil
		}
		return "none", nil
	}
	if len(args) != 2 {
		return "", fmt.Errorf(`wrong # args: should be "focus ?window?"`)
	}
	if args[1] == "none" {
		app.Disp.SetInputFocus(xproto.None)
		return "", nil
	}
	w, err := app.NameToWindow(args[1])
	if err != nil {
		return "", err
	}
	app.Disp.SetInputFocus(w.XID)
	return "", nil
}

func (app *App) cmdOption(in *tcl.Interp, args []string) (string, error) {
	if len(args) < 2 {
		return "", fmt.Errorf(`wrong # args: should be "option add|clear|get|readstring ..."`)
	}
	switch args[1] {
	case "add":
		if len(args) < 4 || len(args) > 5 {
			return "", fmt.Errorf(`wrong # args: should be "option add pattern value ?priority?"`)
		}
		prio := PrioInteractive
		if len(args) == 5 {
			switch args[4] {
			case "widgetDefault":
				prio = PrioWidgetDefault
			case "startupFile":
				prio = PrioStartupFile
			case "userDefault":
				prio = PrioUserDefault
			case "interactive":
				prio = PrioInteractive
			default:
				n, err := strconv.Atoi(args[4])
				if err != nil || n < 0 || n > 100 {
					return "", fmt.Errorf("bad priority %q: must be 0-100 or a standard level name", args[4])
				}
				prio = n
			}
		}
		return "", app.AddOption(args[2], args[3], prio)
	case "clear":
		app.options.Clear()
		return "", nil
	case "get":
		if len(args) != 5 {
			return "", fmt.Errorf(`wrong # args: should be "option get window name class"`)
		}
		w, err := app.NameToWindow(args[2])
		if err != nil {
			return "", err
		}
		return app.GetOption(w, args[3], args[4]), nil
	case "readstring":
		// The string form of readfile, used by tests and wish.
		if len(args) < 3 {
			return "", fmt.Errorf(`wrong # args: should be "option readstring text ?priority?"`)
		}
		return "", app.options.ReadString(args[2], PrioStartupFile)
	case "readfile":
		// Load a .Xdefaults-format file (§3.5).
		if len(args) < 3 {
			return "", fmt.Errorf(`wrong # args: should be "option readfile fileName ?priority?"`)
		}
		data, err := os.ReadFile(args[2])
		if err != nil {
			return "", fmt.Errorf("couldn't read %q: %v", args[2], err)
		}
		return "", app.options.ReadString(string(data), PrioStartupFile)
	}
	return "", fmt.Errorf("bad option %q: should be add, clear, get, readfile, or readstring", args[1])
}

func (app *App) cmdSelection(in *tcl.Interp, args []string) (string, error) {
	if len(args) < 2 {
		return "", fmt.Errorf(`wrong # args: should be "selection get|own|handle|clear ?arg ...?"`)
	}
	switch args[1] {
	case "get":
		return app.GetSelection()
	case "own":
		if len(args) == 2 {
			if app.selOwner != nil {
				return app.selOwner.Path, nil
			}
			return "", nil
		}
		w, err := app.NameToWindow(args[2])
		if err != nil {
			return "", err
		}
		app.OwnSelection(w, nil)
		return "", nil
	case "handle":
		if len(args) != 4 {
			return "", fmt.Errorf(`wrong # args: should be "selection handle window command"`)
		}
		w, err := app.NameToWindow(args[2])
		if err != nil {
			return "", err
		}
		script := args[3]
		app.SetSelectionHandler(w, func() string {
			res, err := in.Eval(script)
			if err != nil {
				app.BackgroundError("selection handler", err)
				return ""
			}
			return res
		})
		return "", nil
	case "clear":
		if app.selOwner != nil {
			app.ClearSelection(app.selOwner)
		}
		return "", nil
	}
	return "", fmt.Errorf("bad option %q: should be clear, get, handle, or own", args[1])
}

// cmdSend implements §6: "send takes two arguments: the name of an
// application and a Tcl command".
func (app *App) cmdSend(in *tcl.Interp, args []string) (string, error) {
	if len(args) < 3 {
		return "", fmt.Errorf(`wrong # args: should be "send appName command ?arg ...?"`)
	}
	script := args[2]
	if len(args) > 3 {
		script = strings.Join(args[2:], " ")
	}
	return app.Send(args[1], script)
}

func (app *App) cmdWinfo(in *tcl.Interp, args []string) (string, error) {
	if len(args) < 2 {
		return "", fmt.Errorf(`wrong # args: should be "winfo option ?window?"`)
	}
	op := args[1]
	if op == "interps" {
		names := app.Interps()
		sort.Strings(names)
		return tcl.FormatList(names), nil
	}
	if op == "containing" {
		// winfo containing rootX rootY — answered from the cached
		// structure information (§3.3), no server round trip.
		if len(args) != 4 {
			return "", fmt.Errorf(`wrong # args: should be "winfo containing rootX rootY"`)
		}
		x, err1 := strconv.Atoi(args[2])
		y, err2 := strconv.Atoi(args[3])
		if err1 != nil || err2 != nil {
			return "", fmt.Errorf("expected integer coordinates")
		}
		if found := app.windowContaining(x, y); found != nil {
			return found.Path, nil
		}
		return "", nil
	}
	if len(args) != 3 {
		return "", fmt.Errorf(`wrong # args: should be "winfo %s window"`, op)
	}
	path := args[2]
	if op == "exists" {
		if app.WindowExists(path) {
			return "1", nil
		}
		return "0", nil
	}
	w, err := app.NameToWindow(path)
	if err != nil {
		return "", err
	}
	switch op {
	case "name":
		if w.Path == "." {
			return app.Name, nil
		}
		return w.Name, nil
	case "class":
		return w.Class, nil
	case "children":
		var out []string
		for _, ch := range w.Children {
			out = append(out, ch.Path)
		}
		return tcl.FormatList(out), nil
	case "parent":
		if w.Parent == nil {
			return "", nil
		}
		return w.Parent.Path, nil
	case "width":
		return strconv.Itoa(w.Width), nil
	case "height":
		return strconv.Itoa(w.Height), nil
	case "reqwidth":
		return strconv.Itoa(w.ReqWidth), nil
	case "reqheight":
		return strconv.Itoa(w.ReqHeight), nil
	case "x":
		return strconv.Itoa(w.X), nil
	case "y":
		return strconv.Itoa(w.Y), nil
	case "rootx":
		x, _ := w.RootCoords()
		return strconv.Itoa(x), nil
	case "rooty":
		_, y := w.RootCoords()
		return strconv.Itoa(y), nil
	case "ismapped":
		if w.Mapped {
			return "1", nil
		}
		return "0", nil
	case "geometry":
		return fmt.Sprintf("%dx%d+%d+%d", w.Width, w.Height, w.X, w.Y), nil
	case "toplevel":
		for cur := w; cur != nil; cur = cur.Parent {
			if cur.TopLevel {
				return cur.Path, nil
			}
		}
		return ".", nil
	case "id":
		return strconv.FormatUint(uint64(w.XID), 10), nil
	case "manager":
		if w.Manager != nil {
			return w.Manager.Name(), nil
		}
		return "", nil
	case "screenwidth":
		return strconv.Itoa(app.Disp.Width), nil
	case "screenheight":
		return strconv.Itoa(app.Disp.Height), nil
	}
	return "", fmt.Errorf("bad option %q to winfo", op)
}

// cmdWm is a minimal window-manager interface: title, geometry, withdraw
// and deiconify (the simulated server's built-in WM honors WM_NAME for
// its title bars).
func (app *App) cmdWm(in *tcl.Interp, args []string) (string, error) {
	if len(args) < 3 {
		return "", fmt.Errorf(`wrong # args: should be "wm option window ?arg?"`)
	}
	w, err := app.NameToWindow(args[2])
	if err != nil {
		return "", err
	}
	switch args[1] {
	case "title":
		if len(args) == 3 {
			rep, err := app.Disp.GetProperty(w.XID, xproto.AtomWMName, false)
			if err != nil {
				return "", err
			}
			return string(rep.Data), nil
		}
		app.Disp.ChangeProperty(w.XID, xproto.AtomWMName, xproto.AtomString, []byte(args[3]))
		return "", nil
	case "geometry":
		if len(args) == 3 {
			return fmt.Sprintf("%dx%d+%d+%d", w.Width, w.Height, w.X, w.Y), nil
		}
		var wd, ht, x, y int
		if n, _ := fmt.Sscanf(args[3], "%dx%d+%d+%d", &wd, &ht, &x, &y); n == 4 {
			app.resizeWindow(w, x, y, wd, ht, true)
			return "", nil
		}
		if n, _ := fmt.Sscanf(args[3], "%dx%d", &wd, &ht); n == 2 {
			app.resizeWindow(w, w.X, w.Y, wd, ht, false)
			return "", nil
		}
		if n, _ := fmt.Sscanf(args[3], "+%d+%d", &x, &y); n == 2 {
			app.resizeWindow(w, x, y, w.Width, w.Height, true)
			return "", nil
		}
		return "", fmt.Errorf("bad geometry specifier %q", args[3])
	case "withdraw":
		w.Unmap()
		return "", nil
	case "deiconify":
		w.Map()
		return "", nil
	}
	return "", fmt.Errorf("bad option %q to wm", args[1])
}

func (app *App) cmdRaise(in *tcl.Interp, args []string) (string, error) {
	if len(args) != 2 {
		return "", fmt.Errorf(`wrong # args: should be "raise window"`)
	}
	w, err := app.NameToWindow(args[1])
	if err != nil {
		return "", err
	}
	app.Disp.RaiseWindow(w.XID)
	return "", nil
}

func (app *App) cmdLower(in *tcl.Interp, args []string) (string, error) {
	if len(args) != 2 {
		return "", fmt.Errorf(`wrong # args: should be "lower window"`)
	}
	w, err := app.NameToWindow(args[1])
	if err != nil {
		return "", err
	}
	app.Disp.LowerWindow(w.XID)
	return "", nil
}

// cmdTkwait blocks, processing events, until a variable is written or a
// window is destroyed.
func (app *App) cmdTkwait(in *tcl.Interp, args []string) (string, error) {
	if len(args) != 3 {
		return "", fmt.Errorf(`wrong # args: should be "tkwait variable|window name"`)
	}
	switch args[1] {
	case "variable":
		done := false
		in.TraceVar(args[2], "w", func(*tcl.Interp, string, string, string) {
			done = true
		})
		for !done && !app.Quitting() {
			app.pumpOnce()
		}
		return "", nil
	case "window":
		for app.WindowExists(args[2]) && !app.Quitting() {
			app.pumpOnce()
		}
		return "", nil
	}
	return "", fmt.Errorf("bad option %q: should be variable or window", args[1])
}
