package tk

import (
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/xproto"
)

// TestTkerrorHook: a script-defined tkerror procedure receives background
// errors from bindings, as in Tk.
func TestTkerrorHook(t *testing.T) {
	app, out := newTestApp(t)
	mkWindow(t, app, ".x", 50, 50)
	app.MustEval(`pack append . .x {top}`)
	app.MustEval(`proc tkerror {msg} {print "caught: $msg"}`)
	app.MustEval(`bind .x z {nosuchcommand}`)
	app.Update()
	w, _ := app.NameToWindow(".x")
	rx, ry := w.RootCoords()
	app.Disp.WarpPointer(rx+5, ry+5)
	app.Disp.FakeKey('z', true)
	app.Disp.FakeKey('z', false)
	app.Update()
	if !strings.Contains(out.String(), `caught: invalid command name "nosuchcommand"`) {
		t.Fatalf("tkerror output = %q", out.String())
	}
}

// TestTclSelectionHandle: selection handlers written in Tcl (§3.6).
func TestTclSelectionHandle(t *testing.T) {
	app, _ := newTestApp(t)
	mkWindow(t, app, ".w", 10, 10)
	app.MustEval(`proc getsel {} {return "tcl-handler-data"}`)
	app.MustEval(`selection handle .w getsel`)
	app.MustEval(`selection own .w`)
	if got := app.MustEval(`selection get`); got != "tcl-handler-data" {
		t.Fatalf("selection get = %q", got)
	}
	app.MustEval(`selection clear`)
	if got := app.MustEval(`selection own`); got != "" {
		t.Fatalf("after clear, owner = %q", got)
	}
}

// TestPercentWSubstitution: %W names the event window.
func TestPercentWSubstitution(t *testing.T) {
	app, _ := newTestApp(t)
	mkWindow(t, app, ".deep", 60, 60)
	app.MustEval(`pack append . .deep {top}`)
	app.MustEval(`bind .deep <Button-3> {set clickedWindow %W}`)
	app.Update()
	w, _ := app.NameToWindow(".deep")
	rx, ry := w.RootCoords()
	app.Disp.WarpPointer(rx+5, ry+5)
	app.Disp.FakeButton(3, true)
	app.Disp.FakeButton(3, false)
	app.Update()
	if got := app.MustEval(`set clickedWindow`); got != ".deep" {
		t.Fatalf("%%W = %q", got)
	}
}

// TestEventPropagationToParent: an unbound child propagates device events
// upward until a window with a binding is found (X semantics).
func TestEventPropagationToParent(t *testing.T) {
	app, out := newTestApp(t)
	parent := mkWindow(t, app, ".p", 100, 100)
	parent.InternalBorder = 0
	child, err := app.CreateWindow(".p.c", "Frame")
	if err != nil {
		t.Fatal(err)
	}
	child.GeometryRequest(50, 50)
	app.MustEval(`pack append . .p {top}`)
	app.MustEval(`pack append .p .p.c {top}`)
	// Binding only on the parent.
	app.MustEval(`bind .p k {print "parent saw %x,%y"}`)
	app.Update()
	rx, ry := child.RootCoords()
	app.Disp.WarpPointer(rx+10, ry+10)
	app.Disp.FakeKey('k', true)
	app.Disp.FakeKey('k', false)
	app.Update()
	// The event propagated to the parent with translated coordinates.
	if !strings.Contains(out.String(), "parent saw") {
		t.Fatalf("propagation failed: %q", out.String())
	}
}

// TestAnyModifierBinding: bindings fire even with extra modifiers held
// (all bindings accept extra modifiers, as with Tk's Any- semantics of
// the era).
func TestExtraModifiersAccepted(t *testing.T) {
	app, out := newTestApp(t)
	mkWindow(t, app, ".x", 50, 50)
	app.MustEval(`pack append . .x {top}`)
	app.MustEval(`bind .x q {print plain}`)
	app.Update()
	w, _ := app.NameToWindow(".x")
	rx, ry := w.RootCoords()
	app.Disp.WarpPointer(rx+5, ry+5)
	app.Disp.FakeKey(xproto.KsShiftL, true)
	app.Disp.FakeKey('q', true)
	app.Disp.FakeKey('q', false)
	app.Disp.FakeKey(xproto.KsShiftL, false)
	app.Update()
	if out.String() != "plain" {
		t.Fatalf("shifted q did not fire the unmodified binding: %q", out.String())
	}
}

// TestCreateTimerOrdering: timers fire in deadline order.
func TestTimerOrdering(t *testing.T) {
	app, _ := newTestApp(t)
	var order []int
	app.CreateTimerHandler(30_000_000, func() { order = append(order, 3) }) // 30ms
	app.CreateTimerHandler(10_000_000, func() { order = append(order, 1) }) // 10ms
	app.CreateTimerHandler(20_000_000, func() { order = append(order, 2) }) // 20ms
	for len(order) < 3 {
		app.DoOneEvent(true)
	}
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("timer order = %v", order)
	}
}

// TestWinfoScreenDimensions.
func TestWinfoScreenDimensions(t *testing.T) {
	app, _ := newTestApp(t)
	if app.MustEval(`winfo screenwidth .`) != "1024" {
		t.Fatal("screenwidth")
	}
	if app.MustEval(`winfo screenheight .`) != "768" {
		t.Fatal("screenheight")
	}
}

// TestOptionReadfile loads .Xdefaults from a real file.
func TestOptionReadfile(t *testing.T) {
	app, _ := newTestApp(t)
	dir := t.TempDir()
	path := dir + "/Xdefaults"
	if err := writeFile(path, "*Button.background: orange\n! comment\n*font: 5x7\n"); err != nil {
		t.Fatal(err)
	}
	app.MustEval(`option readfile ` + path)
	mkWindow(t, app, ".b", 5, 5)
	b, _ := app.NameToWindow(".b")
	b.Class = "Button"
	if got := app.GetOption(b, "background", "Background"); got != "orange" {
		t.Fatalf("readfile option = %q", got)
	}
	if _, err := app.Eval(`option readfile /no/such/file`); err == nil {
		t.Fatal("missing file should error")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestMainLoopQuit: MainLoop exits when Quit is posted.
func TestMainLoopQuit(t *testing.T) {
	app, _ := newTestApp(t)
	app.CreateTimerHandler(0, func() { app.Quit() })
	done := make(chan struct{})
	go func() {
		defer close(done)
		app.MainLoop()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("MainLoop did not exit after Quit")
	}
}
