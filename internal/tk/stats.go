package tk

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tcl"
)

// The tkstats command exposes the observability layer (internal/obs) to
// Tcl scripts: protocol and toolkit counters and gauges, latency
// histograms, the decoded protocol trace when the application was
// started with a wire tracer (wish -trace), and the sampled request
// spans as Chrome trace-event JSON when started with a span tracer
// (wish -spans). It is how the §3.3 cache experiments read per-opcode
// traffic from inside the application being measured.

func (app *App) cmdTkstats(in *tcl.Interp, args []string) (string, error) {
	if len(args) < 2 {
		return "", fmt.Errorf(`wrong # args: should be "tkstats counters|gauges|histogram|trace|spans|reset ?arg?"`)
	}
	m := app.Metrics()
	switch args[1] {
	case "counters":
		if len(args) > 3 {
			return "", fmt.Errorf(`wrong # args: should be "tkstats counters ?pattern?"`)
		}
		pattern := "*"
		if len(args) == 3 {
			pattern = args[2]
		}
		lines := make([]string, 0, 16)
		for name, v := range m.Counters() {
			if tcl.GlobMatch(pattern, name) {
				lines = append(lines, name+" "+strconv.FormatUint(v, 10))
			}
		}
		for name, v := range m.Gauges() {
			if tcl.GlobMatch(pattern, name) {
				lines = append(lines, name+" "+strconv.FormatInt(v, 10))
			}
		}
		sort.Strings(lines)
		return strings.Join(lines, "\n"), nil
	case "gauges":
		// "counters" has always folded gauges in (kept for script
		// compatibility); this lists gauges alone.
		if len(args) > 3 {
			return "", fmt.Errorf(`wrong # args: should be "tkstats gauges ?pattern?"`)
		}
		pattern := "*"
		if len(args) == 3 {
			pattern = args[2]
		}
		lines := make([]string, 0, 16)
		for name, v := range m.Gauges() {
			if tcl.GlobMatch(pattern, name) {
				lines = append(lines, name+" "+strconv.FormatInt(v, 10))
			}
		}
		sort.Strings(lines)
		return strings.Join(lines, "\n"), nil
	case "histogram":
		if len(args) != 3 {
			return "", fmt.Errorf(`wrong # args: should be "tkstats histogram name"`)
		}
		h, ok := m.FindHistogram(args[2])
		if !ok {
			names := m.HistogramNames()
			return "", fmt.Errorf("no histogram %q: have %s", args[2], strings.Join(names, ", "))
		}
		s := h.Snapshot()
		// A flat key/value Tcl list (nanoseconds), easy to pick apart
		// with lindex or iterate with foreach {k v}.
		pairs := []string{
			"count", strconv.FormatUint(s.Count, 10),
			"sum", strconv.FormatInt(s.Sum, 10),
			"min", strconv.FormatInt(s.Min, 10),
			"max", strconv.FormatInt(s.Max, 10),
			"mean", strconv.FormatInt(s.Mean(), 10),
			"p50", strconv.FormatInt(s.Quantile(0.50), 10),
			"p90", strconv.FormatInt(s.Quantile(0.90), 10),
			"p99", strconv.FormatInt(s.Quantile(0.99), 10),
		}
		return strings.Join(pairs, " "), nil
	case "trace":
		if len(args) > 3 {
			return "", fmt.Errorf(`wrong # args: should be "tkstats trace ?n?"`)
		}
		if app.Tracer == nil {
			return "", fmt.Errorf("no wire tracer attached: start with wish -trace")
		}
		n := 0 // all retained lines
		if len(args) == 3 {
			v, err := strconv.Atoi(args[2])
			if err != nil || v < 0 {
				return "", fmt.Errorf("bad line count %q", args[2])
			}
			n = v
		}
		return strings.Join(app.Tracer.Dump(n), "\n"), nil
	case "spans":
		if len(args) > 3 {
			return "", fmt.Errorf(`wrong # args: should be "tkstats spans ?file?"`)
		}
		if app.Spans == nil {
			return "", fmt.Errorf("no span tracer attached: start with wish -spans")
		}
		data, err := app.Spans.ChromeJSON()
		if err != nil {
			return "", fmt.Errorf("span export failed: %v", err)
		}
		if len(args) == 3 {
			if err := os.WriteFile(args[2], data, 0o644); err != nil {
				return "", fmt.Errorf("span export failed: %v", err)
			}
			return "", nil
		}
		return string(data), nil
	case "reset":
		if len(args) != 2 {
			return "", fmt.Errorf(`wrong # args: should be "tkstats reset"`)
		}
		m.Reset()
		if app.Tracer != nil {
			app.Tracer.Reset()
		}
		if app.Spans != nil {
			app.Spans.Reset()
		}
		return "", nil
	}
	return "", fmt.Errorf("bad option %q: should be counters, gauges, histogram, trace, spans, or reset", args[1])
}
