package tk

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tcl"
	"repro/internal/xproto"
)

// Event bindings (§3.2, Figure 7): the bind command attaches Tcl commands
// to X event patterns on a window. Patterns may be single events
// ("<Enter>", "a"), carry modifiers ("<Control-q>", "<Double-Button-1>"),
// or form multi-event sequences ("<Escape>q"). Before executing a bound
// command, %-sequences are replaced with fields from the event.

// pattern is one event in a binding sequence.
type pattern struct {
	eventType int    // xproto event type
	detail    uint32 // keysym or button number; 0 = any
	mods      uint16 // required modifier mask
	anyMods   bool   // "Any-" prefix: ignore extra modifiers (always true here)
	count     int    // 1, or 2/3 for Double/Triple
}

// binding is one bound sequence.
type binding struct {
	spec   string
	seq    []pattern
	script string
}

type bindingTable struct {
	byWindow map[string][]*binding
}

func newBindingTable() *bindingTable {
	return &bindingTable{byWindow: make(map[string][]*binding)}
}

func (bt *bindingTable) deleteWindow(path string) {
	delete(bt.byWindow, path)
}

// eventTypeNames maps bind event-type names to X event types.
var eventTypeNames = map[string]int{
	"ButtonPress":   xproto.ButtonPress,
	"Button":        xproto.ButtonPress,
	"ButtonRelease": xproto.ButtonRelease,
	"KeyPress":      xproto.KeyPress,
	"Key":           xproto.KeyPress,
	"KeyRelease":    xproto.KeyRelease,
	"Motion":        xproto.MotionNotify,
	"Enter":         xproto.EnterNotify,
	"Leave":         xproto.LeaveNotify,
	"FocusIn":       xproto.FocusIn,
	"FocusOut":      xproto.FocusOut,
	"Expose":        xproto.Expose,
	"Destroy":       xproto.DestroyNotify,
	"Unmap":         xproto.UnmapNotify,
	"Map":           xproto.MapNotify,
	"Configure":     xproto.ConfigureNotify,
	"Property":      xproto.PropertyNotify,
}

// modifierNames maps bind modifier names to state-mask bits; count
// modifiers (Double/Triple) and Any are handled separately.
var modifierNames = map[string]uint16{
	"Control": xproto.ControlMask,
	"Shift":   xproto.ShiftMask,
	"Lock":    xproto.LockMask,
	"Meta":    xproto.Mod1Mask,
	"M":       xproto.Mod1Mask,
	"Alt":     xproto.Mod1Mask,
	"B1":      xproto.Button1Mask,
	"Button1": xproto.Button1Mask,
	"B2":      xproto.Button2Mask,
	"Button2": xproto.Button2Mask,
	"B3":      xproto.Button3Mask,
	"Button3": xproto.Button3Mask,
	"B4":      xproto.Button4Mask,
	"B5":      xproto.Button5Mask,
}

// parseSequence parses a binding specification into its pattern sequence.
func parseSequence(spec string) ([]pattern, error) {
	var seq []pattern
	i := 0
	for i < len(spec) {
		c := spec[i]
		if c == '<' {
			end := strings.IndexByte(spec[i:], '>')
			if end < 0 {
				return nil, fmt.Errorf("missing \">\" in binding %q", spec)
			}
			p, err := parseAngle(spec[i+1 : i+end])
			if err != nil {
				return nil, err
			}
			seq = append(seq, p)
			i += end + 1
			continue
		}
		// A bare character is a KeyPress for that character. Space cannot
		// appear bare; use <space>.
		if c == ' ' {
			return nil, fmt.Errorf("bad binding %q: use <space> for the space key", spec)
		}
		seq = append(seq, pattern{eventType: xproto.KeyPress, detail: uint32(c), count: 1})
		i++
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("empty binding")
	}
	return seq, nil
}

// parseAngle parses the inside of <...>: modifiers, event type, detail.
func parseAngle(body string) (pattern, error) {
	p := pattern{count: 1}
	fields := strings.Split(body, "-")
	i := 0
	for i < len(fields) {
		f := fields[i]
		switch f {
		case "Double":
			p.count = 2
			i++
			continue
		case "Triple":
			p.count = 3
			i++
			continue
		case "Any":
			p.anyMods = true
			i++
			continue
		}
		if m, ok := modifierNames[f]; ok {
			p.mods |= m
			i++
			continue
		}
		break
	}
	if i >= len(fields) {
		return p, fmt.Errorf("no event type in binding <%s>", body)
	}
	// Event type or shorthand.
	f := fields[i]
	if t, ok := eventTypeNames[f]; ok {
		p.eventType = t
		i++
	} else if len(f) == 1 && f[0] >= '1' && f[0] <= '5' && i == len(fields)-1 {
		// <1> is ButtonPress-1.
		p.eventType = xproto.ButtonPress
		p.detail = uint32(f[0] - '0')
		return p, nil
	} else if ks, ok := xproto.KeysymFromName(f); ok && i == len(fields)-1 {
		// <Escape>, <a>: KeyPress shorthand.
		p.eventType = xproto.KeyPress
		p.detail = uint32(ks)
		return p, nil
	} else {
		return p, fmt.Errorf("bad event type or keysym %q in binding <%s>", f, body)
	}
	// Optional detail after the type.
	if i < len(fields) {
		detail := strings.Join(fields[i:], "-")
		switch p.eventType {
		case xproto.ButtonPress, xproto.ButtonRelease:
			n, err := strconv.Atoi(detail)
			if err != nil || n < 1 || n > 5 {
				return p, fmt.Errorf("bad button number %q in binding <%s>", detail, body)
			}
			p.detail = uint32(n)
		case xproto.KeyPress, xproto.KeyRelease:
			ks, ok := xproto.KeysymFromName(detail)
			if !ok {
				return p, fmt.Errorf("bad keysym %q in binding <%s>", detail, body)
			}
			p.detail = uint32(ks)
		default:
			return p, fmt.Errorf("detail %q not allowed for this event type in <%s>", detail, body)
		}
	}
	return p, nil
}

// requiredMask returns the X event mask a sequence needs selected.
func requiredMask(seq []pattern) uint32 {
	var mask uint32
	for _, p := range seq {
		mask |= xproto.EventMaskFor(p.eventType)
		if p.eventType == xproto.MotionNotify && p.mods&(xproto.Button1Mask|xproto.Button2Mask|xproto.Button3Mask) != 0 {
			mask |= xproto.ButtonMotionMask
		}
	}
	return mask
}

// Bind attaches (or replaces/deletes) a binding on a window. An empty
// script deletes; a script starting with "+" appends to the existing one.
func (app *App) Bind(w *Window, spec, script string) error {
	seq, err := parseSequence(spec)
	if err != nil {
		return err
	}
	list := app.bindings.byWindow[w.Path]
	idx := -1
	for i, b := range list {
		if b.spec == spec {
			idx = i
			break
		}
	}
	if script == "" {
		if idx >= 0 {
			app.bindings.byWindow[w.Path] = append(list[:idx], list[idx+1:]...)
		}
		return nil
	}
	if strings.HasPrefix(script, "+") && idx >= 0 {
		list[idx].script += "\n" + script[1:]
		return nil
	}
	if strings.HasPrefix(script, "+") {
		script = script[1:]
	}
	b := &binding{spec: spec, seq: seq, script: script}
	if idx >= 0 {
		list[idx] = b
	} else {
		app.bindings.byWindow[w.Path] = append(list, b)
	}
	// Extend the X event selection to cover the bound events.
	if m := requiredMask(seq); m&^w.selectedMask != 0 {
		w.selectedMask |= m
		app.Disp.SelectInput(w.XID, w.selectedMask)
	}
	return nil
}

// BoundSequences lists the sequences bound on a window.
func (app *App) BoundSequences(w *Window) []string {
	list := app.bindings.byWindow[w.Path]
	specs := make([]string, 0, len(list))
	for _, b := range list {
		specs = append(specs, b.spec)
	}
	sort.Strings(specs)
	return specs
}

// BoundScript returns the script bound to spec on w ("" if none).
func (app *App) BoundScript(w *Window, spec string) string {
	for _, b := range app.bindings.byWindow[w.Path] {
		if b.spec == spec {
			return b.script
		}
	}
	return ""
}

// matchesEvent checks a single pattern against one event.
func (p *pattern) matchesEvent(ev *xproto.Event) bool {
	if int(ev.Type) != p.eventType {
		return false
	}
	if p.detail != 0 {
		var detail uint32
		switch p.eventType {
		case xproto.ButtonPress, xproto.ButtonRelease:
			detail = ev.Detail
		case xproto.KeyPress, xproto.KeyRelease:
			detail = uint32(ev.Keysym)
		}
		if detail != p.detail {
			return false
		}
	}
	if ev.State&p.mods != p.mods {
		return false
	}
	return true
}

// doubleClickTime is the maximum separation for Double/Triple matches.
const doubleClickTime = 500 // milliseconds of server time

// ignorableInSequence reports event types that may sit between the
// events of a sequence without breaking it (Tk ignores release events
// during sequence matching unless a pattern asks for them).
func ignorableInSequence(t uint8) bool {
	return int(t) == xproto.ButtonRelease || int(t) == xproto.KeyRelease
}

// matchSequence checks whether a binding's sequence matches the event
// history ending in the current event. history includes the current
// event as its last element.
func matchSequence(seq []pattern, history []xproto.Event) bool {
	h := len(history)
	for i := len(seq) - 1; i >= 0; i-- {
		p := seq[i]
		need := p.count
		var prev *xproto.Event
		for need > 0 {
			if h == 0 {
				return false
			}
			h--
			ev := &history[h]
			if !p.matchesEvent(ev) {
				// Releases between the events of a press sequence are
				// skipped (so Double-Button works when releases are
				// selected too); anything else breaks the sequence.
				if ignorableInSequence(ev.Type) && int(ev.Type) != p.eventType {
					continue
				}
				return false
			}
			if prev != nil {
				// Repeat constraint for Double/Triple: close in time and
				// space.
				if prev.Time-ev.Time > doubleClickTime {
					return false
				}
				dx, dy := int(prev.RootX)-int(ev.RootX), int(prev.RootY)-int(ev.RootY)
				if dx > 5 || dx < -5 || dy > 5 || dy < -5 {
					return false
				}
			}
			prev = ev
			need--
		}
	}
	return true
}

// score ranks binding specificity: longer sequences and more constrained
// patterns win.
func (b *binding) score() int {
	s := 0
	for _, p := range b.seq {
		s += 100 * p.count
		if p.detail != 0 {
			s += 10
		}
		s += popcount16(p.mods)
	}
	return s
}

func popcount16(v uint16) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// historyTracked reports whether an event type participates in sequence
// history.
func historyTracked(t uint8) bool {
	switch int(t) {
	case xproto.KeyPress, xproto.ButtonPress, xproto.ButtonRelease:
		return true
	}
	return false
}

const historyLimit = 12

// trigger matches ev against w's bindings and executes the most specific
// match.
func (bt *bindingTable) trigger(app *App, w *Window, ev *xproto.Event) {
	if historyTracked(ev.Type) {
		w.history = append(w.history, *ev)
		if len(w.history) > historyLimit {
			w.history = w.history[len(w.history)-historyLimit:]
		}
	}
	list := bt.byWindow[w.Path]
	if len(list) == 0 {
		return
	}
	var best *binding
	bestScore := -1
	for _, b := range list {
		last := b.seq[len(b.seq)-1]
		if int(ev.Type) != last.eventType {
			continue
		}
		var ok bool
		if historyTracked(ev.Type) {
			ok = matchSequence(b.seq, w.history)
		} else {
			ok = len(b.seq) == 1 && last.matchesEvent(ev)
		}
		if ok {
			if s := b.score(); s > bestScore {
				best, bestScore = b, s
			}
		}
	}
	if best == nil {
		return
	}
	cmd := substitutePercents(app, best.script, w, ev)
	if _, err := app.Interp.Eval(cmd); err != nil {
		app.BackgroundError(fmt.Sprintf("binding %q on %s", best.spec, w.Path), err)
	}
}

// substitutePercents replaces % sequences in a bound command with event
// fields (Figure 7: "%x and %y will be replaced with the x- and
// y-coordinates from the X event").
func substitutePercents(app *App, script string, w *Window, ev *xproto.Event) string {
	if !strings.ContainsRune(script, '%') {
		return script
	}
	var b strings.Builder
	for i := 0; i < len(script); i++ {
		c := script[i]
		if c != '%' || i+1 >= len(script) {
			b.WriteByte(c)
			continue
		}
		i++
		switch script[i] {
		case '%':
			b.WriteByte('%')
		case 'x':
			b.WriteString(strconv.Itoa(int(ev.X)))
		case 'y':
			b.WriteString(strconv.Itoa(int(ev.Y)))
		case 'X':
			b.WriteString(strconv.Itoa(int(ev.RootX)))
		case 'Y':
			b.WriteString(strconv.Itoa(int(ev.RootY)))
		case 'b':
			b.WriteString(strconv.Itoa(int(ev.Detail)))
		case 'k':
			b.WriteString(strconv.Itoa(int(ev.Detail)))
		case 'K':
			b.WriteString(tcl.QuoteElement(xproto.KeysymName(ev.Keysym)))
		case 'A':
			b.WriteString(tcl.QuoteElement(xproto.KeysymRune(ev.Keysym, ev.State)))
		case 'W':
			b.WriteString(w.Path)
		case 'T':
			b.WriteString(strconv.Itoa(int(ev.Type)))
		case 't':
			b.WriteString(strconv.Itoa(int(ev.Time)))
		case 'w':
			b.WriteString(strconv.Itoa(int(ev.Width)))
		case 'h':
			b.WriteString(strconv.Itoa(int(ev.Height)))
		case 's':
			b.WriteString(strconv.Itoa(int(ev.State)))
		case 'E':
			if ev.SendEvent {
				b.WriteString("1")
			} else {
				b.WriteString("0")
			}
		default:
			b.WriteByte('%')
			b.WriteByte(script[i])
		}
	}
	return b.String()
}
