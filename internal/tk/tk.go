// Package tk implements the Tk toolkit intrinsics described in §3 of the
// paper: window path names, event dispatching (X events, timers, idle
// handlers and Tcl event bindings), resource and structure caches,
// geometry management with the packer, the option database, selection
// support, focus management, and the send command for inter-application
// communication. Widgets (internal/widget) are built on these intrinsics
// exactly as the paper's §4 describes: C code (here Go) for display and
// behaviour, Tcl commands for creation and manipulation.
package tk

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/obs/xtrace"
	"repro/internal/tcl"
	"repro/internal/xclient"
	"repro/internal/xproto"
)

// capitalize upper-cases the first ASCII letter of a name, forming the
// conventional class name from an application name.
func capitalize(s string) string {
	if s == "" {
		return s
	}
	if s[0] >= 'a' && s[0] <= 'z' {
		return string(s[0]-'a'+'A') + s[1:]
	}
	return s
}

// Widget is the hook a widget implementation attaches to a Window. The
// intrinsics call into it for repainting and cleanup.
type Widget interface {
	// Redraw repaints the widget into its X window.
	Redraw()
	// Destroyed tells the widget its window is gone; it must release
	// resources and unregister its widget command.
	Destroyed()
}

// GeometryManager arranges the children ("slaves") it manages inside a
// window. Only one geometry manager controls a given window at a time
// (§3.4).
type GeometryManager interface {
	// Name identifies the manager ("pack").
	Name() string
	// SlaveRequest is called when a managed window changes its requested
	// size.
	SlaveRequest(slave *Window)
	// LostSlave is called when the slave is destroyed or taken over by
	// another manager.
	LostSlave(slave *Window)
}

// Window is the toolkit's per-window structure: the structure cache of
// §3.3 (geometry, hierarchy) plus widget and geometry-manager hooks.
type Window struct {
	App    *App
	Path   string // full path name, e.g. ".a.b"
	Name   string // last component, e.g. "b"
	Class  string // widget class, e.g. "Button"
	Parent *Window

	// Children in creation order.
	Children []*Window

	// XID is the server-side window.
	XID xproto.ID

	// Actual geometry (cached structure information, §3.3).
	X, Y          int
	Width, Height int
	BorderWidth   int

	// Requested geometry, set by the widget via GeometryRequest and
	// consumed by geometry managers (§3.4).
	ReqWidth, ReqHeight int

	// InternalBorder is space the widget wants left around slaves packed
	// inside it.
	InternalBorder int

	Mapped    bool
	Destroyed bool
	TopLevel  bool

	// Widget hook (may be nil for plain windows).
	Widget Widget

	// Manager is the geometry manager currently controlling this window's
	// size/placement within its parent.
	Manager GeometryManager

	// selectedMask accumulates the X event mask this client has selected.
	selectedMask uint32

	// handlers are C-level (Go) event handlers: mask → funcs.
	handlers []evtHandler

	// history of recent device events for multi-event bindings
	// (<Escape>q, Double-Button-1).
	history []xproto.Event

	redrawPending bool
}

type evtHandler struct {
	mask uint32
	fn   func(ev *xproto.Event)
}

// App is one Tk application: a Tcl interpreter plus a display connection
// plus the window table. It corresponds to a single main window and name
// in the send registry.
type App struct {
	Interp *tcl.Interp
	Disp   *xclient.Display
	Name   string // registered application name (send target)
	Main   *Window

	// Tracer, when non-nil, is the wire tracer tapped into this
	// application's display connection (wish -trace); the tkstats
	// command exposes it.
	Tracer *xtrace.Tracer

	// Spans, when non-nil, is the request-span tracer shared with the
	// display connection (wish -spans): the toolkit adds tk.event spans
	// for sampled event dispatches, and "tkstats spans" exports the
	// whole ring as Chrome trace-event JSON.
	Spans *trace.Tracer

	// SendTimeout bounds how long Send waits for a peer to answer
	// before probing whether it is dead (and, if so, pruning it from
	// the registry). Defaults to DefaultSendTimeout; zero or negative
	// falls back to the default.
	SendTimeout time.Duration

	windows map[string]*Window
	xidMap  map[xproto.ID]*Window

	bindings *bindingTable

	colorCache  map[string]uint32
	colorNames  map[uint32]string
	fontCache   map[string]*xclient.Font
	cursorCache map[string]xproto.ID
	bitmapCache map[string]*Bitmap
	gcCache     map[gcKey]xproto.ID

	options *optionDB
	packer  *Packer

	timers *timerQueue
	idle   []func()
	posted chan func()
	// evReceived counts events taken off Disp.Events(), mirroring the
	// display's EventsSeen count. When the two differ an event is in
	// flight between the read loop and the channel, so a blocking
	// receive is guaranteed to return promptly. Touched only on the
	// event-loop goroutine (DoOneEvent / pumpOnce).
	evReceived uint64
	// evSpanSeq numbers dispatched events for span sampling (the tk side
	// has no protocol sequence, so it samples on its own counter).
	// Touched only on the event-loop goroutine.
	evSpanSeq uint64
	// quitFlag and destroyed are atomic because StartServing pumps the
	// event loop in a background goroutine: bindings fired there (e.g.
	// "destroy .", exit, Control-q handlers) set them while the main
	// goroutine polls Quitting.
	quitFlag atomic.Bool

	// Selection state.
	selOwner    *Window
	selLost     func(win *Window)
	selStatePtr *selState

	// Send state.
	commWin     xproto.ID
	sendSerial  int
	sendResults map[int]sendResult
	registered  bool

	// Atoms used by the toolkit, interned once.
	atomRegistry xproto.Atom
	atomSendCmd  xproto.Atom
	atomSendRes  xproto.Atom
	atomSelProp  xproto.Atom

	destroyed atomic.Bool
}

type sendResult struct {
	code   int
	result string
}

// gcKey identifies a shareable graphics context (§3.3: resources reused
// across widgets).
type gcKey struct {
	fg, bg    uint32
	lineWidth int
	font      xproto.ID
}

// Config carries the parameters for creating an App.
type Config struct {
	// Name is the application's name for the send registry (argv[0] in
	// real wish). Uniquified if already taken on the display.
	Name string
	// Class is the main window's class (defaults to the capitalized
	// name).
	Class string
	// Interp may be supplied to share an existing interpreter; otherwise
	// a new one is created.
	Interp *tcl.Interp
	// Trace, if non-nil, is a wire tracer already tapped into the
	// display connection; it becomes App.Tracer so tkstats can reach it.
	Trace *xtrace.Tracer
	// Spans, if non-nil, is a request-span tracer (normally the one also
	// attached to the display with SetTracer); it becomes App.Spans so
	// event dispatches are sampled and tkstats can export the ring.
	Spans *trace.Tracer
}

// NewApp creates a Tk application over an open display connection,
// creates its main window ".", registers all intrinsics Tcl commands and
// registers the application in the send registry.
func NewApp(d *xclient.Display, cfg Config) (*App, error) {
	if cfg.Name == "" {
		cfg.Name = "tk"
	}
	if cfg.Class == "" {
		cfg.Class = capitalize(cfg.Name)
	}
	in := cfg.Interp
	if in == nil {
		in = tcl.New()
	}
	app := &App{
		Interp:      in,
		Disp:        d,
		Tracer:      cfg.Trace,
		Spans:       cfg.Spans,
		SendTimeout: DefaultSendTimeout,
		windows:     make(map[string]*Window, 32),
		xidMap:      make(map[xproto.ID]*Window, 32),
		bindings:    newBindingTable(),
		colorCache:  make(map[string]uint32),
		colorNames:  make(map[uint32]string),
		fontCache:   make(map[string]*xclient.Font),
		cursorCache: make(map[string]xproto.ID),
		bitmapCache: make(map[string]*Bitmap),
		gcCache:     make(map[gcKey]xproto.ID),
		options:     newOptionDB(),
		timers:      newTimerQueue(),
		posted:      make(chan func(), 256),
		sendResults: make(map[int]sendResult),
	}

	// Route the display's asynchronous errors (X errors for one-way
	// requests, malformed events) through the tkerror convention. The
	// handler fires on the client read loop, so hop to the event loop
	// through the posted queue; if the queue is full the application is
	// already wedged and the error stays visible in the display metrics.
	d.ErrorHandler = func(msg string) {
		select {
		case app.posted <- func() { app.BackgroundError("display", errors.New(msg)) }:
		default:
		}
	}

	// Intern the toolkit's atoms: all four are issued as one pipelined
	// flight (one wire segment, one latency charge) instead of four
	// serial round trips.
	ckRegistry := d.InternAtomAsync("TK_INTERP_REGISTRY")
	ckSendCmd := d.InternAtomAsync("TK_SEND_COMMAND")
	ckSendRes := d.InternAtomAsync("TK_SEND_RESULT")
	ckSelProp := d.InternAtomAsync("TK_SELECTION")
	var err error
	if app.atomRegistry, err = ckRegistry.Wait(); err != nil {
		return nil, err
	}
	app.atomSendCmd, _ = ckSendCmd.Wait()
	app.atomSendRes, _ = ckSendRes.Wait()
	app.atomSelProp, _ = ckSelProp.Wait()

	// The main window "." is a top-level child of the root.
	main := &Window{
		App: app, Path: ".", Name: "", Class: cfg.Class,
		Width: 200, Height: 200, ReqWidth: 0, ReqHeight: 0,
		TopLevel: true,
	}
	main.XID = d.CreateWindow(d.Root, 0, 0, 200, 200, 0, xclient.WindowAttributes{
		Background: 0xffffff,
		Border:     0x000000,
	})
	app.windows["."] = main
	app.xidMap[main.XID] = main
	app.Main = main
	app.selectStructure(main)
	main.Map()

	// Comm window for send: an unmapped override-redirect child of root.
	app.commWin = d.CreateWindow(d.Root, -10, -10, 1, 1, 0, xclient.WindowAttributes{
		OverrideRedirect: true,
		EventMask:        xproto.PropertyChangeMask,
	})

	registerCommands(app)
	registerPacker(app)

	if err := app.registerName(cfg.Name); err != nil {
		return nil, err
	}
	in.ExitHandler = func(code int) {
		app.Destroy()
	}
	return app, nil
}

// selectStructure subscribes the app to structural events on a window.
func (app *App) selectStructure(w *Window) {
	w.selectedMask |= xproto.StructureNotifyMask | xproto.ExposureMask
	app.Disp.SelectInput(w.XID, w.selectedMask)
}

// Metrics returns the application's metrics registry. It is the
// display connection's registry, so protocol counters ("requests",
// "requests.<OpName>", "roundtrips", the "roundtrip" histogram) and
// toolkit metrics ("tk.events", "tk.dispatch", cache hit/miss
// counters, queue-depth gauges) share one namespace — what the
// tkstats command reports.
func (app *App) Metrics() *obs.Registry { return app.Disp.Metrics() }

// Quit asks the event loop to exit.
func (app *App) Quit() { app.quitFlag.Store(true) }

// Quitting reports whether Quit or Destroy has been called. Safe to
// call from any goroutine.
func (app *App) Quitting() bool { return app.quitFlag.Load() || app.destroyed.Load() }

// NameToWindow resolves a path name ("." or ".a.b") to its Window.
func (app *App) NameToWindow(path string) (*Window, error) {
	w, ok := app.windows[path]
	if !ok || w.Destroyed {
		return nil, fmt.Errorf("bad window path name %q", path)
	}
	return w, nil
}

// WindowExists reports whether path names a live window.
func (app *App) WindowExists(path string) bool {
	w, ok := app.windows[path]
	return ok && !w.Destroyed
}

// parsePath splits ".a.b" into parent path "." + name "a.b"'s last
// component. It validates the syntax of §3.1.
func parsePath(path string) (parent, name string, err error) {
	if path == "" || path[0] != '.' {
		return "", "", fmt.Errorf("bad window path name %q", path)
	}
	if path == "." {
		return "", "", fmt.Errorf("cannot create %q: it always exists", path)
	}
	i := strings.LastIndexByte(path, '.')
	name = path[i+1:]
	if name == "" || strings.Contains(name, ".") {
		return "", "", fmt.Errorf("bad window path name %q", path)
	}
	if i == 0 {
		parent = "."
	} else {
		parent = path[:i]
	}
	return parent, name, nil
}

// CreateWindow makes a new toolkit window at path with the given class,
// as a child of its path parent. Widgets call this from their creation
// commands.
func (app *App) CreateWindow(path, class string) (*Window, error) {
	return app.createWindow(path, class, false)
}

// CreateTopLevel makes a window at path whose X window is a child of the
// root (for toplevel widgets and menus), though its path parent is still
// the Tk window named by the path.
func (app *App) CreateTopLevel(path, class string) (*Window, error) {
	return app.createWindow(path, class, true)
}

func (app *App) createWindow(path, class string, top bool) (*Window, error) {
	parentPath, name, err := parsePath(path)
	if err != nil {
		return nil, err
	}
	if app.WindowExists(path) {
		return nil, fmt.Errorf("window name %q already exists in parent", path)
	}
	parent, err := app.NameToWindow(parentPath)
	if err != nil {
		return nil, fmt.Errorf("bad window path name %q", path)
	}
	w := &Window{
		App: app, Path: path, Name: name, Class: class,
		Parent: parent, Width: 1, Height: 1, TopLevel: top,
	}
	xparent := parent.XID
	if top {
		xparent = app.Disp.Root
	}
	w.XID = app.Disp.CreateWindow(xparent, 0, 0, 1, 1, 0, xclient.WindowAttributes{
		Background: 0xffffff,
	})
	parent.Children = append(parent.Children, w)
	app.windows[path] = w
	app.xidMap[w.XID] = w
	app.selectStructure(w)
	return w, nil
}

// DestroyWindow destroys a window and its descendants: Tcl widget
// commands are deleted, widgets notified, geometry managers informed, and
// the X windows destroyed.
func (app *App) DestroyWindow(w *Window) {
	if w.Destroyed {
		return
	}
	// Children first (use a copy: destruction mutates the slice).
	children := append([]*Window(nil), w.Children...)
	for _, ch := range children {
		app.DestroyWindow(ch)
	}
	w.Destroyed = true
	w.Mapped = false

	// Run <Destroy> bindings before teardown, as Tk does.
	app.bindings.trigger(app, w, &xproto.Event{Type: xproto.DestroyNotify, Window: w.XID})

	if w.Manager != nil {
		w.Manager.LostSlave(w)
		w.Manager = nil
	}
	if packer := app.packerFor(w); packer != nil {
		packer.forgetMaster(w)
	}
	if w.Widget != nil {
		w.Widget.Destroyed()
		w.Widget = nil
	}
	if app.selOwner == w {
		app.selOwner = nil
	}
	if app.selStatePtr != nil {
		delete(app.selStatePtr.handlers, w)
	}
	app.bindings.deleteWindow(w.Path)
	delete(app.windows, w.Path)
	delete(app.xidMap, w.XID)
	if w.Parent != nil {
		sibs := w.Parent.Children
		for i, sib := range sibs {
			if sib == w {
				w.Parent.Children = append(sibs[:i], sibs[i+1:]...)
				break
			}
		}
	}
	app.Disp.DestroyWindow(w.XID)

	if w == app.Main {
		app.Destroy()
	}
}

// Destroy tears the whole application down: unregisters from the send
// registry, destroys the window tree and marks the interpreter dead.
func (app *App) Destroy() {
	if !app.destroyed.CompareAndSwap(false, true) {
		return
	}
	app.quitFlag.Store(true)
	app.unregisterName()
	if app.Main != nil && !app.Main.Destroyed {
		app.DestroyWindow(app.Main)
	}
	app.Disp.Flush()
}

// Eval evaluates a Tcl script in the application's interpreter.
func (app *App) Eval(script string) (string, error) {
	return app.Interp.Eval(script)
}

// MustEval evaluates a script and panics on error; for tests and
// examples.
func (app *App) MustEval(script string) string {
	res, err := app.Eval(script)
	if err != nil {
		panic(fmt.Sprintf("tk: script failed: %v\nscript: %s", err, script))
	}
	return res
}

// BackgroundError reports an error from an asynchronously executed Tcl
// command (an event binding, timer or send). If the application defines a
// tkerror procedure it is invoked with the message (as in Tk); otherwise
// the error is printed to the interpreter's output.
func (app *App) BackgroundError(context string, err error) {
	if err == nil {
		return
	}
	if app.Interp.HasCommand("tkerror") {
		if _, herr := app.Interp.Call("tkerror", err.Error()); herr == nil {
			return
		}
	}
	msg := fmt.Sprintf("tk: background error in %s: %v\n", context, err)
	if app.Interp.Out != nil {
		app.Interp.Out.Write([]byte(msg))
	} else {
		fmt.Print(msg)
	}
}

// windowContaining returns the deepest mapped window of this application
// containing the root-coordinate point, or nil.
func (app *App) windowContaining(x, y int) *Window {
	var deepest *Window
	depth := -1
	for _, w := range app.windows {
		if w.Destroyed || !w.Mapped {
			continue
		}
		rx, ry := w.RootCoords()
		if x < rx || y < ry || x >= rx+w.Width || y >= ry+w.Height {
			continue
		}
		d := strings.Count(w.Path, ".")
		if w.Path == "." {
			d = 0
		}
		if d > depth {
			deepest, depth = w, d
		}
	}
	return deepest
}

// RootCoords returns a window's position in root coordinates using the
// cached structure information.
func (w *Window) RootCoords() (int, int) {
	x, y := 0, 0
	for cur := w; cur != nil; cur = cur.Parent {
		x += cur.X + cur.BorderWidth
		y += cur.Y + cur.BorderWidth
		if cur.TopLevel {
			break
		}
	}
	return x, y
}

// GeometryRequest records the size a widget wants for its window and
// notifies whoever is responsible for granting it: the window's geometry
// manager, or the toolkit's built-in top-level negotiation for ".".
func (w *Window) GeometryRequest(width, height int) {
	if width == w.ReqWidth && height == w.ReqHeight {
		return
	}
	w.ReqWidth, w.ReqHeight = width, height
	if w.Manager != nil {
		w.Manager.SlaveRequest(w)
		return
	}
	if w.TopLevel && !w.Destroyed {
		// Stand-in for the window manager: grant top-level requests.
		w.App.resizeWindow(w, w.X, w.Y, width, height, false)
	}
}

// resizeWindow applies a geometry decision to a window, updating the
// cache and the server.
func (app *App) resizeWindow(w *Window, x, y, width, height int, moveToo bool) {
	if width < 1 {
		width = 1
	}
	if height < 1 {
		height = 1
	}
	changed := width != w.Width || height != w.Height
	moved := moveToo && (x != w.X || y != w.Y)
	if !changed && !moved {
		return
	}
	w.Width, w.Height = width, height
	if moveToo {
		w.X, w.Y = x, y
		app.Disp.MoveResizeWindow(w.XID, x, y, width, height)
	} else {
		app.Disp.ResizeWindow(w.XID, width, height)
	}
	if w.Widget != nil {
		w.ScheduleRedraw()
	}
	// A resized master needs its slaves re-laid-out.
	if packer := app.packerFor(w); packer != nil {
		packer.scheduleRepack(w)
	}
}

// Map makes the window viewable.
func (w *Window) Map() {
	if w.Mapped || w.Destroyed {
		return
	}
	w.Mapped = true
	w.App.Disp.MapWindow(w.XID)
}

// Unmap hides the window.
func (w *Window) Unmap() {
	if !w.Mapped || w.Destroyed {
		return
	}
	w.Mapped = false
	w.App.Disp.UnmapWindow(w.XID)
}

// ScheduleRedraw arranges for the widget to repaint at idle time,
// collapsing repeated damage into one repaint (a when-idle handler,
// §3.2).
func (w *Window) ScheduleRedraw() {
	if w.redrawPending || w.Destroyed || w.Widget == nil {
		return
	}
	w.redrawPending = true
	w.App.DoWhenIdle(func() {
		w.redrawPending = false
		if !w.Destroyed && w.Widget != nil {
			w.Widget.Redraw()
		}
	})
}

// AddEventHandler registers a Go-level handler for the events in mask on
// this window, extending the X selection as needed (§3.2).
func (w *Window) AddEventHandler(mask uint32, fn func(ev *xproto.Event)) {
	w.handlers = append(w.handlers, evtHandler{mask: mask, fn: fn})
	if mask&^w.selectedMask != 0 {
		w.selectedMask |= mask
		w.App.Disp.SelectInput(w.XID, w.selectedMask)
	}
}

// SetBackground changes the window's X background pixel.
func (w *Window) SetBackground(pixel uint32) {
	w.App.Disp.SetWindowBackground(w.XID, pixel)
}
