package tk

import (
	"sort"
	"testing"

	"repro/internal/tcl"
)

// TestCommandNamesMatchRegister keeps the static CommandNames table in
// sync with what NewApp actually registers: every advertised name must
// be a live command, and every command NewApp adds on top of the bare
// Tcl interpreter must be advertised.
func TestCommandNamesMatchRegister(t *testing.T) {
	app, _ := newTestApp(t)

	names := CommandNames()
	if !sort.StringsAreSorted(names) {
		t.Error("CommandNames is not sorted")
	}
	advertised := map[string]bool{}
	for _, n := range names {
		if advertised[n] {
			t.Errorf("CommandNames lists %q twice", n)
		}
		advertised[n] = true
		if !app.Interp.HasCommand(n) {
			t.Errorf("CommandNames lists %q but NewApp did not register it", n)
		}
	}

	bare := map[string]bool{}
	for _, n := range tcl.New().CommandNames() {
		bare[n] = true
	}
	for _, n := range app.Interp.CommandNames() {
		if !bare[n] && !advertised[n] {
			t.Errorf("NewApp registers %q but CommandNames does not list it", n)
		}
	}
}
