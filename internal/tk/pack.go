package tk

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/tcl"
)

// The packer (§3.4) arranges slave windows around the edges of a cavity
// inside their parent: each slave is allocated a frame against one side
// (top/bottom/left/right) of the remaining cavity, may expand to claim
// leftover space, and may fill its frame in either dimension. The
// algorithm follows the classic Tk packer. The Tcl syntax is the old
// (Tk 1.0/paper-era) form used in Figure 9:
//
//	pack append .x .x.a {top} .x.b {top} .x.c {top}
//	pack append . .scroll {right filly} .list {left expand fill}
//
// plus the query commands "pack info", "pack slaves" and removal with
// "pack unpack"/"pack forget".

// Sides.
const (
	sideTop = iota
	sideBottom
	sideLeft
	sideRight
)

type packSlave struct {
	win    *Window
	side   int
	expand bool
	fillX  bool
	fillY  bool
	padX   int
	padY   int
	anchor string // "center", "n", "s", "e", "w", "ne", ...
}

// Packer is the built-in geometry manager.
type Packer struct {
	app     *App
	masters map[*Window][]*packSlave
	pending map[*Window]bool
	// propagate controls whether masters resize to fit their slaves.
	noPropagate map[*Window]bool
}

func registerPacker(app *App) {
	p := &Packer{
		app:         app,
		masters:     make(map[*Window][]*packSlave),
		pending:     make(map[*Window]bool),
		noPropagate: make(map[*Window]bool),
	}
	app.packer = p
	app.Interp.Register("pack", p.packCmd)
}

// packerFor returns the packer if it manages slaves inside w.
func (app *App) packerFor(w *Window) *Packer {
	if app.packer != nil && len(app.packer.masters[w]) > 0 {
		return app.packer
	}
	return nil
}

// Name implements GeometryManager.
func (p *Packer) Name() string { return "pack" }

// SlaveRequest implements GeometryManager: a slave wants a new size.
func (p *Packer) SlaveRequest(slave *Window) {
	if slave.Parent != nil {
		p.scheduleRepack(slave.Parent)
	}
}

// LostSlave implements GeometryManager.
func (p *Packer) LostSlave(slave *Window) {
	master := slave.Parent
	if master == nil {
		return
	}
	slaves := p.masters[master]
	for i, s := range slaves {
		if s.win == slave {
			p.masters[master] = append(slaves[:i], slaves[i+1:]...)
			break
		}
	}
	if len(p.masters[master]) == 0 {
		delete(p.masters, master)
	} else {
		p.scheduleRepack(master)
	}
}

// forgetMaster drops all packing state for a destroyed master.
func (p *Packer) forgetMaster(master *Window) {
	delete(p.masters, master)
	delete(p.pending, master)
	delete(p.noPropagate, master)
}

// scheduleRepack arranges for master's slaves to be re-laid-out at idle
// time.
func (p *Packer) scheduleRepack(master *Window) {
	if p.pending[master] || master.Destroyed {
		return
	}
	p.pending[master] = true
	p.app.DoWhenIdle(func() {
		delete(p.pending, master)
		if !master.Destroyed {
			p.arrange(master)
		}
	})
}

// parseOptions parses the old-style option list for one slave.
func parseOptions(spec string) (*packSlave, error) {
	s := &packSlave{side: sideTop, anchor: "center"}
	opts, err := tcl.ParseList(spec)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(opts); i++ {
		switch opt := opts[i]; opt {
		case "top":
			s.side = sideTop
		case "bottom":
			s.side = sideBottom
		case "left":
			s.side = sideLeft
		case "right":
			s.side = sideRight
		case "expand", "e":
			s.expand = true
		case "fill":
			s.fillX, s.fillY = true, true
		case "fillx":
			s.fillX = true
		case "filly":
			s.fillY = true
		case "padx":
			if i+1 >= len(opts) {
				return nil, fmt.Errorf("padx needs a value")
			}
			i++
			n, err := strconv.Atoi(opts[i])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad padx value %q", opts[i])
			}
			s.padX = n
		case "pady":
			if i+1 >= len(opts) {
				return nil, fmt.Errorf("pady needs a value")
			}
			i++
			n, err := strconv.Atoi(opts[i])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad pady value %q", opts[i])
			}
			s.padY = n
		case "frame":
			if i+1 >= len(opts) {
				return nil, fmt.Errorf("frame needs an anchor value")
			}
			i++
			s.anchor = strings.ToLower(opts[i])
		default:
			return nil, fmt.Errorf("bad pack option %q: should be top, bottom, left, right, expand, fill, fillx, filly, padx, pady, or frame", opt)
		}
	}
	return s, nil
}

// optionString renders a slave's options back to the old syntax (for
// pack info).
func (s *packSlave) optionString() string {
	var parts []string
	switch s.side {
	case sideTop:
		parts = append(parts, "top")
	case sideBottom:
		parts = append(parts, "bottom")
	case sideLeft:
		parts = append(parts, "left")
	case sideRight:
		parts = append(parts, "right")
	}
	if s.expand {
		parts = append(parts, "expand")
	}
	switch {
	case s.fillX && s.fillY:
		parts = append(parts, "fill")
	case s.fillX:
		parts = append(parts, "fillx")
	case s.fillY:
		parts = append(parts, "filly")
	}
	if s.padX != 0 {
		parts = append(parts, "padx", strconv.Itoa(s.padX))
	}
	if s.padY != 0 {
		parts = append(parts, "pady", strconv.Itoa(s.padY))
	}
	if s.anchor != "center" {
		parts = append(parts, "frame", s.anchor)
	}
	return strings.Join(parts, " ")
}

// packCmd implements the pack Tcl command.
func (p *Packer) packCmd(in *tcl.Interp, args []string) (string, error) {
	if len(args) < 2 {
		return "", fmt.Errorf(`wrong # args: should be "pack option arg ?arg ...?"`)
	}
	switch args[1] {
	case "append":
		if len(args) < 3 {
			return "", fmt.Errorf(`wrong # args: should be "pack append parent window options ..."`)
		}
		master, err := p.app.NameToWindow(args[2])
		if err != nil {
			return "", err
		}
		rest := args[3:]
		if len(rest)%2 != 0 {
			return "", fmt.Errorf("each window must be followed by an option list")
		}
		for i := 0; i < len(rest); i += 2 {
			win, err := p.app.NameToWindow(rest[i])
			if err != nil {
				return "", err
			}
			if win.Parent != master {
				return "", fmt.Errorf("can't pack %s inside %s: not its parent", rest[i], args[2])
			}
			slave, err := parseOptions(rest[i+1])
			if err != nil {
				return "", err
			}
			slave.win = win
			p.addSlave(master, slave)
		}
		return "", nil
	case "before", "after":
		// Old-style ordering: insert windows into the sibling's master
		// relative to an already-packed window.
		if len(args) < 4 {
			return "", fmt.Errorf(`wrong # args: should be "pack %s sibling window options ..."`, args[1])
		}
		sibling, err := p.app.NameToWindow(args[2])
		if err != nil {
			return "", err
		}
		master := sibling.Parent
		if master == nil || sibling.Manager != p {
			return "", fmt.Errorf("window %q isn't packed", args[2])
		}
		pos := -1
		for i, s := range p.masters[master] {
			if s.win == sibling {
				pos = i
				break
			}
		}
		if pos < 0 {
			return "", fmt.Errorf("window %q isn't packed", args[2])
		}
		if args[1] == "after" {
			pos++
		}
		rest := args[3:]
		if len(rest)%2 != 0 {
			return "", fmt.Errorf("each window must be followed by an option list")
		}
		for i := 0; i < len(rest); i += 2 {
			win, err := p.app.NameToWindow(rest[i])
			if err != nil {
				return "", err
			}
			if win.Parent != master {
				return "", fmt.Errorf("can't pack %s inside %s: not its parent", rest[i], master.Path)
			}
			slave, err := parseOptions(rest[i+1])
			if err != nil {
				return "", err
			}
			slave.win = win
			p.insertSlave(master, slave, pos)
			pos++
		}
		return "", nil
	case "unpack", "forget":
		if len(args) != 3 {
			return "", fmt.Errorf(`wrong # args: should be "pack %s window"`, args[1])
		}
		win, err := p.app.NameToWindow(args[2])
		if err != nil {
			return "", err
		}
		if win.Manager == p {
			win.Manager = nil
			p.LostSlave(win)
			win.Unmap()
		}
		return "", nil
	case "info":
		if len(args) != 3 {
			return "", fmt.Errorf(`wrong # args: should be "pack info parent"`)
		}
		master, err := p.app.NameToWindow(args[2])
		if err != nil {
			return "", err
		}
		var out []string
		for _, s := range p.masters[master] {
			out = append(out, s.win.Path, s.optionString())
		}
		return tcl.FormatList(out), nil
	case "slaves":
		if len(args) != 3 {
			return "", fmt.Errorf(`wrong # args: should be "pack slaves parent"`)
		}
		master, err := p.app.NameToWindow(args[2])
		if err != nil {
			return "", err
		}
		var out []string
		for _, s := range p.masters[master] {
			out = append(out, s.win.Path)
		}
		return tcl.FormatList(out), nil
	case "propagate":
		if len(args) < 3 || len(args) > 4 {
			return "", fmt.Errorf(`wrong # args: should be "pack propagate parent ?boolean?"`)
		}
		master, err := p.app.NameToWindow(args[2])
		if err != nil {
			return "", err
		}
		if len(args) == 3 {
			if p.noPropagate[master] {
				return "0", nil
			}
			return "1", nil
		}
		on, err := in.EvalBool(args[3])
		if err != nil {
			return "", err
		}
		p.noPropagate[master] = !on
		if on {
			p.scheduleRepack(master)
		}
		return "", nil
	}
	return "", fmt.Errorf("bad option %q: should be append, after, before, forget, info, propagate, slaves, or unpack", args[1])
}

// insertSlave places a slave at a specific position in the packing
// order (for pack before/after).
func (p *Packer) insertSlave(master *Window, slave *packSlave, pos int) {
	if slave.win.Manager != nil && slave.win.Manager != p {
		slave.win.Manager.LostSlave(slave.win)
	}
	slaves := p.masters[master]
	// Remove an existing entry for the same window first.
	for i, s := range slaves {
		if s.win == slave.win {
			slaves = append(slaves[:i], slaves[i+1:]...)
			if i < pos {
				pos--
			}
			break
		}
	}
	if pos < 0 {
		pos = 0
	}
	if pos > len(slaves) {
		pos = len(slaves)
	}
	slaves = append(slaves[:pos], append([]*packSlave{slave}, slaves[pos:]...)...)
	p.masters[master] = slaves
	slave.win.Manager = p
	p.scheduleRepack(master)
}

// addSlave registers (or re-registers) a slave with its master.
func (p *Packer) addSlave(master *Window, slave *packSlave) {
	// Steal from a previous manager (only one manages a window, §3.4).
	if slave.win.Manager != nil && slave.win.Manager != p {
		slave.win.Manager.LostSlave(slave.win)
	}
	// Replace an existing entry for the same window.
	slaves := p.masters[master]
	for i, s := range slaves {
		if s.win == slave.win {
			slaves[i] = slave
			slave.win.Manager = p
			p.scheduleRepack(master)
			return
		}
	}
	p.masters[master] = append(slaves, slave)
	slave.win.Manager = p
	p.scheduleRepack(master)
}

// Pack provides the Go-level API used by widgets and tests.
func (p *Packer) Pack(master, win *Window, options string) error {
	slave, err := parseOptions(options)
	if err != nil {
		return err
	}
	slave.win = win
	p.addSlave(master, slave)
	return nil
}

// xExpansion computes how much extra horizontal space a left/right slave
// may claim: the leftover cavity width divided among remaining expanding
// slaves (classic tkPack.c XExpansion).
func xExpansion(slaves []*packSlave, idx int, cavityWidth int) int {
	minExpand := cavityWidth
	numExpand := 0
	for i := idx; i < len(slaves); i++ {
		s := slaves[i]
		childWidth := s.win.ReqWidth + 2*s.padX
		if s.side == sideTop || s.side == sideBottom {
			if numExpand > 0 {
				cur := (cavityWidth - childWidth) / numExpand
				if cur < minExpand {
					minExpand = cur
				}
			}
		} else {
			cavityWidth -= childWidth
			if s.expand {
				numExpand++
			}
		}
	}
	if numExpand > 0 {
		cur := cavityWidth / numExpand
		if cur < minExpand {
			minExpand = cur
		}
	} else {
		minExpand = 0
	}
	if minExpand < 0 {
		return 0
	}
	return minExpand
}

// yExpansion is the vertical analogue.
func yExpansion(slaves []*packSlave, idx int, cavityHeight int) int {
	minExpand := cavityHeight
	numExpand := 0
	for i := idx; i < len(slaves); i++ {
		s := slaves[i]
		childHeight := s.win.ReqHeight + 2*s.padY
		if s.side == sideLeft || s.side == sideRight {
			if numExpand > 0 {
				cur := (cavityHeight - childHeight) / numExpand
				if cur < minExpand {
					minExpand = cur
				}
			}
		} else {
			cavityHeight -= childHeight
			if s.expand {
				numExpand++
			}
		}
	}
	if numExpand > 0 {
		cur := cavityHeight / numExpand
		if cur < minExpand {
			minExpand = cur
		}
	} else {
		minExpand = 0
	}
	if minExpand < 0 {
		return 0
	}
	return minExpand
}

// arrange lays out master's slaves (classic ArrangePacking) and, unless
// propagation is off, requests that the master grow to fit them.
func (p *Packer) arrange(master *Window) {
	slaves := p.masters[master]
	if len(slaves) == 0 {
		return
	}
	ib := master.InternalBorder
	if !p.noPropagate[master] {
		reqW, reqH := p.requiredSize(slaves)
		master.GeometryRequest(reqW+2*ib, reqH+2*ib)
		// For managed masters the request propagates upward; for
		// top-levels it resizes the window immediately, so re-read the
		// actual size below.
	}
	cavityX, cavityY := ib, ib
	cavityWidth := master.Width - 2*ib
	cavityHeight := master.Height - 2*ib
	for i, s := range slaves {
		var frameX, frameY, frameW, frameH int
		if s.side == sideTop || s.side == sideBottom {
			frameW = cavityWidth
			frameH = s.win.ReqHeight + 2*s.padY
			if s.expand {
				frameH += yExpansion(slaves, i, cavityHeight)
			}
			cavityHeight -= frameH
			if cavityHeight < 0 {
				frameH += cavityHeight
				cavityHeight = 0
			}
			frameX = cavityX
			if s.side == sideTop {
				frameY = cavityY
				cavityY += frameH
			} else {
				frameY = cavityY + cavityHeight
			}
		} else {
			frameH = cavityHeight
			frameW = s.win.ReqWidth + 2*s.padX
			if s.expand {
				frameW += xExpansion(slaves, i, cavityWidth)
			}
			cavityWidth -= frameW
			if cavityWidth < 0 {
				frameW += cavityWidth
				cavityWidth = 0
			}
			frameY = cavityY
			if s.side == sideLeft {
				frameX = cavityX
				cavityX += frameW
			} else {
				frameX = cavityX + cavityWidth
			}
		}

		// Size within the frame: requested size, or fill.
		w := s.win.ReqWidth
		h := s.win.ReqHeight
		if s.fillX || w > frameW-2*s.padX {
			w = frameW - 2*s.padX
		}
		if s.fillY || h > frameH-2*s.padY {
			h = frameH - 2*s.padY
		}
		if w < 1 || h < 1 {
			// The cavity is exhausted: no space for this slave. Unmap it
			// rather than placing a degenerate window outside the master
			// (as Tk does).
			s.win.Unmap()
			continue
		}
		// Position within the frame per the anchor.
		x := frameX + (frameW-w)/2
		y := frameY + (frameH-h)/2
		if strings.Contains(s.anchor, "n") {
			y = frameY + s.padY
		}
		if strings.Contains(s.anchor, "s") {
			y = frameY + frameH - h - s.padY
		}
		if strings.Contains(s.anchor, "w") {
			x = frameX + s.padX
		}
		if strings.Contains(s.anchor, "e") {
			x = frameX + frameW - w - s.padX
		}
		p.app.resizeWindow(s.win, x, y, w, h, true)
		s.win.Map()
	}
}

// requiredSize computes the size the master needs to satisfy all slaves'
// requests (geometry propagation).
func (p *Packer) requiredSize(slaves []*packSlave) (int, int) {
	width, height := 0, 0
	maxW, maxH := 0, 0
	// Walk backwards: a slave packed earlier wraps around everything
	// packed after it (classic packer request computation).
	for i := len(slaves) - 1; i >= 0; i-- {
		s := slaves[i]
		cw := s.win.ReqWidth + 2*s.padX
		ch := s.win.ReqHeight + 2*s.padY
		if s.side == sideTop || s.side == sideBottom {
			if cw+width > maxW {
				maxW = cw + width
			}
			height += ch
		} else {
			if ch+height > maxH {
				maxH = ch + height
			}
			width += cw
		}
	}
	if width > maxW {
		maxW = width
	}
	if height > maxH {
		maxH = height
	}
	return maxW, maxH
}
