package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// Package-documentation analysis: every internal/ package must carry a
// package doc comment — a comment block on some file's package clause
// beginning "Package <name> ...". The layer map in docs/architecture.md
// is built from these comments, so a missing one is a hole in the
// documented architecture, not just a style nit.

// CheckPackageDoc reports a diagnostic when dir is an internal/ package
// directory and none of its (non-test) files documents the package.
func CheckPackageDoc(dir string, fset *token.FileSet, files []*ast.File) []Diag {
	if !isInternal(dir) {
		return nil
	}
	var first *ast.File
	for _, f := range files {
		name := filepath.Base(fset.Position(f.Package).Filename)
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if first == nil {
			first = f
		}
		if f.Doc != nil && strings.HasPrefix(f.Doc.Text(), "Package ") {
			return nil
		}
	}
	if first == nil {
		return nil
	}
	pos := fset.Position(first.Package)
	return []Diag{{
		File: pos.Filename,
		Line: pos.Line,
		Col:  pos.Column,
		Rule: "pkgdoc",
		Msg: "package " + first.Name.Name +
			` has no package doc comment (want a "Package ..." comment on one file's package clause)`,
	}}
}

// isInternal reports whether the directory path contains an "internal"
// segment — the tree whose packages the architecture docs enumerate.
func isInternal(dir string) bool {
	for _, seg := range strings.Split(filepath.ToSlash(filepath.Clean(dir)), "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}
