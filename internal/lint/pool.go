package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Pool-lifetime analysis. The zero-alloc reply path hands out pooled
// values through two idioms this analyzer knows:
//
//   - w := xproto.AcquireWriter() ... xproto.ReleaseWriter(w) — an
//     acquire/release pair around a reusable wire-format Writer;
//   - bp := somePool.Get().(*T) ... somePool.Put(bp) — a raw sync.Pool
//     checkout, where sending bp down a channel transfers ownership to
//     the receiver (the conn.out frame-buffer handoff).
//
// Ownership of a raw checkout also transfers by passing it to a
// function whose name starts with "enqueue"/"Enqueue" — the delivery
// half of the channel-handoff idiom factored into a helper (the
// callee either sends the buffer on or returns it to the pool on
// every failure path; xserver's conn.enqueueBuf is the model).
//
// For every function it flags, per return path: a pooled value that is
// neither released nor deferred-released (an early return — or a panic
// — leaks the value); any use of a value after it went back to the
// pool; and pooled values escaping their function through channel
// sends (Writers), struct or container stores, or return values. A
// function whose name starts with "Acquire" may return a raw pool
// checkout — that is the accessor idiom itself.
//
// Like the other Go analyzers this is syntactic: it tracks simple
// identifiers within one function, treats a deferred release (plain or
// closure-wrapped) as covering all paths, and analyzes branches with
// the same copy-and-merge flow the lock analyzers use.

// release states for one tracked value along the current path.
const (
	poolLive  = iota // checked out, not yet returned to the pool
	poolMaybe        // released on some merged paths but not all
	poolDone         // released, transferred, or handed to the caller
)

const (
	writerKind = iota // AcquireWriter/ReleaseWriter pairing
	rawKind           // pool.Get().(T) / pool.Put(x)
)

type poolVal struct {
	kind     int
	pool     string // pool identifier for rawKind ("framePool")
	acquired token.Position
	state    int
	deferred bool // a deferred release covers every exit path
}

// CheckPoolLifetime analyzes one package's files.
func CheckPoolLifetime(fset *token.FileSet, files []*ast.File) []Diag {
	var diags []Diag
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := &poolAnalyzer{fset: fset, funcName: fd.Name.Name}
			a.analyzeBody(fd.Body)
			diags = append(diags, a.diags...)
		}
	}
	return diags
}

type poolAnalyzer struct {
	fset     *token.FileSet
	funcName string
	diags    []Diag
}

func (a *poolAnalyzer) diag(pos token.Pos, format string, args ...any) {
	p := a.fset.Position(pos)
	a.diags = append(a.diags, Diag{
		File: p.Filename, Line: p.Line, Col: p.Column, Rule: "pool",
		Msg: fmt.Sprintf(format, args...),
	})
}

// analyzeBody runs the path walk over one function (or function
// literal) body with a fresh tracking scope.
func (a *poolAnalyzer) analyzeBody(body *ast.BlockStmt) {
	vals := make(map[string]*poolVal)
	terminated := a.block(body.List, vals)
	if !terminated {
		a.checkLeaks(body.End(), vals)
	}
}

// checkLeaks reports every tracked value still live at an exit.
func (a *poolAnalyzer) checkLeaks(pos token.Pos, vals map[string]*poolVal) {
	for name, v := range vals {
		if v.state == poolLive && !v.deferred {
			what := "pool checkout"
			if v.kind == writerKind {
				what = "AcquireWriter result"
			}
			a.diag(pos, "%s %q (acquired at line %d) is not released on this return path (missing defer?)",
				what, name, v.acquired.Line)
		}
	}
}

func copyVals(vals map[string]*poolVal) map[string]*poolVal {
	c := make(map[string]*poolVal, len(vals))
	for k, v := range vals {
		vv := *v
		c[k] = &vv
	}
	return c
}

// mergeVals folds a branch's end state into the fall-through state.
func mergeVals(into, other map[string]*poolVal) {
	for k, v := range into {
		o, ok := other[k]
		if !ok {
			continue
		}
		if o.state != v.state {
			v.state = poolMaybe
		}
		v.deferred = v.deferred && o.deferred
	}
	for k, o := range other {
		if _, ok := into[k]; !ok {
			vv := *o
			into[k] = &vv
		}
	}
}

func (a *poolAnalyzer) block(stmts []ast.Stmt, vals map[string]*poolVal) bool {
	for _, s := range stmts {
		if a.stmt(s, vals) {
			return true
		}
	}
	return false
}

func (a *poolAnalyzer) stmt(s ast.Stmt, vals map[string]*poolVal) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		a.assign(s, vals)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, ok := releaseTarget(call, vals); ok {
				a.release(name, vals, call.Pos())
				return false
			}
			if isPanicCall(call) {
				a.useCheckExpr(s.X, vals)
				a.checkLeaks(s.X.Pos(), vals)
				return true
			}
			if names := handoffTargets(call, vals); len(names) > 0 {
				a.useCheckExpr(s.X, vals)
				for _, n := range names {
					vals[n].state = poolDone
				}
				return false
			}
		}
		a.useCheckExpr(s.X, vals)
	case *ast.SendStmt:
		a.useCheckExpr(s.Chan, vals)
		if id, ok := s.Value.(*ast.Ident); ok {
			if v, tracked := vals[id.Name]; tracked {
				a.useCheck(id, vals)
				if v.kind == writerKind {
					a.diag(s.Pos(), "pooled Writer %q escapes through a channel send (pair it with ReleaseWriter in this function instead)", id.Name)
				}
				// Raw pool checkouts transfer ownership to the
				// receiver; the Writer diag above still marks it done
				// so one escape isn't also reported as a leak.
				v.state = poolDone
				return false
			}
		}
		a.useCheckExpr(s.Value, vals)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			if id, ok := e.(*ast.Ident); ok {
				if v, tracked := vals[id.Name]; tracked && v.state == poolLive {
					if v.kind == rawKind && strings.HasPrefix(a.funcName, "Acquire") {
						v.state = poolDone // the accessor idiom hands the value to the caller
						continue
					}
					a.diag(e.Pos(), "pooled value %q escapes via return (the pool can reclaim it while the caller still uses it)", id.Name)
					v.state = poolDone
					continue
				}
			}
			a.useCheckExpr(e, vals)
		}
		a.checkLeaks(s.Pos(), vals)
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeferStmt:
		a.deferStmt(s, vals)
	case *ast.GoStmt:
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			a.analyzeBody(fl.Body)
		}
		for _, e := range s.Call.Args {
			a.useCheckExpr(e, vals)
		}
	case *ast.IncDecStmt:
		a.useCheckExpr(s.X, vals)
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				a.useCheckExpr(e, vals)
				return false
			}
			return true
		})
	case *ast.BlockStmt:
		return a.block(s.List, vals)
	case *ast.IfStmt:
		if s.Init != nil {
			a.stmt(s.Init, vals)
		}
		a.useCheckExpr(s.Cond, vals)
		thenVals := copyVals(vals)
		thenTerm := a.block(s.Body.List, thenVals)
		var elseVals map[string]*poolVal
		elseTerm := false
		if s.Else != nil {
			elseVals = copyVals(vals)
			elseTerm = a.stmt(s.Else, elseVals)
		}
		switch {
		case s.Else == nil:
			if !thenTerm {
				mergeVals(vals, thenVals)
			}
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replaceVals(vals, elseVals)
		case elseTerm:
			replaceVals(vals, thenVals)
		default:
			mergeVals(thenVals, elseVals)
			replaceVals(vals, thenVals)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			a.stmt(s.Init, vals)
		}
		if s.Cond != nil {
			a.useCheckExpr(s.Cond, vals)
		}
		bodyVals := copyVals(vals)
		a.block(s.Body.List, bodyVals)
		if s.Post != nil {
			a.stmt(s.Post, bodyVals)
		}
		mergeVals(vals, bodyVals)
	case *ast.RangeStmt:
		a.useCheckExpr(s.X, vals)
		bodyVals := copyVals(vals)
		a.block(s.Body.List, bodyVals)
		mergeVals(vals, bodyVals)
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.stmt(s.Init, vals)
		}
		if s.Tag != nil {
			a.useCheckExpr(s.Tag, vals)
		}
		a.caseClauses(s.Body, vals)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			a.stmt(s.Init, vals)
		}
		a.caseClauses(s.Body, vals)
	case *ast.SelectStmt:
		type branch struct {
			vals map[string]*poolVal
			term bool
		}
		var live []map[string]*poolVal
		allTerm := true
		for _, c := range s.Body.List {
			comm, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			b := branch{vals: copyVals(vals)}
			if comm.Comm != nil {
				a.stmt(comm.Comm, b.vals)
			}
			b.term = a.block(comm.Body, b.vals)
			if !b.term {
				live = append(live, b.vals)
				allTerm = false
			}
		}
		if allTerm && len(s.Body.List) > 0 {
			return true
		}
		if len(live) > 0 {
			replaceVals(vals, live[0])
			for _, lv := range live[1:] {
				mergeVals(vals, lv)
			}
		}
	case *ast.LabeledStmt:
		return a.stmt(s.Stmt, vals)
	}
	return false
}

func replaceVals(into, from map[string]*poolVal) {
	for k := range into {
		delete(into, k)
	}
	for k, v := range from {
		vv := *v
		into[k] = &vv
	}
}

func (a *poolAnalyzer) caseClauses(body *ast.BlockStmt, vals map[string]*poolVal) {
	first := true
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		caseVals := copyVals(vals)
		for _, e := range cc.List {
			a.useCheckExpr(e, caseVals)
		}
		term := a.block(cc.Body, caseVals)
		if term {
			continue
		}
		if first {
			// A switch may not enter any case; merge against the
			// entry state as well as across cases.
			first = false
		}
		mergeVals(vals, caseVals)
	}
}

// assign handles both acquisition forms and escape-by-store.
func (a *poolAnalyzer) assign(s *ast.AssignStmt, vals map[string]*poolVal) {
	// Escape: a tracked value stored through a selector or index
	// outlives the function's control of it.
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		id, ok := s.Rhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		v, tracked := vals[id.Name]
		if !tracked || v.state != poolLive {
			continue
		}
		switch lhs.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
			a.diag(s.Pos(), "pooled value %q escapes via store into a struct or container (the pool can reclaim it out from under the holder)", id.Name)
			// One report per value: the store is the bug, later
			// appearances of the identifier are the same escape.
			delete(vals, id.Name)
		}
	}
	for _, e := range s.Rhs {
		a.useCheckExpr(e, vals)
	}
	for _, e := range s.Lhs {
		// Writes through *x or x[i] are uses of x itself.
		if _, isIdent := e.(*ast.Ident); !isIdent {
			a.useCheckExpr(e, vals)
		}
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if kind, pool, ok := acquireSource(s.Rhs[0]); ok {
		vals[id.Name] = &poolVal{
			kind: kind, pool: pool,
			acquired: a.fset.Position(s.Rhs[0].Pos()),
		}
		return
	}
	// Rebinding an identifier drops tracking of the old value.
	delete(vals, id.Name)
}

// acquireSource recognizes the two checkout idioms.
func acquireSource(e ast.Expr) (kind int, pool string, ok bool) {
	switch v := e.(type) {
	case *ast.CallExpr:
		if calleeName(v) == "AcquireWriter" {
			return writerKind, "", true
		}
	case *ast.TypeAssertExpr:
		call, isCall := v.X.(*ast.CallExpr)
		if !isCall {
			return 0, "", false
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel || sel.Sel.Name != "Get" {
			return 0, "", false
		}
		p := exprString(sel.X)
		if p == "" || !strings.Contains(strings.ToLower(p), "pool") {
			return 0, "", false
		}
		return rawKind, p, true
	}
	return 0, "", false
}

// releaseTarget recognizes ReleaseWriter(x) and pool.Put(x) for a
// tracked x.
func releaseTarget(call *ast.CallExpr, vals map[string]*poolVal) (string, bool) {
	if len(call.Args) != 1 {
		return "", false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return "", false
	}
	v, tracked := vals[id.Name]
	if !tracked {
		return "", false
	}
	switch v.kind {
	case writerKind:
		if calleeName(call) == "ReleaseWriter" {
			return id.Name, true
		}
	case rawKind:
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "Put" && exprString(sel.X) == v.pool {
			return id.Name, true
		}
	}
	return "", false
}

// handoffTargets recognizes the enqueue-handoff idiom: a call to a
// function named enqueue*/Enqueue* takes ownership of any live raw
// checkouts passed as arguments (the callee delivers the buffer or
// returns it to the pool itself). Writers stay tracked — they must be
// released where they were acquired.
func handoffTargets(call *ast.CallExpr, vals map[string]*poolVal) []string {
	name := calleeName(call)
	if !strings.HasPrefix(name, "enqueue") && !strings.HasPrefix(name, "Enqueue") {
		return nil
	}
	var names []string
	for _, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok {
			continue
		}
		if v, tracked := vals[id.Name]; tracked && v.kind == rawKind && v.state == poolLive {
			names = append(names, id.Name)
		}
	}
	return names
}

func (a *poolAnalyzer) release(name string, vals map[string]*poolVal, pos token.Pos) {
	v := vals[name]
	if v.state == poolDone && !v.deferred {
		a.diag(pos, "pooled value %q released twice", name)
		return
	}
	v.state = poolDone
}

func (a *poolAnalyzer) deferStmt(s *ast.DeferStmt, vals map[string]*poolVal) {
	if name, ok := releaseTarget(s.Call, vals); ok {
		vals[name].deferred = true
		vals[name].state = poolDone
		return
	}
	if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
		// defer func() { ... ReleaseWriter(w) ... }() covers all paths
		// just like the plain form.
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if name, isRel := releaseTarget(call, vals); isRel {
				vals[name].deferred = true
				vals[name].state = poolDone
			}
			return true
		})
		for _, e := range s.Call.Args {
			a.useCheckExpr(e, vals)
		}
		return
	}
	for _, e := range s.Call.Args {
		a.useCheckExpr(e, vals)
	}
}

// useCheck flags a read of a value that already went back to the pool.
func (a *poolAnalyzer) useCheck(id *ast.Ident, vals map[string]*poolVal) {
	v, tracked := vals[id.Name]
	if !tracked {
		return
	}
	if v.state == poolDone && !v.deferred {
		a.diag(id.Pos(), "use of pooled value %q after it was released to the pool", id.Name)
		// One report per value: further uses are the same bug.
		delete(vals, id.Name)
	}
}

// useCheckExpr walks an expression flagging uses of dead values; it
// also recurses into function literals as independent scopes.
func (a *poolAnalyzer) useCheckExpr(e ast.Expr, vals map[string]*poolVal) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			a.useCheck(n, vals)
		case *ast.FuncLit:
			a.analyzeBody(n.Body)
			return false
		}
		return true
	})
}

func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// calleeName returns the bare function name of a call, qualified or
// not: xproto.AcquireWriter and AcquireWriter both yield
// "AcquireWriter".
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// exprString renders a simple identifier-or-selector chain ("x",
// "pkg.x"); "" for anything more complex.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		base := exprString(v.X)
		if base == "" {
			return ""
		}
		return base + "." + v.Sel.Name
	}
	return ""
}
