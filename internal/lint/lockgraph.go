package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Lock-order analysis. The analyzer walks every function in a package,
// records which mutexes are acquired while others are held (the lock
// acquisition graph), and reports:
//
//   - any edge that contradicts a canonical order declared in a
//     machine-readable "// lock-order:" block on a struct's doc comment
//     (see parseLockOrderDecls for the syntax);
//   - any cycle in the acquisition graph, declared order or not;
//   - any re-acquisition of a mutex class already held, unless the
//     function uses the ascending-ID pair idiom (two locks of the same
//     class taken in an order fixed by a conditional swap, as
//     xserver's CopyArea does for same-depth pixmap pairs).
//
// Mutex identity is the *class*, not the instance: "Server.treeMu" is
// the treeMu field of any Server, "pixmap.mu" is the mu field of any
// pixmap, and a package-level "var patternMu sync.Mutex" is just
// "patternMu". The analysis is interprocedural one call level deep
// through same-package helpers: when f calls g while holding H, every
// mutex g (or a function g directly calls) acquires becomes an edge
// from H. Like the rest of tkcheck it is syntactic — types are
// resolved from declarations in the files at hand (receiver and
// parameter types, struct field types, same-package function results
// with single-parameter generic substitution), and anything it cannot
// resolve is skipped rather than guessed.

// A mutex class is named "Struct.field" or "pkgvar".

// chainPos places a declared mutex within the declared order: its
// chain index and its level along that chain. Mutexes on different
// chains are declared independent (never held together); mutexes at
// the same level of one chain are a leaf group (never nested).
type chainPos struct {
	chain, level int
}

// lockDecls is the parsed "// lock-order:" declaration set of one
// package.
type lockDecls struct {
	rank map[string]chainPos
	pos  token.Pos // position of the first declaration block
}

// CheckLockOrder analyzes one package's files.
func CheckLockOrder(fset *token.FileSet, files []*ast.File) []Diag {
	env := newPkgEnv(files)
	if len(env.mutexes) == 0 {
		return nil
	}
	var diags []Diag
	decls := parseLockOrderDecls(fset, files, env, &diags)

	// First pass: per-function walks collect direct acquisitions,
	// held-at acquisition edges, and calls made while holding locks.
	summaries := make(map[string]*funcSummary)
	var walks []*lockOrderWalk
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := newLockOrderWalk(fset, env, fd)
			w.block(fd.Body.List, make(map[string]string))
			walks = append(walks, w)
			if w.key != "" {
				summaries[w.key] = w.summary
			}
		}
	}

	// Second pass: expand calls made under held locks into edges, one
	// call level deep (the callee's own acquisitions plus those of
	// functions the callee directly calls).
	edges := make(map[string]map[string]lockEdge)
	addEdge := func(from, to string, pos token.Pos, site string) {
		if from == to {
			return
		}
		if edges[from] == nil {
			edges[from] = make(map[string]lockEdge)
		}
		if _, ok := edges[from][to]; !ok {
			edges[from][to] = lockEdge{pos: pos, site: site}
		}
	}
	for _, w := range walks {
		for _, acq := range w.acqEdges {
			addEdge(acq.held, acq.acquired, acq.pos, "")
		}
		for _, call := range w.heldCalls {
			sum := summaries[call.callee]
			if sum == nil {
				continue
			}
			for m := range effectiveAcquires(call.callee, summaries, 1) {
				for _, h := range call.held {
					addEdge(h, m, call.pos, fmt.Sprintf(" (via call to %s)", call.callee))
				}
			}
		}
		diags = append(diags, w.diags...)
	}

	// Declared-order check: every edge must be consistent with the
	// declaration.
	if decls != nil {
		froms := make([]string, 0, len(edges))
		for from := range edges {
			froms = append(froms, from)
		}
		sort.Strings(froms)
		for _, from := range froms {
			tos := make([]string, 0, len(edges[from]))
			for to := range edges[from] {
				tos = append(tos, to)
			}
			sort.Strings(tos)
			for _, to := range tos {
				e := edges[from][to]
				fp, fok := decls.rank[from]
				tp, tok := decls.rank[to]
				if !fok || !tok {
					continue
				}
				p := fset.Position(e.pos)
				switch {
				case fp.chain != tp.chain:
					diags = append(diags, Diag{
						File: p.Filename, Line: p.Line, Col: p.Column, Rule: "lockorder",
						Msg: fmt.Sprintf("%s acquired while %s is held%s, but the lock-order declaration puts them on independent chains (they must never be held together)",
							to, from, e.site),
					})
				case fp.level == tp.level:
					diags = append(diags, Diag{
						File: p.Filename, Line: p.Line, Col: p.Column, Rule: "lockorder",
						Msg: fmt.Sprintf("%s acquired while %s is held%s, but both are members of the same lock-order leaf group (group members must not nest)",
							to, from, e.site),
					})
				case fp.level > tp.level:
					diags = append(diags, Diag{
						File: p.Filename, Line: p.Line, Col: p.Column, Rule: "lockorder",
						Msg: fmt.Sprintf("%s acquired while %s is held%s, contradicting the declared lock order (%s is ordered before %s)",
							to, from, e.site, to, from),
					})
				}
			}
		}
	}

	// Cycle check over the whole graph, declared or not.
	diags = append(diags, findLockCycles(fset, edges)...)
	return diags
}

// effectiveAcquires returns the mutexes callee acquires directly plus,
// when depth > 0, those acquired by functions callee directly calls.
func effectiveAcquires(callee string, summaries map[string]*funcSummary, depth int) map[string]bool {
	out := make(map[string]bool)
	sum := summaries[callee]
	if sum == nil {
		return out
	}
	for m := range sum.acquires {
		out[m] = true
	}
	if depth > 0 {
		for g := range sum.calls {
			if g == callee {
				continue
			}
			for m := range effectiveAcquires(g, summaries, depth-1) {
				out[m] = true
			}
		}
	}
	return out
}

// lockEdge is one acquisition-graph edge: "to" was acquired while
// "from" was held, first observed at pos.
type lockEdge struct {
	pos  token.Pos
	site string // how the edge arises, for the message
}

// findLockCycles reports each cycle in the acquisition graph once.
func findLockCycles(fset *token.FileSet, edges map[string]map[string]lockEdge) []Diag {
	nodes := make([]string, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	var diags []Diag
	seen := make(map[string]bool) // normalized cycle -> reported
	state := make(map[string]int) // 0 unvisited, 1 on stack, 2 done
	var stack []string
	var visit func(n string)
	visit = func(n string) {
		state[n] = 1
		stack = append(stack, n)
		tos := make([]string, 0, len(edges[n]))
		for to := range edges[n] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			switch state[to] {
			case 0:
				visit(to)
			case 1:
				// Back edge n -> to closes a cycle: to ... n -> to.
				i := 0
				for ; i < len(stack); i++ {
					if stack[i] == to {
						break
					}
				}
				cyc := append(append([]string{}, stack[i:]...), to)
				key := normalizeCycle(cyc)
				if seen[key] {
					continue
				}
				seen[key] = true
				e := edges[n][to]
				p := fset.Position(e.pos)
				diags = append(diags, Diag{
					File: p.Filename, Line: p.Line, Col: p.Column, Rule: "lockorder",
					Msg: fmt.Sprintf("lock-order cycle: %s%s", strings.Join(cyc, " -> "), e.site),
				})
			}
		}
		stack = stack[:len(stack)-1]
		state[n] = 2
	}
	for _, n := range nodes {
		if state[n] == 0 {
			visit(n)
		}
	}
	return diags
}

// normalizeCycle produces a rotation-independent key for a cycle path
// of the form a -> b -> ... -> a.
func normalizeCycle(cyc []string) string {
	body := cyc[:len(cyc)-1]
	min := 0
	for i := range body {
		if body[i] < body[min] {
			min = i
		}
	}
	rot := append(append([]string{}, body[min:]...), body[:min]...)
	return strings.Join(rot, "->")
}

// parseLockOrderDecls scans struct doc comments for "lock-order:"
// lines. The grammar, one chain per line:
//
//	// lock-order: treeMu -> pixmap.mu -> {atomsMu, fontsMu}
//	// lock-order: connsMu
//
// "->" separates levels from outermost to innermost; "{a, b}" declares
// a leaf group whose members must never nest in each other; a bare
// name is a mutex field of the annotated struct; "Type.field" names a
// mutex field of another struct in the package, and a package-level
// mutex variable is named bare on a struct of the package that anchors
// the declaration. Separate lines are independent chains: two mutexes
// on different chains must never be held together. Returns nil when
// the package declares nothing.
func parseLockOrderDecls(fset *token.FileSet, files []*ast.File, env *pkgEnv, diags *[]Diag) *lockDecls {
	d := &lockDecls{rank: make(map[string]chainPos)}
	chain := 0
	found := false
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if doc == nil {
					continue
				}
				for _, line := range strings.Split(doc.Text(), "\n") {
					line = strings.TrimSpace(line)
					rest, ok := strings.CutPrefix(line, "lock-order:")
					if !ok {
						continue
					}
					if !found {
						found = true
						d.pos = doc.Pos()
					}
					parseLockOrderLine(fset, doc.Pos(), ts.Name.Name, rest, chain, d, env, diags)
					chain++
				}
			}
		}
	}
	if !found {
		return nil
	}
	return d
}

func parseLockOrderLine(fset *token.FileSet, pos token.Pos, owner, line string, chain int, d *lockDecls, env *pkgEnv, diags *[]Diag) {
	declDiag := func(format string, args ...any) {
		p := fset.Position(pos)
		*diags = append(*diags, Diag{
			File: p.Filename, Line: p.Line, Col: p.Column, Rule: "lockorder",
			Msg: fmt.Sprintf(format, args...),
		})
	}
	for level, part := range strings.Split(line, "->") {
		part = strings.TrimSpace(part)
		var names []string
		if strings.HasPrefix(part, "{") {
			if !strings.HasSuffix(part, "}") {
				declDiag("malformed lock-order group %q (want {a, b, ...})", part)
				continue
			}
			for _, n := range strings.Split(part[1:len(part)-1], ",") {
				names = append(names, strings.TrimSpace(n))
			}
		} else {
			names = []string{part}
		}
		for _, n := range names {
			if n == "" {
				declDiag("empty name in lock-order declaration %q", line)
				continue
			}
			id := n
			if !strings.Contains(n, ".") {
				// A bare name is a field of the annotated struct, or a
				// package-level mutex variable.
				if env.mutexes[owner+"."+n] {
					id = owner + "." + n
				}
			}
			if !env.mutexes[id] {
				declDiag("lock-order declaration names %q, which is not a mutex known to this package", n)
				continue
			}
			if prev, dup := d.rank[id]; dup {
				declDiag("lock-order declaration names %s twice (chains %d and %d)", id, prev.chain, chain)
				continue
			}
			d.rank[id] = chainPos{chain: chain, level: level}
		}
	}
}
