package lint

import "fmt"

// Expression syntax checking: a recursive-descent walk over the same
// grammar internal/tcl's expr evaluator implements (ternary ?:, the C
// binary-operator precedence ladder, unary - + ! ~, and the operands:
// numbers, $var, [cmd], "str", {braced}, parentheses and math function
// calls). Nothing is evaluated; [cmd] operands are linted as scripts.

// binaryOps lists operators by precedence level, lowest first,
// two-character operators before their one-character prefixes.
var binaryOps = [][]string{
	{"||"}, {"&&"}, {"|"}, {"^"}, {"&"},
	{"==", "!="},
	{"<=", ">=", "<", ">"},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

// knownMathFuncs mirrors the evaluator's function table.
var knownMathFuncs = map[string]bool{
	"abs": true, "acos": true, "asin": true, "atan": true, "atan2": true,
	"ceil": true, "cos": true, "cosh": true, "double": true, "exp": true,
	"floor": true, "fmod": true, "hypot": true, "int": true, "log": true,
	"log10": true, "pow": true, "round": true, "sin": true, "sinh": true,
	"sqrt": true, "tan": true, "tanh": true,
}

type exprChecker struct {
	l   *linter
	pos int
	end int
	bad bool // one error per expression is enough
}

// checkExprRange syntax-checks src[start:end) as an expression.
func (l *linter) checkExprRange(start, end int) {
	e := &exprChecker{l: l, pos: start, end: end}
	e.ternary()
	e.space()
	if !e.bad && e.pos < e.end {
		e.errf(e.pos, "unexpected %q after expression", rest(l.src, e.pos))
	}
}

func rest(src string, pos int) string {
	r := src[pos:]
	if len(r) > 12 {
		r = r[:12] + "..."
	}
	return r
}

func (e *exprChecker) errf(off int, format string, args ...interface{}) {
	if e.bad {
		return
	}
	e.bad = true
	e.l.diagAt(off, "expr", "expression syntax error: "+fmt.Sprintf(format, args...))
}

func (e *exprChecker) space() {
	src := e.l.src
	for e.pos < e.end {
		c := src[e.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			e.pos++
		} else if c == '\\' && e.pos+1 < e.end && src[e.pos+1] == '\n' {
			e.pos += 2
		} else {
			break
		}
	}
}

func (e *exprChecker) ternary() {
	e.binary(0)
	e.space()
	if e.bad || e.pos >= e.end || e.l.src[e.pos] != '?' {
		return
	}
	e.pos++
	e.ternary()
	e.space()
	if e.pos >= e.end || e.l.src[e.pos] != ':' {
		e.errf(e.pos, "missing : in ?: operator")
		return
	}
	e.pos++
	e.ternary()
}

func (e *exprChecker) binary(level int) {
	if level >= len(binaryOps) {
		e.unary()
		return
	}
	e.binary(level + 1)
	for !e.bad {
		e.space()
		op := e.peekOp(level)
		if op == "" {
			return
		}
		e.pos += len(op)
		e.binary(level + 1)
	}
}

// peekOp returns the operator at the cursor if it belongs to this
// precedence level, taking care not to split two-character operators
// ("<" must not match the front of "<<" or "<=").
func (e *exprChecker) peekOp(level int) string {
	src := e.l.src
	if e.pos >= e.end {
		return ""
	}
	two := ""
	if e.pos+2 <= e.end {
		two = src[e.pos : e.pos+2]
	}
	switch two {
	case "||", "&&", "==", "!=", "<=", ">=", "<<", ">>":
		for _, op := range binaryOps[level] {
			if op == two {
				return op
			}
		}
		return ""
	}
	one := src[e.pos : e.pos+1]
	for _, op := range binaryOps[level] {
		if op == one {
			return op
		}
	}
	return ""
}

func (e *exprChecker) unary() {
	e.space()
	if e.pos < e.end {
		switch e.l.src[e.pos] {
		case '!', '~':
			e.pos++
			e.unary()
			return
		case '-', '+':
			e.pos++
			e.unary()
			return
		}
	}
	e.primary()
}

func (e *exprChecker) primary() {
	e.space()
	src := e.l.src
	if e.pos >= e.end {
		e.errf(e.pos, "missing operand")
		return
	}
	c := src[e.pos]
	switch {
	case c == '(':
		e.pos++
		e.ternary()
		e.space()
		if e.pos >= e.end || src[e.pos] != ')' {
			e.errf(e.pos, "missing )")
			return
		}
		e.pos++
	case c == '$':
		sc := &scanner{l: e.l, pos: e.pos, end: e.end}
		sc.scanVarRef()
		e.pos = sc.pos
	case c == '[':
		sc := &scanner{l: e.l, pos: e.pos, end: e.end}
		if r, ok := sc.scanBracket(); ok {
			e.l.lintRange(r[0], r[1], modeScript)
		}
		e.pos = sc.pos
	case c == '"':
		sc := &scanner{l: e.l, pos: e.pos, end: e.end}
		w := sc.scanQuoted()
		for _, r := range w.brackets {
			e.l.lintRange(r[0], r[1], modeScript)
		}
		e.pos = sc.pos
	case c == '{':
		sc := &scanner{l: e.l, pos: e.pos, end: e.end}
		sc.skipBraces()
		e.pos = sc.pos
	case c >= '0' && c <= '9' || c == '.' && e.pos+1 < e.end && src[e.pos+1] >= '0' && src[e.pos+1] <= '9':
		e.number()
	case isAlpha(c):
		e.funcCall()
	default:
		e.errf(e.pos, "unexpected character %q", string(c))
	}
}

func (e *exprChecker) number() {
	src := e.l.src
	if src[e.pos] == '0' && e.pos+1 < e.end && (src[e.pos+1] == 'x' || src[e.pos+1] == 'X') {
		e.pos += 2
		start := e.pos
		for e.pos < e.end && isHex(src[e.pos]) {
			e.pos++
		}
		if e.pos == start {
			e.errf(e.pos, "malformed hexadecimal number")
		}
		return
	}
	for e.pos < e.end && src[e.pos] >= '0' && src[e.pos] <= '9' {
		e.pos++
	}
	if e.pos < e.end && src[e.pos] == '.' {
		e.pos++
		for e.pos < e.end && src[e.pos] >= '0' && src[e.pos] <= '9' {
			e.pos++
		}
	}
	if e.pos < e.end && (src[e.pos] == 'e' || src[e.pos] == 'E') {
		mark := e.pos
		e.pos++
		if e.pos < e.end && (src[e.pos] == '+' || src[e.pos] == '-') {
			e.pos++
		}
		start := e.pos
		for e.pos < e.end && src[e.pos] >= '0' && src[e.pos] <= '9' {
			e.pos++
		}
		if e.pos == start {
			e.pos = mark // not an exponent; leave for the caller to reject
		}
	}
}

func (e *exprChecker) funcCall() {
	src := e.l.src
	start := e.pos
	for e.pos < e.end && (isAlpha(src[e.pos]) || src[e.pos] >= '0' && src[e.pos] <= '9') {
		e.pos++
	}
	name := src[start:e.pos]
	if !knownMathFuncs[name] {
		e.errf(start, "unknown operand or math function %q", name)
		return
	}
	e.space()
	if e.pos >= e.end || src[e.pos] != '(' {
		e.errf(e.pos, "missing ( after math function %q", name)
		return
	}
	e.pos++
	e.ternary()
	e.space()
	for !e.bad && e.pos < e.end && src[e.pos] == ',' {
		e.pos++
		e.ternary()
		e.space()
	}
	if e.bad {
		return
	}
	if e.pos >= e.end || src[e.pos] != ')' {
		e.errf(e.pos, "missing ) after math function arguments")
		return
	}
	e.pos++
}

func isAlpha(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
