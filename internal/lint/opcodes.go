package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Opcode-completeness analysis. The protocol package declares request
// opcodes as Op<Name> constants and a NewRequest factory switch mapping
// each opcode to its <Name>Req struct; the server dispatches on a type
// switch over *<Name>Req. This analyzer cross-checks the three by
// naming convention: every Op<Name> constant must have a NewRequest
// case, and every opcode's <Name>Req type must appear in a dispatch
// type switch. Facts accumulate across all scanned packages (the
// constants and the dispatcher live in different packages) and are
// evaluated once at the end of a run.

var opConstRe = regexp.MustCompile(`^Op[A-Z]`)

// OpcodeFacts accumulates opcode declarations and coverage across
// scanned packages.
type OpcodeFacts struct {
	// ops maps Op<Name> constant names to their declaration position.
	ops map[string]token.Position
	// factoryCases is the set of Op<Name> names with a NewRequest case;
	// factorySeen records whether a NewRequest factory was found.
	factoryCases map[string]bool
	factorySeen  bool
	// dispatchTypes is the set of <Name>Req type names appearing in
	// request type switches; dispatchSeen records whether one was found.
	dispatchTypes map[string]bool
	dispatchSeen  bool
	// nameEntries is the set of Op<Name> constants keyed in an opNames
	// table (the OpName lookup used by traces and per-opcode metrics);
	// namesSeen records whether such a table was found.
	nameEntries map[string]bool
	namesSeen   bool
}

func NewOpcodeFacts() *OpcodeFacts {
	return &OpcodeFacts{
		ops:           make(map[string]token.Position),
		factoryCases:  make(map[string]bool),
		dispatchTypes: make(map[string]bool),
		nameEntries:   make(map[string]bool),
	}
}

// Merge folds another accumulator (e.g. a parallel worker's) into o.
// Positions keep the earliest site so merged output is independent of
// worker scheduling.
func (o *OpcodeFacts) Merge(other *OpcodeFacts) {
	for name, pos := range other.ops {
		cur, ok := o.ops[name]
		if !ok || pos.Filename < cur.Filename ||
			(pos.Filename == cur.Filename && pos.Offset < cur.Offset) {
			o.ops[name] = pos
		}
	}
	for name := range other.factoryCases {
		o.factoryCases[name] = true
	}
	for name := range other.dispatchTypes {
		o.dispatchTypes[name] = true
	}
	for name := range other.nameEntries {
		o.nameEntries[name] = true
	}
	o.factorySeen = o.factorySeen || other.factorySeen
	o.dispatchSeen = o.dispatchSeen || other.dispatchSeen
	o.namesSeen = o.namesSeen || other.namesSeen
}

// Collect scans one parsed file for opcode constants, NewRequest
// factory cases, and request-dispatch type switches.
func (o *OpcodeFacts) Collect(fset *token.FileSet, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			switch d.Tok {
			case token.CONST:
				for _, s := range d.Specs {
					vs, ok := s.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if opConstRe.MatchString(name.Name) {
							o.ops[name.Name] = fset.Position(name.Pos())
						}
					}
				}
			case token.VAR:
				o.collectNames(d)
			}
		case *ast.FuncDecl:
			if d.Body == nil {
				continue
			}
			if d.Name.Name == "NewRequest" {
				o.collectFactory(d.Body)
			}
			o.collectDispatch(d.Body)
		}
	}
}

func (o *OpcodeFacts) collectFactory(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		o.factorySeen = true
		for _, c := range sw.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				if name := opName(e); name != "" {
					o.factoryCases[name] = true
				}
			}
		}
		return true
	})
}

// collectNames records the Op<Name> keys of an opNames table variable:
// the map behind OpName(), which traces and per-opcode metrics rely on
// for human-readable opcode names.
func (o *OpcodeFacts) collectNames(d *ast.GenDecl) {
	for _, s := range d.Specs {
		vs, ok := s.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if name.Name != "opNames" || i >= len(vs.Values) {
				continue
			}
			lit, ok := vs.Values[i].(*ast.CompositeLit)
			if !ok {
				continue
			}
			o.namesSeen = true
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if n := opName(kv.Key); n != "" {
					o.nameEntries[n] = true
				}
			}
		}
	}
}

// collectDispatch records case types from type switches that dispatch
// requests: a switch qualifies when at least two of its case types end
// in "Req".
func (o *OpcodeFacts) collectDispatch(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		sw, ok := n.(*ast.TypeSwitchStmt)
		if !ok {
			return true
		}
		var reqTypes []string
		for _, c := range sw.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				if name := typeName(e); strings.HasSuffix(name, "Req") {
					reqTypes = append(reqTypes, name)
				}
			}
		}
		if len(reqTypes) >= 2 {
			o.dispatchSeen = true
			for _, t := range reqTypes {
				o.dispatchTypes[t] = true
			}
		}
		return true
	})
}

// Diags evaluates the accumulated facts: every opcode needs a factory
// case (when a factory was scanned) and a dispatch arm (when a
// dispatcher was scanned).
func (o *OpcodeFacts) Diags() []Diag {
	var diags []Diag
	for name, pos := range o.ops {
		if o.factorySeen && !o.factoryCases[name] {
			diags = append(diags, Diag{
				File: pos.Filename, Line: pos.Line, Col: pos.Column, Rule: "opcodes",
				Msg: fmt.Sprintf("opcode %s has no case in the NewRequest factory", name),
			})
		}
		reqType := strings.TrimPrefix(name, "Op") + "Req"
		if o.dispatchSeen && !o.dispatchTypes[reqType] {
			diags = append(diags, Diag{
				File: pos.Filename, Line: pos.Line, Col: pos.Column, Rule: "opcodes",
				Msg: fmt.Sprintf("opcode %s has no *%s dispatch arm in any request type switch", name, reqType),
			})
		}
		if o.namesSeen && !o.nameEntries[name] {
			diags = append(diags, Diag{
				File: pos.Filename, Line: pos.Line, Col: pos.Column, Rule: "opcodes",
				Msg: fmt.Sprintf("opcode %s has no entry in the opNames table (OpName would fall back to a number)", name),
			})
		}
	}
	return diags
}

// opName extracts an Op<Name> constant reference from a case expression
// (Ident or pkg.Ident).
func opName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		if opConstRe.MatchString(e.Name) {
			return e.Name
		}
	case *ast.SelectorExpr:
		if opConstRe.MatchString(e.Sel.Name) {
			return e.Sel.Name
		}
	}
	return ""
}

// typeName extracts the base type name from a case type expression
// (*xproto.CreateWindowReq, *CreateWindowReq, CreateWindowReq).
func typeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return typeName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.Ident:
		return e.Name
	}
	return ""
}
