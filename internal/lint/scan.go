package lint

import (
	"fmt"
	"strings"
)

// The scanner divides a script into commands and words exactly as the
// Tcl parser would, but substitutes nothing: variable and command
// substitutions are noted (making the containing word "dynamic") and
// their ranges recorded so embedded scripts can be linted recursively.
// All offsets are into the linter's unit source, so nested scripts keep
// their true positions.

// word is one parsed word of a command.
type word struct {
	raw     string // source text of the contents (delimiters stripped)
	val     string // runtime value; valid only when literal
	off     int    // offset of the contents' first byte
	end     int    // offset one past the contents' last byte
	braced  bool
	quoted  bool
	literal bool // no $var or [cmd] substitution: val is the runtime value
	// brackets lists the content ranges of embedded [command]
	// substitutions, each of which is itself a script.
	brackets [][2]int
}

// cmdNode is one parsed command.
type cmdNode struct {
	words []word
	off   int
	// suppress lists rule names a "# tkcheck:ignore" comment directly
	// above the command disables; a bare ignore yields []string{"all"}.
	suppress []string
}

type scanner struct {
	l   *linter
	pos int
	end int
}

func (s *scanner) src() string { return s.l.src }

// next returns the next command in the range, or ok=false at the end.
func (s *scanner) next() (cmdNode, bool) {
	src := s.src()
	var suppress []string
	// Skip separators, newlines, semicolons and comments.
	for s.pos < s.end {
		c := src[s.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';':
			s.pos++
		case c == '\\' && s.pos+1 < s.end && src[s.pos+1] == '\n':
			s.pos += 2
		case c == '#':
			start := s.pos
			for s.pos < s.end && src[s.pos] != '\n' {
				if src[s.pos] == '\\' && s.pos+1 < s.end {
					s.pos++ // backslash-newline continues the comment
				}
				s.pos++
			}
			text := src[start:s.pos]
			if i := strings.Index(text, "tkcheck:ignore"); i >= 0 {
				rules := strings.Fields(text[i+len("tkcheck:ignore"):])
				if len(rules) == 0 {
					rules = []string{"all"}
				}
				suppress = rules
			}
		default:
			goto words
		}
	}
	return cmdNode{}, false

words:
	cmd := cmdNode{off: s.pos, suppress: suppress}
	for s.pos < s.end {
		c := src[s.pos]
		if c == '\n' || c == ';' {
			s.pos++
			break
		}
		if c == ' ' || c == '\t' || c == '\r' {
			s.pos++
			continue
		}
		if c == '\\' && s.pos+1 < s.end && src[s.pos+1] == '\n' {
			s.pos += 2
			continue
		}
		var w word
		switch c {
		case '{':
			w = s.scanBraced()
		case '"':
			w = s.scanQuoted()
		default:
			w = s.scanBare()
		}
		cmd.words = append(cmd.words, w)
	}
	return cmd, true
}

// scanBraced scans {contents}: everything verbatim, braces nesting,
// backslash-newline is the only backslash the parser touches.
func (s *scanner) scanBraced() word {
	src := s.src()
	open := s.pos
	s.pos++ // consume '{'
	depth := 1
	start := s.pos
	for s.pos < s.end {
		switch src[s.pos] {
		case '\\':
			s.pos++ // skip the escaped character
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				w := word{
					raw:     src[start:s.pos],
					off:     start,
					end:     s.pos,
					braced:  true,
					literal: true,
				}
				w.val = w.raw
				s.pos++
				s.checkWordEnd()
				return w
			}
		}
		s.pos++
	}
	s.l.diagAt(open, "parse", "missing close-brace")
	return word{raw: src[start:s.pos], off: start, end: s.pos, braced: true, literal: true, val: src[start:s.pos]}
}

// scanQuoted scans "contents" with substitution tracking.
func (s *scanner) scanQuoted() word {
	src := s.src()
	open := s.pos
	s.pos++ // consume '"'
	start := s.pos
	w := word{off: start, quoted: true, literal: true}
	var val strings.Builder
	for s.pos < s.end {
		switch src[s.pos] {
		case '"':
			w.raw = src[start:s.pos]
			w.end = s.pos
			if w.literal {
				w.val = val.String()
			}
			s.pos++
			s.checkWordEnd()
			return w
		case '\\':
			val.WriteByte(s.scanBackslash())
		case '$':
			s.scanVarRef()
			w.literal = false
		case '[':
			if r, ok := s.scanBracket(); ok {
				w.brackets = append(w.brackets, r)
			}
			w.literal = false
		default:
			val.WriteByte(src[s.pos])
			s.pos++
		}
	}
	s.l.diagAt(open, "parse", "missing close-quote")
	w.raw = src[start:s.pos]
	w.end = s.pos
	if w.literal {
		w.val = val.String()
	}
	return w
}

// scanBare scans an unquoted word.
func (s *scanner) scanBare() word {
	src := s.src()
	start := s.pos
	w := word{off: start, literal: true}
	var val strings.Builder
	for s.pos < s.end {
		c := src[s.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';' {
			break
		}
		switch c {
		case '\\':
			if s.pos+1 < s.end && src[s.pos+1] == '\n' {
				goto done // backslash-newline ends the word
			}
			val.WriteByte(s.scanBackslash())
		case '$':
			s.scanVarRef()
			w.literal = false
		case '[':
			if r, ok := s.scanBracket(); ok {
				w.brackets = append(w.brackets, r)
			}
			w.literal = false
		default:
			val.WriteByte(c)
			s.pos++
		}
	}
done:
	w.raw = src[start:s.pos]
	w.end = s.pos
	if w.literal {
		w.val = val.String()
	}
	return w
}

// checkWordEnd verifies a brace- or quote-delimited word is followed by
// a separator, as Tcl requires.
func (s *scanner) checkWordEnd() {
	if s.pos >= s.end {
		return
	}
	switch s.src()[s.pos] {
	case ' ', '\t', '\n', '\r', ';':
		return
	case '\\':
		return
	}
	s.l.diagAt(s.pos, "parse",
		fmt.Sprintf("extra characters after close-brace or close-quote: %q", s.src()[s.pos]))
}

// scanBackslash consumes one backslash escape and returns its
// (approximate) value byte; multi-byte escapes return the first byte.
func (s *scanner) scanBackslash() byte {
	src := s.src()
	s.pos++ // consume '\'
	if s.pos >= s.end {
		return '\\'
	}
	c := src[s.pos]
	s.pos++
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case 'b':
		return '\b'
	case 'f':
		return '\f'
	case 'v':
		return '\v'
	case 'e':
		return 0x1b
	case '\n':
		return ' '
	case 'x':
		for s.pos < s.end && isHex(src[s.pos]) {
			s.pos++
		}
		return '?'
	case '0', '1', '2', '3', '4', '5', '6', '7':
		for s.pos < s.end && src[s.pos] >= '0' && src[s.pos] <= '7' {
			s.pos++
		}
		return '?'
	default:
		return c
	}
}

// scanVarRef consumes $name, ${name} or $name(index).
func (s *scanner) scanVarRef() {
	src := s.src()
	s.pos++ // consume '$'
	if s.pos >= s.end {
		return
	}
	if src[s.pos] == '{' {
		for s.pos < s.end && src[s.pos] != '}' {
			s.pos++
		}
		if s.pos >= s.end {
			s.l.diagAt(s.pos-1, "parse", "missing close-brace for variable name")
			return
		}
		s.pos++ // consume '}'
		return
	}
	for s.pos < s.end && isVarNameChar(src[s.pos]) {
		s.pos++
	}
	if s.pos < s.end && src[s.pos] == '(' {
		open := s.pos
		for s.pos < s.end && src[s.pos] != ')' {
			if src[s.pos] == '\\' {
				s.pos++
			}
			s.pos++
		}
		if s.pos >= s.end {
			s.l.diagAt(open, "parse", "missing ) for array variable reference")
			return
		}
		s.pos++ // consume ')'
	}
}

// scanBracket consumes a [command] substitution, returning the content
// range. Braces and quotes inside are skipped as units, as the inner
// command parser would consume them.
func (s *scanner) scanBracket() ([2]int, bool) {
	src := s.src()
	open := s.pos
	s.pos++ // consume '['
	start := s.pos
	depth := 1
	for s.pos < s.end {
		switch src[s.pos] {
		case '\\':
			s.pos++
		case '[':
			depth++
		case ']':
			depth--
			if depth == 0 {
				r := [2]int{start, s.pos}
				s.pos++
				return r, true
			}
		case '{':
			s.skipBraces()
			continue
		case '"':
			s.skipQuotes()
			continue
		}
		s.pos++
	}
	s.l.diagAt(open, "parse", "missing close-bracket")
	return [2]int{}, false
}

// skipBraces consumes a balanced {..} block starting at the current '{'.
func (s *scanner) skipBraces() {
	src := s.src()
	depth := 0
	for s.pos < s.end {
		switch src[s.pos] {
		case '\\':
			s.pos++
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				s.pos++
				return
			}
		}
		s.pos++
	}
}

// skipQuotes consumes a "-delimited section starting at the current '"'.
func (s *scanner) skipQuotes() {
	src := s.src()
	s.pos++ // consume the opening quote
	for s.pos < s.end {
		switch src[s.pos] {
		case '\\':
			s.pos++
		case '"':
			s.pos++
			return
		}
		s.pos++
	}
}

func isVarNameChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
