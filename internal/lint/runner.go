package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Runner drives a tkcheck run over a set of targets: .tcl files are
// linted directly, Go files have their Eval/MustEval script literals
// linted, each Go directory is analyzed as a package (lock discipline,
// lock order, pool lifetime, package docs), and Markdown files feed
// the metrics registry's doc side. Cross-target facts (opcodes,
// metrics) accumulate across everything scanned and are evaluated by
// Finish.
//
// Check only collects work; Finish fans the collected targets out
// across a worker pool (one worker per CPU by default), merges each
// worker's diagnostics and facts, and sorts — so the output is
// deterministic regardless of scheduling. Read and parse failures
// discovered during the parallel phase are reported by Errs.
type Runner struct {
	Reg *Registry
	// IncludeTests lints _test.go files too. Off by default: tests
	// deliberately feed the interpreter bad scripts to exercise its
	// error paths.
	IncludeTests bool
	// Jobs caps the worker pool; 0 means GOMAXPROCS.
	Jobs int

	work []workItem

	mu      sync.Mutex
	opcodes *OpcodeFacts
	metrics *MetricsFacts
	diags   []Diag
	errs    []error
	timings map[string]time.Duration
}

type workItem struct {
	kind  int // tclItem, goDirItem, mdItem
	dir   string
	paths []string
}

const (
	tclItem = iota
	goDirItem
	mdItem
)

// NewRunner builds a Runner with a fresh registry and fact state.
func NewRunner() *Runner {
	return &Runner{
		Reg:     NewRegistry(),
		opcodes: NewOpcodeFacts(),
		metrics: NewMetricsFacts(),
		timings: make(map[string]time.Duration),
	}
}

// Check queues one target: a .tcl, .go, or .md file, a directory, or a
// "dir/..." pattern. Walk and stat problems are reported immediately;
// the queued work itself runs in Finish.
func (r *Runner) Check(target string) error {
	if rest, ok := strings.CutSuffix(target, "..."); ok {
		root := filepath.Clean(rest)
		if root == "" {
			root = "."
		}
		return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return r.queueDir(path)
		})
	}
	info, err := os.Stat(target)
	if err != nil {
		return err
	}
	if info.IsDir() {
		return r.queueDir(target)
	}
	switch {
	case strings.HasSuffix(target, ".tcl"):
		r.work = append(r.work, workItem{kind: tclItem, paths: []string{target}})
	case strings.HasSuffix(target, ".go"):
		r.work = append(r.work, workItem{kind: goDirItem, dir: filepath.Dir(target), paths: []string{target}})
	case strings.HasSuffix(target, ".md"):
		r.work = append(r.work, workItem{kind: mdItem, paths: []string{target}})
	default:
		return fmt.Errorf("tkcheck: don't know how to check %q (want a directory, dir/..., *.tcl, *.go or *.md)", target)
	}
	return nil
}

func (r *Runner) queueDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var goFiles []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tcl"):
			r.work = append(r.work, workItem{kind: tclItem, paths: []string{filepath.Join(dir, name)}})
		case strings.HasSuffix(name, ".md"):
			r.work = append(r.work, workItem{kind: mdItem, paths: []string{filepath.Join(dir, name)}})
		case strings.HasSuffix(name, "_test.go"):
			if r.IncludeTests {
				goFiles = append(goFiles, filepath.Join(dir, name))
			}
		case strings.HasSuffix(name, ".go"):
			goFiles = append(goFiles, filepath.Join(dir, name))
		}
	}
	if len(goFiles) > 0 {
		r.work = append(r.work, workItem{kind: goDirItem, dir: dir, paths: goFiles})
	}
	return nil
}

// Finish runs the queued work across the worker pool, evaluates the
// cross-target facts, and returns all diagnostics, sorted. Check Errs
// afterwards for read/parse failures.
func (r *Runner) Finish() []Diag {
	jobs := r.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(r.work) {
		jobs = len(r.work)
	}
	if jobs > 1 {
		var wg sync.WaitGroup
		next := make(chan workItem)
		for i := 0; i < jobs; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := r.newWorker()
				for item := range next {
					w.run(item)
				}
				r.mergeWorker(w)
			}()
		}
		for _, item := range r.work {
			next <- item
		}
		close(next)
		wg.Wait()
	} else {
		w := r.newWorker()
		for _, item := range r.work {
			w.run(item)
		}
		r.mergeWorker(w)
	}
	r.work = nil
	r.diags = append(r.diags, r.opcodes.Diags()...)
	r.diags = append(r.diags, r.metrics.Diags()...)
	SortDiags(r.diags)
	return r.diags
}

// Errs returns read and parse failures encountered by Finish, in a
// deterministic order.
func (r *Runner) Errs() []error {
	sort.Slice(r.errs, func(i, j int) bool { return r.errs[i].Error() < r.errs[j].Error() })
	return r.errs
}

// AnalyzerTiming is cumulative wall time one analyzer spent across all
// targets (summed across workers, so parallel runs can exceed the
// run's wall clock).
type AnalyzerTiming struct {
	Name     string
	Duration time.Duration
}

// Timings reports per-analyzer cost, sorted by name.
func (r *Runner) Timings() []AnalyzerTiming {
	out := make([]AnalyzerTiming, 0, len(r.timings))
	for name, d := range r.timings {
		out = append(out, AnalyzerTiming{Name: name, Duration: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// worker is one goroutine's private accumulation state; merged under
// the Runner's lock when the worker drains.
type worker struct {
	r       *Runner
	diags   []Diag
	errs    []error
	opcodes *OpcodeFacts
	metrics *MetricsFacts
	timings map[string]time.Duration
}

func (r *Runner) newWorker() *worker {
	return &worker{
		r:       r,
		opcodes: NewOpcodeFacts(),
		metrics: NewMetricsFacts(),
		timings: make(map[string]time.Duration),
	}
}

func (r *Runner) mergeWorker(w *worker) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.diags = append(r.diags, w.diags...)
	r.errs = append(r.errs, w.errs...)
	r.opcodes.Merge(w.opcodes)
	r.metrics.Merge(w.metrics)
	for name, d := range w.timings {
		r.timings[name] += d
	}
}

func (w *worker) timed(name string, fn func()) {
	begin := time.Now()
	fn()
	w.timings[name] += time.Since(begin)
}

func (w *worker) run(item workItem) {
	switch item.kind {
	case tclItem:
		w.checkTclFile(item.paths[0])
	case mdItem:
		w.checkDocFile(item.paths[0])
	case goDirItem:
		w.checkGoFiles(item.dir, item.paths)
	}
}

func (w *worker) checkTclFile(path string) {
	src, err := os.ReadFile(path)
	if err != nil {
		w.errs = append(w.errs, err)
		return
	}
	w.timed("scripts", func() {
		w.diags = append(w.diags, LintScriptSource(path, string(src), w.r.Reg)...)
	})
}

func (w *worker) checkDocFile(path string) {
	src, err := os.ReadFile(path)
	if err != nil {
		w.errs = append(w.errs, err)
		return
	}
	w.timed("metrics", func() {
		w.metrics.CollectDoc(path, string(src))
	})
}

// checkGoFiles parses a directory's Go files once and runs every Go
// analysis over them: script-literal linting, opcode and metric fact
// collection, lock discipline, lock order, pool lifetime, and
// package-doc presence.
func (w *worker) checkGoFiles(dir string, paths []string) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			w.errs = append(w.errs, err)
			return
		}
		var f *ast.File
		begin := time.Now()
		f, err = parser.ParseFile(fset, path, src, parser.ParseComments)
		w.timings["parse"] += time.Since(begin)
		if err != nil {
			w.errs = append(w.errs, fmt.Errorf("tkcheck: %v", err))
			return
		}
		files = append(files, f)
		w.timed("scripts", func() {
			w.diags = append(w.diags, lintGoFile(fset, f, string(src), path, w.r.Reg)...)
		})
		w.timed("opcodes", func() {
			w.opcodes.Collect(fset, f)
		})
	}
	w.timed("metrics", func() {
		w.metrics.CollectPackage(fset, files)
	})
	w.timed("locks", func() {
		w.diags = append(w.diags, CheckLocks(fset, files)...)
	})
	w.timed("lockorder", func() {
		w.diags = append(w.diags, CheckLockOrder(fset, files)...)
	})
	w.timed("pool", func() {
		w.diags = append(w.diags, CheckPoolLifetime(fset, files)...)
	})
	w.timed("pkgdoc", func() {
		w.diags = append(w.diags, CheckPackageDoc(dir, fset, files)...)
	})
}
