package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Runner drives a tkcheck run over a set of targets: .tcl files are
// linted directly, Go files have their Eval/MustEval script literals
// linted, and each Go directory is additionally analyzed as a package
// for lock discipline. Opcode facts accumulate across every scanned
// directory (constants and dispatcher live in different packages) and
// are evaluated by Finish.
type Runner struct {
	Reg *Registry
	// IncludeTests lints _test.go files too. Off by default: tests
	// deliberately feed the interpreter bad scripts to exercise its
	// error paths.
	IncludeTests bool

	opcodes *OpcodeFacts
	diags   []Diag
}

// NewRunner builds a Runner with a fresh registry and opcode state.
func NewRunner() *Runner {
	return &Runner{Reg: NewRegistry(), opcodes: NewOpcodeFacts()}
}

// Check analyzes one target: a .tcl file, a .go file, a directory, or a
// "dir/..." pattern.
func (r *Runner) Check(target string) error {
	if rest, ok := strings.CutSuffix(target, "..."); ok {
		root := filepath.Clean(rest)
		if root == "" {
			root = "."
		}
		return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return r.checkDir(path)
		})
	}
	info, err := os.Stat(target)
	if err != nil {
		return err
	}
	if info.IsDir() {
		return r.checkDir(target)
	}
	switch {
	case strings.HasSuffix(target, ".tcl"):
		return r.checkTclFile(target)
	case strings.HasSuffix(target, ".go"):
		return r.checkGoFiles(filepath.Dir(target), []string{target})
	}
	return fmt.Errorf("tkcheck: don't know how to check %q (want a directory, dir/..., *.tcl or *.go)", target)
}

// Finish evaluates the cross-package opcode facts and returns all
// diagnostics, sorted.
func (r *Runner) Finish() []Diag {
	r.diags = append(r.diags, r.opcodes.Diags()...)
	SortDiags(r.diags)
	return r.diags
}

func (r *Runner) checkDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var goFiles []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tcl"):
			if err := r.checkTclFile(filepath.Join(dir, name)); err != nil {
				return err
			}
		case strings.HasSuffix(name, "_test.go"):
			if r.IncludeTests {
				goFiles = append(goFiles, filepath.Join(dir, name))
			}
		case strings.HasSuffix(name, ".go"):
			goFiles = append(goFiles, filepath.Join(dir, name))
		}
	}
	return r.checkGoFiles(dir, goFiles)
}

// checkGoFiles parses a directory's Go files once and runs every Go
// analysis over them: script-literal linting, opcode-fact collection,
// lock discipline, and package-doc presence.
func (r *Runner) checkGoFiles(dir string, paths []string) error {
	if len(paths) == 0 {
		return nil
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("tkcheck: %v", err)
		}
		files = append(files, f)
		r.diags = append(r.diags, lintGoFile(fset, f, string(src), path, r.Reg)...)
		r.opcodes.Collect(fset, f)
	}
	r.diags = append(r.diags, CheckLocks(fset, files)...)
	r.diags = append(r.diags, CheckPackageDoc(dir, fset, files)...)
	return nil
}

func (r *Runner) checkTclFile(path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	r.diags = append(r.diags, LintScriptSource(path, string(src), r.Reg)...)
	return nil
}
