package lint

import (
	"repro/internal/tcl"
	"repro/internal/tk"
	"repro/internal/widget"
)

// A spec gives the linter per-command knowledge: argument-count bounds,
// closed subcommand sets, which arguments are deferred scripts or
// expressions, and (for the irregular commands) a custom check.
//
// min and max count arguments after the command name; max < 0 means
// unlimited. For a sub spec the counts are after the subcommand word.
type spec struct {
	min, max int
	// subs is the closed set of subcommand names keyed on the first
	// argument; nil means the command has no subcommand structure.
	subs map[string]*spec
	// subsOpen, when true, means subs lists only the known
	// subcommands to arity-check and unknown first arguments are not
	// an error (e.g. "after 100" where the first arg is a number).
	subsOpen bool
	// scriptArgs / exprArgs / prefixArgs are 1-based argument indices
	// holding full deferred scripts, expressions, or command prefixes
	// (scripts that get extra arguments appended at call time, so
	// arity is not checked).
	scriptArgs []int
	exprArgs   []int
	prefixArgs []int
	// pathArgs are 1-based argument indices holding widget path names.
	pathArgs []int
	// check, if set, runs after the generic checks for irregular
	// commands (if, expr, after, send, widget creation, ...).
	check func(l *linter, c cmdNode)
}

func argsN(min, max int) *spec { return &spec{min: min, max: max} }

// Registry is the set of command names and specs a lint unit is checked
// against. Build one with NewRegistry and share it across units.
type Registry struct {
	known map[string]bool
	specs map[string]*spec
}

// Known reports whether name is a known command.
func (r *Registry) Known(name string) bool { return r.known[name] }

// AddKnown registers extra command names (application-specific commands
// such as wish's "screenshot").
func (r *Registry) AddKnown(names ...string) {
	for _, n := range names {
		r.known[n] = true
	}
}

// NewRegistry builds the command registry the linter checks against by
// introspecting the live command sets: the Tcl builtins from a fresh
// interpreter, the Tk intrinsics from tk.CommandNames, and the widget
// classes from widget.CommandNames. The arity/subcommand spec table is
// maintained here, mirroring docs/tcl-commands.md and the command
// implementations.
func NewRegistry() *Registry {
	r := &Registry{known: make(map[string]bool), specs: make(map[string]*spec)}
	for _, n := range tcl.New().CommandNames() {
		r.known[n] = true
	}
	for _, n := range tk.CommandNames() {
		r.known[n] = true
	}
	for _, n := range widget.CommandNames() {
		r.known[n] = true
	}
	r.addTclSpecs()
	r.addTkSpecs()
	r.addWidgetSpecs()
	return r
}

func (r *Registry) addTclSpecs() {
	s := r.specs

	// Variables.
	s["set"] = argsN(1, 2)
	s["unset"] = argsN(1, -1)
	s["incr"] = argsN(1, 2)
	s["append"] = argsN(1, -1)
	s["global"] = argsN(1, -1)
	s["upvar"] = argsN(2, -1)
	s["array"] = &spec{min: 2, max: -1, subs: map[string]*spec{
		"exists": argsN(1, 1), "size": argsN(1, 1), "names": argsN(1, 2),
		"get": argsN(1, 2), "set": argsN(2, 2), "unset": argsN(1, 2),
	}}
	s["trace"] = &spec{min: 2, max: -1, subs: map[string]*spec{
		"variable": argsN(3, 3), "vdelete": argsN(3, 3), "vinfo": argsN(1, 1),
	}}

	// Control flow.
	s["if"] = &spec{min: 2, max: -1, check: checkIf}
	s["while"] = &spec{min: 2, max: 2, exprArgs: []int{1}, scriptArgs: []int{2}}
	s["for"] = &spec{min: 4, max: 4, scriptArgs: []int{1, 3, 4}, exprArgs: []int{2}}
	s["foreach"] = &spec{min: 3, max: 3, scriptArgs: []int{3}}
	s["switch"] = argsN(2, -1)
	s["case"] = argsN(2, -1)
	s["break"] = argsN(0, 0)
	s["continue"] = argsN(0, 0)
	s["return"] = argsN(0, -1)
	s["error"] = argsN(1, 3)
	s["catch"] = &spec{min: 1, max: 2, scriptArgs: []int{1}}

	// Procedures and evaluation.
	s["proc"] = &spec{min: 3, max: 3, scriptArgs: []int{3}}
	s["eval"] = &spec{min: 1, max: -1, check: checkEval}
	s["uplevel"] = argsN(1, -1)
	s["rename"] = argsN(2, 2)
	s["subst"] = argsN(1, 1)
	s["time"] = &spec{min: 1, max: 2, scriptArgs: []int{1}}
	s["info"] = argsN(1, -1)
	s["expr"] = &spec{min: 1, max: -1, check: checkExprCmd}

	// Lists.
	s["list"] = argsN(0, -1)
	s["lindex"] = argsN(2, 2)
	s["index"] = argsN(2, 2)
	s["llength"] = argsN(1, 1)
	s["lappend"] = argsN(1, -1)
	s["lrange"] = argsN(3, 3)
	s["range"] = argsN(3, 3)
	s["linsert"] = argsN(3, -1)
	s["lreplace"] = argsN(3, -1)
	s["lsort"] = argsN(1, -1)
	s["lsearch"] = argsN(2, 3)
	s["concat"] = argsN(0, -1)
	s["join"] = argsN(1, 2)
	s["split"] = argsN(1, 2)

	// Strings.
	s["string"] = &spec{min: 2, max: -1, subs: map[string]*spec{
		"compare": argsN(2, 2), "equal": argsN(2, 2), "first": argsN(2, 2),
		"last": argsN(2, 2), "index": argsN(2, 2), "length": argsN(1, 1),
		"match": argsN(2, 2), "range": argsN(3, 3), "repeat": argsN(2, 2),
		"reverse": argsN(1, 1), "tolower": argsN(1, 1), "toupper": argsN(1, 1),
		"trim": argsN(1, 2), "trimleft": argsN(1, 2), "trimright": argsN(1, 2),
		"wordend": argsN(2, 2), "wordstart": argsN(2, 2),
	}}
	s["format"] = argsN(1, -1)
	s["scan"] = argsN(3, -1)
	s["regexp"] = argsN(2, -1)
	s["regsub"] = argsN(4, -1)

	// Files and processes.
	s["exec"] = argsN(1, -1)
	s["source"] = argsN(1, 1)
	s["file"] = argsN(2, -1)
	s["glob"] = argsN(1, -1)
	s["cd"] = argsN(0, 1)
	s["pwd"] = argsN(0, 0)
	s["pid"] = argsN(0, 0)
	s["puts"] = argsN(1, 3)
	s["print"] = argsN(0, -1)
	s["exit"] = argsN(0, 1)
}

func (r *Registry) addTkSpecs() {
	s := r.specs

	s["bind"] = &spec{min: 1, max: 3, pathArgs: []int{1}, scriptArgs: []int{3}}
	s["destroy"] = &spec{min: 0, max: -1, pathArgs: []int{-1}}
	s["update"] = &spec{min: 0, max: 1, subs: map[string]*spec{"idletasks": argsN(0, 0)}}
	s["after"] = &spec{min: 1, max: -1, check: checkAfter}
	s["focus"] = argsN(0, 1)
	s["option"] = &spec{min: 1, max: -1, subs: map[string]*spec{
		"add": argsN(2, 3), "clear": argsN(0, 0), "get": argsN(3, 3),
		"readstring": argsN(1, 2), "readfile": argsN(1, 2),
	}}
	s["selection"] = &spec{min: 1, max: -1, check: checkSelection, subs: map[string]*spec{
		"get": argsN(0, 0), "own": argsN(0, 1), "handle": argsN(2, 2),
		"clear": argsN(0, 0),
	}}
	s["send"] = &spec{min: 2, max: -1, check: checkSend}
	winfoOne := argsN(1, 1)
	s["winfo"] = &spec{min: 1, max: -1, subs: map[string]*spec{
		"interps": argsN(0, 0), "containing": argsN(2, 2),
		"exists": winfoOne, "name": winfoOne, "class": winfoOne,
		"children": winfoOne, "parent": winfoOne, "width": winfoOne,
		"height": winfoOne, "reqwidth": winfoOne, "reqheight": winfoOne,
		"x": winfoOne, "y": winfoOne, "rootx": winfoOne, "rooty": winfoOne,
		"ismapped": winfoOne, "geometry": winfoOne, "toplevel": winfoOne,
		"id": winfoOne, "manager": winfoOne, "screenwidth": winfoOne,
		"screenheight": winfoOne,
	}}
	s["wm"] = &spec{min: 2, max: 3, pathArgs: []int{2}, subs: map[string]*spec{
		"title": argsN(1, 2), "geometry": argsN(1, 2),
		"withdraw": argsN(1, 1), "deiconify": argsN(1, 1),
	}}
	s["raise"] = &spec{min: 1, max: 1, pathArgs: []int{1}}
	s["lower"] = &spec{min: 1, max: 1, pathArgs: []int{1}}
	s["bell"] = argsN(0, 0)
	s["tkwait"] = &spec{min: 2, max: 2, subs: map[string]*spec{
		"variable": argsN(1, 1), "window": argsN(1, 1),
	}}
	s["tkstats"] = &spec{min: 1, max: 2, subs: map[string]*spec{
		"counters": argsN(0, 1), "gauges": argsN(0, 1),
		"histogram": argsN(1, 1), "trace": argsN(0, 1),
		"spans": argsN(0, 1), "reset": argsN(0, 0),
	}}
	s["pack"] = &spec{min: 1, max: -1, subs: map[string]*spec{
		"append": argsN(2, -1), "before": argsN(2, -1), "after": argsN(2, -1),
		"unpack": argsN(1, 1), "forget": argsN(1, 1), "info": argsN(1, 1),
		"slaves": argsN(1, 1), "propagate": argsN(1, 2),
	}}
}

func (r *Registry) addWidgetSpecs() {
	for _, class := range widget.CommandNames() {
		r.specs[class] = &spec{min: 1, max: -1, check: checkWidgetCreate}
	}
}

// prefixOptions are configuration options whose value is a command
// prefix: the widget appends arguments (scroll positions, scale values)
// before evaluating, so only the leading command word can be checked.
var prefixOptions = map[string]bool{
	"-scroll":         true,
	"-scrollcommand":  true,
	"-xscroll":        true,
	"-yscroll":        true,
	"-xscrollcommand": true,
	"-yscrollcommand": true,
}

// prefixCommandClasses are widget classes whose -command option is a
// prefix (extra arguments appended) rather than a complete script.
var prefixCommandClasses = map[string]bool{
	"scrollbar": true,
	"scale":     true,
}
