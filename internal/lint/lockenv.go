package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Syntactic type environment for the lock-order analyzer. Everything
// here is derived from declarations in the package's files alone (no
// go/types): struct field types, function and method result types with
// single-level generic substitution, and per-function local bindings
// built from receivers, parameters, and assignments. Resolution is
// best-effort: an expression that cannot be resolved yields the zero
// rtype and the analyzer skips it.

// rtype is a resolved type: a named struct/type in the package (with
// generic bindings when it was instantiated) or a container whose
// element type is known.
type rtype struct {
	name  string           // named type, "" when unknown
	targs map[string]rtype // type-param name -> binding, for generics
	elem  *rtype           // element type for arrays/slices/maps/chans
}

// pkgEnv indexes one package's declarations.
type pkgEnv struct {
	mutexes        map[string]bool                // "Struct.field" and package-level "var"
	fields         map[string]map[string]ast.Expr // struct -> field -> declared type
	typeParams     map[string][]string            // generic type -> param names
	funcResults    map[string][]ast.Expr          // package func -> flattened results
	methodResults  map[string][]ast.Expr          // "Type.method" -> flattened results
	methodTypePars map[string][]string            // "Type.method" -> receiver type-param names
	funcs          map[string]bool
	methods        map[string]bool
}

func newPkgEnv(files []*ast.File) *pkgEnv {
	env := &pkgEnv{
		mutexes:        make(map[string]bool),
		fields:         make(map[string]map[string]ast.Expr),
		typeParams:     make(map[string][]string),
		funcResults:    make(map[string][]ast.Expr),
		methodResults:  make(map[string][]ast.Expr),
		methodTypePars: make(map[string][]string),
		funcs:          make(map[string]bool),
		methods:        make(map[string]bool),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.TypeParams != nil {
							var params []string
							for _, fl := range sp.TypeParams.List {
								for _, n := range fl.Names {
									params = append(params, n.Name)
								}
							}
							env.typeParams[sp.Name.Name] = params
						}
						st, ok := sp.Type.(*ast.StructType)
						if !ok {
							continue
						}
						fm := make(map[string]ast.Expr)
						for _, field := range st.Fields.List {
							for _, n := range field.Names {
								fm[n.Name] = field.Type
								if isMutexType(field.Type) {
									env.mutexes[sp.Name.Name+"."+n.Name] = true
								}
							}
						}
						env.fields[sp.Name.Name] = fm
					case *ast.ValueSpec:
						if d.Tok != token.VAR || sp.Type == nil || !isMutexType(sp.Type) {
							continue
						}
						for _, n := range sp.Names {
							env.mutexes[n.Name] = true
						}
					}
				}
			case *ast.FuncDecl:
				results := flattenFields(d.Type.Results)
				if d.Recv == nil || len(d.Recv.List) == 0 {
					env.funcs[d.Name.Name] = true
					env.funcResults[d.Name.Name] = results
					continue
				}
				recvType := receiverTypeName(d.Recv.List[0].Type)
				if recvType == "" {
					continue
				}
				key := recvType + "." + d.Name.Name
				env.methods[key] = true
				env.methodResults[key] = results
				env.methodTypePars[key] = receiverTypeParams(d.Recv.List[0].Type)
			}
		}
	}
	return env
}

// isMutexType reports whether a declared type is a mutex: its base
// type name ends in "Mutex" (sync.Mutex, sync.RWMutex, obs.TimedMutex,
// obs.TimedRWMutex, or local equivalents), possibly behind a pointer.
func isMutexType(e ast.Expr) bool {
	name := baseTypeName(e)
	return name != "" && len(name) >= 5 && name[len(name)-5:] == "Mutex"
}

// baseTypeName unwraps pointers, parens, qualification, and generic
// instantiation down to the underlying type name.
func baseTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			return t.Sel.Name
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// receiverTypeParams returns the receiver's type-parameter names, in
// order: for (sh *resShard[V]) it returns ["V"].
func receiverTypeParams(e ast.Expr) []string {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	var idx []ast.Expr
	switch t := e.(type) {
	case *ast.IndexExpr:
		idx = []ast.Expr{t.Index}
	case *ast.IndexListExpr:
		idx = t.Indices
	default:
		return nil
	}
	var names []string
	for _, ix := range idx {
		if id, ok := ix.(*ast.Ident); ok {
			names = append(names, id.Name)
		} else {
			names = append(names, "")
		}
	}
	return names
}

// flattenFields expands a result list to one entry per value.
func flattenFields(fl *ast.FieldList) []ast.Expr {
	if fl == nil {
		return nil
	}
	var out []ast.Expr
	for _, f := range fl.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, f.Type)
		}
	}
	return out
}

// resolveTypeExpr resolves a declared type expression against generic
// bindings.
func (env *pkgEnv) resolveTypeExpr(e ast.Expr, bind map[string]rtype) rtype {
	switch t := e.(type) {
	case *ast.ParenExpr:
		return env.resolveTypeExpr(t.X, bind)
	case *ast.StarExpr:
		return env.resolveTypeExpr(t.X, bind)
	case *ast.Ident:
		if b, ok := bind[t.Name]; ok {
			return b
		}
		return rtype{name: t.Name}
	case *ast.SelectorExpr:
		return rtype{name: t.Sel.Name}
	case *ast.IndexExpr:
		return env.resolveInstantiation(t.X, []ast.Expr{t.Index}, bind)
	case *ast.IndexListExpr:
		return env.resolveInstantiation(t.X, t.Indices, bind)
	case *ast.ArrayType:
		el := env.resolveTypeExpr(t.Elt, bind)
		return rtype{elem: &el}
	case *ast.MapType:
		el := env.resolveTypeExpr(t.Value, bind)
		return rtype{elem: &el}
	case *ast.ChanType:
		el := env.resolveTypeExpr(t.Value, bind)
		return rtype{elem: &el}
	}
	return rtype{}
}

func (env *pkgEnv) resolveInstantiation(base ast.Expr, args []ast.Expr, bind map[string]rtype) rtype {
	name := baseTypeName(base)
	if name == "" {
		return rtype{}
	}
	params := env.typeParams[name]
	targs := make(map[string]rtype)
	for i, a := range args {
		if i < len(params) {
			targs[params[i]] = env.resolveTypeExpr(a, bind)
		}
	}
	return rtype{name: name, targs: targs}
}

// callResults resolves the result types of a call expression: the
// callee's flattened result list plus the generic bindings to resolve
// them with. ok is false when the callee is not a same-package
// function or method (or the receiver type is unknown).
func (env *pkgEnv) callResults(call *ast.CallExpr, vars map[string]rtype) (results []ast.Expr, bind map[string]rtype, callee string, ok bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if env.funcs[fun.Name] {
			return env.funcResults[fun.Name], nil, fun.Name, true
		}
	case *ast.SelectorExpr:
		rx := env.resolveValueExpr(fun.X, vars)
		if rx.name == "" {
			return nil, nil, "", false
		}
		key := rx.name + "." + fun.Sel.Name
		if !env.methods[key] {
			return nil, nil, "", false
		}
		// Map the method's receiver type-param names positionally onto
		// the instantiation the receiver value carries.
		bind = make(map[string]rtype)
		typePars := env.typeParams[rx.name]
		for i, mp := range env.methodTypePars[key] {
			if mp == "" || i >= len(typePars) {
				continue
			}
			if b, okb := rx.targs[typePars[i]]; okb {
				bind[mp] = b
			}
		}
		return env.methodResults[key], bind, key, true
	}
	return nil, nil, "", false
}

// resolveValueExpr resolves the type of a value expression using the
// function-local bindings in vars.
func (env *pkgEnv) resolveValueExpr(e ast.Expr, vars map[string]rtype) rtype {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return env.resolveValueExpr(v.X, vars)
	case *ast.Ident:
		return vars[v.Name]
	case *ast.SelectorExpr:
		rx := env.resolveValueExpr(v.X, vars)
		if rx.name == "" {
			return rtype{}
		}
		ft := env.fields[rx.name][v.Sel.Name]
		if ft == nil {
			return rtype{}
		}
		return env.resolveTypeExpr(ft, rx.targs)
	case *ast.IndexExpr:
		rx := env.resolveValueExpr(v.X, vars)
		if rx.elem != nil {
			return *rx.elem
		}
		return rtype{}
	case *ast.CallExpr:
		results, bind, _, ok := env.callResults(v, vars)
		if !ok || len(results) == 0 {
			return rtype{}
		}
		return env.resolveTypeExpr(results[0], bind)
	case *ast.UnaryExpr:
		if v.Op == token.AND || v.Op == token.ARROW {
			return env.resolveValueExpr(v.X, vars)
		}
	case *ast.StarExpr:
		return env.resolveValueExpr(v.X, vars)
	case *ast.TypeAssertExpr:
		if v.Type != nil {
			return env.resolveTypeExpr(v.Type, nil)
		}
	case *ast.CompositeLit:
		if v.Type != nil {
			return env.resolveTypeExpr(v.Type, nil)
		}
	}
	return rtype{}
}

// funcSummary is one function's contribution to the interprocedural
// pass: the mutex classes it acquires directly and the same-package
// functions it calls.
type funcSummary struct {
	acquires map[string]token.Pos
	calls    map[string]bool
}

type acqEdgeRec struct {
	held     string
	acquired string
	pos      token.Pos
}

type heldCallRec struct {
	callee string
	held   []string
	pos    token.Pos
}

// lockOrderWalk walks one function, tracking which mutex classes are
// held (mapped to the identifier that locked them, for the pair
// idiom) through the same flow constructs the lock-discipline analyzer
// handles: branch copies with intersection merges, terminating
// branches, deferred unlocks keeping locks held, and go-closures
// starting empty.
type lockOrderWalk struct {
	fset         *token.FileSet
	env          *pkgEnv
	key          string // "Type.method", "func", or "" for unkeyed
	funcName     string
	vars         map[string]rtype
	orderedPairs map[string]bool
	summary      *funcSummary
	acqEdges     []acqEdgeRec
	heldCalls    []heldCallRec
	diags        []Diag
}

func newLockOrderWalk(fset *token.FileSet, env *pkgEnv, fd *ast.FuncDecl) *lockOrderWalk {
	w := &lockOrderWalk{
		fset:         fset,
		env:          env,
		funcName:     fd.Name.Name,
		vars:         make(map[string]rtype),
		orderedPairs: collectOrderedPairs(fd.Body),
		summary:      &funcSummary{acquires: make(map[string]token.Pos), calls: make(map[string]bool)},
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		w.key = fd.Name.Name
	} else {
		recvType := receiverTypeName(fd.Recv.List[0].Type)
		if recvType != "" {
			w.key = recvType + "." + fd.Name.Name
			if len(fd.Recv.List[0].Names) > 0 {
				w.vars[fd.Recv.List[0].Names[0].Name] = rtype{name: recvType}
			}
		}
	}
	if fd.Type.Params != nil {
		for _, p := range fd.Type.Params.List {
			pt := env.resolveTypeExpr(p.Type, nil)
			for _, n := range p.Names {
				w.vars[n.Name] = pt
			}
		}
	}
	return w
}

// collectOrderedPairs finds the ascending-order pair idiom: an if
// statement whose condition is an ordering comparison and whose body
// swaps exactly two identifiers (lo, hi = b, a). Locking the same
// mutex class through both identifiers of such a pair is a
// deterministic acquisition order, not a deadlock.
func collectOrderedPairs(body *ast.BlockStmt) map[string]bool {
	pairs := make(map[string]bool)
	if body == nil {
		return pairs
	}
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cmp, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch cmp.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return true
		}
		for _, st := range ifs.Body.List {
			as, ok := st.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 2 {
				continue
			}
			a, aok := as.Lhs[0].(*ast.Ident)
			b, bok := as.Lhs[1].(*ast.Ident)
			if aok && bok {
				pairs[pairKey(a.Name, b.Name)] = true
			}
		}
		return true
	})
	return pairs
}

func pairKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "|" + b
}

func copyLockers(held map[string]string) map[string]string {
	c := make(map[string]string, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func mergeLockers(into, other map[string]string) {
	for k := range into {
		if _, ok := other[k]; !ok {
			delete(into, k)
		}
	}
}

func (w *lockOrderWalk) heldKeys(held map[string]string) []string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// block walks statements in order; it returns true if the block always
// terminates.
func (w *lockOrderWalk) block(stmts []ast.Stmt, held map[string]string) bool {
	for _, s := range stmts {
		if w.stmt(s, held) {
			return true
		}
	}
	return false
}

func (w *lockOrderWalk) stmt(s ast.Stmt, held map[string]string) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		w.bindAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.expr(v, held)
				}
				w.bindValueSpec(vs)
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.block(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		thenHeld := copyLockers(held)
		thenTerm := w.block(s.Body.List, thenHeld)
		var elseHeld map[string]string
		elseTerm := false
		if s.Else != nil {
			elseHeld = copyLockers(held)
			elseTerm = w.stmt(s.Else, elseHeld)
		}
		switch {
		case s.Else == nil:
			if !thenTerm {
				mergeLockers(held, thenHeld)
			}
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replaceLockers(held, elseHeld)
		case elseTerm:
			replaceLockers(held, thenHeld)
		default:
			mergeLockers(thenHeld, elseHeld)
			replaceLockers(held, thenHeld)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		bodyHeld := copyLockers(held)
		w.block(s.Body.List, bodyHeld)
		if s.Post != nil {
			w.stmt(s.Post, bodyHeld)
		}
		mergeLockers(held, bodyHeld)
	case *ast.RangeStmt:
		w.expr(s.X, held)
		bodyHeld := copyLockers(held)
		w.block(s.Body.List, bodyHeld)
		mergeLockers(held, bodyHeld)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		w.caseClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.caseClauses(s.Body, held)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if comm, ok := c.(*ast.CommClause); ok {
				caseHeld := copyLockers(held)
				if comm.Comm != nil {
					w.stmt(comm.Comm, caseHeld)
				}
				w.block(comm.Body, caseHeld)
				mergeLockers(held, caseHeld)
			}
		}
	case *ast.DeferStmt:
		// A deferred recv.mu.Unlock() — plain or wrapped in a closure —
		// keeps the mutex held to function end. Other deferred calls run
		// at exit under the deferred-unlock state, which the current
		// state approximates.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			for _, e := range s.Call.Args {
				w.expr(e, held)
			}
			w.block(fl.Body.List, copyLockers(held))
		} else if _, _, _, isMutexOp := w.lockCall(s.Call); !isMutexOp {
			for _, e := range s.Call.Args {
				w.expr(e, held)
			}
		}
	case *ast.GoStmt:
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.block(fl.Body.List, make(map[string]string))
		}
		for _, e := range s.Call.Args {
			w.expr(e, held)
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	}
	return false
}

func replaceLockers(into, from map[string]string) {
	for k := range into {
		delete(into, k)
	}
	for k, v := range from {
		into[k] = v
	}
}

func (w *lockOrderWalk) caseClauses(body *ast.BlockStmt, held map[string]string) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			caseHeld := copyLockers(held)
			for _, e := range cc.List {
				w.expr(e, caseHeld)
			}
			w.block(cc.Body, caseHeld)
			mergeLockers(held, caseHeld)
		}
	}
}

// bindAssign records the types of assigned identifiers.
func (w *lockOrderWalk) bindAssign(s *ast.AssignStmt) {
	if len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				w.vars[id.Name] = w.env.resolveValueExpr(s.Rhs[i], w.vars)
			}
		}
		return
	}
	// Multi-value: x, ok := call()
	if len(s.Rhs) == 1 {
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		results, bind, _, ok := w.env.callResults(call, w.vars)
		if !ok {
			return
		}
		for i, lhs := range s.Lhs {
			id, isID := lhs.(*ast.Ident)
			if !isID || id.Name == "_" || i >= len(results) {
				continue
			}
			w.vars[id.Name] = w.env.resolveTypeExpr(results[i], bind)
		}
	}
}

func (w *lockOrderWalk) bindValueSpec(vs *ast.ValueSpec) {
	if vs.Type != nil {
		vt := w.env.resolveTypeExpr(vs.Type, nil)
		for _, n := range vs.Names {
			w.vars[n.Name] = vt
		}
		return
	}
	for i, n := range vs.Names {
		if i < len(vs.Values) {
			w.vars[n.Name] = w.env.resolveValueExpr(vs.Values[i], w.vars)
		}
	}
}

// lockCall decodes x.Lock() / x.mu.Lock() style calls. class is the
// mutex class ("Struct.field" or package var), locker the identifier
// the lock is reached through (for the pair idiom), isAcquire true for
// Lock/RLock. ok is false when the call is not a resolvable mutex
// operation.
func (w *lockOrderWalk) lockCall(call *ast.CallExpr) (class, locker string, isAcquire, ok bool) {
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	if !selOK {
		return "", "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		isAcquire = true
	case "Unlock", "RUnlock":
	default:
		return "", "", false, false
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		// Package-level mutex variable: patternMu.Lock().
		if w.env.mutexes[x.Name] {
			return x.Name, "", isAcquire, true
		}
	case *ast.SelectorExpr:
		owner := w.env.resolveValueExpr(x.X, w.vars)
		if owner.name == "" {
			return "", "", false, false
		}
		c := owner.name + "." + x.Sel.Name
		if !w.env.mutexes[c] {
			return "", "", false, false
		}
		if id, isID := x.X.(*ast.Ident); isID {
			locker = id.Name
		}
		return c, locker, isAcquire, true
	}
	return "", "", false, false
}

// expr applies lock effects and records call facts within one
// expression.
func (w *lockOrderWalk) expr(e ast.Expr, held map[string]string) {
	switch e := e.(type) {
	case *ast.CallExpr:
		if class, locker, isAcquire, ok := w.lockCall(e); ok {
			if isAcquire {
				w.acquire(class, locker, e.Pos(), held)
			} else {
				delete(held, class)
			}
			return
		}
		if _, _, callee, ok := w.env.callResults(e, w.vars); ok && callee != "" {
			w.summary.calls[callee] = true
			if len(held) > 0 {
				w.heldCalls = append(w.heldCalls, heldCallRec{
					callee: callee, held: w.heldKeys(held), pos: e.Pos(),
				})
			}
		}
		w.expr(e.Fun, held)
		for _, arg := range e.Args {
			w.expr(arg, held)
		}
	case *ast.FuncLit:
		w.block(e.Body.List, copyLockers(held))
	case *ast.Ident, *ast.BasicLit:
	default:
		ast.Inspect(e, func(n ast.Node) bool {
			if n == e {
				return true
			}
			if sub, ok := n.(ast.Expr); ok {
				w.expr(sub, held)
				return false
			}
			return true
		})
	}
}

// acquire records a Lock/RLock of class through locker while held.
func (w *lockOrderWalk) acquire(class, locker string, pos token.Pos, held map[string]string) {
	if _, seen := w.summary.acquires[class]; !seen {
		w.summary.acquires[class] = pos
	}
	for h, hLocker := range held {
		if h != class {
			w.acqEdges = append(w.acqEdges, acqEdgeRec{held: h, acquired: class, pos: pos})
			continue
		}
		// Same class twice: fine only through the ordered-pair idiom.
		if locker != "" && hLocker != "" && locker != hLocker && w.orderedPairs[pairKey(locker, hLocker)] {
			continue
		}
		p := w.fset.Position(pos)
		w.diags = append(w.diags, Diag{
			File: p.Filename, Line: p.Line, Col: p.Column, Rule: "lockorder",
			Msg: fmt.Sprintf("%s acquired in %s while another %s is already held (no ordered-pair idiom: lock both through a conditionally swapped lo/hi pair)",
				class, w.funcName, class),
		})
	}
	if _, already := held[class]; !already {
		held[class] = locker
	}
}
