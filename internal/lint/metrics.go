package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics-name registry analysis. Every obs counter/gauge/histogram
// name constructed in Go must appear in the documented metrics
// registry, and every documented name must be constructed somewhere —
// the observability surface cannot silently drift in either direction.
//
// Code side: string arguments to .Counter(...) / .Gauge(...) /
// .Histogram(...) calls. Besides plain literals the collector resolves
// package-level string constants (fault's CtrJitter et al), one level
// of wrapper function (a function that forwards a string parameter
// into a metric accessor names metrics at its call sites, like
// fault.Conn.inject), and "prefix." + expr concatenations, which
// normalize to the pattern "prefix.*".
//
// Doc side: fenced code blocks tagged "metrics-registry" in Markdown
// files (docs/observability.md holds the canonical one). Each
// non-comment line's first field is a metric name; <placeholder>
// segments normalize to "*", so "requests.<OpName>" matches the
// code-side pattern "requests.*" and "lockwait.<subsystem>" matches
// every literal lockwait name.
//
// Like the opcode analyzer this is a cross-target facts accumulator:
// names are collected per package and per document, and the two sides
// are compared only once both have been seen, so partial runs (Go
// files only, or docs only) stay silent.

type metricSite struct {
	file string
	line int
	col  int
}

// MetricsFacts accumulates metric names across packages and documents.
type MetricsFacts struct {
	codeSeen bool
	docSeen  bool
	code     map[string]metricSite // name or "prefix.*" pattern -> first site
	doc      map[string]metricSite // normalized doc name -> site
	extra    []Diag                // site-local problems (dynamic names)
}

// NewMetricsFacts returns empty accumulation state.
func NewMetricsFacts() *MetricsFacts {
	return &MetricsFacts{
		code: make(map[string]metricSite),
		doc:  make(map[string]metricSite),
	}
}

// Merge folds another accumulator (e.g. a parallel worker's) into m.
func (m *MetricsFacts) Merge(other *MetricsFacts) {
	m.codeSeen = m.codeSeen || other.codeSeen
	m.docSeen = m.docSeen || other.docSeen
	for name, site := range other.code {
		if cur, ok := m.code[name]; !ok || earlierSite(site, cur) {
			m.code[name] = site
		}
	}
	for name, site := range other.doc {
		if cur, ok := m.doc[name]; !ok || earlierSite(site, cur) {
			m.doc[name] = site
		}
	}
	m.extra = append(m.extra, other.extra...)
}

func earlierSite(a, b metricSite) bool {
	if a.file != b.file {
		return a.file < b.file
	}
	if a.line != b.line {
		return a.line < b.line
	}
	return a.col < b.col
}

var metricAccessors = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// CollectPackage gathers metric names from one package's files.
func (m *MetricsFacts) CollectPackage(fset *token.FileSet, files []*ast.File) {
	consts := packageStringConsts(files)
	wrappers := metricWrappers(files)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := paramNames(fd.Type)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				var arg ast.Expr
				switch {
				case metricAccessors[sel.Sel.Name] && len(call.Args) == 1:
					arg = call.Args[0]
				default:
					idx, isWrapper := wrappers[sel.Sel.Name]
					if !isWrapper || idx >= len(call.Args) {
						return true
					}
					arg = call.Args[idx]
				}
				m.recordCodeName(fset, arg, consts, params)
				return true
			})
		}
	}
	m.codeSeen = true
}

func (m *MetricsFacts) recordCodeName(fset *token.FileSet, arg ast.Expr, consts map[string]string, params map[string]bool) {
	p := fset.Position(arg.Pos())
	site := metricSite{file: p.Filename, line: p.Line, col: p.Column}
	add := func(name string) {
		if cur, ok := m.code[name]; !ok || earlierSite(site, cur) {
			m.code[name] = site
		}
	}
	switch v := arg.(type) {
	case *ast.BasicLit:
		if v.Kind == token.STRING {
			if s, err := strconv.Unquote(v.Value); err == nil {
				add(s)
				return
			}
		}
	case *ast.Ident:
		if s, ok := consts[v.Name]; ok {
			add(s)
			return
		}
		if params[v.Name] {
			// The enclosing function is a name-forwarding wrapper; its
			// call sites supply the names.
			return
		}
	case *ast.BinaryExpr:
		// "prefix." + dynamic normalizes to the pattern "prefix.*".
		if v.Op == token.ADD {
			if lit, ok := v.X.(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if s, err := strconv.Unquote(lit.Value); err == nil && s != "" {
					add(s + "*")
					return
				}
			}
		}
	}
	m.extra = append(m.extra, Diag{
		File: p.Filename, Line: p.Line, Col: p.Column, Rule: "metrics",
		Msg: "metric name is dynamic (not a string literal, package const, wrapper parameter, or \"prefix.\"+expr) and cannot be checked against the registry",
	})
}

// packageStringConsts collects top-level string constants.
func packageStringConsts(files []*ast.File) map[string]string {
	consts := make(map[string]string)
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						break
					}
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					if s, err := strconv.Unquote(lit.Value); err == nil {
						consts[name.Name] = s
					}
				}
			}
		}
	}
	return consts
}

// metricWrappers finds functions that forward a string parameter into
// a metric accessor, mapping wrapper name to the forwarded parameter's
// index. One level only: wrappers of wrappers are not resolved.
func metricWrappers(files []*ast.File) map[string]int {
	wrappers := make(map[string]int)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			idx := paramIndexes(fd.Type)
			if len(idx) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !metricAccessors[sel.Sel.Name] || len(call.Args) != 1 {
					return true
				}
				if id, ok := call.Args[0].(*ast.Ident); ok {
					if i, isParam := idx[id.Name]; isParam {
						wrappers[fd.Name.Name] = i
					}
				}
				return true
			})
		}
	}
	return wrappers
}

func paramIndexes(ft *ast.FuncType) map[string]int {
	idx := make(map[string]int)
	if ft.Params == nil {
		return idx
	}
	i := 0
	for _, p := range ft.Params.List {
		for _, n := range p.Names {
			idx[n.Name] = i
			i++
		}
		if len(p.Names) == 0 {
			i++
		}
	}
	return idx
}

func paramNames(ft *ast.FuncType) map[string]bool {
	names := make(map[string]bool)
	for n := range paramIndexes(ft) {
		names[n] = true
	}
	return names
}

var (
	fenceRe       = regexp.MustCompile("^```+")
	placeholderRe = regexp.MustCompile(`<[^<>]*>`)
)

// CollectDoc gathers metric names from "metrics-registry" fenced
// blocks in one Markdown document.
func (m *MetricsFacts) CollectDoc(path string, src string) {
	inBlock := false
	for i, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if fence := fenceRe.FindString(trimmed); fence != "" {
			if inBlock {
				inBlock = false
				continue
			}
			info := strings.TrimSpace(strings.TrimPrefix(trimmed, fence))
			if info == "metrics-registry" {
				inBlock = true
				m.docSeen = true
			}
			continue
		}
		if !inBlock || trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		name := strings.Fields(trimmed)[0]
		name = placeholderRe.ReplaceAllString(name, "*")
		site := metricSite{file: path, line: i + 1, col: 1}
		if cur, ok := m.doc[name]; !ok || earlierSite(site, cur) {
			m.doc[name] = site
		}
	}
}

// nameMatches reports whether a code-side name and a doc-side entry
// refer to the same metric. Doc entries may contain "*" wildcards
// (from <placeholder> segments); a code-side pattern ("prefix.*")
// must match the doc entry exactly.
func nameMatches(code, doc string) bool {
	if code == doc {
		return true
	}
	if strings.Contains(code, "*") {
		return false
	}
	if strings.Contains(doc, "*") {
		ok, err := path.Match(doc, code)
		return err == nil && ok
	}
	return false
}

// Diags compares the two sides. Evaluation is gated on having seen
// both Go code and a registry document, so partial runs stay silent.
func (m *MetricsFacts) Diags() []Diag {
	diags := append([]Diag(nil), m.extra...)
	if !m.codeSeen || !m.docSeen {
		return diags
	}
	codeNames := sortedKeys(m.code)
	docNames := sortedKeys(m.doc)
	for _, cn := range codeNames {
		matched := false
		for _, dn := range docNames {
			if nameMatches(cn, dn) {
				matched = true
				break
			}
		}
		if !matched {
			site := m.code[cn]
			diags = append(diags, Diag{
				File: site.file, Line: site.line, Col: site.col, Rule: "metrics",
				Msg: fmt.Sprintf("metric %q is not documented in the metrics registry (add it to the metrics-registry block in docs/observability.md)", cn),
			})
		}
	}
	for _, dn := range docNames {
		matched := false
		for _, cn := range codeNames {
			if nameMatches(cn, dn) {
				matched = true
				break
			}
		}
		if !matched {
			site := m.doc[dn]
			diags = append(diags, Diag{
				File: site.file, Line: site.line, Col: site.col, Rule: "metrics",
				Msg: fmt.Sprintf("documented metric %q is not constructed anywhere in the scanned Go code (stale registry entry?)", dn),
			})
		}
	}
	return diags
}

func sortedKeys(m map[string]metricSite) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
