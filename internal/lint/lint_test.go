package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// checkFixture runs a fresh Runner over one target and returns the
// formatted diagnostics.
func checkFixture(t *testing.T, target string) []string {
	t.Helper()
	r := NewRunner()
	if err := r.Check(target); err != nil {
		t.Fatalf("Check(%q): %v", target, err)
	}
	var got []string
	for _, d := range r.Finish() {
		got = append(got, d.String())
	}
	return got
}

func assertDiags(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag %d:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
}

// TestFixtureScripts checks every seeded-bad .tcl fixture against its
// exact diagnostics — positions included.
func TestFixtureScripts(t *testing.T) {
	cases := []struct {
		file string
		want []string
	}{
		{"unknown.tcl", []string{
			`testdata/unknown.tcl:3:1: unknown command "frobnicate" [unknown-command]`,
		}},
		{"arity.tcl", []string{
			`testdata/arity.tcl:2:1: wrong # args for "set": got 0, want 1 to 2 [arity]`,
			`testdata/arity.tcl:3:1: wrong # args for "wm": got 1, want 2 to 3 [arity]`,
			`testdata/arity.tcl:4:1: wrong # args for "winfo" containing: got 1, want 2 [arity]`,
		}},
		{"brace.tcl", []string{
			`testdata/brace.tcl:2:19: missing close-brace [parse]`,
		}},
		{"deferred.tcl", []string{
			`testdata/deferred.tcl:4:18: unknown command "hilight" [unknown-command]`,
		}},
		{"expr.tcl", []string{
			`testdata/expr.tcl:3:10: expression syntax error: missing operand [expr]`,
			`testdata/expr.tcl:6:18: expression syntax error: unexpected character "*" [expr]`,
		}},
		{"path.tcl", []string{
			`testdata/path.tcl:2:8: bad window path name ".a..b" [path]`,
			`testdata/path.tcl:3:9: bad window path name ".x." [path]`,
		}},
		{"good.tcl", nil},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			assertDiags(t, checkFixture(t, filepath.Join("testdata", tc.file)), tc.want)
		})
	}
}

// TestLocksFixture exercises the lock-discipline analyzer: only the
// methods that skip (or hold the wrong one of several) locks are
// flagged; lock-held, defer-unlock, RWMutex read-side and "mu held"
// documented methods are not — including on a generic receiver, whose
// type name the analyzer must unwrap from shard[V].
func TestLocksFixture(t *testing.T) {
	assertDiags(t, checkFixture(t, filepath.Join("testdata", "locks")), []string{
		`testdata/locks/locks.go:23:11: counter.count (guarded by mu) accessed without holding mu [locks]`,
		`testdata/locks/multi.go:36:4: registry.state (guarded by stateMu) accessed without holding stateMu [locks]`,
		`testdata/locks/multi.go:50:11: registry.tab (guarded by tabMu) accessed without holding tabMu [locks]`,
		`testdata/locks/multi.go:75:14: shard.m (guarded by mu) accessed without holding mu [locks]`,
	})
}

// TestOpcodesFixture exercises opcode completeness: OpOrphan is missing
// from the factory, the dispatch switch and the opNames table, while
// OpPing/OpEcho are covered everywhere.
func TestOpcodesFixture(t *testing.T) {
	assertDiags(t, checkFixture(t, filepath.Join("testdata", "opcodes")), []string{
		`testdata/opcodes/opcodes.go:9:2: opcode OpOrphan has no case in the NewRequest factory [opcodes]`,
		`testdata/opcodes/opcodes.go:9:2: opcode OpOrphan has no *OrphanReq dispatch arm in any request type switch [opcodes]`,
		`testdata/opcodes/opcodes.go:9:2: opcode OpOrphan has no entry in the opNames table (OpName would fall back to a number) [opcodes]`,
	})
}

// TestSuppression checks the tkcheck:ignore escape hatch: a rule list
// suppresses only those rules for the next command, and a bare ignore
// suppresses everything.
func TestSuppression(t *testing.T) {
	reg := NewRegistry()
	src := "# tkcheck:ignore unknown-command\nmystery1\n# tkcheck:ignore\nmystery2 {\nmystery3\n"
	got := LintScriptSource("s.tcl", src, reg)
	if len(got) != 1 || got[0].Rule != "parse" {
		t.Fatalf("diags = %v, want only the unsuppressed parse error", got)
	}
	// The ignore applies to the next command only.
	got = LintScriptSource("s.tcl", "# tkcheck:ignore\nmystery1\nmystery2\n", reg)
	if len(got) != 1 || got[0].Line != 3 {
		t.Fatalf("diags = %v, want only line 3 flagged", got)
	}
}

// TestGoScriptExtraction lints scripts embedded in Go sources: direct
// raw literals keep exact positions, identifier references to string
// constants are followed, and os.WriteFile script payloads are linted.
func TestGoScriptExtraction(t *testing.T) {
	dir := t.TempDir()
	src := `package p

const boot = ` + "`" + `set x 1
badcmd1 $x
` + "`" + `

func run(app interface{ MustEval(string) string }) {
	app.MustEval(boot)
	app.MustEval(` + "`badcmd2`" + `)
	os.WriteFile("x.tcl", []byte(` + "`badcmd3`" + `), 0o644)
	app.MustEval("badcmd4")
}
`
	path := filepath.Join(dir, "p.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	got := checkFixture(t, path)
	want := []string{
		path + `:4:1: unknown command "badcmd1" [unknown-command]`,
		path + `:9:16: unknown command "badcmd2" [unknown-command]`,
		path + `:10:32: unknown command "badcmd3" [unknown-command]`,
		path + `:11:15: unknown command "badcmd4" [unknown-command]`,
	}
	assertDiags(t, got, want)
}

// TestProcSharingAcrossScripts: a proc defined in one Eval literal is
// known to every other script in the same file (the jukebox pattern).
func TestProcSharingAcrossScripts(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n\nfunc run(app interface{ MustEval(string) string }) {\n" +
		"\tapp.MustEval(`proc play {} {bell}`)\n" +
		"\tapp.MustEval(`play`)\n" +
		"}\n"
	path := filepath.Join(dir, "p.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	assertDiags(t, checkFixture(t, path), nil)
}

// TestPkgdocFixture exercises the package-doc analyzer: the undocumented
// internal package is flagged at its package clause, the documented one
// is not, and packages outside an internal/ tree are exempt.
func TestPkgdocFixture(t *testing.T) {
	assertDiags(t, checkFixture(t, filepath.Join("testdata", "pkgdoc")+string(filepath.Separator)+"..."), []string{
		`testdata/pkgdoc/internal/nodoc/nodoc.go:1:1: package nodoc has no package doc comment (want a "Package ..." comment on one file's package clause) [pkgdoc]`,
	})
}
