package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// checkFixture runs a fresh Runner over one target and returns the
// formatted diagnostics.
func checkFixture(t *testing.T, target string) []string {
	t.Helper()
	r := NewRunner()
	if err := r.Check(target); err != nil {
		t.Fatalf("Check(%q): %v", target, err)
	}
	var got []string
	for _, d := range r.Finish() {
		got = append(got, d.String())
	}
	return got
}

func assertDiags(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag %d:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
}

// TestFixtureScripts checks every seeded-bad .tcl fixture against its
// exact diagnostics — positions included.
func TestFixtureScripts(t *testing.T) {
	cases := []struct {
		file string
		want []string
	}{
		{"unknown.tcl", []string{
			`testdata/unknown.tcl:3:1: unknown command "frobnicate" [unknown-command]`,
		}},
		{"arity.tcl", []string{
			`testdata/arity.tcl:2:1: wrong # args for "set": got 0, want 1 to 2 [arity]`,
			`testdata/arity.tcl:3:1: wrong # args for "wm": got 1, want 2 to 3 [arity]`,
			`testdata/arity.tcl:4:1: wrong # args for "winfo" containing: got 1, want 2 [arity]`,
		}},
		{"brace.tcl", []string{
			`testdata/brace.tcl:2:19: missing close-brace [parse]`,
		}},
		{"deferred.tcl", []string{
			`testdata/deferred.tcl:4:18: unknown command "hilight" [unknown-command]`,
		}},
		{"expr.tcl", []string{
			`testdata/expr.tcl:3:10: expression syntax error: missing operand [expr]`,
			`testdata/expr.tcl:6:18: expression syntax error: unexpected character "*" [expr]`,
		}},
		{"path.tcl", []string{
			`testdata/path.tcl:2:8: bad window path name ".a..b" [path]`,
			`testdata/path.tcl:3:9: bad window path name ".x." [path]`,
		}},
		{"good.tcl", nil},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			assertDiags(t, checkFixture(t, filepath.Join("testdata", tc.file)), tc.want)
		})
	}
}

// TestLocksFixture exercises the lock-discipline analyzer: only the
// methods that skip (or hold the wrong one of several) locks are
// flagged; lock-held, defer-unlock, RWMutex read-side and "mu held"
// documented methods are not — including on a generic receiver, whose
// type name the analyzer must unwrap from shard[V].
func TestLocksFixture(t *testing.T) {
	assertDiags(t, checkFixture(t, filepath.Join("testdata", "locks")), []string{
		`testdata/locks/deferargs.go:29:32: deferbox.n (guarded by mu) accessed without holding mu [locks]`,
		`testdata/locks/locks.go:23:11: counter.count (guarded by mu) accessed without holding mu [locks]`,
		`testdata/locks/multi.go:36:4: registry.state (guarded by stateMu) accessed without holding stateMu [locks]`,
		`testdata/locks/multi.go:50:11: registry.tab (guarded by tabMu) accessed without holding tabMu [locks]`,
		`testdata/locks/multi.go:75:14: shard.m (guarded by mu) accessed without holding mu [locks]`,
	})
}

// TestOpcodesFixture exercises opcode completeness: OpOrphan is missing
// from the factory, the dispatch switch and the opNames table, while
// OpPing/OpEcho are covered everywhere.
func TestOpcodesFixture(t *testing.T) {
	assertDiags(t, checkFixture(t, filepath.Join("testdata", "opcodes")), []string{
		`testdata/opcodes/opcodes.go:9:2: opcode OpOrphan has no *OrphanReq dispatch arm in any request type switch [opcodes]`,
		`testdata/opcodes/opcodes.go:9:2: opcode OpOrphan has no case in the NewRequest factory [opcodes]`,
		`testdata/opcodes/opcodes.go:9:2: opcode OpOrphan has no entry in the opNames table (OpName would fall back to a number) [opcodes]`,
	})
}

// TestSuppression checks the tkcheck:ignore escape hatch: a rule list
// suppresses only those rules for the next command, and a bare ignore
// suppresses everything.
func TestSuppression(t *testing.T) {
	reg := NewRegistry()
	src := "# tkcheck:ignore unknown-command\nmystery1\n# tkcheck:ignore\nmystery2 {\nmystery3\n"
	got := LintScriptSource("s.tcl", src, reg)
	if len(got) != 1 || got[0].Rule != "parse" {
		t.Fatalf("diags = %v, want only the unsuppressed parse error", got)
	}
	// The ignore applies to the next command only.
	got = LintScriptSource("s.tcl", "# tkcheck:ignore\nmystery1\nmystery2\n", reg)
	if len(got) != 1 || got[0].Line != 3 {
		t.Fatalf("diags = %v, want only line 3 flagged", got)
	}
}

// TestGoScriptExtraction lints scripts embedded in Go sources: direct
// raw literals keep exact positions, identifier references to string
// constants are followed, and os.WriteFile script payloads are linted.
func TestGoScriptExtraction(t *testing.T) {
	dir := t.TempDir()
	src := `package p

const boot = ` + "`" + `set x 1
badcmd1 $x
` + "`" + `

func run(app interface{ MustEval(string) string }) {
	app.MustEval(boot)
	app.MustEval(` + "`badcmd2`" + `)
	os.WriteFile("x.tcl", []byte(` + "`badcmd3`" + `), 0o644)
	app.MustEval("badcmd4")
}
`
	path := filepath.Join(dir, "p.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	got := checkFixture(t, path)
	want := []string{
		path + `:4:1: unknown command "badcmd1" [unknown-command]`,
		path + `:9:16: unknown command "badcmd2" [unknown-command]`,
		path + `:10:32: unknown command "badcmd3" [unknown-command]`,
		path + `:11:15: unknown command "badcmd4" [unknown-command]`,
	}
	assertDiags(t, got, want)
}

// TestProcSharingAcrossScripts: a proc defined in one Eval literal is
// known to every other script in the same file (the jukebox pattern).
func TestProcSharingAcrossScripts(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n\nfunc run(app interface{ MustEval(string) string }) {\n" +
		"\tapp.MustEval(`proc play {} {bell}`)\n" +
		"\tapp.MustEval(`play`)\n" +
		"}\n"
	path := filepath.Join(dir, "p.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	assertDiags(t, checkFixture(t, path), nil)
}

// TestLockOrderFixture exercises the whole-program lock-order
// analyzer: the declared chain on box is enforced edge by edge
// (direct, through a leaf group, across independent chains, and one
// call level deep), cycles are reported whether or not the mutexes are
// declared, and same-class nesting is allowed only through the
// conditionally swapped pair idiom.
func TestLockOrderFixture(t *testing.T) {
	assertDiags(t, checkFixture(t, filepath.Join("testdata", "lockorder")), []string{
		`testdata/lockorder/lockorder.go:43:2: box.first acquired while box.second is held, contradicting the declared lock order (box.first is ordered before box.second) [lockorder]`,
		`testdata/lockorder/lockorder.go:43:2: lock-order cycle: box.first -> box.second -> box.first [lockorder]`,
		`testdata/lockorder/lockorder.go:51:2: box.leafB acquired while box.leafA is held, but both are members of the same lock-order leaf group (group members must not nest) [lockorder]`,
		`testdata/lockorder/lockorder.go:59:2: box.solo acquired while box.first is held, but the lock-order declaration puts them on independent chains (they must never be held together) [lockorder]`,
		`testdata/lockorder/lockorder.go:74:2: box.leafA acquired while box.leafB is held (via call to box.lockLeafA), but both are members of the same lock-order leaf group (group members must not nest) [lockorder]`,
		`testdata/lockorder/lockorder.go:74:2: lock-order cycle: box.leafA -> box.leafB -> box.leafA (via call to box.lockLeafA) [lockorder]`,
		`testdata/lockorder/lockorder.go:93:2: cell.mu acquired in unorderedPair while another cell.mu is already held (no ordered-pair idiom: lock both through a conditionally swapped lo/hi pair) [lockorder]`,
	})
}

// TestLockCycleFromReorderedAcquisitions is the reorder acceptance
// check: two functions taking the same two mutexes in opposite orders
// — no declaration anywhere — must produce a cycle diagnostic naming
// both.
func TestLockCycleFromReorderedAcquisitions(t *testing.T) {
	src := `package p

import "sync"

type s struct{ a, b sync.Mutex }

func (x *s) f() { x.a.Lock(); x.b.Lock(); x.b.Unlock(); x.a.Unlock() }
func (x *s) g() { x.b.Lock(); x.a.Lock(); x.a.Unlock(); x.b.Unlock() }
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "reorder.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags := CheckLockOrder(fset, []*ast.File{f})
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want exactly the cycle", diags)
	}
	want := "lock-order cycle: s.a -> s.b -> s.a"
	if diags[0].Msg != want {
		t.Fatalf("msg = %q, want %q", diags[0].Msg, want)
	}
}

// TestPoolFixture exercises the pool-lifetime analyzer: leaks on early
// return and panic, use-after-release, double release, and the three
// escape routes are flagged; the linear, deferred (plain and
// closure-wrapped), channel-handoff, enqueue-handoff and accessor
// idioms are not — and a handoff to a non-enqueue-named function does
// NOT transfer ownership, so that checkout still leaks.
func TestPoolFixture(t *testing.T) {
	assertDiags(t, checkFixture(t, filepath.Join("testdata", "pool")), []string{
		`testdata/pool/pool.go:72:3: AcquireWriter result "w" (acquired at line 70) is not released on this return path (missing defer?) [pool]`,
		`testdata/pool/pool.go:81:2: AcquireWriter result "w" (acquired at line 79) is not released on this return path (missing defer?) [pool]`,
		`testdata/pool/pool.go:88:2: use of pooled value "w" after it was released to the pool [pool]`,
		`testdata/pool/pool.go:95:2: pooled value "w" released twice [pool]`,
		`testdata/pool/pool.go:101:2: pooled Writer "w" escapes through a channel send (pair it with ReleaseWriter in this function instead) [pool]`,
		`testdata/pool/pool.go:107:9: pooled value "w" escapes via return (the pool can reclaim it while the caller still uses it) [pool]`,
		`testdata/pool/pool.go:113:2: pooled value "w" escapes via store into a struct or container (the pool can reclaim it out from under the holder) [pool]`,
		`testdata/pool/pool.go:139:2: pool checkout "bp" (acquired at line 137) is not released on this return path (missing defer?) [pool]`,
	})
}

// TestMetricsRegistryFixture exercises the metrics-name registry: the
// documented literal, const, wrapper and "prefix."+expr names all
// match, the undocumented counter and the stale registry entry are
// flagged from their respective sides, and a truly dynamic name is
// reported as uncheckable.
func TestMetricsRegistryFixture(t *testing.T) {
	assertDiags(t, checkFixture(t, filepath.Join("testdata", "metricsreg")), []string{
		`testdata/metricsreg/metrics.go:32:12: metric "undocumented.count" is not documented in the metrics registry (add it to the metrics-registry block in docs/observability.md) [metrics]`,
		`testdata/metricsreg/metrics.go:36:12: metric name is dynamic (not a string literal, package const, wrapper parameter, or "prefix."+expr) and cannot be checked against the registry [metrics]`,
		`testdata/metricsreg/registry.md:12:1: documented metric "ghost.metric" is not constructed anywhere in the scanned Go code (stale registry entry?) [metrics]`,
	})
}

// TestDeterministicParallelOrder runs the same multi-target check
// serially and with a saturated worker pool: the diagnostics must come
// back identical, byte for byte, regardless of scheduling.
func TestDeterministicParallelOrder(t *testing.T) {
	targets := []string{
		filepath.Join("testdata", "locks"),
		filepath.Join("testdata", "lockorder"),
		filepath.Join("testdata", "pool"),
		filepath.Join("testdata", "metricsreg"),
		filepath.Join("testdata", "opcodes"),
		filepath.Join("testdata", "arity.tcl"),
		filepath.Join("testdata", "unknown.tcl"),
	}
	run := func(jobs int) []string {
		r := NewRunner()
		r.Jobs = jobs
		for _, tgt := range targets {
			if err := r.Check(tgt); err != nil {
				t.Fatal(err)
			}
		}
		var got []string
		for _, d := range r.Finish() {
			got = append(got, d.String())
		}
		if errs := r.Errs(); len(errs) > 0 {
			t.Fatalf("unexpected errors: %v", errs)
		}
		return got
	}
	serial := run(1)
	if len(serial) == 0 {
		t.Fatal("fixtures produced no diagnostics; the comparison is vacuous")
	}
	for i := 0; i < 10; i++ {
		parallel := run(8)
		assertDiags(t, parallel, serial)
	}
}

// TestPkgdocFixture exercises the package-doc analyzer: the undocumented
// internal package is flagged at its package clause, the documented one
// is not, and packages outside an internal/ tree are exempt.
func TestPkgdocFixture(t *testing.T) {
	assertDiags(t, checkFixture(t, filepath.Join("testdata", "pkgdoc")+string(filepath.Separator)+"..."), []string{
		`testdata/pkgdoc/internal/nodoc/nodoc.go:1:1: package nodoc has no package doc comment (want a "Package ..." comment on one file's package clause) [pkgdoc]`,
	})
}
