package lint

import (
	"fmt"
	"strconv"
	"strings"
)

// lintMode selects how much of a script can be checked.
type lintMode int

const (
	// modeScript lints a complete script: structure, command names,
	// arities, nested scripts.
	modeScript lintMode = iota
	// modePrefix lints a command prefix: the caller appends arguments
	// at run time (scrollbar -command, scale -command), so only
	// structure and the leading command word are checked.
	modePrefix
)

// linter lints one unit: a .tcl file or one script literal extracted
// from a Go file. src is the unit's entire source; all offsets index
// into it, and posFn (when non-nil) maps offsets to positions in the
// enclosing file.
type linter struct {
	file  string
	src   string
	reg   *Registry
	posFn func(off int) (line, col int)
	// procs collects procedure and renamed-command names defined
	// anywhere in the unit (including in deferred scripts), so a bind
	// body may call a proc defined later at top level.
	procs map[string]bool
	// suppress maps active "# tkcheck:ignore" rules to the command
	// range they cover.
	suppressed []suppression
	diags      []Diag
}

type suppression struct {
	rules      []string
	start, end int
}

func newLinter(file, src string, reg *Registry, posFn func(int) (int, int)) *linter {
	return &linter{file: file, src: src, reg: reg, posFn: posFn, procs: make(map[string]bool)}
}

func (l *linter) run() {
	l.collectDefs(0, len(l.src))
	l.lintRange(0, len(l.src), modeScript)
}

func (l *linter) diagAt(off int, rule, msg string) {
	for _, s := range l.suppressed {
		if off >= s.start && off < s.end {
			for _, r := range s.rules {
				if r == "all" || r == rule {
					return
				}
			}
		}
	}
	var line, col int
	if l.posFn != nil {
		line, col = l.posFn(off)
	} else {
		line, col = lineCol(l.src, off)
	}
	l.diags = append(l.diags, Diag{File: l.file, Line: line, Col: col, Rule: rule, Msg: msg})
}

// collectDefs pre-scans a range for proc definitions and renames so
// forward references from deferred scripts resolve. It recurses into
// every braced word and command substitution; a proc defined inside a
// bind body or an if arm still counts.
func (l *linter) collectDefs(start, end int) {
	sc := &scanner{l: &linter{file: l.file, src: l.src, reg: l.reg, procs: l.procs}, pos: start, end: end}
	for {
		c, ok := sc.next()
		if !ok {
			break
		}
		if len(c.words) >= 2 && c.words[0].literal {
			switch c.words[0].val {
			case "proc":
				if c.words[1].literal {
					l.procs[c.words[1].val] = true
				}
			case "rename":
				if len(c.words) >= 3 && c.words[2].literal && c.words[2].val != "" {
					l.procs[c.words[2].val] = true
				}
			}
		}
		for _, w := range c.words {
			if w.braced && w.end > w.off {
				l.collectDefs(w.off, w.end)
			}
			for _, r := range w.brackets {
				l.collectDefs(r[0], r[1])
			}
		}
	}
}

// lintRange lints src[start:end) as a script.
func (l *linter) lintRange(start, end int, mode lintMode) {
	sc := &scanner{l: l, pos: start, end: end}
	for {
		c, ok := sc.next()
		if !ok {
			break
		}
		if c.suppress != nil {
			l.suppressed = append(l.suppressed, suppression{rules: c.suppress, start: c.off, end: sc.pos})
		}
		l.lintCommand(c, mode)
	}
}

func (l *linter) lintCommand(c cmdNode, mode lintMode) {
	// Command substitutions run regardless of which word they sit in:
	// lint every embedded [script].
	for _, w := range c.words {
		for _, r := range w.brackets {
			l.lintRange(r[0], r[1], modeScript)
		}
	}
	if len(c.words) == 0 {
		return
	}
	name := c.words[0]
	if !name.literal || name.val == "" {
		return // dynamically-named command; nothing to check
	}
	if strings.HasPrefix(name.val, ".") {
		l.lintPathCommand(c, mode)
		return
	}
	if !l.reg.Known(name.val) && !l.procs[name.val] {
		l.diagAt(name.off, "unknown-command", fmt.Sprintf("unknown command %q", name.val))
		return
	}
	if mode == modePrefix {
		return // arguments will be appended at run time
	}
	sp := l.reg.specs[name.val]
	if sp == nil {
		return // known (e.g. a proc) but no spec: nothing more to check
	}
	nargs := len(c.words) - 1
	if nargs < sp.min || (sp.max >= 0 && nargs > sp.max) {
		l.diagAt(name.off, "arity",
			fmt.Sprintf("wrong # args for %q: got %d, want %s", name.val, nargs, arityRange(sp)))
		return
	}
	if sp.subs != nil && nargs >= 1 && c.words[1].literal {
		sub := c.words[1].val
		subSpec, ok := sp.subs[sub]
		if !ok {
			if !sp.subsOpen {
				l.diagAt(c.words[1].off, "arity",
					fmt.Sprintf("bad option %q to %q: should be %s", sub, name.val, subNames(sp)))
			}
		} else {
			subArgs := nargs - 1
			if subArgs < subSpec.min || (subSpec.max >= 0 && subArgs > subSpec.max) {
				l.diagAt(name.off, "arity",
					fmt.Sprintf("wrong # args for %q %s: got %d, want %s", name.val, sub, subArgs, arityRange(subSpec)))
			}
		}
	}
	for _, i := range sp.scriptArgs {
		if i < len(c.words) {
			l.lintDeferred(c.words[i], modeScript)
		}
	}
	for _, i := range sp.prefixArgs {
		if i < len(c.words) {
			l.lintDeferred(c.words[i], modePrefix)
		}
	}
	for _, i := range sp.exprArgs {
		if i < len(c.words) {
			l.lintExprWord(c.words[i])
		}
	}
	for _, i := range sp.pathArgs {
		if i < 0 { // every argument is a path (destroy)
			for _, w := range c.words[1:] {
				l.checkPathWord(w)
			}
		} else if i < len(c.words) {
			l.checkPathWord(c.words[i])
		}
	}
	if sp.check != nil {
		sp.check(l, c)
	}
}

// lintPathCommand checks a command whose name is a widget path
// (".list insert end $i"): path syntax, a subcommand argument, and any
// literal -command option values.
func (l *linter) lintPathCommand(c cmdNode, mode lintMode) {
	name := c.words[0]
	l.checkPathWord(name)
	if mode == modePrefix {
		return
	}
	if len(c.words) < 2 {
		l.diagAt(name.off, "arity",
			fmt.Sprintf(`wrong # args: should be "%s option ?arg ...?"`, name.val))
		return
	}
	// "configure" takes a single option to query it, or name/value
	// pairs to set; any other odd count is an error at run time.
	if c.words[1].literal && c.words[1].val == "configure" {
		if n := len(c.words) - 2; n > 1 && n%2 != 0 {
			l.diagAt(c.words[1].off, "options",
				fmt.Sprintf("configure options for %q must come in name/value pairs", name.val))
		}
	}
	l.lintCommandOptions(c, 2, false)
}

// lintCommandOptions scans words[from:] for literal "-command ..."
// pairs and lints the value as a deferred script (or prefix).
func (l *linter) lintCommandOptions(c cmdNode, from int, prefix bool) {
	for i := from; i < len(c.words)-1; i++ {
		if !c.words[i].literal {
			continue
		}
		opt := c.words[i].val
		if opt == "-command" {
			mode := modeScript
			if prefix {
				mode = modePrefix
			}
			l.lintDeferred(c.words[i+1], mode)
			i++
		} else if prefixOptions[opt] {
			l.lintDeferred(c.words[i+1], modePrefix)
			i++
		}
	}
}

// lintDeferred lints a word's contents as a deferred script. Braced
// words are verbatim scripts; literal quoted/bare words are too (their
// raw text re-scans identically). Dynamic words cannot be checked.
func (l *linter) lintDeferred(w word, mode lintMode) {
	if !w.literal || w.end <= w.off {
		return
	}
	l.lintRange(w.off, w.end, mode)
}

// lintExprWord syntax-checks a word used as an expression. Dynamic
// words are still checked structurally: $var and [cmd] are valid
// operands ("if $argc>0 ...").
func (l *linter) lintExprWord(w word) {
	if w.end <= w.off {
		return
	}
	l.checkExprRange(w.off, w.end)
}

// checkPathWord validates widget path-name syntax (".a.b"): paths start
// with "." and have no empty components.
func (l *linter) checkPathWord(w word) {
	if !w.literal {
		return
	}
	p := w.val
	if !strings.HasPrefix(p, ".") {
		return // not path-shaped; other values ("none") are legal in some positions
	}
	if p == "." {
		return
	}
	for _, comp := range strings.Split(p[1:], ".") {
		if comp == "" {
			l.diagAt(w.off, "path", fmt.Sprintf("bad window path name %q", p))
			return
		}
	}
}

func arityRange(sp *spec) string {
	if sp.max < 0 {
		return fmt.Sprintf("at least %d", sp.min)
	}
	if sp.min == sp.max {
		return strconv.Itoa(sp.min)
	}
	return fmt.Sprintf("%d to %d", sp.min, sp.max)
}

func subNames(sp *spec) string {
	names := make([]string, 0, len(sp.subs))
	for n := range sp.subs {
		names = append(names, n)
	}
	sortStrings(names)
	return strings.Join(names, ", ")
}

// checkIf walks the if/elseif/else structure: conditions are
// expressions, bodies are scripts, "then"/"else" noise words allowed.
func checkIf(l *linter, c cmdNode) {
	w := c.words
	i := 1
	for {
		if i >= len(w) {
			return
		}
		l.lintExprWord(w[i]) // condition
		i++
		if i < len(w) && w[i].literal && w[i].val == "then" {
			i++
		}
		if i >= len(w) {
			l.diagAt(c.off, "arity", `"if" is missing a body after its condition`)
			return
		}
		l.lintDeferred(w[i], modeScript) // then-body
		i++
		if i >= len(w) {
			return
		}
		if w[i].literal && w[i].val == "elseif" {
			i++
			continue
		}
		if w[i].literal && w[i].val == "else" {
			i++
		}
		if i >= len(w) {
			l.diagAt(c.off, "arity", `"if" is missing its else body`)
			return
		}
		l.lintDeferred(w[i], modeScript) // else-body
		if i != len(w)-1 {
			l.diagAt(w[i+1].off, "arity", `extra arguments after "if" else body`)
		}
		return
	}
}

// checkAfter handles after's three forms: "after ms", "after ms
// command...", "after cancel id", "after idle command...".
func checkAfter(l *linter, c cmdNode) {
	w := c.words
	if len(w) < 2 || !w[1].literal {
		return
	}
	switch w[1].val {
	case "cancel":
		if len(w) != 3 {
			l.diagAt(w[0].off, "arity", `wrong # args: should be "after cancel id"`)
		}
		return
	case "idle":
		if len(w) == 3 {
			l.lintDeferred(w[2], modeScript)
		}
		return
	}
	if _, err := strconv.Atoi(w[1].val); err != nil {
		l.diagAt(w[1].off, "arity", fmt.Sprintf("bad milliseconds value %q to after", w[1].val))
		return
	}
	if len(w) == 3 {
		l.lintDeferred(w[2], modeScript)
	}
}

// checkEval lints "eval {script}" when given a single literal argument;
// multi-argument eval concatenates at run time and cannot be checked.
func checkEval(l *linter, c cmdNode) {
	if len(c.words) == 2 {
		l.lintDeferred(c.words[1], modeScript)
	}
}

// checkExprCmd syntax-checks expr's arguments. A single argument is
// checked in place; multiple literal arguments are joined as expr
// itself joins them, with errors reported at the first argument.
func checkExprCmd(l *linter, c cmdNode) {
	if len(c.words) == 2 {
		l.lintExprWord(c.words[1])
		return
	}
	parts := make([]string, 0, len(c.words)-1)
	for _, w := range c.words[1:] {
		if !w.literal {
			return // dynamic pieces; skip
		}
		parts = append(parts, w.raw)
	}
	joined := strings.Join(parts, " ")
	sub := newLinter(l.file, joined, l.reg, func(int) (int, int) {
		if l.posFn != nil {
			return l.posFn(c.words[1].off)
		}
		return lineCol(l.src, c.words[1].off)
	})
	sub.procs = l.procs
	sub.checkExprRange(0, len(joined))
	l.diags = append(l.diags, sub.diags...)
}

// checkSend lints "send app {script}": a single literal script argument
// is linted fully; the multi-argument form joins at run time.
func checkSend(l *linter, c cmdNode) {
	if len(c.words) == 3 {
		l.lintDeferred(c.words[2], modeScript)
	}
}

// checkSelection lints "selection handle window command".
func checkSelection(l *linter, c cmdNode) {
	w := c.words
	if len(w) == 4 && w[1].literal && w[1].val == "handle" {
		l.checkPathWord(w[2])
		l.lintDeferred(w[3], modeScript)
	}
}

// checkWidgetCreate checks widget-creation commands: the new window's
// path name, name/value option pairing, and deferred -command values
// (a full script for buttons and menus, a prefix for scrollbars and
// scales, whose widgets append arguments).
func checkWidgetCreate(l *linter, c cmdNode) {
	w := c.words
	class := w[0].val
	if w[1].literal {
		if !strings.HasPrefix(w[1].val, ".") {
			l.diagAt(w[1].off, "path", fmt.Sprintf("bad window path name %q", w[1].val))
		} else {
			l.checkPathWord(w[1])
		}
	}
	if n := len(w) - 2; n%2 != 0 {
		l.diagAt(w[0].off, "options",
			fmt.Sprintf("%s options must come in name/value pairs", class))
	}
	l.lintCommandOptions(c, 2, prefixCommandClasses[class])
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
