// Package locks is a fixture for the lock-discipline analyzer: count is
// guarded by mu, and Bad reads it without holding the lock.
package locks

import "sync"

type counter struct {
	mu    sync.Mutex
	count int // guarded by mu
	name  string
}

// Good takes the lock around every access.
func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
	return c.count
}

// Bad reads a guarded field without holding mu.
func (c *counter) Bad() int {
	return c.count
}

// Held is documented as requiring the lock. Called with c.mu held.
func (c *counter) Held() int {
	return c.count
}

// Unguarded fields need no lock.
func (c *counter) Name() string {
	return c.name
}
