// Fixture for the harder lock-discipline shapes: a struct with several
// named mutexes guarding disjoint fields, RWMutex read-side paths, and
// a generic receiver (the analyzer must unwrap shard[V] to find the
// guarded fields).
package locks

import "sync"

// registry has two independently locked subsystems plus a read-mostly
// table behind an RWMutex.
type registry struct {
	mu      sync.Mutex
	entries int // guarded by mu

	stateMu sync.Mutex
	state   string // guarded by stateMu

	tabMu sync.RWMutex
	tab   map[string]int // guarded by tabMu
}

// GoodBoth locks each subsystem around its own field.
func (r *registry) GoodBoth() {
	r.mu.Lock()
	r.entries++
	r.mu.Unlock()
	r.stateMu.Lock()
	r.state = "ok"
	r.stateMu.Unlock()
}

// BadCrossed holds mu but touches the stateMu-guarded field.
func (r *registry) BadCrossed() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state = "oops"
}

// GoodRead holds the read lock across the table read.
func (r *registry) GoodRead(k string) int {
	r.tabMu.RLock()
	defer r.tabMu.RUnlock()
	return r.tab[k]
}

// BadRead reads the table with the wrong subsystem's lock held.
func (r *registry) BadRead(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tab[k]
}

// HeldBoth requires both locks on entry. Called with r.mu held and
// r.stateMu held.
func (r *registry) HeldBoth() {
	r.entries++
	r.state = "noted"
}

// shard is a generic map shard, the sharded-resource-table idiom.
type shard[V any] struct {
	mu sync.Mutex
	m  map[string]V // guarded by mu
}

// Good locks around the access.
func (sh *shard[V]) Good(k string, v V) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.m[k] = v
}

// Bad touches the guarded map lock-free.
func (sh *shard[V]) Bad(k string) (V, bool) {
	v, ok := sh.m[k]
	return v, ok
}
