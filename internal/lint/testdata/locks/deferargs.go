// Deferred-closure cases for the lock-discipline analyzer: a
// closure-wrapped deferred unlock keeps the body guarded, and a
// deferred call's arguments are evaluated at the defer statement
// itself, so reading a guarded field there needs the lock.
package locks

import "sync"

type deferbox struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// closureUnlock releases in a deferred closure: the reads below the
// defer still run with mu held, so none of them are flagged.
func (b *deferbox) closureUnlock() int {
	b.mu.Lock()
	defer func() { b.mu.Unlock() }()
	b.n++
	return b.n
}

// deferredArgs evaluates the closure's argument at defer time, after
// the explicit unlock: that read is unguarded.
func (b *deferbox) deferredArgs() {
	b.mu.Lock()
	b.n = 1
	b.mu.Unlock()
	defer func(n int) { _ = n }(b.n)
}
