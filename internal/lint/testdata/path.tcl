# Fixture: invalid widget path names.
button .a..b -text oops
destroy .x.
