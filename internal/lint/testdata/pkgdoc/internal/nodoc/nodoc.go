package nodoc

// Answer is exported but the package itself is undocumented: the
// pkgdoc analyzer must flag the package clause above.
func Answer() int { return 42 }
