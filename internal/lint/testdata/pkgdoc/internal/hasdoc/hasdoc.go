// Package hasdoc carries a proper package doc comment, so the pkgdoc
// analyzer has nothing to say about it.
package hasdoc

// Answer is documented enough by its package.
func Answer() int { return 42 }
