# Fixture: unbalanced brace.
proc greet {name} {
    puts "hello $name"
