// Package fixtures exercises the pool-lifetime analyzer: both checkout
// idioms (AcquireWriter/ReleaseWriter and raw sync.Pool Get/Put), leak
// detection per return path, use-after-release, escapes, and the
// sanctioned channel-handoff and accessor idioms.
package fixtures

import "sync"

type writer struct{ buf []byte }

var wPool = sync.Pool{New: func() any { return new(writer) }}

// AcquireWriter checks a writer out of the pool (the accessor the
// analyzer pairs with ReleaseWriter).
func AcquireWriter() *writer { return wPool.Get().(*writer) }

// ReleaseWriter returns a writer to the pool.
func ReleaseWriter(w *writer) { wPool.Put(w) }

type buffer struct{ b []byte }

var framePool = sync.Pool{New: func() any { return new(buffer) }}

// AcquireBuffer hands a raw checkout to its caller: the accessor idiom
// a return is allowed from.
func AcquireBuffer() *buffer {
	bp := framePool.Get().(*buffer)
	return bp
}

type holder struct{ w *writer }

// goodLinear acquires and releases on the only path.
func goodLinear() {
	w := AcquireWriter()
	w.buf = append(w.buf, 1)
	ReleaseWriter(w)
}

// goodDefer covers the early return with a plain deferred release.
func goodDefer(cond bool) {
	w := AcquireWriter()
	defer ReleaseWriter(w)
	if cond {
		return
	}
	w.buf = nil
}

// goodDeferClosure covers every path with a closure-wrapped release.
func goodDeferClosure() {
	w := AcquireWriter()
	defer func() { ReleaseWriter(w) }()
	w.buf = nil
}

// goodTransfer hands the checkout to a consumer over a channel
// (ownership transfer) or puts it back when the consumer is full.
func goodTransfer(out chan *buffer) {
	bp := framePool.Get().(*buffer)
	select {
	case out <- bp:
	default:
		framePool.Put(bp)
	}
}

// leakOnEarlyReturn forgets the release on the error path.
func leakOnEarlyReturn(cond bool) {
	w := AcquireWriter()
	if cond {
		return
	}
	ReleaseWriter(w)
}

// leakOnPanic leaves the checkout live when it panics.
func leakOnPanic() {
	w := AcquireWriter()
	w.buf = nil
	panic("boom")
}

// useAfterRelease touches the writer after it went back to the pool.
func useAfterRelease() {
	w := AcquireWriter()
	ReleaseWriter(w)
	w.buf = nil
}

// doubleRelease returns the same checkout twice.
func doubleRelease() {
	w := AcquireWriter()
	ReleaseWriter(w)
	ReleaseWriter(w)
}

// escapeByChannel sends a Writer away instead of releasing it.
func escapeByChannel(ch chan *writer) {
	w := AcquireWriter()
	ch <- w
}

// escapeByReturn hands out a checkout from a non-accessor.
func escapeByReturn() *writer {
	w := AcquireWriter()
	return w
}

// escapeByStore parks the checkout in a longer-lived struct.
func escapeByStore(h *holder) {
	w := AcquireWriter()
	h.w = w
}

// enqueueBuffer is the delivery half of the channel handoff: it either
// sends the buffer on or returns it to the pool.
func enqueueBuffer(out chan *buffer, bp *buffer) {
	select {
	case out <- bp:
	default:
		framePool.Put(bp)
	}
}

// goodEnqueueHandoff passes a raw checkout to an enqueue* helper —
// the sanctioned delivery-handoff idiom, not a leak.
func goodEnqueueHandoff(out chan *buffer) {
	bp := framePool.Get().(*buffer)
	bp.b = append(bp.b[:0], 1)
	enqueueBuffer(out, bp)
}

// leakViaPlainCall passes a checkout to a non-enqueue function, which
// does not transfer ownership: still a leak at return.
func leakViaPlainCall(out chan *buffer) {
	bp := framePool.Get().(*buffer)
	deliverBuffer(out, bp)
}

func deliverBuffer(out chan *buffer, bp *buffer) {
	select {
	case out <- bp:
	default:
		framePool.Put(bp)
	}
}
