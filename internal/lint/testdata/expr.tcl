# Fixture: malformed expr syntax.
set x 3
if {$x > } {
    puts big
}
set y [expr {3 * * 4}]
