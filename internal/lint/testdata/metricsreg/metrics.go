// Package fixtures exercises the metrics-registry analyzer: literal
// names, a package const, a one-level wrapper, the "prefix."+expr
// pattern, an undocumented name, and a dynamic name it cannot check.
package fixtures

type counter struct{}

func (counter) Inc() {}

type histogram struct{}

func (histogram) Observe(v int64) {}

type registry struct{}

func (registry) Counter(name string) counter     { return counter{} }
func (registry) Histogram(name string) histogram { return histogram{} }

const ctrConst = "documented.const"

// bump forwards a name into the registry: its call sites name metrics.
func (r registry) bump(name string) {
	r.Counter(name).Inc()
}

func record(r registry, opName func() string) {
	r.Counter("documented.count").Inc()
	r.Histogram("documented.lat").Observe(1)
	r.Counter(ctrConst).Inc()
	r.Counter("requests." + opName()).Inc()
	r.bump("documented.wrapped")
	r.Counter("undocumented.count").Inc()
}

func recordDynamic(r registry, suffix string) {
	r.Counter(suffix + ".made.up").Inc()
}
