# Fixture: a syntactically fine bind command whose deferred body is bad.
button .b -text Go -command {puts pressed}
pack append . .b {top}
bind .b <Enter> {hilight .b on}
