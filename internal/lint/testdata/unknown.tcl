# Fixture: an unknown command name.
set x 1
frobnicate $x
