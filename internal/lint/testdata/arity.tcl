# Fixture: wrong argument counts for known commands.
set
wm title
winfo containing 10
