// Package fixtures exercises the lock-order analyzer: the declared
// chain on box (order, leaf group, independent chain), acquisition
// cycles direct and through a helper call, and the conditionally
// swapped pair idiom on cell.
package fixtures

import "sync"

// box carries the declared order the bad functions below each violate
// one way.
//
// lock-order: first -> second -> {leafA, leafB}
// lock-order: solo
type box struct {
	first  sync.Mutex
	second sync.Mutex
	leafA  sync.Mutex
	leafB  sync.Mutex
	solo   sync.Mutex
}

// cell is locked through the pair idiom; it is deliberately absent
// from the declaration — same-class nesting is checked structurally.
type cell struct {
	mu sync.Mutex
	id uint32
}

// goodNest follows the declared order exactly.
func (b *box) goodNest() {
	b.first.Lock()
	b.second.Lock()
	b.leafA.Lock()
	b.leafA.Unlock()
	b.second.Unlock()
	b.first.Unlock()
}

// badNest acquires against the declared order (and, together with
// goodNest's first->second edge, closes a cycle).
func (b *box) badNest() {
	b.second.Lock()
	b.first.Lock()
	b.first.Unlock()
	b.second.Unlock()
}

// badGroup nests two members of the leaf group.
func (b *box) badGroup() {
	b.leafA.Lock()
	b.leafB.Lock()
	b.leafB.Unlock()
	b.leafA.Unlock()
}

// badIndependent holds mutexes from two independent chains at once.
func (b *box) badIndependent() {
	b.first.Lock()
	b.solo.Lock()
	b.solo.Unlock()
	b.first.Unlock()
}

// lockLeafA is the helper badViaCall reaches a group member through.
func (b *box) lockLeafA() {
	b.leafA.Lock()
	b.leafA.Unlock()
}

// badViaCall nests group members interprocedurally: the edge comes
// from the call, one level deep, and closes a cycle with badGroup.
func (b *box) badViaCall() {
	b.leafB.Lock()
	b.lockLeafA()
	b.leafB.Unlock()
}

// orderedPair locks two cells through the swap idiom: no diagnostic.
func orderedPair(x, y *cell) {
	lo, hi := x, y
	if y.id < x.id {
		lo, hi = y, x
	}
	lo.mu.Lock()
	hi.mu.Lock()
	hi.mu.Unlock()
	lo.mu.Unlock()
}

// unorderedPair locks two cells with no fixed order.
func unorderedPair(x, y *cell) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}
