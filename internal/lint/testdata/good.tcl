# Fixture: a clean script exercising most linted constructs.
proc hilight {w state} {
    if {$state == "on"} {
        $w configure -background black
    } else {
        $w configure -background white
    }
}
button .b -text Go -command {puts pressed}
pack append . .b {top}
bind .b <Enter> {hilight .b on}
bind .b <Leave> {hilight .b off}
scrollbar .s -command {.list view}
set n [expr 2 * (3 + 4)]
after 100 {puts later}
# tkcheck:ignore unknown-command
custom-extension .b
