// Package opcodes is a fixture for the opcode-completeness analyzer:
// OpOrphan has neither a NewRequest case nor a dispatch arm.
package opcodes

const (
	OpPing   uint16 = 1
	OpEcho   uint16 = 2
	OpOrphan uint16 = 3
)

type PingReq struct{}
type EchoReq struct{}

// NewRequest is the factory the analyzer cross-checks.
func NewRequest(op uint16) interface{} {
	switch op {
	case OpPing:
		return &PingReq{}
	case OpEcho:
		return &EchoReq{}
	}
	return nil
}

// dispatch is a request type switch (two Req cases qualify it).
func dispatch(r interface{}) string {
	switch r.(type) {
	case *PingReq:
		return "ping"
	case *EchoReq:
		return "echo"
	}
	return ""
}
