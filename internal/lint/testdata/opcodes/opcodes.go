// Package opcodes is a fixture for the opcode-completeness analyzer:
// OpOrphan has neither a NewRequest case, a dispatch arm, nor an
// opNames entry.
package opcodes

const (
	OpPing   uint16 = 1
	OpEcho   uint16 = 2
	OpOrphan uint16 = 3
)

// opNames is the name table the analyzer cross-checks.
var opNames = map[uint16]string{
	OpPing: "Ping",
	OpEcho: "Echo",
}

var _ = opNames

type PingReq struct{}
type EchoReq struct{}

// NewRequest is the factory the analyzer cross-checks.
func NewRequest(op uint16) interface{} {
	switch op {
	case OpPing:
		return &PingReq{}
	case OpEcho:
		return &EchoReq{}
	}
	return nil
}

// dispatch is a request type switch (two Req cases qualify it).
func dispatch(r interface{}) string {
	switch r.(type) {
	case *PingReq:
		return "ping"
	case *EchoReq:
		return "echo"
	}
	return ""
}
