package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strconv"
	"strings"
)

// Tier-1 linting of Go sources: every string literal passed to an
// Eval/MustEval call is a Tcl script, extracted and linted in place.
// Raw (backtick) literals map diagnostics to their exact file
// position; interpreted literals (whose escapes make the mapping
// nonlinear) are reported at the literal's first line. Commands the
// file itself registers (in.Register("screenshot", ...)) are added to
// the known set, and procs defined by any script in the file are
// visible to all of its scripts — "send jukebox {play ...}" in one
// Eval resolves against the proc another Eval defines.

// LintGoFile lints the Tcl script literals in one Go source file.
func LintGoFile(path string, reg *Registry) ([]Diag, error) {
	srcBytes, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, srcBytes, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return lintGoFile(fset, f, string(srcBytes), path, reg), nil
}

type goScript struct {
	content string
	posFn   func(off int) (line, col int)
}

func lintGoFile(fset *token.FileSet, f *ast.File, src, path string, reg *Registry) []Diag {
	scripts := extractScripts(fset, f, src)
	if len(scripts) == 0 {
		return nil
	}
	extra := registeredNames(f)

	// First pass: collect procs across every script in the file.
	procs := make(map[string]bool)
	for _, s := range scripts {
		l := newLinter(path, s.content, reg, s.posFn)
		l.procs = procs
		l.collectDefs(0, len(s.content))
	}
	for _, n := range extra {
		procs[n] = true
	}

	var diags []Diag
	for _, s := range scripts {
		l := newLinter(path, s.content, reg, s.posFn)
		l.procs = procs
		l.lintRange(0, len(s.content), modeScript)
		diags = append(diags, l.diags...)
	}
	return diags
}

// extractScripts finds Tcl scripts in a Go file: string literals passed
// as the sole argument of Eval/MustEval calls (following identifier
// references to string constants, as in MustEval(figure9)), and
// literals written to script files with os.WriteFile(path, []byte(`...`)).
func extractScripts(fset *token.FileSet, f *ast.File, src string) []goScript {
	var out []goScript
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		lit := scriptLiteral(call)
		if lit == nil {
			return true
		}
		start := fset.Position(lit.Pos())
		if strings.HasPrefix(lit.Value, "`") {
			// Raw literal: content maps 1:1 onto the file.
			content := lit.Value[1 : len(lit.Value)-1]
			base := start.Offset + 1
			out = append(out, goScript{
				content: content,
				posFn: func(off int) (int, int) {
					return lineCol(src, base+off)
				},
			})
		} else {
			content, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			out = append(out, goScript{
				content: content,
				posFn: func(off int) (int, int) {
					return start.Line, start.Column
				},
			})
		}
		return true
	})
	return out
}

// scriptLiteral returns the string literal holding the Tcl script a
// call executes, or nil if the call isn't one we treat as a script
// sink. Recognized forms:
//
//	x.Eval("...") / x.MustEval("...")
//	x.MustEval(figure9)            — figure9 a string const in this file
//	os.WriteFile(path, []byte(`...`), perm)  — wish testdata scripts
func scriptLiteral(call *ast.CallExpr) *ast.BasicLit {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch sel.Sel.Name {
	case "Eval", "MustEval":
		if len(call.Args) != 1 {
			return nil
		}
		return stringLit(call.Args[0])
	case "WriteFile":
		if len(call.Args) != 3 {
			return nil
		}
		// Second argument must be a []byte(lit) conversion.
		conv, ok := call.Args[1].(*ast.CallExpr)
		if !ok || len(conv.Args) != 1 {
			return nil
		}
		arr, ok := conv.Fun.(*ast.ArrayType)
		if !ok || arr.Len != nil {
			return nil
		}
		if id, ok := arr.Elt.(*ast.Ident); !ok || id.Name != "byte" {
			return nil
		}
		return stringLit(conv.Args[0])
	}
	return nil
}

// stringLit resolves e to a string BasicLit, following an identifier to
// a package-level `const name = "..."` declaration in the same file.
func stringLit(e ast.Expr) *ast.BasicLit {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Kind == token.STRING {
			return e
		}
	case *ast.Ident:
		if e.Obj == nil || e.Obj.Kind != ast.Con {
			return nil
		}
		spec, ok := e.Obj.Decl.(*ast.ValueSpec)
		if !ok {
			return nil
		}
		for i, name := range spec.Names {
			if name.Name == e.Name && i < len(spec.Values) {
				return stringLit(spec.Values[i])
			}
		}
	}
	return nil
}

// registeredNames collects command names the file registers itself via
// Interp.Register("name", ...) calls.
func registeredNames(f *ast.File) []string {
	var names []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Register" {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		if name, err := strconv.Unquote(lit.Value); err == nil && name != "" {
			names = append(names, name)
		}
		return true
	})
	return names
}
