package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
)

// Lock-discipline analysis. Struct fields annotated with a
// "guarded by <mutex>" comment may only be touched through the
// receiver while that mutex is held. A method establishes "held"
// either by calling recv.<mutex>.Lock() (deferred Unlocks keep it
// held; a plain Unlock releases it) or by carrying a doc comment
// saying the mutex is held on entry ("Called with s.mu held."). The
// analysis is flow-aware enough for the codebase's idioms: branches
// that terminate (return/break/continue) don't leak their lock state
// into the fall-through path, loops are analyzed with their entry
// state, and closures inherit the state at their creation point except
// for "go func" closures, which start with nothing held.
//
// It is syntactic (go/ast only, matching the receiver identifier), so
// accesses through other variables of the same type are not tracked —
// a deliberate trade against false positives in a zero-dependency
// analyzer.

var (
	guardedRe = regexp.MustCompile(`guarded by (\w+)`)
	heldRe    = regexp.MustCompile(`(?:\w+\.)?(\w+)\s+held`)
)

// CheckLocks analyzes one package's files (parsed with comments).
func CheckLocks(fset *token.FileSet, files []*ast.File) []Diag {
	guards := collectGuards(files) // struct name -> field -> mutex
	if len(guards) == 0 {
		return nil
	}
	var diags []Diag
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			recvType := receiverTypeName(fd.Recv.List[0].Type)
			fields := guards[recvType]
			if fields == nil || len(fd.Recv.List[0].Names) == 0 {
				continue
			}
			recvName := fd.Recv.List[0].Names[0].Name
			if recvName == "_" {
				continue
			}
			held := make(map[string]bool)
			if fd.Doc != nil {
				for _, m := range heldRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
					held[m[1]] = true
				}
			}
			a := &lockAnalyzer{
				fset: fset, recv: recvName, structName: recvType, fields: fields,
			}
			a.block(fd.Body.List, held)
			diags = append(diags, a.diags...)
		}
	}
	return diags
}

// collectGuards reads "guarded by X" field annotations.
func collectGuards(files []*ast.File) map[string]map[string]string {
	guards := make(map[string]map[string]string)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex := ""
				if field.Comment != nil {
					if m := guardedRe.FindStringSubmatch(field.Comment.Text()); m != nil {
						mutex = m[1]
					}
				}
				if mutex == "" && field.Doc != nil {
					if m := guardedRe.FindStringSubmatch(field.Doc.Text()); m != nil {
						mutex = m[1]
					}
				}
				if mutex == "" {
					continue
				}
				if guards[ts.Name.Name] == nil {
					guards[ts.Name.Name] = make(map[string]string)
				}
				for _, name := range field.Names {
					guards[ts.Name.Name][name.Name] = mutex
				}
			}
			return true
		})
	}
	return guards
}

func receiverTypeName(t ast.Expr) string {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers — (sh *shard[V]) or (m *table[K, V]) — wrap the
	// type name in an index expression; unwrap to the base identifier so
	// methods on generic types are analyzed like any others.
	switch g := t.(type) {
	case *ast.IndexExpr:
		t = g.X
	case *ast.IndexListExpr:
		t = g.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

type lockAnalyzer struct {
	fset       *token.FileSet
	recv       string
	structName string
	fields     map[string]string // field -> guarding mutex
	diags      []Diag
}

func (a *lockAnalyzer) diag(pos token.Pos, field, mutex string) {
	p := a.fset.Position(pos)
	a.diags = append(a.diags, Diag{
		File: p.Filename, Line: p.Line, Col: p.Column, Rule: "locks",
		Msg: fmt.Sprintf("%s.%s (guarded by %s) accessed without holding %s",
			a.structName, field, mutex, mutex),
	})
}

// block walks statements in order, mutating held; it returns true if
// the block always terminates (return, or an unconditional branch).
func (a *lockAnalyzer) block(stmts []ast.Stmt, held map[string]bool) bool {
	for _, s := range stmts {
		if a.stmt(s, held) {
			return true
		}
	}
	return false
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// merge keeps a mutex held only if both paths hold it.
func merge(into, other map[string]bool) {
	for k := range into {
		if !other[k] {
			delete(into, k)
		}
	}
}

func (a *lockAnalyzer) stmt(s ast.Stmt, held map[string]bool) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		a.expr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			a.expr(e, held)
		}
		for _, e := range s.Lhs {
			a.expr(e, held)
		}
	case *ast.IncDecStmt:
		a.expr(s.X, held)
	case *ast.SendStmt:
		a.expr(s.Chan, held)
		a.expr(s.Value, held)
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				a.expr(e, held)
				return false
			}
			return true
		})
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			a.expr(e, held)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the surrounding analysis; treat as
		// terminating so their branch state doesn't leak.
		return true
	case *ast.BlockStmt:
		return a.block(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			a.stmt(s.Init, held)
		}
		a.expr(s.Cond, held)
		thenHeld := copyHeld(held)
		thenTerm := a.block(s.Body.List, thenHeld)
		var elseHeld map[string]bool
		elseTerm := false
		if s.Else != nil {
			elseHeld = copyHeld(held)
			elseTerm = a.stmt(s.Else, elseHeld)
		}
		switch {
		case s.Else == nil:
			if !thenTerm {
				merge(held, thenHeld)
			}
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			for k := range held {
				delete(held, k)
			}
			for k, v := range elseHeld {
				held[k] = v
			}
		case elseTerm:
			for k := range held {
				delete(held, k)
			}
			for k, v := range thenHeld {
				held[k] = v
			}
		default:
			merge(thenHeld, elseHeld)
			for k := range held {
				delete(held, k)
			}
			for k, v := range thenHeld {
				held[k] = v
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			a.stmt(s.Init, held)
		}
		if s.Cond != nil {
			a.expr(s.Cond, held)
		}
		bodyHeld := copyHeld(held)
		a.block(s.Body.List, bodyHeld)
		if s.Post != nil {
			a.stmt(s.Post, bodyHeld)
		}
		merge(held, bodyHeld)
	case *ast.RangeStmt:
		a.expr(s.X, held)
		bodyHeld := copyHeld(held)
		a.block(s.Body.List, bodyHeld)
		merge(held, bodyHeld)
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.stmt(s.Init, held)
		}
		if s.Tag != nil {
			a.expr(s.Tag, held)
		}
		a.caseClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			a.stmt(s.Init, held)
		}
		a.caseClauses(s.Body, held)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if comm, ok := c.(*ast.CommClause); ok {
				caseHeld := copyHeld(held)
				if comm.Comm != nil {
					a.stmt(comm.Comm, caseHeld)
				}
				a.block(comm.Body, caseHeld)
				merge(held, caseHeld)
			}
		}
	case *ast.DeferStmt:
		// defer recv.mu.Unlock() keeps the mutex held to function end;
		// other deferred calls run at exit with an unknowable state, so
		// their bodies are analyzed with the current state (the common
		// idiom defers cleanup created under the same lock). The
		// unlock-in-closure form, defer func() { recv.mu.Unlock() }(),
		// behaves the same way: the Unlock applies only to the closure's
		// own copy of the state, so the mutex stays held in the
		// enclosing function. Call arguments are evaluated at the defer
		// statement itself, so they are checked against the current
		// state in both forms.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			for _, e := range s.Call.Args {
				a.expr(e, held)
			}
			a.block(fl.Body.List, copyHeld(held))
		} else {
			for _, e := range s.Call.Args {
				a.expr(e, held)
			}
		}
	case *ast.GoStmt:
		// The goroutine runs concurrently: nothing is held inside.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			a.block(fl.Body.List, make(map[string]bool))
		}
		for _, e := range s.Call.Args {
			a.expr(e, held)
		}
	case *ast.LabeledStmt:
		return a.stmt(s.Stmt, held)
	}
	return false
}

func (a *lockAnalyzer) caseClauses(body *ast.BlockStmt, held map[string]bool) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			caseHeld := copyHeld(held)
			for _, e := range cc.List {
				a.expr(e, caseHeld)
			}
			a.block(cc.Body, caseHeld)
			merge(held, caseHeld)
		}
	}
}

// expr checks guarded-field accesses and applies Lock/Unlock effects in
// one expression.
func (a *lockAnalyzer) expr(e ast.Expr, held map[string]bool) {
	switch e := e.(type) {
	case *ast.CallExpr:
		if mutex, isLock, ok := a.lockCall(e); ok {
			held[mutex] = isLock
			return
		}
		a.expr(e.Fun, held)
		for _, arg := range e.Args {
			a.expr(arg, held)
		}
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok && id.Name == a.recv {
			if mutex, guarded := a.fields[e.Sel.Name]; guarded && !held[mutex] {
				a.diag(e.Sel.Pos(), e.Sel.Name, mutex)
			}
			return
		}
		a.expr(e.X, held)
	case *ast.FuncLit:
		// Closures inherit the lock state at their creation point (the
		// codebase creates and invokes them under the same lock, e.g.
		// c.reply(func(w){...}) inside handlers).
		a.block(e.Body.List, copyHeld(held))
	case *ast.Ident, *ast.BasicLit:
	default:
		ast.Inspect(e, func(n ast.Node) bool {
			if n == e {
				return true
			}
			if sub, ok := n.(ast.Expr); ok {
				a.expr(sub, held)
				return false
			}
			return true
		})
	}
}

// lockCall recognizes recv.<mutex>.Lock() / Unlock() calls, and their
// RWMutex read-side forms RLock() / RUnlock(): for this analysis a read
// lock counts as holding the mutex (it protects reads of guarded
// fields, which is all the analyzer distinguishes).
func (a *lockAnalyzer) lockCall(call *ast.CallExpr) (mutex string, isLock, ok bool) {
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	if !selOK {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", false, false
	}
	inner, innerOK := sel.X.(*ast.SelectorExpr)
	if !innerOK {
		return "", false, false
	}
	id, idOK := inner.X.(*ast.Ident)
	if !idOK || id.Name != a.recv {
		return "", false, false
	}
	return inner.Sel.Name, sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock", true
}
