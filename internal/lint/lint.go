// Package lint is the static-analysis engine behind cmd/tkcheck.
//
// It has two tiers. Tier 1 is a Tcl script linter: scripts are parsed
// with a position-tracking scanner that performs no substitution and no
// evaluation (internal/tcl's parser substitutes eagerly against a live
// interpreter, so it cannot be reused for this), then checked against
// the live command registry plus a per-command arity/subcommand spec
// table. Deferred script arguments — bind bodies, -command options,
// after and send scripts — are linted recursively, so callback errors
// are caught at load time instead of event time. Tier 2 is a pair of
// Go analyzers built on go/ast alone: a lock-discipline check driven by
// "guarded by mu" field annotations, and an xproto opcode-completeness
// check. See docs/static-analysis.md.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// A Diag is one diagnostic, positioned at a 1-based line and column.
// Rule doubles as the analyzer name in machine-readable output:
// "parse", "unknown-command", "arity", "expr", "path", "options",
// "locks", "lockorder", "pool", "metrics", "opcodes", "pkgdoc".
type Diag struct {
	File string
	Line int
	Col  int
	Rule string
	Msg  string
	// Severity is "error" or "warning"; the zero value means "error".
	Severity string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Msg, d.Rule)
}

func (d Diag) severity() string {
	if d.Severity == "" {
		return "error"
	}
	return d.Severity
}

// SortDiags orders diagnostics by file, then position, then rule and
// message, so a run's output is a deterministic function of its inputs
// regardless of analyzer scheduling.
func SortDiags(diags []Diag) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// jsonDiag is the wire form of one diagnostic in -json output. The
// field set is the contract documented in docs/static-analysis.md;
// adding fields is fine, renaming or removing them is not.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

type jsonReport struct {
	Problems    int        `json:"problems"`
	Diagnostics []jsonDiag `json:"diagnostics"`
}

// WriteJSON emits diagnostics as a single JSON document: an object with
// a "problems" count and a "diagnostics" array (never null), each entry
// carrying file/line/col/analyzer/severity/message.
func WriteJSON(w io.Writer, diags []Diag) error {
	rep := jsonReport{Problems: len(diags), Diagnostics: make([]jsonDiag, 0, len(diags))}
	for _, d := range diags {
		rep.Diagnostics = append(rep.Diagnostics, jsonDiag{
			File: d.File, Line: d.Line, Col: d.Col,
			Analyzer: d.Rule, Severity: d.severity(), Message: d.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// lineCol converts a byte offset into src to a 1-based line and column.
func lineCol(src string, off int) (int, int) {
	if off > len(src) {
		off = len(src)
	}
	line := 1 + strings.Count(src[:off], "\n")
	col := off - strings.LastIndexByte(src[:off], '\n')
	return line, col
}

// LintScriptSource lints one Tcl script held in a string. name is used
// as the file name in diagnostics.
func LintScriptSource(name, src string, reg *Registry) []Diag {
	l := newLinter(name, src, reg, nil)
	l.run()
	return l.diags
}
