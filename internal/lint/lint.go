// Package lint is the static-analysis engine behind cmd/tkcheck.
//
// It has two tiers. Tier 1 is a Tcl script linter: scripts are parsed
// with a position-tracking scanner that performs no substitution and no
// evaluation (internal/tcl's parser substitutes eagerly against a live
// interpreter, so it cannot be reused for this), then checked against
// the live command registry plus a per-command arity/subcommand spec
// table. Deferred script arguments — bind bodies, -command options,
// after and send scripts — are linted recursively, so callback errors
// are caught at load time instead of event time. Tier 2 is a pair of
// Go analyzers built on go/ast alone: a lock-discipline check driven by
// "guarded by mu" field annotations, and an xproto opcode-completeness
// check. See docs/static-analysis.md.
package lint

import (
	"fmt"
	"sort"
	"strings"
)

// A Diag is one diagnostic, positioned at a 1-based line and column.
type Diag struct {
	File string
	Line int
	Col  int
	Rule string // "parse", "unknown-command", "arity", "expr", "path", "options", "locks", "opcodes"
	Msg  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Msg, d.Rule)
}

// SortDiags orders diagnostics by file, then position.
func SortDiags(diags []Diag) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
}

// lineCol converts a byte offset into src to a 1-based line and column.
func lineCol(src string, off int) (int, int) {
	if off > len(src) {
		off = len(src)
	}
	line := 1 + strings.Count(src[:off], "\n")
	col := off - strings.LastIndexByte(src[:off], '\n')
	return line, col
}

// LintScriptSource lints one Tcl script held in a string. name is used
// as the file name in diagnostics.
func LintScriptSource(name, src string, reg *Registry) []Diag {
	l := newLinter(name, src, reg, nil)
	l.run()
	return l.diags
}
