// Package baseline implements a small Xt-style widget toolkit — the
// "no composition language" baseline for the paper's Table I argument.
//
// Section 7 of the paper attributes Xt/Motif's bulk to the absence of a
// run-time composition language: "all run-time needs must be predicted
// and addressed explicitly in the C code", and behaviour has to flow
// through special-purpose mini-languages like the Xt translation manager
// instead of one general language. This package reproduces that
// architecture faithfully, in miniature, so the difference is measurable
// here: widget classes with class records, resource lists accessed
// through SetValues/GetValues, callback lists registered procedure by
// procedure, and a translation-table mini-language binding event
// specifications to named action procedures.
//
// Everything a Tk widget does in one Tcl string ("-command {print hi}")
// takes three mechanisms here: an action procedure compiled into the
// class, a translation entry naming it, and a callback registration to
// get application code invoked. That structural overhead — not any
// cleverness in Tk's C code — is what Table I measures, and what
// BenchmarkBaselineVsTclButton compares.
package baseline

import (
	"fmt"
	"strings"

	"repro/internal/xclient"
	"repro/internal/xproto"
)

// CallbackProc is application code attached to a widget callback list.
type CallbackProc func(w *Widget, callData any)

// ActionProc is a behaviour procedure named by translation tables.
type ActionProc func(w *Widget, ev *xproto.Event, params []string)

// Class is a widget class record: the static description Xt keeps per
// widget type.
type Class struct {
	Name string
	// Resources lists the resource names the class understands, with
	// defaults.
	Resources map[string]string
	// Actions maps action names (used in translations) to procedures.
	Actions map[string]ActionProc
	// DefaultTranslations is the class's translation table source.
	DefaultTranslations string
	// Initialize computes initial geometry from resources.
	Initialize func(w *Widget)
	// Redisplay repaints the widget.
	Redisplay func(w *Widget)
}

// translation is one parsed translation-table entry.
type translation struct {
	eventType int
	detail    uint32
	mods      uint16
	actions   []actionCall
}

type actionCall struct {
	name   string
	params []string
}

// Widget is a widget instance record.
type Widget struct {
	tk        *Toolkit
	class     *Class
	xid       xproto.ID
	resources map[string]string
	callbacks map[string][]CallbackProc
	trans     []translation

	X, Y, Width, Height int

	// Per-instance scratch state used by class actions (armed buttons,
	// scrollbar drag state...).
	Armed bool
	State map[string]int
}

// Toolkit is the Xt "application context": display, widget table and
// event dispatch.
type Toolkit struct {
	Disp    *xclient.Display
	widgets map[xproto.ID]*Widget
	font    *xclient.Font
}

// NewToolkit initializes the baseline toolkit over a display connection.
func NewToolkit(d *xclient.Display) (*Toolkit, error) {
	font, err := d.OpenFont("fixed")
	if err != nil {
		return nil, err
	}
	return &Toolkit{Disp: d, widgets: make(map[xproto.ID]*Widget), font: font}, nil
}

// Font exposes the toolkit's font for class code.
func (tk *Toolkit) Font() *xclient.Font { return tk.font }

// CreateWidget instantiates a class as a child of parent (None = root).
func (tk *Toolkit) CreateWidget(class *Class, parent xproto.ID, args map[string]string) (*Widget, error) {
	if parent == xproto.None {
		parent = tk.Disp.Root
	}
	w := &Widget{
		tk:        tk,
		class:     class,
		resources: make(map[string]string, len(class.Resources)),
		callbacks: make(map[string][]CallbackProc),
		State:     make(map[string]int),
		Width:     1, Height: 1,
	}
	for k, v := range class.Resources {
		w.resources[k] = v
	}
	for k, v := range args {
		if _, ok := class.Resources[k]; !ok {
			return nil, fmt.Errorf("widget class %s has no resource %q", class.Name, k)
		}
		w.resources[k] = v
	}
	trans, err := ParseTranslations(class.DefaultTranslations)
	if err != nil {
		return nil, fmt.Errorf("class %s translations: %w", class.Name, err)
	}
	w.trans = trans
	w.xid = tk.Disp.CreateWindow(parent, 0, 0, 1, 1, 0, xclient.WindowAttributes{
		Background: 0xffe4c4,
		EventMask:  requiredEventMask(trans) | xproto.ExposureMask | xproto.StructureNotifyMask,
	})
	tk.widgets[w.xid] = w
	if class.Initialize != nil {
		class.Initialize(w)
	}
	return w, nil
}

// DestroyWidget removes a widget and its window.
func (tk *Toolkit) DestroyWidget(w *Widget) {
	delete(tk.widgets, w.xid)
	tk.Disp.DestroyWindow(w.xid)
}

// XID exposes the widget's window for geometry management by the caller
// (the baseline has no geometry managers — the application positions
// windows itself, another chore Tk's packer absorbs).
func (w *Widget) XID() xproto.ID { return w.xid }

// SetGeometry positions and sizes the widget explicitly.
func (w *Widget) SetGeometry(x, y, width, height int) {
	w.X, w.Y, w.Width, w.Height = x, y, width, height
	w.tk.Disp.MoveResizeWindow(w.xid, x, y, width, height)
}

// Realize maps the widget.
func (w *Widget) Realize() { w.tk.Disp.MapWindow(w.xid) }

// AddCallback registers application code on a named callback list
// (XtAddCallback).
func (w *Widget) AddCallback(name string, fn CallbackProc) {
	w.callbacks[name] = append(w.callbacks[name], fn)
}

// CallCallbacks invokes a callback list (XtCallCallbacks); class actions
// use it to reach application code.
func (w *Widget) CallCallbacks(name string, callData any) {
	for _, fn := range w.callbacks[name] {
		fn(w, callData)
	}
}

// GetValues reads resources (XtGetValues).
func (w *Widget) GetValues(names ...string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = w.resources[n]
	}
	return out
}

// SetValues updates resources and triggers redisplay (XtSetValues).
func (w *Widget) SetValues(values map[string]string) error {
	for k, v := range values {
		if _, ok := w.class.Resources[k]; !ok {
			return fmt.Errorf("widget class %s has no resource %q", w.class.Name, k)
		}
		w.resources[k] = v
	}
	if w.class.Initialize != nil {
		w.class.Initialize(w)
	}
	w.Redisplay()
	return nil
}

// Redisplay repaints now.
func (w *Widget) Redisplay() {
	if w.class.Redisplay != nil {
		w.class.Redisplay(w)
	}
}

// OverrideTranslations merges new translation source into the instance
// (XtOverrideTranslations).
func (w *Widget) OverrideTranslations(source string) error {
	trans, err := ParseTranslations(source)
	if err != nil {
		return err
	}
	w.trans = append(trans, w.trans...)
	w.tk.Disp.SelectInput(w.xid,
		requiredEventMask(w.trans)|xproto.ExposureMask|xproto.StructureNotifyMask)
	return nil
}

// DispatchEvent routes one X event through translations (the Xt
// translation manager's dispatch step).
func (tk *Toolkit) DispatchEvent(ev *xproto.Event) {
	w, ok := tk.widgets[ev.Window]
	if !ok {
		return
	}
	switch ev.Type {
	case xproto.Expose:
		w.Redisplay()
		return
	case xproto.ConfigureNotify:
		w.X, w.Y = int(ev.X), int(ev.Y)
		w.Width, w.Height = int(ev.Width), int(ev.Height)
		return
	}
	for _, tr := range w.trans {
		if tr.eventType != int(ev.Type) {
			continue
		}
		if tr.detail != 0 {
			detail := ev.Detail
			if tr.eventType == xproto.KeyPress || tr.eventType == xproto.KeyRelease {
				detail = uint32(ev.Keysym)
			}
			if detail != tr.detail {
				continue
			}
		}
		if ev.State&tr.mods != tr.mods {
			continue
		}
		for _, a := range tr.actions {
			fn := w.class.Actions[a.name]
			if fn == nil {
				continue
			}
			fn(w, ev, a.params)
		}
		return
	}
}

// ProcessPending drains and dispatches all queued events.
func (tk *Toolkit) ProcessPending() {
	tk.Disp.Flush()
	for {
		ev, ok := tk.Disp.PollEvent()
		if !ok {
			return
		}
		tk.DispatchEvent(&ev)
	}
}

// Sync flushes, waits for the server, then processes everything pending.
func (tk *Toolkit) Sync() {
	if err := tk.Disp.Sync(); err != nil {
		return
	}
	tk.ProcessPending()
}

// ParseTranslations compiles translation-table source: one entry per
// line, "<EventSpec>: Action1() Action2(param)". Event specs follow Xt's
// names: <Btn1Down>, <Btn1Up>, <EnterWindow>, <LeaveWindow>, <Key>q,
// <Motion>, and modifiers like Ctrl<Key>q.
func ParseTranslations(source string) ([]translation, error) {
	var out []translation
	for _, line := range strings.Split(source, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "!") {
			continue
		}
		colon := strings.Index(line, ":")
		if colon < 0 {
			return nil, fmt.Errorf("missing ':' in translation %q", line)
		}
		spec := strings.TrimSpace(line[:colon])
		var tr translation

		// Leading modifiers before '<'.
		lt := strings.IndexByte(spec, '<')
		if lt < 0 {
			return nil, fmt.Errorf("missing event in translation %q", line)
		}
		for _, mod := range strings.Fields(spec[:lt]) {
			switch mod {
			case "Ctrl":
				tr.mods |= xproto.ControlMask
			case "Shift":
				tr.mods |= xproto.ShiftMask
			case "Meta":
				tr.mods |= xproto.Mod1Mask
			default:
				return nil, fmt.Errorf("unknown modifier %q in %q", mod, line)
			}
		}
		gt := strings.IndexByte(spec, '>')
		if gt < lt {
			return nil, fmt.Errorf("missing '>' in translation %q", line)
		}
		evName := spec[lt+1 : gt]
		detail := strings.TrimSpace(spec[gt+1:])
		switch evName {
		case "Btn1Down":
			tr.eventType, tr.detail = xproto.ButtonPress, 1
		case "Btn2Down":
			tr.eventType, tr.detail = xproto.ButtonPress, 2
		case "Btn3Down":
			tr.eventType, tr.detail = xproto.ButtonPress, 3
		case "Btn1Up":
			tr.eventType, tr.detail = xproto.ButtonRelease, 1
		case "BtnDown":
			tr.eventType = xproto.ButtonPress
		case "BtnUp":
			tr.eventType = xproto.ButtonRelease
		case "EnterWindow":
			tr.eventType = xproto.EnterNotify
		case "LeaveWindow":
			tr.eventType = xproto.LeaveNotify
		case "Motion":
			tr.eventType = xproto.MotionNotify
		case "Key", "KeyPress":
			tr.eventType = xproto.KeyPress
			if detail != "" {
				ks, ok := xproto.KeysymFromName(detail)
				if !ok {
					return nil, fmt.Errorf("bad keysym %q in %q", detail, line)
				}
				tr.detail = uint32(ks)
			}
		default:
			return nil, fmt.Errorf("unknown event %q in translation %q", evName, line)
		}

		// Action list.
		for _, tok := range strings.Fields(strings.TrimSpace(line[colon+1:])) {
			open := strings.IndexByte(tok, '(')
			closeP := strings.LastIndexByte(tok, ')')
			if open < 0 || closeP < open {
				return nil, fmt.Errorf("malformed action %q in %q", tok, line)
			}
			call := actionCall{name: tok[:open]}
			if args := tok[open+1 : closeP]; args != "" {
				call.params = strings.Split(args, ",")
			}
			tr.actions = append(tr.actions, call)
		}
		out = append(out, tr)
	}
	return out, nil
}

// requiredEventMask computes the X selection needed by a translation set.
func requiredEventMask(trans []translation) uint32 {
	var mask uint32
	for _, tr := range trans {
		mask |= xproto.EventMaskFor(tr.eventType)
	}
	return mask
}
