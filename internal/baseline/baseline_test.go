package baseline

import (
	"testing"

	"repro/internal/xclient"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

func newToolkit(t *testing.T) *Toolkit {
	t.Helper()
	srv := xserver.New(800, 600)
	t.Cleanup(srv.Close)
	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	tk, err := NewToolkit(d)
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func TestParseTranslations(t *testing.T) {
	trans, err := ParseTranslations(`
		<EnterWindow>: Highlight()
		<Btn1Down>: Arm()
		<Btn1Up>: Notify() Disarm()
		Ctrl<Key>q: Quit()
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(trans) != 4 {
		t.Fatalf("parsed %d translations", len(trans))
	}
	if trans[0].eventType != xproto.EnterNotify {
		t.Fatal("enter translation")
	}
	if trans[1].eventType != xproto.ButtonPress || trans[1].detail != 1 {
		t.Fatal("press translation")
	}
	if len(trans[2].actions) != 2 || trans[2].actions[0].name != "Notify" {
		t.Fatalf("action list = %+v", trans[2].actions)
	}
	if trans[3].mods != xproto.ControlMask || trans[3].detail != 'q' {
		t.Fatalf("modifier translation = %+v", trans[3])
	}
}

func TestParseTranslationErrors(t *testing.T) {
	for _, bad := range []string{
		"<NoSuchEvent>: Foo()",
		"<Btn1Down> Foo()",
		"<Btn1Down>: Foo",
		"Hyper<Btn1Down>: Foo()",
	} {
		if _, err := ParseTranslations(bad); err == nil {
			t.Errorf("ParseTranslations(%q) should fail", bad)
		}
	}
}

// TestCommandWidget drives the baseline button exactly as the Tk button
// test does, but observe the machinery required: callback registration
// plus the translation table, with behaviour fixed at compile time.
func TestCommandWidget(t *testing.T) {
	tk := newToolkit(t)
	invoked := 0
	w, err := tk.CreateWidget(CommandClass, xproto.None, map[string]string{"label": "Press"})
	if err != nil {
		t.Fatal(err)
	}
	w.AddCallback("callback", func(*Widget, any) { invoked++ })
	w.SetGeometry(50, 50, 80, 24)
	w.Realize()
	tk.Sync()

	tk.Disp.WarpPointer(60, 60)
	tk.Disp.FakeButton(1, true)
	tk.Disp.FakeButton(1, false)
	tk.Sync()
	if invoked != 1 {
		t.Fatalf("callback ran %d times, want 1", invoked)
	}
	// Arm then leave: Notify must not fire (Reset disarms).
	tk.Disp.FakeButton(1, true)
	tk.Disp.WarpPointer(300, 300)
	tk.Sync() // leave resets the armed state
	tk.Disp.FakeButton(1, false)
	tk.Sync()
	if invoked != 1 {
		t.Fatalf("disarmed release still notified: %d", invoked)
	}
	// Resources via SetValues/GetValues.
	if err := w.SetValues(map[string]string{"label": "Changed"}); err != nil {
		t.Fatal(err)
	}
	if got := w.GetValues("label")[0]; got != "Changed" {
		t.Fatalf("label = %q", got)
	}
	if err := w.SetValues(map[string]string{"nosuch": "x"}); err == nil {
		t.Fatal("unknown resource should fail")
	}
}

// TestScrollbarListGlue shows the compiled glue an application must write
// to connect two baseline widgets — Tk replaces this entire function with
// the string ".list view".
func TestScrollbarListGlue(t *testing.T) {
	tk := newToolkit(t)
	list, err := tk.CreateWidget(ListClass, xproto.None, map[string]string{
		"items": "a b c d e f g h i j k l m n o p q r s t",
	})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := tk.CreateWidget(ScrollbarClass, xproto.None, map[string]string{
		"total": "20", "window": "10",
	})
	if err != nil {
		t.Fatal(err)
	}
	list.SetGeometry(0, 0, 120, 150)
	sb.SetGeometry(120, 0, 15, 150)
	list.Realize()
	sb.Realize()
	tk.Sync()

	// The glue: application code wiring scrollProc to the list's "first"
	// resource.
	var scrolledTo int
	sb.AddCallback("scrollProc", func(_ *Widget, callData any) {
		scrolledTo = callData.(int)
		_ = list.SetValues(map[string]string{"first": "10"})
	})

	// Drag the scrollbar thumb.
	tk.Disp.WarpPointer(127, 20)
	tk.Disp.FakeButton(1, true)
	tk.Disp.WarpPointer(127, 80)
	tk.Disp.FakeButton(1, false)
	tk.Sync()
	if scrolledTo == 0 {
		t.Fatal("scroll callback did not run")
	}
	if got := list.GetValues("first")[0]; got != "10" {
		t.Fatalf("list first = %q", got)
	}
}

func TestOverrideTranslations(t *testing.T) {
	tk := newToolkit(t)
	w, err := tk.CreateWidget(CommandClass, xproto.None, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.SetGeometry(10, 10, 60, 20)
	w.Realize()
	// Adding a keyboard quit binding requires a new translation AND a
	// class action — here we reuse Notify for the demonstration.
	if err := w.OverrideTranslations("Ctrl<Key>q: Notify()"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	w.AddCallback("callback", func(*Widget, any) { fired++ })
	w.Armed = true
	tk.Sync()
	tk.Disp.WarpPointer(15, 15)
	tk.Disp.FakeKey(xproto.KsControlL, true)
	tk.Disp.FakeKey('q', true)
	tk.Sync()
	if fired != 1 {
		t.Fatalf("override translation fired %d times", fired)
	}
}
