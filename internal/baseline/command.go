package baseline

import (
	"strconv"
	"strings"

	"repro/internal/xclient"
	"repro/internal/xproto"
)

// gcv builds GC values for a fg/bg/font triple. The baseline allocates
// and frees GCs per redisplay — it has no resource caches (§3.3 is a Tk
// intrinsic), which the cache benchmarks expose.
func gcv(fg, bg uint32, font xproto.ID) xclient.GCValues {
	return xclient.GCValues{
		Mask:       xproto.GCForeground | xproto.GCBackground | xproto.GCFont,
		Foreground: fg, Background: bg, Font: font,
	}
}

// This file defines the baseline's widget classes: Command (push button),
// BaselineScrollbar, and BaselineList — the three modules Table I sizes.
// Note the structural contrast with internal/widget: each class needs
// named action procedures (Arm/Disarm/Notify...), a translation table to
// reach them, and callback lists to reach application code; connecting a
// scrollbar to a list takes compiled glue registered by the application,
// where Tk's version is the one-line Tcl string ".list view".

// CommandClass is the push-button class (Xt's Command widget).
var CommandClass = &Class{
	Name: "Command",
	Resources: map[string]string{
		"label":      "button",
		"background": "0xffe4c4",
		"foreground": "0x000000",
	},
	DefaultTranslations: `
		<EnterWindow>: Highlight()
		<LeaveWindow>: Reset()
		<Btn1Down>: Arm()
		<Btn1Up>: Notify() Disarm()
	`,
	Actions: map[string]ActionProc{
		"Highlight": func(w *Widget, ev *xproto.Event, params []string) {
			w.State["highlight"] = 1
			w.Redisplay()
		},
		"Reset": func(w *Widget, ev *xproto.Event, params []string) {
			w.State["highlight"] = 0
			w.Armed = false
			w.Redisplay()
		},
		"Arm": func(w *Widget, ev *xproto.Event, params []string) {
			w.Armed = true
			w.Redisplay()
		},
		"Disarm": func(w *Widget, ev *xproto.Event, params []string) {
			w.Armed = false
			w.Redisplay()
		},
		"Notify": func(w *Widget, ev *xproto.Event, params []string) {
			if w.Armed {
				w.CallCallbacks("callback", nil)
			}
		},
	},
	Initialize: func(w *Widget) {
		f := w.tk.Font()
		label := w.resources["label"]
		w.Width = f.TextWidth(label) + 12
		w.Height = f.LineHeight() + 8
		w.tk.Disp.ResizeWindow(w.xid, w.Width, w.Height)
	},
	Redisplay: func(w *Widget) {
		d := w.tk.Disp
		f := w.tk.Font()
		bg := parsePixel(w.resources["background"])
		fg := parsePixel(w.resources["foreground"])
		if w.State["highlight"] != 0 {
			bg = bg - 0x101010&bg // crude darken
		}
		gcBG := d.CreateGC(gcv(bg, bg, f.ID))
		d.FillRectangle(w.xid, gcBG, 0, 0, w.Width, w.Height)
		gcFG := d.CreateGC(gcv(fg, bg, f.ID))
		label := w.resources["label"]
		x := (w.Width - f.TextWidth(label)) / 2
		y := (w.Height+f.Ascent)/2 - 1
		d.DrawString(w.xid, gcFG, x, y, label)
		if w.Armed {
			d.DrawRectangle(w.xid, gcFG, 0, 0, w.Width-1, w.Height-1)
		}
		d.FreeGC(gcBG)
		d.FreeGC(gcFG)
	},
}

// ScrollbarClass is a vertical scrollbar; the application hears about
// scrolling through the "scrollProc" callback, whose callData is the new
// top unit (int).
var ScrollbarClass = &Class{
	Name: "BaselineScrollbar",
	Resources: map[string]string{
		"total":      "1",
		"window":     "1",
		"first":      "0",
		"background": "0xffe4c4",
	},
	DefaultTranslations: `
		<Btn1Down>: StartScroll()
		<Motion>: MoveThumb()
		<Btn1Up>: NotifyScroll() EndScroll()
	`,
	Actions: map[string]ActionProc{
		"StartScroll": func(w *Widget, ev *xproto.Event, params []string) {
			w.State["scrolling"] = 1
			w.State["target"] = scrollbarUnitAt(w, int(ev.Y))
		},
		"MoveThumb": func(w *Widget, ev *xproto.Event, params []string) {
			if w.State["scrolling"] != 0 {
				w.State["target"] = scrollbarUnitAt(w, int(ev.Y))
			}
		},
		"NotifyScroll": func(w *Widget, ev *xproto.Event, params []string) {
			if w.State["scrolling"] != 0 {
				w.CallCallbacks("scrollProc", w.State["target"])
			}
		},
		"EndScroll": func(w *Widget, ev *xproto.Event, params []string) {
			w.State["scrolling"] = 0
		},
	},
	Initialize: func(w *Widget) {
		w.Width, w.Height = 15, 100
		w.tk.Disp.ResizeWindow(w.xid, w.Width, w.Height)
	},
	Redisplay: func(w *Widget) {
		d := w.tk.Disp
		bg := parsePixel(w.resources["background"])
		gc := d.CreateGC(gcv(bg, bg, 0))
		d.FillRectangle(w.xid, gc, 0, 0, w.Width, w.Height)
		total := atoiDefault(w.resources["total"], 1)
		window := atoiDefault(w.resources["window"], 1)
		first := atoiDefault(w.resources["first"], 0)
		gcT := d.CreateGC(gcv(0x808080, bg, 0))
		top := first * w.Height / max(total, 1)
		span := max(window*w.Height/max(total, 1), 6)
		d.FillRectangle(w.xid, gcT, 2, top, w.Width-4, span)
		d.FreeGC(gc)
		d.FreeGC(gcT)
	},
}

// ListClass is a minimal list display; selection notifies "select"
// callbacks with the item index.
var ListClass = &Class{
	Name: "BaselineList",
	Resources: map[string]string{
		"items":      "",
		"first":      "0",
		"background": "0xffffff",
		"foreground": "0x000000",
	},
	DefaultTranslations: `
		<Btn1Down>: Set()
		<Btn1Up>: NotifySelect()
	`,
	Actions: map[string]ActionProc{
		"Set": func(w *Widget, ev *xproto.Event, params []string) {
			lh := w.tk.Font().LineHeight() + 2
			w.State["selected"] = atoiDefault(w.resources["first"], 0) + int(ev.Y)/lh
			w.Redisplay()
		},
		"NotifySelect": func(w *Widget, ev *xproto.Event, params []string) {
			w.CallCallbacks("select", w.State["selected"])
		},
	},
	Initialize: func(w *Widget) {
		f := w.tk.Font()
		w.Width = 20*f.TextWidth("0") + 6
		w.Height = 10 * (f.LineHeight() + 2)
		w.tk.Disp.ResizeWindow(w.xid, w.Width, w.Height)
	},
	Redisplay: func(w *Widget) {
		d := w.tk.Disp
		f := w.tk.Font()
		bg := parsePixel(w.resources["background"])
		fg := parsePixel(w.resources["foreground"])
		gcBG := d.CreateGC(gcv(bg, bg, f.ID))
		d.FillRectangle(w.xid, gcBG, 0, 0, w.Width, w.Height)
		gcFG := d.CreateGC(gcv(fg, bg, f.ID))
		items := strings.Fields(w.resources["items"])
		first := atoiDefault(w.resources["first"], 0)
		lh := f.LineHeight() + 2
		y := f.Ascent + 1
		for i := first; i < len(items) && y < w.Height; i++ {
			d.DrawString(w.xid, gcFG, 3, y, items[i])
			y += lh
		}
		d.FreeGC(gcBG)
		d.FreeGC(gcFG)
	},
}

func scrollbarUnitAt(w *Widget, y int) int {
	total := atoiDefault(w.resources["total"], 1)
	if w.Height < 1 {
		return 0
	}
	u := y * total / w.Height
	if u < 0 {
		u = 0
	}
	if u >= total {
		u = total - 1
	}
	return u
}

func parsePixel(s string) uint32 {
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		return 0
	}
	return uint32(v)
}

func atoiDefault(s string, def int) int {
	if n, err := strconv.Atoi(s); err == nil {
		return n
	}
	return def
}
