package core_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/tcl"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

func newApp(t *testing.T, name string) (*core.App, *bytes.Buffer) {
	t.Helper()
	app, err := core.NewApp(core.Options{Name: name})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Close)
	var out bytes.Buffer
	app.Interp.Out = &out
	return app, &out
}

// figure9 is the browse script of Figure 9 with its two exec escapes
// captured as prints (see examples/browser for the rationale).
const figure9 = `
scrollbar .scroll -command ".list view"
listbox .list -scroll ".scroll set" -relief raised -geometry 20x20
pack append . .scroll {right filly} .list {left expand fill}
proc browse {dir file} {
    if {[string compare $dir "."] != 0} {set file $dir/$file}
    if [file $file isdirectory] {
        print "DIR $file\n"
    } else {
        if [file $file isfile] {
            print "FILE $file\n"
        } else {
            print "$file isn't a directory or regular file\n"
        }
    }
}
if $argc>0 {set dir [index $argv 0]} else {set dir "."}
foreach i [exec ls -a $dir] {
    .list insert end $i
}
bind .list <space> {foreach i [selection get] {browse $dir $i}}
bind .list <Control-q> {destroy .}
`

// TestFigure9Browser runs the paper's 21-line directory browser script
// end to end against a real directory: fills the listbox with ls output,
// selects entries with the mouse, presses space to browse them, and
// quits with Control-q via the script's own binding.
func TestFigure9Browser(t *testing.T) {
	dir := t.TempDir()
	for _, f := range []string{"alpha.txt", "beta.txt"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "subdir"), 0o755); err != nil {
		t.Fatal(err)
	}

	app, out := newApp(t, "browse")
	app.Interp.SetGlobal("argv", tcl.FormatList([]string{dir}))
	app.Interp.SetGlobal("argc", "1")
	app.MustEval(figure9)
	app.Update()

	// ls -a: ".", "..", "alpha.txt", "beta.txt", "subdir".
	if got := app.MustEval(`.list size`); got != "5" {
		t.Fatalf("listbox size = %s, want 5", got)
	}
	if got := app.MustEval(`.list get 2`); got != "alpha.txt" {
		t.Fatalf("item 2 = %q", got)
	}

	// Select alpha.txt and beta.txt by dragging (rows 2 and 3; each row
	// is the font line height plus 2, below the 2-pixel border).
	lb, _ := app.NameToWindow(".list")
	font, err := app.FontByName("6x13")
	if err != nil {
		t.Fatal(err)
	}
	lh := font.LineHeight() + 2
	rx, ry := lb.RootCoords()
	app.Disp.WarpPointer(rx+30, ry+2+2*lh+lh/2)
	app.Disp.FakeButton(1, true)
	app.Disp.WarpPointer(rx+30, ry+2+3*lh+lh/2)
	app.Disp.FakeButton(1, false)
	app.Update()
	if got := app.MustEval(`selection get`); got != "alpha.txt\nbeta.txt" {
		t.Fatalf("selection = %q", got)
	}

	// Space browses each selected item via the script's proc.
	app.Disp.FakeKey(xproto.KsSpace, true)
	app.Disp.FakeKey(xproto.KsSpace, false)
	app.Update()
	if !strings.Contains(out.String(), "FILE "+dir+"/alpha.txt") ||
		!strings.Contains(out.String(), "FILE "+dir+"/beta.txt") {
		t.Fatalf("browse output = %q", out.String())
	}

	// A directory hits the DIR branch.
	out.Reset()
	app.MustEval(`.list select from 4`) // subdir
	app.Disp.FakeKey(xproto.KsSpace, true)
	app.Disp.FakeKey(xproto.KsSpace, false)
	app.Update()
	if !strings.Contains(out.String(), "DIR "+dir+"/subdir") {
		t.Fatalf("dir browse output = %q", out.String())
	}

	// Control-q destroys the application (line 21 of the figure).
	app.Disp.FakeKey(xproto.KsControlL, true)
	app.Disp.FakeKey('q', true)
	app.Disp.FakeKey('q', false)
	app.Update()
	if !app.Quitting() {
		t.Fatal("Control-q did not destroy the application")
	}
}

// TestFigure10Screenshot regenerates the paper's screen dump: the browser
// UI rendered to pixels, written to testdata/browser.ppm. The test
// verifies the image has the expected structure (title bar, listbox text,
// selection highlight, scrollbar).
func TestFigure10Screenshot(t *testing.T) {
	app, _ := newApp(t, "browse")
	app.MustEval(`wm title . browse`)
	app.MustEval(`
		scrollbar .scroll -command ".list view"
		listbox .list -scroll ".scroll set" -relief raised -geometry 20x20
		pack append . .scroll {right filly} .list {left expand fill}
	`)
	for _, it := range []string{".", "..", "Makefile", "browse", "main.c", "main.o", "notes"} {
		app.MustEval(`.list insert end ` + it)
	}
	app.MustEval(`.list select from 2`)
	app.MustEval(`.list select to 4`) // three darkened items, as in the figure
	app.Update()

	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := app.ScreenshotPPM(".", filepath.Join("testdata", "browser.ppm")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join("testdata", "browser.ppm"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("P6\n")) {
		t.Fatal("not a PPM file")
	}
	// Structural checks on the raw image.
	shot, err := app.Disp.Screenshot(app.Main.XID)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint32]int{}
	for i := 0; i+2 < len(shot.Pixels); i += 3 {
		px := uint32(shot.Pixels[i])<<16 | uint32(shot.Pixels[i+1])<<8 | uint32(shot.Pixels[i+2])
		counts[px]++
	}
	if counts[0xffe4c4] == 0 {
		t.Fatal("no Bisque1 widget background in screenshot")
	}
	if counts[0xb0c4de] < 100 {
		t.Fatalf("selection highlight missing (%d LightSteelBlue pixels)", counts[0xb0c4de])
	}
	if counts[0x000000] < 50 {
		t.Fatalf("text missing (%d black pixels)", counts[0x000000])
	}
	if counts[0x6a5acd] < 50 {
		t.Fatalf("window-manager title bar missing (%d pixels)", counts[0x6a5acd])
	}
}

// TestSendAcrossOSProcessesBoundary runs two applications in this process
// but over a real TCP connection to a shared server — the same byte
// stream two separate OS processes would use — and sends between them.
func TestSendAcrossTCP(t *testing.T) {
	srv := xserver.New(800, 600)
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a1, err := core.NewApp(core.Options{Name: "alpha", Display: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := core.NewApp(core.Options{Name: "beta", Display: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()

	a2.MustEval(`proc greet {} {return "hello over TCP"}`)
	stop := a2.StartServing()
	got, err := a1.Send("beta", "greet")
	stop()
	if err != nil || got != "hello over TCP" {
		t.Fatalf("send over TCP: %q %v", got, err)
	}
}

// TestInterfaceEditingViaSend demonstrates §6's interface-editor idea: a
// second application queries and modifies a live application's interface
// with send — no mock-ups, no recompilation.
func TestInterfaceEditingViaSend(t *testing.T) {
	srv := xserver.New(800, 600)
	defer srv.Close()
	target, err := core.NewAppOnServer(srv, "app", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	editor, err := core.NewAppOnServer(srv, "editor", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer editor.Close()

	target.MustEval(`
		button .ok -text OK
		button .cancel -text Cancel
		pack append . .ok {left} .cancel {left}
	`)
	target.Update()

	stop := target.StartServing()
	// Query the live interface.
	if got, _ := editor.Send("app", `winfo children .`); got != ".ok .cancel" {
		t.Fatalf("children = %q", got)
	}
	// Change a widget's text and the window arrangement, live.
	if _, err := editor.Send("app", `.ok configure -text Confirm`); err != nil {
		t.Fatal(err)
	}
	if _, err := editor.Send("app", `pack unpack .cancel`); err != nil {
		t.Fatal(err)
	}
	got, _ := editor.Send("app", `lindex [.ok configure -text] 4`)
	stop()
	if got != "Confirm" {
		t.Fatalf("edited text = %q", got)
	}
	if target.MustEval(`pack slaves .`) != ".ok" {
		t.Fatal("pack unpack via send failed")
	}
}

// TestActiveSpreadsheetCells implements §6's spreadsheet sketch: cells
// contain embedded Tcl commands; evaluating the sheet executes them,
// fetching data from a separate application.
func TestActiveSpreadsheetCells(t *testing.T) {
	srv := xserver.New(800, 600)
	defer srv.Close()
	sheet, err := core.NewAppOnServer(srv, "sheet", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sheet.Close()
	db, err := core.NewAppOnServer(srv, "database", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	db.MustEval(`
		set prices(widget) 19
		set prices(gadget) 23
		proc price {item} {global prices; return $prices($item)}
	`)
	sheet.MustEval(`
		set cell(a1) {send database {price widget}}
		set cell(a2) {send database {price gadget}}
		set cell(a3) {expr [eval $cell(a1)] + [eval $cell(a2)]}
		proc recalc {} {
			global cell value
			foreach c [array names cell] {set value($c) [eval $cell($c)]}
		}
	`)
	stop := db.StartServing()
	sheet.MustEval(`recalc`)
	stop()
	if got := sheet.MustEval(`set value(a3)`); got != "42" {
		t.Fatalf("a3 = %q", got)
	}
}

// TestWishScriptFile exercises the wish startup path: a script read from
// a file with argv set, as "wish -f browse dir" does.
func TestWishScriptFile(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "hello.tcl")
	if err := os.WriteFile(script, []byte(`
		button .b -text [index $argv 0]
		pack append . .b {top}
		update
		set result [lindex [.b configure -text] 4]
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	app, _ := newApp(t, "hello")
	app.Interp.SetGlobal("argv", "from-args")
	app.Interp.SetGlobal("argc", "1")
	app.MustEval(`source ` + script)
	if got := app.MustEval(`set result`); got != "from-args" {
		t.Fatalf("result = %q", got)
	}
}

// TestDynamicInterfaceRebuild shows the paper's claim that "Tcl can be
// used to modify the entire widget configuration of an application at any
// time": the whole interface is torn down and rebuilt mid-run.
func TestDynamicInterfaceRebuild(t *testing.T) {
	app, _ := newApp(t, "dyn")
	app.MustEval(`
		label .top -text "diagnostics"
		button .go -text Go
		pack append . .top {top fillx} .go {bottom}
	`)
	app.Update()
	if app.MustEval(`pack slaves .`) != ".top .go" {
		t.Fatal("initial layout")
	}
	// Move the diagnostics window to the bottom — §5's example.
	app.MustEval(`
		pack unpack .top
		pack unpack .go
		pack append . .go {top} .top {bottom fillx}
	`)
	app.Update()
	if app.MustEval(`pack slaves .`) != ".go .top" {
		t.Fatal("rearranged layout")
	}
	// Tear everything down and build a different interface.
	app.MustEval(`destroy .top; destroy .go`)
	app.MustEval(`
		entry .e
		scrollbar .s -command ".e view"
		pack append . .e {top fillx} .s {bottom fillx}
	`)
	app.Update()
	if app.MustEval(`winfo children .`) != ".e .s" {
		t.Fatalf("rebuilt children = %q", app.MustEval(`winfo children .`))
	}
}

// TestEmitInterfaceScript covers the §6 interface-editor mechanics: the
// configure introspection contains enough to regenerate a widget, and
// the generated script rebuilds an equivalent interface.
func TestEmitInterfaceScript(t *testing.T) {
	app, _ := newApp(t, "emitter")
	app.MustEval(`button .b -text "Press me" -bg red -relief groove`)
	app.MustEval(`pack append . .b {top fillx}`)
	app.Update()

	// Build a creation command from non-default options.
	tuples, err := tcl.ParseList(app.MustEval(`.b configure`))
	if err != nil {
		t.Fatal(err)
	}
	script := "button .b"
	for _, tup := range tuples {
		f, _ := tcl.ParseList(tup)
		if len(f) != 5 {
			continue
		}
		if f[4] != f[3] {
			script += " " + f[0] + " " + tcl.QuoteElement(f[4])
		}
	}
	script += "\npack append . .b " + tcl.QuoteElement(app.MustEval(`lindex [pack info .] 1`))

	clone, _ := newApp(t, "clone")
	clone.MustEval(script)
	clone.Update()
	for _, opt := range []string{"-text", "-background", "-relief"} {
		want := app.MustEval(`lindex [.b configure ` + opt + `] 4`)
		got := clone.MustEval(`lindex [.b configure ` + opt + `] 4`)
		if got != want {
			t.Fatalf("cloned %s = %q, want %q", opt, got, want)
		}
	}
	if clone.MustEval(`pack info .`) != app.MustEval(`pack info .`) {
		t.Fatal("cloned layout differs")
	}
}

// TestNewAppErrors covers construction failure paths.
func TestNewAppErrors(t *testing.T) {
	if _, err := core.NewApp(core.Options{Name: "x", Display: "127.0.0.1:1"}); err == nil {
		t.Fatal("connecting to a dead display should fail")
	}
}

// TestScreenshotErrors covers the PPM helper's failure paths.
func TestScreenshotErrors(t *testing.T) {
	app, _ := newApp(t, "shot")
	if err := app.ScreenshotPPM(".nosuch", "/tmp/never.ppm"); err == nil {
		t.Fatal("bad window should fail")
	}
	if err := app.ScreenshotPPM(".", "/nonexistent-dir/x.ppm"); err == nil {
		t.Fatal("bad path should fail")
	}
}
