// Package core assembles the full system of the paper: the Tcl
// interpreter (internal/tcl), a display connection (internal/xclient,
// against a real or in-process simulated server from internal/xserver),
// the Tk intrinsics (internal/tk) and the widget set (internal/widget).
// It is what wish, the examples, the integration tests and the benchmark
// harness use: one call builds an application with every Tcl command
// registered, ready for scripts like the paper's Figure 9 browser.
package core

import (
	"fmt"
	"net"
	"os"

	"repro/internal/obs/trace"
	"repro/internal/obs/xtrace"
	"repro/internal/tcl"
	"repro/internal/tk"
	"repro/internal/widget"
	"repro/internal/xclient"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

// traceDepth is how many decoded protocol lines a -trace tracer
// retains: enough for a whole interactive session's recent history
// without unbounded growth.
const traceDepth = 4096

// spanDepth is how many request spans a -spans tracer retains. A
// sampled request produces a handful of spans, so this covers the last
// ~2000 sampled requests.
const spanDepth = 8192

// Options configures NewApp.
type Options struct {
	// Name is the application's name in the send registry.
	Name string
	// Display is a TCP address of a display server (cmd/xsimd). Empty
	// means "create a private in-process server".
	Display string
	// Session names the virtual display to attach when Display points at
	// a session farm (xsimd -sessions, docs/farm.md); empty selects the
	// farm's default session. A plain single-display server ignores the
	// attach, so setting it is always safe. Unused for private servers.
	Session string
	// ScreenWidth/ScreenHeight size the private server's screen.
	ScreenWidth, ScreenHeight int
	// Interp optionally supplies an existing interpreter.
	Interp *tcl.Interp
	// Trace taps a wire tracer into the display connection (wish
	// -trace); the trace is readable via App.Tracer and the tkstats
	// Tcl command.
	Trace bool
	// SpanInterval, when positive, enables request-span tracing (wish
	// -spans): one request in SpanInterval is sampled into App.Spans.
	// With a private server the same tracer is attached server-side, so
	// each sampled request carries both its client and server spans;
	// against a shared display only the client half is recorded (start
	// the server with its own tracer — xsimd -span-interval — for the
	// other half).
	SpanInterval int
	// WireV2 negotiates the v2 wire protocol (compressed, delta-encoded
	// segments with latency-adaptive batching; wish -wire v2). Ignored
	// when Trace is set: the wire tracer decodes raw v1 framing, so a
	// traced connection always speaks v1.
	WireV2 bool
}

// App is a complete Tk application plus the infrastructure it runs on.
type App struct {
	*tk.App
	Server *xserver.Server // non-nil when the server is private
}

// NewApp builds an application: server (private unless Options.Display
// points at a shared one), display connection, interpreter, intrinsics
// and widgets.
func NewApp(opts Options) (*App, error) {
	if opts.Name == "" {
		opts.Name = "tk"
	}
	if opts.ScreenWidth == 0 {
		opts.ScreenWidth = 1024
	}
	if opts.ScreenHeight == 0 {
		opts.ScreenHeight = 768
	}
	var (
		conn net.Conn
		srv  *xserver.Server
		err  error
	)
	if opts.Display != "" {
		conn, err = net.Dial("tcp", opts.Display)
		if err != nil {
			return nil, fmt.Errorf("cannot connect to display %q: %w", opts.Display, err)
		}
	} else {
		srv = xserver.New(opts.ScreenWidth, opts.ScreenHeight)
		conn = srv.ConnectPipe()
	}
	// The tracer taps the raw connection, below xclient, so it sees the
	// exact bytes that would cross a process boundary.
	var tracer *xtrace.Tracer
	if opts.Trace {
		tracer = xtrace.New(traceDepth)
		conn = tracer.Tap(conn)
	}
	var spans *trace.Tracer
	if opts.SpanInterval > 0 {
		spans = trace.New(spanDepth, opts.SpanInterval)
		if srv != nil {
			srv.SetTracer(spans)
		}
	}
	// The wire tracer only decodes v1 framing, so tracing forces v1
	// (documented on Options.WireV2).
	wire := xclient.WireV1
	if opts.WireV2 && !opts.Trace {
		wire = xclient.WireV2
	}
	var d *xclient.Display
	if opts.Display != "" {
		// Remote displays get the session handshake (harmless when the
		// server is a plain single display); the attach frame crosses the
		// tracer tap like any other request, so a -trace log shows it.
		d, err = xclient.OpenWith(conn, xclient.Config{Session: opts.Session, Attach: true, Wire: wire})
	} else {
		d, err = xclient.OpenWith(conn, xclient.Config{Wire: wire})
	}
	if err != nil {
		if srv != nil {
			srv.Close()
		}
		return nil, err
	}
	if spans != nil {
		d.SetTracer(spans)
	}
	tkApp, err := tk.NewApp(d, tk.Config{Name: opts.Name, Interp: opts.Interp, Trace: tracer, Spans: spans})
	if err != nil {
		d.Close()
		if srv != nil {
			srv.Close()
		}
		return nil, err
	}
	widget.Register(tkApp)
	return &App{App: tkApp, Server: srv}, nil
}

// NewAppOnServer builds an application on an existing in-process server
// (several applications sharing one display, for send/selection work).
func NewAppOnServer(srv *xserver.Server, name string, interp *tcl.Interp) (*App, error) {
	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		return nil, err
	}
	tkApp, err := tk.NewApp(d, tk.Config{Name: name, Interp: interp})
	if err != nil {
		d.Close()
		return nil, err
	}
	widget.Register(tkApp)
	return &App{App: tkApp}, nil
}

// Close tears the application down, including the private server if one
// was created.
func (a *App) Close() {
	a.App.Destroy()
	a.App.Disp.Close()
	if a.Server != nil {
		a.Server.Close()
	}
}

// ScreenshotPPM captures a window (or the whole screen with path "")
// and writes it to filename as a binary PPM image — how this repo
// regenerates the paper's Figure 10 screen dump.
func (a *App) ScreenshotPPM(path, filename string) error {
	win := xproto.None
	if path != "" {
		w, err := a.NameToWindow(path)
		if err != nil {
			return err
		}
		win = w.XID
	}
	shot, err := a.Disp.Screenshot(win)
	if err != nil {
		return err
	}
	f, err := os.Create(filename)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "P6\n%d %d\n255\n", shot.Width, shot.Height); err != nil {
		return err
	}
	_, err = f.Write(shot.Pixels)
	return err
}
