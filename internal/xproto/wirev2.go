// Wire protocol v2: the LBX-style upgrade negotiated at connection
// setup (docs/pipelining.md, "Wire protocol v2"). The v1 framing stays
// the outer transport — v2 rides entirely inside it, as OpWireSeg
// request frames (client→server) and KindWireSeg messages
// (server→client) whose payload is a checksummed segment envelope:
//
//	[u8 flags][u32 crc32c(raw)][u32 rawLen][body]
//
// flags bit 0 marks the body flate-compressed; otherwise the body is
// the raw bytes verbatim (the incompressible-segment passthrough). The
// CRC is verified over the reconstructed raw bytes before any inner
// frame is handed to a dispatcher, so corruption inside a segment is
// always a clean connection error, never a silently garbled request.
//
// Client→server, the raw bytes are a sequence of tagged inner frames:
//
//	[u8 0][u16 op][u32 len][payload]                                  raw
//	[u8 1][u16 op][u8 cachesum][uvarint newLen][uvarint dLen][ops]    delta
//
// A delta frame reconstructs its payload against the connection's
// per-opcode cache of the last payload seen for that opcode (the
// PolyFillRectangle-storm optimisation): ops is a run of
// [uvarint copyLen][uvarint litLen][lit bytes] pairs applied at a
// running offset. Both sides update the cache identically — every
// inner frame with a payload of at most DeltaMaxPayload bytes replaces
// the cache entry for its opcode, delta or not — and the encoder stamps
// the checksum of the cached frame it encoded against, so any cache
// desync is detected before a wrong payload is dispatched.
//
// Server→client, the raw bytes are plain v1 server frames
// ([u8 kind][u32 len][payload]) concatenated — compression only, no
// delta — so the server may freely mix small unwrapped frames with
// wrapped segments on the same stream.
package xproto

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Wire-upgrade opcodes. Like OpAttachSession, both are consumed by the
// server's request loop without being assigned a sequence number, so
// the client/server seq lockstep (which span sampling correlates on)
// is untouched by the upgrade.
const (
	// OpUpgradeWire is the capability exchange: the client writes it raw
	// before reading the setup block, the server answers with a
	// KindWireAck frame immediately after the setup block.
	OpUpgradeWire uint16 = 206
	// OpWireSeg carries one v2 segment envelope of batched requests.
	OpWireSeg uint16 = 207
)

// Server-to-client message kinds added by v2.
const (
	// KindWireAck answers OpUpgradeWire: [u8 version][u8 caps]. Version
	// 2 accepts the upgrade with the granted capability set; version 1
	// declines it and the connection continues in v1 framing.
	KindWireAck byte = 3
	// KindWireSeg carries one v2 segment envelope of batched server
	// frames.
	KindWireSeg byte = 4
)

// Capability bits exchanged in UpgradeWireReq / KindWireAck.
const (
	// WireCapCompress enables per-segment flate compression.
	WireCapCompress byte = 1 << 0
	// WireCapDelta enables request delta encoding against the
	// per-connection frame cache (client→server direction only).
	WireCapDelta byte = 1 << 1
)

// DeltaMaxPayload bounds the payloads the delta cache retains: frames
// larger than this (bulk transfers, screenshots) are poor delta
// candidates and would bloat the per-connection cache, so they are
// always shipped raw and leave the cache entry for their opcode
// untouched — on both sides, identically.
const DeltaMaxPayload = 4096

// minCompressSize is the segment size below which compression is not
// attempted: the flate header alone eats most of the win.
const minCompressSize = 64

// segFlagCompressed marks a segment envelope whose body is
// flate-compressed.
const segFlagCompressed byte = 1 << 0

// Inner-frame tags (client→server segments).
const (
	innerRaw   byte = 0
	innerDelta byte = 1
)

// UpgradeWireReq is the v2 capability exchange (OpUpgradeWire). The
// client sends it raw before reading the setup block; the server
// consumes it without assigning a sequence number and answers with a
// KindWireAck frame. Caps is the capability set the client offers; the
// ack carries the (possibly narrowed) set the server granted.
type UpgradeWireReq struct {
	Version uint8
	Caps    uint8
}

func (q *UpgradeWireReq) Op() uint16 { return OpUpgradeWire }
func (q *UpgradeWireReq) Encode(w *Writer) {
	w.PutU8(q.Version)
	w.PutU8(q.Caps)
}
func (q *UpgradeWireReq) Decode(r *Reader) {
	q.Version = r.U8()
	q.Caps = r.U8()
}

// WireSegReq is one v2 segment envelope of batched requests
// (OpWireSeg). It exists so the opcode has a complete Request type; the
// server's request loop intercepts and decodes segments before generic
// dispatch ever sees one, exactly as it intercepts the attach and
// upgrade handshakes.
type WireSegReq struct{ Seg []byte }

func (q *WireSegReq) Op() uint16       { return OpWireSeg }
func (q *WireSegReq) Encode(w *Writer) { w.PutBytes(q.Seg) }
func (q *WireSegReq) Decode(r *Reader) {
	q.Seg = append([]byte(nil), r.ByteSlice()...)
}

// castagnoliTable is the CRC-32C polynomial table used by segment
// envelopes (hardware-accelerated on the platforms that matter).
var castagnoliTable = crc32.MakeTable(crc32.Castagnoli)

// flateWriterPool recycles compressors across segments; Reset rebinds
// one to the current output in O(1).
var flateWriterPool = sync.Pool{
	New: func() any {
		fw, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return fw
	},
}

// flateReaderPool recycles decompressors; every flate.NewReader
// satisfies flate.Resetter.
var flateReaderPool = sync.Pool{
	New: func() any { return flate.NewReader(bytes.NewReader(nil)) },
}

// sliceWriter lets a pooled flate.Writer append to a caller-owned
// buffer without an intermediate copy.
type sliceWriter struct{ buf []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}

// appendSegmentPayload appends the segment envelope for raw to dst,
// flate-compressing the body when tryCompress is set and the result is
// actually smaller (the passthrough keeps incompressible or tiny
// segments verbatim). compressed reports which body form was emitted.
func appendSegmentPayload(dst, raw []byte, tryCompress bool) (out []byte, compressed bool) {
	flagAt := len(dst)
	dst = append(dst, 0)
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(raw, castagnoliTable))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(raw)))
	bodyAt := len(dst)
	if tryCompress && len(raw) >= minCompressSize {
		sw := &sliceWriter{buf: dst}
		fw := flateWriterPool.Get().(*flate.Writer)
		fw.Reset(sw)
		fw.Write(raw) //nolint:errcheck — sliceWriter cannot fail
		fw.Close()    //nolint:errcheck
		flateWriterPool.Put(fw)
		dst = sw.buf
		if len(dst)-bodyAt < len(raw) {
			dst[flagAt] = segFlagCompressed
			return dst, true
		}
		dst = dst[:bodyAt]
	}
	dst = append(dst, raw...)
	return dst, false
}

// AppendWireSegRequestFrame appends a complete outer OpWireSeg request
// frame carrying raw (a concatenation of inner request frames) to dst.
// compressed reports whether the segment body was flate-encoded.
func AppendWireSegRequestFrame(dst, raw []byte, tryCompress bool) (out []byte, compressed bool) {
	dst = binary.BigEndian.AppendUint16(dst, OpWireSeg)
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst, compressed = appendSegmentPayload(dst, raw, tryCompress)
	binary.BigEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst, compressed
}

// AppendWireSegServerFrame appends a complete outer KindWireSeg server
// frame carrying raw (a concatenation of v1 server frames) to dst.
func AppendWireSegServerFrame(dst, raw []byte, tryCompress bool) (out []byte, compressed bool) {
	dst = append(dst, KindWireSeg)
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst, compressed = appendSegmentPayload(dst, raw, tryCompress)
	binary.BigEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst, compressed
}

// DecodeSegmentPayload unwraps a segment envelope, verifying the
// declared length and the CRC before a single reconstructed byte is
// trusted. The returned raw bytes alias scratch when the body was
// compressed (scratch is grown as needed and returned for reuse) and
// alias payload itself on the passthrough path; either way they are
// valid only until the caller's next read into those buffers.
func DecodeSegmentPayload(payload, scratch []byte) (raw, newScratch []byte, err error) {
	if len(payload) < 9 {
		return nil, scratch, fmt.Errorf("xproto: short v2 segment envelope (%d bytes)", len(payload))
	}
	flags := payload[0]
	wantCRC := binary.BigEndian.Uint32(payload[1:5])
	rawLen := binary.BigEndian.Uint32(payload[5:9])
	body := payload[9:]
	if flags&^segFlagCompressed != 0 {
		return nil, scratch, fmt.Errorf("xproto: unknown v2 segment flags %#02x", flags)
	}
	if rawLen > 64<<20 {
		return nil, scratch, fmt.Errorf("xproto: oversized v2 segment (%d bytes)", rawLen)
	}
	if flags&segFlagCompressed == 0 {
		if uint32(len(body)) != rawLen {
			return nil, scratch, fmt.Errorf("xproto: v2 segment length mismatch (%d declared, %d present)", rawLen, len(body))
		}
		raw = body
	} else {
		if uint32(cap(scratch)) < rawLen {
			scratch = make([]byte, rawLen)
		}
		raw = scratch[:rawLen]
		fr := flateReaderPool.Get().(io.ReadCloser)
		fr.(flate.Resetter).Reset(bytes.NewReader(body), nil) //nolint:errcheck
		_, rerr := io.ReadFull(fr, raw)
		if rerr == nil {
			// The body must decode to exactly rawLen bytes; trailing
			// data means the envelope lied about its contents.
			var one [1]byte
			if n, eerr := fr.Read(one[:]); n != 0 || (eerr != nil && eerr != io.EOF) {
				if n != 0 {
					rerr = fmt.Errorf("xproto: v2 segment decodes past its declared %d bytes", rawLen)
				} else {
					rerr = eerr
				}
			}
		}
		flateReaderPool.Put(fr)
		if rerr != nil {
			return nil, scratch, fmt.Errorf("xproto: v2 segment decompression: %w", rerr)
		}
	}
	if crc32.Checksum(raw, castagnoliTable) != wantCRC {
		return nil, scratch, fmt.Errorf("xproto: v2 segment checksum mismatch")
	}
	return raw, scratch, nil
}

// WalkServerFrames iterates the v1 server frames concatenated inside a
// decoded server→client segment, invoking fn for each. The payload
// passed to fn aliases raw.
func WalkServerFrames(raw []byte, fn func(kind byte, payload []byte) error) error {
	for len(raw) > 0 {
		if len(raw) < 5 {
			return fmt.Errorf("xproto: truncated frame header inside v2 segment")
		}
		kind := raw[0]
		n := binary.BigEndian.Uint32(raw[1:5])
		if uint64(n) > uint64(len(raw)-5) {
			return fmt.Errorf("xproto: truncated frame inside v2 segment (%d declared, %d present)", n, len(raw)-5)
		}
		if err := fn(kind, raw[5:5+n]); err != nil {
			return err
		}
		raw = raw[5+n:]
	}
	return nil
}

// deltaEntry is one cached frame: the last payload seen for an opcode
// and its fold, stamped into delta frames so a cache desync is caught
// at decode time instead of dispatching a wrong reconstruction.
type deltaEntry struct {
	data []byte
	sum  byte
}

// DeltaCache is the per-connection request-frame cache the delta codec
// encodes against. Each side of a connection owns one (the client for
// encoding, the server for decoding) and updates it by identical rules,
// so the two stay in lockstep without any cache-control traffic. Not
// safe for concurrent use; callers serialize through their own locks
// (the client's writer lock, the server's per-connection request loop).
type DeltaCache struct {
	entries map[uint16]*deltaEntry
	scratch []byte // encoder: delta ops; decoder: reconstructed payloads
}

// NewDeltaCache returns an empty cache.
func NewDeltaCache() *DeltaCache {
	return &DeltaCache{entries: make(map[uint16]*deltaEntry)}
}

// deltaSum folds a payload to the one-byte checksum stamped into delta
// frames. It only needs to make accidental cache desync detectable, not
// resist adversaries — the envelope CRC already covers the wire.
func deltaSum(p []byte) byte {
	s := byte(len(p))
	for _, b := range p {
		s = s<<1 | s>>7
		s ^= b
	}
	return s
}

// update replaces the cache entry for op — the shared rule both sides
// apply after every inner frame (see DeltaMaxPayload).
func (dc *DeltaCache) update(op uint16, payload []byte) {
	if len(payload) > DeltaMaxPayload {
		return
	}
	e := dc.entries[op]
	if e == nil {
		e = &deltaEntry{}
		dc.entries[op] = e
	}
	e.data = append(e.data[:0], payload...)
	e.sum = deltaSum(payload)
}

// appendDeltaOps encodes new against old as [uvarint copyLen]
// [uvarint litLen][literals] pairs applied at a running offset. Copies
// only span aligned common prefixes of the two frames' tails — exactly
// the shape repeated PolyFillRectangle/PolyText8 frames have (same
// drawable and GC, a few coordinates changed). A pure-copy tail is
// implicit: when the ops run out short of newLen, the decoder copies
// the remainder from the cached frame, so the common "only a few bytes
// in the middle changed" frame costs no trailing op pair (and an exact
// repeat costs zero ops).
func appendDeltaOps(dst, old, new []byte) []byte {
	pos := 0
	for pos < len(new) {
		c := pos
		for c < len(new) && c < len(old) && new[c] == old[c] {
			c++
		}
		if c == len(new) {
			// The rest matches the cached frame byte for byte: leave it
			// to the decoder's implicit tail copy.
			break
		}
		// Literal run: until the next aligned match of at least 4 bytes
		// (shorter matches cost more to frame than to inline).
		lit := c
		for lit < len(new) {
			if lit < len(old) && new[lit] == old[lit] {
				run := 1
				for lit+run < len(new) && lit+run < len(old) && run < 4 && new[lit+run] == old[lit+run] {
					run++
				}
				if run >= 4 {
					break
				}
			}
			lit++
		}
		dst = binary.AppendUvarint(dst, uint64(c-pos))
		dst = binary.AppendUvarint(dst, uint64(lit-c))
		dst = append(dst, new[c:lit]...)
		pos = lit
	}
	return dst
}

// applyDeltaOps reconstructs a payload of newLen bytes from old and the
// delta ops, appending to dst. Every length is bounds-checked before
// use so corrupt ops fail cleanly.
func applyDeltaOps(dst, old, ops []byte, newLen int) ([]byte, error) {
	pos := 0
	for len(ops) > 0 {
		cl, n := binary.Uvarint(ops)
		if n <= 0 {
			return nil, fmt.Errorf("xproto: malformed delta copy length")
		}
		ops = ops[n:]
		ll, n := binary.Uvarint(ops)
		if n <= 0 {
			return nil, fmt.Errorf("xproto: malformed delta literal length")
		}
		ops = ops[n:]
		// Reject oversized lengths before any arithmetic: cl and ll come
		// straight off the wire and may be arbitrary uvarints.
		if cl > uint64(newLen) || ll > uint64(newLen) || uint64(pos)+cl+ll > uint64(newLen) {
			return nil, fmt.Errorf("xproto: delta reconstruction beyond declared length")
		}
		if ll > uint64(len(ops)) {
			return nil, fmt.Errorf("xproto: delta literals beyond frame")
		}
		if cl > 0 {
			if pos > len(old) || cl > uint64(len(old)-pos) {
				return nil, fmt.Errorf("xproto: delta copy beyond cached frame")
			}
			dst = append(dst, old[pos:pos+int(cl)]...)
			pos += int(cl)
		}
		dst = append(dst, ops[:ll]...)
		ops = ops[ll:]
		pos += int(ll)
	}
	if pos < newLen {
		// Implicit tail copy: the encoder omits a trailing pure-copy op,
		// so the remainder comes verbatim from the cached frame.
		if newLen > len(old) {
			return nil, fmt.Errorf("xproto: delta tail copy beyond cached frame")
		}
		dst = append(dst, old[pos:newLen]...)
		pos = newLen
	}
	if pos != newLen {
		return nil, fmt.Errorf("xproto: delta reconstructed %d bytes, declared %d", pos, newLen)
	}
	return dst, nil
}

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendInnerRequestFrame appends one v2 inner request frame for
// (op, payload) to buf, choosing the delta form when dc has a cached
// frame for op and the delta actually comes out smaller; a nil dc
// disables delta entirely (the server declined WireCapDelta). usedDelta
// reports which form was emitted. The cache is updated after encoding,
// mirroring the decoder.
func AppendInnerRequestFrame(buf []byte, op uint16, payload []byte, dc *DeltaCache) (out []byte, usedDelta bool) {
	if dc != nil {
		if e := dc.entries[op]; e != nil && len(payload) <= DeltaMaxPayload {
			dc.scratch = appendDeltaOps(dc.scratch[:0], e.data, payload)
			// Delta framing costs 4 bytes plus two uvarints (1 byte each
			// for the payloads the cache admits), raw framing 7 plus the
			// full payload — so the delta form wins whenever the ops are
			// meaningfully shorter than the payload.
			hdr := 4 + uvarintLen(uint64(len(payload))) + uvarintLen(uint64(len(dc.scratch)))
			if hdr+len(dc.scratch) < 7+len(payload) {
				buf = append(buf, innerDelta)
				buf = binary.BigEndian.AppendUint16(buf, op)
				buf = append(buf, e.sum)
				buf = binary.AppendUvarint(buf, uint64(len(payload)))
				buf = binary.AppendUvarint(buf, uint64(len(dc.scratch)))
				buf = append(buf, dc.scratch...)
				usedDelta = true
			}
		}
	}
	if !usedDelta {
		buf = append(buf, innerRaw)
		buf = binary.BigEndian.AppendUint16(buf, op)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
		buf = append(buf, payload...)
	}
	if dc != nil {
		dc.update(op, payload)
	}
	return buf, usedDelta
}

// DecodeRequestSegment walks the inner request frames of a decoded
// client→server segment, reconstructing delta frames against the cache
// and invoking fn for each. The payload passed to fn aliases raw or the
// cache's reconstruction scratch and is valid only until fn returns
// (the same contract as ReadRequestFrameInto — request Decode copies
// what it retains). Any framing damage, unknown tag, checksum mismatch
// or reconstruction failure aborts the walk with an error; the caller
// must treat that as fatal to the connection, because the cache state
// is no longer trustworthy.
func (dc *DeltaCache) DecodeRequestSegment(raw []byte, fn func(op uint16, payload []byte) error) error {
	for len(raw) > 0 {
		switch raw[0] {
		case innerRaw:
			if len(raw) < 7 {
				return fmt.Errorf("xproto: truncated inner frame header")
			}
			op := binary.BigEndian.Uint16(raw[1:3])
			n := binary.BigEndian.Uint32(raw[3:7])
			if uint64(n) > uint64(len(raw)-7) {
				return fmt.Errorf("xproto: truncated inner frame (%d declared, %d present)", n, len(raw)-7)
			}
			payload := raw[7 : 7+n]
			if err := fn(op, payload); err != nil {
				return err
			}
			dc.update(op, payload)
			raw = raw[7+n:]
		case innerDelta:
			if len(raw) < 6 {
				return fmt.Errorf("xproto: truncated delta frame header")
			}
			op := binary.BigEndian.Uint16(raw[1:3])
			sum := raw[3]
			rest := raw[4:]
			newLen64, n := binary.Uvarint(rest)
			if n <= 0 {
				return fmt.Errorf("xproto: malformed delta frame length")
			}
			rest = rest[n:]
			dLen64, n := binary.Uvarint(rest)
			if n <= 0 {
				return fmt.Errorf("xproto: malformed delta ops length")
			}
			rest = rest[n:]
			if dLen64 > uint64(len(rest)) {
				return fmt.Errorf("xproto: truncated delta frame (%d declared, %d present)", dLen64, len(rest))
			}
			newLen, dLen := uint32(newLen64), uint32(dLen64)
			if newLen64 > DeltaMaxPayload {
				return fmt.Errorf("xproto: delta frame declares %d bytes, cache limit is %d", newLen64, DeltaMaxPayload)
			}
			e := dc.entries[op]
			if e == nil {
				return fmt.Errorf("xproto: delta frame for %s with no cached frame", OpName(op))
			}
			if e.sum != sum {
				return fmt.Errorf("xproto: delta cache desync on %s (checksum %#02x, cached %#02x)", OpName(op), sum, e.sum)
			}
			var err error
			dc.scratch, err = applyDeltaOps(dc.scratch[:0], e.data, rest[:dLen], int(newLen))
			if err != nil {
				return err
			}
			payload := dc.scratch
			if err := fn(op, payload); err != nil {
				return err
			}
			dc.update(op, payload)
			raw = rest[dLen:]
		default:
			return fmt.Errorf("xproto: unknown inner frame tag %#02x", raw[0])
		}
	}
	return nil
}
