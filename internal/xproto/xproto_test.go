package xproto

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestWriterReaderPrimitives(t *testing.T) {
	w := NewWriter()
	w.PutU8(0xab)
	w.PutU16(0x1234)
	w.PutU32(0xdeadbeef)
	w.PutU64(0x0123456789abcdef)
	w.PutI16(-42)
	w.PutI32(-100000)
	w.PutBool(true)
	w.PutString("hello")
	w.PutBytes([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if r.U8() != 0xab || r.U16() != 0x1234 || r.U32() != 0xdeadbeef ||
		r.U64() != 0x0123456789abcdef || r.I16() != -42 || r.I32() != -100000 ||
		!r.Bool() || r.String() != "hello" {
		t.Fatal("primitive round trip failed")
	}
	if !bytes.Equal(r.ByteSlice(), []byte{1, 2, 3}) {
		t.Fatal("bytes round trip failed")
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
}

func TestReaderShortMessage(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U32()
	if r.Err() == nil {
		t.Fatal("short read should set error")
	}
	// Further reads return zero without panicking.
	if r.U8() != 0 || r.String() != "" {
		t.Fatal("reads after error should be zero")
	}
}

func TestFraming(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequestFrame(&buf, OpMapWindow, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	op, payload, err := ReadRequestFrame(&buf)
	if err != nil || op != OpMapWindow || string(payload) != "payload" {
		t.Fatalf("request frame: %d %q %v", op, payload, err)
	}
	buf.Reset()
	if err := WriteServerFrame(&buf, KindEvent, []byte("ev")); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := ReadServerFrame(&buf)
	if err != nil || kind != KindEvent || string(payload) != "ev" {
		t.Fatalf("server frame: %d %q %v", kind, payload, err)
	}
}

// TestEventRoundTrip property: any event encodes and decodes identically.
func TestEventRoundTrip(t *testing.T) {
	f := func(typ uint8, win, sub uint32, detail uint32, x, y int16,
		state uint16, tme uint32, wd, ht uint16, atom uint32, data string) bool {
		ev := Event{
			Type: typ, Window: ID(win), Subwindow: ID(sub), Detail: detail,
			Keysym: Keysym(detail), X: x, Y: y, RootX: x + 1, RootY: y + 1,
			State: state, Time: tme, Width: wd, Height: ht,
			Atom: Atom(atom), Selection: Atom(atom + 1), Target: Atom(atom + 2),
			Property: Atom(atom + 3), Requestor: ID(win + 1),
			Count: 2, BorderWidth: 3, PropState: 1, SendEvent: true, Data: data,
		}
		w := NewWriter()
		ev.Encode(w)
		var got Event
		got.Decode(NewReader(w.Bytes()))
		return reflect.DeepEqual(ev, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRequestRoundTrips checks that every request type decodes to an
// identical value after encoding.
func TestRequestRoundTrips(t *testing.T) {
	reqs := []Request{
		&CreateWindowReq{Wid: 5, Parent: 1, X: -3, Y: 7, Width: 100, Height: 50,
			BorderWidth: 2, Background: 0xffffff, Border: 0x123456,
			EventMask: ExposureMask, OverrideRedirect: true},
		&ChangeWindowAttributesReq{Window: 9, Mask: AttrEventMask | AttrCursor,
			EventMask: KeyPressMask, Cursor: 77},
		&DestroyWindowReq{Window: 4},
		&MapWindowReq{Window: 4},
		&UnmapWindowReq{Window: 4},
		&ConfigureWindowReq{Window: 4, Mask: CWX | CWWidth, X: 10, Width: 20, StackMode: StackBelow},
		&GetGeometryReq{Drawable: 8},
		&QueryTreeReq{Window: 1},
		&InternAtomReq{Name: "FOO", OnlyIfExists: true},
		&GetAtomNameReq{Atom: 42},
		&ChangePropertyReq{Window: 2, Property: 3, Type: AtomString, Mode: PropModeAppend, Data: []byte("hi")},
		&DeletePropertyReq{Window: 2, Property: 3},
		&GetPropertyReq{Window: 2, Property: 3, Delete: true},
		&ListPropertiesReq{Window: 2},
		&SetSelectionOwnerReq{Selection: AtomPrimary, Owner: 6, Time: 99},
		&GetSelectionOwnerReq{Selection: AtomPrimary},
		&ConvertSelectionReq{Selection: 1, Target: 3, Property: 9, Requestor: 4, Time: 2},
		&SendEventReq{Destination: 7, EventMask: 0, Event: Event{Type: ClientMessage, Data: "x"}},
		&QueryPointerReq{},
		&SetInputFocusReq{Focus: 3},
		&GetInputFocusReq{},
		&OpenFontReq{Fid: 11, Name: "fixed"},
		&CloseFontReq{Fid: 11},
		&QueryFontReq{Fid: 11},
		&CreatePixmapReq{Pid: 12, Width: 64, Height: 32},
		&FreePixmapReq{Pid: 12},
		&CreateGCReq{Gid: 13, Mask: GCForeground, Foreground: 0xff0000},
		&ChangeGCReq{Gid: 13, Mask: GCFont, Font: 11},
		&FreeGCReq{Gid: 13},
		&ClearAreaReq{Window: 2, X: 1, Y: 2, Width: 3, Height: 4},
		&CopyAreaReq{Src: 1, Dst: 2, Gc: 3, SrcX: 4, SrcY: 5, DstX: 6, DstY: 7, Width: 8, Height: 9},
		&PolyLineReq{Drawable: 1, Gc: 2, Points: []Point{{1, 2}, {3, 4}}},
		&PolySegmentReq{Drawable: 1, Gc: 2, Points: []Point{{1, 2}, {3, 4}}},
		&PolyRectangleReq{Drawable: 1, Gc: 2, Rects: []Rect{{1, 2, 3, 4}}},
		&FillPolyReq{Drawable: 1, Gc: 2, Points: []Point{{0, 0}, {5, 0}, {0, 5}}},
		&PolyFillRectangleReq{Drawable: 1, Gc: 2, Rects: []Rect{{1, 2, 3, 4}, {5, 6, 7, 8}}},
		&PolyText8Req{Drawable: 1, Gc: 2, X: 3, Y: 4, Text: "hello"},
		&ImageText8Req{Drawable: 1, Gc: 2, X: 3, Y: 4, Text: "hello"},
		&AllocColorReq{R: 1, G: 2, B: 3},
		&AllocNamedColorReq{Name: "red"},
		&CreateCursorReq{Cid: 14, Shape: "coffee_mug"},
		&BellReq{},
		&FakeInputReq{Kind: FakeKeyPress, Detail: 0xff1b},
		&ScreenshotReq{Window: 1},
		&PingReq{},
		&SetLatencyReq{Micros: 500},
		&QueryCountersReq{},
	}
	for _, req := range reqs {
		w := NewWriter()
		req.Encode(w)
		fresh := NewRequest(req.Op())
		if fresh == nil {
			t.Fatalf("NewRequest(%d) returned nil", req.Op())
		}
		r := NewReader(w.Bytes())
		fresh.Decode(r)
		if r.Err() != nil {
			t.Fatalf("%T decode error: %v", req, r.Err())
		}
		if !reflect.DeepEqual(req, fresh) {
			t.Fatalf("%T round trip: %#v != %#v", req, req, fresh)
		}
	}
}

func TestHasReplyMatchesRegistry(t *testing.T) {
	// Every opcode with a reply must have a NewRequest factory.
	for op := uint16(1); op < 210; op++ {
		if HasReply(op) && NewRequest(op) == nil {
			t.Errorf("opcode %d has a reply but no request factory", op)
		}
	}
}

func TestKeysyms(t *testing.T) {
	cases := []struct {
		name string
		ks   Keysym
	}{
		{"a", 'a'}, {"Z", 'Z'}, {"space", KsSpace}, {"Escape", KsEscape},
		{"Return", KsReturn}, {"BackSpace", KsBackSpace}, {"Control_L", KsControlL},
	}
	for _, c := range cases {
		ks, ok := KeysymFromName(c.name)
		if !ok || ks != c.ks {
			t.Errorf("KeysymFromName(%q) = %v %v", c.name, ks, ok)
		}
	}
	if _, ok := KeysymFromName("NotAKey"); ok {
		t.Error("bogus keysym resolved")
	}
	if KeysymName(KsEscape) != "Escape" || KeysymName('q') != "q" || KeysymName(KsSpace) != "space" {
		t.Error("KeysymName round trip")
	}
	// Modifier classification.
	if !IsModifierKeysym(KsShiftL) || IsModifierKeysym('a') {
		t.Error("IsModifierKeysym")
	}
	if KeysymModifier(KsControlR) != ControlMask || KeysymModifier('x') != 0 {
		t.Error("KeysymModifier")
	}
}

func TestKeysymRune(t *testing.T) {
	if KeysymRune('a', 0) != "a" {
		t.Error("plain letter")
	}
	if KeysymRune('a', ShiftMask) != "A" {
		t.Error("shifted letter")
	}
	if KeysymRune('1', ShiftMask) != "!" {
		t.Error("shifted digit")
	}
	if KeysymRune(KsReturn, 0) != "\n" {
		t.Error("return")
	}
	if KeysymRune(KsEscape, 0) != "" {
		t.Error("escape should have no text")
	}
}

func TestEventMasks(t *testing.T) {
	if EventMaskFor(KeyPress) != KeyPressMask {
		t.Error("KeyPress mask")
	}
	if EventMaskFor(Expose) != ExposureMask {
		t.Error("Expose mask")
	}
	if EventMaskFor(SelectionNotify) != 0 {
		t.Error("selection events are unconditional")
	}
	if ButtonMask(1) != Button1Mask || ButtonMask(5) != Button5Mask || ButtonMask(9) != 0 {
		t.Error("ButtonMask")
	}
}
