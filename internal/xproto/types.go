package xproto

// ID identifies a server-side resource: window, pixmap, GC, font or
// cursor. ID 0 is None. Clients allocate IDs from a per-connection base
// handed out at connection setup, exactly as in X11.
type ID uint32

// None is the null resource ID.
const None ID = 0

// Atom is an interned string identifier.
type Atom uint32

// AtomNone is the null atom.
const AtomNone Atom = 0

// Predefined atoms, interned by the server at startup with these fixed
// values (like X11's pre-defined atoms).
const (
	AtomPrimary   Atom = 1 // PRIMARY selection
	AtomSecondary Atom = 2
	AtomString    Atom = 3  // STRING target type
	AtomWMName    Atom = 39 // WM_NAME
)

// PredefinedAtoms maps the fixed atom values to their names.
var PredefinedAtoms = map[Atom]string{
	AtomPrimary:   "PRIMARY",
	AtomSecondary: "SECONDARY",
	AtomString:    "STRING",
	AtomWMName:    "WM_NAME",
}

// Event types (values follow the X11 core protocol numbering).
const (
	KeyPress         = 2
	KeyRelease       = 3
	ButtonPress      = 4
	ButtonRelease    = 5
	MotionNotify     = 6
	EnterNotify      = 7
	LeaveNotify      = 8
	FocusIn          = 9
	FocusOut         = 10
	Expose           = 12
	CreateNotify     = 16
	DestroyNotify    = 17
	UnmapNotify      = 18
	MapNotify        = 19
	ConfigureNotify  = 22
	PropertyNotify   = 28
	SelectionClear   = 29
	SelectionRequest = 30
	SelectionNotify  = 31
	ClientMessage    = 33
	LASTEvent        = 36
)

// EventTypeName returns a human-readable name for an event type.
func EventTypeName(t int) string {
	names := map[int]string{
		KeyPress: "KeyPress", KeyRelease: "KeyRelease",
		ButtonPress: "ButtonPress", ButtonRelease: "ButtonRelease",
		MotionNotify: "MotionNotify", EnterNotify: "EnterNotify",
		LeaveNotify: "LeaveNotify", FocusIn: "FocusIn", FocusOut: "FocusOut",
		Expose: "Expose", CreateNotify: "CreateNotify",
		DestroyNotify: "DestroyNotify", UnmapNotify: "UnmapNotify",
		MapNotify: "MapNotify", ConfigureNotify: "ConfigureNotify",
		PropertyNotify: "PropertyNotify", SelectionClear: "SelectionClear",
		SelectionRequest: "SelectionRequest", SelectionNotify: "SelectionNotify",
		ClientMessage: "ClientMessage",
	}
	if n, ok := names[t]; ok {
		return n
	}
	return "Unknown"
}

// Event masks (X11 values). A client selects interest in events on a
// window by setting its event mask via ChangeWindowAttributes.
const (
	KeyPressMask         uint32 = 1 << 0
	KeyReleaseMask       uint32 = 1 << 1
	ButtonPressMask      uint32 = 1 << 2
	ButtonReleaseMask    uint32 = 1 << 3
	EnterWindowMask      uint32 = 1 << 4
	LeaveWindowMask      uint32 = 1 << 5
	PointerMotionMask    uint32 = 1 << 6
	ButtonMotionMask     uint32 = 1 << 13
	ExposureMask         uint32 = 1 << 15
	StructureNotifyMask  uint32 = 1 << 17
	SubstructureMask     uint32 = 1 << 19
	FocusChangeMask      uint32 = 1 << 21
	PropertyChangeMask   uint32 = 1 << 22
	SelectionNotifyFlag  uint32 = 1 << 23 // always delivered; flag unused
	AllEventsMask        uint32 = 0xFFFFFF
	NoEventMask          uint32 = 0
	DefaultSelectionMask        = ExposureMask | StructureNotifyMask
)

// EventMaskFor maps an event type to the mask that selects it.
func EventMaskFor(t int) uint32 {
	switch t {
	case KeyPress:
		return KeyPressMask
	case KeyRelease:
		return KeyReleaseMask
	case ButtonPress:
		return ButtonPressMask
	case ButtonRelease:
		return ButtonReleaseMask
	case MotionNotify:
		return PointerMotionMask
	case EnterNotify:
		return EnterWindowMask
	case LeaveNotify:
		return LeaveWindowMask
	case FocusIn, FocusOut:
		return FocusChangeMask
	case Expose:
		return ExposureMask
	case DestroyNotify, UnmapNotify, MapNotify, ConfigureNotify:
		return StructureNotifyMask
	case PropertyNotify:
		return PropertyChangeMask
	case SelectionClear, SelectionRequest, SelectionNotify, ClientMessage:
		// Delivered to the involved window's clients unconditionally.
		return 0
	}
	return 0
}

// Modifier and button state masks (X11 values), reported in Event.State.
const (
	ShiftMask   uint16 = 1 << 0
	LockMask    uint16 = 1 << 1
	ControlMask uint16 = 1 << 2
	Mod1Mask    uint16 = 1 << 3 // Meta / Alt
	Mod2Mask    uint16 = 1 << 4
	Button1Mask uint16 = 1 << 8
	Button2Mask uint16 = 1 << 9
	Button3Mask uint16 = 1 << 10
	Button4Mask uint16 = 1 << 11
	Button5Mask uint16 = 1 << 12
)

// ButtonMask returns the state mask bit for button n (1-5).
func ButtonMask(n int) uint16 {
	if n < 1 || n > 5 {
		return 0
	}
	return Button1Mask << uint(n-1)
}

// Keysym identifies a keyboard symbol. Printable ASCII keysyms equal
// their character codes, as in X11.
type Keysym uint32

// Non-ASCII keysyms (X11 values).
const (
	KsBackSpace Keysym = 0xff08
	KsTab       Keysym = 0xff09
	KsReturn    Keysym = 0xff0d
	KsEscape    Keysym = 0xff1b
	KsDelete    Keysym = 0xffff
	KsHome      Keysym = 0xff50
	KsLeft      Keysym = 0xff51
	KsUp        Keysym = 0xff52
	KsRight     Keysym = 0xff53
	KsDown      Keysym = 0xff54
	KsPrior     Keysym = 0xff55 // Page Up
	KsNext      Keysym = 0xff56 // Page Down
	KsEnd       Keysym = 0xff57
	KsF1        Keysym = 0xffbe
	KsShiftL    Keysym = 0xffe1
	KsShiftR    Keysym = 0xffe2
	KsControlL  Keysym = 0xffe3
	KsControlR  Keysym = 0xffe4
	KsMetaL     Keysym = 0xffe7
	KsMetaR     Keysym = 0xffe8
	KsAltL      Keysym = 0xffe9
	KsSpace     Keysym = 0x20
)

// keysymNames maps symbolic names (as used in bind event specifications,
// Figure 7 of the paper) to keysyms.
var keysymNames = map[string]Keysym{
	"BackSpace":  KsBackSpace,
	"Tab":        KsTab,
	"Return":     KsReturn,
	"Escape":     KsEscape,
	"Delete":     KsDelete,
	"Home":       KsHome,
	"Left":       KsLeft,
	"Up":         KsUp,
	"Right":      KsRight,
	"Down":       KsDown,
	"Prior":      KsPrior,
	"Next":       KsNext,
	"End":        KsEnd,
	"F1":         KsF1,
	"space":      KsSpace,
	"Shift_L":    KsShiftL,
	"Shift_R":    KsShiftR,
	"Control_L":  KsControlL,
	"Control_R":  KsControlR,
	"Meta_L":     KsMetaL,
	"Meta_R":     KsMetaR,
	"Alt_L":      KsAltL,
	"less":       '<',
	"greater":    '>',
	"comma":      ',',
	"period":     '.',
	"minus":      '-',
	"plus":       '+',
	"percent":    '%',
	"dollar":     '$',
	"asciitilde": '~',
}

// KeysymFromName resolves a keysym name: a single printable character
// stands for itself; otherwise the symbolic table is consulted.
func KeysymFromName(name string) (Keysym, bool) {
	if len(name) == 1 && name[0] >= 0x20 && name[0] < 0x7f {
		return Keysym(name[0]), true
	}
	ks, ok := keysymNames[name]
	return ks, ok
}

// KeysymName returns the symbolic name of a keysym, or the character
// itself for printable ASCII.
func KeysymName(ks Keysym) string {
	if ks == KsSpace {
		return "space"
	}
	if ks >= 0x21 && ks < 0x7f {
		return string(rune(ks))
	}
	for name, v := range keysymNames {
		if v == ks {
			return name
		}
	}
	return ""
}

// IsModifierKeysym reports whether ks is a modifier key.
func IsModifierKeysym(ks Keysym) bool {
	switch ks {
	case KsShiftL, KsShiftR, KsControlL, KsControlR, KsMetaL, KsMetaR, KsAltL:
		return true
	}
	return false
}

// KeysymModifier returns the state mask a modifier keysym contributes
// while held, or 0.
func KeysymModifier(ks Keysym) uint16 {
	switch ks {
	case KsShiftL, KsShiftR:
		return ShiftMask
	case KsControlL, KsControlR:
		return ControlMask
	case KsMetaL, KsMetaR, KsAltL:
		return Mod1Mask
	}
	return 0
}

// KeysymRune returns the text a key press inserts, applying the shift
// modifier to letters, and "" for non-printing keys.
func KeysymRune(ks Keysym, state uint16) string {
	if ks == KsReturn {
		return "\n"
	}
	if ks == KsTab {
		return "\t"
	}
	if ks < 0x20 || ks >= 0x7f {
		return ""
	}
	c := byte(ks)
	if state&ShiftMask != 0 {
		if c >= 'a' && c <= 'z' {
			c = c - 'a' + 'A'
		} else if sh, ok := shifted[c]; ok {
			c = sh
		}
	}
	return string(c)
}

// shifted maps unshifted US-keyboard characters to their shifted forms.
var shifted = map[byte]byte{
	'1': '!', '2': '@', '3': '#', '4': '$', '5': '%', '6': '^',
	'7': '&', '8': '*', '9': '(', '0': ')', '-': '_', '=': '+',
	'[': '{', ']': '}', '\\': '|', ';': ':', '\'': '"', ',': '<',
	'.': '>', '/': '?', '`': '~',
}

// Window stacking modes for ConfigureWindow.
const (
	StackAbove = 0
	StackBelow = 1
)

// ConfigureWindow value mask bits.
const (
	CWX           uint16 = 1 << 0
	CWY           uint16 = 1 << 1
	CWWidth       uint16 = 1 << 2
	CWHeight      uint16 = 1 << 3
	CWBorderWidth uint16 = 1 << 4
	CWStackMode   uint16 = 1 << 6
)

// GC value mask bits for ChangeGC/CreateGC.
const (
	GCForeground uint32 = 1 << 2
	GCBackground uint32 = 1 << 3
	GCLineWidth  uint32 = 1 << 4
	GCFont       uint32 = 1 << 14
)

// Property change modes.
const (
	PropModeReplace = 0
	PropModePrepend = 1
	PropModeAppend  = 2
)

// PropertyNotify states.
const (
	PropertyNewValue = 0
	PropertyDeleted  = 1
)

// Focus special values.
const (
	FocusPointerRoot ID = 1 // focus follows the pointer (root window ID)
)
