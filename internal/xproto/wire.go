// Package xproto defines the wire protocol spoken between the simulated
// X display server (internal/xserver) and its clients
// (internal/xclient). The protocol is modeled on the X11 core protocol:
// clients send numbered requests, some of which produce replies; the
// server sends replies, errors and events. Requests, replies and events
// are length-prefixed binary messages so the protocol can run over any
// net.Conn — an in-process pipe or a real TCP socket between separate
// operating-system processes (which is what makes Tk's "send" a true
// inter-application mechanism here, as in the paper).
package xproto

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Message kinds on the server-to-client stream.
const (
	KindReply byte = iota
	KindEvent
	KindError
)

// Writer accumulates a message payload.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with some preallocated capacity.
func NewWriter() *Writer { return &Writer{buf: make([]byte, 0, 64)} }

// writerPool recycles Writers for hot encode paths: the server's
// reply/error/event senders acquire one, encode, copy the bytes into an
// outbound frame, and release it, so steady-state encoding allocates
// nothing.
var writerPool = sync.Pool{
	New: func() any { return &Writer{buf: make([]byte, 0, 256)} },
}

// AcquireWriter returns an empty Writer from the pool. Pair with
// ReleaseWriter once the accumulated bytes have been copied out.
func AcquireWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// ReleaseWriter returns w to the pool. The caller must not use w — or
// any slice obtained from w.Bytes() — afterwards.
func ReleaseWriter(w *Writer) { writerPool.Put(w) }

// Reset clears the writer for reuse.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// PutU8 appends a byte.
func (w *Writer) PutU8(v uint8) { w.buf = append(w.buf, v) }

// PutU16 appends a big-endian uint16.
func (w *Writer) PutU16(v uint16) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
}

// PutU32 appends a big-endian uint32.
func (w *Writer) PutU32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// PutU64 appends a big-endian uint64.
func (w *Writer) PutU64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// PutI16 appends a big-endian int16.
func (w *Writer) PutI16(v int16) { w.PutU16(uint16(v)) }

// PutI32 appends a big-endian int32.
func (w *Writer) PutI32(v int32) { w.PutU32(uint32(v)) }

// PutBool appends a boolean as one byte.
func (w *Writer) PutBool(v bool) {
	if v {
		w.PutU8(1)
	} else {
		w.PutU8(0)
	}
}

// PutString appends a length-prefixed string (u32 length).
func (w *Writer) PutString(s string) {
	w.PutU32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// PutBytes appends a length-prefixed byte slice.
func (w *Writer) PutBytes(b []byte) {
	w.PutU32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// AppendRaw grows the payload by n bytes and returns the new region for
// the caller to fill in place — the zero-intermediate-copy path for
// bulk payloads (screenshot pixel packing). The contents of the
// returned slice are unspecified; the caller must overwrite all n
// bytes. The slice is only valid until the next Writer method call.
func (w *Writer) AppendRaw(n int) []byte {
	old := len(w.buf)
	if cap(w.buf)-old < n {
		nb := make([]byte, old, old+n)
		copy(nb, w.buf)
		w.buf = nb
	}
	w.buf = w.buf[:old+n]
	return w.buf[old:]
}

// Reader walks a message payload.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader wraps payload bytes.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decode error encountered, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("xproto: short message (%d bytes, offset %d)", len(r.buf), r.pos)
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if r.err != nil || r.pos+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	if r.err != nil || r.pos+2 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return v
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	if r.err != nil || r.pos+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil || r.pos+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

// I16 reads a big-endian int16.
func (r *Reader) I16() int16 { return int16(r.U16()) }

// I32 reads a big-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// Bool reads a boolean byte.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.ByteSlice()) }

// ByteSlice reads a length-prefixed byte slice (shared with the buffer).
func (r *Reader) ByteSlice() []byte {
	n := int(r.U32())
	if r.err != nil || r.pos+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// WriteFrame writes header, then a u32 payload length, then the payload.
// Client-to-server frames use a [u16 opcode] header; server-to-client
// frames a [u8 kind] header. The two directions never mix on a stream, so
// the framings may differ.
func WriteFrame(w io.Writer, header []byte, payload []byte) error {
	if _, err := w.Write(header); err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadRequestFrame reads one client-to-server frame, returning the opcode
// and payload.
func ReadRequestFrame(r io.Reader) (op uint16, payload []byte, err error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	op = binary.BigEndian.Uint16(hdr[:2])
	n := binary.BigEndian.Uint32(hdr[2:])
	if n > 64<<20 {
		return 0, nil, fmt.Errorf("xproto: oversized request (%d bytes)", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return op, payload, nil
}

// ReadRequestFrameInto is ReadRequestFrame with a caller-owned scratch
// buffer: the returned payload aliases buf when it fits (buf is grown
// otherwise), so a read loop that passes the previous payload back in
// runs allocation-free once the buffer has grown to the workload's
// largest request. The caller must fully consume each payload before
// the next call; that is safe here because every request Decode copies
// the variable-length fields it retains (see requests.go).
func ReadRequestFrameInto(r io.Reader, buf []byte) (op uint16, payload []byte, err error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	op = binary.BigEndian.Uint16(hdr[:2])
	n := binary.BigEndian.Uint32(hdr[2:])
	if n > 64<<20 {
		return 0, nil, fmt.Errorf("xproto: oversized request (%d bytes)", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return op, payload, nil
}

// WriteRequestFrame writes one client-to-server frame.
func WriteRequestFrame(w io.Writer, op uint16, payload []byte) error {
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], op)
	return WriteFrame(w, hdr[:], payload)
}

// AppendRequestFrame appends one client-to-server frame for req to buf,
// encoding the payload in place and backfilling the length field, so a
// client can batch many requests into one write buffer without an
// intermediate Writer or header allocation per request.
func AppendRequestFrame(buf []byte, req Request) []byte {
	w := Writer{buf: buf}
	w.PutU16(req.Op())
	lenAt := len(w.buf)
	w.PutU32(0) // payload length, backfilled once the payload is encoded
	req.Encode(&w)
	binary.BigEndian.PutUint32(w.buf[lenAt:], uint32(len(w.buf)-lenAt-4))
	return w.buf
}

// ReadServerFrame reads one server-to-client frame, returning the message
// kind and payload.
func ReadServerFrame(r io.Reader) (kind byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	kind = hdr[0]
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > 64<<20 {
		return 0, nil, fmt.Errorf("xproto: oversized server message (%d bytes)", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return kind, payload, nil
}

// ReadServerFrameInto is ReadServerFrame with a caller-owned scratch
// buffer (the server-to-client mirror of ReadRequestFrameInto): the
// returned payload aliases buf when it fits. Callers that hand a
// payload to something outliving the next read — the client's reply
// cookies decode lazily — must copy it first.
func ReadServerFrameInto(r io.Reader, buf []byte) (kind byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	kind = hdr[0]
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > 64<<20 {
		return 0, nil, fmt.Errorf("xproto: oversized server message (%d bytes)", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return kind, payload, nil
}

// WriteServerFrame writes one server-to-client frame.
func WriteServerFrame(w io.Writer, kind byte, payload []byte) error {
	return WriteFrame(w, []byte{kind}, payload)
}
