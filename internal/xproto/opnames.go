package xproto

import "strconv"

// opNames maps every request opcode to its protocol name. The
// tkcheck opcode-completeness analyzer cross-checks this table against
// the Op constants, the NewRequest factory and the server dispatch
// switch, so adding an opcode without naming it fails `make check`.
var opNames = map[uint16]string{
	OpCreateWindow:           "CreateWindow",
	OpChangeWindowAttributes: "ChangeWindowAttributes",
	OpDestroyWindow:          "DestroyWindow",
	OpMapWindow:              "MapWindow",
	OpUnmapWindow:            "UnmapWindow",
	OpConfigureWindow:        "ConfigureWindow",
	OpGetGeometry:            "GetGeometry",
	OpQueryTree:              "QueryTree",
	OpInternAtom:             "InternAtom",
	OpGetAtomName:            "GetAtomName",
	OpChangeProperty:         "ChangeProperty",
	OpDeleteProperty:         "DeleteProperty",
	OpGetProperty:            "GetProperty",
	OpListProperties:         "ListProperties",
	OpSetSelectionOwner:      "SetSelectionOwner",
	OpGetSelectionOwner:      "GetSelectionOwner",
	OpConvertSelection:       "ConvertSelection",
	OpSendEvent:              "SendEvent",
	OpQueryPointer:           "QueryPointer",
	OpSetInputFocus:          "SetInputFocus",
	OpGetInputFocus:          "GetInputFocus",
	OpOpenFont:               "OpenFont",
	OpCloseFont:              "CloseFont",
	OpQueryFont:              "QueryFont",
	OpQueryTextExtents:       "QueryTextExtents",
	OpCreatePixmap:           "CreatePixmap",
	OpFreePixmap:             "FreePixmap",
	OpCreateGC:               "CreateGC",
	OpChangeGC:               "ChangeGC",
	OpFreeGC:                 "FreeGC",
	OpClearArea:              "ClearArea",
	OpCopyArea:               "CopyArea",
	OpPolyLine:               "PolyLine",
	OpPolySegment:            "PolySegment",
	OpPolyRectangle:          "PolyRectangle",
	OpFillPoly:               "FillPoly",
	OpPolyFillRectangle:      "PolyFillRectangle",
	OpPolyText8:              "PolyText8",
	OpImageText8:             "ImageText8",
	OpAllocColor:             "AllocColor",
	OpAllocNamedColor:        "AllocNamedColor",
	OpCreateCursor:           "CreateCursor",
	OpBell:                   "Bell",
	OpFakeInput:              "FakeInput",
	OpScreenshot:             "Screenshot",
	OpPing:                   "Ping",
	OpSetLatency:             "SetLatency",
	OpQueryCounters:          "QueryCounters",
	OpAttachSession:          "AttachSession",
	OpUpgradeWire:            "UpgradeWire",
	OpWireSeg:                "WireSeg",
}

// OpName returns the protocol name of a request opcode ("CreateWindow"),
// or "op<N>" for an unknown opcode.
func OpName(op uint16) string {
	if name, ok := opNames[op]; ok {
		return name
	}
	return "op" + strconv.FormatUint(uint64(op), 10)
}
