package xproto

// Request opcodes. Core values follow the X11 protocol numbering for
// familiarity; opcodes 200+ are simulator extensions (synthetic input,
// screenshots, counters) standing in for the XTEST extension and
// out-of-band test instrumentation.
const (
	OpCreateWindow           uint16 = 1
	OpChangeWindowAttributes uint16 = 2
	OpDestroyWindow          uint16 = 4
	OpMapWindow              uint16 = 8
	OpUnmapWindow            uint16 = 10
	OpConfigureWindow        uint16 = 12
	OpGetGeometry            uint16 = 14
	OpQueryTree              uint16 = 15
	OpInternAtom             uint16 = 16
	OpGetAtomName            uint16 = 17
	OpChangeProperty         uint16 = 18
	OpDeleteProperty         uint16 = 19
	OpGetProperty            uint16 = 20
	OpListProperties         uint16 = 21
	OpSetSelectionOwner      uint16 = 22
	OpGetSelectionOwner      uint16 = 23
	OpConvertSelection       uint16 = 24
	OpSendEvent              uint16 = 25
	OpQueryPointer           uint16 = 38
	OpSetInputFocus          uint16 = 42
	OpGetInputFocus          uint16 = 43
	OpOpenFont               uint16 = 45
	OpCloseFont              uint16 = 46
	OpQueryFont              uint16 = 47
	OpQueryTextExtents       uint16 = 48
	OpCreatePixmap           uint16 = 53
	OpFreePixmap             uint16 = 54
	OpCreateGC               uint16 = 55
	OpChangeGC               uint16 = 56
	OpFreeGC                 uint16 = 60
	OpClearArea              uint16 = 61
	OpCopyArea               uint16 = 62
	OpPolyLine               uint16 = 65
	OpPolySegment            uint16 = 66
	OpPolyRectangle          uint16 = 67
	OpFillPoly               uint16 = 69
	OpPolyFillRectangle      uint16 = 70
	OpPolyText8              uint16 = 74
	OpImageText8             uint16 = 76
	OpAllocColor             uint16 = 84
	OpAllocNamedColor        uint16 = 85
	OpCreateCursor           uint16 = 93
	OpBell                   uint16 = 104

	OpFakeInput     uint16 = 200
	OpScreenshot    uint16 = 201
	OpPing          uint16 = 202
	OpSetLatency    uint16 = 203
	OpQueryCounters uint16 = 204
	OpAttachSession uint16 = 205
)

// Request is one client-to-server protocol request.
type Request interface {
	Op() uint16
	Encode(w *Writer)
	Decode(r *Reader)
}

// HasReply reports whether a request opcode produces a reply (and hence
// costs a client round trip).
func HasReply(op uint16) bool {
	switch op {
	case OpGetGeometry, OpQueryTree, OpInternAtom, OpGetAtomName,
		OpGetProperty, OpListProperties, OpGetSelectionOwner,
		OpQueryPointer, OpGetInputFocus, OpQueryFont, OpQueryTextExtents,
		OpAllocColor, OpAllocNamedColor, OpScreenshot, OpPing,
		OpQueryCounters:
		return true
	}
	return false
}

// NewRequest returns an empty request struct for an opcode, for
// server-side decoding.
func NewRequest(op uint16) Request {
	switch op {
	case OpCreateWindow:
		return &CreateWindowReq{}
	case OpChangeWindowAttributes:
		return &ChangeWindowAttributesReq{}
	case OpDestroyWindow:
		return &DestroyWindowReq{}
	case OpMapWindow:
		return &MapWindowReq{}
	case OpUnmapWindow:
		return &UnmapWindowReq{}
	case OpConfigureWindow:
		return &ConfigureWindowReq{}
	case OpGetGeometry:
		return &GetGeometryReq{}
	case OpQueryTree:
		return &QueryTreeReq{}
	case OpInternAtom:
		return &InternAtomReq{}
	case OpGetAtomName:
		return &GetAtomNameReq{}
	case OpChangeProperty:
		return &ChangePropertyReq{}
	case OpDeleteProperty:
		return &DeletePropertyReq{}
	case OpGetProperty:
		return &GetPropertyReq{}
	case OpListProperties:
		return &ListPropertiesReq{}
	case OpSetSelectionOwner:
		return &SetSelectionOwnerReq{}
	case OpGetSelectionOwner:
		return &GetSelectionOwnerReq{}
	case OpConvertSelection:
		return &ConvertSelectionReq{}
	case OpSendEvent:
		return &SendEventReq{}
	case OpQueryPointer:
		return &QueryPointerReq{}
	case OpSetInputFocus:
		return &SetInputFocusReq{}
	case OpGetInputFocus:
		return &GetInputFocusReq{}
	case OpOpenFont:
		return &OpenFontReq{}
	case OpCloseFont:
		return &CloseFontReq{}
	case OpQueryFont:
		return &QueryFontReq{}
	case OpQueryTextExtents:
		return &QueryTextExtentsReq{}
	case OpCreatePixmap:
		return &CreatePixmapReq{}
	case OpFreePixmap:
		return &FreePixmapReq{}
	case OpCreateGC:
		return &CreateGCReq{}
	case OpChangeGC:
		return &ChangeGCReq{}
	case OpFreeGC:
		return &FreeGCReq{}
	case OpClearArea:
		return &ClearAreaReq{}
	case OpCopyArea:
		return &CopyAreaReq{}
	case OpPolyLine:
		return &PolyLineReq{}
	case OpPolySegment:
		return &PolySegmentReq{}
	case OpPolyRectangle:
		return &PolyRectangleReq{}
	case OpFillPoly:
		return &FillPolyReq{}
	case OpPolyFillRectangle:
		return &PolyFillRectangleReq{}
	case OpPolyText8:
		return &PolyText8Req{}
	case OpImageText8:
		return &ImageText8Req{}
	case OpAllocColor:
		return &AllocColorReq{}
	case OpAllocNamedColor:
		return &AllocNamedColorReq{}
	case OpCreateCursor:
		return &CreateCursorReq{}
	case OpBell:
		return &BellReq{}
	case OpFakeInput:
		return &FakeInputReq{}
	case OpScreenshot:
		return &ScreenshotReq{}
	case OpPing:
		return &PingReq{}
	case OpSetLatency:
		return &SetLatencyReq{}
	case OpQueryCounters:
		return &QueryCountersReq{}
	case OpAttachSession:
		return &AttachSessionReq{}
	case OpUpgradeWire:
		return &UpgradeWireReq{}
	case OpWireSeg:
		return &WireSegReq{}
	}
	return nil
}

// Window attribute mask bits for CreateWindow/ChangeWindowAttributes.
const (
	AttrBackground uint32 = 1 << 0
	AttrBorder     uint32 = 1 << 1
	AttrEventMask  uint32 = 1 << 2
	AttrOverride   uint32 = 1 << 3
	AttrCursor     uint32 = 1 << 4
)

// CreateWindowReq creates a child window.
type CreateWindowReq struct {
	Wid, Parent      ID
	X, Y             int16
	Width, Height    uint16
	BorderWidth      uint16
	Background       uint32
	Border           uint32
	EventMask        uint32
	OverrideRedirect bool
}

func (q *CreateWindowReq) Op() uint16 { return OpCreateWindow }
func (q *CreateWindowReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Wid))
	w.PutU32(uint32(q.Parent))
	w.PutI16(q.X)
	w.PutI16(q.Y)
	w.PutU16(q.Width)
	w.PutU16(q.Height)
	w.PutU16(q.BorderWidth)
	w.PutU32(q.Background)
	w.PutU32(q.Border)
	w.PutU32(q.EventMask)
	w.PutBool(q.OverrideRedirect)
}
func (q *CreateWindowReq) Decode(r *Reader) {
	q.Wid = ID(r.U32())
	q.Parent = ID(r.U32())
	q.X = r.I16()
	q.Y = r.I16()
	q.Width = r.U16()
	q.Height = r.U16()
	q.BorderWidth = r.U16()
	q.Background = r.U32()
	q.Border = r.U32()
	q.EventMask = r.U32()
	q.OverrideRedirect = r.Bool()
}

// ChangeWindowAttributesReq updates attributes selected by Mask.
type ChangeWindowAttributesReq struct {
	Window           ID
	Mask             uint32
	Background       uint32
	Border           uint32
	EventMask        uint32
	OverrideRedirect bool
	Cursor           ID
}

func (q *ChangeWindowAttributesReq) Op() uint16 { return OpChangeWindowAttributes }
func (q *ChangeWindowAttributesReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Window))
	w.PutU32(q.Mask)
	w.PutU32(q.Background)
	w.PutU32(q.Border)
	w.PutU32(q.EventMask)
	w.PutBool(q.OverrideRedirect)
	w.PutU32(uint32(q.Cursor))
}
func (q *ChangeWindowAttributesReq) Decode(r *Reader) {
	q.Window = ID(r.U32())
	q.Mask = r.U32()
	q.Background = r.U32()
	q.Border = r.U32()
	q.EventMask = r.U32()
	q.OverrideRedirect = r.Bool()
	q.Cursor = ID(r.U32())
}

// DestroyWindowReq destroys a window and all descendants.
type DestroyWindowReq struct{ Window ID }

func (q *DestroyWindowReq) Op() uint16       { return OpDestroyWindow }
func (q *DestroyWindowReq) Encode(w *Writer) { w.PutU32(uint32(q.Window)) }
func (q *DestroyWindowReq) Decode(r *Reader) { q.Window = ID(r.U32()) }

// MapWindowReq maps (shows) a window.
type MapWindowReq struct{ Window ID }

func (q *MapWindowReq) Op() uint16       { return OpMapWindow }
func (q *MapWindowReq) Encode(w *Writer) { w.PutU32(uint32(q.Window)) }
func (q *MapWindowReq) Decode(r *Reader) { q.Window = ID(r.U32()) }

// UnmapWindowReq unmaps (hides) a window.
type UnmapWindowReq struct{ Window ID }

func (q *UnmapWindowReq) Op() uint16       { return OpUnmapWindow }
func (q *UnmapWindowReq) Encode(w *Writer) { w.PutU32(uint32(q.Window)) }
func (q *UnmapWindowReq) Decode(r *Reader) { q.Window = ID(r.U32()) }

// ConfigureWindowReq moves/resizes/restacks a window per Mask.
type ConfigureWindowReq struct {
	Window        ID
	Mask          uint16
	X, Y          int16
	Width, Height uint16
	BorderWidth   uint16
	StackMode     uint8
}

func (q *ConfigureWindowReq) Op() uint16 { return OpConfigureWindow }
func (q *ConfigureWindowReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Window))
	w.PutU16(q.Mask)
	w.PutI16(q.X)
	w.PutI16(q.Y)
	w.PutU16(q.Width)
	w.PutU16(q.Height)
	w.PutU16(q.BorderWidth)
	w.PutU8(q.StackMode)
}
func (q *ConfigureWindowReq) Decode(r *Reader) {
	q.Window = ID(r.U32())
	q.Mask = r.U16()
	q.X = r.I16()
	q.Y = r.I16()
	q.Width = r.U16()
	q.Height = r.U16()
	q.BorderWidth = r.U16()
	q.StackMode = r.U8()
}

// GetGeometryReq asks for a drawable's geometry.
type GetGeometryReq struct{ Drawable ID }

func (q *GetGeometryReq) Op() uint16       { return OpGetGeometry }
func (q *GetGeometryReq) Encode(w *Writer) { w.PutU32(uint32(q.Drawable)) }
func (q *GetGeometryReq) Decode(r *Reader) { q.Drawable = ID(r.U32()) }

// GeometryReply answers GetGeometry.
type GeometryReply struct {
	Root          ID
	X, Y          int16
	Width, Height uint16
	BorderWidth   uint16
}

// Encode serializes the reply.
func (p *GeometryReply) Encode(w *Writer) {
	w.PutU32(uint32(p.Root))
	w.PutI16(p.X)
	w.PutI16(p.Y)
	w.PutU16(p.Width)
	w.PutU16(p.Height)
	w.PutU16(p.BorderWidth)
}

// Decode deserializes the reply.
func (p *GeometryReply) Decode(r *Reader) {
	p.Root = ID(r.U32())
	p.X = r.I16()
	p.Y = r.I16()
	p.Width = r.U16()
	p.Height = r.U16()
	p.BorderWidth = r.U16()
}

// QueryTreeReq asks for a window's parent and children.
type QueryTreeReq struct{ Window ID }

func (q *QueryTreeReq) Op() uint16       { return OpQueryTree }
func (q *QueryTreeReq) Encode(w *Writer) { w.PutU32(uint32(q.Window)) }
func (q *QueryTreeReq) Decode(r *Reader) { q.Window = ID(r.U32()) }

// QueryTreeReply answers QueryTree; children are bottom-to-top.
type QueryTreeReply struct {
	Root, Parent ID
	Children     []ID
}

// Encode serializes the reply.
func (p *QueryTreeReply) Encode(w *Writer) {
	w.PutU32(uint32(p.Root))
	w.PutU32(uint32(p.Parent))
	w.PutU32(uint32(len(p.Children)))
	for _, c := range p.Children {
		w.PutU32(uint32(c))
	}
}

// Decode deserializes the reply.
func (p *QueryTreeReply) Decode(r *Reader) {
	p.Root = ID(r.U32())
	p.Parent = ID(r.U32())
	n := int(r.U32())
	p.Children = make([]ID, 0, n)
	for i := 0; i < n; i++ {
		p.Children = append(p.Children, ID(r.U32()))
	}
}

// InternAtomReq interns (or looks up) an atom by name.
type InternAtomReq struct {
	Name         string
	OnlyIfExists bool
}

func (q *InternAtomReq) Op() uint16 { return OpInternAtom }
func (q *InternAtomReq) Encode(w *Writer) {
	w.PutString(q.Name)
	w.PutBool(q.OnlyIfExists)
}
func (q *InternAtomReq) Decode(r *Reader) {
	q.Name = r.String()
	q.OnlyIfExists = r.Bool()
}

// AtomReply carries a single atom.
type AtomReply struct{ Atom Atom }

// Encode serializes the reply.
func (p *AtomReply) Encode(w *Writer) { w.PutU32(uint32(p.Atom)) }

// Decode deserializes the reply.
func (p *AtomReply) Decode(r *Reader) { p.Atom = Atom(r.U32()) }

// GetAtomNameReq looks up an atom's name.
type GetAtomNameReq struct{ Atom Atom }

func (q *GetAtomNameReq) Op() uint16       { return OpGetAtomName }
func (q *GetAtomNameReq) Encode(w *Writer) { w.PutU32(uint32(q.Atom)) }
func (q *GetAtomNameReq) Decode(r *Reader) { q.Atom = Atom(r.U32()) }

// NameReply carries a single string.
type NameReply struct{ Name string }

// Encode serializes the reply.
func (p *NameReply) Encode(w *Writer) { w.PutString(p.Name) }

// Decode deserializes the reply.
func (p *NameReply) Decode(r *Reader) { p.Name = r.String() }

// ChangePropertyReq sets or appends to a window property.
type ChangePropertyReq struct {
	Window   ID
	Property Atom
	Type     Atom
	Mode     uint8
	Data     []byte
}

func (q *ChangePropertyReq) Op() uint16 { return OpChangeProperty }
func (q *ChangePropertyReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Window))
	w.PutU32(uint32(q.Property))
	w.PutU32(uint32(q.Type))
	w.PutU8(q.Mode)
	w.PutBytes(q.Data)
}
func (q *ChangePropertyReq) Decode(r *Reader) {
	q.Window = ID(r.U32())
	q.Property = Atom(r.U32())
	q.Type = Atom(r.U32())
	q.Mode = r.U8()
	q.Data = append([]byte(nil), r.ByteSlice()...)
}

// DeletePropertyReq removes a property from a window.
type DeletePropertyReq struct {
	Window   ID
	Property Atom
}

func (q *DeletePropertyReq) Op() uint16 { return OpDeleteProperty }
func (q *DeletePropertyReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Window))
	w.PutU32(uint32(q.Property))
}
func (q *DeletePropertyReq) Decode(r *Reader) {
	q.Window = ID(r.U32())
	q.Property = Atom(r.U32())
}

// GetPropertyReq reads a property, optionally deleting it afterwards.
type GetPropertyReq struct {
	Window   ID
	Property Atom
	Delete   bool
}

func (q *GetPropertyReq) Op() uint16 { return OpGetProperty }
func (q *GetPropertyReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Window))
	w.PutU32(uint32(q.Property))
	w.PutBool(q.Delete)
}
func (q *GetPropertyReq) Decode(r *Reader) {
	q.Window = ID(r.U32())
	q.Property = Atom(r.U32())
	q.Delete = r.Bool()
}

// GetPropertyReply answers GetProperty.
type GetPropertyReply struct {
	Found bool
	Type  Atom
	Data  []byte
}

// Encode serializes the reply.
func (p *GetPropertyReply) Encode(w *Writer) {
	w.PutBool(p.Found)
	w.PutU32(uint32(p.Type))
	w.PutBytes(p.Data)
}

// Decode deserializes the reply.
func (p *GetPropertyReply) Decode(r *Reader) {
	p.Found = r.Bool()
	p.Type = Atom(r.U32())
	p.Data = append([]byte(nil), r.ByteSlice()...)
}

// ListPropertiesReq lists the property atoms present on a window.
type ListPropertiesReq struct{ Window ID }

func (q *ListPropertiesReq) Op() uint16       { return OpListProperties }
func (q *ListPropertiesReq) Encode(w *Writer) { w.PutU32(uint32(q.Window)) }
func (q *ListPropertiesReq) Decode(r *Reader) { q.Window = ID(r.U32()) }

// ListPropertiesReply answers ListProperties.
type ListPropertiesReply struct{ Atoms []Atom }

// Encode serializes the reply.
func (p *ListPropertiesReply) Encode(w *Writer) {
	w.PutU32(uint32(len(p.Atoms)))
	for _, a := range p.Atoms {
		w.PutU32(uint32(a))
	}
}

// Decode deserializes the reply.
func (p *ListPropertiesReply) Decode(r *Reader) {
	n := int(r.U32())
	p.Atoms = make([]Atom, 0, n)
	for i := 0; i < n; i++ {
		p.Atoms = append(p.Atoms, Atom(r.U32()))
	}
}

// SetSelectionOwnerReq claims (or with Owner None, releases) a selection.
type SetSelectionOwnerReq struct {
	Selection Atom
	Owner     ID
	Time      uint32
}

func (q *SetSelectionOwnerReq) Op() uint16 { return OpSetSelectionOwner }
func (q *SetSelectionOwnerReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Selection))
	w.PutU32(uint32(q.Owner))
	w.PutU32(q.Time)
}
func (q *SetSelectionOwnerReq) Decode(r *Reader) {
	q.Selection = Atom(r.U32())
	q.Owner = ID(r.U32())
	q.Time = r.U32()
}

// GetSelectionOwnerReq asks who owns a selection.
type GetSelectionOwnerReq struct{ Selection Atom }

func (q *GetSelectionOwnerReq) Op() uint16       { return OpGetSelectionOwner }
func (q *GetSelectionOwnerReq) Encode(w *Writer) { w.PutU32(uint32(q.Selection)) }
func (q *GetSelectionOwnerReq) Decode(r *Reader) { q.Selection = Atom(r.U32()) }

// WindowReply carries a single window ID.
type WindowReply struct{ Window ID }

// Encode serializes the reply.
func (p *WindowReply) Encode(w *Writer) { w.PutU32(uint32(p.Window)) }

// Decode deserializes the reply.
func (p *WindowReply) Decode(r *Reader) { p.Window = ID(r.U32()) }

// ConvertSelectionReq asks the selection owner to convert the selection
// to Target and store it on Requestor's Property (ICCCM).
type ConvertSelectionReq struct {
	Selection Atom
	Target    Atom
	Property  Atom
	Requestor ID
	Time      uint32
}

func (q *ConvertSelectionReq) Op() uint16 { return OpConvertSelection }
func (q *ConvertSelectionReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Selection))
	w.PutU32(uint32(q.Target))
	w.PutU32(uint32(q.Property))
	w.PutU32(uint32(q.Requestor))
	w.PutU32(q.Time)
}
func (q *ConvertSelectionReq) Decode(r *Reader) {
	q.Selection = Atom(r.U32())
	q.Target = Atom(r.U32())
	q.Property = Atom(r.U32())
	q.Requestor = ID(r.U32())
	q.Time = r.U32()
}

// SendEventReq delivers a synthetic event to a window.
type SendEventReq struct {
	Destination ID
	EventMask   uint32
	Event       Event
}

func (q *SendEventReq) Op() uint16 { return OpSendEvent }
func (q *SendEventReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Destination))
	w.PutU32(q.EventMask)
	q.Event.Encode(w)
}
func (q *SendEventReq) Decode(r *Reader) {
	q.Destination = ID(r.U32())
	q.EventMask = r.U32()
	q.Event.Decode(r)
}

// QueryPointerReq asks for the pointer position and state.
type QueryPointerReq struct{}

func (q *QueryPointerReq) Op() uint16       { return OpQueryPointer }
func (q *QueryPointerReq) Encode(w *Writer) {}
func (q *QueryPointerReq) Decode(r *Reader) {}

// QueryPointerReply answers QueryPointer.
type QueryPointerReply struct {
	X, Y  int16
	State uint16
	Child ID
}

// Encode serializes the reply.
func (p *QueryPointerReply) Encode(w *Writer) {
	w.PutI16(p.X)
	w.PutI16(p.Y)
	w.PutU16(p.State)
	w.PutU32(uint32(p.Child))
}

// Decode deserializes the reply.
func (p *QueryPointerReply) Decode(r *Reader) {
	p.X = r.I16()
	p.Y = r.I16()
	p.State = r.U16()
	p.Child = ID(r.U32())
}

// SetInputFocusReq assigns the keyboard focus.
type SetInputFocusReq struct{ Focus ID }

func (q *SetInputFocusReq) Op() uint16       { return OpSetInputFocus }
func (q *SetInputFocusReq) Encode(w *Writer) { w.PutU32(uint32(q.Focus)) }
func (q *SetInputFocusReq) Decode(r *Reader) { q.Focus = ID(r.U32()) }

// GetInputFocusReq asks for the current focus window.
type GetInputFocusReq struct{}

func (q *GetInputFocusReq) Op() uint16       { return OpGetInputFocus }
func (q *GetInputFocusReq) Encode(w *Writer) {}
func (q *GetInputFocusReq) Decode(r *Reader) {}

// OpenFontReq opens a font by name under a client-chosen ID.
type OpenFontReq struct {
	Fid  ID
	Name string
}

func (q *OpenFontReq) Op() uint16 { return OpOpenFont }
func (q *OpenFontReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Fid))
	w.PutString(q.Name)
}
func (q *OpenFontReq) Decode(r *Reader) {
	q.Fid = ID(r.U32())
	q.Name = r.String()
}

// CloseFontReq closes a font.
type CloseFontReq struct{ Fid ID }

func (q *CloseFontReq) Op() uint16       { return OpCloseFont }
func (q *CloseFontReq) Encode(w *Writer) { w.PutU32(uint32(q.Fid)) }
func (q *CloseFontReq) Decode(r *Reader) { q.Fid = ID(r.U32()) }

// QueryFontReq asks for a font's metrics.
type QueryFontReq struct{ Fid ID }

func (q *QueryFontReq) Op() uint16       { return OpQueryFont }
func (q *QueryFontReq) Encode(w *Writer) { w.PutU32(uint32(q.Fid)) }
func (q *QueryFontReq) Decode(r *Reader) { q.Fid = ID(r.U32()) }

// QueryTextExtentsReq asks for the extents of a string rendered in a
// font.
type QueryTextExtentsReq struct {
	Fid  ID
	Text string
}

func (q *QueryTextExtentsReq) Op() uint16 { return OpQueryTextExtents }
func (q *QueryTextExtentsReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Fid))
	w.PutString(q.Text)
}
func (q *QueryTextExtentsReq) Decode(r *Reader) {
	q.Fid = ID(r.U32())
	q.Text = r.String()
}

// QueryTextExtentsReply answers QueryTextExtents.
type QueryTextExtentsReply struct {
	Ascent, Descent int16
	Width           int32
}

// Encode serializes the reply.
func (p *QueryTextExtentsReply) Encode(w *Writer) {
	w.PutI16(p.Ascent)
	w.PutI16(p.Descent)
	w.PutU32(uint32(p.Width))
}

// Decode deserializes the reply.
func (p *QueryTextExtentsReply) Decode(r *Reader) {
	p.Ascent = r.I16()
	p.Descent = r.I16()
	p.Width = int32(r.U32())
}

// QueryFontReply answers QueryFont. Widths holds the advance width of
// each ASCII character 0-127.
type QueryFontReply struct {
	Ascent, Descent int16
	Widths          [128]uint8
}

// Encode serializes the reply.
func (p *QueryFontReply) Encode(w *Writer) {
	w.PutI16(p.Ascent)
	w.PutI16(p.Descent)
	for _, wd := range p.Widths {
		w.PutU8(wd)
	}
}

// Decode deserializes the reply.
func (p *QueryFontReply) Decode(r *Reader) {
	p.Ascent = r.I16()
	p.Descent = r.I16()
	for i := range p.Widths {
		p.Widths[i] = r.U8()
	}
}

// CreatePixmapReq creates an off-screen drawable.
type CreatePixmapReq struct {
	Pid           ID
	Width, Height uint16
}

func (q *CreatePixmapReq) Op() uint16 { return OpCreatePixmap }
func (q *CreatePixmapReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Pid))
	w.PutU16(q.Width)
	w.PutU16(q.Height)
}
func (q *CreatePixmapReq) Decode(r *Reader) {
	q.Pid = ID(r.U32())
	q.Width = r.U16()
	q.Height = r.U16()
}

// FreePixmapReq frees a pixmap.
type FreePixmapReq struct{ Pid ID }

func (q *FreePixmapReq) Op() uint16       { return OpFreePixmap }
func (q *FreePixmapReq) Encode(w *Writer) { w.PutU32(uint32(q.Pid)) }
func (q *FreePixmapReq) Decode(r *Reader) { q.Pid = ID(r.U32()) }

// CreateGCReq creates a graphics context.
type CreateGCReq struct {
	Gid        ID
	Mask       uint32
	Foreground uint32
	Background uint32
	LineWidth  uint16
	Font       ID
}

func (q *CreateGCReq) Op() uint16 { return OpCreateGC }
func (q *CreateGCReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Gid))
	w.PutU32(q.Mask)
	w.PutU32(q.Foreground)
	w.PutU32(q.Background)
	w.PutU16(q.LineWidth)
	w.PutU32(uint32(q.Font))
}
func (q *CreateGCReq) Decode(r *Reader) {
	q.Gid = ID(r.U32())
	q.Mask = r.U32()
	q.Foreground = r.U32()
	q.Background = r.U32()
	q.LineWidth = r.U16()
	q.Font = ID(r.U32())
}

// ChangeGCReq updates GC fields selected by Mask.
type ChangeGCReq struct {
	Gid        ID
	Mask       uint32
	Foreground uint32
	Background uint32
	LineWidth  uint16
	Font       ID
}

func (q *ChangeGCReq) Op() uint16 { return OpChangeGC }
func (q *ChangeGCReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Gid))
	w.PutU32(q.Mask)
	w.PutU32(q.Foreground)
	w.PutU32(q.Background)
	w.PutU16(q.LineWidth)
	w.PutU32(uint32(q.Font))
}
func (q *ChangeGCReq) Decode(r *Reader) {
	q.Gid = ID(r.U32())
	q.Mask = r.U32()
	q.Foreground = r.U32()
	q.Background = r.U32()
	q.LineWidth = r.U16()
	q.Font = ID(r.U32())
}

// FreeGCReq frees a graphics context.
type FreeGCReq struct{ Gid ID }

func (q *FreeGCReq) Op() uint16       { return OpFreeGC }
func (q *FreeGCReq) Encode(w *Writer) { w.PutU32(uint32(q.Gid)) }
func (q *FreeGCReq) Decode(r *Reader) { q.Gid = ID(r.U32()) }

// ClearAreaReq fills an area of a window with its background. A zero
// width/height extends to the window edge.
type ClearAreaReq struct {
	Window        ID
	X, Y          int16
	Width, Height uint16
}

func (q *ClearAreaReq) Op() uint16 { return OpClearArea }
func (q *ClearAreaReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Window))
	w.PutI16(q.X)
	w.PutI16(q.Y)
	w.PutU16(q.Width)
	w.PutU16(q.Height)
}
func (q *ClearAreaReq) Decode(r *Reader) {
	q.Window = ID(r.U32())
	q.X = r.I16()
	q.Y = r.I16()
	q.Width = r.U16()
	q.Height = r.U16()
}

// CopyAreaReq copies pixels between drawables.
type CopyAreaReq struct {
	Src, Dst, Gc  ID
	SrcX, SrcY    int16
	DstX, DstY    int16
	Width, Height uint16
}

func (q *CopyAreaReq) Op() uint16 { return OpCopyArea }
func (q *CopyAreaReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Src))
	w.PutU32(uint32(q.Dst))
	w.PutU32(uint32(q.Gc))
	w.PutI16(q.SrcX)
	w.PutI16(q.SrcY)
	w.PutI16(q.DstX)
	w.PutI16(q.DstY)
	w.PutU16(q.Width)
	w.PutU16(q.Height)
}
func (q *CopyAreaReq) Decode(r *Reader) {
	q.Src = ID(r.U32())
	q.Dst = ID(r.U32())
	q.Gc = ID(r.U32())
	q.SrcX = r.I16()
	q.SrcY = r.I16()
	q.DstX = r.I16()
	q.DstY = r.I16()
	q.Width = r.U16()
	q.Height = r.U16()
}

func encodePoints(w *Writer, pts []Point) {
	w.PutU32(uint32(len(pts)))
	for _, p := range pts {
		w.PutI16(p.X)
		w.PutI16(p.Y)
	}
}

func decodePoints(r *Reader) []Point {
	n := int(r.U32())
	if n < 0 || n > 1<<20 {
		return nil
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, Point{X: r.I16(), Y: r.I16()})
	}
	return pts
}

func encodeRects(w *Writer, rects []Rect) {
	w.PutU32(uint32(len(rects)))
	for _, rc := range rects {
		w.PutI16(rc.X)
		w.PutI16(rc.Y)
		w.PutU16(rc.W)
		w.PutU16(rc.H)
	}
}

func decodeRects(r *Reader) []Rect {
	n := int(r.U32())
	if n < 0 || n > 1<<20 {
		return nil
	}
	rects := make([]Rect, 0, n)
	for i := 0; i < n; i++ {
		rects = append(rects, Rect{X: r.I16(), Y: r.I16(), W: r.U16(), H: r.U16()})
	}
	return rects
}

// PolyLineReq draws connected line segments.
type PolyLineReq struct {
	Drawable, Gc ID
	Points       []Point
}

func (q *PolyLineReq) Op() uint16 { return OpPolyLine }
func (q *PolyLineReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Drawable))
	w.PutU32(uint32(q.Gc))
	encodePoints(w, q.Points)
}
func (q *PolyLineReq) Decode(r *Reader) {
	q.Drawable = ID(r.U32())
	q.Gc = ID(r.U32())
	q.Points = decodePoints(r)
}

// PolySegmentReq draws disjoint segments (pairs of points).
type PolySegmentReq struct {
	Drawable, Gc ID
	Points       []Point
}

func (q *PolySegmentReq) Op() uint16 { return OpPolySegment }
func (q *PolySegmentReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Drawable))
	w.PutU32(uint32(q.Gc))
	encodePoints(w, q.Points)
}
func (q *PolySegmentReq) Decode(r *Reader) {
	q.Drawable = ID(r.U32())
	q.Gc = ID(r.U32())
	q.Points = decodePoints(r)
}

// PolyRectangleReq outlines rectangles.
type PolyRectangleReq struct {
	Drawable, Gc ID
	Rects        []Rect
}

func (q *PolyRectangleReq) Op() uint16 { return OpPolyRectangle }
func (q *PolyRectangleReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Drawable))
	w.PutU32(uint32(q.Gc))
	encodeRects(w, q.Rects)
}
func (q *PolyRectangleReq) Decode(r *Reader) {
	q.Drawable = ID(r.U32())
	q.Gc = ID(r.U32())
	q.Rects = decodeRects(r)
}

// FillPolyReq fills a polygon.
type FillPolyReq struct {
	Drawable, Gc ID
	Points       []Point
}

func (q *FillPolyReq) Op() uint16 { return OpFillPoly }
func (q *FillPolyReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Drawable))
	w.PutU32(uint32(q.Gc))
	encodePoints(w, q.Points)
}
func (q *FillPolyReq) Decode(r *Reader) {
	q.Drawable = ID(r.U32())
	q.Gc = ID(r.U32())
	q.Points = decodePoints(r)
}

// PolyFillRectangleReq fills rectangles.
type PolyFillRectangleReq struct {
	Drawable, Gc ID
	Rects        []Rect
}

func (q *PolyFillRectangleReq) Op() uint16 { return OpPolyFillRectangle }
func (q *PolyFillRectangleReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Drawable))
	w.PutU32(uint32(q.Gc))
	encodeRects(w, q.Rects)
}
func (q *PolyFillRectangleReq) Decode(r *Reader) {
	q.Drawable = ID(r.U32())
	q.Gc = ID(r.U32())
	q.Rects = decodeRects(r)
}

// PolyText8Req draws text with the GC foreground; the baseline is at
// (X, Y).
type PolyText8Req struct {
	Drawable, Gc ID
	X, Y         int16
	Text         string
}

func (q *PolyText8Req) Op() uint16 { return OpPolyText8 }
func (q *PolyText8Req) Encode(w *Writer) {
	w.PutU32(uint32(q.Drawable))
	w.PutU32(uint32(q.Gc))
	w.PutI16(q.X)
	w.PutI16(q.Y)
	w.PutString(q.Text)
}
func (q *PolyText8Req) Decode(r *Reader) {
	q.Drawable = ID(r.U32())
	q.Gc = ID(r.U32())
	q.X = r.I16()
	q.Y = r.I16()
	q.Text = r.String()
}

// ImageText8Req draws text filling the character cells with the GC
// background first.
type ImageText8Req struct {
	Drawable, Gc ID
	X, Y         int16
	Text         string
}

func (q *ImageText8Req) Op() uint16 { return OpImageText8 }
func (q *ImageText8Req) Encode(w *Writer) {
	w.PutU32(uint32(q.Drawable))
	w.PutU32(uint32(q.Gc))
	w.PutI16(q.X)
	w.PutI16(q.Y)
	w.PutString(q.Text)
}
func (q *ImageText8Req) Decode(r *Reader) {
	q.Drawable = ID(r.U32())
	q.Gc = ID(r.U32())
	q.X = r.I16()
	q.Y = r.I16()
	q.Text = r.String()
}

// AllocColorReq allocates a color from 16-bit RGB components.
type AllocColorReq struct{ R, G, B uint16 }

func (q *AllocColorReq) Op() uint16 { return OpAllocColor }
func (q *AllocColorReq) Encode(w *Writer) {
	w.PutU16(q.R)
	w.PutU16(q.G)
	w.PutU16(q.B)
}
func (q *AllocColorReq) Decode(r *Reader) {
	q.R = r.U16()
	q.G = r.U16()
	q.B = r.U16()
}

// ColorReply carries an allocated pixel and its actual RGB.
type ColorReply struct {
	Found   bool
	Pixel   uint32
	R, G, B uint16
}

// Encode serializes the reply.
func (p *ColorReply) Encode(w *Writer) {
	w.PutBool(p.Found)
	w.PutU32(p.Pixel)
	w.PutU16(p.R)
	w.PutU16(p.G)
	w.PutU16(p.B)
}

// Decode deserializes the reply.
func (p *ColorReply) Decode(r *Reader) {
	p.Found = r.Bool()
	p.Pixel = r.U32()
	p.R = r.U16()
	p.G = r.U16()
	p.B = r.U16()
}

// AllocNamedColorReq allocates a color from the server's name database.
type AllocNamedColorReq struct{ Name string }

func (q *AllocNamedColorReq) Op() uint16       { return OpAllocNamedColor }
func (q *AllocNamedColorReq) Encode(w *Writer) { w.PutString(q.Name) }
func (q *AllocNamedColorReq) Decode(r *Reader) { q.Name = r.String() }

// CreateCursorReq creates a named cursor shape.
type CreateCursorReq struct {
	Cid   ID
	Shape string
}

func (q *CreateCursorReq) Op() uint16 { return OpCreateCursor }
func (q *CreateCursorReq) Encode(w *Writer) {
	w.PutU32(uint32(q.Cid))
	w.PutString(q.Shape)
}
func (q *CreateCursorReq) Decode(r *Reader) {
	q.Cid = ID(r.U32())
	q.Shape = r.String()
}

// BellReq rings the (simulated) bell.
type BellReq struct{}

func (q *BellReq) Op() uint16       { return OpBell }
func (q *BellReq) Encode(w *Writer) {}
func (q *BellReq) Decode(r *Reader) {}

// Fake input kinds for FakeInputReq (the simulator's XTEST stand-in).
const (
	FakeMotion uint8 = iota
	FakeButtonPress
	FakeButtonRelease
	FakeKeyPress
	FakeKeyRelease
)

// FakeInputReq injects synthetic user input at the server.
type FakeInputReq struct {
	Kind   uint8
	X, Y   int16  // for motion
	Detail uint32 // button number or keysym
}

func (q *FakeInputReq) Op() uint16 { return OpFakeInput }
func (q *FakeInputReq) Encode(w *Writer) {
	w.PutU8(q.Kind)
	w.PutI16(q.X)
	w.PutI16(q.Y)
	w.PutU32(q.Detail)
}
func (q *FakeInputReq) Decode(r *Reader) {
	q.Kind = r.U8()
	q.X = r.I16()
	q.Y = r.I16()
	q.Detail = r.U32()
}

// ScreenshotReq asks for a composited image of a window (or the whole
// screen when Window is None).
type ScreenshotReq struct{ Window ID }

func (q *ScreenshotReq) Op() uint16       { return OpScreenshot }
func (q *ScreenshotReq) Encode(w *Writer) { w.PutU32(uint32(q.Window)) }
func (q *ScreenshotReq) Decode(r *Reader) { q.Window = ID(r.U32()) }

// ScreenshotReply carries packed RGB pixels, row-major.
type ScreenshotReply struct {
	Width, Height uint16
	Pixels        []byte // 3 bytes per pixel, RGB
}

// Encode serializes the reply.
func (p *ScreenshotReply) Encode(w *Writer) {
	w.PutU16(p.Width)
	w.PutU16(p.Height)
	w.PutBytes(p.Pixels)
}

// AppendScreenshotPixels encodes a ScreenshotReply's fixed fields and
// pixel-length prefix, then returns the raw pixelLen-byte pixel area
// for the caller to pack RGB triples into directly — the same wire
// bytes Encode produces, without staging the pixels in an intermediate
// slice. The returned slice is only valid until the next Writer call.
func AppendScreenshotPixels(w *Writer, width, height uint16, pixelLen int) []byte {
	w.PutU16(width)
	w.PutU16(height)
	w.PutU32(uint32(pixelLen))
	return w.AppendRaw(pixelLen)
}

// Decode deserializes the reply.
func (p *ScreenshotReply) Decode(r *Reader) {
	p.Width = r.U16()
	p.Height = r.U16()
	p.Pixels = append([]byte(nil), r.ByteSlice()...)
}

// PingReq is an empty round trip, used for synchronization.
type PingReq struct{}

func (q *PingReq) Op() uint16       { return OpPing }
func (q *PingReq) Encode(w *Writer) {}
func (q *PingReq) Decode(r *Reader) {}

// EmptyReply is a reply with no payload (Ping).
type EmptyReply struct{}

// Encode serializes the reply.
func (p *EmptyReply) Encode(w *Writer) {}

// Decode deserializes the reply.
func (p *EmptyReply) Decode(r *Reader) {}

// SetLatencyReq sets the simulated per-request IPC latency in
// microseconds, modeling the client/server process boundary the paper's
// measurements include.
type SetLatencyReq struct{ Micros uint32 }

func (q *SetLatencyReq) Op() uint16       { return OpSetLatency }
func (q *SetLatencyReq) Encode(w *Writer) { w.PutU32(q.Micros) }
func (q *SetLatencyReq) Decode(r *Reader) { q.Micros = r.U32() }

// QueryCountersReq asks for this connection's traffic counters.
type QueryCountersReq struct{}

func (q *QueryCountersReq) Op() uint16       { return OpQueryCounters }
func (q *QueryCountersReq) Encode(w *Writer) {}
func (q *QueryCountersReq) Decode(r *Reader) {}

// AttachSessionReq selects a virtual display on a session-multiplexing
// server (the farm handshake, docs/farm.md). A client sends it as its
// very first frame — before the server's setup block — to name the
// session it wants; the farm routes the connection to that session's
// server, which then sends its setup block as usual. The empty name
// selects the default session. A plain single-display server consumes
// the frame without assigning it a sequence number, so a session-aware
// client can speak to either kind of server.
type AttachSessionReq struct{ Session string }

func (q *AttachSessionReq) Op() uint16       { return OpAttachSession }
func (q *AttachSessionReq) Encode(w *Writer) { w.PutString(q.Session) }
func (q *AttachSessionReq) Decode(r *Reader) { q.Session = r.String() }

// CountersReply reports per-connection protocol traffic, used by the
// resource-cache experiments (§3.3 of the paper).
type CountersReply struct {
	Requests   uint64
	RoundTrips uint64
	EventsSent uint64
}

// Encode serializes the reply.
func (p *CountersReply) Encode(w *Writer) {
	w.PutU64(p.Requests)
	w.PutU64(p.RoundTrips)
	w.PutU64(p.EventsSent)
}

// Decode deserializes the reply.
func (p *CountersReply) Decode(r *Reader) {
	p.Requests = r.U64()
	p.RoundTrips = r.U64()
	p.EventsSent = r.U64()
}

// SetupReply is sent once by the server immediately after a connection is
// accepted (the analogue of the X11 connection setup block).
type SetupReply struct {
	ResourceIDBase uint32
	Root           ID
	Width, Height  uint16
}

// Encode serializes the setup block.
func (p *SetupReply) Encode(w *Writer) {
	w.PutU32(p.ResourceIDBase)
	w.PutU32(uint32(p.Root))
	w.PutU16(p.Width)
	w.PutU16(p.Height)
}

// Decode deserializes the setup block.
func (p *SetupReply) Decode(r *Reader) {
	p.ResourceIDBase = r.U32()
	p.Root = ID(r.U32())
	p.Width = r.U16()
	p.Height = r.U16()
}
