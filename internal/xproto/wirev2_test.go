package xproto

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// encodePayload renders a request's payload bytes (no outer framing).
func encodePayload(t *testing.T, req Request) []byte {
	t.Helper()
	w := AcquireWriter()
	defer ReleaseWriter(w)
	req.Encode(w)
	return append([]byte(nil), w.Bytes()...)
}

// collectSegment decodes a client→server segment envelope + inner frames
// with dc and returns the (op, payload) pairs seen.
func collectSegment(t *testing.T, dc *DeltaCache, seg []byte) []struct {
	op      uint16
	payload []byte
} {
	t.Helper()
	raw, _, err := DecodeSegmentPayload(seg, nil)
	if err != nil {
		t.Fatalf("DecodeSegmentPayload: %v", err)
	}
	var got []struct {
		op      uint16
		payload []byte
	}
	err = dc.DecodeRequestSegment(raw, func(op uint16, payload []byte) error {
		got = append(got, struct {
			op      uint16
			payload []byte
		}{op, append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("DecodeRequestSegment: %v", err)
	}
	return got
}

// segPayload strips the outer OpWireSeg frame header, returning the
// segment envelope bytes.
func segPayload(t *testing.T, frame []byte) []byte {
	t.Helper()
	op, payload, err := ReadRequestFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("ReadRequestFrame: %v", err)
	}
	if op != OpWireSeg {
		t.Fatalf("op = %d, want OpWireSeg", op)
	}
	return payload
}

func TestWireSegRoundTripCompressed(t *testing.T) {
	// Highly repetitive inner frames: compression must kick in, and the
	// decode must reproduce every (op, payload) pair in order.
	enc := NewDeltaCache()
	var inner []byte
	var want [][]byte
	for i := 0; i < 50; i++ {
		req := &PolyFillRectangleReq{Drawable: 3, Gc: 4, Rects: []Rect{{X: int16(i), Y: 10, W: 20, H: 20}}}
		p := encodePayload(t, req)
		want = append(want, p)
		inner, _ = AppendInnerRequestFrame(inner, req.Op(), p, enc)
	}
	frame, compressed := AppendWireSegRequestFrame(nil, inner, true)
	if !compressed {
		t.Fatalf("repetitive segment did not compress")
	}
	if len(frame) >= len(inner) {
		t.Fatalf("compressed frame (%d bytes) not smaller than raw inner frames (%d bytes)", len(frame), len(inner))
	}

	dec := NewDeltaCache()
	got := collectSegment(t, dec, segPayload(t, frame))
	if len(got) != len(want) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].op != OpPolyFillRectangle {
			t.Fatalf("frame %d: op = %d, want OpPolyFillRectangle", i, got[i].op)
		}
		if !bytes.Equal(got[i].payload, want[i]) {
			t.Fatalf("frame %d: payload mismatch\n got %x\nwant %x", i, got[i].payload, want[i])
		}
	}
}

func TestWireSegIncompressiblePassthrough(t *testing.T) {
	// Random bytes do not compress: the envelope must fall back to the
	// verbatim body and still round-trip.
	rng := rand.New(rand.NewSource(7))
	payload := make([]byte, 2048)
	rng.Read(payload)
	var inner []byte
	inner, _ = AppendInnerRequestFrame(inner, OpPing, payload, nil)
	frame, compressed := AppendWireSegRequestFrame(nil, inner, true)
	if compressed {
		t.Fatalf("random segment claims to have compressed")
	}
	dec := NewDeltaCache()
	got := collectSegment(t, dec, segPayload(t, frame))
	if len(got) != 1 || got[0].op != OpPing || !bytes.Equal(got[0].payload, payload) {
		t.Fatalf("passthrough round trip mismatch")
	}
}

func TestWireSegSmallSegmentNotCompressed(t *testing.T) {
	inner, _ := AppendInnerRequestFrame(nil, OpPing, nil, nil)
	if len(inner) >= minCompressSize {
		t.Fatalf("test premise broken: tiny frame is %d bytes", len(inner))
	}
	_, compressed := AppendWireSegRequestFrame(nil, inner, true)
	if compressed {
		t.Fatalf("segment below minCompressSize was compressed")
	}
}

func TestDeltaEncodingHitsAndReconstructs(t *testing.T) {
	// Second and later frames for the same opcode differ in a few bytes:
	// the encoder must switch to delta form and the decoder must
	// reconstruct exactly.
	enc, dec := NewDeltaCache(), NewDeltaCache()
	var deltas int
	for i := 0; i < 20; i++ {
		req := &PolyFillRectangleReq{Drawable: 3, Gc: 4, Rects: []Rect{{X: int16(i * 3), Y: int16(i), W: 64, H: 48}}}
		p := encodePayload(t, req)
		inner, usedDelta := AppendInnerRequestFrame(nil, req.Op(), p, enc)
		if i > 0 && !usedDelta {
			t.Fatalf("frame %d: near-identical frame did not delta-encode", i)
		}
		if usedDelta {
			deltas++
			if len(inner) >= 7+len(p) {
				t.Fatalf("frame %d: delta form (%d bytes) not smaller than raw (%d bytes)", i, len(inner), 7+len(p))
			}
		}
		var got []byte
		err := dec.DecodeRequestSegment(inner, func(op uint16, payload []byte) error {
			got = append(got[:0], payload...)
			return nil
		})
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: reconstruction mismatch\n got %x\nwant %x", i, got, p)
		}
	}
	if deltas != 19 {
		t.Fatalf("deltas = %d, want 19", deltas)
	}
}

func TestDeltaLargePayloadSkipsCache(t *testing.T) {
	// Payloads above DeltaMaxPayload must ship raw and leave the cache
	// untouched on both sides.
	enc, dec := NewDeltaCache(), NewDeltaCache()
	small := bytes.Repeat([]byte{0xAA}, 100)
	big := bytes.Repeat([]byte{0xBB}, DeltaMaxPayload+1)

	feed := func(p []byte) (usedDelta bool) {
		inner, used := AppendInnerRequestFrame(nil, OpPing, p, enc)
		if err := dec.DecodeRequestSegment(inner, func(op uint16, payload []byte) error {
			if !bytes.Equal(payload, p) {
				t.Fatalf("payload mismatch")
			}
			return nil
		}); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return used
	}
	feed(small)
	if feed(big) {
		t.Fatalf("oversized payload delta-encoded")
	}
	// The cache still holds `small`: an identical repeat must delta.
	if !feed(small) {
		t.Fatalf("cache entry was clobbered by the oversized payload")
	}
}

func TestDeltaCacheDesyncDetected(t *testing.T) {
	// Encode against one cache state, decode against another: the
	// stamped checksum must catch it before a wrong payload escapes.
	enc := NewDeltaCache()
	a := bytes.Repeat([]byte{1, 2, 3, 4}, 16)
	b := append([]byte(nil), a...)
	b[0] ^= 0xFF // guaranteed to change deltaSum (rot-by-64 is identity)
	AppendInnerRequestFrame(nil, OpPing, a, enc)
	inner, used := AppendInnerRequestFrame(nil, OpPing, a, enc)
	if !used {
		t.Fatalf("identical repeat did not delta-encode")
	}

	dec := NewDeltaCache()
	dec.update(OpPing, b) // desynced: decoder cached a different frame
	err := dec.DecodeRequestSegment(inner, func(uint16, []byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "desync") {
		t.Fatalf("desynced decode err = %v, want cache desync", err)
	}

	// And with no cached frame at all.
	err = NewDeltaCache().DecodeRequestSegment(inner, func(uint16, []byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "no cached frame") {
		t.Fatalf("cold-cache decode err = %v, want missing-frame error", err)
	}
}

func TestSegmentChecksumMismatch(t *testing.T) {
	inner, _ := AppendInnerRequestFrame(nil, OpPing, bytes.Repeat([]byte{5}, 200), nil)
	frame, _ := AppendWireSegRequestFrame(nil, inner, false)
	seg := segPayload(t, frame)
	// Flip one bit in the body (past the 9-byte envelope header).
	seg[9+len(seg[9:])/2] ^= 0x40
	if _, _, err := DecodeSegmentPayload(seg, nil); err == nil {
		t.Fatalf("corrupted segment decoded without error")
	}
}

func TestSegmentCorruptCompressedBody(t *testing.T) {
	inner, _ := AppendInnerRequestFrame(nil, OpPing, bytes.Repeat([]byte{5}, 500), nil)
	frame, compressed := AppendWireSegRequestFrame(nil, inner, true)
	if !compressed {
		t.Fatalf("repetitive segment did not compress")
	}
	seg := segPayload(t, frame)
	for i := 9; i < len(seg); i++ {
		mut := append([]byte(nil), seg...)
		mut[i] ^= 0xFF
		if raw, _, err := DecodeSegmentPayload(mut, nil); err == nil {
			// A decode that survives the flip must still have been
			// checksum-verified to the original bytes (CRC collision at
			// one flipped byte is impossible for CRC-32C).
			t.Fatalf("byte %d: corrupted compressed segment decoded to %d bytes without error", i, len(raw))
		}
	}
}

func TestSegmentTruncationAndFlags(t *testing.T) {
	inner, _ := AppendInnerRequestFrame(nil, OpPing, []byte{1, 2, 3}, nil)
	frame, _ := AppendWireSegRequestFrame(nil, inner, false)
	seg := segPayload(t, frame)

	if _, _, err := DecodeSegmentPayload(seg[:5], nil); err == nil {
		t.Fatalf("truncated envelope decoded")
	}
	if _, _, err := DecodeSegmentPayload(seg[:len(seg)-1], nil); err == nil {
		t.Fatalf("truncated body decoded")
	}
	mut := append([]byte(nil), seg...)
	mut[0] = 0x80 // unknown flag bit
	if _, _, err := DecodeSegmentPayload(mut, nil); err == nil {
		t.Fatalf("unknown flags decoded")
	}
}

func TestWalkServerFrames(t *testing.T) {
	var raw []byte
	frames := []struct {
		kind    byte
		payload []byte
	}{
		{KindReply, []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{KindEvent, []byte{9}},
		{KindError, nil},
	}
	for _, f := range frames {
		raw = append(raw, f.kind)
		raw = append(raw, byte(len(f.payload)>>24), byte(len(f.payload)>>16), byte(len(f.payload)>>8), byte(len(f.payload)))
		raw = append(raw, f.payload...)
	}
	sframe, _ := AppendWireSegServerFrame(nil, raw, true)
	kind, seg, err := ReadServerFrame(bytes.NewReader(sframe))
	if err != nil || kind != KindWireSeg {
		t.Fatalf("ReadServerFrame: kind %d, err %v", kind, err)
	}
	dec, _, err := DecodeSegmentPayload(seg, nil)
	if err != nil {
		t.Fatalf("DecodeSegmentPayload: %v", err)
	}
	i := 0
	err = WalkServerFrames(dec, func(kind byte, payload []byte) error {
		if kind != frames[i].kind || !bytes.Equal(payload, frames[i].payload) {
			t.Fatalf("frame %d mismatch: kind %d payload %x", i, kind, payload)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatalf("WalkServerFrames: %v", err)
	}
	if i != len(frames) {
		t.Fatalf("walked %d frames, want %d", i, len(frames))
	}

	// Truncated inner server frame must error, not loop or panic.
	if err := WalkServerFrames(dec[:len(dec)-3], func(byte, []byte) error { return nil }); err == nil {
		t.Fatalf("truncated server segment walked without error")
	}
}

func TestApplyDeltaOpsBounds(t *testing.T) {
	old := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	// copyLen beyond the cached frame.
	ops := []byte{}
	ops = appendUvarint(ops, 12) // copy 12 of an 8-byte cache
	ops = appendUvarint(ops, 0)
	if _, err := applyDeltaOps(nil, old, ops, 12); err == nil {
		t.Fatalf("copy beyond cached frame accepted")
	}
	// Literal length beyond the ops buffer.
	ops = appendUvarint(nil, 0)
	ops = appendUvarint(ops, 5)
	ops = append(ops, 1, 2) // only 2 literal bytes present
	if _, err := applyDeltaOps(nil, old, ops, 5); err == nil {
		t.Fatalf("literals beyond frame accepted")
	}
	// Reconstruction shorter than declared.
	ops = appendUvarint(nil, 2)
	ops = appendUvarint(ops, 0)
	if _, err := applyDeltaOps(nil, old, ops, 10); err == nil {
		t.Fatalf("short reconstruction accepted")
	}
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}
