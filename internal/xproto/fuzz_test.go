package xproto

import (
	"bytes"
	"testing"
)

// fuzzSeedRequestFrames builds representative v1 and v2 client→server
// frames to seed the corpus: a plain v1 request, a compressed v2
// segment, and a v2 segment containing a delta frame.
func fuzzSeedRequestFrames() [][]byte {
	seeds := [][]byte{
		AppendRequestFrame(nil, &PingReq{}),
		AppendRequestFrame(nil, &PolyFillRectangleReq{Drawable: 3, Gc: 4, Rects: []Rect{{X: 1, Y: 2, W: 3, H: 4}}}),
		AppendRequestFrame(nil, &UpgradeWireReq{Version: 2, Caps: WireCapCompress | WireCapDelta}),
	}
	// A compressible v2 segment of raw inner frames.
	var inner []byte
	p := bytes.Repeat([]byte{0x42}, 300)
	inner, _ = AppendInnerRequestFrame(inner, OpPing, p, nil)
	seg, _ := AppendWireSegRequestFrame(nil, inner, true)
	seeds = append(seeds, seg)
	// A v2 segment whose second inner frame is a delta of the first.
	dc := NewDeltaCache()
	inner = nil
	q := bytes.Repeat([]byte{7, 7, 7, 7}, 32)
	inner, _ = AppendInnerRequestFrame(inner, OpPing, q, dc)
	q2 := append([]byte(nil), q...)
	q2[10] ^= 0xFF
	inner, _ = AppendInnerRequestFrame(inner, OpPing, q2, dc)
	seg, _ = AppendWireSegRequestFrame(nil, inner, false)
	seeds = append(seeds, seg)
	return seeds
}

// FuzzReadRequestFrame drives the full client→server decode path —
// outer v1 framing, then (for OpWireSeg) the segment envelope, the
// optional flate body and the inner raw/delta frames against a fresh
// cache. The property under test is "no panic, no out-of-bounds": any
// malformed input must come back as an error.
func FuzzReadRequestFrame(f *testing.F) {
	for _, s := range fuzzSeedRequestFrames() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		op, payload, err := ReadRequestFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Exercise the generic decode path like the server's dispatcher.
		if req := NewRequest(op); req != nil {
			req.Decode(NewReader(payload))
		}
		if op != OpWireSeg {
			return
		}
		raw, _, err := DecodeSegmentPayload(payload, nil)
		if err != nil {
			return
		}
		dc := NewDeltaCache()
		// Feed each decoded inner frame back through update-rules via the
		// normal walk; errors are the expected outcome for garbage.
		_ = dc.DecodeRequestSegment(raw, func(op uint16, payload []byte) error {
			if req := NewRequest(op); req != nil {
				req.Decode(NewReader(payload))
			}
			return nil
		})
	})
}

// FuzzReadServerFrame drives the server→client decode path: outer v1
// framing, then (for KindWireSeg) the envelope and the concatenated
// inner server frames.
func FuzzReadServerFrame(f *testing.F) {
	// v1 seeds: a reply-shaped frame and an event-shaped frame.
	var reply []byte
	reply = append(reply, KindReply, 0, 0, 0, 8, 0, 0, 0, 0, 0, 0, 0, 1)
	f.Add(reply)
	var raw []byte
	raw = append(raw, KindEvent, 0, 0, 0, 1, 9)
	raw = append(raw, KindReply, 0, 0, 0, 8, 0, 0, 0, 0, 0, 0, 0, 2)
	seg, _ := AppendWireSegServerFrame(nil, raw, true)
	f.Add(seg)
	ack := []byte{KindWireAck, 0, 0, 0, 2, 2, WireCapCompress | WireCapDelta}
	f.Add(ack)
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, err := ReadServerFrame(bytes.NewReader(data))
		if err != nil || kind != KindWireSeg {
			return
		}
		raw, _, err := DecodeSegmentPayload(payload, nil)
		if err != nil {
			return
		}
		_ = WalkServerFrames(raw, func(kind byte, payload []byte) error {
			var ev Event
			if kind == KindEvent {
				ev.Decode(NewReader(payload))
			}
			return nil
		})
	})
}
