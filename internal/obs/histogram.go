package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of logarithmic histogram buckets. Bucket 0
// holds non-positive observations; bucket i (i ≥ 1) holds values v with
// 2^(i-1) ≤ v < 2^i nanoseconds, so the buckets span sub-nanosecond to
// ~292 years with a worst-case quantile error of 2×.
const NumBuckets = 64

// Histogram is a log-bucketed latency histogram safe for concurrent
// observation: all state is atomic, so recording costs a few atomic
// adds and never takes a lock.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [NumBuckets]atomic.Uint64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps an observation in nanoseconds to its bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v)) // v in [2^(i-1), 2^i)
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketBounds returns bucket i's half-open range [lo, hi).
func BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return math.MinInt64, 1
	}
	if i >= NumBuckets-1 {
		return 1 << (NumBuckets - 2), math.MaxInt64
	}
	return 1 << (i - 1), 1 << i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// ObserveCount records one unitless observation — a size or a count,
// not a duration. The buckets are the same power-of-two ranges, just
// read as plain values instead of nanoseconds. It exists so count-
// valued series (the client's flush.batch) do not have to launder
// their numbers through the duration-typed API.
func (h *Histogram) ObserveCount(v int64) { h.ObserveNs(v) }

// ObserveNs records one observation in nanoseconds.
func (h *Histogram) ObserveNs(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram, from which
// quantiles are estimated.
type HistogramSnapshot struct {
	Count    uint64
	Sum      int64
	Min, Max int64
	Buckets  [NumBuckets]uint64
}

// Snapshot copies the histogram state. Concurrent observers may land
// between the field reads; the snapshot is still internally coherent
// enough for quantile estimation (each bucket count is exact at its
// read instant).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
	}
	if s.Count == 0 {
		s.Min = 0
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q ≤ 1) in nanoseconds: the
// upper bound of the bucket holding the rank-q observation, clamped to
// the observed [Min, Max]. The estimate therefore never understates by
// more than 2× and never exceeds the true maximum.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			_, hi := BucketBounds(i)
			est := hi
			if est > s.Max {
				est = s.Max
			}
			if est < s.Min {
				est = s.Min
			}
			return est
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean in nanoseconds.
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / int64(s.Count)
}
