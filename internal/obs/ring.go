package obs

import "sync"

// Entry is one line in a Ring, tagged with its global sequence number
// (1-based, never reset by wraparound).
type Entry struct {
	Seq  uint64
	Text string
}

// Ring is a bounded, concurrency-safe ring buffer of text lines. The
// wire tracer appends a decoded line per protocol message; when the
// buffer is full the oldest lines are overwritten, so a long-running
// application keeps the most recent window of traffic.
type Ring struct {
	mu   sync.Mutex
	buf  []Entry // guarded by mu; fixed capacity
	next int     // guarded by mu; index of the next write
	size int     // guarded by mu; number of valid entries
	seq  uint64  // guarded by mu; total appends ever
}

// NewRing returns a ring holding at most capacity lines (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Entry, capacity)}
}

// Append adds a line, overwriting the oldest if full, and returns its
// sequence number.
func (r *Ring) Append(text string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.buf[r.next] = Entry{Seq: r.seq, Text: text}
	r.next = (r.next + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
	return r.seq
}

// Last returns the most recent n entries in chronological order (all
// retained entries if n ≤ 0 or n exceeds the retained count).
func (r *Ring) Last(n int) []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.size {
		n = r.size
	}
	out := make([]Entry, n)
	start := r.next - n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// Len reports how many entries are currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// Total reports how many entries were ever appended.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Reset discards all entries and restarts sequence numbering.
func (r *Ring) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next, r.size, r.seq = 0, 0, 0
}
