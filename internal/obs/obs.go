// Package obs is the observability substrate for the reproduction: a
// dependency-free metrics layer (atomic counters, gauges, log-bucketed
// latency histograms) behind a named registry, plus a bounded ring
// buffer used by the wire tracer (internal/obs/xtrace).
//
// The paper's quantitative claims — resource caching cuts server
// traffic (§3.3), send costs a fixed number of protocol hops (§6/§5) —
// were originally checked against a handful of ad-hoc counters. The
// registry replaces those with named, queryable metrics that every
// layer (xserver, xclient, tk) records into, and that the Tcl-level
// tkstats command exposes to scripts, so measurement itself is
// scriptable.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous atomic level (queue depths, occupancy).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named set of metrics. All methods are safe for
// concurrent use; metric accessors get-or-create, so instrumentation
// sites never need registration boilerplate.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter   // guarded by mu (the map; values are atomic)
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = newHistogram()
	r.hists[name] = h
	return h
}

// FindHistogram returns the named histogram without creating it.
func (r *Registry) FindHistogram(name string) (*Histogram, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.hists[name]
	return h, ok
}

// Counters snapshots every counter value, keyed by name.
func (r *Registry) Counters() map[string]uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Gauges snapshots every gauge value, keyed by name.
func (r *Registry) Gauges() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Histograms snapshots every histogram, keyed by name.
func (r *Registry) Histograms() map[string]HistogramSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes every metric, keeping the registered names alive (the
// *Counter/*Gauge/*Histogram pointers instrumentation sites hold stay
// valid).
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}
