package obs

import (
	"testing"
	"time"
)

// TestWaitCollectorAttributesContention: a goroutine that registered a
// collector sees its own contended acquisitions, identified by the
// mutex's histogram.
func TestWaitCollectorAttributesContention(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lockwait.tree")
	var mu TimedMutex
	mu.Instrument(h)

	mu.Lock() // force the worker onto the contended slow path
	got := make(chan int64, 4)
	started := make(chan struct{})
	go func() {
		remove := SetWaitCollector(func(hh *Histogram, ns int64) {
			if hh == h {
				got <- ns
			}
		})
		defer remove()
		close(started)
		mu.Lock() // TryLock fails (main holds it), so noteWait fires
		mu.Unlock()
	}()
	<-started
	time.Sleep(10 * time.Millisecond)
	mu.Unlock()

	select {
	case ns := <-got:
		if ns <= 0 {
			t.Fatalf("collected wait = %dns, want > 0 for a held lock", ns)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("collector never saw the contended wait")
	}
}

// TestWaitCollectorUntimedMutex: contended acquisitions of a mutex with
// no histogram still reach the collector, with a nil histogram (the
// caller labels them "other").
func TestWaitCollectorUntimedMutex(t *testing.T) {
	var mu TimedMutex // no Instrument
	mu.Lock()
	got := make(chan *Histogram, 1)
	started := make(chan struct{})
	go func() {
		remove := SetWaitCollector(func(hh *Histogram, ns int64) {
			select {
			case got <- hh:
			default:
			}
		})
		defer remove()
		close(started)
		mu.Lock()
		mu.Unlock()
	}()
	<-started
	time.Sleep(10 * time.Millisecond)
	mu.Unlock()
	select {
	case hh := <-got:
		if hh != nil {
			t.Fatalf("untimed mutex reported histogram %p, want nil", hh)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("collector never saw the untimed contended wait")
	}
}

// TestWaitCollectorScopedToGoroutine: contention on a goroutine with no
// collector is not attributed to another goroutine's collector, and a
// removed collector stops receiving.
func TestWaitCollectorScopedToGoroutine(t *testing.T) {
	var mu TimedMutex
	foreign := make(chan struct{}, 16)
	remove := SetWaitCollector(func(hh *Histogram, ns int64) {
		foreign <- struct{}{}
	})

	mu.Lock()
	done := make(chan struct{})
	started := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		mu.Lock() // contended, but this goroutine has no collector
		mu.Unlock()
	}()
	<-started
	time.Sleep(10 * time.Millisecond)
	mu.Unlock()
	<-done
	select {
	case <-foreign:
		t.Fatal("another goroutine's wait was attributed to this collector")
	default:
	}

	remove()
	// After removal, this goroutine's own contention is silent too.
	mu.Lock()
	go func() { time.Sleep(5 * time.Millisecond); mu.Unlock() }()
	// Contend from a helper holding the lock: reacquire here.
	mu.Lock()
	mu.Unlock()
	select {
	case <-foreign:
		t.Fatal("removed collector still receiving")
	default:
	}
}
