package obs

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests")
	c.Inc()
	c.Add(4)
	if got := r.Counter("requests").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := r.Gauge("depth").Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("Reset did not zero metrics")
	}
	// The pointers held by instrumentation sites stay live after Reset.
	c.Inc()
	if r.Counters()["requests"] != 1 {
		t.Fatal("counter pointer dead after Reset")
	}
}

// TestHistogramBucketBoundaries pins the log-bucket layout: bucket i
// (i ≥ 1) holds [2^(i-1), 2^i), bucket 0 holds v ≤ 0.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{1023, 10}, {1024, 11},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.bucket {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.bucket)
		}
		lo, hi := BucketBounds(c.bucket)
		if c.v < lo || c.v >= hi {
			if c.bucket != NumBuckets-1 { // top bucket is open-ended
				t.Errorf("value %d outside its bucket bounds [%d, %d)", c.v, lo, hi)
			}
		}
	}
	h := newHistogram()
	h.ObserveNs(1024)
	s := h.Snapshot()
	if s.Buckets[11] != 1 {
		t.Fatalf("1024 not in bucket 11: %v", s.Buckets[:13])
	}
	if s.Min != 1024 || s.Max != 1024 || s.Count != 1 || s.Sum != 1024 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	// 100 observations: 1..100 µs. Median is ~50 µs; the estimate is
	// the upper bound of the median's bucket, clamped to max.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	p50 := s.Quantile(0.50)
	if p50 < 50_000 || p50 > 131_072 { // true 50µs ≤ est ≤ 2^17 ns
		t.Fatalf("p50 = %d ns, want within [50000, 131072]", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < p50 || p99 > 100_000 { // clamped to observed max
		t.Fatalf("p99 = %d ns, want within [p50, 100000]", p99)
	}
	if q := s.Quantile(1.0); q != 100_000 {
		t.Fatalf("p100 = %d, want max 100000", q)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot quantile/mean not 0")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// run under -race this also proves the lock-free recording is sound.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Histogram("lat") // get-or-create raced across workers
			for i := 0; i < perWorker; i++ {
				h.ObserveNs(int64(w*perWorker + i + 1))
			}
		}(w)
	}
	// Concurrent snapshots while writes are in flight.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := r.Histogram("lat").Snapshot()
			if s.Count > workers*perWorker {
				t.Errorf("count overshot: %d", s.Count)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	s := r.Histogram("lat").Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var total uint64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
	if s.Min != 1 || s.Max != workers*perWorker {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	want := int64(workers*perWorker) * (workers*perWorker + 1) / 2
	if s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 10; i++ {
		r.Append(fmt.Sprintf("line %d", i))
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	got := r.Last(0)
	for i, e := range got {
		wantSeq := uint64(7 + i)
		if e.Seq != wantSeq || e.Text != fmt.Sprintf("line %d", wantSeq) {
			t.Fatalf("entry %d = %+v, want seq %d", i, e, wantSeq)
		}
	}
	// Last(n) smaller than retained returns the newest n.
	last2 := r.Last(2)
	if len(last2) != 2 || last2[1].Seq != 10 || last2[0].Seq != 9 {
		t.Fatalf("Last(2) = %+v", last2)
	}
	// Larger n than retained is clamped.
	if len(r.Last(100)) != 4 {
		t.Fatal("Last(100) not clamped")
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || len(r.Last(0)) != 0 {
		t.Fatal("Reset left state behind")
	}
	if seq := r.Append("fresh"); seq != 1 {
		t.Fatalf("seq after reset = %d", seq)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Append("x")
				r.Last(8)
			}
		}()
	}
	wg.Wait()
	if r.Total() != 4000 {
		t.Fatalf("total = %d", r.Total())
	}
}
