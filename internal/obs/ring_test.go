package obs

import (
	"fmt"
	"sync"
	"testing"
)

// These tests pin the Ring invariants the span and wire tracers depend
// on: the retained window is exactly the newest capacity entries in
// chronological order, sequence numbers are global (wraparound never
// reuses one), and concurrent appenders neither lose nor duplicate
// sequence numbers.

func TestRingCapacityBound(t *testing.T) {
	const capacity = 8
	r := NewRing(capacity)
	for i := 0; i < 5*capacity; i++ {
		r.Append(fmt.Sprintf("line %d", i))
		if r.Len() > capacity {
			t.Fatalf("Len = %d exceeds capacity %d after %d appends", r.Len(), capacity, i+1)
		}
	}
	if r.Len() != capacity {
		t.Fatalf("Len = %d, want full ring %d", r.Len(), capacity)
	}
	if r.Total() != 5*capacity {
		t.Fatalf("Total = %d, want %d", r.Total(), 5*capacity)
	}
}

func TestRingClampsCapacityToOne(t *testing.T) {
	for _, c := range []int{-3, 0} {
		r := NewRing(c)
		r.Append("a")
		r.Append("b")
		last := r.Last(0)
		if len(last) != 1 || last[0].Text != "b" {
			t.Fatalf("NewRing(%d): retained %v, want just the newest entry", c, last)
		}
	}
}

func TestRingWraparoundOrdering(t *testing.T) {
	const capacity = 4
	r := NewRing(capacity)
	// Land mid-buffer after wrapping twice, so the window straddles the
	// physical end of the backing array.
	const total = 2*capacity + 2
	for i := 1; i <= total; i++ {
		if seq := r.Append(fmt.Sprintf("line %d", i)); seq != uint64(i) {
			t.Fatalf("Append #%d returned seq %d", i, seq)
		}
	}
	entries := r.Last(0)
	if len(entries) != capacity {
		t.Fatalf("Last(0) returned %d entries, want %d", len(entries), capacity)
	}
	for i, e := range entries {
		wantSeq := uint64(total - capacity + 1 + i)
		if e.Seq != wantSeq || e.Text != fmt.Sprintf("line %d", wantSeq) {
			t.Errorf("entries[%d] = {%d %q}, want seq %d in chronological order", i, e.Seq, e.Text, wantSeq)
		}
	}
	// A partial window is the newest n, still oldest-first.
	last2 := r.Last(2)
	if len(last2) != 2 || last2[0].Seq != uint64(total-1) || last2[1].Seq != uint64(total) {
		t.Fatalf("Last(2) = %v, want the two newest entries oldest-first", last2)
	}
}

func TestRingConcurrentAppend(t *testing.T) {
	const (
		goroutines = 8
		each       = 500
		capacity   = 64
	)
	r := NewRing(capacity)
	var wg sync.WaitGroup
	seqs := make([][]uint64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seqs[g] = append(seqs[g], r.Append("x"))
				if i%17 == 0 {
					r.Last(8) // readers racing writers, for -race
					r.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != goroutines*each {
		t.Fatalf("Total = %d, want %d", r.Total(), goroutines*each)
	}
	// Every append got a unique sequence number and the full range was
	// handed out exactly once.
	seen := make(map[uint64]bool, goroutines*each)
	for g := range seqs {
		prev := uint64(0)
		for _, s := range seqs[g] {
			if seen[s] {
				t.Fatalf("sequence %d issued twice", s)
			}
			seen[s] = true
			if s <= prev {
				t.Fatalf("sequence not increasing within a goroutine: %d after %d", s, prev)
			}
			prev = s
		}
	}
	for s := uint64(1); s <= goroutines*each; s++ {
		if !seen[s] {
			t.Fatalf("sequence %d never issued", s)
		}
	}
	// The retained window is the newest capacity entries, contiguous.
	entries := r.Last(0)
	if len(entries) != capacity {
		t.Fatalf("retained %d entries, want %d", len(entries), capacity)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Seq != entries[i-1].Seq+1 {
			t.Fatalf("retained window not contiguous: %d then %d", entries[i-1].Seq, entries[i].Seq)
		}
	}
	if entries[len(entries)-1].Seq != goroutines*each {
		t.Fatalf("newest retained seq = %d, want %d", entries[len(entries)-1].Seq, goroutines*each)
	}
}
