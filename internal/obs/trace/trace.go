// Package trace is the end-to-end request-span layer: a sampled,
// low-overhead recorder that follows one protocol request through every
// layer of the stack — tk event dispatch, client encode/flush, the wire
// (including any fault-injected jitter), server dispatch with its
// per-subsystem lock waits, reply decode and cookie wake — and exports
// the result as Chrome trace-event JSON.
//
// Correlation is by protocol sequence number: the client numbers every
// request it sends and the server numbers every request it reads, in
// the same order, so both sides of one connection independently apply
// the same sampling rule (seq % interval == 0) and pick the same
// requests without any in-band tagging. Client and server spans for a
// sampled request share its sequence number and can be laid on one
// timeline; "The X-Files" failure mode — per-layer averages fine,
// individual requests collapsing on the wire — becomes directly
// visible as the gap between the client's round-trip span and the
// server's dispatch span.
//
// A Tracer with a zero interval records nothing and costs one atomic
// load per request on the instrumented paths; the acceptance gate for
// the pipelined benchmark is < 5% overhead at 1-in-64 sampling, so
// tracing can stay enabled in production-shaped runs.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Arg is one numeric span annotation (lock-wait nanoseconds by
// subsystem, flushed frame counts, byte counts).
type Arg struct {
	Key string
	Val int64
}

// Span is one timed phase of a request's journey. Start is wall-clock
// Unix nanoseconds, so spans recorded by different tracers on the same
// machine (a client process and a server process) align on one
// timeline without negotiating an epoch.
type Span struct {
	Seq   uint64 // protocol sequence number (0 for unkeyed spans, e.g. tk events)
	Name  string // phase: client.rtt, client.flush, client.wait, server.dispatch, tk.event
	Side  string // "client", "server" or "tk" — the Chrome trace process row
	Op    string // opcode or event name, may be empty
	Start int64  // Unix nanoseconds
	Dur   int64  // nanoseconds
	Args  []Arg  // optional annotations
}

// End returns the span's end time in Unix nanoseconds.
func (s Span) End() int64 { return s.Start + s.Dur }

// Arg returns the named annotation's value, or 0 when absent.
func (s Span) Arg(key string) int64 {
	for _, a := range s.Args {
		if a.Key == key {
			return a.Val
		}
	}
	return 0
}

// Now returns the current span timestamp (Unix nanoseconds).
func Now() int64 { return time.Now().UnixNano() }

// Tracer collects sampled spans into a bounded ring. All methods are
// safe for concurrent use; Record takes one short mutex hold, and
// Sampled is a single atomic load plus a modulo.
type Tracer struct {
	interval atomic.Uint64 // sample 1-in-interval requests; 0 disables

	mu      sync.Mutex
	spans   []Span // guarded by mu; fixed capacity ring
	next    int    // guarded by mu; index of the next write
	size    int    // guarded by mu; number of valid spans
	total   uint64 // guarded by mu; spans ever recorded
	dropped uint64 // guarded by mu; spans overwritten before export
}

// DefaultInterval is the sampling interval tracing-enabled entry points
// (wish -spans, xsimd) use unless told otherwise: 1 request in 64,
// chosen so the pipelined benchmark stays within 5% of its untraced
// throughput.
const DefaultInterval = 64

// New returns a tracer retaining at most capacity spans (minimum 1),
// sampling one request in interval (0 disables sampling).
func New(capacity, interval int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{spans: make([]Span, capacity)}
	t.SetInterval(interval)
	return t
}

// SetInterval changes the sampling interval: one request in n is
// sampled; n ≤ 0 disables sampling. Safe to call at any time.
func (t *Tracer) SetInterval(n int) {
	if n < 0 {
		n = 0
	}
	t.interval.Store(uint64(n))
}

// Interval returns the current sampling interval (0 when disabled).
func (t *Tracer) Interval() int { return int(t.interval.Load()) }

// Sampled reports whether the request with the given sequence number is
// selected for span recording. Both ends of a connection apply this to
// the same per-connection sequence numbers, so they agree on which
// requests to follow without coordination.
func (t *Tracer) Sampled(seq uint64) bool {
	n := t.interval.Load()
	return n != 0 && seq%n == 0
}

// Record appends one span, overwriting the oldest if the ring is full.
func (t *Tracer) Record(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.size == len(t.spans) {
		t.dropped++
	}
	t.spans[t.next] = s
	t.next = (t.next + 1) % len(t.spans)
	if t.size < len(t.spans) {
		t.size++
	}
	t.total++
}

// Spans returns the retained spans in recording order.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, t.size)
	start := t.next - t.size
	if start < 0 {
		start += len(t.spans)
	}
	for i := 0; i < t.size; i++ {
		out[i] = t.spans[(start+i)%len(t.spans)]
	}
	return out
}

// Len reports how many spans are currently retained.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}

// Total reports how many spans were ever recorded.
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped reports how many spans were overwritten before export.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all retained spans and the drop count. The sampling
// interval is kept.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next, t.size = 0, 0
	t.total, t.dropped = 0, 0
}
