package trace

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestSampled(t *testing.T) {
	tr := New(16, 4)
	want := map[uint64]bool{1: false, 2: false, 3: false, 4: true, 7: false, 8: true, 100: true}
	for seq, w := range want {
		if got := tr.Sampled(seq); got != w {
			t.Errorf("Sampled(%d) = %v, want %v at interval 4", seq, got, w)
		}
	}
	tr.SetInterval(0)
	if tr.Sampled(4) {
		t.Error("Sampled(4) true with sampling disabled")
	}
	if tr.Interval() != 0 {
		t.Errorf("Interval() = %d after SetInterval(0)", tr.Interval())
	}
	tr.SetInterval(-5)
	if tr.Sampled(0) || tr.Sampled(10) {
		t.Error("negative interval did not disable sampling")
	}
}

func TestRecordRingWraps(t *testing.T) {
	tr := New(4, 1)
	for i := 1; i <= 7; i++ {
		tr.Record(Span{Seq: uint64(i), Name: "s", Side: "client", Start: int64(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", tr.Len())
	}
	if tr.Total() != 7 || tr.Dropped() != 3 {
		t.Fatalf("Total/Dropped = %d/%d, want 7/3", tr.Total(), tr.Dropped())
	}
	spans := tr.Spans()
	for i, s := range spans {
		if want := uint64(i + 4); s.Seq != want {
			t.Errorf("spans[%d].Seq = %d, want %d (oldest-first after wrap)", i, s.Seq, want)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset did not clear the ring")
	}
	if tr.Interval() != 1 {
		t.Error("Reset cleared the sampling interval")
	}
}

func TestNewClampsCapacity(t *testing.T) {
	tr := New(0, 1)
	tr.Record(Span{Seq: 1})
	tr.Record(Span{Seq: 2})
	if tr.Len() != 1 || tr.Spans()[0].Seq != 2 {
		t.Fatalf("capacity-0 tracer should retain exactly the newest span, got %v", tr.Spans())
	}
}

func TestConcurrentRecord(t *testing.T) {
	tr := New(64, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Record(Span{Seq: uint64(g*1000 + i), Name: "s", Side: "server"})
				tr.Spans()
				tr.Sampled(uint64(i))
			}
		}(g)
	}
	wg.Wait()
	if tr.Total() != 1600 {
		t.Fatalf("Total = %d, want 1600", tr.Total())
	}
	if tr.Len() != 64 {
		t.Fatalf("Len = %d, want 64", tr.Len())
	}
}

func TestSpanHelpers(t *testing.T) {
	s := Span{Start: 100, Dur: 50, Args: []Arg{{Key: "bytes", Val: 7}}}
	if s.End() != 150 {
		t.Errorf("End = %d, want 150", s.End())
	}
	if s.Arg("bytes") != 7 || s.Arg("missing") != 0 {
		t.Error("Arg lookup wrong")
	}
}

func TestChromeJSON(t *testing.T) {
	tr := New(16, 1)
	tr.Record(Span{Seq: 8, Name: "client.rtt", Side: "client", Op: "Ping", Start: 5_000, Dur: 3_000})
	tr.Record(Span{Seq: 8, Name: "server.dispatch", Side: "server", Op: "Ping", Start: 6_000, Dur: 1_000,
		Args: []Arg{{Key: "lockwait.tree", Val: 200}}})
	data, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("output does not parse: %v", err)
	}
	var x, m int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			m++
		case "X":
			x++
			if ev.Tid != 8 {
				t.Errorf("tid = %d, want the sequence number 8", ev.Tid)
			}
			// Timestamps are rebased to the earliest span and in µs.
			if ev.Name == "client.rtt Ping" && (ev.Ts != 0 || ev.Dur != 3) {
				t.Errorf("client event ts/dur = %v/%v, want 0/3 µs", ev.Ts, ev.Dur)
			}
			if ev.Name == "server.dispatch Ping" {
				if ev.Ts != 1 {
					t.Errorf("server event ts = %v, want 1 µs after rebase", ev.Ts)
				}
				if ev.Args["lockwait.tree"] != float64(200) {
					t.Errorf("lock-wait arg lost: %v", ev.Args)
				}
			}
		}
	}
	if x != 2 || m != 2 {
		t.Fatalf("got %d X and %d M events, want 2 and 2", x, m)
	}
}
