package trace

import (
	"encoding/json"
	"sort"
)

// Chrome trace-event export: the retained spans rendered in the JSON
// format chrome://tracing and Perfetto load directly. Each side
// (client / server / tk) is a process row; each sampled request's
// sequence number is a thread row, so one request's journey through
// every layer reads as one horizontal lane across the processes.

// chromeEvent is one trace-event object ("X" complete events plus "M"
// process-name metadata).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the object form of the trace-event file.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// sidePids fixes the process-row order in the viewer: the toolkit on
// top, then the client library, then the server.
var sidePids = map[string]int{"tk": 1, "client": 2, "server": 3}

// ChromeJSON renders the retained spans as a Chrome trace-event JSON
// document. Timestamps are rebased to the earliest retained span so
// the viewer opens at zero.
func (t *Tracer) ChromeJSON() ([]byte, error) {
	return ChromeJSON(t.Spans())
}

// ChromeJSON renders any span slice (e.g. spans merged from a client
// and a server tracer) as a Chrome trace-event JSON document.
func ChromeJSON(spans []Span) ([]byte, error) {
	var base int64
	for i, s := range spans {
		if i == 0 || s.Start < base {
			base = s.Start
		}
	}
	events := make([]chromeEvent, 0, len(spans)+len(sidePids))
	sides := make(map[string]bool)
	for _, s := range spans {
		sides[s.Side] = true
	}
	sideNames := make([]string, 0, len(sides))
	for side := range sides {
		sideNames = append(sideNames, side)
	}
	sort.Strings(sideNames)
	for _, side := range sideNames {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pidFor(side),
			Args: map[string]any{"name": side},
		})
	}
	for _, s := range spans {
		name := s.Name
		if s.Op != "" {
			name += " " + s.Op
		}
		args := map[string]any{"seq": s.Seq}
		for _, a := range s.Args {
			args[a.Key] = a.Val
		}
		events = append(events, chromeEvent{
			Name: name,
			Cat:  s.Side,
			Ph:   "X",
			Ts:   float64(s.Start-base) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			Pid:  pidFor(s.Side),
			Tid:  s.Seq,
			Args: args,
		})
	}
	return json.Marshal(chromeTrace{TraceEvents: events})
}

func pidFor(side string) int {
	if pid, ok := sidePids[side]; ok {
		return pid
	}
	return 9
}
