// Package statshttp is the live introspection surface: an HTTP handler
// that exposes a metrics registry in Prometheus text-exposition format,
// the span tracer's retained ring as Chrome trace-event JSON, the SLO
// rollup (internal/obs/slo) as JSON, and the standard net/http/pprof
// profiles — so a long-running server (xsimd -stats-addr) can be
// inspected while it serves, without stopping it or linking a client.
package statshttp

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/obs/trace"
)

// Options configures the handler. Registry is required; a nil Tracer
// just leaves /spans empty and the SLO report span-less.
type Options struct {
	// Registry is exposed at /metrics and feeds the /slo report. For a
	// server process this is the server registry (so the report's
	// dispatch and lockwait sections fill in).
	Registry *obs.Registry
	// Tracer, when non-nil, backs /spans and the report's span rollup.
	Tracer *trace.Tracer
	// Target overrides the SLO success-rate objective (0 means
	// slo.DefaultTarget).
	Target float64
}

// NewMux returns a mux serving the introspection endpoints:
//
//	/metrics        registry snapshot, Prometheus text exposition
//	/spans          retained spans, Chrome trace-event JSON
//	/slo            SLO rollup, JSON (see internal/obs/slo)
//	/debug/pprof/   the standard Go profiles
func NewMux(opts Options) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(Exposition(opts.Registry)))
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		var spans []trace.Span
		if opts.Tracer != nil {
			spans = opts.Tracer.Spans()
		}
		data, err := trace.ChromeJSON(spans)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		opts.Registry.Counter("slo.reports").Inc()
		src := slo.Sources{Server: opts.Registry, Target: opts.Target}
		if opts.Tracer != nil {
			src.Spans = opts.Tracer.Spans()
		}
		data, err := slo.MarshalReport(slo.Build(src))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr and serves the introspection endpoints until
// the returned server is shut down. It returns the bound address (so
// addr may use port 0) and the server handle.
func Serve(addr string, opts Options) (*http.Server, net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: NewMux(opts)}
	go srv.Serve(l)
	return srv, l.Addr(), nil
}

// Exposition renders a registry snapshot in the Prometheus text
// exposition format. Metric names are sanitized (dots become
// underscores); histograms expose _count, _sum (in seconds) and
// quantile-labelled samples, like a Prometheus summary.
func Exposition(reg *obs.Registry) string {
	var b strings.Builder
	counters := reg.Counters()
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := sanitize(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, counters[name])
	}
	gauges := reg.Gauges()
	names = names[:0]
	for name := range gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := sanitize(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", n, n, gauges[name])
	}
	hists := reg.Histograms()
	names = names[:0]
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := sanitize(name)
		s := hists[name]
		fmt.Fprintf(&b, "# TYPE %s summary\n", n)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(&b, "%s{quantile=%q} %g\n", n, fmt.Sprintf("%g", q), float64(s.Quantile(q))/1e9)
		}
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", n, float64(s.Sum)/1e9, n, s.Count)
	}
	return b.String()
}

// sanitize maps a registry metric name onto the Prometheus name
// grammar: dots (and any other non-alphanumerics) become underscores.
func sanitize(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
