package statshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

func testMux(t *testing.T) (*http.ServeMux, *obs.Registry, *trace.Tracer) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("requests").Add(42)
	reg.Counter("requests.Ping").Add(40)
	reg.Gauge("inflight").Set(3)
	for i := 1; i <= 10; i++ {
		reg.Histogram("dispatch").ObserveNs(int64(i * 1000))
		reg.Histogram("lockwait.tree").ObserveNs(int64(i))
	}
	tr := trace.New(16, 1)
	tr.Record(trace.Span{Seq: 4, Name: "client.rtt", Side: "client", Op: "Ping", Start: 100, Dur: 10_000})
	tr.Record(trace.Span{Seq: 4, Name: "server.dispatch", Side: "server", Op: "Ping", Start: 2_100, Dur: 4_000})
	return NewMux(Options{Registry: reg, Tracer: tr}), reg, tr
}

func get(t *testing.T, mux *http.ServeMux, path string) (int, string, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, rec.Header().Get("Content-Type"), string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	mux, _, _ := testMux(t)
	code, ctype, body := get(t, mux, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("content-type %q", ctype)
	}
	for _, want := range []string{
		"# TYPE requests counter\nrequests 42",
		"requests_Ping 40",
		"# TYPE inflight gauge\ninflight 3",
		"# TYPE dispatch summary",
		`dispatch{quantile="0.99"}`,
		"dispatch_count 10",
		"lockwait_tree_count 10",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestSpansEndpoint(t *testing.T) {
	mux, _, _ := testMux(t)
	code, ctype, body := get(t, mux, "/spans")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("status %d content-type %q", code, ctype)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("spans output does not parse: %v", err)
	}
	x := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			x++
		}
	}
	if x != 2 {
		t.Fatalf("got %d X events, want 2", x)
	}
}

func TestSLOEndpoint(t *testing.T) {
	mux, reg, _ := testMux(t)
	code, ctype, body := get(t, mux, "/slo")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("status %d content-type %q", code, ctype)
	}
	var report struct {
		Dispatch *struct {
			Count uint64 `json:"count"`
		} `json:"dispatch"`
		Lockwait map[string]any `json:"lockwait"`
		Budget   struct {
			Requests uint64 `json:"requests"`
		} `json:"error_budget"`
		Spans *struct {
			Pairs int `json:"sampled_round_trips"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("slo output does not parse: %v", err)
	}
	if report.Dispatch == nil || report.Dispatch.Count != 10 {
		t.Fatalf("dispatch section wrong: %s", body)
	}
	if _, ok := report.Lockwait["tree"]; !ok {
		t.Fatalf("lockwait section wrong: %s", body)
	}
	if report.Budget.Requests != 42 {
		t.Fatalf("error budget requests = %d, want 42", report.Budget.Requests)
	}
	if report.Spans == nil || report.Spans.Pairs != 1 {
		t.Fatalf("span rollup wrong: %s", body)
	}
	// Each report served is itself counted.
	if got := reg.Counters()["slo.reports"]; got != 1 {
		t.Fatalf("slo.reports = %d after one request", got)
	}
}

func TestPprofEndpoint(t *testing.T) {
	mux, _, _ := testMux(t)
	code, _, body := get(t, mux, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d body %q…", code, body[:min(len(body), 80)])
	}
}

func TestServeBindsAndServes(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("requests").Inc()
	srv, addr, err := Serve("127.0.0.1:0", Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "requests 1") {
		t.Fatalf("live endpoint: status %d body %q", resp.StatusCode, body)
	}
}
