package slo

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

func TestIsErrorCounter(t *testing.T) {
	for name, want := range map[string]bool{
		"errors.async":      true,
		"fault.jitter":      true,
		"roundtrip.timeout": true,
		"protocol.corrupt":  true,
		"stalled":           true,
		"dropped":           true,
		"tk.send.timeout":   true,
		"requests":          false,
		"requests.Ping":     false,
		"roundtrips":        false,
		"trace.sampled":     false,
	} {
		if got := IsErrorCounter(name); got != want {
			t.Errorf("IsErrorCounter(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestBuildFoldsRegistries(t *testing.T) {
	server := obs.NewRegistry()
	client := obs.NewRegistry()
	for i := 0; i < 100; i++ {
		server.Histogram("dispatch").ObserveNs(int64(1000 * (i + 1)))
		client.Histogram("roundtrip").ObserveNs(int64(2000 * (i + 1)))
	}
	server.Histogram("lockwait.tree").ObserveNs(500)
	server.Histogram("lockwait.atoms").ObserveNs(0)
	server.Counter("requests").Add(100)
	server.Counter("stalled").Inc()
	client.Counter("errors.async").Add(2)
	client.Counter("requests").Add(40) // must NOT override the server's view

	r := Build(Sources{Server: server, Client: client, Target: 0.9})
	if r.Dispatch == nil || r.Dispatch.Count != 100 {
		t.Fatalf("dispatch quantiles missing or wrong: %+v", r.Dispatch)
	}
	if r.RoundTrip == nil || r.RoundTrip.Count != 100 {
		t.Fatalf("round-trip quantiles missing or wrong: %+v", r.RoundTrip)
	}
	if r.Dispatch.P50Ns > r.Dispatch.P99Ns || r.Dispatch.MaxNs < r.Dispatch.P99Ns {
		t.Fatalf("dispatch quantiles out of order: %+v", r.Dispatch)
	}
	if len(r.Lockwait) != 2 {
		t.Fatalf("lockwait = %v, want tree and atoms", r.Lockwait)
	}
	if _, ok := r.Lockwait["tree"]; !ok {
		t.Fatal("lockwait.tree missing (prefix should be stripped)")
	}

	eb := r.ErrorBudget
	if eb.Requests != 100 {
		t.Fatalf("requests = %d, want the server's 100", eb.Requests)
	}
	if eb.Errors != 3 {
		t.Fatalf("errors = %d, want 3 (stalled + 2 errors.async)", eb.Errors)
	}
	if eb.ByCounter["stalled"] != 1 || eb.ByCounter["errors.async"] != 2 {
		t.Fatalf("by_counter = %v", eb.ByCounter)
	}
	// Target 0.9 over 100 requests allows 10 errors; 3 spent leaves 70%.
	if eb.Allowed < 9.99 || eb.Allowed > 10.01 {
		t.Fatalf("allowed = %g, want 10", eb.Allowed)
	}
	if eb.RemainingFraction < 0.69 || eb.RemainingFraction > 0.71 {
		t.Fatalf("remaining = %g, want 0.7", eb.RemainingFraction)
	}
}

func TestBuildErrorBudgetEdges(t *testing.T) {
	// Overrun clamps to zero.
	reg := obs.NewRegistry()
	reg.Counter("requests").Add(100)
	reg.Counter("stalled").Add(50)
	r := Build(Sources{Server: reg, Target: 0.9})
	if r.ErrorBudget.RemainingFraction != 0 {
		t.Fatalf("overrun budget remaining = %g, want 0", r.ErrorBudget.RemainingFraction)
	}

	// No requests, no errors: the budget is intact, not NaN.
	r = Build(Sources{Server: obs.NewRegistry()})
	if r.ErrorBudget.RemainingFraction != 1 {
		t.Fatalf("empty-run budget remaining = %g, want 1", r.ErrorBudget.RemainingFraction)
	}
	if r.ErrorBudget.Target != DefaultTarget {
		t.Fatalf("target = %g, want default %g", r.ErrorBudget.Target, DefaultTarget)
	}

	// Client-only sources still produce a requests count.
	client := obs.NewRegistry()
	client.Counter("requests").Add(7)
	r = Build(Sources{Client: client})
	if r.ErrorBudget.Requests != 7 {
		t.Fatalf("client-only requests = %d, want 7", r.ErrorBudget.Requests)
	}
}

func TestSpanRollup(t *testing.T) {
	var spans []trace.Span
	// 10 paired round trips: rtt 10µs, dispatch 4µs → 6µs of wire.
	for i := 1; i <= 10; i++ {
		spans = append(spans,
			trace.Span{Seq: uint64(i), Name: "client.rtt", Dur: 10_000},
			trace.Span{Seq: uint64(i), Name: "server.dispatch", Dur: 4_000},
		)
	}
	// Unpaired and unrelated spans must be ignored.
	spans = append(spans,
		trace.Span{Seq: 99, Name: "client.rtt", Dur: 1_000_000},
		trace.Span{Seq: 5, Name: "client.flush", Dur: 999},
	)
	r := Build(Sources{Spans: spans})
	if r.Spans == nil {
		t.Fatal("no span rollup")
	}
	if r.Spans.SampledRoundTrips != 10 {
		t.Fatalf("sampled round trips = %d, want 10", r.Spans.SampledRoundTrips)
	}
	if r.Spans.WireP50Ns != 6_000 || r.Spans.WireMaxNs != 6_000 {
		t.Fatalf("wire p50/max = %d/%d, want 6000/6000", r.Spans.WireP50Ns, r.Spans.WireMaxNs)
	}

	// A dispatch longer than its round trip (clock skew between
	// processes) must not produce a negative wire time.
	r = Build(Sources{Spans: []trace.Span{
		{Seq: 1, Name: "client.rtt", Dur: 1_000},
		{Seq: 1, Name: "server.dispatch", Dur: 5_000},
	}})
	if r.Spans != nil {
		t.Fatalf("negative wire sample should be dropped, got %+v", r.Spans)
	}
}

func TestMarshalReport(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("requests").Add(10)
	reg.Histogram("dispatch").ObserveNs(100)
	data, err := MarshalReport(Build(Sources{Server: reg}))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"dispatch"`, `"error_budget"`, `"p99_ns"`, `"remaining_fraction"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("marshaled report missing %s: %s", want, data)
		}
	}
}
