// Package slo folds metric-registry snapshots and request spans into a
// machine-readable service-level report: p50/p99 dispatch and
// round-trip latency, per-subsystem lock-wait quantiles, and an error
// budget computed from the error-class counters. It is the rollup the
// standing regression harness (ROADMAP item 5) asserts against —
// BENCH_slo.json is one of these reports serialized by the OBS_BENCH
// gate — and the live introspection endpoint (internal/obs/statshttp)
// serves it from a running server.
package slo

import (
	"encoding/json"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// DefaultTarget is the success-rate objective the error budget is
// computed against when Sources.Target is zero: 99.9% of requests
// complete without an error-class event.
const DefaultTarget = 0.999

// Quantiles summarizes one latency histogram.
type Quantiles struct {
	Count  uint64 `json:"count"`
	P50Ns  int64  `json:"p50_ns"`
	P99Ns  int64  `json:"p99_ns"`
	MeanNs int64  `json:"mean_ns"`
	MaxNs  int64  `json:"max_ns"`
}

func fromSnapshot(s obs.HistogramSnapshot) Quantiles {
	return Quantiles{
		Count:  s.Count,
		P50Ns:  s.Quantile(0.5),
		P99Ns:  s.Quantile(0.99),
		MeanNs: s.Mean(),
		MaxNs:  s.Max,
	}
}

// ErrorBudget is the error-class accounting against the SLO target.
// Errors counts every increment of an error-class counter: errors.*,
// fault.*, roundtrip.timeout, protocol.corrupt, stalled, dropped and
// tk.send.timeout. Allowed is how many such events the target tolerates
// for the observed request volume; RemainingFraction is the unspent
// part of that allowance (1 = clean, 0 = budget exhausted or overrun).
type ErrorBudget struct {
	Requests          uint64            `json:"requests"`
	Errors            uint64            `json:"errors"`
	ByCounter         map[string]uint64 `json:"by_counter,omitempty"`
	Target            float64           `json:"target_success_rate"`
	Allowed           float64           `json:"allowed_errors"`
	RemainingFraction float64           `json:"remaining_fraction"`
}

// SpanRollup is what the sampled spans add beyond the histograms: the
// wire-plus-queue component of sampled round trips (client round-trip
// time minus the server's dispatch service time for the same sequence
// number), which is where thin-client collapse hides.
type SpanRollup struct {
	SampledRoundTrips int   `json:"sampled_round_trips"`
	WireP50Ns         int64 `json:"wire_p50_ns"`
	WireP99Ns         int64 `json:"wire_p99_ns"`
	WireMaxNs         int64 `json:"wire_max_ns"`
}

// Report is the rollup. Dispatch and Lockwait come from a server
// registry, RoundTrip from a client registry; either side may be
// absent (e.g. the live endpoint on a standalone server has no client
// registry).
type Report struct {
	Dispatch    *Quantiles           `json:"dispatch,omitempty"`
	RoundTrip   *Quantiles           `json:"round_trip,omitempty"`
	Lockwait    map[string]Quantiles `json:"lockwait,omitempty"`
	ErrorBudget ErrorBudget          `json:"error_budget"`
	Spans       *SpanRollup          `json:"spans,omitempty"`
}

// Sources names the inputs to Build. Nil registries and empty span
// slices are skipped; Target 0 means DefaultTarget.
type Sources struct {
	Server *obs.Registry
	Client *obs.Registry
	Spans  []trace.Span
	Target float64
}

// errorCounterPrefixes and errorCounterNames classify registry counters
// as error-class: each increment is one spent unit of error budget.
var errorCounterPrefixes = []string{"errors.", "fault."}
var errorCounterNames = map[string]bool{
	"roundtrip.timeout": true,
	"protocol.corrupt":  true,
	"stalled":           true,
	"dropped":           true,
	"tk.send.timeout":   true,
}

// IsErrorCounter reports whether a counter name is error-class for
// budget purposes.
func IsErrorCounter(name string) bool {
	for _, p := range errorCounterPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return errorCounterNames[name]
}

// MarshalReport renders a report as indented JSON — the format both
// BENCH_slo.json and the /slo endpoint emit.
func MarshalReport(r Report) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Build assembles a report from the sources.
func Build(src Sources) Report {
	target := src.Target
	if target == 0 {
		target = DefaultTarget
	}
	r := Report{
		ErrorBudget: ErrorBudget{
			Target:    target,
			ByCounter: make(map[string]uint64),
		},
	}
	if src.Server != nil {
		hists := src.Server.Histograms()
		if s, ok := hists["dispatch"]; ok {
			q := fromSnapshot(s)
			r.Dispatch = &q
		}
		for name, s := range hists {
			if sub, ok := strings.CutPrefix(name, "lockwait."); ok {
				if r.Lockwait == nil {
					r.Lockwait = make(map[string]Quantiles)
				}
				r.Lockwait[sub] = fromSnapshot(s)
			}
		}
	}
	if src.Client != nil {
		if s, ok := src.Client.Histograms()["roundtrip"]; ok {
			q := fromSnapshot(s)
			r.RoundTrip = &q
		}
	}

	// Requests: the server's view when present (it covers every client),
	// otherwise the client's own.
	budgetFrom := src.Server
	if budgetFrom == nil {
		budgetFrom = src.Client
	}
	if budgetFrom != nil {
		r.ErrorBudget.Requests = budgetFrom.Counters()["requests"]
	}
	for _, reg := range []*obs.Registry{src.Server, src.Client} {
		if reg == nil {
			continue
		}
		for name, v := range reg.Counters() {
			if v > 0 && IsErrorCounter(name) {
				r.ErrorBudget.Errors += v
				r.ErrorBudget.ByCounter[name] += v
			}
		}
	}
	allowed := (1 - target) * float64(r.ErrorBudget.Requests)
	r.ErrorBudget.Allowed = allowed
	switch {
	case allowed <= 0:
		if r.ErrorBudget.Errors == 0 {
			r.ErrorBudget.RemainingFraction = 1
		}
	case float64(r.ErrorBudget.Errors) >= allowed:
		r.ErrorBudget.RemainingFraction = 0
	default:
		r.ErrorBudget.RemainingFraction = 1 - float64(r.ErrorBudget.Errors)/allowed
	}

	if rollup := rollupSpans(src.Spans); rollup != nil {
		r.Spans = rollup
	}
	return r
}

// rollupSpans pairs client.rtt and server.dispatch spans by sequence
// number and summarizes the difference — the time a sampled round trip
// spent outside the server's dispatch path (wire, queues, simulated
// latency, fault-injected jitter).
func rollupSpans(spans []trace.Span) *SpanRollup {
	rtt := make(map[uint64]int64)
	disp := make(map[uint64]int64)
	for _, s := range spans {
		switch s.Name {
		case "client.rtt":
			rtt[s.Seq] = s.Dur
		case "server.dispatch":
			disp[s.Seq] = s.Dur
		}
	}
	var wire []int64
	for seq, d := range rtt {
		if sd, ok := disp[seq]; ok {
			if w := d - sd; w >= 0 {
				wire = append(wire, w)
			}
		}
	}
	if len(wire) == 0 {
		return nil
	}
	sort.Slice(wire, func(i, j int) bool { return wire[i] < wire[j] })
	rank := func(q float64) int64 {
		i := int(q*float64(len(wire))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(wire) {
			i = len(wire) - 1
		}
		return wire[i]
	}
	return &SpanRollup{
		SampledRoundTrips: len(wire),
		WireP50Ns:         rank(0.50),
		WireP99Ns:         rank(0.99),
		WireMaxNs:         wire[len(wire)-1],
	}
}
