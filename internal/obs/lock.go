package obs

import (
	"sync"
	"time"
)

// Lock-wait instrumentation. TimedMutex and TimedRWMutex are drop-in
// mutexes that record how long each acquisition waited into an attached
// Histogram, so per-subsystem lock contention (the xserver's
// "lockwait.*" histograms, docs/observability.md) is measurable with
// the same machinery as every other latency in the system.
//
// The method sets are intentionally identical to sync.Mutex /
// sync.RWMutex (Lock/Unlock, plus RLock/RUnlock), so tkcheck's lock
// analyzer — which matches recv.<field>.Lock() syntactically — checks
// "guarded by <mutex>" annotations against timed mutexes exactly as it
// does against plain ones.

// TimedMutex is a sync.Mutex whose Lock records the acquisition wait.
type TimedMutex struct {
	mu   sync.Mutex
	hist *Histogram // set once by Instrument before concurrent use
}

// Instrument attaches the wait histogram. Call before the mutex sees
// concurrent use (typically at construction); a nil or absent histogram
// leaves the mutex untimed.
func (m *TimedMutex) Instrument(h *Histogram) { m.hist = h }

// Lock acquires the mutex. An uncontended acquisition takes the TryLock
// fast path and records a zero wait, so the histogram's count is the
// total number of acquisitions and its nonzero tail is the contended
// ones.
func (m *TimedMutex) Lock() {
	if m.mu.TryLock() {
		if m.hist != nil {
			m.hist.ObserveNs(0)
		}
		return
	}
	start := time.Now()
	m.mu.Lock()
	wait := int64(time.Since(start))
	if m.hist != nil {
		m.hist.ObserveNs(wait)
	}
	noteWait(m.hist, wait)
}

// Unlock releases the mutex.
func (m *TimedMutex) Unlock() { m.mu.Unlock() }

// TimedRWMutex is a sync.RWMutex whose Lock and RLock record the
// acquisition wait into the attached histogram.
type TimedRWMutex struct {
	mu   sync.RWMutex
	hist *Histogram // set once by Instrument before concurrent use
}

// Instrument attaches the wait histogram (see TimedMutex.Instrument).
func (m *TimedRWMutex) Instrument(h *Histogram) { m.hist = h }

// Lock acquires the write lock, recording the wait.
func (m *TimedRWMutex) Lock() {
	if m.mu.TryLock() {
		if m.hist != nil {
			m.hist.ObserveNs(0)
		}
		return
	}
	start := time.Now()
	m.mu.Lock()
	wait := int64(time.Since(start))
	if m.hist != nil {
		m.hist.ObserveNs(wait)
	}
	noteWait(m.hist, wait)
}

// Unlock releases the write lock.
func (m *TimedRWMutex) Unlock() { m.mu.Unlock() }

// RLock acquires the read lock, recording the wait.
func (m *TimedRWMutex) RLock() {
	if m.mu.TryRLock() {
		if m.hist != nil {
			m.hist.ObserveNs(0)
		}
		return
	}
	start := time.Now()
	m.mu.RLock()
	wait := int64(time.Since(start))
	if m.hist != nil {
		m.hist.ObserveNs(wait)
	}
	noteWait(m.hist, wait)
}

// RUnlock releases the read lock.
func (m *TimedRWMutex) RUnlock() { m.mu.RUnlock() }
