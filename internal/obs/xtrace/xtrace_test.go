package xtrace_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/xtrace"
	"repro/internal/xclient"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTraceGolden scripts a deterministic request/reply/event sequence
// through a tapped connection and compares the decoded trace against a
// golden file. Each step ends in a round trip, so the wire order — and
// therefore the trace — is fully determined.
func TestTraceGolden(t *testing.T) {
	srv := xserver.New(200, 150)
	defer srv.Close()
	tr := xtrace.New(64)
	d, err := xclient.Open(tr.Tap(srv.ConnectPipe()))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// One async request with an event consequence, then a round trip.
	// The MapNotify event is emitted by the server while handling
	// MapWindow, so it precedes the Ping reply on the wire.
	w := d.CreateWindow(d.Root, 10, 20, 30, 40, 0, xclient.WindowAttributes{
		EventMask: xproto.StructureNotifyMask,
	})
	d.MapWindow(w)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	// A request with a reply of its own.
	if _, err := d.InternAtom("XTRACE_TEST"); err != nil {
		t.Fatal(err)
	}
	// A protocol error: QueryTree on a bogus window.
	if _, err := d.QueryTree(xproto.ID(999)); err == nil {
		t.Fatal("expected x error for bogus window")
	}

	got := strings.Join(tr.Dump(0), "\n") + "\n"
	golden := filepath.Join("testdata", "trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Fatalf("trace mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestTraceCoverageAndReset spot-checks the line kinds the golden file
// relies on and that Reset clears the ring but keeps reply matching
// coherent.
func TestTraceCoverageAndReset(t *testing.T) {
	srv := xserver.New(100, 100)
	defer srv.Close()
	tr := xtrace.New(8)
	d, err := xclient.Open(tr.Tap(srv.ConnectPipe()))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	w := d.CreateWindow(d.Root, 0, 0, 10, 10, 0, xclient.WindowAttributes{
		EventMask: xproto.StructureNotifyMask,
	})
	d.MapWindow(w)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	var haveReq, haveRep, haveEvt bool
	for _, e := range tr.Last(0) {
		switch {
		case strings.HasPrefix(e.Text, "-> req "):
			haveReq = true
		case strings.HasPrefix(e.Text, "<- rep "):
			haveRep = true
		case strings.HasPrefix(e.Text, "<- evt "):
			haveEvt = true
		}
	}
	if !haveReq || !haveRep || !haveEvt {
		t.Fatalf("trace missing kinds: req=%v rep=%v evt=%v\n%s",
			haveReq, haveRep, haveEvt, strings.Join(tr.Dump(0), "\n"))
	}

	tr.Reset()
	if tr.Total() != 0 || len(tr.Last(0)) != 0 {
		t.Fatal("Reset left lines behind")
	}
	// Reply matching still works across a Reset: a post-Reset round
	// trip is decoded with its opcode name.
	if _, err := d.InternAtom("AFTER_RESET"); err != nil {
		t.Fatal(err)
	}
	dump := strings.Join(tr.Dump(0), "\n")
	if !strings.Contains(dump, "InternAtom") || !strings.Contains(dump, "<- rep ") {
		t.Fatalf("post-reset trace = %s", dump)
	}
}

// TestTraceRingBounded: with a tiny ring, only the most recent lines
// survive and sequence numbers keep counting.
func TestTraceRingBounded(t *testing.T) {
	srv := xserver.New(100, 100)
	defer srv.Close()
	tr := xtrace.New(4)
	d, err := xclient.Open(tr.Tap(srv.ConnectPipe()))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 20; i++ {
		if err := d.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	lines := tr.Last(0)
	if len(lines) != 4 {
		t.Fatalf("retained %d lines, want 4", len(lines))
	}
	if tr.Total() < 20 {
		t.Fatalf("total = %d, want ≥ 20", tr.Total())
	}
	if lines[3].Seq != tr.Total() {
		t.Fatalf("newest seq %d != total %d", lines[3].Seq, tr.Total())
	}
}
