// Package xtrace is an xscope-style wire tracer for the simulated X
// protocol: it taps a client connection and decodes every request,
// reply, error and event that crosses it into human-readable,
// sequence-numbered trace lines in a bounded ring buffer
// (internal/obs). Gunther's "The X-Files" observation — X11
// performance pathologies are only diagnosable from per-request
// protocol traces — is the motivation: counters say *how much*
// crossed the wire, the trace says *what*, in order.
//
// The tap sits between xclient and the transport (net.Pipe or TCP), so
// it sees exactly the bytes that would cross a process boundary; it
// never modifies them.
package xtrace

import (
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/xproto"
)

// maxSummary bounds the decoded-field portion of a trace line so bulk
// requests (property data, images) cannot flood the ring.
const maxSummary = 160

// Tracer decodes tapped frames into a ring of trace lines.
type Tracer struct {
	ring *obs.Ring

	mu       sync.Mutex
	reqSeq   uint64            // guarded by mu; client request sequence numbers
	pending  map[uint64]uint16 // guarded by mu; request seq → opcode, awaiting reply
	sawSetup bool              // guarded by mu; the first reply is the setup block
}

// New returns a tracer retaining the most recent capacity lines.
func New(capacity int) *Tracer {
	return &Tracer{
		ring:    obs.NewRing(capacity),
		pending: make(map[uint64]uint16),
	}
}

// Tap wraps a client-side connection so all traffic through it is
// traced. Reads and writes pass straight through; decoding happens on
// a copy of the byte stream.
func (t *Tracer) Tap(c net.Conn) net.Conn {
	tc := &tapConn{Conn: c, t: t}
	tc.wr.hdrLen = 2 // client→server: [u16 opcode][u32 len]
	tc.wr.emit = t.request
	tc.rd.hdrLen = 1 // server→client: [u8 kind][u32 len]
	tc.rd.emit = t.serverMsg
	return tc
}

// Last returns the most recent n trace entries in order (all retained
// entries if n ≤ 0).
func (t *Tracer) Last(n int) []obs.Entry { return t.ring.Last(n) }

// Total reports how many lines were ever traced.
func (t *Tracer) Total() uint64 { return t.ring.Total() }

// Reset clears the ring and restarts line numbering. Request sequence
// numbers and the reply-matching state are kept: they must stay in sync
// with the connection.
func (t *Tracer) Reset() { t.ring.Reset() }

// Dump formats the most recent n entries (all if n ≤ 0), one
// sequence-numbered line each.
func (t *Tracer) Dump(n int) []string {
	entries := t.ring.Last(n)
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = fmt.Sprintf("%04d %s", e.Seq, e.Text)
	}
	return out
}

// request decodes and records one client→server frame.
func (t *Tracer) request(hdr, payload []byte) {
	op := binary.BigEndian.Uint16(hdr)
	t.mu.Lock()
	t.reqSeq++
	seq := t.reqSeq
	if xproto.HasReply(op) {
		t.pending[seq] = op
	}
	t.mu.Unlock()

	summary := ""
	if req := xproto.NewRequest(op); req != nil {
		r := xproto.NewReader(payload)
		req.Decode(r)
		if r.Err() == nil {
			summary = summarize(req)
		} else {
			summary = fmt.Sprintf("<malformed: %v>", r.Err())
		}
	}
	t.ring.Append(fmt.Sprintf("-> req #%d %s %s", seq, xproto.OpName(op), summary))
}

// serverMsg decodes and records one server→client frame.
func (t *Tracer) serverMsg(hdr, payload []byte) {
	switch hdr[0] {
	case xproto.KindReply:
		t.mu.Lock()
		first := !t.sawSetup
		t.sawSetup = true
		t.mu.Unlock()
		if first {
			var setup xproto.SetupReply
			setup.Decode(xproto.NewReader(payload))
			t.ring.Append(fmt.Sprintf("<- setup root=%d base=%#x %dx%d",
				setup.Root, setup.ResourceIDBase, setup.Width, setup.Height))
			return
		}
		r := xproto.NewReader(payload)
		seq := r.U64()
		t.mu.Lock()
		op, ok := t.pending[seq]
		delete(t.pending, seq)
		t.mu.Unlock()
		name := "reply"
		if ok {
			name = xproto.OpName(op)
		}
		t.ring.Append(fmt.Sprintf("<- rep #%d %s len=%d", seq, name, len(payload)-8))
	case xproto.KindError:
		r := xproto.NewReader(payload)
		seq := r.U64()
		t.mu.Lock()
		delete(t.pending, seq)
		t.mu.Unlock()
		t.ring.Append(fmt.Sprintf("<- err #%d %q", seq, r.String()))
	case xproto.KindEvent:
		var ev xproto.Event
		ev.Decode(xproto.NewReader(payload))
		t.ring.Append("<- evt " + ev.String())
	}
}

// summarize renders a decoded request's fields compactly: the struct's
// field values without the type name, truncated to maxSummary.
func summarize(req xproto.Request) string {
	s := fmt.Sprintf("%+v", req)
	s = strings.TrimPrefix(s, "&")
	if len(s) > maxSummary {
		s = s[:maxSummary] + "…}"
	}
	return s
}

// tapConn passes bytes through to the underlying connection while
// feeding copies to per-direction frame scanners. Reads happen on the
// client's read loop and writes under the client's send lock, so each
// scanner is touched by one goroutine only.
type tapConn struct {
	net.Conn
	t      *Tracer
	rd, wr frameScanner
}

func (c *tapConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.rd.feed(p[:n])
	}
	return n, err
}

// Write feeds the scanner before the bytes hit the wire: on a blocking
// transport (net.Pipe) the server may read, process and answer a frame
// before Write even returns, and the request must be traced before its
// reply. A frame recorded here but lost to a failed write is traced as
// sent — which is what the client attempted.
func (c *tapConn) Write(p []byte) (int, error) {
	c.wr.feed(p)
	return c.Conn.Write(p)
}

// frameScanner reassembles length-prefixed frames from an arbitrary
// byte-chunk stream: a header of hdrLen bytes, a u32 payload length,
// then the payload.
type frameScanner struct {
	hdrLen int
	buf    []byte
	emit   func(hdr, payload []byte)
}

func (s *frameScanner) feed(p []byte) {
	s.buf = append(s.buf, p...)
	for {
		if len(s.buf) < s.hdrLen+4 {
			return
		}
		n := int(binary.BigEndian.Uint32(s.buf[s.hdrLen:]))
		total := s.hdrLen + 4 + n
		if len(s.buf) < total {
			return
		}
		s.emit(s.buf[:s.hdrLen], s.buf[s.hdrLen+4:total])
		s.buf = append(s.buf[:0], s.buf[total:]...)
	}
}
