package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Goroutine-scoped wait attribution. The lockwait.* histograms say how
// much each subsystem mutex is contended in aggregate; they cannot say
// which request paid a given wait. A dispatch path that wants its lock
// waits attributed to it (the span tracer's sampled server dispatches,
// docs/observability.md "Request spans") registers a collector for its
// goroutine; while registered, every contended TimedMutex/TimedRWMutex
// acquisition on that goroutine reports its wait to the collector as
// well as to the histogram.
//
// The mechanism is pay-for-use: with no collector registered anywhere,
// the contended lock path performs a single atomic load and nothing
// else, and the uncontended TryLock fast path is untouched.

var (
	// waitCollectors maps goroutine id → collector. Entries exist only
	// between SetWaitCollector and its returned remove func, i.e. for
	// the duration of one sampled dispatch.
	waitCollectors sync.Map // uint64 → func(*Histogram, int64)

	// waitCollectorN counts live collectors, so noteWait can skip the
	// map lookup (and the goroutine-id derivation) entirely when no one
	// is listening.
	waitCollectorN atomic.Int32
)

// SetWaitCollector registers fn to receive every contended lock wait on
// the calling goroutine: the instrumented histogram identifying the
// mutex (nil for untimed mutexes) and the wait in nanoseconds. It
// returns a remove function that must be called on the same goroutine
// when the attributed section ends. Collectors nest per goroutine only
// in the sense that a later registration replaces the earlier one.
func SetWaitCollector(fn func(h *Histogram, waitNs int64)) (remove func()) {
	id := goid()
	waitCollectors.Store(id, fn)
	waitCollectorN.Add(1)
	return func() {
		waitCollectors.Delete(id)
		waitCollectorN.Add(-1)
	}
}

// noteWait reports one contended acquisition's wait to the calling
// goroutine's collector, if one is registered.
func noteWait(h *Histogram, waitNs int64) {
	if waitCollectorN.Load() == 0 {
		return
	}
	if fn, ok := waitCollectors.Load(goid()); ok {
		fn.(func(*Histogram, int64))(h, waitNs)
	}
}

// goid returns the calling goroutine's id, parsed from the runtime
// stack header ("goroutine N [running]:"). Costs on the order of a
// microsecond; called only when a collector is being registered, or on
// a contended lock acquisition while at least one collector is live —
// both already microsecond-scale paths.
func goid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for i := prefix; i < n && buf[i] >= '0' && buf[i] <= '9'; i++ {
		id = id*10 + uint64(buf[i]-'0')
	}
	return id
}
