package obs

import (
	"sync"
	"testing"
	"time"
)

// TestTimedMutexCountsAcquisitions: every Lock is observed (count), and
// a forced contended acquisition records a nonzero wait.
func TestTimedMutexCountsAcquisitions(t *testing.T) {
	reg := NewRegistry()
	var m TimedMutex
	m.Instrument(reg.Histogram("lockwait.test"))

	m.Lock()
	m.Unlock()

	// Contended path: a second goroutine blocks until we release.
	m.Lock()
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		close(started)
		m.Lock()
		m.Unlock()
		close(done)
	}()
	<-started
	time.Sleep(5 * time.Millisecond)
	m.Unlock()
	<-done

	snap := reg.Histogram("lockwait.test").Snapshot()
	if snap.Count != 3 {
		t.Fatalf("histogram count = %d, want 3 (one per Lock)", snap.Count)
	}
	if snap.Max < int64(time.Millisecond) {
		t.Fatalf("max wait = %dns, want ≥ 1ms from the contended acquisition", snap.Max)
	}
}

// TestTimedRWMutexReaders: read locks are concurrent (both readers hold
// at once) and every acquisition — read or write — is observed.
func TestTimedRWMutexReaders(t *testing.T) {
	reg := NewRegistry()
	var m TimedRWMutex
	m.Instrument(reg.Histogram("lockwait.rw"))

	m.RLock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.RLock() // must not block against the other read lock
		m.RUnlock()
	}()
	wg.Wait()
	m.RUnlock()

	m.Lock()
	m.Unlock()

	if got := reg.Histogram("lockwait.rw").Snapshot().Count; got != 3 {
		t.Fatalf("histogram count = %d, want 3 (two RLocks + one Lock)", got)
	}
}

// TestTimedMutexUninstrumented: an un-instrumented timed mutex still
// locks correctly (nil histogram is a no-op, not a panic).
func TestTimedMutexUninstrumented(t *testing.T) {
	var m TimedMutex
	m.Lock()
	m.Unlock()
	var rw TimedRWMutex
	rw.RLock()
	rw.RUnlock()
	rw.Lock()
	rw.Unlock()
}
