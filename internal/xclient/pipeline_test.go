package xclient_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/xclient"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

// TestPipelinedCookies checks the basic cookie contract: many requests
// issued before any Wait, every cookie resolving to its own reply.
func TestPipelinedCookies(t *testing.T) {
	_, d := newPair(t)
	const n = 32
	cookies := make([]xclient.AtomCookie, n)
	names := make([]string, n)
	for i := range cookies {
		names[i] = fmt.Sprintf("PIPELINED_ATOM_%d", i)
		cookies[i] = d.InternAtomAsync(names[i])
	}
	atoms := make([]xproto.Atom, n)
	for i := range cookies {
		a, err := cookies[i].Wait()
		if err != nil {
			t.Fatalf("cookie %d: %v", i, err)
		}
		atoms[i] = a
	}
	// Each name resolves to the same atom on a serial re-query, i.e. no
	// reply was cross-wired to the wrong cookie.
	for i, name := range names {
		a, err := d.InternAtom(name)
		if err != nil {
			t.Fatal(err)
		}
		if a != atoms[i] {
			t.Fatalf("atom %q: pipelined %d, serial %d", name, atoms[i], a)
		}
	}
}

// TestPipelineStress mixes pipelined round trips, one-way requests and
// event consumption across goroutines; run under -race via make check.
// Every cookie must resolve to the reply for its own request.
func TestPipelineStress(t *testing.T) {
	_, d := newPair(t)

	// Serial reference: the atom each name maps to.
	const names = 25
	ref := make(map[string]xproto.Atom, names)
	for i := 0; i < names; i++ {
		name := fmt.Sprintf("STRESS_ATOM_%d", i)
		a, err := d.InternAtom(name)
		if err != nil {
			t.Fatal(err)
		}
		ref[name] = a
	}

	// One goroutine generates events by mapping/unmapping a window and
	// another drains them, so reply routing is exercised while events
	// interleave on the same wire.
	stop := make(chan struct{})
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-d.Events():
			}
		}
	}()

	const workers = 8
	const opsPerWorker = 100
	seqCh := make(chan uint64, workers*opsPerWorker)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			win := d.CreateWindow(d.Root, 0, 0, 10, 10, 0, xclient.WindowAttributes{
				EventMask: xproto.StructureNotifyMask,
			})
			for op := 0; op < opsPerWorker; op++ {
				name := fmt.Sprintf("STRESS_ATOM_%d", (w*7+op)%names)
				ck := d.InternAtomAsync(name)
				switch op % 4 {
				case 0:
					d.Bell() // one-way riding the same buffer
				case 1:
					d.MapWindow(win)
				case 2:
					d.UnmapWindow(win)
				}
				a, err := ck.Wait()
				if err != nil {
					errCh <- fmt.Errorf("worker %d op %d: %v", w, op, err)
					return
				}
				if a != ref[name] {
					errCh <- fmt.Errorf("worker %d op %d: atom %q = %d, want %d (cross-wired reply)",
						w, op, name, a, ref[name])
					return
				}
				seqCh <- ck.Seq()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	drainWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	close(seqCh)
	seen := make(map[uint64]bool)
	for s := range seqCh {
		if seen[s] {
			t.Fatalf("sequence %d assigned to two cookies", s)
		}
		seen[s] = true
	}
}

// TestTeardownFailsOutstandingCookies checks that closing the display
// resolves every in-flight cookie with an error promptly, rather than
// leaving waiters hung.
func TestTeardownFailsOutstandingCookies(t *testing.T) {
	srv := xserver.New(400, 300)
	t.Cleanup(srv.Close)
	// Enough simulated latency that the replies cannot arrive before the
	// close lands.
	srv.SetLatency(200 * time.Millisecond)
	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}

	const n = 6
	cookies := make([]xclient.AtomCookie, n)
	for i := range cookies {
		cookies[i] = d.InternAtomAsync(fmt.Sprintf("TEARDOWN_%d", i))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	done := make(chan struct{})
	var failures int
	go func() {
		defer close(done)
		for i := range cookies {
			if _, err := cookies[i].Wait(); err != nil {
				failures++
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("outstanding cookies did not resolve after Close")
	}
	// Replies were delayed past the close, so at least most of the
	// cookies must have failed; none may succeed with a bogus payload.
	if failures == 0 {
		t.Fatal("expected outstanding cookies to fail after Close")
	}
}

// TestLateCookieAfterConnectionLoss checks that a cookie registered
// after the read loop has exited fails immediately instead of hanging.
func TestLateCookieAfterConnectionLoss(t *testing.T) {
	srv := xserver.New(400, 300)
	t.Cleanup(srv.Close)
	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	d.ErrorHandler = func(msg string) {} // silence the async error log
	srv.Close()
	// Wait for the client to notice the loss (events channel closes).
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-d.Events():
			if !ok {
				goto lost
			}
		case <-deadline:
			t.Fatal("client never noticed connection loss")
		}
	}
lost:
	ck := d.InternAtomAsync("TOO_LATE")
	done := make(chan error, 1)
	go func() {
		_, err := ck.Wait()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cookie issued after connection loss succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cookie issued after connection loss hung")
	}
}
