package xclient_test

import (
	"testing"
	"time"

	"repro/internal/xclient"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

// TestServerShutdownSurfacesCleanly: when the server dies, the event
// channel closes and round trips fail rather than hanging.
func TestServerShutdownSurfacesCleanly(t *testing.T) {
	srv := xserver.New(400, 300)
	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// The event channel closes.
	select {
	case _, ok := <-d.Events():
		if ok {
			// Drain any final events; the channel must close eventually.
			deadline := time.After(2 * time.Second)
			for {
				select {
				case _, ok := <-d.Events():
					if !ok {
						goto closed
					}
				case <-deadline:
					t.Fatal("event channel never closed")
				}
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no close notification")
	}
closed:
	// Round trips fail promptly.
	if err := d.Sync(); err == nil {
		t.Fatal("Sync after server death should fail")
	}
}

// TestClientCloseIsIdempotent: closing twice and using a closed display
// is safe.
func TestClientCloseIsIdempotent(t *testing.T) {
	srv := xserver.New(400, 300)
	defer srv.Close()
	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Close()
	if !d.Closed() {
		t.Fatal("Closed() should report true")
	}
	if err := d.Sync(); err == nil {
		t.Fatal("Sync on closed display should fail")
	}
	// One-way requests on a closed display are dropped without panic.
	d.MapWindow(5)
	d.Flush()
}

// TestAsyncErrorsCollected: errors for one-way requests surface through
// TakeErrors at the next round trip.
func TestAsyncErrorsCollected(t *testing.T) {
	srv := xserver.New(400, 300)
	defer srv.Close()
	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// MapWindow on a bogus ID errors asynchronously.
	d.Request(&xproto.MapWindowReq{Window: 999999})
	d.Flush()
	// A later round trip must still succeed.
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	errs := d.TakeErrors()
	if len(errs) != 1 {
		t.Fatalf("collected %d async errors, want 1: %v", len(errs), errs)
	}
	if len(d.TakeErrors()) != 0 {
		t.Fatal("TakeErrors should clear")
	}
}

// TestErrorHandlerCallback: a registered handler receives async errors
// instead of the queue.
func TestErrorHandlerCallback(t *testing.T) {
	srv := xserver.New(400, 300)
	defer srv.Close()
	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got := make(chan string, 1)
	d.ErrorHandler = func(msg string) { got <- msg }
	d.Request(&xproto.DestroyWindowReq{Window: 424242})
	d.Request(&xproto.MapWindowReq{Window: 424242})
	d.Flush()
	d.Sync()
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("error handler never called")
	}
}

// TestAppSurvivesPeerDisconnect: one client dropping its connection does
// not disturb another client's windows on the same server.
func TestAppSurvivesPeerDisconnect(t *testing.T) {
	srv := xserver.New(400, 300)
	defer srv.Close()
	d1, _ := xclient.Open(srv.ConnectPipe())
	defer d1.Close()
	d2, _ := xclient.Open(srv.ConnectPipe())

	w1 := d1.CreateWindow(d1.Root, 0, 0, 50, 50, 0, xclient.WindowAttributes{})
	w2 := d2.CreateWindow(d2.Root, 60, 0, 50, 50, 0, xclient.WindowAttributes{})
	d1.MapWindow(w1)
	d2.MapWindow(w2)
	d1.Sync()
	d2.Sync()

	d2.Close()
	// Allow the server to notice and clean up.
	deadline := time.Now().Add(2 * time.Second)
	for {
		tree, err := d1.QueryTree(d1.Root)
		if err != nil {
			t.Fatal(err)
		}
		if len(tree.Children) == 1 && tree.Children[0] == w1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer windows not cleaned up: %v", tree.Children)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The survivor still draws and reads fine.
	if _, err := d1.GetGeometry(w1); err != nil {
		t.Fatal(err)
	}
	if _, err := d1.GetGeometry(w2); err == nil {
		t.Fatal("dead client's window should be gone")
	}
}
