package xclient_test

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/xclient"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

// TestServerShutdownSurfacesCleanly: when the server dies, the event
// channel closes and round trips fail rather than hanging.
func TestServerShutdownSurfacesCleanly(t *testing.T) {
	srv := xserver.New(400, 300)
	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// The event channel closes.
	select {
	case _, ok := <-d.Events():
		if ok {
			// Drain any final events; the channel must close eventually.
			deadline := time.After(2 * time.Second)
			for {
				select {
				case _, ok := <-d.Events():
					if !ok {
						goto closed
					}
				case <-deadline:
					t.Fatal("event channel never closed")
				}
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no close notification")
	}
closed:
	// Round trips fail promptly.
	if err := d.Sync(); err == nil {
		t.Fatal("Sync after server death should fail")
	}
}

// TestClientCloseIsIdempotent: closing twice and using a closed display
// is safe.
func TestClientCloseIsIdempotent(t *testing.T) {
	srv := xserver.New(400, 300)
	defer srv.Close()
	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Close()
	if !d.Closed() {
		t.Fatal("Closed() should report true")
	}
	if err := d.Sync(); err == nil {
		t.Fatal("Sync on closed display should fail")
	}
	// One-way requests on a closed display are dropped without panic.
	d.MapWindow(5)
	d.Flush()
}

// TestAsyncErrorsCollected: errors for one-way requests surface through
// TakeErrors at the next round trip.
func TestAsyncErrorsCollected(t *testing.T) {
	srv := xserver.New(400, 300)
	defer srv.Close()
	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// MapWindow on a bogus ID errors asynchronously.
	d.Request(&xproto.MapWindowReq{Window: 999999})
	d.Flush()
	// A later round trip must still succeed.
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	errs := d.TakeErrors()
	if len(errs) != 1 {
		t.Fatalf("collected %d async errors, want 1: %v", len(errs), errs)
	}
	if len(d.TakeErrors()) != 0 {
		t.Fatal("TakeErrors should clear")
	}
}

// TestErrorHandlerCallback: a registered handler receives async errors
// instead of the queue.
func TestErrorHandlerCallback(t *testing.T) {
	srv := xserver.New(400, 300)
	defer srv.Close()
	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got := make(chan string, 1)
	d.ErrorHandler = func(msg string) { got <- msg }
	d.Request(&xproto.DestroyWindowReq{Window: 424242})
	d.Request(&xproto.MapWindowReq{Window: 424242})
	d.Flush()
	d.Sync()
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("error handler never called")
	}
}

// TestAppSurvivesPeerDisconnect: one client dropping its connection does
// not disturb another client's windows on the same server.
func TestAppSurvivesPeerDisconnect(t *testing.T) {
	srv := xserver.New(400, 300)
	defer srv.Close()
	d1, _ := xclient.Open(srv.ConnectPipe())
	defer d1.Close()
	d2, _ := xclient.Open(srv.ConnectPipe())

	w1 := d1.CreateWindow(d1.Root, 0, 0, 50, 50, 0, xclient.WindowAttributes{})
	w2 := d2.CreateWindow(d2.Root, 60, 0, 50, 50, 0, xclient.WindowAttributes{})
	d1.MapWindow(w1)
	d2.MapWindow(w2)
	d1.Sync()
	d2.Sync()

	d2.Close()
	// Allow the server to notice and clean up.
	deadline := time.Now().Add(2 * time.Second)
	for {
		tree, err := d1.QueryTree(d1.Root)
		if err != nil {
			t.Fatal(err)
		}
		if len(tree.Children) == 1 && tree.Children[0] == w1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer windows not cleaned up: %v", tree.Children)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The survivor still draws and reads fine.
	if _, err := d1.GetGeometry(w1); err != nil {
		t.Fatal(err)
	}
	if _, err := d1.GetGeometry(w2); err == nil {
		t.Fatal("dead client's window should be gone")
	}
}

// fakeServer returns the client end of a pipe whose far end has already
// delivered a valid setup block; the test script drives the far end.
func fakeServer(t *testing.T) (client, server net.Conn) {
	t.Helper()
	client, server = net.Pipe()
	w := xproto.NewWriter()
	setup := &xproto.SetupReply{ResourceIDBase: 0x200000, Root: 1, Width: 400, Height: 300}
	setup.Encode(w)
	go xproto.WriteServerFrame(server, xproto.KindReply, w.Bytes())
	return client, server
}

// TestOpenAgainstClosedServerFailsFast: the satellite bugfix — opening
// a display on a server that has already shut down returns a clear,
// prompt error rather than a generic EOF mid-setup.
func TestOpenAgainstClosedServerFailsFast(t *testing.T) {
	srv := xserver.New(400, 300)
	srv.Close()
	begin := time.Now()
	_, err := xclient.Open(srv.ConnectPipe())
	if err == nil {
		t.Fatal("Open against a closed server must fail")
	}
	if !strings.Contains(err.Error(), "during setup") ||
		!strings.Contains(err.Error(), "server not running or already shut down") {
		t.Fatalf("want a clear setup-failure error, got: %v", err)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("Open took %v; should fail fast", elapsed)
	}
}

// TestRoundTripDeadline: a server that accepts the connection but never
// answers resolves Wait with ErrTimeout instead of hanging.
func TestRoundTripDeadline(t *testing.T) {
	client, server := fakeServer(t)
	defer server.Close()
	d, err := xclient.Open(client)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Swallow the ping without answering.
	go io.Copy(io.Discard, server)

	d.SetRoundTripTimeout(150 * time.Millisecond)
	begin := time.Now()
	err = d.Sync()
	if !errors.Is(err, xclient.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got: %v", err)
	}
	if elapsed := time.Since(begin); elapsed > 3*time.Second {
		t.Fatalf("timed out after %v; deadline was 150ms", elapsed)
	}
	if d.Metrics().Counter("roundtrip.timeout").Value() != 1 {
		t.Fatalf("roundtrip.timeout counter = %d, want 1",
			d.Metrics().Counter("roundtrip.timeout").Value())
	}
}

// TestGarbageFrameKindFailsCookiesCleanly: an unreadable frame header
// is unrecoverable; outstanding cookies fail with a corruption error
// rather than blocking.
func TestGarbageFrameKindFailsCookiesCleanly(t *testing.T) {
	client, server := fakeServer(t)
	defer server.Close()
	d, err := xclient.Open(client)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	go io.Copy(io.Discard, server)

	ck := d.SendWithReply(&xproto.PingReq{})
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	// Deliver a frame whose kind byte is garbage.
	if err := xproto.WriteServerFrame(server, 0x7f, []byte("noise")); err != nil {
		t.Fatal(err)
	}
	err = ck.Wait(nil)
	if err == nil || !strings.Contains(err.Error(), "protocol corruption") {
		t.Fatalf("want protocol corruption error, got: %v", err)
	}
	if d.Metrics().Counter("protocol.corrupt").Value() != 1 {
		t.Fatal("protocol.corrupt counter should be 1")
	}
	// Later round trips fail immediately with the same root cause.
	if err := d.Sync(); err == nil || !strings.Contains(err.Error(), "protocol corruption") {
		t.Fatalf("post-corruption Sync: %v", err)
	}
}

// TestMalformedEventSkippedStreamSurvives: a well-delimited but
// undecodable event frame surfaces as an async error while the
// connection keeps working.
func TestMalformedEventSkippedStreamSurvives(t *testing.T) {
	client, server := fakeServer(t)
	defer server.Close()
	d, err := xclient.Open(client)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// A 1-byte event payload cannot decode.
	if err := xproto.WriteServerFrame(server, xproto.KindEvent, []byte{1}); err != nil {
		t.Fatal(err)
	}
	// Answer the subsequent ping by hand: seq 1, empty reply body.
	go func() {
		op, _, err := xproto.ReadRequestFrame(server)
		if err != nil || op != xproto.OpPing {
			return
		}
		w := xproto.NewWriter()
		w.PutU64(1)
		xproto.WriteServerFrame(server, xproto.KindReply, w.Bytes())
	}()
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync after malformed event: %v", err)
	}
	errs := d.TakeErrors()
	if len(errs) != 1 || !strings.Contains(errs[0], "malformed event") {
		t.Fatalf("async errors = %v, want one malformed-event report", errs)
	}
}
