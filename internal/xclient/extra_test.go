package xclient_test

import (
	"testing"

	"repro/internal/xclient"
	"repro/internal/xproto"
)

func TestPointerQueriesAndWrappers(t *testing.T) {
	_, d := newPair(t)
	d.WarpPointer(123, 45)
	qp, err := d.QueryPointer()
	if err != nil || qp.X != 123 || qp.Y != 45 {
		t.Fatalf("QueryPointer = %+v %v", qp, err)
	}
	// Button state shows in the pointer query.
	d.FakeButton(2, true)
	qp, _ = d.QueryPointer()
	if qp.State&xproto.Button2Mask == 0 {
		t.Fatalf("button 2 state missing: %#x", qp.State)
	}
	d.FakeButton(2, false)
}

func TestWindowAttributeWrappers(t *testing.T) {
	_, d := newPair(t)
	w := d.CreateWindow(d.Root, 0, 0, 40, 40, 1, xclient.WindowAttributes{})
	d.SetWindowBackground(w, 0x112233)
	d.SetWindowBorder(w, 0x445566)
	d.SetBorderWidth(w, 3)
	d.MoveWindow(w, 9, 9)
	d.LowerWindow(w)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	geo, _ := d.GetGeometry(w)
	if geo.BorderWidth != 3 || geo.X != 9 {
		t.Fatalf("geometry = %+v", geo)
	}
	cursor := d.CreateCursor("watch")
	d.SetWindowCursor(w, cursor)
	d.Bell()
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestDeletePropertyNotifies(t *testing.T) {
	_, d := newPair(t)
	w := d.CreateWindow(d.Root, 0, 0, 10, 10, 0, xclient.WindowAttributes{
		EventMask: xproto.PropertyChangeMask,
	})
	prop, _ := d.InternAtom("GONE")
	d.ChangeProperty(w, prop, xproto.AtomString, []byte("x"))
	d.DeleteProperty(w, prop)
	d.Flush()
	ev := waitEvent(t, d, "PropertyNotify deleted", func(ev xproto.Event) bool {
		return ev.Type == xproto.PropertyNotify && ev.PropState == xproto.PropertyDeleted
	})
	if ev.Atom != prop {
		t.Fatalf("deleted atom = %d", ev.Atom)
	}
}

func TestPixmapDrawing(t *testing.T) {
	_, d := newPair(t)
	w := d.CreateWindow(d.Root, 0, 0, 40, 40, 0, xclient.WindowAttributes{Background: 0xffffff})
	d.MapWindow(w)
	d.ClearWindow(w)
	// Draw into an off-screen pixmap, then copy to the window (double
	// buffering, as widgets could do).
	pm := d.CreatePixmap(40, 40)
	gcW := d.CreateGC(xclient.GCValues{Mask: xproto.GCForeground, Foreground: 0xffffff})
	gcB := d.CreateGC(xclient.GCValues{Mask: xproto.GCForeground, Foreground: 0x0000ff})
	d.FillRectangle(pm, gcW, 0, 0, 40, 40)
	d.FillRectangle(pm, gcB, 10, 10, 20, 20)
	d.CopyArea(pm, w, gcB, 0, 0, 0, 0, 40, 40)
	shot, err := d.Screenshot(w)
	if err != nil {
		t.Fatal(err)
	}
	yOff := int(shot.Height) - 40
	i := ((20+yOff)*int(shot.Width) + 20) * 3
	if shot.Pixels[i] != 0 || shot.Pixels[i+2] != 0xff {
		t.Fatalf("pixmap copy: pixel = %v", shot.Pixels[i:i+3])
	}
	d.FreePixmap(pm)
	d.FreeGC(gcW)
	d.FreeGC(gcB)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestFontLifecycle(t *testing.T) {
	_, d := newPair(t)
	f, err := d.OpenFont("6x13")
	if err != nil {
		t.Fatal(err)
	}
	if f.LineHeight() != 10 {
		t.Fatalf("line height = %d", f.LineHeight())
	}
	// Non-ASCII counts as the fallback glyph width.
	if f.TextWidth("\xff") == 0 {
		t.Fatal("fallback width")
	}
	d.CloseFont(f)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	// Using a closed font in QueryFont errors.
	var rep xproto.QueryFontReply
	if err := d.RoundTrip(&xproto.QueryFontReq{Fid: f.ID}, func(r *xproto.Reader) { rep.Decode(r) }); err == nil {
		t.Fatal("QueryFont on closed font should fail")
	}
}

func TestDrawingPrimitiveWrappers(t *testing.T) {
	_, d := newPair(t)
	w := d.CreateWindow(d.Root, 0, 0, 60, 60, 0, xclient.WindowAttributes{Background: 0xffffff})
	d.MapWindow(w)
	d.ClearWindow(w)
	gc := d.CreateGC(xclient.GCValues{Mask: xproto.GCForeground | xproto.GCLineWidth, Foreground: 0xff00ff, LineWidth: 2})
	d.DrawLine(w, gc, 0, 0, 59, 59)
	d.DrawLines(w, gc, []xproto.Point{{X: 0, Y: 59}, {X: 59, Y: 0}})
	d.DrawRectangle(w, gc, 5, 5, 50, 50)
	d.FillPolygon(w, gc, []xproto.Point{{X: 30, Y: 10}, {X: 50, Y: 50}, {X: 10, Y: 50}})
	d.ClearArea(w, 0, 0, 5, 5)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	shot, _ := d.Screenshot(w)
	magenta := 0
	for i := 0; i+2 < len(shot.Pixels); i += 3 {
		if shot.Pixels[i] == 0xff && shot.Pixels[i+1] == 0 && shot.Pixels[i+2] == 0xff {
			magenta++
		}
	}
	if magenta < 100 {
		t.Fatalf("primitives drew %d magenta pixels", magenta)
	}
}

func TestServerStatsCounter(t *testing.T) {
	srv, d := newPair(t)
	before := srv.Stats()
	bellsBefore := srv.Metrics().Counter("requests.Bell").Value()
	for i := 0; i < 10; i++ {
		d.Bell()
	}
	d.Sync()
	// Stats() is a shim over the registry's "requests" counter.
	if srv.Stats()-before < 10 {
		t.Fatalf("server stats grew by %d", srv.Stats()-before)
	}
	if srv.Stats() != srv.Metrics().Counter("requests").Value() {
		t.Fatal("Stats() disagrees with the requests counter it shims")
	}
	// The registry also breaks traffic down per opcode.
	if got := srv.Metrics().Counter("requests.Bell").Value() - bellsBefore; got != 10 {
		t.Fatalf("server counted %d Bell requests, want 10", got)
	}
	// The client saw the same traffic from its side.
	if got := d.Metrics().Counter("requests.Bell").Value(); got < 10 {
		t.Fatalf("client counted %d Bell requests, want ≥ 10", got)
	}
	// Dispatch service times were recorded for every request. The
	// histogram is observed after the reply is enqueued, so the very
	// last request's observation may still be in flight.
	reqs := srv.Stats()
	h := srv.Metrics().Histograms()["dispatch"]
	if h.Count < reqs-1 || h.Count > reqs {
		t.Fatalf("dispatch histogram count %d, want %d or %d", h.Count, reqs-1, reqs)
	}
}
