package xclient_test

import (
	"testing"
	"time"

	"repro/internal/xclient"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

// newPair starts a server and returns a connected display.
func newPair(t *testing.T) (*xserver.Server, *xclient.Display) {
	t.Helper()
	srv := xserver.New(800, 600)
	t.Cleanup(srv.Close)
	d, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(d.Close)
	return srv, d
}

// waitEvent pulls events until one matches pred or the timeout expires.
func waitEvent(t *testing.T, d *xclient.Display, what string, pred func(ev xproto.Event) bool) xproto.Event {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		select {
		case ev, ok := <-d.Events():
			if !ok {
				t.Fatalf("waiting for %s: connection closed", what)
			}
			if pred(ev) {
				return ev
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		}
	}
}

func TestConnectionSetup(t *testing.T) {
	_, d := newPair(t)
	if d.Root != 1 {
		t.Fatalf("root = %d, want 1", d.Root)
	}
	if d.Width != 800 || d.Height != 600 {
		t.Fatalf("screen = %dx%d, want 800x600", d.Width, d.Height)
	}
	if d.NewID() == 0 {
		t.Fatal("NewID returned 0")
	}
}

func TestCreateWindowAndGeometry(t *testing.T) {
	_, d := newPair(t)
	w := d.CreateWindow(d.Root, 10, 20, 300, 200, 2, xclient.WindowAttributes{Background: 0xffffff})
	geo, err := d.GetGeometry(w)
	if err != nil {
		t.Fatalf("GetGeometry: %v", err)
	}
	if geo.X != 10 || geo.Y != 20 || geo.Width != 300 || geo.Height != 200 || geo.BorderWidth != 2 {
		t.Fatalf("geometry = %+v", geo)
	}
	d.MoveResizeWindow(w, 50, 60, 400, 100)
	geo, _ = d.GetGeometry(w)
	if geo.X != 50 || geo.Y != 60 || geo.Width != 400 || geo.Height != 100 {
		t.Fatalf("after MoveResize: %+v", geo)
	}
}

func TestQueryTreeAndStacking(t *testing.T) {
	_, d := newPair(t)
	a := d.CreateWindow(d.Root, 0, 0, 100, 100, 0, xclient.WindowAttributes{})
	b := d.CreateWindow(d.Root, 0, 0, 100, 100, 0, xclient.WindowAttributes{})
	tree, err := d.QueryTree(d.Root)
	if err != nil {
		t.Fatalf("QueryTree: %v", err)
	}
	if len(tree.Children) != 2 || tree.Children[0] != a || tree.Children[1] != b {
		t.Fatalf("children = %v, want [%d %d]", tree.Children, a, b)
	}
	d.RaiseWindow(a)
	tree, _ = d.QueryTree(d.Root)
	if tree.Children[1] != a {
		t.Fatalf("after raise, children = %v, want %d on top", tree.Children, a)
	}
	child := d.CreateWindow(a, 5, 5, 10, 10, 0, xclient.WindowAttributes{})
	sub, _ := d.QueryTree(child)
	if sub.Parent != a {
		t.Fatalf("parent of %d = %d, want %d", child, sub.Parent, a)
	}
}

func TestAtoms(t *testing.T) {
	_, d := newPair(t)
	a1, err := d.InternAtom("MY_ATOM")
	if err != nil || a1 == xproto.AtomNone {
		t.Fatalf("InternAtom: %v %v", a1, err)
	}
	a2, _ := d.InternAtom("MY_ATOM")
	if a1 != a2 {
		t.Fatalf("repeated intern: %v != %v", a1, a2)
	}
	name, err := d.GetAtomName(a1)
	if err != nil || name != "MY_ATOM" {
		t.Fatalf("GetAtomName: %q %v", name, err)
	}
	// Predefined atoms.
	p, _ := d.InternAtom("PRIMARY")
	if p != xproto.AtomPrimary {
		t.Fatalf("PRIMARY interned as %d", p)
	}
}

func TestProperties(t *testing.T) {
	_, d := newPair(t)
	w := d.CreateWindow(d.Root, 0, 0, 10, 10, 0, xclient.WindowAttributes{})
	prop, _ := d.InternAtom("TEST_PROP")
	d.ChangeProperty(w, prop, xproto.AtomString, []byte("hello"))
	rep, err := d.GetProperty(w, prop, false)
	if err != nil || !rep.Found || string(rep.Data) != "hello" {
		t.Fatalf("GetProperty: %+v %v", rep, err)
	}
	d.AppendProperty(w, prop, xproto.AtomString, []byte(" world"))
	rep, _ = d.GetProperty(w, prop, false)
	if string(rep.Data) != "hello world" {
		t.Fatalf("append: %q", rep.Data)
	}
	// Get with delete.
	rep, _ = d.GetProperty(w, prop, true)
	if !rep.Found {
		t.Fatal("expected property before delete")
	}
	rep, _ = d.GetProperty(w, prop, false)
	if rep.Found {
		t.Fatal("property should be deleted")
	}
	atoms, _ := d.ListProperties(w)
	if len(atoms) != 0 {
		t.Fatalf("ListProperties = %v", atoms)
	}
}

func TestPropertyNotifyAcrossClients(t *testing.T) {
	srv, d1 := newPair(t)
	d2, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatalf("second client: %v", err)
	}
	defer d2.Close()

	// Client 2 watches the root window for property changes — this is the
	// mechanism Tk's send uses for its registry.
	d2.SelectInput(d2.Root, xproto.PropertyChangeMask)
	if err := d2.Sync(); err != nil {
		t.Fatal(err)
	}
	prop, _ := d1.InternAtom("COMM")
	d1.ChangeProperty(d1.Root, prop, xproto.AtomString, []byte("ping"))
	d1.Flush()

	ev := waitEvent(t, d2, "PropertyNotify", func(ev xproto.Event) bool {
		return ev.Type == xproto.PropertyNotify && ev.Atom == prop
	})
	if ev.PropState != xproto.PropertyNewValue {
		t.Fatalf("state = %d", ev.PropState)
	}
	rep, _ := d2.GetProperty(d2.Root, prop, false)
	if string(rep.Data) != "ping" {
		t.Fatalf("property data = %q", rep.Data)
	}
}

func TestMapGeneratesExpose(t *testing.T) {
	_, d := newPair(t)
	w := d.CreateWindow(d.Root, 0, 0, 100, 100, 0, xclient.WindowAttributes{EventMask: xproto.ExposureMask | xproto.StructureNotifyMask})
	d.MapWindow(w)
	d.Flush()
	waitEvent(t, d, "MapNotify", func(ev xproto.Event) bool {
		return ev.Type == xproto.MapNotify && ev.Window == w
	})
	waitEvent(t, d, "Expose", func(ev xproto.Event) bool {
		return ev.Type == xproto.Expose && ev.Window == w
	})
}

func TestPointerEnterLeaveAndButton(t *testing.T) {
	_, d := newPair(t)
	w := d.CreateWindow(d.Root, 100, 100, 200, 200, 0, xclient.WindowAttributes{
		EventMask: xproto.EnterWindowMask | xproto.LeaveWindowMask |
			xproto.ButtonPressMask | xproto.ButtonReleaseMask,
	})
	d.MapWindow(w)
	d.WarpPointer(150, 150)
	d.Flush()
	ev := waitEvent(t, d, "EnterNotify", func(ev xproto.Event) bool {
		return ev.Type == xproto.EnterNotify && ev.Window == w
	})
	if ev.X != 50 || ev.Y != 50 {
		t.Fatalf("enter at %d,%d; want 50,50", ev.X, ev.Y)
	}
	d.FakeButton(1, true)
	d.Flush()
	bp := waitEvent(t, d, "ButtonPress", func(ev xproto.Event) bool {
		return ev.Type == xproto.ButtonPress && ev.Window == w
	})
	if bp.Detail != 1 {
		t.Fatalf("button detail = %d", bp.Detail)
	}
	// While the button is down the window has an implicit grab: moving
	// outside still reports release to the same window.
	d.WarpPointer(400, 400)
	d.Flush()
	waitEvent(t, d, "LeaveNotify", func(ev xproto.Event) bool {
		return ev.Type == xproto.LeaveNotify && ev.Window == w
	})
	d.FakeButton(1, false)
	d.Flush()
	br := waitEvent(t, d, "ButtonRelease", func(ev xproto.Event) bool {
		return ev.Type == xproto.ButtonRelease
	})
	if br.Window != w {
		t.Fatalf("release went to %d, want %d (implicit grab)", br.Window, w)
	}
}

func TestKeyRoutingWithFocus(t *testing.T) {
	_, d := newPair(t)
	w1 := d.CreateWindow(d.Root, 0, 0, 100, 100, 0, xclient.WindowAttributes{EventMask: xproto.KeyPressMask})
	w2 := d.CreateWindow(d.Root, 200, 0, 100, 100, 0, xclient.WindowAttributes{EventMask: xproto.KeyPressMask})
	d.MapWindow(w1)
	d.MapWindow(w2)
	// Pointer over w1; no focus: keys go to the pointer window.
	d.WarpPointer(50, 50)
	d.FakeKey('a', true)
	d.FakeKey('a', false)
	d.Flush()
	ev := waitEvent(t, d, "KeyPress on w1", func(ev xproto.Event) bool { return ev.Type == xproto.KeyPress })
	if ev.Window != w1 || ev.Keysym != 'a' {
		t.Fatalf("key went to %d keysym %d", ev.Window, ev.Keysym)
	}
	// With focus on w2, keys go there regardless of the pointer.
	d.SetInputFocus(w2)
	d.FakeKey('b', true)
	d.FakeKey('b', false)
	d.Flush()
	ev = waitEvent(t, d, "KeyPress on w2", func(ev xproto.Event) bool { return ev.Type == xproto.KeyPress && ev.Keysym == 'b' })
	if ev.Window != w2 {
		t.Fatalf("focused key went to %d, want %d", ev.Window, w2)
	}
}

func TestModifierState(t *testing.T) {
	_, d := newPair(t)
	w := d.CreateWindow(d.Root, 0, 0, 100, 100, 0, xclient.WindowAttributes{EventMask: xproto.KeyPressMask})
	d.MapWindow(w)
	d.WarpPointer(50, 50)
	d.FakeKey(xproto.KsControlL, true)
	d.FakeKey('q', true)
	d.Flush()
	ev := waitEvent(t, d, "Control-q", func(ev xproto.Event) bool {
		return ev.Type == xproto.KeyPress && ev.Keysym == 'q'
	})
	if ev.State&xproto.ControlMask == 0 {
		t.Fatalf("state = %#x, want ControlMask set", ev.State)
	}
	d.FakeKey('q', false)
	d.FakeKey(xproto.KsControlL, false)
	d.Flush()
	d.Sync()
}

func TestSelectionHandshake(t *testing.T) {
	srv, owner := newPair(t)
	requestor, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer requestor.Close()

	ownWin := owner.CreateWindow(owner.Root, 0, 0, 10, 10, 0, xclient.WindowAttributes{})
	reqWin := requestor.CreateWindow(requestor.Root, 0, 0, 10, 10, 0, xclient.WindowAttributes{})
	owner.SetSelectionOwner(xproto.AtomPrimary, ownWin, 0)
	owner.Sync()

	got, _ := requestor.GetSelectionOwner(xproto.AtomPrimary)
	if got != ownWin {
		t.Fatalf("selection owner = %d, want %d", got, ownWin)
	}

	// Requestor asks for the selection as STRING into property SEL_RESULT.
	dest, _ := requestor.InternAtom("SEL_RESULT")
	requestor.ConvertSelection(xproto.AtomPrimary, xproto.AtomString, dest, reqWin, 0)
	requestor.Flush()

	// Owner receives the SelectionRequest and fulfills it per ICCCM.
	req := waitEvent(t, owner, "SelectionRequest", func(ev xproto.Event) bool {
		return ev.Type == xproto.SelectionRequest
	})
	if req.Requestor != reqWin || req.Selection != xproto.AtomPrimary {
		t.Fatalf("request = %+v", req)
	}
	owner.ChangeProperty(req.Requestor, req.Property, xproto.AtomString, []byte("the selection"))
	owner.SendEvent(req.Requestor, 0, &xproto.Event{
		Type:      xproto.SelectionNotify,
		Requestor: req.Requestor,
		Selection: req.Selection,
		Target:    req.Target,
		Property:  req.Property,
	})
	owner.Flush()

	waitEvent(t, requestor, "SelectionNotify", func(ev xproto.Event) bool {
		return ev.Type == xproto.SelectionNotify && ev.Property == dest
	})
	rep, _ := requestor.GetProperty(reqWin, dest, true)
	if string(rep.Data) != "the selection" {
		t.Fatalf("selection data = %q", rep.Data)
	}

	// A new owner triggers SelectionClear at the old owner.
	newWin := requestor.CreateWindow(requestor.Root, 0, 0, 5, 5, 0, xclient.WindowAttributes{})
	requestor.SetSelectionOwner(xproto.AtomPrimary, newWin, 1)
	requestor.Flush()
	waitEvent(t, owner, "SelectionClear", func(ev xproto.Event) bool {
		return ev.Type == xproto.SelectionClear && ev.Window == ownWin
	})
}

func TestNoOwnerSelectionRefused(t *testing.T) {
	_, d := newPair(t)
	w := d.CreateWindow(d.Root, 0, 0, 10, 10, 0, xclient.WindowAttributes{})
	dest, _ := d.InternAtom("DEST")
	d.ConvertSelection(xproto.AtomSecondary, xproto.AtomString, dest, w, 0)
	d.Flush()
	ev := waitEvent(t, d, "refusal", func(ev xproto.Event) bool {
		return ev.Type == xproto.SelectionNotify
	})
	if ev.Property != xproto.AtomNone {
		t.Fatalf("property = %d, want None", ev.Property)
	}
}

func TestDrawingAndScreenshot(t *testing.T) {
	_, d := newPair(t)
	w := d.CreateWindow(d.Root, 0, 0, 50, 50, 0, xclient.WindowAttributes{Background: 0xffffff})
	d.MapWindow(w)
	d.ClearWindow(w)
	gc := d.CreateGC(xclient.GCValues{Mask: xproto.GCForeground, Foreground: 0xff0000})
	d.FillRectangle(w, gc, 10, 10, 20, 20)
	shot, err := d.Screenshot(w)
	if err != nil {
		t.Fatalf("Screenshot: %v", err)
	}
	if shot.Width != 50 {
		t.Fatalf("shot %dx%d", shot.Width, shot.Height)
	}
	// The window screenshot includes the WM title bar at the top.
	yOff := int(shot.Height) - 50
	at := func(x, y int) [3]byte {
		i := ((y+yOff)*int(shot.Width) + x) * 3
		return [3]byte{shot.Pixels[i], shot.Pixels[i+1], shot.Pixels[i+2]}
	}
	if at(15, 15) != [3]byte{0xff, 0, 0} {
		t.Fatalf("pixel at 15,15 = %v, want red", at(15, 15))
	}
	if at(5, 5) != [3]byte{0xff, 0xff, 0xff} {
		t.Fatalf("pixel at 5,5 = %v, want white", at(5, 5))
	}
}

func TestTextRendering(t *testing.T) {
	_, d := newPair(t)
	w := d.CreateWindow(d.Root, 0, 0, 100, 30, 0, xclient.WindowAttributes{Background: 0xffffff})
	d.MapWindow(w)
	d.ClearWindow(w)
	font, err := d.OpenFont("fixed")
	if err != nil {
		t.Fatalf("OpenFont: %v", err)
	}
	if font.TextWidth("abc") != 18 {
		t.Fatalf("TextWidth(abc) = %d, want 18", font.TextWidth("abc"))
	}
	gc := d.CreateGC(xclient.GCValues{
		Mask:       xproto.GCForeground | xproto.GCFont,
		Foreground: 0x000000, Font: font.ID,
	})
	d.DrawString(w, gc, 5, 20, "Hi")
	shot, _ := d.Screenshot(w)
	// Some pixel in the text area must be black.
	yOff := int(shot.Height) - 30
	black := 0
	for y := 8; y < 22; y++ {
		for x := 5; x < 25; x++ {
			i := ((y+yOff)*int(shot.Width) + x) * 3
			if shot.Pixels[i] == 0 && shot.Pixels[i+1] == 0 && shot.Pixels[i+2] == 0 {
				black++
			}
		}
	}
	if black < 10 {
		t.Fatalf("text rendered %d black pixels, want >= 10", black)
	}
}

func TestNamedColors(t *testing.T) {
	_, d := newPair(t)
	px, found, err := d.AllocNamedColor("MediumSeaGreen")
	if err != nil || !found {
		t.Fatalf("MediumSeaGreen: %v found=%v", err, found)
	}
	if px != 0x3cb371 {
		t.Fatalf("MediumSeaGreen pixel = %#x", px)
	}
	// Space- and case-insensitive, as in X.
	px2, found, _ := d.AllocNamedColor("medium sea green")
	if !found || px2 != px {
		t.Fatalf("case-insensitive lookup failed: %#x", px2)
	}
	_, found, _ = d.AllocNamedColor("NoSuchColor")
	if found {
		t.Fatal("bogus color reported found")
	}
	hex, found, _ := d.AllocNamedColor("#ff8000")
	if !found || hex != 0xff8000 {
		t.Fatalf("#ff8000 = %#x found=%v", hex, found)
	}
	rgb, err := d.AllocColor(0xffff, 0, 0)
	if err != nil || rgb != 0xff0000 {
		t.Fatalf("AllocColor red = %#x %v", rgb, err)
	}
}

func TestCountersTrackRoundTrips(t *testing.T) {
	_, d := newPair(t)
	before, err := d.Counters()
	if err != nil {
		t.Fatal(err)
	}
	m := d.Metrics()
	rttsBefore := m.Counter("roundtrips").Value()
	histBefore := m.Histograms()["roundtrip"].Count
	for i := 0; i < 5; i++ {
		if _, _, err := d.AllocNamedColor("red"); err != nil {
			t.Fatal(err)
		}
	}
	// The wire shim: the server's per-connection registry answers.
	after, _ := d.Counters()
	if after.RoundTrips-before.RoundTrips != 6 { // 5 colors + 1 counter query
		t.Fatalf("round trips grew by %d, want 6", after.RoundTrips-before.RoundTrips)
	}
	if after.Requests <= before.Requests {
		t.Fatal("request counter did not grow")
	}
	// The client-side registry agrees without a round trip, and the
	// roundtrip latency histogram recorded each one.
	if got := m.Counter("roundtrips").Value() - rttsBefore; got != 6 { // + the second Counters query
		t.Fatalf("client roundtrips grew by %d, want 6", got)
	}
	if got := m.Histograms()["roundtrip"].Count - histBefore; got != 6 {
		t.Fatalf("roundtrip histogram grew by %d, want 6", got)
	}
	if got := m.Counter("requests.AllocNamedColor").Value(); got != 5 {
		t.Fatalf("requests.AllocNamedColor = %d, want 5", got)
	}
}

func TestDestroyNotifyAndCleanup(t *testing.T) {
	_, d := newPair(t)
	w := d.CreateWindow(d.Root, 0, 0, 10, 10, 0, xclient.WindowAttributes{EventMask: xproto.StructureNotifyMask})
	child := d.CreateWindow(w, 0, 0, 5, 5, 0, xclient.WindowAttributes{EventMask: xproto.StructureNotifyMask})
	d.MapWindow(w)
	d.DestroyWindow(w)
	d.Flush()
	waitEvent(t, d, "child DestroyNotify", func(ev xproto.Event) bool {
		return ev.Type == xproto.DestroyNotify && ev.Window == child
	})
	waitEvent(t, d, "DestroyNotify", func(ev xproto.Event) bool {
		return ev.Type == xproto.DestroyNotify && ev.Window == w
	})
	if _, err := d.GetGeometry(w); err == nil {
		t.Fatal("GetGeometry on destroyed window should error")
	}
}

func TestProtocolErrorSurfacesOnRoundTrip(t *testing.T) {
	_, d := newPair(t)
	if _, err := d.GetGeometry(999999); err == nil {
		t.Fatal("expected error for bad drawable")
	}
	// The connection survives errors.
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync after error: %v", err)
	}
}

func TestTCPTransport(t *testing.T) {
	srv := xserver.New(640, 480)
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	d, err := xclient.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer d.Close()
	w := d.CreateWindow(d.Root, 0, 0, 10, 10, 0, xclient.WindowAttributes{})
	geo, err := d.GetGeometry(w)
	if err != nil || geo.Width != 10 {
		t.Fatalf("over TCP: %+v %v", geo, err)
	}
}

func TestSendEventToWindowOwner(t *testing.T) {
	srv, d1 := newPair(t)
	d2, err := xclient.Open(srv.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	w2 := d2.CreateWindow(d2.Root, 0, 0, 10, 10, 0, xclient.WindowAttributes{})
	d2.Sync()
	// With mask 0, SendEvent goes to the creating client (ICCCM usage).
	d1.SendEvent(w2, 0, &xproto.Event{Type: xproto.ClientMessage, Data: "hello"})
	d1.Flush()
	ev := waitEvent(t, d2, "ClientMessage", func(ev xproto.Event) bool {
		return ev.Type == xproto.ClientMessage
	})
	if ev.Data != "hello" || !ev.SendEvent {
		t.Fatalf("event = %+v", ev)
	}
}
