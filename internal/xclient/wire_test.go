package xclient_test

import (
	"bytes"
	"testing"

	"repro/internal/xclient"
	"repro/internal/xproto"
	"repro/internal/xserver"
)

// wireWorkload drives a deterministic drawing sequence over d and
// returns the resulting screenshot pixels. Identical workloads must
// yield identical pixels regardless of the negotiated wire protocol.
func wireWorkload(t *testing.T, d *xclient.Display) []byte {
	t.Helper()
	w := d.CreateWindow(d.Root, 0, 0, 200, 150, 0, xclient.WindowAttributes{Background: 0x202020})
	d.MapWindow(w)
	gc := d.CreateGC(xclient.GCValues{Foreground: 0xFF4080})
	// A PolyFillRectangle storm: the shape the delta codec targets.
	for i := 0; i < 300; i++ {
		d.FillRectangle(w, gc, i%40, (i*7)%90, 12, 9)
	}
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	shot, err := d.Screenshot(w)
	if err != nil {
		t.Fatalf("Screenshot: %v", err)
	}
	return shot.Pixels
}

// TestWireNegotiationMatrix exercises every pairing of v1/v2 clients
// and servers plus the session-farm path, proving the upgrade is
// transparent: every combination completes the same workload with the
// same pixels, and only the v2↔v2 pairing actually speaks v2.
func TestWireNegotiationMatrix(t *testing.T) {
	var basePixels []byte

	run := func(t *testing.T, d *xclient.Display, wantVersion int) []byte {
		t.Helper()
		if got := d.WireVersion(); got != wantVersion {
			t.Fatalf("WireVersion = %d, want %d", got, wantVersion)
		}
		pixels := wireWorkload(t, d)
		if errs := d.TakeErrors(); len(errs) > 0 {
			t.Fatalf("async errors: %v", errs)
		}
		if basePixels != nil && !bytes.Equal(pixels, basePixels) {
			t.Fatalf("pixels differ from the v1 baseline")
		}
		return pixels
	}

	t.Run("v1-client_v2-server", func(t *testing.T) {
		// The baseline: a default client against a v2-capable server
		// must behave exactly as before the upgrade existed.
		srv := xserver.New(200, 150)
		t.Cleanup(srv.Close)
		d, err := xclient.Open(srv.ConnectPipe())
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		t.Cleanup(d.Close)
		basePixels = run(t, d, 1)
		if n := srv.Metrics().Counter("wire.segments.v2").Value(); n != 0 {
			t.Fatalf("v1 client produced %d v2 segments", n)
		}
	})

	t.Run("v2-client_v2-server", func(t *testing.T) {
		srv := xserver.New(200, 150)
		t.Cleanup(srv.Close)
		d, err := xclient.OpenWith(srv.ConnectPipe(), xclient.Config{Wire: xclient.WireV2})
		if err != nil {
			t.Fatalf("OpenWith: %v", err)
		}
		t.Cleanup(d.Close)
		run(t, d, 2)
		m := d.Metrics()
		if n := m.Counter("wire.segments.v2").Value(); n == 0 {
			t.Fatalf("v2 connection sent no segments")
		}
		if n := m.Counter("wire.delta.hits").Value(); n == 0 {
			t.Fatalf("rectangle storm produced no delta hits")
		}
		raw, wire := m.Counter("wire.bytes.raw").Value(), m.Counter("wire.bytes.wire").Value()
		if raw == 0 || wire >= raw {
			t.Fatalf("v2 did not shrink the wire: raw %d, wire %d", raw, wire)
		}
	})

	t.Run("v2-client_v1-server", func(t *testing.T) {
		// Server declines the upgrade: the client must fall back to v1
		// transparently and finish the same workload.
		srv := xserver.New(200, 150)
		srv.SetWireV2(false)
		t.Cleanup(srv.Close)
		d, err := xclient.OpenWith(srv.ConnectPipe(), xclient.Config{Wire: xclient.WireV2})
		if err != nil {
			t.Fatalf("OpenWith: %v", err)
		}
		t.Cleanup(d.Close)
		run(t, d, 1)
		if n := d.Metrics().Counter("wire.segments.v2").Value(); n != 0 {
			t.Fatalf("declined upgrade still sent %d segments", n)
		}
	})

	t.Run("v2-client_farm-session", func(t *testing.T) {
		// Through the farm's attach handshake: the upgrade frame follows
		// the attach frame and must reach the session's request loop.
		farm := xserver.NewFarm(xserver.FarmOptions{Width: 200, Height: 150, MaxSessions: 2})
		t.Cleanup(farm.Close)
		d, err := xclient.OpenWith(farm.ConnectPipe(), xclient.Config{Session: "wiretest", Attach: true, Wire: xclient.WireV2})
		if err != nil {
			t.Fatalf("OpenWith: %v", err)
		}
		t.Cleanup(d.Close)
		run(t, d, 2)
		if n := d.Metrics().Counter("wire.segments.v2").Value(); n == 0 {
			t.Fatalf("farm session sent no v2 segments")
		}
	})
}

// TestWireV2ServerSegments verifies the server→client direction also
// wraps: a reply-heavy workload over v2 must produce server-side
// segments and compressed bytes savings on large replies.
func TestWireV2ServerSegments(t *testing.T) {
	srv := xserver.New(300, 200)
	t.Cleanup(srv.Close)
	d, err := xclient.OpenWith(srv.ConnectPipe(), xclient.Config{Wire: xclient.WireV2})
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	t.Cleanup(d.Close)

	w := d.CreateWindow(d.Root, 0, 0, 300, 200, 0, xclient.WindowAttributes{Background: 0x808080})
	d.MapWindow(w)
	// Screenshots are large, uniform replies: highly compressible.
	for i := 0; i < 4; i++ {
		if _, err := d.Screenshot(w); err != nil {
			t.Fatalf("Screenshot: %v", err)
		}
	}
	segs := srv.Metrics().Counter("wire.segments.v2").Value()
	if segs == 0 {
		t.Fatalf("server wrapped no v2 segments")
	}
	raw := srv.Metrics().Counter("wire.bytes.raw").Value()
	wire := srv.Metrics().Counter("wire.bytes.wire").Value()
	if raw == 0 || wire >= raw {
		t.Fatalf("server compression did not shrink the wire: raw %d, wire %d", raw, wire)
	}
}

// TestWireV2PipelinedCookies proves the sequence lockstep survives the
// upgrade: pipelined reply-bearing requests resolve in order with the
// right sequence numbers.
func TestWireV2PipelinedCookies(t *testing.T) {
	srv := xserver.New(100, 100)
	t.Cleanup(srv.Close)
	d, err := xclient.OpenWith(srv.ConnectPipe(), xclient.Config{Wire: xclient.WireV2})
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	t.Cleanup(d.Close)

	var cookies []*xclient.Cookie
	for i := 0; i < 32; i++ {
		cookies = append(cookies, d.SendWithReply(&xproto.PingReq{}))
	}
	for i, ck := range cookies {
		if err := ck.Wait(nil); err != nil {
			t.Fatalf("cookie %d: %v", i, err)
		}
	}
	if errs := d.TakeErrors(); len(errs) > 0 {
		t.Fatalf("async errors: %v", errs)
	}
}
