package xclient

import (
	"repro/internal/xproto"
)

// WindowAttributes collects the optional settings for CreateWindow.
type WindowAttributes struct {
	Background       uint32
	Border           uint32
	EventMask        uint32
	OverrideRedirect bool
}

// CreateWindow creates a child window of parent and returns its ID.
func (d *Display) CreateWindow(parent xproto.ID, x, y, w, h, borderWidth int, attrs WindowAttributes) xproto.ID {
	id := d.NewID()
	d.Request(&xproto.CreateWindowReq{
		Wid: id, Parent: parent,
		X: int16(x), Y: int16(y),
		Width: uint16(w), Height: uint16(h), BorderWidth: uint16(borderWidth),
		Background: attrs.Background, Border: attrs.Border,
		EventMask: attrs.EventMask, OverrideRedirect: attrs.OverrideRedirect,
	})
	return id
}

// DestroyWindow destroys a window and its descendants.
func (d *Display) DestroyWindow(w xproto.ID) {
	d.Request(&xproto.DestroyWindowReq{Window: w})
}

// MapWindow makes a window viewable.
func (d *Display) MapWindow(w xproto.ID) {
	d.Request(&xproto.MapWindowReq{Window: w})
}

// UnmapWindow hides a window.
func (d *Display) UnmapWindow(w xproto.ID) {
	d.Request(&xproto.UnmapWindowReq{Window: w})
}

// SelectInput sets this client's event mask on a window.
func (d *Display) SelectInput(w xproto.ID, mask uint32) {
	d.Request(&xproto.ChangeWindowAttributesReq{
		Window: w, Mask: xproto.AttrEventMask, EventMask: mask,
	})
}

// SetWindowBackground changes a window's background pixel.
func (d *Display) SetWindowBackground(w xproto.ID, pixel uint32) {
	d.Request(&xproto.ChangeWindowAttributesReq{
		Window: w, Mask: xproto.AttrBackground, Background: pixel,
	})
}

// SetWindowBorder changes a window's border pixel.
func (d *Display) SetWindowBorder(w xproto.ID, pixel uint32) {
	d.Request(&xproto.ChangeWindowAttributesReq{
		Window: w, Mask: xproto.AttrBorder, Border: pixel,
	})
}

// MoveResizeWindow sets a window's position and size in one request.
func (d *Display) MoveResizeWindow(w xproto.ID, x, y, width, height int) {
	d.Request(&xproto.ConfigureWindowReq{
		Window: w,
		Mask:   xproto.CWX | xproto.CWY | xproto.CWWidth | xproto.CWHeight,
		X:      int16(x), Y: int16(y),
		Width: uint16(width), Height: uint16(height),
	})
}

// MoveWindow repositions a window.
func (d *Display) MoveWindow(w xproto.ID, x, y int) {
	d.Request(&xproto.ConfigureWindowReq{
		Window: w, Mask: xproto.CWX | xproto.CWY, X: int16(x), Y: int16(y),
	})
}

// ResizeWindow changes a window's size.
func (d *Display) ResizeWindow(w xproto.ID, width, height int) {
	d.Request(&xproto.ConfigureWindowReq{
		Window: w, Mask: xproto.CWWidth | xproto.CWHeight,
		Width: uint16(width), Height: uint16(height),
	})
}

// SetBorderWidth changes a window's border width.
func (d *Display) SetBorderWidth(w xproto.ID, bw int) {
	d.Request(&xproto.ConfigureWindowReq{
		Window: w, Mask: xproto.CWBorderWidth, BorderWidth: uint16(bw),
	})
}

// RaiseWindow restacks a window above its siblings.
func (d *Display) RaiseWindow(w xproto.ID) {
	d.Request(&xproto.ConfigureWindowReq{
		Window: w, Mask: xproto.CWStackMode, StackMode: xproto.StackAbove,
	})
}

// LowerWindow restacks a window below its siblings.
func (d *Display) LowerWindow(w xproto.ID) {
	d.Request(&xproto.ConfigureWindowReq{
		Window: w, Mask: xproto.CWStackMode, StackMode: xproto.StackBelow,
	})
}

// GetGeometry fetches a drawable's geometry (a round trip).
func (d *Display) GetGeometry(w xproto.ID) (xproto.GeometryReply, error) {
	var rep xproto.GeometryReply
	err := d.RoundTrip(&xproto.GetGeometryReq{Drawable: w}, func(r *xproto.Reader) { rep.Decode(r) })
	return rep, err
}

// QueryTree fetches a window's parent and children (a round trip).
func (d *Display) QueryTree(w xproto.ID) (xproto.QueryTreeReply, error) {
	var rep xproto.QueryTreeReply
	err := d.RoundTrip(&xproto.QueryTreeReq{Window: w}, func(r *xproto.Reader) { rep.Decode(r) })
	return rep, err
}

// InternAtom interns an atom (a round trip).
func (d *Display) InternAtom(name string) (xproto.Atom, error) {
	var rep xproto.AtomReply
	err := d.RoundTrip(&xproto.InternAtomReq{Name: name}, func(r *xproto.Reader) { rep.Decode(r) })
	return rep.Atom, err
}

// AtomCookie is a pending InternAtom reply.
type AtomCookie struct{ ck *Cookie }

// Seq reports the sequence number of the underlying request.
func (c AtomCookie) Seq() uint64 { return c.ck.Seq() }

// InternAtomAsync issues an InternAtom without waiting; several atoms
// can be interned in one pipelined flight.
func (d *Display) InternAtomAsync(name string) AtomCookie {
	return AtomCookie{d.SendWithReply(&xproto.InternAtomReq{Name: name})}
}

// Wait blocks for the interned atom.
func (c AtomCookie) Wait() (xproto.Atom, error) {
	var rep xproto.AtomReply
	err := c.ck.Wait(func(r *xproto.Reader) { rep.Decode(r) })
	return rep.Atom, err
}

// GetAtomName resolves an atom to its name (a round trip).
func (d *Display) GetAtomName(a xproto.Atom) (string, error) {
	var rep xproto.NameReply
	err := d.RoundTrip(&xproto.GetAtomNameReq{Atom: a}, func(r *xproto.Reader) { rep.Decode(r) })
	return rep.Name, err
}

// ChangeProperty replaces a window property.
func (d *Display) ChangeProperty(w xproto.ID, prop, typ xproto.Atom, data []byte) {
	d.Request(&xproto.ChangePropertyReq{
		Window: w, Property: prop, Type: typ,
		Mode: xproto.PropModeReplace, Data: data,
	})
}

// AppendProperty appends to a window property.
func (d *Display) AppendProperty(w xproto.ID, prop, typ xproto.Atom, data []byte) {
	d.Request(&xproto.ChangePropertyReq{
		Window: w, Property: prop, Type: typ,
		Mode: xproto.PropModeAppend, Data: data,
	})
}

// DeleteProperty removes a property.
func (d *Display) DeleteProperty(w xproto.ID, prop xproto.Atom) {
	d.Request(&xproto.DeletePropertyReq{Window: w, Property: prop})
}

// GetProperty reads a property (a round trip), optionally deleting it.
func (d *Display) GetProperty(w xproto.ID, prop xproto.Atom, del bool) (xproto.GetPropertyReply, error) {
	var rep xproto.GetPropertyReply
	err := d.RoundTrip(&xproto.GetPropertyReq{Window: w, Property: prop, Delete: del},
		func(r *xproto.Reader) { rep.Decode(r) })
	return rep, err
}

// ListProperties lists the property atoms on a window (a round trip).
func (d *Display) ListProperties(w xproto.ID) ([]xproto.Atom, error) {
	var rep xproto.ListPropertiesReply
	err := d.RoundTrip(&xproto.ListPropertiesReq{Window: w}, func(r *xproto.Reader) { rep.Decode(r) })
	return rep.Atoms, err
}

// SetSelectionOwner claims or releases a selection.
func (d *Display) SetSelectionOwner(sel xproto.Atom, owner xproto.ID, time uint32) {
	d.Request(&xproto.SetSelectionOwnerReq{Selection: sel, Owner: owner, Time: time})
}

// GetSelectionOwner fetches a selection's owner (a round trip).
func (d *Display) GetSelectionOwner(sel xproto.Atom) (xproto.ID, error) {
	var rep xproto.WindowReply
	err := d.RoundTrip(&xproto.GetSelectionOwnerReq{Selection: sel}, func(r *xproto.Reader) { rep.Decode(r) })
	return rep.Window, err
}

// ConvertSelection asks the selection owner to deliver the selection to
// requestor's property (ICCCM).
func (d *Display) ConvertSelection(sel, target, prop xproto.Atom, requestor xproto.ID, time uint32) {
	d.Request(&xproto.ConvertSelectionReq{
		Selection: sel, Target: target, Property: prop,
		Requestor: requestor, Time: time,
	})
}

// SendEvent delivers a synthetic event to a window; with mask 0 it goes
// to the window's creating client.
func (d *Display) SendEvent(dst xproto.ID, mask uint32, ev *xproto.Event) {
	d.Request(&xproto.SendEventReq{Destination: dst, EventMask: mask, Event: *ev})
}

// SetInputFocus assigns the keyboard focus.
func (d *Display) SetInputFocus(w xproto.ID) {
	d.Request(&xproto.SetInputFocusReq{Focus: w})
}

// GetInputFocus fetches the focus window (a round trip).
func (d *Display) GetInputFocus() (xproto.ID, error) {
	var rep xproto.WindowReply
	err := d.RoundTrip(&xproto.GetInputFocusReq{}, func(r *xproto.Reader) { rep.Decode(r) })
	return rep.Window, err
}

// QueryPointer fetches the pointer position and state (a round trip).
func (d *Display) QueryPointer() (xproto.QueryPointerReply, error) {
	var rep xproto.QueryPointerReply
	err := d.RoundTrip(&xproto.QueryPointerReq{}, func(r *xproto.Reader) { rep.Decode(r) })
	return rep, err
}

// Font is a client-side handle for an open server font, with cached
// metrics so that text measurement costs no round trips.
type Font struct {
	ID      xproto.ID
	Name    string
	Ascent  int
	Descent int
	widths  [128]uint8
}

// OpenFont opens a font and queries its metrics (one round trip).
func (d *Display) OpenFont(name string) (*Font, error) {
	return d.OpenFontAsync(name).Wait()
}

// FontCookie is a pending font open + metrics query.
type FontCookie struct {
	ck   *Cookie
	id   xproto.ID
	name string
}

// OpenFontAsync buffers the OpenFont and its metrics query without
// waiting, so several fonts (or a font and other resources) can be
// allocated in one pipelined flight.
func (d *Display) OpenFontAsync(name string) FontCookie {
	id := d.NewID()
	d.Request(&xproto.OpenFontReq{Fid: id, Name: name})
	return FontCookie{
		ck:   d.SendWithReply(&xproto.QueryFontReq{Fid: id}),
		id:   id,
		name: name,
	}
}

// Wait blocks for the font handle with its cached metrics.
func (c FontCookie) Wait() (*Font, error) {
	var rep xproto.QueryFontReply
	if err := c.ck.Wait(func(r *xproto.Reader) { rep.Decode(r) }); err != nil {
		return nil, err
	}
	f := &Font{ID: c.id, Name: c.name, Ascent: int(rep.Ascent), Descent: int(rep.Descent)}
	f.widths = rep.Widths
	return f, nil
}

// TextExtents queries the server for the rendered extents of text in a
// font (one round trip). Widget code usually uses the cached
// Font.TextWidth instead; this is the protocol-level query.
func (d *Display) TextExtents(f *Font, text string) (ascent, descent, width int, err error) {
	var rep xproto.QueryTextExtentsReply
	err = d.RoundTrip(&xproto.QueryTextExtentsReq{Fid: f.ID, Text: text},
		func(r *xproto.Reader) { rep.Decode(r) })
	if err != nil {
		return 0, 0, 0, err
	}
	return int(rep.Ascent), int(rep.Descent), int(rep.Width), nil
}

// CloseFont releases a font.
func (d *Display) CloseFont(f *Font) {
	d.Request(&xproto.CloseFontReq{Fid: f.ID})
}

// TextWidth measures a string in this font using cached metrics.
func (f *Font) TextWidth(s string) int {
	w := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c > 127 {
			c = '?'
		}
		w += int(f.widths[c])
	}
	return w
}

// LineHeight is the font's total line height.
func (f *Font) LineHeight() int { return f.Ascent + f.Descent }

// GCValues collects the settable graphics-context fields.
type GCValues struct {
	Mask       uint32
	Foreground uint32
	Background uint32
	LineWidth  int
	Font       xproto.ID
}

// CreateGC creates a graphics context.
func (d *Display) CreateGC(v GCValues) xproto.ID {
	id := d.NewID()
	d.Request(&xproto.CreateGCReq{
		Gid: id, Mask: v.Mask,
		Foreground: v.Foreground, Background: v.Background,
		LineWidth: uint16(v.LineWidth), Font: v.Font,
	})
	return id
}

// ChangeGC updates a graphics context.
func (d *Display) ChangeGC(gc xproto.ID, v GCValues) {
	d.Request(&xproto.ChangeGCReq{
		Gid: gc, Mask: v.Mask,
		Foreground: v.Foreground, Background: v.Background,
		LineWidth: uint16(v.LineWidth), Font: v.Font,
	})
}

// FreeGC releases a graphics context.
func (d *Display) FreeGC(gc xproto.ID) {
	d.Request(&xproto.FreeGCReq{Gid: gc})
}

// CreatePixmap creates an off-screen drawable.
func (d *Display) CreatePixmap(w, h int) xproto.ID {
	id := d.NewID()
	d.Request(&xproto.CreatePixmapReq{Pid: id, Width: uint16(w), Height: uint16(h)})
	return id
}

// FreePixmap releases a pixmap.
func (d *Display) FreePixmap(p xproto.ID) {
	d.Request(&xproto.FreePixmapReq{Pid: p})
}

// ClearArea clears a window area to its background; zero width/height
// extend to the edges.
func (d *Display) ClearArea(w xproto.ID, x, y, width, height int) {
	d.Request(&xproto.ClearAreaReq{Window: w, X: int16(x), Y: int16(y), Width: uint16(width), Height: uint16(height)})
}

// ClearWindow clears an entire window to its background.
func (d *Display) ClearWindow(w xproto.ID) { d.ClearArea(w, 0, 0, 0, 0) }

// CopyArea copies pixels between drawables.
func (d *Display) CopyArea(src, dst, gc xproto.ID, sx, sy, dx, dy, w, h int) {
	d.Request(&xproto.CopyAreaReq{
		Src: src, Dst: dst, Gc: gc,
		SrcX: int16(sx), SrcY: int16(sy), DstX: int16(dx), DstY: int16(dy),
		Width: uint16(w), Height: uint16(h),
	})
}

// DrawLine draws one line segment.
func (d *Display) DrawLine(drawable, gc xproto.ID, x1, y1, x2, y2 int) {
	d.Request(&xproto.PolyLineReq{Drawable: drawable, Gc: gc, Points: []xproto.Point{
		{X: int16(x1), Y: int16(y1)}, {X: int16(x2), Y: int16(y2)},
	}})
}

// DrawLines draws connected segments through the points.
func (d *Display) DrawLines(drawable, gc xproto.ID, pts []xproto.Point) {
	d.Request(&xproto.PolyLineReq{Drawable: drawable, Gc: gc, Points: pts})
}

// DrawRectangle outlines a rectangle.
func (d *Display) DrawRectangle(drawable, gc xproto.ID, x, y, w, h int) {
	d.Request(&xproto.PolyRectangleReq{Drawable: drawable, Gc: gc, Rects: []xproto.Rect{
		{X: int16(x), Y: int16(y), W: uint16(w), H: uint16(h)},
	}})
}

// FillRectangle fills a rectangle.
func (d *Display) FillRectangle(drawable, gc xproto.ID, x, y, w, h int) {
	d.Request(&xproto.PolyFillRectangleReq{Drawable: drawable, Gc: gc, Rects: []xproto.Rect{
		{X: int16(x), Y: int16(y), W: uint16(w), H: uint16(h)},
	}})
}

// FillRectangles fills a batch of rectangles with one request — the
// server clips and fills the whole list in a single pass, so many small
// fills (or one storm of large ones) cost one request's dispatch.
func (d *Display) FillRectangles(drawable, gc xproto.ID, rects []xproto.Rect) {
	d.Request(&xproto.PolyFillRectangleReq{Drawable: drawable, Gc: gc, Rects: rects})
}

// FillPolygon fills a polygon.
func (d *Display) FillPolygon(drawable, gc xproto.ID, pts []xproto.Point) {
	d.Request(&xproto.FillPolyReq{Drawable: drawable, Gc: gc, Points: pts})
}

// DrawString draws text with its baseline at (x, y).
func (d *Display) DrawString(drawable, gc xproto.ID, x, y int, s string) {
	d.Request(&xproto.PolyText8Req{Drawable: drawable, Gc: gc, X: int16(x), Y: int16(y), Text: s})
}

// DrawImageString draws text over a background-filled cell.
func (d *Display) DrawImageString(drawable, gc xproto.ID, x, y int, s string) {
	d.Request(&xproto.ImageText8Req{Drawable: drawable, Gc: gc, X: int16(x), Y: int16(y), Text: s})
}

// AllocColor allocates a color from 16-bit components (a round trip).
func (d *Display) AllocColor(r, g, b uint16) (uint32, error) {
	var rep xproto.ColorReply
	err := d.RoundTrip(&xproto.AllocColorReq{R: r, G: g, B: b}, func(rd *xproto.Reader) { rep.Decode(rd) })
	return rep.Pixel, err
}

// AllocNamedColor resolves a color name (a round trip). found is false
// when the name is not in the server database.
func (d *Display) AllocNamedColor(name string) (pixel uint32, found bool, err error) {
	return d.AllocNamedColorAsync(name).Wait()
}

// NamedColorCookie is a pending AllocNamedColor reply.
type NamedColorCookie struct{ ck *Cookie }

// AllocNamedColorAsync issues an AllocNamedColor without waiting;
// several colors can be allocated in one pipelined flight.
func (d *Display) AllocNamedColorAsync(name string) NamedColorCookie {
	return NamedColorCookie{d.SendWithReply(&xproto.AllocNamedColorReq{Name: name})}
}

// Wait blocks for the allocated pixel.
func (c NamedColorCookie) Wait() (pixel uint32, found bool, err error) {
	var rep xproto.ColorReply
	err = c.ck.Wait(func(rd *xproto.Reader) { rep.Decode(rd) })
	return rep.Pixel, rep.Found, err
}

// CreateCursor creates a named cursor shape.
func (d *Display) CreateCursor(shape string) xproto.ID {
	id := d.NewID()
	d.Request(&xproto.CreateCursorReq{Cid: id, Shape: shape})
	return id
}

// SetWindowCursor assigns a cursor to a window.
func (d *Display) SetWindowCursor(w, cursor xproto.ID) {
	d.Request(&xproto.ChangeWindowAttributesReq{Window: w, Mask: xproto.AttrCursor, Cursor: cursor})
}

// Bell rings the display bell.
func (d *Display) Bell() { d.Request(&xproto.BellReq{}) }

// WarpPointer injects pointer motion to absolute coordinates.
func (d *Display) WarpPointer(x, y int) {
	d.Request(&xproto.FakeInputReq{Kind: xproto.FakeMotion, X: int16(x), Y: int16(y)})
}

// FakeButton injects a button press or release.
func (d *Display) FakeButton(button int, press bool) {
	kind := xproto.FakeButtonRelease
	if press {
		kind = xproto.FakeButtonPress
	}
	d.Request(&xproto.FakeInputReq{Kind: kind, Detail: uint32(button)})
}

// FakeKey injects a key press or release by keysym.
func (d *Display) FakeKey(ks xproto.Keysym, press bool) {
	kind := xproto.FakeKeyRelease
	if press {
		kind = xproto.FakeKeyPress
	}
	d.Request(&xproto.FakeInputReq{Kind: kind, Detail: uint32(ks)})
}

// Screenshot captures the composited screen (window None) or a window's
// subtree (a round trip).
func (d *Display) Screenshot(w xproto.ID) (xproto.ScreenshotReply, error) {
	var rep xproto.ScreenshotReply
	err := d.RoundTrip(&xproto.ScreenshotReq{Window: w}, func(r *xproto.Reader) { rep.Decode(r) })
	return rep, err
}

// SetLatency sets the simulated per-request IPC latency in microseconds.
func (d *Display) SetLatency(micros int) {
	d.Request(&xproto.SetLatencyReq{Micros: uint32(micros)})
}

// Counters fetches this connection's protocol traffic counters (a round
// trip). The server answers from its per-connection obs registry; the
// client-side view of the same traffic is available without a round
// trip via Metrics().
func (d *Display) Counters() (xproto.CountersReply, error) {
	var rep xproto.CountersReply
	err := d.RoundTrip(&xproto.QueryCountersReq{}, func(r *xproto.Reader) { rep.Decode(r) })
	return rep, err
}
