// Package xclient is the client-side library for the simulated X display
// server — the analogue of Xlib in the paper's stack. It manages the
// connection, buffers requests, performs round trips for requests with
// replies, maintains the incoming event queue, and provides typed
// wrappers for every request the Tk toolkit needs.
package xclient

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/xproto"
)

// Display is an open connection to a display server.
type Display struct {
	conn net.Conn

	// Screen parameters from the setup block.
	Root   xproto.ID
	Width  int
	Height int

	// ErrorHandler receives asynchronous protocol errors (errors for
	// requests nobody was waiting on). Defaults to collecting them in
	// Errors.
	ErrorHandler func(msg string)

	mu      sync.Mutex // serializes writers and round trips
	wbuf    []byte     // guarded by mu
	seq     uint64     // guarded by mu
	idNext  uint32     // guarded by mu (written once more in Open, pre-publication)
	closed  bool       // guarded by mu
	pending chan serverMsg

	// Incoming events are buffered in an unbounded queue (as Xlib's
	// event queue is) so the socket reader never blocks however far the
	// application falls behind; a feeder goroutine moves them onto the
	// events channel consumers select on.
	events  chan xproto.Event
	evMu    sync.Mutex
	evCond  *sync.Cond
	evQueue []xproto.Event // guarded by evMu
	evDone  bool           // guarded by evMu

	errMu  sync.Mutex
	errors []string // guarded by errMu

	readerDone chan struct{}
	stop       chan struct{} // closed by Close; releases the feeder

	// metrics records client-side traffic: "requests" and per-opcode
	// "requests.<OpName>" counters for everything sent, "async" for
	// one-way requests, "roundtrips" and the "roundtrip" latency
	// histogram for blocking ones, "events" for deliveries. The pointer
	// is immutable after Open; the registry is safe for concurrent use.
	metrics *obs.Registry
}

type serverMsg struct {
	kind    byte
	payload []byte
}

const eventChanSize = 64

// Open establishes a Display over an existing connection (from
// xserver.ConnectPipe or net.Dial).
func Open(conn net.Conn) (*Display, error) {
	d := &Display{
		conn:       conn,
		pending:    make(chan serverMsg, 256),
		events:     make(chan xproto.Event, eventChanSize),
		readerDone: make(chan struct{}),
		stop:       make(chan struct{}),
		metrics:    obs.NewRegistry(),
	}
	d.evCond = sync.NewCond(&d.evMu)
	// The setup block arrives before anything else.
	kind, payload, err := xproto.ReadServerFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("xclient: connection setup failed: %w", err)
	}
	if kind != xproto.KindReply {
		conn.Close()
		return nil, fmt.Errorf("xclient: unexpected setup message kind %d", kind)
	}
	var setup xproto.SetupReply
	setup.Decode(xproto.NewReader(payload))
	d.Root = setup.Root
	d.Width = int(setup.Width)
	d.Height = int(setup.Height)
	d.idNext = setup.ResourceIDBase
	go d.readLoop()
	go d.feedEvents()
	return d, nil
}

// Dial connects to a display server at a TCP address.
func Dial(addr string) (*Display, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Open(conn)
}

// Close shuts the connection down.
func (d *Display) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	d.conn.Close()
	close(d.stop)
	// Wake the feeder so it can observe the stop and exit.
	d.evMu.Lock()
	d.evCond.Signal()
	d.evMu.Unlock()
}

// Closed reports whether the display connection has been closed.
func (d *Display) Closed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// NewID allocates a fresh resource ID from this connection's range.
func (d *Display) NewID() xproto.ID {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.idNext++
	return xproto.ID(d.idNext)
}

// readLoop dispatches incoming server messages. Events go to the
// unbounded queue so this loop never stalls on a slow consumer.
func (d *Display) readLoop() {
	defer close(d.readerDone)
	for {
		kind, payload, err := xproto.ReadServerFrame(d.conn)
		if err != nil {
			d.evMu.Lock()
			d.evDone = true
			d.evCond.Signal()
			d.evMu.Unlock()
			// Fail any round trip still waiting for a reply.
			close(d.pending)
			return
		}
		switch kind {
		case xproto.KindEvent:
			d.metrics.Counter("events").Inc()
			var ev xproto.Event
			ev.Decode(xproto.NewReader(payload))
			d.evMu.Lock()
			d.evQueue = append(d.evQueue, ev)
			d.evCond.Signal()
			d.evMu.Unlock()
		case xproto.KindReply, xproto.KindError:
			d.pending <- serverMsg{kind: kind, payload: payload}
		}
	}
}

// feedEvents moves queued events onto the events channel, closing it
// when the connection has dropped and the queue is drained.
func (d *Display) feedEvents() {
	for {
		d.evMu.Lock()
		for len(d.evQueue) == 0 && !d.evDone {
			d.evCond.Wait()
		}
		if len(d.evQueue) == 0 && d.evDone {
			d.evMu.Unlock()
			close(d.events)
			return
		}
		ev := d.evQueue[0]
		d.evQueue = d.evQueue[1:]
		if len(d.evQueue) == 0 {
			// Let the backing array be reclaimed after bursts.
			d.evQueue = nil
		}
		d.evMu.Unlock()
		select {
		case d.events <- ev:
		case <-d.stop:
			// Consumer is gone (explicit Close): discard and finish.
			close(d.events)
			return
		}
	}
}

// Events returns the incoming event channel; it is closed when the
// connection drops.
func (d *Display) Events() <-chan xproto.Event { return d.events }

// NextEvent blocks for the next event; ok is false after disconnect.
func (d *Display) NextEvent() (xproto.Event, bool) {
	ev, ok := <-d.events
	return ev, ok
}

// PollEvent returns an event if one is queued.
func (d *Display) PollEvent() (xproto.Event, bool) {
	select {
	case ev, ok := <-d.events:
		return ev, ok
	default:
		return xproto.Event{}, false
	}
}

// asyncError records or reports a protocol error nobody is waiting on.
func (d *Display) asyncError(msg string) {
	if d.ErrorHandler != nil {
		d.ErrorHandler(msg)
		return
	}
	d.errMu.Lock()
	d.errors = append(d.errors, msg)
	d.errMu.Unlock()
}

// TakeErrors returns and clears the accumulated asynchronous errors.
func (d *Display) TakeErrors() []string {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	errs := d.errors
	d.errors = nil
	return errs
}

// Metrics returns the client-side registry (see the field doc for the
// metric names).
func (d *Display) Metrics() *obs.Registry { return d.metrics }

// send buffers a request. Must be called with d.mu held.
func (d *Display) send(req xproto.Request) uint64 {
	d.metrics.Counter("requests").Inc()
	d.metrics.Counter("requests." + xproto.OpName(req.Op())).Inc()
	w := xproto.NewWriter()
	req.Encode(w)
	payload := w.Bytes()
	d.seq++
	hdr := []byte{
		byte(req.Op() >> 8), byte(req.Op()),
		byte(len(payload) >> 24), byte(len(payload) >> 16),
		byte(len(payload) >> 8), byte(len(payload)),
	}
	d.wbuf = append(d.wbuf, hdr...)
	d.wbuf = append(d.wbuf, payload...)
	return d.seq
}

// flushLocked writes the buffered requests. Must be called with d.mu
// held.
func (d *Display) flushLocked() error {
	if len(d.wbuf) == 0 || d.closed {
		return nil
	}
	_, err := d.conn.Write(d.wbuf)
	d.wbuf = d.wbuf[:0]
	return err
}

// Request buffers a one-way request (no reply). Like Xlib, requests are
// batched until a Flush or a round trip. Requests on a closed display
// are discarded.
func (d *Display) Request(req xproto.Request) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.metrics.Counter("async").Inc()
	d.send(req)
	// Keep the buffer bounded even without explicit flushes.
	if len(d.wbuf) >= 32<<10 {
		_ = d.flushLocked()
	}
}

// Flush writes all buffered requests to the server.
func (d *Display) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.flushLocked()
}

// RoundTrip sends a request and blocks until its reply arrives, decoding
// it with decode. Protocol errors for this request surface as errors.
func (d *Display) RoundTrip(req xproto.Request, decode func(r *xproto.Reader)) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("xclient: display closed")
	}
	d.metrics.Counter("roundtrips").Inc()
	begin := time.Now()
	seq := d.send(req)
	if err := d.flushLocked(); err != nil {
		return err
	}
	for {
		msg, ok := <-d.pending
		if !ok {
			return fmt.Errorf("xclient: connection lost")
		}
		r := xproto.NewReader(msg.payload)
		gotSeq := r.U64()
		if msg.kind == xproto.KindError {
			text := r.String()
			if gotSeq == seq {
				d.metrics.Histogram("roundtrip").Observe(time.Since(begin))
				return fmt.Errorf("x error: %s", text)
			}
			d.asyncError(text)
			continue
		}
		if gotSeq != seq {
			// A reply for a request we did not wait on; should not
			// happen with serialized round trips.
			d.asyncError(fmt.Sprintf("unexpected reply seq %d (want %d)", gotSeq, seq))
			continue
		}
		// The histogram records flush→answer wall time, so it includes
		// the server's simulated IPC latency — the quantity §3.3's
		// caches exist to avoid paying.
		d.metrics.Histogram("roundtrip").Observe(time.Since(begin))
		if decode != nil {
			decode(r)
		}
		return r.Err()
	}
}

// Sync flushes and waits until the server has processed everything
// (an empty round trip, like XSync).
func (d *Display) Sync() error {
	return d.RoundTrip(&xproto.PingReq{}, nil)
}
