// Package xclient is the client-side library for the simulated X display
// server — the analogue of Xlib in the paper's stack. It manages the
// connection, buffers requests, performs round trips for requests with
// replies, maintains the incoming event queue, and provides typed
// wrappers for every request the Tk toolkit needs.
package xclient

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/xproto"
)

// ErrTimeout marks round-trip deadline expiry; test with errors.Is.
var ErrTimeout = errors.New("timeout")

// DefaultRoundTripTimeout bounds Cookie.Wait (and so every RoundTrip
// and Sync) unless SetRoundTripTimeout overrides it. A reply that takes
// this long means the server or the wire is wedged; waiting forever
// would wedge the client with it.
const DefaultRoundTripTimeout = 30 * time.Second

// setupTimeout bounds the initial setup-block read in Open, so a dialed
// connection to something that is not (or no longer) a display server
// fails fast instead of hanging the caller.
const setupTimeout = 10 * time.Second

// Display is an open connection to a display server.
//
// Its lock order is declared for cmd/tkcheck's lock-order analyzer:
// the writer lock may be held while registering a reply waiter, and
// the event-queue and error-sink locks never nest with anything.
//
// lock-order: mu -> pendMu
// lock-order: evMu
// lock-order: errMu
type Display struct {
	conn net.Conn

	// Screen parameters from the setup block.
	Root   xproto.ID
	Width  int
	Height int

	// ErrorHandler receives asynchronous protocol errors (errors for
	// requests nobody was waiting on). Defaults to collecting them in
	// Errors.
	ErrorHandler func(msg string)

	mu     sync.Mutex // serializes writers
	wbuf   []byte     // guarded by mu
	wcount int        // guarded by mu — frames buffered since the last flush
	seq    uint64     // guarded by mu
	idNext uint32     // guarded by mu (written once more in Open, pre-publication)
	closed bool       // guarded by mu

	// Reply routing (the XCB cookie model): every reply-bearing request
	// registers a waiter keyed by its sequence number, so any number of
	// requests can be in flight at once and readLoop routes each
	// reply/error to its own waiter. pendMu is ordered after mu
	// (SendWithReply takes mu then pendMu; nothing takes them the other
	// way around).
	pendMu  sync.Mutex
	waiters map[uint64]*Cookie // guarded by pendMu
	lostErr error              // guarded by pendMu — set once when readLoop exits

	// Incoming events are buffered in an unbounded queue (as Xlib's
	// event queue is) so the socket reader never blocks however far the
	// application falls behind; a feeder goroutine moves them onto the
	// events channel consumers select on.
	events  chan xproto.Event
	evMu    sync.Mutex
	evCond  *sync.Cond
	evQueue []xproto.Event // guarded by evMu
	evDone  bool           // guarded by evMu

	// evSeen counts events the read loop has queued since Open. Because
	// the read loop is sequential, by the time any round trip resolves
	// the count covers every event the server sent before that reply —
	// see EventsSeen.
	evSeen atomic.Uint64

	errMu  sync.Mutex
	errors []string // guarded by errMu

	readerDone chan struct{}
	stop       chan struct{} // closed by Close; releases the feeder

	// rtTimeout is the Cookie.Wait deadline in nanoseconds (0 disables);
	// atomic so SetRoundTripTimeout may be called from any goroutine.
	rtTimeout atomic.Int64

	// metrics records client-side traffic: "requests" and per-opcode
	// "requests.<OpName>" counters for everything sent, "async" for
	// one-way requests, "roundtrips" and the "roundtrip" latency
	// histogram for reply-bearing ones, "events" for deliveries. The
	// pipelining layer adds the "inflight" gauge (waiters outstanding),
	// the "pipelined" counter (reply-bearing requests issued while
	// another was already in flight) and the "flush.batch" histogram
	// (frames coalesced per wire write). The hardening layer adds
	// "errors.async" (protocol errors nobody was waiting on),
	// "roundtrip.timeout" (Cookie.Wait deadline expiries) and
	// "protocol.corrupt" (unreadable frame headers, each fatal to the
	// connection). The span layer adds "trace.sampled" (requests picked
	// for span recording) and "trace.spans" (spans recorded). The
	// pointer is immutable after Open; the registry is safe for
	// concurrent use.
	metrics *obs.Registry

	// tracer, when set, records spans for sampled reply-bearing requests
	// (see internal/obs/trace). Atomic so SetTracer may race requests.
	tracer atomic.Pointer[trace.Tracer]

	// tracedFlush is the sequence number of a sampled request buffered
	// since the last flush (0 = none), so flushLocked knows to time and
	// record the wire write that carries it. guarded by mu.
	tracedFlush uint64

	// Wire protocol v2 state (docs/pipelining.md, "Wire protocol v2").
	// All of it is settled during OpenWith, before the Display is
	// published: wireTx says the upgrade was negotiated, wireCaps is the
	// granted capability set, and txCache is the request delta cache —
	// consulted and updated only under mu (the same lock that orders the
	// frames themselves, which is what keeps it in lockstep with the
	// server's replica). segTx is the segment assembly scratch (guarded
	// by mu); segRx the readLoop's decompression scratch (readLoop
	// goroutine only).
	wireTx   bool               // immutable after OpenWith
	wireCaps byte               // immutable after OpenWith
	txCache  *xproto.DeltaCache // guarded by mu
	segTx    []byte             // guarded by mu
	segRx    []byte             // readLoop only

	// rttEwma is the smoothed round-trip estimate (ns) fed by every
	// completed round trip on a v2 connection; the adaptive flush
	// controller sizes the auto-flush threshold from it
	// (flushThresholdLocked). 0 = no samples yet (and always 0 on v1,
	// whose reply path skips the update entirely).
	rttEwma atomic.Int64

	// wire.* metric handles, pre-resolved at Open so the send/flush hot
	// paths pay atomic ops, not map lookups. Immutable after Open.
	wireSegs       *obs.Counter
	wireBytesRaw   *obs.Counter
	wireBytesWire  *obs.Counter
	wireDeltaHits  *obs.Counter
	wireDeltaMiss  *obs.Counter
	wireSkipped    *obs.Counter
	wireDecodeErrs *obs.Counter
	wireThreshGa   *obs.Gauge
	wireRTTGa      *obs.Gauge
}

const eventChanSize = 64

// WireMode selects the wire protocol OpenWith negotiates at setup.
type WireMode int

const (
	// WireV1 speaks the original framing — the default. No upgrade
	// frame is written, so the connection is byte-for-byte identical to
	// a pre-v2 client (and stays decodable by the xtrace tap).
	WireV1 WireMode = iota
	// WireV2 requests the LBX-style v2 upgrade (per-segment
	// compression, request delta encoding, latency-adaptive flushing;
	// docs/pipelining.md) and falls back to v1 transparently if the
	// server declines.
	WireV2
)

// Config configures OpenWith. The zero value reproduces Open exactly.
type Config struct {
	// Session names the virtual display to attach on a session farm
	// (docs/farm.md); a non-empty name implies the attach handshake.
	Session string
	// Attach writes the session-attach handshake even when Session is
	// empty (selecting the farm's default session) — what OpenSession
	// has always done.
	Attach bool
	// Wire selects the wire protocol to negotiate.
	Wire WireMode
}

// Open establishes a Display over an existing connection (from
// xserver.ConnectPipe or net.Dial).
func Open(conn net.Conn) (*Display, error) {
	return OpenWith(conn, Config{})
}

// OpenWith establishes a Display with explicit session and
// wire-protocol configuration. Both handshakes are written raw before
// the setup block is read, and neither carries a sequence number on
// either side, so the cookie/span sequence lockstep is untouched
// whatever is negotiated.
func OpenWith(conn net.Conn, cfg Config) (*Display, error) {
	if cfg.Attach || cfg.Session != "" {
		w := xproto.AcquireWriter()
		(&xproto.AttachSessionReq{Session: cfg.Session}).Encode(w)
		err := xproto.WriteRequestFrame(conn, xproto.OpAttachSession, w.Bytes())
		xproto.ReleaseWriter(w)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("xclient: writing session attach: %w", err)
		}
	}
	if cfg.Wire == WireV2 {
		w := xproto.AcquireWriter()
		(&xproto.UpgradeWireReq{
			Version: 2,
			Caps:    xproto.WireCapCompress | xproto.WireCapDelta,
		}).Encode(w)
		err := xproto.WriteRequestFrame(conn, xproto.OpUpgradeWire, w.Bytes())
		xproto.ReleaseWriter(w)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("xclient: writing wire upgrade: %w", err)
		}
	}
	d := &Display{
		conn:       conn,
		waiters:    make(map[uint64]*Cookie),
		events:     make(chan xproto.Event, eventChanSize),
		readerDone: make(chan struct{}),
		stop:       make(chan struct{}),
		metrics:    obs.NewRegistry(),
	}
	d.evCond = sync.NewCond(&d.evMu)
	d.rtTimeout.Store(int64(DefaultRoundTripTimeout))
	// The setup block arrives before anything else. Bound the wait so a
	// dead endpoint fails the Open instead of hanging it.
	conn.SetReadDeadline(time.Now().Add(setupTimeout))
	kind, payload, err := xproto.ReadServerFrame(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		// A server that is already shut down closes (or has closed) the
		// connection before sending any setup block; distinguish that
		// from a genuinely malformed stream so the caller sees what
		// actually happened instead of a bare EOF.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
			errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
			return nil, fmt.Errorf("xclient: display server closed the connection during setup (server not running or already shut down): %w", err)
		}
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return nil, fmt.Errorf("xclient: no connection setup block within %v (endpoint is not a display server, or is wedged): %w", setupTimeout, err)
		}
		return nil, fmt.Errorf("xclient: connection setup failed: %w", err)
	}
	if kind == xproto.KindError {
		// A pre-setup refusal: a session farm rejecting admission (cap
		// reached, malformed attach) answers with a sequence-0 error
		// frame instead of a setup block. Surface its message.
		conn.Close()
		r := xproto.NewReader(payload)
		r.U64() // sequence; 0 for pre-setup refusals
		if msg := r.String(); r.Err() == nil && msg != "" {
			return nil, fmt.Errorf("xclient: display server refused the connection: %s", msg)
		}
		return nil, fmt.Errorf("xclient: display server refused the connection")
	}
	if kind != xproto.KindReply {
		conn.Close()
		return nil, fmt.Errorf("xclient: unexpected setup message kind %d", kind)
	}
	var setup xproto.SetupReply
	setup.Decode(xproto.NewReader(payload))
	d.Root = setup.Root
	d.Width = int(setup.Width)
	d.Height = int(setup.Height)
	d.idNext = setup.ResourceIDBase
	if cfg.Wire == WireV2 {
		// The ack is queued right behind the setup block (the server's
		// request loop consumed the upgrade before dispatching anything),
		// so it is read synchronously here — the negotiation is settled
		// before the read loop starts and before the first request.
		conn.SetReadDeadline(time.Now().Add(setupTimeout))
		kind, ack, err := xproto.ReadServerFrame(conn)
		conn.SetReadDeadline(time.Time{})
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("xclient: reading wire upgrade ack: %w", err)
		}
		if kind != xproto.KindWireAck || len(ack) < 2 {
			conn.Close()
			return nil, fmt.Errorf("xclient: malformed wire upgrade ack (kind %d, %d bytes)", kind, len(ack))
		}
		if ack[0] >= 2 {
			d.wireTx = true
			d.wireCaps = ack[1]
			if d.wireCaps&xproto.WireCapDelta != 0 {
				d.txCache = xproto.NewDeltaCache()
			}
		}
		// A version-1 ack is the transparent fallback: the server
		// declined and both sides continue in v1 framing.
	}
	d.wireSegs = d.metrics.Counter("wire.segments.v2")
	d.wireBytesRaw = d.metrics.Counter("wire.bytes.raw")
	d.wireBytesWire = d.metrics.Counter("wire.bytes.wire")
	d.wireDeltaHits = d.metrics.Counter("wire.delta.hits")
	d.wireDeltaMiss = d.metrics.Counter("wire.delta.misses")
	d.wireSkipped = d.metrics.Counter("wire.compress.skipped")
	d.wireDecodeErrs = d.metrics.Counter("wire.decode.errors")
	d.wireThreshGa = d.metrics.Gauge("wire.flush.threshold")
	d.wireRTTGa = d.metrics.Gauge("wire.rtt.ewma")
	go d.readLoop()
	go d.feedEvents()
	return d, nil
}

// WireVersion reports the negotiated wire protocol: 2 after an accepted
// upgrade, 1 otherwise (including declined upgrades).
func (d *Display) WireVersion() int {
	if d.wireTx {
		return 2
	}
	return 1
}

// Dial connects to a display server at a TCP address.
func Dial(addr string) (*Display, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Open(conn)
}

// OpenSession establishes a Display attached to the named virtual
// display of a session-multiplexing server (xserver.Farm,
// docs/farm.md). The attach handshake is written raw before the setup
// read — it carries no sequence number on either side, so against a
// plain single-display server (which consumes it without counting it)
// the connection behaves exactly like Open. The empty name selects the
// farm's default session.
func OpenSession(conn net.Conn, session string) (*Display, error) {
	return OpenWith(conn, Config{Session: session, Attach: true})
}

// DialSession connects to a display farm at a TCP address and attaches
// to the named session.
func DialSession(addr, session string) (*Display, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return OpenSession(conn, session)
}

// Close shuts the connection down.
func (d *Display) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.conn.Close()
	close(d.stop)
	d.mu.Unlock()
	// Wake the feeder so it can observe the stop and exit. Signaled
	// after mu is released: evMu is a leaf and must never nest under
	// the writer lock (see the lock-order declaration on Display).
	d.evMu.Lock()
	d.evCond.Signal()
	d.evMu.Unlock()
}

// Closed reports whether the display connection has been closed.
func (d *Display) Closed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// NewID allocates a fresh resource ID from this connection's range.
func (d *Display) NewID() xproto.ID {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.idNext++
	return xproto.ID(d.idNext)
}

// readLoop dispatches incoming server messages. Events go to the
// unbounded queue so this loop never stalls on a slow consumer;
// replies and errors are routed to their waiting cookie by sequence
// number. Any framing damage — a read error, a torn frame, an unknown
// frame kind — is unrecoverable (stream alignment is gone), so it is
// turned into one clean connection-lost error that fails every
// outstanding and future cookie rather than hanging them.
func (d *Display) readLoop() {
	defer close(d.readerDone)
	// Frames are read into a reusable scratch buffer. Events are decoded
	// before the next read (Event.Decode copies what it keeps), so the
	// steady-state event path allocates nothing; reply and error payloads
	// outlive the loop iteration inside their cookie (decode happens
	// lazily at Wait), so those are copied out of the scratch.
	var scratch []byte
	for {
		kind, payload, err := xproto.ReadServerFrameInto(d.conn, scratch)
		if err != nil {
			d.connLost(fmt.Errorf("xclient: connection lost: %w", err))
			return
		}
		scratch = payload
		if kind == xproto.KindWireSeg {
			// A v2 segment of batched server frames: verify, unwrap and
			// handle each inner frame. Decode failure is fatal — the
			// checksum no longer vouches for the stream.
			raw, s2, derr := xproto.DecodeSegmentPayload(payload, d.segRx)
			d.segRx = s2
			if derr == nil {
				derr = xproto.WalkServerFrames(raw, d.handleServerFrame)
			}
			if derr != nil {
				d.wireDecodeErrs.Inc()
				d.metrics.Counter("protocol.corrupt").Inc()
				d.conn.Close()
				d.connLost(fmt.Errorf("xclient: protocol corruption: %w", derr))
				return
			}
			continue
		}
		if err := d.handleServerFrame(kind, payload); err != nil {
			// Garbage where a frame header should be: the stream can no
			// longer be trusted byte-for-byte. Fail cleanly.
			d.metrics.Counter("protocol.corrupt").Inc()
			d.conn.Close()
			d.connLost(err)
			return
		}
	}
}

// handleServerFrame processes one server frame — bare off the wire or
// unwrapped from a v2 segment. A returned error is fatal to the
// connection (stream alignment or trust is gone); recoverable damage
// inside a correctly delimited frame surfaces through asyncError.
func (d *Display) handleServerFrame(kind byte, payload []byte) error {
	switch kind {
	case xproto.KindEvent:
		var ev xproto.Event
		r := xproto.NewReader(payload)
		ev.Decode(r)
		if r.Err() != nil {
			// The frame itself was delimited correctly, so the
			// stream is still aligned: surface the damage and skip
			// the frame instead of killing the connection.
			d.asyncError(fmt.Sprintf("malformed event: %v", r.Err()))
			return nil
		}
		d.metrics.Counter("events").Inc()
		d.evSeen.Add(1)
		d.evMu.Lock()
		d.evQueue = append(d.evQueue, ev)
		d.evCond.Signal()
		d.evMu.Unlock()
		return nil
	case xproto.KindReply, xproto.KindError:
		d.routeReply(kind, append([]byte(nil), payload...))
		return nil
	default:
		return fmt.Errorf("xclient: protocol corruption: unknown frame kind %d", kind)
	}
}

// connLost marks the connection dead with its root cause: the event
// queue is drained-and-closed, and every cookie still waiting (or
// registered from now on) fails with err instead of blocking forever.
func (d *Display) connLost(err error) {
	d.evMu.Lock()
	d.evDone = true
	d.evCond.Signal()
	d.evMu.Unlock()
	d.pendMu.Lock()
	d.lostErr = err
	for seq, ck := range d.waiters {
		delete(d.waiters, seq)
		ck.resolve(nil, err)
	}
	d.metrics.Gauge("inflight").Set(0)
	d.pendMu.Unlock()
}

// routeReply delivers one reply or error frame to the cookie waiting on
// its sequence number. Frames nobody is waiting on surface through
// asyncError.
func (d *Display) routeReply(kind byte, payload []byte) {
	r := xproto.NewReader(payload)
	seq := r.U64()
	if r.Err() != nil {
		d.asyncError(fmt.Sprintf("malformed server message: %v", r.Err()))
		return
	}
	d.pendMu.Lock()
	ck := d.waiters[seq]
	if ck != nil {
		delete(d.waiters, seq)
		d.metrics.Gauge("inflight").Set(int64(len(d.waiters)))
	}
	d.pendMu.Unlock()
	if ck == nil {
		if kind == xproto.KindError {
			d.asyncError(r.String())
		} else {
			d.asyncError(fmt.Sprintf("unexpected reply seq %d", seq))
		}
		return
	}
	// The histogram records issue→answer wall time, so it includes the
	// server's simulated IPC latency — the quantity §3.3's caches exist
	// to avoid paying.
	elapsed := time.Since(ck.begin)
	d.metrics.Histogram("roundtrip").Observe(elapsed)
	if d.wireTx {
		// Only the v2 flush controller consumes the EWMA; keep the v1
		// reply path free of the extra CAS + gauge store.
		d.observeRTT(int64(elapsed))
	}
	if ck.traced {
		if tr := d.tracer.Load(); tr != nil {
			tr.Record(trace.Span{
				Seq: ck.seq, Name: "client.rtt", Side: "client",
				Op:    xproto.OpName(ck.op),
				Start: ck.begin.UnixNano(), Dur: int64(elapsed),
			})
			d.metrics.Counter("trace.spans").Inc()
		}
	}
	if kind == xproto.KindError {
		ck.resolve(nil, fmt.Errorf("x error: %s", r.String()))
		return
	}
	ck.resolve(payload[8:], nil)
}

// feedEvents moves queued events onto the events channel, closing it
// when the connection has dropped and the queue is drained.
func (d *Display) feedEvents() {
	for {
		d.evMu.Lock()
		for len(d.evQueue) == 0 && !d.evDone {
			d.evCond.Wait()
		}
		if len(d.evQueue) == 0 && d.evDone {
			d.evMu.Unlock()
			close(d.events)
			return
		}
		ev := d.evQueue[0]
		d.evQueue = d.evQueue[1:]
		if len(d.evQueue) == 0 {
			// Let the backing array be reclaimed after bursts.
			d.evQueue = nil
		}
		d.evMu.Unlock()
		select {
		case d.events <- ev:
		case <-d.stop:
			// Consumer is gone (explicit Close): discard and finish.
			close(d.events)
			return
		}
	}
}

// Events returns the incoming event channel; it is closed when the
// connection drops.
func (d *Display) Events() <-chan xproto.Event { return d.events }

// EventsSeen returns the number of events the read loop has queued for
// delivery since Open. The read loop is sequential, so once any round
// trip completes the count includes every event the server sent before
// that reply. A consumer that tracks how many events it has received
// from Events() can therefore distinguish "nothing pending" from
// "queued but not yet handed to the channel by the feeder": when the
// counts differ, a blocking receive on Events() is guaranteed to
// return promptly (the feeder delivers the event, or closes the
// channel on disconnect). A non-blocking poll alone cannot tell — it
// races the feeder goroutine.
func (d *Display) EventsSeen() uint64 { return d.evSeen.Load() }

// NextEvent blocks for the next event; ok is false after disconnect.
func (d *Display) NextEvent() (xproto.Event, bool) {
	ev, ok := <-d.events
	return ev, ok
}

// PollEvent returns an event if one is queued.
func (d *Display) PollEvent() (xproto.Event, bool) {
	select {
	case ev, ok := <-d.events:
		return ev, ok
	default:
		return xproto.Event{}, false
	}
}

// SetRoundTripTimeout replaces the deadline Cookie.Wait applies to
// every round trip (DefaultRoundTripTimeout initially; 0 disables).
// Safe to call from any goroutine.
func (d *Display) SetRoundTripTimeout(timeout time.Duration) {
	d.rtTimeout.Store(int64(timeout))
}

// asyncError records or reports a protocol error nobody is waiting on.
func (d *Display) asyncError(msg string) {
	d.metrics.Counter("errors.async").Inc()
	if d.ErrorHandler != nil {
		d.ErrorHandler(msg)
		return
	}
	d.errMu.Lock()
	d.errors = append(d.errors, msg)
	d.errMu.Unlock()
}

// TakeErrors returns and clears the accumulated asynchronous errors.
func (d *Display) TakeErrors() []string {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	errs := d.errors
	d.errors = nil
	return errs
}

// Metrics returns the client-side registry (see the field doc for the
// metric names).
func (d *Display) Metrics() *obs.Registry { return d.metrics }

// SetTracer attaches (or, with nil, detaches) a span tracer. The tracer
// samples reply-bearing requests by sequence number; pair it with a
// server-side tracer at the same interval to get both halves of each
// sampled request (see internal/obs/trace).
func (d *Display) SetTracer(t *trace.Tracer) { d.tracer.Store(t) }

// send buffers a request, encoding it directly into the write buffer
// (no per-request Writer or header allocation). Must be called with
// d.mu held.
func (d *Display) send(req xproto.Request) uint64 {
	d.metrics.Counter("requests").Inc()
	d.metrics.Counter("requests." + xproto.OpName(req.Op())).Inc()
	d.seq++
	if d.wireTx {
		// v2 path: encode the payload alone, then append an inner frame
		// (raw or delta against the per-opcode cache). The inner frames
		// are wrapped into one segment at flush time.
		w := xproto.AcquireWriter()
		req.Encode(w)
		var usedDelta bool
		d.wbuf, usedDelta = xproto.AppendInnerRequestFrame(d.wbuf, req.Op(), w.Bytes(), d.txCache)
		xproto.ReleaseWriter(w)
		if d.txCache != nil {
			if usedDelta {
				d.wireDeltaHits.Inc()
			} else {
				d.wireDeltaMiss.Inc()
			}
		}
	} else {
		d.wbuf = xproto.AppendRequestFrame(d.wbuf, req)
	}
	d.wcount++
	return d.seq
}

// flushLocked writes the buffered requests as one wire segment. Must be
// called with d.mu held.
func (d *Display) flushLocked() error {
	if len(d.wbuf) == 0 || d.closed {
		return nil
	}
	frames := int64(d.wcount)
	// flush.batch is a count (frames per flush), not a duration.
	d.metrics.Histogram("flush.batch").ObserveCount(frames)
	d.wcount = 0
	tracedSeq := d.tracedFlush
	d.tracedFlush = 0

	// Pick what actually goes on the wire: the raw v1 frames, or one v2
	// segment wrapping the buffered inner frames.
	out := d.wbuf
	if d.wireTx {
		var compressed bool
		tryCompress := d.wireCaps&xproto.WireCapCompress != 0
		d.segTx, compressed = xproto.AppendWireSegRequestFrame(d.segTx[:0], d.wbuf, tryCompress)
		out = d.segTx
		d.wireSegs.Inc()
		if tryCompress && !compressed {
			d.wireSkipped.Inc()
		}
	}
	d.wireBytesRaw.Add(uint64(len(d.wbuf)))
	d.wireBytesWire.Add(uint64(len(out)))

	if tr := d.tracer.Load(); tr != nil && tracedSeq != 0 {
		bytes := int64(len(out))
		start := trace.Now()
		_, err := d.conn.Write(out)
		d.wbuf = d.wbuf[:0]
		tr.Record(trace.Span{
			Seq: tracedSeq, Name: "client.flush", Side: "client",
			Start: start, Dur: trace.Now() - start,
			Args: []trace.Arg{{Key: "frames", Val: frames}, {Key: "bytes", Val: bytes}},
		})
		d.metrics.Counter("trace.spans").Inc()
		return err
	}
	_, err := d.conn.Write(out)
	d.wbuf = d.wbuf[:0]
	return err
}

// observeRTT folds one measured round trip into the EWMA (alpha 1/4)
// that drives the adaptive flush threshold. Lock-free: routeReply runs
// on the read loop while flushes hold d.mu.
func (d *Display) observeRTT(ns int64) {
	for {
		cur := d.rttEwma.Load()
		next := ns
		if cur > 0 {
			next = cur + (ns-cur)/4
		}
		if next <= 0 {
			next = 1
		}
		if d.rttEwma.CompareAndSwap(cur, next) {
			d.wireRTTGa.Set(next)
			return
		}
	}
}

// flushThresholdLocked returns the buffered-bytes level that triggers an
// automatic flush. v1 keeps the historical fixed 32 KiB. v2 scales with
// the measured round-trip EWMA: on a fast local pipe small batches keep
// latency low; at WAN latencies the round trip dwarfs serialization
// time, so larger batches amortize per-segment cost without adding
// user-visible delay. 12 KiB of budget per 500 µs of RTT on top of an
// 8 KiB floor, clamped to 256 KiB.
func (d *Display) flushThresholdLocked() int {
	if !d.wireTx {
		return 32 << 10
	}
	rtt := d.rttEwma.Load()
	if rtt <= 0 {
		return 32 << 10 // no samples yet — keep the v1 default
	}
	th := 8<<10 + int(rtt/int64(500*time.Microsecond))*(12<<10)
	if th > 256<<10 {
		th = 256 << 10
	}
	d.wireThreshGa.Set(int64(th))
	return th
}

// Request buffers a one-way request (no reply). Like Xlib, requests are
// batched until a Flush or a round trip. Requests on a closed display
// are discarded.
func (d *Display) Request(req xproto.Request) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.metrics.Counter("async").Inc()
	d.send(req)
	// Keep the buffer bounded even without explicit flushes.
	var flushErr error
	if len(d.wbuf) >= d.flushThresholdLocked() {
		flushErr = d.flushLocked()
	}
	d.mu.Unlock()
	if flushErr != nil {
		// Nobody is waiting on a one-way request; surface the write
		// failure the same way protocol errors for them surface.
		d.asyncError(fmt.Sprintf("xclient: flush failed: %v", flushErr))
	}
}

// Flush writes all buffered requests to the server.
func (d *Display) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.flushLocked()
}

// Cookie is the handle for an in-flight reply-bearing request (the XCB
// model): SendWithReply returns immediately and the reply is claimed
// later with Wait, so any number of requests can be pipelined into one
// wire segment before the first reply is needed. A cookie is resolved
// exactly once (by readLoop, or by connection teardown); Wait may be
// called from any goroutine, but decode runs only on the first call.
type Cookie struct {
	d     *Display
	seq   uint64
	begin time.Time
	done  chan struct{}

	// traced marks a request sampled for span recording; op is its
	// opcode, kept so the round-trip span can be labeled at resolve
	// time. Both are set before the cookie is registered and read-only
	// afterwards.
	traced bool
	op     uint16

	// Set exactly once, before done is closed.
	payload []byte
	err     error

	decoded  atomic.Bool
	waitSpan atomic.Bool // client.wait span recorded (Wait may be called twice)
}

// Seq returns the request's protocol sequence number.
func (ck *Cookie) Seq() uint64 { return ck.seq }

// resolve fills in the outcome and releases waiters. Called exactly
// once, by whoever removed the cookie from the waiter map.
func (ck *Cookie) resolve(payload []byte, err error) {
	ck.payload = payload
	ck.err = err
	close(ck.done)
}

// failedCookie returns an already-resolved cookie, for requests that
// cannot be issued at all.
func failedCookie(d *Display, err error) *Cookie {
	ck := &Cookie{d: d, done: make(chan struct{})}
	ck.resolve(nil, err)
	return ck
}

// SendWithReply buffers a reply-bearing request, registers a waiter for
// its sequence number and returns immediately — the pipelined
// counterpart of RoundTrip. The request is not written to the wire
// until the next Flush (or a Cookie.Wait, which flushes first), so a
// batch of SendWithReply calls travels as one segment.
func (d *Display) SendWithReply(req xproto.Request) *Cookie {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return failedCookie(d, fmt.Errorf("xclient: display closed"))
	}
	d.metrics.Counter("roundtrips").Inc()
	ck := &Cookie{d: d, begin: time.Now(), done: make(chan struct{})}
	ck.seq = d.send(req)
	if tr := d.tracer.Load(); tr != nil && tr.Sampled(ck.seq) {
		ck.traced = true
		ck.op = req.Op()
		d.tracedFlush = ck.seq
		d.metrics.Counter("trace.sampled").Inc()
	}
	d.pendMu.Lock()
	if lost := d.lostErr; lost != nil {
		d.pendMu.Unlock()
		d.mu.Unlock()
		ck.resolve(nil, lost)
		return ck
	}
	if len(d.waiters) > 0 {
		d.metrics.Counter("pipelined").Inc()
	}
	d.waiters[ck.seq] = ck
	d.metrics.Gauge("inflight").Set(int64(len(d.waiters)))
	d.pendMu.Unlock()
	d.mu.Unlock()
	return ck
}

// failCookie resolves ck with err if it is still pending; a cookie the
// read loop already resolved is left alone.
func (d *Display) failCookie(ck *Cookie, err error) {
	d.pendMu.Lock()
	if d.waiters[ck.seq] == ck {
		delete(d.waiters, ck.seq)
		d.metrics.Gauge("inflight").Set(int64(len(d.waiters)))
		ck.resolve(nil, err)
	}
	d.pendMu.Unlock()
}

// Wait flushes any buffered requests (so the awaited request is on the
// wire) and blocks until the reply arrives, decoding it with decode.
// It does not hold the display lock while blocked, so other goroutines
// can keep issuing requests and waiting on their own cookies. Protocol
// errors for this request surface as the returned error. Calling Wait
// again returns the same error outcome without re-decoding.
//
// The wait is bounded by the display's round-trip deadline
// (SetRoundTripTimeout): a wedged server or wire resolves the cookie
// with an error satisfying errors.Is(err, ErrTimeout) instead of
// blocking the caller forever. A reply that arrives after the deadline
// is reported through the async-error path, not delivered here.
func (ck *Cookie) Wait(decode func(r *xproto.Reader)) error {
	var waitStart int64
	if ck.traced {
		waitStart = trace.Now()
	}
	if err := ck.d.Flush(); err != nil {
		ck.d.failCookie(ck, err)
	}
	if to := time.Duration(ck.d.rtTimeout.Load()); to > 0 {
		timer := time.NewTimer(to)
		select {
		case <-ck.done:
			timer.Stop()
		case <-timer.C:
			ck.d.metrics.Counter("roundtrip.timeout").Inc()
			ck.d.failCookie(ck, fmt.Errorf("xclient: round trip (seq %d) timed out after %v: %w", ck.seq, to, ErrTimeout))
			// failCookie resolved the cookie unless the read loop beat
			// us to it; either way done is closed now.
			<-ck.done
		}
	} else {
		<-ck.done
	}
	if ck.traced && ck.waitSpan.CompareAndSwap(false, true) {
		if tr := ck.d.tracer.Load(); tr != nil {
			tr.Record(trace.Span{
				Seq: ck.seq, Name: "client.wait", Side: "client",
				Op:    xproto.OpName(ck.op),
				Start: waitStart, Dur: trace.Now() - waitStart,
			})
			ck.d.metrics.Counter("trace.spans").Inc()
		}
	}
	if ck.err != nil {
		return ck.err
	}
	if !ck.decoded.CompareAndSwap(false, true) {
		return nil
	}
	if decode != nil {
		r := xproto.NewReader(ck.payload)
		decode(r)
		return r.Err()
	}
	return nil
}

// RoundTrip sends a request and blocks until its reply arrives, decoding
// it with decode. Protocol errors for this request surface as errors.
// It is a thin shim over SendWithReply + Wait.
func (d *Display) RoundTrip(req xproto.Request, decode func(r *xproto.Reader)) error {
	return d.SendWithReply(req).Wait(decode)
}

// Sync flushes and waits until the server has processed everything
// (an empty round trip, like XSync).
func (d *Display) Sync() error {
	return d.RoundTrip(&xproto.PingReq{}, nil)
}
