package xclient_test

import (
	"testing"

	"repro/internal/xclient"
	"repro/internal/xproto"
)

// pixelAt reads an RGB triple from a screenshot.
func pixelAt(shot xproto.ScreenshotReply, x, y int) [3]byte {
	i := (y*int(shot.Width) + x) * 3
	return [3]byte{shot.Pixels[i], shot.Pixels[i+1], shot.Pixels[i+2]}
}

// TestCompositingStackingOrder: overlapping siblings composite in
// stacking order, and restacking changes the visible pixel.
func TestCompositingStackingOrder(t *testing.T) {
	_, d := newPair(t)
	red := d.CreateWindow(d.Root, 50, 50, 100, 100, 0,
		xclient.WindowAttributes{Background: 0xff0000, OverrideRedirect: true})
	blue := d.CreateWindow(d.Root, 100, 100, 100, 100, 0,
		xclient.WindowAttributes{Background: 0x0000ff, OverrideRedirect: true})
	d.MapWindow(red)
	d.MapWindow(blue)
	d.ClearWindow(red)
	d.ClearWindow(blue)
	shot, err := d.Screenshot(xproto.None)
	if err != nil {
		t.Fatal(err)
	}
	// The overlap region (120,120) shows blue (created later = on top).
	if pixelAt(shot, 120, 120) != [3]byte{0, 0, 0xff} {
		t.Fatalf("overlap = %v, want blue", pixelAt(shot, 120, 120))
	}
	// Non-overlapping parts show through.
	if pixelAt(shot, 60, 60) != [3]byte{0xff, 0, 0} {
		t.Fatalf("red region = %v", pixelAt(shot, 60, 60))
	}
	// Raise red: the overlap flips.
	d.RaiseWindow(red)
	shot, _ = d.Screenshot(xproto.None)
	if pixelAt(shot, 120, 120) != [3]byte{0xff, 0, 0} {
		t.Fatalf("after raise, overlap = %v, want red", pixelAt(shot, 120, 120))
	}
	// Unmapping removes a window from the composite.
	d.UnmapWindow(red)
	shot, _ = d.Screenshot(xproto.None)
	if got := pixelAt(shot, 60, 60); got == [3]byte{0xff, 0, 0} {
		t.Fatal("unmapped window still composited")
	}
}

// TestCompositingBordersAndTitle: borders render around content, and
// non-override top-level windows get the built-in WM title bar with
// WM_NAME.
func TestCompositingBordersAndTitle(t *testing.T) {
	_, d := newPair(t)
	w := d.CreateWindow(d.Root, 100, 100, 60, 40, 3,
		xclient.WindowAttributes{Background: 0xffffff, Border: 0x00ff00})
	d.ChangeProperty(w, xproto.AtomWMName, xproto.AtomString, []byte("title"))
	d.MapWindow(w)
	d.ClearWindow(w)
	shot, err := d.Screenshot(xproto.None)
	if err != nil {
		t.Fatal(err)
	}
	// Content origin is at 103,103 (x + border). Border pixels surround.
	if pixelAt(shot, 101, 110) != [3]byte{0, 0xff, 0} {
		t.Fatalf("left border = %v", pixelAt(shot, 101, 110))
	}
	if pixelAt(shot, 110, 110) != [3]byte{0xff, 0xff, 0xff} {
		t.Fatalf("content = %v", pixelAt(shot, 110, 110))
	}
	// Title bar pixels above the window.
	if got := pixelAt(shot, 110, 92); got != [3]byte{0x6a, 0x5a, 0xcd} {
		t.Fatalf("title bar = %v", got)
	}
}

// TestChildWindowClipping: children draw relative to the parent and
// composite inside it.
func TestChildCompositing(t *testing.T) {
	_, d := newPair(t)
	parent := d.CreateWindow(d.Root, 10, 10, 100, 100, 0,
		xclient.WindowAttributes{Background: 0xcccccc, OverrideRedirect: true})
	child := d.CreateWindow(parent, 20, 20, 30, 30, 0,
		xclient.WindowAttributes{Background: 0xff00ff})
	d.MapWindow(parent)
	d.MapWindow(child)
	d.ClearWindow(parent)
	d.ClearWindow(child)
	shot, _ := d.Screenshot(xproto.None)
	// Child content at root coords (10+20, 10+20).
	if pixelAt(shot, 35, 35) != [3]byte{0xff, 0, 0xff} {
		t.Fatalf("child pixel = %v", pixelAt(shot, 35, 35))
	}
	if pixelAt(shot, 15, 15) != [3]byte{0xcc, 0xcc, 0xcc} {
		t.Fatalf("parent pixel = %v", pixelAt(shot, 15, 15))
	}
}
