package xserver

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/flatimg"
	"repro/internal/xclient"
	"repro/internal/xproto"
)

// The tests in this file pin the tiled renderer to the seed's flat
// per-pixel renderer, preserved verbatim in internal/flatimg. Every
// primitive must produce pixel-identical output: the tile layer is an
// optimization, never a semantic change.

// requireSamePixels compares a tiled image against the flat reference
// pixel for pixel, reporting the first few mismatches.
func requireSamePixels(t *testing.T, tag string, tiled *image, flat *flatimg.Image) {
	t.Helper()
	if tiled.w != flat.W || tiled.h != flat.H {
		t.Fatalf("%s: size mismatch: tiled %dx%d, flat %dx%d", tag, tiled.w, tiled.h, flat.W, flat.H)
	}
	bad := 0
	for y := 0; y < flat.H; y++ {
		for x := 0; x < flat.W; x++ {
			if got, want := tiled.get(x, y), flat.Get(x, y); got != want {
				t.Errorf("%s: pixel (%d,%d) = %06x, want %06x", tag, x, y, got, want)
				if bad++; bad > 8 {
					t.Fatalf("%s: too many mismatches", tag)
				}
			}
		}
	}
}

func TestRenderParityFillRect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tiled := newImage(200, 150)
	flat := flatimg.New(200, 150)
	for i := 0; i < 300; i++ {
		x, y := rng.Intn(260)-30, rng.Intn(200)-25
		w, h := rng.Intn(120), rng.Intn(90)
		px := rng.Uint32() & 0xffffff
		tiled.fillRect(x, y, w, h, px)
		flat.FillRect(x, y, w, h, px)
	}
	requireSamePixels(t, "fillRect", tiled, flat)
}

// TestRenderParityFillRects covers the batched PolyFillRectangle path,
// including a storm large enough to cross the parallel-fill threshold.
func TestRenderParityFillRects(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tiled := newImage(1024, 512)
	flat := flatimg.New(1024, 512)

	var rects []xproto.Rect
	for i := 0; i < 100; i++ {
		rects = append(rects, xproto.Rect{
			X: int16(rng.Intn(1100) - 50), Y: int16(rng.Intn(560) - 30),
			W: uint16(rng.Intn(200)), H: uint16(rng.Intn(120)),
		})
	}
	tiled.fillRects(rects, 0x123456)
	for _, r := range rects {
		flat.FillRect(int(r.X), int(r.Y), int(r.W), int(r.H), 0x123456)
	}

	// One screen-size rect: area far above parallelFillMin, so this
	// exercises the worker-pool fan-out.
	tiled.fillRects([]xproto.Rect{{X: -8, Y: -8, W: 1040, H: 528}}, 0xabcdef)
	flat.FillRect(-8, -8, 1040, 528, 0xabcdef)
	requireSamePixels(t, "fillRects", tiled, flat)
}

func TestRenderParityRectAndLine(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tiled := newImage(200, 160)
	flat := flatimg.New(200, 160)
	for lw := 1; lw <= 5; lw++ {
		x, y := rng.Intn(180)-10, rng.Intn(140)-10
		w, h := 20+rng.Intn(80), 20+rng.Intn(60)
		px := rng.Uint32() & 0xffffff
		tiled.drawRect(x, y, w, h, lw, px)
		flat.DrawRect(x, y, w, h, lw, px)
	}
	// Horizontal and vertical lines hit the fillRect fast path; make
	// sure both orientations and both directions match the seed's
	// Bresenham walk, at every width.
	for lw := 1; lw <= 5; lw++ {
		y := 10 + lw*12
		tiled.drawLine(5, y, 180, y, lw, 0x010000*uint32(lw))
		flat.DrawLine(5, y, 180, y, lw, 0x010000*uint32(lw))
		tiled.drawLine(170, y+6, 3, y+6, lw, 0x000100*uint32(lw))
		flat.DrawLine(170, y+6, 3, y+6, lw, 0x000100*uint32(lw))
		x := 8 + lw*15
		tiled.drawLine(x, 4, x, 150, lw, 0x000001*uint32(lw))
		flat.DrawLine(x, 4, x, 150, lw, 0x000001*uint32(lw))
	}
	for i := 0; i < 60; i++ {
		x0, y0 := rng.Intn(240)-20, rng.Intn(200)-20
		x1, y1 := rng.Intn(240)-20, rng.Intn(200)-20
		lw := 1 + rng.Intn(5)
		px := rng.Uint32() & 0xffffff
		tiled.drawLine(x0, y0, x1, y1, lw, px)
		flat.DrawLine(x0, y0, x1, y1, lw, px)
	}
	requireSamePixels(t, "rect+line", tiled, flat)
}

func TestRenderParityFillPoly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tiled := newImage(220, 180)
	flat := flatimg.New(220, 180)
	for i := 0; i < 80; i++ {
		n := 3 + rng.Intn(6)
		pts := make([]xproto.Point, n)
		xs, ys := make([]int, n), make([]int, n)
		for j := range pts {
			x, y := rng.Intn(280)-30, rng.Intn(240)-30
			pts[j] = xproto.Point{X: int16(x), Y: int16(y)}
			xs[j], ys[j] = x, y
		}
		px := rng.Uint32() & 0xffffff
		tiled.fillPoly(pts, px)
		flat.FillPoly(xs, ys, px)
	}
	requireSamePixels(t, "fillPoly", tiled, flat)
}

func TestRenderParityText(t *testing.T) {
	tiled := newImage(300, 120)
	flat := flatimg.New(300, 120)
	for i, s := range []string{"Hello, Tk!", "wish% button .b", "\x01odd\x7fbytes", ""} {
		y := 20 + i*20
		openFont("fixed").drawString(tiled, 4, y, s, 0xffffff)
		flat.DrawString(4, y, s, 0xffffff, 1)
	}
	// Scale-2 "large" variant, including glyphs clipped by every edge.
	openFont("big24").drawString(tiled, -7, 30, "Edge", 0x33ccff)
	flat.DrawString(-7, 30, "Edge", 0x33ccff, 2)
	openFont("big24").drawString(tiled, 260, 118, "Clip", 0xff8800)
	flat.DrawString(260, 118, "Clip", 0xff8800, 2)
	requireSamePixels(t, "text", tiled, flat)
}

func TestRenderParityCopyFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	paint := func(tiled *image, flat *flatimg.Image, seed int64) {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 40; i++ {
			x, y := r.Intn(tiled.w), r.Intn(tiled.h)
			w, h := r.Intn(60), r.Intn(40)
			px := r.Uint32() & 0xffffff
			tiled.fillRect(x, y, w, h, px)
			flat.FillRect(x, y, w, h, px)
		}
	}
	srcT, srcF := newImage(180, 140), flatimg.New(180, 140)
	dstT, dstF := newImage(200, 160), flatimg.New(200, 160)
	paint(srcT, srcF, 50)
	paint(dstT, dstF, 51)

	// Cross-image copies with wild offsets: clipping must agree exactly.
	for i := 0; i < 60; i++ {
		sx, sy := rng.Intn(260)-60, rng.Intn(220)-60
		dx, dy := rng.Intn(280)-60, rng.Intn(240)-60
		w, h := rng.Intn(150), rng.Intn(120)
		dstT.copyFrom(srcT, sx, sy, dx, dy, w, h)
		dstF.CopyFrom(srcF, sx, sy, dx, dy, w, h)
	}
	requireSamePixels(t, "copy cross", dstT, dstF)

	// Overlapping self-copies: all four diagonal shift directions, pure
	// vertical both ways (the direct row-walk paths), and pure
	// horizontal both ways (the scratch-row path).
	for _, sh := range [][2]int{{13, 9}, {-13, 9}, {13, -9}, {-17, -11}, {0, 16}, {0, -16}, {21, 0}, {-21, 0}} {
		selfT, selfF := newImage(150, 130), flatimg.New(150, 130)
		paint(selfT, selfF, 60)
		selfT.copyFrom(selfT, 20, 20, 20+sh[0], 20+sh[1], 100, 90)
		selfF.CopyFrom(selfF, 20, 20, 20+sh[0], 20+sh[1], 100, 90)
		requireSamePixels(t, fmt.Sprintf("self-copy %+d%+d", sh[0], sh[1]), selfT, selfF)
	}
}

func TestRenderParityResize(t *testing.T) {
	tiled := newImage(100, 90)
	flat := flatimg.New(100, 90)
	tiled.fillRect(0, 0, 100, 90, 0x224488)
	flat.FillRect(0, 0, 100, 90, 0x224488)
	tiled.fillRect(10, 12, 45, 30, 0xff0055)
	flat.FillRect(10, 12, 45, 30, 0xff0055)
	for _, sz := range [][2]int{{170, 40}, {64, 64}, {65, 129}, {30, 200}, {1, 1}} {
		tiled.resize(sz[0], sz[1])
		flat.Resize(sz[0], sz[1])
		requireSamePixels(t, fmt.Sprintf("resize %dx%d", sz[0], sz[1]), tiled, flat)
	}
}

// TestSnapshotCopyOnWrite: a snapshot must keep the pixels it had at
// snapshot time while the original keeps mutating — the heart of the
// lock-free screenshot path.
func TestSnapshotCopyOnWrite(t *testing.T) {
	im := newImage(130, 130)
	im.fillRect(0, 0, 130, 130, 0x111111)
	snap := im.snapshot()
	im.fillRect(0, 0, 130, 130, 0x999999)
	im.drawLine(0, 0, 129, 129, 3, 0xff0000)
	for _, pt := range [][2]int{{0, 0}, {64, 64}, {129, 129}, {5, 100}} {
		if got := snap.get(pt[0], pt[1]); got != 0x111111 {
			t.Errorf("snapshot pixel (%d,%d) = %06x, want 111111", pt[0], pt[1], got)
		}
	}
	if got := im.get(64, 64); got != 0xff0000 {
		t.Errorf("original pixel (64,64) = %06x, want ff0000 after post-snapshot writes", got)
	}
	// A second snapshot sees the new content, and the two snapshots are
	// independent.
	snap2 := im.snapshot()
	if got := snap2.get(2, 100); got != 0x999999 {
		t.Errorf("second snapshot pixel = %06x, want 999999", got)
	}
	if got := snap.get(2, 100); got != 0x111111 {
		t.Errorf("first snapshot disturbed: %06x, want 111111", got)
	}
}

// flatWin mirrors a server window for replaying the documented
// composite algorithm over flatimg references.
type flatWin struct {
	x, y, w, h, bw int
	border         uint32
	img            *flatimg.Image
	children       []*flatWin
	topLevel       bool // parent is root and not override-redirect
	title          string
}

// flatComposite replays composite()'s exact paint order: border,
// content, children bottom-to-top, then title-bar decoration.
func flatComposite(dst *flatimg.Image, w *flatWin, ox, oy int) {
	if w.bw > 0 {
		dst.FillRect(ox-w.bw, oy-w.bw, w.w+2*w.bw, w.bw, w.border)
		dst.FillRect(ox-w.bw, oy+w.h, w.w+2*w.bw, w.bw, w.border)
		dst.FillRect(ox-w.bw, oy, w.bw, w.h, w.border)
		dst.FillRect(ox+w.w, oy, w.bw, w.h, w.border)
	}
	dst.CopyFrom(w.img, 0, 0, ox, oy, w.w, w.h)
	for _, ch := range w.children {
		flatComposite(dst, ch, ox+ch.x+ch.bw, oy+ch.y+ch.bw)
	}
	if w.topLevel {
		dst.FillRect(ox-w.bw, oy-w.bw-titleBarHeight, w.w+2*w.bw, titleBarHeight, titleBarColor)
		dst.DrawRect(ox-w.bw, oy-w.bw-titleBarHeight, w.w+2*w.bw, titleBarHeight, 1, frameColor)
		dst.DrawString(ox+4, oy-w.bw-titleBarHeight+13, w.title, titleTextColor, 1)
	}
}

func requireShotMatches(t *testing.T, tag string, rep xproto.ScreenshotReply, want *flatimg.Image) {
	t.Helper()
	if int(rep.Width) != want.W || int(rep.Height) != want.H {
		t.Fatalf("%s: shot %dx%d, want %dx%d", tag, rep.Width, rep.Height, want.W, want.H)
	}
	if len(rep.Pixels) != want.W*want.H*3 {
		t.Fatalf("%s: payload %d bytes, want %d", tag, len(rep.Pixels), want.W*want.H*3)
	}
	bad := 0
	for i, px := range want.Pix {
		got := uint32(rep.Pixels[i*3])<<16 | uint32(rep.Pixels[i*3+1])<<8 | uint32(rep.Pixels[i*3+2])
		if got != px {
			t.Errorf("%s: pixel %d (%d,%d) = %06x, want %06x", tag, i, i%want.W, i/want.W, got, px)
			if bad++; bad > 8 {
				t.Fatalf("%s: too many mismatches", tag)
			}
		}
	}
}

// TestScreenshotCompositeParity builds a scene through the client
// library — decorated top-levels, a nested child, an override-redirect
// popup, pixmap CopyArea, text — and checks both the root screenshot
// and a single-window screenshot byte-for-byte against the seed
// composite algorithm replayed over flat reference images.
func TestScreenshotCompositeParity(t *testing.T) {
	s := New(320, 240)
	defer s.Close()
	d, err := xclient.Open(s.ConnectPipe())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	root := d.Root

	gc := func(fg uint32) xproto.ID {
		return d.CreateGC(xclient.GCValues{Mask: xproto.GCForeground, Foreground: fg})
	}

	// Root drawing.
	rootF := flatimg.New(320, 240)
	rootF.FillRect(0, 0, 320, 240, 0x5f9ea0) // root img prefill
	d.FillRectangle(root, gc(0x204020), 250, 180, 60, 50)
	rootF.FillRect(250, 180, 60, 50, 0x204020)

	// Pixmap painted and blitted into window A below.
	pm := d.CreatePixmap(40, 30)
	pmF := flatimg.New(40, 30)
	d.FillRectangle(pm, gc(0xcc3366), 0, 0, 40, 30)
	pmF.FillRect(0, 0, 40, 30, 0xcc3366)
	d.DrawLine(pm, gc(0xffffff), 0, 0, 39, 29)
	pmF.DrawLine(0, 0, 39, 29, 1, 0xffffff)

	// Top-level A: decorated, bordered, with text, poly, and the blit.
	a := d.CreateWindow(root, 30, 40, 120, 80, 3, xclient.WindowAttributes{Background: 0xddeeff, Border: 0x224466})
	aF := flatimg.New(120, 80)
	aF.FillRect(0, 0, 120, 80, 0xddeeff)
	d.ChangeProperty(a, xproto.AtomWMName, xproto.AtomString, []byte("alpha"))
	d.MapWindow(a)
	d.FillRectangles(a, gc(0x884400), []xproto.Rect{{X: 5, Y: 5, W: 30, H: 20}, {X: 100, Y: 60, W: 40, H: 40}})
	aF.FillRect(5, 5, 30, 20, 0x884400)
	aF.FillRect(100, 60, 40, 40, 0x884400)
	d.FillPolygon(a, gc(0x006600), []xproto.Point{{X: 60, Y: 8}, {X: 90, Y: 40}, {X: 40, Y: 46}})
	aF.FillPoly([]int{60, 90, 40}, []int{8, 40, 46}, 0x006600)
	d.DrawString(a, gc(0x000000), 8, 70, "widget")
	aF.DrawString(8, 70, "widget", 0x000000, 1)
	d.CopyArea(pm, a, gc(0), 3, 2, 70, 10, 30, 25)
	aF.CopyFrom(pmF, 3, 2, 70, 10, 30, 25)

	// Child B nested in A.
	b := d.CreateWindow(a, 10, 8, 50, 40, 2, xclient.WindowAttributes{Background: 0xffcc00, Border: 0x990000})
	bF := flatimg.New(50, 40)
	bF.FillRect(0, 0, 50, 40, 0xffcc00)
	d.MapWindow(b)
	d.DrawLine(b, gc(0x0000aa), 2, 2, 47, 37)
	bF.DrawLine(2, 2, 47, 37, 1, 0x0000aa)

	// Top-level C: override-redirect, so no decoration.
	c := d.CreateWindow(root, 160, 30, 60, 50, 1, xclient.WindowAttributes{Background: 0x304050, Border: 0x000000, OverrideRedirect: true})
	cF := flatimg.New(60, 50)
	cF.FillRect(0, 0, 60, 50, 0x304050)
	d.MapWindow(c)
	d.DrawRectangle(c, gc(0xffff00), 5, 5, 50, 40)
	cF.DrawRect(5, 5, 50, 40, 1, 0xffff00)

	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}

	winA := &flatWin{x: 30, y: 40, w: 120, h: 80, bw: 3, border: 0x224466, img: aF, topLevel: true, title: "alpha",
		children: []*flatWin{{x: 10, y: 8, w: 50, h: 40, bw: 2, border: 0x990000, img: bF}}}
	winC := &flatWin{x: 160, y: 30, w: 60, h: 50, bw: 1, img: cF}

	// Root screenshot: background fill, root content, children
	// bottom-to-top in creation order (A then C).
	wantRoot := flatimg.New(320, 240)
	wantRoot.FillRect(0, 0, 320, 240, 0x5f9ea0)
	wantRoot.CopyFrom(rootF, 0, 0, 0, 0, 320, 240)
	flatComposite(wantRoot, winA, winA.x+winA.bw, winA.y+winA.bw)
	flatComposite(wantRoot, winC, winC.x+winC.bw, winC.y+winC.bw)
	rep, err := d.Screenshot(xproto.None)
	if err != nil {
		t.Fatal(err)
	}
	requireShotMatches(t, "root shot", rep, wantRoot)

	// Single-window screenshot of A: content plus border plus title bar.
	wantA := flatimg.New(120+2*3, 80+2*3+titleBarHeight)
	flatComposite(wantA, winA, 3, 3+titleBarHeight)
	repA, err := d.Screenshot(a)
	if err != nil {
		t.Fatal(err)
	}
	requireShotMatches(t, "window shot", repA, wantA)
}

// TestRenderStressPaintersVsScreenshots hammers windows and pixmaps
// from several client connections while other connections continuously
// take root and window screenshots. Under -race this checks the
// copy-on-write snapshot discipline: painters cloning shared tiles
// while composition reads the snapshots with no lock held.
func TestRenderStressPaintersVsScreenshots(t *testing.T) {
	s := New(480, 360)
	defer s.Close()

	const painters = 4
	wins := make([]xproto.ID, painters)
	displays := make([]*xclient.Display, painters)
	for i := range displays {
		d, err := xclient.Open(s.ConnectPipe())
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		displays[i] = d
		wins[i] = d.CreateWindow(d.Root, 20+i*90, 30, 150, 120, 2,
			xclient.WindowAttributes{Background: uint32(0x101010 * (i + 1))})
		d.ChangeProperty(wins[i], xproto.AtomWMName, xproto.AtomString, []byte(fmt.Sprintf("painter-%d", i)))
		d.MapWindow(wins[i])
		if err := d.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < painters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, win := displays[i], wins[i]
			gc := d.CreateGC(xclient.GCValues{Mask: xproto.GCForeground, Foreground: uint32(0x3377aa + i)})
			pm := d.CreatePixmap(64, 64)
			rng := rand.New(rand.NewSource(int64(100 + i)))
			for n := 0; n < 150; n++ {
				rects := make([]xproto.Rect, 16)
				for j := range rects {
					rects[j] = xproto.Rect{X: int16(rng.Intn(150)), Y: int16(rng.Intn(120)),
						W: uint16(rng.Intn(60)), H: uint16(rng.Intn(40))}
				}
				d.FillRectangles(win, gc, rects)
				d.FillRectangle(pm, gc, 0, 0, 64, 64)
				d.CopyArea(pm, win, gc, 0, 0, rng.Intn(90), rng.Intn(60), 64, 64)
				d.DrawString(win, gc, 4, 100, "stress")
				if n%25 == 0 {
					if err := d.Sync(); err != nil {
						t.Error(err)
						return
					}
				}
			}
			if err := d.Sync(); err != nil {
				t.Error(err)
			}
		}(i)
	}

	const readers = 3
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := xclient.Open(s.ConnectPipe())
			if err != nil {
				t.Error(err)
				return
			}
			defer d.Close()
			for n := 0; n < 30; n++ {
				target := xproto.ID(xproto.None)
				if n%2 == 1 {
					target = wins[n%painters]
				}
				rep, err := d.Screenshot(target)
				if err != nil {
					t.Error(err)
					return
				}
				if len(rep.Pixels) != int(rep.Width)*int(rep.Height)*3 {
					t.Errorf("reader %d: short payload %d for %dx%d", i, len(rep.Pixels), rep.Width, rep.Height)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
