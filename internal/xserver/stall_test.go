package xserver

import (
	"testing"
	"time"
)

// TestStalledPeerSevered: a client that connects and then never reads
// its end of the pipe cannot wedge the server. The writer's deadline
// (or the bounded mustDeliver enqueue) fires, the "stalled" counter
// increments, and the connection is severed.
func TestStalledPeerSevered(t *testing.T) {
	s := New(200, 200)
	defer s.Close()
	s.SetWriteTimeout(50 * time.Millisecond)

	// The setup block is the first mustDeliver frame; with the peer
	// never reading, the writer blocks on a synchronous pipe until the
	// deadline severs it.
	nc := s.ConnectPipe()
	defer nc.Close()

	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Counter("stalled").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled peer never severed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The server stays fully usable for well-behaved clients.
	s.connsMu.Lock()
	live := len(s.conns)
	s.connsMu.Unlock()
	_ = live // the stalled conn unregisters once its read loop exits
	buf := make([]byte, 16)
	if _, err := nc.Read(buf); err == nil {
		// The severed connection must eventually error on the client end.
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		for {
			if _, err := nc.Read(buf); err != nil {
				break
			}
		}
	}
}

// TestWriteTimeoutDisabled: SetWriteTimeout(0) restores unbounded
// blocking semantics — the connection is not severed just because the
// peer reads slowly.
func TestWriteTimeoutDisabled(t *testing.T) {
	s := New(200, 200)
	defer s.Close()
	s.SetWriteTimeout(0)

	nc := s.ConnectPipe()
	defer nc.Close()

	// Read slowly: wait well past any default deadline, then drain.
	time.Sleep(100 * time.Millisecond)
	buf := make([]byte, 4096)
	if _, err := nc.Read(buf); err != nil {
		t.Fatalf("slow reader severed with timeout disabled: %v", err)
	}
	if got := s.Metrics().Counter("stalled").Value(); got != 0 {
		t.Fatalf("stalled counter = %d with timeout disabled", got)
	}
}
