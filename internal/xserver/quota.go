package xserver

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Per-session resource quotas (docs/farm.md). A Quota bounds what one
// virtual display may allocate, so one tenant of a farm cannot starve
// the rest: the bounded resources are the ones a client can create
// without limit (windows, pixmap bytes, GCs). Enforcement happens at
// the allocation site with a clean X protocol error — the offending
// request fails, the connection lives on, and the client sees the
// denial through the ordinary error path (Display.ErrorHandler), never
// a kill.
//
// Accounting is atomic CAS-reserve / atomic release, deliberately
// lock-free: allocation handlers already hold their subsystem locks and
// the quota must not add edges to the declared lock order.

// Quota bounds one server's (one farm session's) resource allocation.
// A zero field means that resource is unlimited.
type Quota struct {
	MaxWindows     int64 // live windows (the root does not count)
	MaxPixmapBytes int64 // sum of nominal pixmap sizes, width·height·4
	MaxGCs         int64 // live graphics contexts
}

// SetQuota installs the quota. Call before the server accepts
// connections; limits apply to allocations from then on (existing usage
// is kept, not re-audited).
func (s *Server) SetQuota(q Quota) {
	s.quotaWindows.Store(q.MaxWindows)
	s.quotaPixmapBytes.Store(q.MaxPixmapBytes)
	s.quotaGCs.Store(q.MaxGCs)
}

// QuotaUsage reports live quota-accounted usage. After every client of
// the server has disconnected and been cleaned up, all three are zero
// (the reconciliation invariant the farm tests assert).
func (s *Server) QuotaUsage() (windows, pixmapBytes, gcs int64) {
	return s.usedWindows.Load(), s.usedPixmapBytes.Load(), s.usedGCs.Load()
}

// reserveQuota claims n units of used against limit, failing without
// side effects if the claim would exceed it. A non-positive limit is
// unlimited (the claim is still counted, so usage reporting and
// release stay uniform).
func reserveQuota(used *atomic.Int64, limit int64, n int64) bool {
	if limit <= 0 {
		used.Add(n)
		return true
	}
	for {
		cur := used.Load()
		if cur+n > limit {
			return false
		}
		if used.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// quotaDenied counts a denial and sends the clean X error for it. The
// resource label is one of "windows", "pixmap_bytes", "gcs" — each a
// quota.denied.<resource> counter on the session registry and, when the
// session belongs to a farm, on the farm's aggregate registry too.
func (s *Server) quotaDenied(c *conn, resource, req string, limit int64) {
	s.metrics.Counter("quota.denied." + resource).Inc()
	if s.rollup != nil {
		s.rollup.Counter("quota.denied." + resource).Inc()
	}
	c.protoError("%s: session quota exceeded: %s limit %d reached", req, resource, limit)
}

// ParseQuota parses the xsimd -quota flag syntax: comma-separated
// key=value pairs with keys "windows", "pixmap-bytes" and "gcs", e.g.
// "windows=256,pixmap-bytes=16m,gcs=128". Byte values take an optional
// binary-multiple suffix k, m or g. Empty spec = unlimited everything.
func ParseQuota(spec string) (Quota, error) {
	var q Quota
	if strings.TrimSpace(spec) == "" {
		return q, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Quota{}, fmt.Errorf("quota: %q is not key=value", part)
		}
		n, err := parseQuotaValue(strings.TrimSpace(val))
		if err != nil {
			return Quota{}, fmt.Errorf("quota %s: %v", key, err)
		}
		switch strings.TrimSpace(key) {
		case "windows":
			q.MaxWindows = n
		case "pixmap-bytes":
			q.MaxPixmapBytes = n
		case "gcs":
			q.MaxGCs = n
		default:
			return Quota{}, fmt.Errorf("quota: unknown resource %q (want windows, pixmap-bytes or gcs)", key)
		}
	}
	return q, nil
}

// parseQuotaValue parses a non-negative integer with an optional binary
// k/m/g suffix.
func parseQuotaValue(s string) (int64, error) {
	shift := 0
	switch {
	case s == "":
		return 0, fmt.Errorf("empty value")
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		shift, s = 10, s[:len(s)-1]
	case strings.HasSuffix(s, "m"), strings.HasSuffix(s, "M"):
		shift, s = 20, s[:len(s)-1]
	case strings.HasSuffix(s, "g"), strings.HasSuffix(s, "G"):
		shift, s = 30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("negative value %d", n)
	}
	v := n << shift
	if shift > 0 && v>>shift != n {
		return 0, fmt.Errorf("value %s overflows", s)
	}
	return v, nil
}
