package xserver

import (
	"runtime"
	"sync"

	"repro/internal/obs"
)

// Render-pipeline observability and the bounded worker pool that fans
// the independent tile rows of large fills out across CPUs.
//
// The pool holds no locks: a worker only ever writes pixels of tiles
// handed to it by the caller, who holds the owning drawable's lock for
// the whole fan-out and blocks until every job finishes — so the
// drawable lock still guards all tile state, and two jobs of one fill
// never share a tile (they cover distinct tile rows).

// renderMetrics is the render pipeline's slice of the server registry,
// resolved once in New so the draw hot path never does a registry
// lookup. The pointers are immutable after New; obs counters and
// histograms are safe for concurrent use.
type renderMetrics struct {
	tilesDamaged  *obs.Counter   // clean→dirty tile transitions
	tilesCOW      *obs.Counter   // slab clones forced by writes to shared tiles
	tilesSnapshot *obs.Counter   // tiles aliased into copy-on-write snapshots
	parallelFills *obs.Counter   // fills fanned out to the worker pool
	fill          *obs.Histogram // rect-fill batch service time
	copyArea      *obs.Histogram // copy service time
	text          *obs.Histogram // glyph blit service time
	screenshot    *obs.Histogram // compose + pack time (outside treeMu)
}

func newRenderMetrics(reg *obs.Registry) *renderMetrics {
	return &renderMetrics{
		tilesDamaged:  reg.Counter("render.tiles.damaged"),
		tilesCOW:      reg.Counter("render.tiles.cow"),
		tilesSnapshot: reg.Counter("render.tiles.snapshot"),
		parallelFills: reg.Counter("render.fill.parallel"),
		fill:          reg.Histogram("render.fill"),
		copyArea:      reg.Histogram("render.copy"),
		text:          reg.Histogram("render.text"),
		screenshot:    reg.Histogram("render.screenshot"),
	}
}

// parallelFillMin is the clipped pixel area below which a fill is not
// worth fanning out: smaller fills run inline on the dispatching
// goroutine (a widget repaint is a few thousand pixels; a full-window
// clear is hundreds of thousands).
const parallelFillMin = 64 * 1024

// renderPool is the shared bounded worker pool. Workers are started
// lazily on the first large fill and live for the process; overflow
// jobs run inline on the submitter, so the pool can never deadlock
// even with every worker busy.
var (
	renderPoolOnce sync.Once
	renderPoolSize int
	renderJobs     chan func()
)

func startRenderPool() {
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	renderPoolSize = n
	if n < 2 {
		// Single-CPU process: fanning out buys nothing, every caller
		// runs rows inline via parallelizeFills == false.
		return
	}
	renderJobs = make(chan func(), n)
	for i := 0; i < n; i++ {
		go func() {
			for job := range renderJobs {
				job()
			}
		}()
	}
}

// parallelizeFills reports whether large fills should be fanned out at
// all: with one CPU the pool is pure synchronization overhead.
func parallelizeFills() bool {
	renderPoolOnce.Do(startRenderPool)
	return renderPoolSize > 1
}

// parallelTileRows runs fn(ty) for every tile row in [ty0, ty1] across
// the render pool, blocking until all rows are done. Rows that do not
// fit in the queue run on the calling goroutine.
func parallelTileRows(ty0, ty1 int, fn func(ty int)) {
	if !parallelizeFills() {
		for ty := ty0; ty <= ty1; ty++ {
			fn(ty)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(ty1 - ty0 + 1)
	for ty := ty0; ty <= ty1; ty++ {
		ty := ty
		job := func() {
			defer wg.Done()
			fn(ty)
		}
		select {
		case renderJobs <- job:
		default:
			job()
		}
	}
	wg.Wait()
}
